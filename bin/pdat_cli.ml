(* pdat — command-line driver for the PDAT framework.

   Subcommands:
     list                      catalog of experiment variants
     run VARIANT [...]         run the pipeline for catalog variants
     reduce --core C --subset S [--port|--cutpoint] [-o out.v]
                               custom reduction with Verilog export
     export --core C -o out.v  dump a core's baseline netlist
     report --core C --subset S [--dump-cex DIR] [--out-dir DIR]
                               provenance-tracked run + REPORT_<core>.{json,md}
     lint [FILE.v ...] [--core C ...]
                               static netlist lint; exit 1 on errors
     chaos --core C --subset S [--dir D]
                               crash-safety matrix; exit 1 on any failure
     perf BASE.json CUR.json [...]
                               BENCH delta table + regression gate;
                               exit 1 on regression, 2 on a bad file
     table1 | table2           paper tables *)

open Cmdliner

let fast =
  let doc = "Use the reduced RIDECORE configuration." in
  Arg.(value & flag & info [ "fast" ] ~doc)

let jobs_arg =
  let doc =
    "Worker processes for the proof stage (defaults to \\$(b,PDAT_JOBS) or \
     1; always clamped to the online core count). The parallel prover's \
     join round makes the proved set identical to a serial run."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~doc ~docv:"N")

let cache_dir_arg =
  let doc =
    "Directory for the persistent proof cache; candidates with a recorded \
     verdict for the same (netlist, assumption) skip the SAT prover on \
     later runs."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~doc ~docv:"DIR")

let make_cache = Option.map (fun d -> Engine.Proof_cache.create ~dir:d ())

let sieve_flag =
  let doc =
    "Enable the simulation-signature sieve in front of the prover: \
     pointwise-equivalent candidates are proved once per class and the \
     verdict transfers, without changing the proved set (also enabled by \
     \\$(b,PDAT_SIEVE))."
  in
  Arg.(value & flag & info [ "sieve" ] ~doc)

let absint_flag =
  let doc =
    "Enable the abstract-interpretation static tier: an over-approximate \
     ternary/known-bits fixpoint under the environment assumption \
     discharges candidates whose violation is unreachable without touching \
     SAT, and feeds the remaining solver calls statically proven facts as \
     strengthening assumptions (also enabled by \\$(b,PDAT_ABSINT))."
  in
  Arg.(value & flag & info [ "absint" ] ~doc)

let retries_arg =
  let doc =
    "Per-shard retry budget of the supervised proof workers (defaults to \
     \\$(b,PDAT_RETRIES) or 2).  A shard that exhausts its retries is \
     proved serially in-process, so no shard is ever dropped."
  in
  Arg.(value & opt (some int) None & info [ "retries" ] ~doc ~docv:"N")

let run_dir_arg =
  let doc =
    "Journal the run: an append-only, checksummed $(b,journal.jsonl) in \
     $(docv) records stage completions and per-shard proof checkpoints, \
     making the run resumable after a crash (see $(b,--resume))."
  in
  Arg.(value & opt (some string) None & info [ "run-dir" ] ~doc ~docv:"DIR")

let resume_flag =
  let doc =
    "Resume from the journal in $(b,--run-dir): completed stages and proof \
     shards are replayed instead of recomputed; a torn tail from a crash \
     is truncated.  Fails if the journal belongs to a different \
     netlist/environment."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

(* ---------------- list ---------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun fig ->
        Format.printf "%s:@." fig;
        List.iter
          (fun v ->
            Format.printf "  %-28s %s@." v.Experiments.Variants.id
              v.Experiments.Variants.label)
          (Experiments.Variants.by_figure fig))
      Experiments.Variants.figures
  in
  Cmd.v (Cmd.info "list" ~doc:"List the experiment variant catalog")
    Term.(const run $ const ())

(* ---------------- run ----------------------------------------------- *)

let run_cmd =
  let variants =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"VARIANT")
  in
  let run fast jobs cache_dir ids =
    let cache = make_cache cache_dir in
    List.iter
      (fun id ->
        match Experiments.Variants.find id with
        | v ->
            let row = Experiments.Runner.run ~fast ?jobs ?cache v in
            Format.printf "%a@." Experiments.Runner.pp_row row
        | exception Not_found ->
            Format.eprintf "unknown variant %s (try `pdat list')@." id;
            exit 1)
      ids
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run catalog variants through the PDAT pipeline")
    Term.(const run $ fast $ jobs_arg $ cache_dir_arg $ variants)

(* ---------------- core / subset parsing ------------------------------- *)

let core_arg =
  let doc = "Core: ibex, cm0 (obfuscated) or ridecore." in
  Arg.(required & opt (some (enum [ ("ibex", `Ibex); ("cm0", `Cm0); ("ridecore", `Ridecore) ])) None
       & info [ "core" ] ~doc)

let build_core ?(fast = false) kind =
  match kind with
  | `Ibex ->
      let t = Cores.Ibex_like.build () in
      (t.Cores.Ibex_like.design, Some (Cores.Ibex_like.cutpoint_nets t))
  | `Cm0 ->
      let t = Cores.Cm0_like.build () in
      (Netlist.Obfuscate.run t.Cores.Cm0_like.design, None)
  | `Ridecore ->
      let config =
        if fast then
          { Cores.Ridecore_like.rob_entries = 16; phys_regs = 48;
            iq_entries = 8; pht_entries = 64; btb_entries = 8 }
        else Cores.Ridecore_like.default_config
      in
      ((Cores.Ridecore_like.build ~config ()).Cores.Ridecore_like.design, None)

let riscv_subsets =
  [ ("rv32imcz", Isa.Subset.rv32imcz); ("rv32imc", Isa.Subset.rv32imc);
    ("rv32im", Isa.Subset.rv32im); ("rv32ic", Isa.Subset.rv32ic);
    ("rv32i", Isa.Subset.rv32i); ("rv32e", Isa.Subset.rv32e);
    ("mibench-all", Isa.Workloads.riscv_all);
    ("mibench-networking", Isa.Workloads.riscv Isa.Workloads.Networking);
    ("mibench-security", Isa.Workloads.riscv Isa.Workloads.Security);
    ("mibench-automotive", Isa.Workloads.riscv Isa.Workloads.Automotive);
    ("reduced-addressing", Isa.Subset.rv32i_reduced_addressing);
    ("safety-critical", Isa.Subset.rv32i_safety_critical);
    ("no-parallelism", Isa.Subset.rv32i_no_parallelism);
    ("risc16", Isa.Subset.risc16) ]

let arm_subsets =
  [ ("armv6m", Isa.Subset.armv6m_full);
    ("interesting", Isa.Subset.armv6m_interesting);
    ("mibench-all", Isa.Workloads.arm_all);
    ("mibench-networking", Isa.Workloads.arm Isa.Workloads.Networking);
    ("mibench-security", Isa.Workloads.arm Isa.Workloads.Security);
    ("mibench-automotive", Isa.Workloads.arm Isa.Workloads.Automotive) ]

let subset_arg =
  let doc = "ISA subset name (e.g. rv32i, mibench-all, interesting)." in
  Arg.(required & opt (some string) None & info [ "subset" ] ~doc)

let out_arg =
  let doc = "Write the resulting netlist as structural Verilog." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)

(* Environment construction shared by `reduce' and `report'. *)
let make_env ~port core subset_name design cut_nets =
  match core with
  | `Ibex | `Ridecore -> (
      let subset =
        try List.assoc subset_name riscv_subsets
        with Not_found ->
          Format.eprintf "unknown RISC-V subset %s@." subset_name;
          exit 1
      in
      let rv32e = subset_name = "rv32e" in
      match cut_nets with
      | Some nets when not port ->
          Pdat.Environment.riscv_cutpoint ~rv32e design ~nets subset
      | _ ->
          Pdat.Environment.riscv_port ~rv32e design ~port:"instr_rdata" subset)
  | `Cm0 ->
      let subset =
        try List.assoc subset_name arm_subsets
        with Not_found ->
          Format.eprintf "unknown ARM subset %s@." subset_name;
          exit 1
      in
      Pdat.Environment.arm_port design ~port:"instr_rdata" subset

(* ---------------- reduce --------------------------------------------- *)

let validate_flag =
  let doc =
    "Differentially validate the reduction against the original design; \
     on any divergence the baseline design is returned instead."
  in
  Arg.(value & flag & info [ "validate" ] ~doc)

let time_budget_arg =
  let doc =
    "Wall-clock budget in seconds for the whole pipeline; stages degrade \
     gracefully (shorter mining, inconclusive proofs drop candidates)."
  in
  Arg.(value & opt (some float) None & info [ "time-budget" ] ~doc ~docv:"SECONDS")

let inject_arg =
  let fault =
    let parse s =
      match Pdat.Faults.of_name s with
      | Some k -> Ok k
      | None ->
          Error
            (`Msg
              (Printf.sprintf
                 "unknown fault %S (expected %s)" s
                 (String.concat ", " (List.map Pdat.Faults.name Pdat.Faults.all))))
    in
    Arg.conv (parse, fun fmt k -> Format.pp_print_string fmt (Pdat.Faults.name k))
  in
  let doc =
    "Self-test: inject the named fault at its stage boundary (implies the \
     validator should catch it). One of flip-constant, bogus-invariant, \
     miswire, perturb-cell."
  in
  Arg.(value & opt (some fault) None & info [ "inject" ] ~doc ~docv:"FAULT")

let lint_gate_arg =
  let doc =
    "Static-analysis gate: $(b,off), $(b,warn) (lint the input and audit the \
     rewire certificate, recording findings in the report) or $(b,strict) \
     (additionally refuse Error-severity findings)."
  in
  Arg.(value
       & opt (enum [ ("off", Analysis.Lint.Off); ("warn", Analysis.Lint.Warn);
                     ("strict", Analysis.Lint.Strict) ])
           Analysis.Lint.Warn
       & info [ "lint" ] ~doc ~docv:"MODE")

let trace_arg =
  let doc =
    "Write an execution trace to $(docv): one span per pipeline stage and \
     per proof worker, each carrying its SAT/rsim/cache counters. A \
     $(b,.jsonl) path selects JSON-lines; anything else is Chrome \
     trace-event JSON (open in chrome://tracing or Perfetto). The \
     $(b,PDAT_TRACE) environment variable is the flagless equivalent."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

let log_arg =
  let doc =
    "Write a structured run log to $(docv): leveled JSONL events \
     (run/stage start and end with budget allocations, prover worker \
     failures, periodic proof heartbeats with settled counts and ETA). \
     $(b,PDAT_LOG) is the flagless equivalent; $(b,PDAT_LOG_LEVEL) \
     (debug/info/warn/error) sets the threshold."
  in
  Arg.(value & opt (some string) None & info [ "log" ] ~doc ~docv:"FILE")

let metrics_out_arg =
  let doc =
    "Dump the run's counters and histograms to $(docv) in \
     OpenMetrics/Prometheus text format when the pipeline finishes \
     (written atomically; $(b,PDAT_METRICS_OUT) is the flagless \
     equivalent)."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~doc ~docv:"FILE")

let reduce_cmd =
  let port_flag =
    Arg.(value & flag & info [ "port" ] ~doc:"Force port-based constraints.")
  in
  let run fast jobs cache_dir sieve absint core subset_name port out validate
      time_budget lint inject_kind trace log metrics_out run_dir resume
      retries =
    if inject_kind <> None && not validate then begin
      Format.eprintf "--inject requires --validate to mean anything@.";
      exit 1
    end;
    if resume && run_dir = None then begin
      Format.eprintf "--resume needs --run-dir to locate the journal@.";
      exit 1
    end;
    let design, cut_nets = build_core ~fast core in
    let env = make_env ~port core subset_name design cut_nets in
    let inject =
      Option.map (fun kind -> { Pdat.Faults.kind; seed = 7 }) inject_kind
    in
    let result =
      match
        Pdat.Pipeline.run ?jobs ?cache:(make_cache cache_dir)
          ?sieve:(if sieve then Some true else None)
          ?absint:(if absint then Some true else None) ~validate
          ?time_budget ~lint ?inject
          ?trace:(Option.map Obs.sink_of_path trace) ?log ?metrics_out
          ?run_dir ~resume ?retries ~design ~env ()
      with
      | r -> r
      | exception Pdat.Pipeline.Rejected diags ->
          Format.eprintf "input netlist rejected by the static gate:@.";
          List.iter
            (fun d -> Format.eprintf "  %s@." (Analysis.Diag.to_string d))
            diags;
          exit 1
      | exception Pdat.Journal.Mismatch reason ->
          Format.eprintf "cannot resume: %s@." reason;
          exit 1
    in
    Format.printf "%a@." Pdat.Pipeline.pp_report result.Pdat.Pipeline.report;
    Option.iter
      (fun path ->
        Netlist.Verilog.write_file result.Pdat.Pipeline.reduced path;
        Format.printf "wrote %s@." path)
      out;
    (* in self-test mode, an uncaught fault is a hard failure *)
    match inject_kind with
    | Some _
      when result.Pdat.Pipeline.report.Pdat.Pipeline.injected_fault <> None
           && not result.Pdat.Pipeline.report.Pdat.Pipeline.validated ->
        ()
    | Some k ->
        Format.eprintf "injected fault %s was NOT caught@." (Pdat.Faults.name k);
        exit 1
    | None -> ()
  in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:"Reduce a core for an ISA subset and optionally export Verilog")
    Term.(const run $ fast $ jobs_arg $ cache_dir_arg $ sieve_flag
          $ absint_flag $ core_arg $ subset_arg
          $ port_flag $ out_arg $ validate_flag $ time_budget_arg
          $ lint_gate_arg $ inject_arg $ trace_arg $ log_arg
          $ metrics_out_arg $ run_dir_arg $ resume_flag $ retries_arg)

(* ---------------- lint ------------------------------------------------ *)

let core_label = function
  | `Ibex -> "ibex"
  | `Cm0 -> "cm0"
  | `Ridecore -> "ridecore"

let lint_cmd =
  let files =
    let doc = "Structural-Verilog netlists to lint." in
    Arg.(value & pos_all file [] & info [] ~doc ~docv:"FILE.v")
  in
  let cores =
    let doc = "Also lint a built-in core (repeatable): ibex, cm0, ridecore." in
    Arg.(value
         & opt_all (enum [ ("ibex", `Ibex); ("cm0", `Cm0); ("ridecore", `Ridecore) ]) []
         & info [ "core" ] ~doc ~docv:"CORE")
  in
  let mode =
    let doc =
      "$(b,strict) exits 1 on any Error-severity finding; $(b,warn) always \
       exits 0."
    in
    Arg.(value
         & opt (enum [ ("warn", Analysis.Lint.Warn); ("strict", Analysis.Lint.Strict) ])
             Analysis.Lint.Strict
         & info [ "mode" ] ~doc ~docv:"MODE")
  in
  let verbose =
    Arg.(value & flag
         & info [ "v"; "verbose" ]
             ~doc:"Also print Info-severity findings (ternary constants).")
  in
  let run fast mode verbose cores files =
    let targets =
      List.map
        (fun f -> (f, fun () -> Netlist.Verilog.read_file f))
        files
      @ List.map
          (fun c -> (core_label c, fun () -> fst (build_core ~fast c)))
          cores
    in
    if targets = [] then begin
      Format.eprintf "nothing to lint: pass FILE.v arguments and/or --core@.";
      exit 2
    end;
    let failed = ref false in
    List.iter
      (fun (label, load) ->
        match load () with
        | exception e ->
            Format.printf "%s: cannot load: %s@." label (Printexc.to_string e);
            failed := true
        | d ->
            let diags = Analysis.Lint.run d in
            List.iter
              (fun diag ->
                if verbose || diag.Analysis.Diag.severity <> Analysis.Diag.Info
                then
                  Format.printf "%s: %s@." label (Analysis.Diag.to_string diag))
              diags;
            let e, w, i = Analysis.Diag.count diags in
            Format.printf "%s: %d cell(s), %d error(s), %d warning(s), %d info@."
              label (Netlist.Design.num_cells d) e w i;
            if e > 0 then failed := true)
      targets;
    if !failed && mode = Analysis.Lint.Strict then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the structural netlist lint over Verilog files and/or cores")
    Term.(const run $ fast $ mode $ verbose $ cores $ files)

(* ---------------- export --------------------------------------------- *)

let export_cmd =
  let run fast core out =
    let design, _ = build_core ~fast core in
    let d, _ = Synthkit.Optimize.run design in
    (match out with
    | Some path ->
        Netlist.Verilog.write_file d path;
        Format.printf "wrote %s@." path
    | None -> print_string (Netlist.Verilog.to_string d));
    Format.printf "%a@." Netlist.Stats.pp (Netlist.Stats.of_design d)
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a core's synthesized baseline netlist")
    Term.(const run $ fast $ core_arg $ out_arg)

(* ---------------- report ---------------------------------------------- *)

let report_cmd =
  let port_flag =
    Arg.(value & flag & info [ "port" ] ~doc:"Force port-based constraints.")
  in
  let dump_cex_arg =
    let doc =
      "Write replayable VCD counterexample waveforms for refuted candidates \
       into $(docv) (created if missing); the report's waveform index \
       references them by file name."
    in
    Arg.(value & opt (some string) None & info [ "dump-cex" ] ~doc ~docv:"DIR")
  in
  let out_dir_arg =
    let doc =
      "Directory receiving $(b,REPORT_<core>.json) and $(b,REPORT_<core>.md)."
    in
    Arg.(value & opt string "." & info [ "out-dir" ] ~doc ~docv:"DIR")
  in
  let run fast jobs cache_dir sieve absint core subset_name port validate
      time_budget dump_cex out_dir log metrics_out run_dir resume retries =
    if resume && run_dir = None then begin
      Format.eprintf "--resume needs --run-dir to locate the journal@.";
      exit 1
    end;
    let design, cut_nets = build_core ~fast core in
    let env = make_env ~port core subset_name design cut_nets in
    let prov = Report.Provenance.create () in
    let result =
      match
        Pdat.Pipeline.run ?jobs ?cache:(make_cache cache_dir)
          ?sieve:(if sieve then Some true else None)
          ?absint:(if absint then Some true else None) ~validate
          ?time_budget ~lint:Analysis.Lint.Warn ~provenance:prov ?dump_cex
          ?log ?metrics_out ?run_dir ~resume ?retries ~design ~env ()
      with
      | r -> r
      | exception Pdat.Pipeline.Rejected diags ->
          Format.eprintf "input netlist rejected by the static gate:@.";
          List.iter
            (fun d -> Format.eprintf "  %s@." (Analysis.Diag.to_string d))
            diags;
          exit 1
      | exception Pdat.Journal.Mismatch reason ->
          Format.eprintf "cannot resume: %s@." reason;
          exit 1
    in
    let target = core_label core in
    (try Unix.mkdir out_dir 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let resume_prov =
      Option.map
        (fun ri ->
          {
            Report.Render.rs_journal = ri.Pdat.Pipeline.journal_path;
            rs_resumed = ri.Pdat.Pipeline.resumed;
            rs_stages = ri.Pdat.Pipeline.resumed_stages;
            rs_shards = ri.Pdat.Pipeline.resumed_shards;
            rs_dropped_lines = ri.Pdat.Pipeline.journal_dropped_lines;
          })
        result.Pdat.Pipeline.report.Pdat.Pipeline.resume
    in
    let istats = result.Pdat.Pipeline.report.Pdat.Pipeline.induction in
    let json =
      Report.Render.json ~target ~induction:istats ?resume:resume_prov prov
    in
    let md =
      Report.Render.markdown ~target
        ~timings:result.Pdat.Pipeline.report.Pdat.Pipeline.stage_seconds
        ~histograms:(Obs.histograms ())
        ~commit:(Report.Meta.git_commit ()) ~induction:istats
        ?resume:resume_prov prov
    in
    let write path s =
      Obs.write_file_atomic path s;
      Format.eprintf "wrote %s@." path
    in
    write (Filename.concat out_dir ("REPORT_" ^ target ^ ".json")) json;
    write (Filename.concat out_dir ("REPORT_" ^ target ^ ".md")) md;
    print_string md
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run the pipeline with full provenance tracking and emit the \
          machine-readable and human run reports")
    Term.(const run $ fast $ jobs_arg $ cache_dir_arg $ sieve_flag
          $ absint_flag $ core_arg $ subset_arg
          $ port_flag $ validate_flag $ time_budget_arg $ dump_cex_arg
          $ out_dir_arg $ log_arg $ metrics_out_arg $ run_dir_arg
          $ resume_flag $ retries_arg)

(* ---------------- chaos ------------------------------------------------ *)

let chaos_cmd =
  let port_flag =
    Arg.(value & flag & info [ "port" ] ~doc:"Force port-based constraints.")
  in
  let dir_arg =
    let doc =
      "Scratch directory for the matrix's cache and run directories \
       (created if missing)."
    in
    Arg.(value & opt string "_chaos" & info [ "dir" ] ~doc ~docv:"DIR")
  in
  let run fast jobs retries core subset_name port dir =
    let design, cut_nets = build_core ~fast core in
    let env = make_env ~port core subset_name design cut_nets in
    let scenarios =
      Pdat.Chaos_harness.matrix ?jobs ?retries ~dir ~design ~env ()
    in
    List.iter
      (fun s ->
        Format.printf "%-16s %s  %s@." s.Pdat.Chaos_harness.name
          (if s.Pdat.Chaos_harness.ok then "ok  " else "FAIL")
          s.Pdat.Chaos_harness.detail)
      scenarios;
    if not (Pdat.Chaos_harness.all_ok scenarios) then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the crash-safety chaos matrix (worker kills, cache \
          truncation, SIGTERM + resume) and verify every scenario lands \
          on the undisturbed run's result")
    Term.(const run $ fast $ jobs_arg $ retries_arg $ core_arg $ subset_arg
          $ port_flag $ dir_arg)

(* ---------------- perf ------------------------------------------------- *)

let perf_cmd =
  let files =
    let doc =
      "BENCH envelopes to compare: the first is the baseline, every \
       following file is diffed against it."
    in
    Arg.(non_empty & pos_all string [] & info [] ~doc ~docv:"BENCH.json")
  in
  let rel_tol_arg =
    let doc =
      "Relative increase tolerated on gated metrics (timings and histogram \
       percentiles) before a regression is declared."
    in
    Arg.(value & opt float 0.15 & info [ "rel-tol" ] ~doc ~docv:"FRAC")
  in
  let abs_floor_arg =
    let doc =
      "Absolute floor in seconds for timing metrics: an increase below it \
       never gates, whatever the relative change (noise guard)."
    in
    Arg.(value & opt float 0.05 & info [ "abs-floor" ] ~doc ~docv:"SECONDS")
  in
  let abs_floor_hist_arg =
    let doc =
      "Absolute floor in seconds for histogram percentiles (per-call \
       latencies are far smaller than stage timings, so they get their \
       own floor)."
    in
    Arg.(value
         & opt float 0.0005
         & info [ "abs-floor-hist" ] ~doc ~docv:"SECONDS")
  in
  let out_arg =
    let doc = "Also write the markdown delta table(s) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~doc ~docv:"FILE")
  in
  let run rel_tol abs_floor_s abs_floor_hist_s out files =
    let thresholds = { Report.Perf.rel_tol; abs_floor_s; abs_floor_hist_s } in
    match files with
    | [] | [ _ ] ->
        Format.eprintf
          "perf needs a baseline and at least one current BENCH file@.";
        exit 2
    | base_path :: rest -> (
        try
          let base = Report.Perf.load base_path in
          let regressed = ref false in
          let buf = Buffer.create 2048 in
          List.iter
            (fun path ->
              let cur = Report.Perf.load path in
              let deltas =
                Report.Perf.compare_benches ~thresholds ~base cur
              in
              if Report.Perf.regressions deltas <> [] then regressed := true;
              Buffer.add_string buf
                (Report.Perf.markdown_table ~thresholds ~base cur deltas);
              Buffer.add_char buf '\n')
            rest;
          let text = Buffer.contents buf in
          print_string text;
          Option.iter
            (fun path ->
              Obs.write_file_atomic path text;
              Format.eprintf "wrote %s@." path)
            out;
          if !regressed then exit 1
        with Report.Perf.Perf_error msg ->
          Format.eprintf "perf: %s@." msg;
          exit 2)
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:
         "Compare schema-versioned BENCH_*.json envelopes with noise-aware \
          thresholds and gate on regressions (exit 1 on a regression, 2 on \
          a missing/mismatched file)")
    Term.(const run $ rel_tol_arg $ abs_floor_arg $ abs_floor_hist_arg
          $ out_arg $ files)

(* ---------------- tables ---------------------------------------------- *)

let table1_cmd =
  Cmd.v (Cmd.info "table1" ~doc:"Print the paper's Table I")
    Term.(const (fun () -> Format.printf "%a@." Experiments.Tables.pp_table1 ()) $ const ())

let table2_cmd =
  Cmd.v (Cmd.info "table2" ~doc:"Print the paper's Table II")
    Term.(const (fun () -> Format.printf "%a@." Experiments.Tables.pp_table2 ()) $ const ())

let () =
  let info =
    Cmd.info "pdat" ~version:"1.0.0"
      ~doc:"Property-driven automatic generation of reduced-ISA hardware"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; reduce_cmd; report_cmd; export_cmd; lint_cmd;
            chaos_cmd; perf_cmd; table1_cmd; table2_cmd ]))
