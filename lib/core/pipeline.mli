(** The PDAT pipeline (paper Figure 2): Property Checking, Netlist
    Rewiring, Logic Resynthesis — plus the guard layer around them.

    [run] takes the design to be reduced and an {!Environment} built
    over it, mines property-library candidates on the environment's
    model, proves them by mutual k-induction, rewires the original
    netlist with the survivors, and resynthesizes.  The baseline
    against which the paper reports area/gate deltas is the original
    design pushed through the same resynthesis flow with no PDAT
    transformation ({!baseline}).

    The guard layer adds:
    - {b differential validation} ([~validate:true]): the reduced
      design is co-simulated lock-step against the raw original under
      environment-constrained stimuli ({!Validate.run}); on any
      mismatch the pipeline returns the baseline design instead of the
      reduction, recording the reason — [run ~validate] never returns
      an unvalidated reduction;
    - {b deadlines} ([~time_budget]): a wall-clock budget split across
      the budgeted stages in proportion to fixed weights (mine 1.0,
      refine 1.0, prove 2.5, validate 0.7 — the validate weight only
      counts when validation is on).  Each stage claims its share of the
      budget {e remaining at its start}, so a stage finishing early
      donates its slack to every later stage, and with validation off
      the proof stage absorbs the validator's share instead of
      forfeiting it.  Every stage degrades gracefully — truncated
      mining and an out-of-time prover only drop candidates, which is
      conservative;
    - {b fault injection} ([~inject]): corrupts one stage hand-off so
      the validator's catch rate can be tested ({!self_test});
    - {b static analysis} ([~lint]): the input netlist is linted
      ({!Analysis.Lint}) and the rewiring stage emits a certificate
      that is audited against the genuinely proved invariant set
      ({!Analysis.Audit}).  [Warn] records the findings in the report;
      [Strict] raises {!Rejected} on an Error-severity input finding
      and falls back to {!baseline} on an audit rejection.  Basic
      well-formedness (net ranges, arities) is checked even with the
      gate [Off], so a malformed input always surfaces as a located
      {!Rejected}, never as a bare exception from deep inside a
      stage. *)

exception Rejected of Analysis.Diag.t list
(** The input netlist was refused by the static gate.  The payload is
    never empty and every diagnostic is located (rule id plus
    net/cell/port).  A printer is registered with [Printexc]. *)

type resume_info = {
  journal_path : string;  (** [<run_dir>/journal.jsonl] *)
  resumed : bool;         (** this run replayed a prior journal *)
  resumed_stages : string list;
      (** stages whose results were replayed instead of recomputed *)
  resumed_shards : int;
      (** proof shards settled from journal checkpoints (partial-proof
          resume; [0] when the whole proof stage was replayed) *)
  journal_dropped_lines : int;
      (** torn/corrupt journal tail lines truncated during replay *)
}

type report = {
  variant : string;
  mined : int;
  proved : int;
  induction : Engine.Induction.stats;
  before : Netlist.Stats.t;   (** baseline-optimized original *)
  after : Netlist.Stats.t;    (** the design actually returned *)
  seconds : float;
  stage_seconds : (string * float) list;
      (** wall-clock per stage, in execution order: ["mine"],
          ["refine"], ["prove"], ["rewire"], ["resynth"], ["baseline"],
          and ["validate"] when enabled *)
  counters : (string * float) list;
      (** {!Obs} counters this run moved (SAT decisions/conflicts/
          propagations, simulated rsim cycles, proof-cache hits/misses),
          as deltas against the counter state at [run] entry *)
  jobs : int;
      (** worker processes the proof stage was allowed, after clamping
          the request to the online core count *)
  absint : bool;
      (** the abstract-interpretation tier ran in front of the prover
          (static discharge + induction strengthening) *)
  proof_budget_s : float;
      (** wall-clock granted to the proof stage by the budget allocator;
          [0.] when the run had no [~time_budget] *)
  validation : Validate.outcome option;
      (** [None] unless [~validate:true] was passed *)
  validated : bool;
      (** the returned design passed differential validation *)
  fallback_reason : string option;
      (** when set, [reduced] is the baseline design, not a reduction *)
  injected_fault : string option;
      (** description of the applied fault, in self-test mode *)
  lint_gate : Analysis.Lint.gate;  (** the [~lint] setting of the run *)
  input_lint : Analysis.Diag.t list;
      (** input-netlist lint findings; [[]] when the gate is [Off] *)
  certificate_edits : int;
      (** number of certified edits the rewiring stage performed *)
  audit : Analysis.Diag.t list;
      (** certificate-audit findings; [[]] = accepted (or gate [Off]) *)
  resume : resume_info option;
      (** journal/resume provenance; [None] unless [?run_dir] was given *)
}

type result = {
  reduced : Netlist.Design.t;
  report : report;
}

val baseline : Netlist.Design.t -> Netlist.Design.t * Netlist.Stats.t
(** Plain synthesis of the input, the paper's "Full" variant. *)

val default_jobs : unit -> int
(** The proof-stage worker count used when [run] gets no [?jobs]: the
    [PDAT_JOBS] environment variable (default 1), clamped to
    {!Obs.Hw.online_cores} — forking more provers than cores only adds
    scheduler churn.  An explicit [?jobs] is clamped the same way. *)

val max_cex_dumps : int
(** Cap on waveforms written per run by [?dump_cex] (records are
    visited in provenance-id order, so the sample is deterministic). *)

val default_sieve : unit -> bool
(** The sieve setting used when [run] gets no [?sieve]: the
    [PDAT_SIEVE] environment variable ("1"/"true"/"on"/"yes" — default
    off). *)

val default_absint : unit -> bool
(** The absint setting used when [run] gets no [?absint]: the
    [PDAT_ABSINT] environment variable ("1"/"true"/"on"/"yes" — default
    off). *)

val run :
  ?rsim:Engine.Rsim.config ->
  ?refine:Engine.Rsim.config ->
  ?induction:Engine.Induction.options ->
  ?jobs:int ->
  ?cache:Engine.Proof_cache.t ->
  ?sieve:bool ->
  ?absint:bool ->
  ?validate:bool ->
  ?validate_config:Validate.config ->
  ?validate_stimulus:Engine.Stimulus.t ->
  ?time_budget:float ->
  ?lint:Analysis.Lint.gate ->
  ?inject:Faults.t ->
  ?provenance:Report.Provenance.t ->
  ?dump_cex:string ->
  ?trace:Obs.sink ->
  ?log:string ->
  ?metrics_out:string ->
  ?run_dir:string ->
  ?resume:bool ->
  ?retries:int ->
  design:Netlist.Design.t ->
  env:Environment.t ->
  unit ->
  result
(** [rsim] controls candidate mining, [refine] the long candidate-only
    simulation pass that weeds out false candidates before the prover
    (default: 4 runs of 2048 cycles).

    [jobs] is the proof-stage worker count, handed to
    {!Engine.Induction.prove_parallel}; it defaults to the [PDAT_JOBS]
    environment variable, or 1 (fully serial, no forking).  [cache], if
    given, settles previously-decided candidates without SAT and is
    flushed to disk (when disk-backed) right after the proof stage.

    [sieve] (default {!default_sieve}, i.e. [PDAT_SIEVE]) enables the
    simulation-signature sieve in front of the prover
    ({!Engine.Induction.prove_parallel}): pointwise-equivalent
    candidates are proved once per class and the verdict transfers,
    without changing the proved set.  Stage-level journal entries are
    sieve-agnostic (they record surviving candidate keys), so a
    journaled run may be resumed with either setting; shard-level
    checkpoints match only between runs with the same setting.

    [absint] (default {!default_absint}, i.e. [PDAT_ABSINT]) runs the
    abstract interpreter ({!Engine.Absint}) over the environment model
    before the proof stage: candidates its conditioned post-fixpoint
    already proves are discharged statically ([V_static_proved], no SAT
    call) and its remaining facts strengthen k=1 induction as
    every-frame assumption clauses.  Because strengthening changes what
    a run can prove, the absint facts digest salts the proof-cache
    scope and the shard fingerprints, and the run digest carries an
    absint marker — a journal written with one setting refuses to
    resume under the other ({!Journal.Mismatch}) instead of silently
    replaying a different proved set.

    [validate] (default [false]) enables differential validation; on a
    divergence or an uncomparable interface the result falls back to
    {!baseline} with [fallback_reason] set.  [validate_stimulus]
    overrides the validator's drive (needed for meaningful coverage
    with cutpoint environments, see {!Validate.run}).

    [time_budget] is a soft wall-clock budget in seconds for the whole
    run; stages check it at safe points, so the total can overshoot by
    one SAT call or simulation cycle.  A zero or negative budget is
    already spent: every budgeted stage degrades to its empty result
    immediately (uniform with {!Engine.Induction.options} and the raw
    solver's deadline).

    [run_dir], when given, makes the run {e journaled}: an append-only,
    checksummed [journal.jsonl] in that directory records the run's
    digest, each completed stage's surviving candidate keys, and each
    proof shard's checkpoint as they happen (see {!Journal}).
    [resume:true] replays that journal instead of starting cold —
    stages and proof shards already journaled are not recomputed, and a
    torn tail from a crash is truncated away; raises
    {!Journal.Mismatch} if the journal belongs to a different
    netlist/environment.  [retries] is the per-shard retry count of the
    supervised prover (see {!Engine.Induction.prove_parallel}).  The
    report's [resume] field records what was replayed.

    [lint] (default [Off]) is the static-analysis gate described above.

    [inject] corrupts one stage boundary (see {!Faults}); intended for
    validator self-tests only.

    [provenance], when given, is filled as the run progresses: every
    post-restrict mined candidate is registered and annotated with its
    mining round, refinement kill (with replayable counterexample),
    prover verdict/shard/cache-hit, the rewire certificate with
    per-edit invariant citations and attributed dead cells, and the
    four design snapshots (original, rewired, reduced, baseline) —
    everything {!Report.Render} needs.  Audit diagnostics then cite
    provenance ids ([inv#N]).

    [dump_cex] names a directory (created if missing) into which the
    first {!max_cex_dumps} refuted candidates' counterexamples are
    written as [cex_inv<id>.vcd] waveforms, replayed from reset through
    the environment model with the candidate's nets included as extra
    signals.  [dump_cex] without [provenance] uses a private database
    internally, so the dump works on its own.

    [trace] writes an execution trace of the run to the given {!Obs}
    sink: one span per stage, one span per forked proof worker (under
    the worker's own pid), each carrying the SAT/rsim/cache counters it
    moved, plus final counter totals.  Chrome sinks load directly in
    [chrome://tracing] / Perfetto.  When [trace] is absent, a non-empty
    [PDAT_TRACE] environment variable selects a sink by path
    ([.jsonl] → JSONL, anything else → Chrome JSON).  Tracing state is
    restored (and the file written) even when the run raises.

    [log] names a structured run-log file: leveled JSONL events
    ({!Obs.Log}) — run-start/run-end, stage-start (with its budget
    allocation) and stage-end per stage, prover worker failures and
    periodic proof heartbeats with settled-candidate counts and the
    budget-derived ETA.  When absent, a non-empty [PDAT_LOG]
    environment variable names the file; [PDAT_LOG_LEVEL]
    (debug/info/warn/error) sets the threshold, default info.  The log
    is appended to (crash-safe: one [write] per line), left untouched
    if the caller already opened one, and closed on every exit path
    when [run] opened it.

    [metrics_out] names a file that receives the process's {!Obs}
    counters and histograms in OpenMetrics/Prometheus text format
    ({!Obs.openmetrics}) when the run finishes — written atomically
    (tmp + rename) and even when the run raises.  When absent, a
    non-empty [PDAT_METRICS_OUT] selects the path.

    @raise Rejected on a malformed input netlist (always), or on any
    Error-severity input lint finding when [lint = Strict]. *)

type self_test_entry = {
  fault : Faults.kind;
  injected : string option;  (** [None] if no eligible corruption site *)
  caught : bool;             (** validation failed and fell back *)
  caught_statically : bool;
      (** the certificate audit rejected the run — the fault was caught
          with zero simulation cycles, before the validator ran *)
  cex_files : string list;
      (** counterexample waveforms dumped for this run's refuted
          candidates; [[]] unless [?dump_cex] was given *)
}

val self_test :
  ?rsim:Engine.Rsim.config ->
  ?refine:Engine.Rsim.config ->
  ?induction:Engine.Induction.options ->
  ?jobs:int ->
  ?cache:Engine.Proof_cache.t ->
  ?validate_config:Validate.config ->
  ?validate_stimulus:Engine.Stimulus.t ->
  ?lint:Analysis.Lint.gate ->
  ?seed:int ->
  ?dump_cex:string ->
  design:Netlist.Design.t ->
  env:Environment.t ->
  unit ->
  self_test_entry list
(** Runs the full pipeline once per fault class with validation on and
    the static gate at [lint] (default [Strict]), reporting whether
    each injected fault was caught — and whether the certificate audit
    caught it statically, which it must for every pre-resynthesis
    fault class ([Flip_constant], [Bogus_invariant], [Miswire]).  An
    entry with [injected = None] means the class had no eligible site
    in this design (e.g. nothing was proved constant).  [dump_cex]
    gives each fault run its own subdirectory (named after the fault)
    of refuted-candidate waveforms, listed in the entry's [cex_files]
    — so a failing self-test ships with the waveform that explains
    which candidates the engine itself rejected. *)

val pp_report : Format.formatter -> report -> unit

val area_delta_pct : report -> float
(** Percent area reduction of [after] versus [before]. *)

val gate_delta_pct : report -> float
