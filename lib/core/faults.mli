(** Seedable fault injection at the pipeline's stage boundaries.

    Each fault class corrupts the flow at exactly one hand-off point —
    a proved invariant flipped before rewiring, a false invariant
    smuggled into the proved set, one rewired pin tied to the wrong
    rail, one resynthesized cell's function perturbed — so tests (and
    {!Pipeline.self_test}) can assert that the differential validator
    catches every class.  Injectors only pick corruption sites inside
    the output cone; a fault nothing can observe would be a vacuous
    test of the validator.

    All injectors are pure: they return corrupted copies and leave
    their inputs untouched.  [None] means the fault class is not
    applicable to the given data (e.g. no proved constant to flip). *)

type kind =
  | Flip_constant    (** invert the polarity of one proved [Const] *)
  | Bogus_invariant  (** add a false [Const] claim on a flip-flop output *)
  | Miswire          (** flip one rail-redirected pin of the rewired netlist *)
  | Perturb_cell     (** complement one resynthesized cell's function *)

type t = {
  kind : kind;
  seed : int;  (** selects among eligible corruption sites *)
}

val all : kind list

val name : kind -> string
val of_name : string -> kind option
(** ["flip-constant"], ["bogus-invariant"], ["miswire"],
    ["perturb-cell"] (underscores also accepted). *)

(** {1 Structural faults}

    Where the four stage faults corrupt pipeline {e data}, structural
    faults corrupt the {e netlist shape} itself — the malformations
    the lint rules exist to reject. *)

type structural =
  | Multi_driven     (** add a second driver onto an internal net *)
  | Comb_cycle       (** feed a combinational cell its own output *)
  | Undriven_input   (** feed a cell pin from a fresh floating net *)

type seeded = {
  seeded : Netlist.Design.t;  (** corrupted copy; the input is untouched *)
  rule : string;  (** lint rule id expected to fire, e.g. ["multi-driven"] *)
  net : Netlist.Design.net option;  (** expected diagnostic net, if any *)
  cell : int option;  (** expected diagnostic cell, if any *)
  description : string;
}

val structural_all : structural list
val structural_name : structural -> string

val seed_structural :
  structural -> seed:int -> Netlist.Design.t -> seeded option
(** [None] when the design has no eligible site (e.g. no internal
    cells).  The seeded fault is always observable by the lint rules:
    tests assert that [Analysis.Lint.run] reports [rule] at [net]/[cell]. *)

val corrupt_proved :
  t ->
  design:Netlist.Design.t ->
  Engine.Candidate.t list ->
  (Engine.Candidate.t list * string) option
(** [Flip_constant] / [Bogus_invariant]: corrupts the proved set before
    rewiring.  The string describes the corruption.  [None] for the
    other kinds, or when no eligible site exists. *)

val corrupt_rewired :
  t ->
  original:Netlist.Design.t ->
  rewired:Netlist.Design.t ->
  (Netlist.Design.t * string) option
(** [Miswire]: finds a pin the rewiring stage redirected to a constant
    rail (by diffing against [original] — rewiring preserves cell ids)
    and ties it to the opposite rail. *)

val corrupt_reduced :
  t -> reduced:Netlist.Design.t -> (Netlist.Design.t * string) option
(** [Perturb_cell]: replaces one cell with its complement
    (AND2→NAND2, XOR2→XNOR2, BUF→INV, ...) or flips a flip-flop's
    reset value, preferring cells that drive primary outputs. *)
