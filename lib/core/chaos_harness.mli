(** The chaos matrix: end-to-end crash-safety scenarios over a real
    pipeline run.

    Each scenario injects one fault class via the {!Engine.Chaos} hooks
    ([PDAT_CHAOS]), runs the full pipeline, and asserts that the
    outcome — the proved invariant set and the reduced netlist — is
    byte-identical to an undisturbed serial run of the same design:

    - ["worker-kill"]: every proof worker SIGKILLs itself at shard
      start (first attempt); supervision must retry and lose nothing.
    - ["cache-trunc"]: the first flushed proof-cache scope file is
      truncated mid-entry; the next run over the same cache directory
      must salvage the valid prefix, quarantine the damage, and still
      agree with the baseline.
    - ["sigterm-resume"]: a forked child runs the pipeline journaled
      and SIGTERMs itself at the proof stage; the parent then resumes
      from the journal and must land on the baseline result.

    The harness is used by the [pdat chaos] CLI command and the CI
    chaos job. *)

type scenario = {
  name : string;
  ok : bool;
  detail : string;  (** human-readable evidence either way *)
}

val matrix :
  ?jobs:int ->
  ?retries:int ->
  dir:string ->
  design:Netlist.Design.t ->
  env:Environment.t ->
  unit ->
  scenario list
(** Run the full matrix.  [dir] is a scratch directory (created if
    missing) for the cache and run directories the scenarios need;
    [jobs] (default 2) is the forced worker count for the parallel
    scenarios, [retries] (default 2) the supervision retry budget.
    Temporarily sets [PDAT_CHAOS] / [PDAT_FORCE_CORES] around each
    scenario and restores them. *)

val all_ok : scenario list -> bool
