open Hdl.Ops
module D = Netlist.Design
module Ctx = Hdl.Ctx

type t = {
  model : D.t;
  assume : D.net;
  stimulus : Engine.Stimulus.t;
  cuts : (D.net * D.net) array;
  description : string;
}

let unconstrained d =
  {
    model = D.copy d;
    assume = D.net_true;
    stimulus = Engine.Stimulus.unconstrained;
    cuts = [||];
    description = "unconstrained";
  }

(* conjunction of the encoding's fixed bits over a signal slice *)
let match_enc word (enc : Isa.Encoding.t) =
  let terms = ref [] in
  for i = 0 to enc.Isa.Encoding.width - 1 do
    if enc.Isa.Encoding.mask land (1 lsl i) <> 0 then begin
      let b = bit word i in
      terms := (if enc.Isa.Encoding.value land (1 lsl i) <> 0 then b else ~:b) :: !terms
    end
  done;
  match !terms with
  | [] -> vdd word.Ctx.ctx
  | [ x ] -> x
  | l -> reduce_and (concat l)

(* register fields used by each RV32 instruction, for the RV32E
   restriction (x16..x31 unreachable) *)
let rv32_reg_fields name =
  match name with
  | "lui" | "auipc" | "jal" -> [ `Rd ]
  | "jalr" | "lb" | "lh" | "lw" | "lbu" | "lhu" | "addi" | "slti" | "sltiu"
  | "xori" | "ori" | "andi" | "slli" | "srli" | "srai" ->
      [ `Rd; `Rs1 ]
  | "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" | "sb" | "sh" | "sw" ->
      [ `Rs1; `Rs2 ]
  | "add" | "sub" | "sll" | "slt" | "sltu" | "xor" | "srl" | "sra" | "or"
  | "and" | "mul" | "mulh" | "mulhsu" | "mulhu" | "div" | "divu" | "rem"
  | "remu" ->
      [ `Rd; `Rs1; `Rs2 ]
  | "csrrw" | "csrrs" | "csrrc" -> [ `Rd; `Rs1 ]
  | "csrrwi" | "csrrsi" | "csrrci" -> [ `Rd ]
  | _ -> []

let field_top_bit = function `Rd -> 11 | `Rs1 -> 19 | `Rs2 -> 24

let rv32e_extra word name =
  List.fold_left
    (fun acc f -> acc &: ~:(bit word (field_top_bit f)))
    (vdd word.Ctx.ctx)
    (rv32_reg_fields name)

(* monitor over a 32-bit RISC-V fetch word *)
let riscv_monitor c word ~rv32e subset =
  let instrs =
    List.map (fun nm -> Isa.Rv32.find nm) (Isa.Subset.instructions subset)
  in
  let match_one i =
    let m =
      if i.Isa.Rv32.enc.Isa.Encoding.width = 16 then
        match_enc (bits word ~hi:15 ~lo:0) i.Isa.Rv32.enc
      else match_enc word i.Isa.Rv32.enc
    in
    if rv32e && i.Isa.Rv32.enc.Isa.Encoding.width = 32 then
      m &: rv32e_extra word i.Isa.Rv32.name
    else m
  in
  let wide, narrow =
    List.partition (fun i -> i.Isa.Rv32.enc.Isa.Encoding.width = 32) instrs
  in
  let or_all = function
    | [] -> gnd c
    | l -> List.fold_left ( |: ) (gnd c) (List.map match_one l)
  in
  let is16 = ~:(eq_const (bits word ~hi:1 ~lo:0) 0b11) in
  (is16 &: or_all narrow) |: (~:is16 &: or_all wide)

(* constructive stimulus: each lane of each 32-bit slot of the
   instruction bus gets a fresh subset instruction (superscalar ports
   carry several instruction words) *)
let riscv_stimulus nets ~rv32e subset =
  let instrs =
    Array.of_list
      (List.map (fun nm -> Isa.Rv32.find nm) (Isa.Subset.instructions subset))
  in
  let clear_reg_fields name w =
    List.fold_left
      (fun w f -> w land lnot (1 lsl field_top_bit f))
      w (rv32_reg_fields name)
  in
  let gen rng =
    let i = instrs.(Random.State.int rng (Array.length instrs)) in
    let w = Isa.Encoding.random_instance rng i.Isa.Rv32.enc in
    let w =
      if i.Isa.Rv32.enc.Isa.Encoding.width = 16 then
        w lor (Random.State.int rng 0x10000 lsl 16)
      else w
    in
    if rv32e then clear_reg_fields i.Isa.Rv32.name w else w
  in
  let n_slots = Array.length nets / 32 in
  let slots = Array.init n_slots (fun s -> Array.sub nets (32 * s) 32) in
  Engine.Stimulus.
    {
      drive =
        (fun rng ->
          Array.to_list slots
          |> List.concat_map (fun slot -> bus_driver slot gen rng));
    }

let riscv_port ?(rv32e = false) d ~port subset =
  let model = D.copy d in
  let nets = D.input_bus model port in
  if Array.length nets mod 32 <> 0 then
    invalid_arg "Environment.riscv_port: port width must be a multiple of 32";
  let c = Ctx.wrap model in
  (* every 32-bit word on the port must be a subset instruction *)
  let valid =
    List.init (Array.length nets / 32) (fun s ->
        let word = Ctx.signal c (Array.sub nets (32 * s) 32) in
        riscv_monitor c word ~rv32e subset)
    |> List.fold_left ( &: ) (vdd c)
  in
  let assume = valid.Ctx.nets.(0) in
  D.set_net_name model assume "pdat_assume";
  {
    model;
    assume;
    stimulus = riscv_stimulus (D.input_bus d port) ~rv32e subset;
    cuts = [||];
    description =
      Printf.sprintf "port-based %s%s" (Isa.Subset.name subset)
        (if rv32e then " (rv32e registers)" else "");
  }

let riscv_cutpoint ?(rv32e = false) d ~nets subset =
  let model, fresh = Engine.Cutpoint.apply d ~name:"pdat_cut" nets in
  let c = Ctx.wrap model in
  let word = Ctx.signal c fresh in
  let valid = riscv_monitor c word ~rv32e subset in
  let assume = valid.Ctx.nets.(0) in
  D.set_net_name model assume "pdat_assume";
  (* The stimulus drives the cut model's fresh inputs. *)
  {
    model;
    assume;
    stimulus = riscv_stimulus fresh ~rv32e subset;
    cuts = Array.init (Array.length nets) (fun i -> (nets.(i), fresh.(i)));
    description = Printf.sprintf "cutpoint-based %s" (Isa.Subset.name subset);
  }

let arm_port d ~port subset =
  let model = D.copy d in
  let nets = D.input_bus model port in
  let c = Ctx.wrap model in
  let hw = Ctx.signal c nets in
  let instrs =
    List.map (fun nm -> Isa.Armv6m.find nm) (Isa.Subset.instructions subset)
  in
  let narrow, wide =
    List.partition (fun i -> i.Isa.Armv6m.enc.Isa.Encoding.width = 16) instrs
  in
  let narrow_match =
    List.map (fun i -> match_enc hw i.Isa.Armv6m.enc) narrow
  in
  let half_enc (enc : Isa.Encoding.t) ~high =
    let shift = if high then 16 else 0 in
    Isa.Encoding.make ~width:16
      ~mask:((enc.Isa.Encoding.mask lsr shift) land 0xFFFF)
      ~value:((enc.Isa.Encoding.value lsr shift) land 0xFFFF)
  in
  let wide_matches =
    List.concat_map
      (fun i ->
        [ match_enc hw (half_enc i.Isa.Armv6m.enc ~high:true);
          match_enc hw (half_enc i.Isa.Armv6m.enc ~high:false) ])
      wide
  in
  let valid =
    List.fold_left ( |: ) (gnd c) (narrow_match @ wide_matches)
  in
  let assume = valid.Ctx.nets.(0) in
  D.set_net_name model assume "pdat_assume";
  let all = Array.of_list instrs in
  let gen rng =
    let i = all.(Random.State.int rng (Array.length all)) in
    let w = Isa.Encoding.random_instance rng i.Isa.Armv6m.enc in
    if i.Isa.Armv6m.enc.Isa.Encoding.width = 16 then w
    else if Random.State.bool rng then (w lsr 16) land 0xFFFF
    else w land 0xFFFF
  in
  {
    model;
    assume;
    stimulus =
      Engine.Stimulus.{ drive = (fun rng -> bus_driver (D.input_bus d port) gen rng) };
    cuts = [||];
    description = Printf.sprintf "port-based %s" (Isa.Subset.name subset);
  }

let constrain_low_bits t nets ~bits:k =
  let c = Ctx.wrap t.model in
  let lows = Array.sub nets 0 k in
  let all_zero = ~:(reduce_or (Ctx.signal c lows)) in
  let combined =
    if t.assume = D.net_true then all_zero
    else all_zero &: Ctx.signal c [| t.assume |]
  in
  {
    t with
    model = t.model;
    assume = combined.Ctx.nets.(0);
    description = t.description ^ " + aligned";
  }

(* --- ternary input classification ------------------------------------ *)

(* bit of a 32-bit instruction slot is constant iff every encoding in
   the subset fixes it to the same value; used by the ternary engine *)
let ternary_classes subset =
  let encs = Isa.Subset.encodings subset in
  let bit_class i =
    let rec go acc = function
      | [] -> (
          match acc with
          | Some 0 -> Engine.Ternary.Zero
          | Some _ -> Engine.Ternary.One
          | None -> Engine.Ternary.Free)
      | (e : Isa.Encoding.t) :: rest ->
          if i >= e.Isa.Encoding.width || e.Isa.Encoding.mask land (1 lsl i) = 0
          then Engine.Ternary.Free
          else
            let v = (e.Isa.Encoding.value lsr i) land 1 in
            (match acc with
            | None -> go (Some v) rest
            | Some v' when v' = v -> go acc rest
            | Some _ -> Engine.Ternary.Free)
    in
    if i >= 32 || encs = [] then Engine.Ternary.Free else go None encs
  in
  Array.init 32 bit_class

let ternary_classify d ~port subset =
  let table = ternary_classes subset in
  let nets = D.input_bus d port in
  let index = Hashtbl.create 64 in
  Array.iteri (fun i n -> Hashtbl.replace index n (i mod 32)) nets;
  fun n ->
    match Hashtbl.find_opt index n with
    | Some bit -> table.(bit)
    | None -> Engine.Ternary.Free
