module D = Netlist.Design
module C = Netlist.Cell

(* Substitutions can chain (an implication redirects a gate output to
   an input that is itself proved constant), so resolve the map
   transitively before substituting.  Alongside the rewired netlist we
   record a certificate: one edit per redirected net, citing the proved
   invariant that justifies it, so the static audit can replay and
   re-validate the whole transformation. *)
let apply_certified d cands =
  let d = D.copy d in
  let target = Hashtbl.create 64 in
  let const_just = Hashtbl.create 16 in
  (* constants win over implications on the same net; the last claim on
     a net wins, as Hashtbl.replace does *)
  List.iter
    (fun cand ->
      match cand with
      | Engine.Candidate.Const (n, b) ->
          Hashtbl.replace target n (if b then D.net_true else D.net_false);
          Hashtbl.replace const_just n cand
      | Engine.Candidate.Implies _ -> ())
    cands;
  (* one certificate edit per tied net, emitted in first-claim order
     with the surviving (last) claim as justification *)
  let emitted = Hashtbl.create 16 in
  let const_edits =
    List.filter_map
      (fun cand ->
        match cand with
        | Engine.Candidate.Const (n, _) when not (Hashtbl.mem emitted n) ->
            Hashtbl.add emitted n ();
            Some
              {
                Analysis.Certificate.net = n;
                target = Hashtbl.find target n;
                via = Analysis.Certificate.Direct;
                justification = Hashtbl.find const_just n;
              }
        | _ -> None)
      cands
  in
  let implies_edits = ref [] in
  List.iter
    (fun cand ->
      match cand with
      | Engine.Candidate.Const _ -> ()
      | Engine.Candidate.Implies { cell; a; b } ->
          if cell < 0 || cell >= D.num_cells d then
            invalid_arg "Rewire.apply: unknown cell";
          let c = D.cell d cell in
          if not (Hashtbl.mem target c.D.out) then begin
            let record t via =
              Hashtbl.replace target c.D.out t;
              implies_edits :=
                {
                  Analysis.Certificate.net = c.D.out;
                  target = t;
                  via;
                  justification = cand;
                }
                :: !implies_edits
            in
            (* a -> b on this gate *)
            match c.D.kind with
            | C.And2 -> record a Analysis.Certificate.Direct (* a & b = a *)
            | C.Or2 -> record b Analysis.Certificate.Direct (* a | b = b *)
            | C.Nand2 ->
                let inv_cell = D.num_cells d in
                let o = D.add_cell d C.Inv [| a |] in
                record o
                  (Analysis.Certificate.Fresh_inv
                     { cell = inv_cell; out = o; input = a })
            | C.Nor2 ->
                let inv_cell = D.num_cells d in
                let o = D.add_cell d C.Inv [| b |] in
                record o
                  (Analysis.Certificate.Fresh_inv
                     { cell = inv_cell; out = o; input = b })
            | C.Const0 | C.Const1 | C.Buf | C.Inv | C.Xor2 | C.Xnor2
            | C.And3 | C.Or3 | C.Nand3 | C.Nor3 | C.And4 | C.Or4 | C.Mux2
            | C.Aoi21 | C.Oai21 | C.Dff ->
                ()
          end)
    cands;
  let rec resolve seen n =
    match Hashtbl.find_opt target n with
    | Some n' when not (List.mem n' seen) -> resolve (n :: seen) n'
    | Some _ | None -> n
  in
  ( D.substitute d (fun n -> resolve [] n),
    { Analysis.Certificate.edits = const_edits @ List.rev !implies_edits } )

let apply d cands = fst (apply_certified d cands)
