(** The Property Library (paper section IV.1).

    Properties are semantically-meaningful invariants over a gate's
    pins, bound to every instance of the matching cell kind: output
    stuck-at constants for every cell, and pairwise input implications
    for AND/NAND/OR/NOR gates (Listing 1's [and_in_A2_A1] family).
    Because the properties live at the standard-cell level they apply
    to any netlist in the library, including obfuscated ones.

    Operationally the library is realized in two steps: constrained
    random simulation proposes candidate instances ({!mine}), and
    {!Engine.Induction} proves or refutes them.  Only proved instances
    reach the rewiring stage. *)

type property_class = {
  name : string;           (** e.g. ["out_stuck_0"], ["in_implies"] *)
  applies_to : Netlist.Cell.kind list;
  description : string;
  rewires_to : string;     (** what the rewiring stage does with it *)
}

val catalog : property_class list
(** Human-readable property catalog, mirroring Listing 1. *)

val mine :
  ?config:Engine.Rsim.config ->
  ?deadline:float ->
  ?attribution:(Engine.Candidate.t * int) list ref ->
  model:Netlist.Design.t ->
  assume:Netlist.Design.net ->
  stimulus:Engine.Stimulus.t ->
  unit ->
  Engine.Candidate.t list
(** Instantiates the library against a design: returns every property
    instance that survived constrained simulation.  [deadline]
    truncates the simulation window, [attribution] receives per-
    candidate mining rounds for provenance (see {!Engine.Rsim.mine}). *)

val restrict_to_original :
  original:Netlist.Design.t ->
  Engine.Candidate.t list ->
  Engine.Candidate.t list
(** Drops candidate instances that mention monitor/cutpoint logic
    (nets or cells beyond the original design), so rewiring only ever
    touches the input netlist. *)
