(** Environment restrictions (paper sections IV.3 and V).

    An environment turns an ISA subset into (a) a monitor circuit
    grafted onto a copy of the design whose [assume] net is 1 exactly
    when the current instruction input belongs to the subset — the
    [assume property] of Listing 3 — and (b) a constructive stimulus
    that drives simulation with subset instructions only.

    Port-based environments constrain the instruction-memory port;
    cutpoint-based environments first cut an internal net (the
    fetch-decode pipeline register input, Figure 4) and constrain the
    fresh input instead.  The model carries the monitor; the original
    design stays untouched and is what the rewiring stage edits. *)

type t = {
  model : Netlist.Design.t;   (** copy (possibly cut) + monitor *)
  assume : Netlist.Design.net;
  stimulus : Engine.Stimulus.t;
  cuts : (Netlist.Design.net * Netlist.Design.net) array;
      (** cutpoint map: [(original_net, model_fresh_input)] pairs.
          Empty for port-based and unconstrained environments.  The
          differential validator uses it to evaluate the monitor on the
          values the original design actually computes. *)
  description : string;
}

val unconstrained : Netlist.Design.t -> t
(** Free inputs; [assume] is the constant-1 rail. *)

val riscv_port :
  ?rv32e:bool -> Netlist.Design.t -> port:string -> Isa.Subset.t -> t
(** The port carries a 32-bit fetch word; compressed subset members are
    matched on the low halfword (upper half unconstrained), others on
    the full word.  [rv32e] additionally constrains every register
    field of the matched instruction to x0..x15. *)

val riscv_cutpoint :
  ?rv32e:bool ->
  Netlist.Design.t ->
  nets:Netlist.Design.net array ->
  Isa.Subset.t ->
  t
(** Cuts the 32 given nets (the IF/ID instruction register's next
    value) and constrains the resulting fresh inputs. *)

val arm_port : Netlist.Design.t -> port:string -> Isa.Subset.t -> t
(** The port carries one 16-bit Thumb halfword per cycle.  A halfword
    is allowed if it is a subset 16-bit instruction, or either half of
    a subset 32-bit instruction — the imprecision the paper reports
    for port-only constraints on obfuscated multi-length streams. *)

val constrain_low_bits :
  t -> Netlist.Design.net array -> bits:int -> t
(** Additionally require the given nets' low [bits] to be 0 — used for
    the "Aligned" variant's word-aligned data-address restriction.
    Simulation lanes violating it are masked, not failed. *)

val ternary_classify :
  Netlist.Design.t -> port:string -> Isa.Subset.t ->
  (Netlist.Design.net -> Engine.Ternary.input_class)
(** Input classification for {!Engine.Ternary.constants}: instruction-
    port bits that every subset encoding fixes become stuck constants,
    everything else (including all non-port inputs) is free. *)
