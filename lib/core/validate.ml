module D = Netlist.Design

type config = {
  runs : int;
  cycles : int;
  seed : int;
}

let default = { runs = 4; cycles = 256; seed = 0xD1FF }

type divergence = {
  run : int;
  cycle : int;
  lane : int;
  output : string;
  seed : int;
}

type outcome =
  | Equivalent of { runs : int; cycles : int; observations : int }
  | Divergent of divergence
  | Unsupported of string

let pp fmt = function
  | Equivalent { runs; cycles; observations } ->
      Format.fprintf fmt "equivalent (%d runs x %d cycles, %d observations)"
        runs cycles observations
  | Divergent d ->
      Format.fprintf fmt
        "diverged on output %s at run %d cycle %d lane %d (seed %d)" d.output
        d.run d.cycle d.lane d.seed
  | Unsupported reason -> Format.fprintf fmt "unsupported: %s" reason

let describe o = Format.asprintf "%a" pp o

let popcount64 x =
  let c = ref 0 in
  let x = ref x in
  while !x <> 0L do
    x := Int64.logand !x (Int64.sub !x 1L);
    incr c
  done;
  !c

let lowest_bit x =
  let rec go i = if Int64.logand (Int64.shift_right_logical x i) 1L = 1L then i else go (i + 1) in
  go 0

let expired deadline =
  match deadline with
  | None -> false
  | Some t -> Obs.Clock.now_s () >= t

exception Next_run

let run ?(config = default) ?deadline ?stimulus ~original ~reduced ~env () =
  let ins = D.inputs original in
  let outs = D.outputs original in
  let missing_out =
    List.find_opt (fun (nm, _) -> D.find_output reduced nm = None) outs
  in
  let missing_in =
    List.find_opt (fun (nm, _) -> D.find_input reduced nm = None) ins
  in
  match (missing_out, missing_in) with
  | Some (nm, _), _ ->
      Unsupported (Printf.sprintf "reduced design lost output %S" nm)
  | _, Some (nm, _) ->
      Unsupported (Printf.sprintf "reduced design lost input %S" nm)
  | None, None ->
      (* port maps: the reduced design went through resynthesis, so its
         net ids are fresh — map by port name.  The model is a
         copy/substitute of the original, so its ids coincide. *)
      let out_map =
        List.map (fun (nm, n) -> (nm, n, Option.get (D.find_output reduced nm))) outs
      in
      let in_map =
        List.map (fun (nm, n) -> (n, Option.get (D.find_input reduced nm))) ins
      in
      let stimulus =
        match stimulus with
        | Some s -> s
        | None ->
            (* a cutpoint environment's stimulus drives the model's
               fresh inputs, which do not exist in the designs under
               test; fall back to free inputs with exact cut-fed
               masking *)
            if Array.length env.Environment.cuts = 0 then
              env.Environment.stimulus
            else Engine.Stimulus.unconstrained
      in
      let sim_o = Netlist.Sim64.create original in
      let sim_r = Netlist.Sim64.create reduced in
      let sim_m = Netlist.Sim64.create env.Environment.model in
      let rng = Random.State.make [| config.seed |] in
      let random_word () =
        Int64.logor
          (Int64.of_int (Random.State.bits rng))
          (Int64.logor
             (Int64.shift_left (Int64.of_int (Random.State.bits rng)) 30)
             (Int64.shift_left (Int64.of_int (Random.State.bits rng)) 60))
      in
      let observations = ref 0 in
      let divergence = ref None in
      (try
         for r = 1 to config.runs do
           Netlist.Sim64.reset sim_o;
           Netlist.Sim64.reset sim_r;
           Netlist.Sim64.reset sim_m;
           (* cumulative: a lane that ever violated the assumption may
              legitimately diverge on every later cycle *)
           let ok_mask = ref (-1L) in
           try
             for cycle = 1 to config.cycles do
               if expired deadline then raise Exit;
               let driven = stimulus.Engine.Stimulus.drive rng in
               List.iter
                 (fun (_, n) ->
                   let v =
                     match List.assoc_opt n driven with
                     | Some v -> v
                     | None -> random_word ()
                   in
                   Netlist.Sim64.set_input sim_o n v;
                   Netlist.Sim64.set_input sim_m n v;
                   Netlist.Sim64.set_input sim_r (List.assoc n in_map) v)
                 ins;
               Netlist.Sim64.eval sim_o;
               (* the monitor judges the values the original actually
                  computed on the cut nets *)
               Array.iter
                 (fun (orig_net, fresh_in) ->
                   Netlist.Sim64.set_input sim_m fresh_in
                     (Netlist.Sim64.read sim_o orig_net))
                 env.Environment.cuts;
               Netlist.Sim64.eval sim_m;
               Netlist.Sim64.eval sim_r;
               ok_mask :=
                 Int64.logand !ok_mask
                   (Netlist.Sim64.read sim_m env.Environment.assume);
               if !ok_mask = 0L then raise Next_run;
               observations := !observations + popcount64 !ok_mask;
               List.iter
                 (fun (nm, n_o, n_r) ->
                   if !divergence = None then
                     let diff =
                       Int64.logand !ok_mask
                         (Int64.logxor
                            (Netlist.Sim64.read sim_o n_o)
                            (Netlist.Sim64.read sim_r n_r))
                     in
                     if diff <> 0L then
                       divergence :=
                         Some
                           {
                             run = r;
                             cycle;
                             lane = lowest_bit diff;
                             output = nm;
                             seed = config.seed;
                           })
                 out_map;
               if !divergence <> None then raise Exit;
               Netlist.Sim64.step sim_o;
               Netlist.Sim64.step sim_m;
               Netlist.Sim64.step sim_r
             done
           with Next_run -> ()
         done
       with Exit -> ());
      (match !divergence with
      | Some d -> Divergent d
      | None ->
          Equivalent
            {
              runs = config.runs;
              cycles = config.cycles;
              observations = !observations;
            })
