(** Differential validation of a reduced design against its original.

    PDAT's proof stage guarantees soundness only if every stage between
    the proof and the final netlist (rewiring, resynthesis) is
    implemented correctly.  This module is the independent check: it
    co-simulates the original and the reduced design lock-step in the
    64-lane simulator under environment-constrained stimuli and
    compares every primary output on every cycle, on every lane where
    the environment assumption has held continuously since reset.

    Lanes that ever violate the assumption are masked out for the rest
    of the run: once outside the contract, the two designs may
    legitimately diverge forever.  The environment's monitor is
    evaluated on a third simulator running [env.model]; for
    cutpoint-based environments the monitor's fresh inputs are fed the
    values the original design actually computes on the cut nets
    ([env.cuts]), so the masking is exact. *)

type config = {
  runs : int;    (** independent runs from reset *)
  cycles : int;  (** cycles per run *)
  seed : int;    (** stimulus seed, reported in divergences *)
}

val default : config

type divergence = {
  run : int;       (** 1-based run in which the mismatch appeared *)
  cycle : int;     (** 1-based cycle within the run *)
  lane : int;      (** simulation lane, 0..63 *)
  output : string; (** primary-output port name *)
  seed : int;      (** stimulus seed, for reproduction *)
}

type outcome =
  | Equivalent of { runs : int; cycles : int; observations : int }
      (** No mismatch; [observations] counts compared lane-cycles
          (lanes masked by the assumption are not observations). *)
  | Divergent of divergence
  | Unsupported of string
      (** The designs cannot be compared (mismatched port lists). *)

val run :
  ?config:config ->
  ?deadline:float ->
  ?stimulus:Engine.Stimulus.t ->
  original:Netlist.Design.t ->
  reduced:Netlist.Design.t ->
  env:Environment.t ->
  unit ->
  outcome
(** Inputs are driven identically in both designs (and in the monitor
    model): nets named by the stimulus get its values, all others get
    fresh random words.

    [stimulus] overrides the drive.  By default, port-based
    environments reuse [env.stimulus]; cutpoint-based environments fall
    back to unconstrained inputs, because their stimulus drives the
    model's fresh inputs, which do not exist in the designs under test
    — pass a port-level stimulus that implies the cut constraint to
    raise coverage there.

    [deadline] (absolute wall-clock time, checked each cycle)
    truncates the comparison; a truncated run that saw no mismatch
    still reports [Equivalent] with correspondingly fewer
    observations. *)

val describe : outcome -> string
(** One-line rendering, used for [Pipeline] fallback reasons. *)

val pp : Format.formatter -> outcome -> unit
