(** Append-only, checksummed run journal — the write-ahead log that
    makes a reduction run crash-safe.

    A journaled run records, in order: a header pinning the netlist and
    environment digest, one record per completed pipeline stage (with
    the surviving candidate keys, {!Engine.Candidate.key} form), one
    record per proof shard settled by the parallel prover (under its
    {!Engine.Induction.shard_fingerprint}), and a final end marker.

    The file is [<dir>/journal.jsonl]: one flat JSON object per line,
    each prefixed with a CRC-32 of the rest of the line, flushed and
    fsynced per record.  A crash mid-write leaves at most one torn tail
    line; {!resume} replays the longest valid prefix, truncates the
    damage away, and reopens for append — so a resumed run re-proves
    only what was never journaled.

    Records are only meaningful relative to the digest in the header:
    {!resume} refuses (raises {!Mismatch}) to replay a journal whose
    digest differs from the current netlist + environment, since
    candidate keys are net/cell ids of that exact netlist. *)

type t

exception Mismatch of string
(** The journal on disk belongs to a different netlist/environment (or
    is unreadable beyond salvage). *)

type recovered = {
  r_label : string;  (** label the original run was created with *)
  r_stages : (string * string list) list;
      (** completed stages in order, each with its surviving candidate
          keys (empty for stages that carry none) *)
  r_shards : (string * string list) list;
      (** settled proof shards: (fingerprint, proved candidate keys) *)
  r_complete : bool;  (** an end marker was journaled — nothing to redo *)
  r_dropped_lines : int;
      (** torn/corrupt tail lines truncated during replay *)
}

val create : dir:string -> digest:string -> label:string -> t
(** Start a fresh journal under [dir] (created if missing), overwriting
    any previous one.  [digest] pins the netlist + environment;
    [label] is free-form provenance (e.g. the subset name). *)

val resume : dir:string -> digest:string -> t * recovered
(** Replay [<dir>/journal.jsonl], verify its digest against [digest],
    truncate any torn tail, and reopen the journal for append.
    Raises {!Mismatch} on digest disagreement or a missing/unsalvageable
    journal. *)

val record_stage : t -> name:string -> items:string list -> unit
(** Journal stage [name] as complete, with its surviving candidate
    keys.  Flushed and fsynced before returning. *)

val record_shard : t -> fp:string -> proved:string list -> unit
(** Journal one settled proof shard.  Flushed and fsynced. *)

val record_end : t -> ok:bool -> unit
(** Journal the run's completion. *)

val path : t -> string

val close : t -> unit
