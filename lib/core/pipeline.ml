exception Rejected of Analysis.Diag.t list

let () =
  Printexc.register_printer (function
    | Rejected diags ->
        Some
          ("Pipeline.Rejected: "
          ^ String.concat "; " (List.map Analysis.Diag.to_string diags))
    | _ -> None)

(* What a journaled (and possibly resumed) run reports about its own
   provenance: which work was replayed from the journal instead of
   recomputed. *)
type resume_info = {
  journal_path : string;
  resumed : bool;
  resumed_stages : string list;
  resumed_shards : int;
  journal_dropped_lines : int;
}

type report = {
  variant : string;
  mined : int;
  proved : int;
  induction : Engine.Induction.stats;
  before : Netlist.Stats.t;
  after : Netlist.Stats.t;
  seconds : float;
  stage_seconds : (string * float) list;
  counters : (string * float) list;
  jobs : int;
  absint : bool;
  proof_budget_s : float;
  validation : Validate.outcome option;
  validated : bool;
  fallback_reason : string option;
  injected_fault : string option;
  lint_gate : Analysis.Lint.gate;
  input_lint : Analysis.Diag.t list;
  certificate_edits : int;
  audit : Analysis.Diag.t list;
  resume : resume_info option;
}

type result = {
  reduced : Netlist.Design.t;
  report : report;
}

let baseline d =
  let d', _ = Synthkit.Optimize.run d in
  (d', Netlist.Stats.of_design d')

let default_refine =
  { Engine.Rsim.default with Engine.Rsim.cycles = 2048; runs = 4 }

(* Requested worker counts are clamped to the cores actually online:
   forking more provers than cores just adds scheduler churn and was
   the root cause of the PR-2 "parallel" prover running at half serial
   speed on a 1-core box. *)
let clamp_jobs requested = max 1 (min requested (Obs.Hw.online_cores ()))

let default_jobs () =
  clamp_jobs
    (match Sys.getenv_opt "PDAT_JOBS" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some j when j > 0 -> j
        | _ -> 1)
    | None -> 1)

let default_sieve () =
  match Sys.getenv_opt "PDAT_SIEVE" with
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "1" | "true" | "on" | "yes" -> true
      | _ -> false)
  | None -> false

let default_absint () =
  match Sys.getenv_opt "PDAT_ABSINT" with
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "1" | "true" | "on" | "yes" -> true
      | _ -> false)
  | None -> false

(* Budgeted stages and their relative weights.  The validate entry only
   participates when validation is on, so with it off the proof stage's
   share grows instead of being silently forfeited. *)
let stage_weights ~validate =
  [ ("mine", 1.0); ("refine", 1.0); ("prove", 2.5) ]
  @ (if validate then [ ("validate", 0.7) ] else [])

(* Replayable counterexamples for refuted candidates.  At most
   [max_cex_dumps] waveforms are written per run — enough to explain a
   refutation without turning the dump directory into a VCD landfill;
   records are visited in provenance-id order so the sample is
   deterministic. *)
let max_cex_dumps = 8

let dump_counterexamples ~model prov dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let dumped = ref 0 in
  List.iter
    (fun (r : Report.Provenance.cand_record) ->
      if !dumped < max_cex_dumps then
        let cex =
          match r.Report.Provenance.refine_kill with
          | Some { Engine.Rsim.k_cex = Some c; _ } -> Some c
          | Some _ | None -> (
              match r.Report.Provenance.attribution with
              | Some
                  {
                    Engine.Induction.verdict =
                      Engine.Induction.V_refuted { cex = Some c; _ };
                    _;
                  } ->
                  Some c
              | _ -> None)
        in
        match cex with
        | None -> ()
        | Some c -> (
            let path =
              Filename.concat dir
                (Printf.sprintf "cex_inv%d.vcd" r.Report.Provenance.id)
            in
            try
              Engine.Cex.dump
                ~extra:
                  (Engine.Cex.nets_of_candidate model r.Report.Provenance.cand)
                ~path model c;
              Report.Provenance.set_cex_file prov r.Report.Provenance.cand path;
              incr dumped
            with Sys_error _ -> ()))
    (Report.Provenance.records prov)

(* The digest that pins a journal to its run: the environment model +
   assumption (what the miner and prover see) and the original design
   (what gets rewired).  Any structural change to either makes an old
   journal unreplayable, which is exactly right — its candidate keys
   are net/cell ids of those netlists. *)
let run_digest ~absint ~design ~env =
  Digest.to_hex
    (Digest.string
       (Engine.Proof_cache.scope_digest env.Environment.model
          ~assume:env.Environment.assume
       ^ "+"
       ^ Engine.Proof_cache.scope_digest design ~assume:Netlist.Design.net_true
       (* the absint facts are a deterministic function of (model,
          assume), so the flag alone separates strengthened journals
          from unstrengthened ones — replaying one into the other would
          silently change what the prove stage could have proved *)
       ^ (if absint then "+absint" else "")))

let run ?rsim ?(refine = default_refine) ?induction ?jobs ?cache ?sieve
    ?absint ?(validate = false) ?validate_config ?validate_stimulus
    ?time_budget ?(lint = Analysis.Lint.Off) ?inject ?provenance ?dump_cex
    ?trace ?log ?metrics_out ?run_dir ?(resume = false) ?retries ~design ~env
    () =
  let sieve = match sieve with Some s -> s | None -> default_sieve () in
  let absint = match absint with Some a -> a | None -> default_absint () in
  let env_path var =
    match Sys.getenv_opt var with
    | Some p when String.trim p <> "" -> Some p
    | Some _ | None -> None
  in
  let trace =
    match trace with
    | Some _ as t -> t
    | None -> Option.map Obs.sink_of_path (env_path "PDAT_TRACE")
  in
  let log = match log with Some _ as l -> l | None -> env_path "PDAT_LOG" in
  let metrics_out =
    match metrics_out with
    | Some _ as m -> m
    | None -> env_path "PDAT_METRICS_OUT"
  in
  let was_enabled = Obs.is_enabled () in
  if trace <> None then Obs.enable ();
  (* the run log: opened here (unless the caller already opened one),
     closed on every exit path.  PDAT_LOG_LEVEL lowers the threshold to
     debug or raises it to warn/error. *)
  let log_opened =
    match log with
    | Some path when not (Obs.Log.active ()) ->
        let level =
          match Sys.getenv_opt "PDAT_LOG_LEVEL" with
          | Some s -> (
              match Obs.Log.level_of_string s with
              | Some l -> l
              | None -> Obs.Log.Info)
          | None -> Obs.Log.Info
        in
        Obs.Log.set ~level path;
        true
    | Some _ | None -> false
  in
  let counters0 = Obs.counters () in
  let finish_trace () =
    (match trace with
    | Some sink -> Obs.write_sink sink (Obs.drain () @ Obs.counter_events ())
    | None -> ());
    (* metrics snapshot even when the run raises: a crashed run's
       counters are exactly the ones worth scraping *)
    (match metrics_out with
    | Some path -> Obs.write_file_atomic path (Obs.openmetrics ())
    | None -> ());
    if log_opened then Obs.Log.close ();
    if not was_enabled then Obs.disable ()
  in
  Fun.protect ~finally:finish_trace @@ fun () ->
  (* [--dump-cex] without an explicit database still needs somewhere to
     record which candidate each waveform explains *)
  let prov =
    match (provenance, dump_cex) with
    | (Some _ as p), _ -> p
    | None, Some _ -> Some (Report.Provenance.create ())
    | None, None -> None
  in
  let t0 = Obs.Clock.now_s () in
  let jobs =
    match jobs with Some j -> clamp_jobs j | None -> default_jobs ()
  in
  (* a zero or negative budget is not "unlimited" — it is a budget that
     is already spent, so every budgeted stage sees an expired deadline
     and degrades to its empty result immediately *)
  let budget = Option.map (Float.max 0.) time_budget in
  (* journaled run: the write-ahead log that [~resume:true] replays.
     Created (or replayed) before any stage runs, closed on every exit
     path; [Journal.Mismatch] propagates — resuming against a changed
     netlist must be a hard error, not a silent cold start. *)
  let journal, recovered =
    match run_dir with
    | None -> (None, None)
    | Some dir ->
        let digest = run_digest ~absint ~design ~env in
        if resume then begin
          let j, r = Journal.resume ~dir ~digest in
          Obs.add_int "journal.resumes" 1;
          (Some j, Some r)
        end
        else
          ( Some
              (Journal.create ~dir ~digest
                 ~label:env.Environment.description),
            None )
  in
  Fun.protect ~finally:(fun () -> Option.iter Journal.close journal)
  @@ fun () ->
  let recovered_stage name =
    Option.bind recovered (fun r -> List.assoc_opt name r.Journal.r_stages)
  in
  let resumed_stages = ref [] in
  let journal_stage name keys =
    match journal with
    | Some j when recovered_stage name = None ->
        Journal.record_stage j ~name ~items:keys
    | _ -> ()
  in
  (* proportional allocation over the *remaining* budget: each budgeted
     stage, at its start, claims weight/(weight + weights-still-to-come)
     of whatever wall-clock is left, so a stage finishing early donates
     its slack to every later stage and nothing is reserved for stages
     that will not run (the small tail epsilon keeps the untimed
     rewire/resynth/baseline steps from being squeezed to zero) *)
  let weights = stage_weights ~validate in
  let stage_alloc name =
    match budget with
    | None -> None
    | Some b ->
        let now = Obs.Clock.now_s () in
        (* may be <= 0: an exhausted budget yields already-expired
           deadlines, so every stage degrades to its empty result *)
        let remaining = t0 +. b -. now in
        let rec split = function
          | [] -> None
          | (n, w) :: rest when n = name ->
              let later =
                List.fold_left (fun acc (_, w') -> acc +. w') 0. rest
              in
              Some (remaining *. w /. (w +. later +. 0.02))
          | _ :: rest -> split rest
        in
        split weights
  in
  let stage_deadline name =
    Option.map (fun a -> Obs.Clock.now_s () +. a) (stage_alloc name)
  in
  let stage_seconds = ref [] in
  let timed name f =
    (* chaos: PDAT_CHAOS="sigterm:<stage>" kills the process here,
       simulating an operator interrupt at a stage boundary *)
    Engine.Chaos.stage_sigterm name;
    Obs.Log.event ~stage:name "stage-start"
      ~kv:
        (match stage_alloc name with
        | Some a -> [ ("alloc_s", Obs.Float a) ]
        | None -> []);
    let r, dt = Obs.with_span_timed ~cat:"stage" name f in
    stage_seconds := (name, dt) :: !stage_seconds;
    Obs.Log.event ~stage:name "stage-end" ~kv:[ ("wall_s", Obs.Float dt) ];
    r
  in
  Obs.Log.event ~stage:"run" "run-start"
    ~kv:
      [
        ("variant", Obs.Str env.Environment.description);
        ("jobs", Obs.Int jobs);
        ("sieve", Obs.Bool sieve);
        ("absint", Obs.Bool absint);
      ];
  let injected = ref None in
  let try_fault hook =
    match inject with
    | Some f when !injected = None -> (
        match hook f with
        | Some (x, what) ->
            injected := Some what;
            Some x
        | None -> None)
    | Some _ | None -> None
  in
  (* Static gate 1: the input netlist.  Basic well-formedness (net
     ranges, arities) is checked whatever the gate — a cell referencing
     a nonexistent net must surface as a located diagnostic, not as an
     array-bounds crash three stages later.  With the gate on, the full
     rule set runs; Strict additionally refuses any Error finding. *)
  let input_lint =
    timed "lint" (fun () ->
        match Analysis.Lint.well_formed design with
        | _ :: _ as errs -> raise (Rejected errs)
        | [] -> (
            match lint with
            | Analysis.Lint.Off -> []
            | Analysis.Lint.Warn | Analysis.Lint.Strict ->
                Analysis.Lint.run design))
  in
  (match (lint, Analysis.Diag.errors input_lint) with
  | Analysis.Lint.Strict, (_ :: _ as errs) -> raise (Rejected errs)
  | _ -> ());
  let mine_attr = Option.map (fun _ -> ref []) prov in
  let candidates =
    match recovered_stage "mine" with
    | Some keys ->
        (* replayed: the journal holds the stage's surviving keys, and
           the digest check guarantees they refer to this netlist *)
        resumed_stages := "mine" :: !resumed_stages;
        timed "mine" (fun () ->
            List.filter_map Engine.Candidate.of_key keys)
    | None ->
        timed "mine" (fun () ->
            Property_library.mine ?config:rsim
              ?deadline:(stage_deadline "mine") ?attribution:mine_attr
              ~model:env.Environment.model ~assume:env.Environment.assume
              ~stimulus:env.Environment.stimulus ()
            |> Property_library.restrict_to_original ~original:design)
  in
  journal_stage "mine" (List.map Engine.Candidate.key candidates);
  (* only post-restrict candidates get provenance ids; set_mined_rounds
     silently skips attribution entries for the dropped ones *)
  (match (prov, mine_attr) with
  | Some p, Some attr ->
      Report.Provenance.register p candidates;
      Report.Provenance.set_mined_rounds p !attr
  | _ -> ());
  (* a long, candidate-focused simulation pass kills most false
     candidates far more cheaply than SAT counterexamples would *)
  let refine_kills = Option.map (fun _ -> ref []) prov in
  let candidates =
    match recovered_stage "refine" with
    | Some keys ->
        resumed_stages := "refine" :: !resumed_stages;
        timed "refine" (fun () ->
            List.filter_map Engine.Candidate.of_key keys)
    | None ->
        timed "refine" (fun () ->
            Engine.Rsim.refine ~config:refine
              ?deadline:(stage_deadline "refine") ?kills:refine_kills
              ~assume:env.Environment.assume env.Environment.model
              env.Environment.stimulus candidates)
  in
  journal_stage "refine" (List.map Engine.Candidate.key candidates);
  (match (prov, refine_kills) with
  | Some p, Some k -> Report.Provenance.set_refine_kills p !k
  | _ -> ());
  let proof_alloc = stage_alloc "prove" in
  let induction_options =
    let base =
      match induction with
      | Some o -> o
      | None -> Engine.Induction.default_options
    in
    match proof_alloc with
    | None -> base
    | Some alloc ->
        (* the prover's unlimited sentinel is [infinity] and an
           exhausted allocation (<= 0) is an already-expired deadline,
           so a plain min merges the two budgets correctly *)
        let b = base.Engine.Induction.time_budget_s in
        { base with Engine.Induction.time_budget_s = Float.min b alloc }
  in
  let attributions = Option.map (fun _ -> Hashtbl.create 128) prov in
  (* the abstract interpreter's conditioned fixpoint over the model:
     cheap (no SAT), sound under the same always-assume semantics as
     the prover, and skipped entirely when the proof stage is being
     replayed from the journal *)
  let absint_fix =
    if absint && recovered_stage "prove" = None then
      Some
        (timed "absint" (fun () ->
             Engine.Absint.run ~assume:env.Environment.assume
               env.Environment.model))
    else None
  in
  (match absint_fix with
  | Some ai ->
      Obs.add_int "absint.facts" (Engine.Absint.n_facts ai);
      Obs.add_int "absint.iterations" (Engine.Absint.iterations ai)
  | None -> ());
  let proved, istats =
    match recovered_stage "prove" with
    | Some keys ->
        (* the whole proof stage completed in the prior run: its proved
           set is final (the journal records it after the join round) *)
        resumed_stages := "prove" :: !resumed_stages;
        timed "prove" (fun () ->
            let proved = List.filter_map Engine.Candidate.of_key keys in
            (match attributions with
            | None -> ()
            | Some tbl ->
                let ptbl = Hashtbl.create 64 in
                List.iter (fun c -> Hashtbl.replace ptbl c ()) proved;
                List.iter
                  (fun c ->
                    Hashtbl.replace tbl c
                      {
                        Engine.Induction.verdict =
                          (if Hashtbl.mem ptbl c then
                             Engine.Induction.V_proved
                               {
                                 k =
                                   max 1 induction_options.Engine.Induction.k;
                               }
                           else Engine.Induction.V_dropped "resumed");
                        shard = None;
                        cache_hit = false;
                      })
                  candidates);
            ( proved,
              {
                Engine.Induction.blank_stats with
                Engine.Induction.n_candidates = List.length candidates;
                n_proved = List.length proved;
              } ))
    | None ->
        let checkpoint =
          Option.map
            (fun j fp shard_proved ->
              Journal.record_shard j ~fp
                ~proved:(List.map Engine.Candidate.key shard_proved))
            journal
        in
        let recovered_shards =
          match recovered with
          | None -> []
          | Some r ->
              List.map
                (fun (fp, keys) ->
                  (fp, List.filter_map Engine.Candidate.of_key keys))
                r.Journal.r_shards
        in
        timed "prove" (fun () ->
            Engine.Induction.prove_parallel ~options:induction_options
              ?attributions ~cex:(env.Environment.stimulus, 24) ~jobs ?cache
              ?absint:absint_fix ?retries ?checkpoint
              ~recovered:recovered_shards ~sieve
              ~assume:env.Environment.assume env.Environment.model candidates)
  in
  journal_stage "prove" (List.map Engine.Candidate.key proved);
  Option.iter Engine.Proof_cache.flush cache;
  (match (prov, attributions) with
  | Some p, Some tbl -> Report.Provenance.set_attributions p tbl
  | _ -> ());
  (match (prov, dump_cex) with
  | Some p, Some dir ->
      timed "dump-cex" (fun () ->
          dump_counterexamples ~model:env.Environment.model p dir)
  | _ -> ());
  (* the audit must judge certificates against what was actually
     proved, not against a possibly-corrupted hand-off *)
  let genuine_proved = proved in
  let proved =
    match try_fault (fun f -> Faults.corrupt_proved f ~design proved) with
    | Some proved' -> proved'
    | None -> proved
  in
  let rewired, certificate =
    timed "rewire" (fun () -> Rewire.apply_certified design proved)
  in
  Option.iter
    (fun p -> Report.Provenance.record_certificate p certificate)
    prov;
  let rewired =
    match
      try_fault (fun f -> Faults.corrupt_rewired f ~original:design ~rewired)
    with
    | Some d -> d
    | None -> rewired
  in
  (* Static gate 2: the rewiring stage.  Every edit must be justified
     by a *genuinely* proved invariant and replaying the certificate
     must reproduce the rewired netlist — so a corrupted proved set, a
     forged edit or an out-of-band netlist change is caught here,
     before a single validation cycle is simulated. *)
  let audit_diags =
    match lint with
    | Analysis.Lint.Off -> []
    | Analysis.Lint.Warn | Analysis.Lint.Strict ->
        timed "audit" (fun () ->
            Analysis.Audit.run ~pre_lint:input_lint
              ?prov_id:
                (Option.map (fun p c -> Report.Provenance.id_of p c) prov)
              ~original:design ~rewired ~proved:genuine_proved ~certificate ())
  in
  let audit_failed =
    lint = Analysis.Lint.Strict && Analysis.Diag.errors audit_diags <> []
  in
  let reduced =
    timed "resynth" (fun () -> fst (Synthkit.Optimize.run rewired))
  in
  let reduced =
    match try_fault (fun f -> Faults.corrupt_reduced f ~reduced) with
    | Some d -> d
    | None -> reduced
  in
  let base_design, before = timed "baseline" (fun () -> baseline design) in
  let validation, reduced, validated, fallback_reason =
    if audit_failed then
      (* statically rejected: the reduction never ships, no simulation
         needed to know it is wrong *)
      ( None,
        base_design,
        false,
        Some
          (Printf.sprintf "audit: %s"
             (Analysis.Diag.to_string
                (List.hd (Analysis.Diag.errors audit_diags)))) )
    else if not validate then (None, reduced, false, None)
    else
      let outcome =
        timed "validate" (fun () ->
            Validate.run ?config:validate_config
              ?deadline:(stage_deadline "validate")
              ?stimulus:validate_stimulus ~original:design ~reduced ~env ())
      in
      match outcome with
      | Validate.Equivalent _ -> (Some outcome, reduced, true, None)
      | Validate.Divergent _ | Validate.Unsupported _ ->
          (* never ship an unvalidated reduction: degrade to the
             baseline-synthesized original *)
          (Some outcome, base_design, false, Some (Validate.describe outcome))
  in
  let after = Netlist.Stats.of_design reduced in
  Option.iter
    (fun p ->
      Report.Provenance.record_designs p ~original:design ~rewired ~reduced
        ~baseline:base_design)
    prov;
  (* the post-proof stages are deterministic and cheap, so the journal
     records them without payloads — a resume replays candidates up to
     the proof and recomputes everything after it *)
  journal_stage "rewire" [];
  journal_stage "resynth" [];
  if validate then journal_stage "validate" [];
  (match journal with
  | Some j ->
      Journal.record_end j ~ok:(fallback_reason = None);
      Journal.close j
  | None -> ());
  let resume_info =
    Option.map
      (fun j ->
        {
          journal_path = Journal.path j;
          resumed = recovered <> None;
          resumed_stages = List.rev !resumed_stages;
          resumed_shards = istats.Engine.Induction.resumed_shards;
          journal_dropped_lines =
            (match recovered with
            | Some r -> r.Journal.r_dropped_lines
            | None -> 0);
        })
      journal
  in
  Obs.Log.event ~stage:"run" "run-end"
    ~kv:
      [
        ("seconds", Obs.Float (Obs.Clock.now_s () -. t0));
        ("mined", Obs.Int (List.length candidates));
        ("proved", Obs.Int (List.length proved));
        ("validated", Obs.Bool validated);
      ];
  {
    reduced;
    report =
      {
        variant = env.Environment.description;
        mined = List.length candidates;
        proved = List.length proved;
        induction = istats;
        before;
        after;
        seconds = Obs.Clock.now_s () -. t0;
        stage_seconds = List.rev !stage_seconds;
        counters = Obs.counters_delta ~since:counters0;
        jobs;
        absint;
        proof_budget_s = Float.max 0. (Option.value proof_alloc ~default:0.);
        validation;
        validated;
        fallback_reason;
        injected_fault = !injected;
        lint_gate = lint;
        input_lint;
        certificate_edits = Analysis.Certificate.length certificate;
        audit = audit_diags;
        resume = resume_info;
      };
  }

type self_test_entry = {
  fault : Faults.kind;
  injected : string option;
  caught : bool;
  caught_statically : bool;
  cex_files : string list;
}

let self_test ?rsim ?refine ?induction ?jobs ?cache ?validate_config
    ?validate_stimulus ?(lint = Analysis.Lint.Strict) ?(seed = 7) ?dump_cex
    ~design ~env () =
  (match dump_cex with
  | Some d -> (
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | None -> ());
  List.map
    (fun kind ->
      let prov = Report.Provenance.create () in
      let sub =
        Option.map (fun d -> Filename.concat d (Faults.name kind)) dump_cex
      in
      let r =
        run ?rsim ?refine ?induction ?jobs ?cache ~validate:true
          ?validate_config ?validate_stimulus ~lint ~provenance:prov
          ?dump_cex:sub ~inject:{ Faults.kind; seed } ~design ~env ()
      in
      {
        fault = kind;
        injected = r.report.injected_fault;
        caught =
          r.report.injected_fault <> None
          && (not r.report.validated)
          && r.report.fallback_reason <> None;
        caught_statically = Analysis.Diag.errors r.report.audit <> [];
        cex_files =
          List.filter_map
            (fun (cr : Report.Provenance.cand_record) ->
              cr.Report.Provenance.cex_file)
            (Report.Provenance.records prov);
      })
    Faults.all

let area_delta_pct r =
  Netlist.Stats.delta_pct ~baseline:r.before.Netlist.Stats.area
    r.after.Netlist.Stats.area

let gate_delta_pct r =
  Netlist.Stats.delta_pct
    ~baseline:(float_of_int (Netlist.Stats.gate_count r.before))
    (float_of_int (Netlist.Stats.gate_count r.after))

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>%s: mined=%d proved=%d (%a)@,area %.1f -> %.1f um^2 (%.1f%%), gates %d -> %d (%.1f%%), %.1fs"
    r.variant r.mined r.proved Engine.Induction.pp_stats r.induction
    r.before.Netlist.Stats.area r.after.Netlist.Stats.area (area_delta_pct r)
    (Netlist.Stats.gate_count r.before)
    (Netlist.Stats.gate_count r.after)
    (gate_delta_pct r) r.seconds;
  if r.jobs > 1 then Format.fprintf fmt " [jobs=%d]" r.jobs;
  if r.absint then Format.fprintf fmt " [absint]";
  (match r.resume with
  | Some ri when ri.resumed ->
      Format.fprintf fmt "@,resumed from %s: %d stage(s) [%s], %d shard(s)%s"
        ri.journal_path
        (List.length ri.resumed_stages)
        (String.concat ", " ri.resumed_stages)
        ri.resumed_shards
        (if ri.journal_dropped_lines > 0 then
           Printf.sprintf " (%d torn line(s) truncated)"
             ri.journal_dropped_lines
         else "")
  | Some _ | None -> ());
  (match r.injected_fault with
  | Some s -> Format.fprintf fmt "@,fault injected: %s" s
  | None -> ());
  (if r.lint_gate <> Analysis.Lint.Off then begin
     let e, w, i = Analysis.Diag.count r.input_lint in
     Format.fprintf fmt "@,lint (%s): %d error(s), %d warning(s), %d info"
       (Analysis.Lint.gate_name r.lint_gate)
       e w i;
     match Analysis.Diag.errors r.audit with
     | [] ->
         Format.fprintf fmt "@,audit: certificate ok (%d edit(s))"
           r.certificate_edits
     | err :: _ ->
         Format.fprintf fmt "@,audit: REJECTED — %s"
           (Analysis.Diag.to_string err)
   end);
  (match r.validation with
  | Some o -> Format.fprintf fmt "@,validation: %a" Validate.pp o
  | None -> ());
  (match r.fallback_reason with
  | Some s -> Format.fprintf fmt "@,FELL BACK to baseline: %s" s
  | None -> ());
  Format.fprintf fmt "@]"
