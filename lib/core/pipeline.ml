type report = {
  variant : string;
  mined : int;
  proved : int;
  induction : Engine.Induction.stats;
  before : Netlist.Stats.t;
  after : Netlist.Stats.t;
  seconds : float;
  stage_seconds : (string * float) list;
  validation : Validate.outcome option;
  validated : bool;
  fallback_reason : string option;
  injected_fault : string option;
}

type result = {
  reduced : Netlist.Design.t;
  report : report;
}

let baseline d =
  let d', _ = Synthkit.Optimize.run d in
  (d', Netlist.Stats.of_design d')

let default_refine =
  { Engine.Rsim.default with Engine.Rsim.cycles = 2048; runs = 4 }

let run ?rsim ?(refine = default_refine) ?induction ?(validate = false)
    ?validate_config ?validate_stimulus ?time_budget ?inject ~design ~env () =
  let t0 = Unix.gettimeofday () in
  let budget =
    match time_budget with Some b when b > 0. -> Some b | Some _ | None -> None
  in
  (* cumulative checkpoints: a stage finishing early donates its slack
     to every later stage *)
  let checkpoint frac = Option.map (fun b -> t0 +. (frac *. b)) budget in
  let stage_seconds = ref [] in
  let timed name f =
    let s = Unix.gettimeofday () in
    let r = f () in
    stage_seconds := (name, Unix.gettimeofday () -. s) :: !stage_seconds;
    r
  in
  let injected = ref None in
  let try_fault hook =
    match inject with
    | Some f when !injected = None -> (
        match hook f with
        | Some (x, what) ->
            injected := Some what;
            Some x
        | None -> None)
    | Some _ | None -> None
  in
  let candidates =
    timed "mine" (fun () ->
        Property_library.mine ?config:rsim ?deadline:(checkpoint 0.2)
          ~model:env.Environment.model ~assume:env.Environment.assume
          ~stimulus:env.Environment.stimulus ()
        |> Property_library.restrict_to_original ~original:design)
  in
  (* a long, candidate-focused simulation pass kills most false
     candidates far more cheaply than SAT counterexamples would *)
  let candidates =
    timed "refine" (fun () ->
        Engine.Rsim.refine ~config:refine ?deadline:(checkpoint 0.4)
          ~assume:env.Environment.assume env.Environment.model
          env.Environment.stimulus candidates)
  in
  let induction_options =
    let base =
      match induction with
      | Some o -> o
      | None -> Engine.Induction.default_options
    in
    match checkpoint 0.85 with
    | None -> base
    | Some t ->
        let remaining = Float.max 0.001 (t -. Unix.gettimeofday ()) in
        let b = base.Engine.Induction.time_budget_s in
        { base with
          Engine.Induction.time_budget_s =
            (if b > 0. then Float.min b remaining else remaining) }
  in
  let proved, istats =
    timed "prove" (fun () ->
        Engine.Induction.prove ~options:induction_options
          ~cex:(env.Environment.stimulus, 24)
          ~assume:env.Environment.assume env.Environment.model candidates)
  in
  let proved =
    match try_fault (fun f -> Faults.corrupt_proved f ~design proved) with
    | Some proved' -> proved'
    | None -> proved
  in
  let rewired = timed "rewire" (fun () -> Rewire.apply design proved) in
  let rewired =
    match
      try_fault (fun f -> Faults.corrupt_rewired f ~original:design ~rewired)
    with
    | Some d -> d
    | None -> rewired
  in
  let reduced =
    timed "resynth" (fun () -> fst (Synthkit.Optimize.run rewired))
  in
  let reduced =
    match try_fault (fun f -> Faults.corrupt_reduced f ~reduced) with
    | Some d -> d
    | None -> reduced
  in
  let base_design, before = timed "baseline" (fun () -> baseline design) in
  let validation, reduced, validated, fallback_reason =
    if not validate then (None, reduced, false, None)
    else
      let outcome =
        timed "validate" (fun () ->
            Validate.run ?config:validate_config ?deadline:(checkpoint 1.0)
              ?stimulus:validate_stimulus ~original:design ~reduced ~env ())
      in
      match outcome with
      | Validate.Equivalent _ -> (Some outcome, reduced, true, None)
      | Validate.Divergent _ | Validate.Unsupported _ ->
          (* never ship an unvalidated reduction: degrade to the
             baseline-synthesized original *)
          (Some outcome, base_design, false, Some (Validate.describe outcome))
  in
  let after = Netlist.Stats.of_design reduced in
  {
    reduced;
    report =
      {
        variant = env.Environment.description;
        mined = List.length candidates;
        proved = List.length proved;
        induction = istats;
        before;
        after;
        seconds = Unix.gettimeofday () -. t0;
        stage_seconds = List.rev !stage_seconds;
        validation;
        validated;
        fallback_reason;
        injected_fault = !injected;
      };
  }

type self_test_entry = {
  fault : Faults.kind;
  injected : string option;
  caught : bool;
}

let self_test ?rsim ?refine ?induction ?validate_config ?validate_stimulus
    ?(seed = 7) ~design ~env () =
  List.map
    (fun kind ->
      let r =
        run ?rsim ?refine ?induction ~validate:true ?validate_config
          ?validate_stimulus ~inject:{ Faults.kind; seed } ~design ~env ()
      in
      {
        fault = kind;
        injected = r.report.injected_fault;
        caught =
          r.report.injected_fault <> None
          && (not r.report.validated)
          && r.report.fallback_reason <> None;
      })
    Faults.all

let area_delta_pct r =
  Netlist.Stats.delta_pct ~baseline:r.before.Netlist.Stats.area
    r.after.Netlist.Stats.area

let gate_delta_pct r =
  Netlist.Stats.delta_pct
    ~baseline:(float_of_int (Netlist.Stats.gate_count r.before))
    (float_of_int (Netlist.Stats.gate_count r.after))

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>%s: mined=%d proved=%d (%a)@,area %.1f -> %.1f um^2 (%.1f%%), gates %d -> %d (%.1f%%), %.1fs"
    r.variant r.mined r.proved Engine.Induction.pp_stats r.induction
    r.before.Netlist.Stats.area r.after.Netlist.Stats.area (area_delta_pct r)
    (Netlist.Stats.gate_count r.before)
    (Netlist.Stats.gate_count r.after)
    (gate_delta_pct r) r.seconds;
  (match r.injected_fault with
  | Some s -> Format.fprintf fmt "@,fault injected: %s" s
  | None -> ());
  (match r.validation with
  | Some o -> Format.fprintf fmt "@,validation: %a" Validate.pp o
  | None -> ());
  (match r.fallback_reason with
  | Some s -> Format.fprintf fmt "@,FELL BACK to baseline: %s" s
  | None -> ());
  Format.fprintf fmt "@]"
