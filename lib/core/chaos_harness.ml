type scenario = { name : string; ok : bool; detail : string }

let all_ok = List.for_all (fun s -> s.ok)

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* putenv cannot unset, but every hook treats "" as absent *)
let with_env pairs f =
  let old = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) pairs in
  List.iter (fun (k, v) -> Unix.putenv k v) pairs;
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (k, o) -> Unix.putenv k (Option.value o ~default:"")) old)
    f

(* Structural identity of a netlist, reusing the proof cache's content
   digest (cells, wiring, reset values, ports). *)
let design_digest d =
  Engine.Proof_cache.scope_digest d ~assume:Netlist.Design.net_true

let proved_keys prov =
  Report.Provenance.records prov
  |> List.filter_map (fun (r : Report.Provenance.cand_record) ->
         match r.Report.Provenance.attribution with
         | Some { Engine.Induction.verdict = Engine.Induction.V_proved _; _ }
         | Some
             {
               Engine.Induction.verdict =
                 Engine.Induction.V_cached Engine.Proof_cache.Proved;
               _;
             }
         | Some
             {
               Engine.Induction.verdict =
                 Engine.Induction.V_sieved { proved = true; _ };
               _;
             }
         | Some
             { Engine.Induction.verdict = Engine.Induction.V_static_proved; _ }
           ->
             Some (Engine.Candidate.key r.Report.Provenance.cand)
         | _ -> None)
  |> List.sort compare

let run_once ?jobs ?cache ?run_dir ?(resume = false) ?retries ~design ~env ()
    =
  let prov = Report.Provenance.create () in
  let r =
    Pipeline.run ?jobs ?cache ?run_dir ~resume ?retries ~provenance:prov
      ~design ~env ()
  in
  (proved_keys prov, design_digest r.Pipeline.reduced, r)

let describe_outcome ~base_keys ~base_digest keys digest =
  if keys = base_keys && digest = base_digest then
    (true, Printf.sprintf "proved set (%d) and netlist identical to baseline"
             (List.length keys))
  else if keys <> base_keys then
    ( false,
      Printf.sprintf "proved set diverged: %d vs baseline %d"
        (List.length keys) (List.length base_keys) )
  else (false, "reduced netlist diverged from baseline")

let matrix ?(jobs = 2) ?(retries = 2) ~dir ~design ~env () =
  mkdir_p dir;
  Engine.Chaos.reset ();
  (* the reference: one undisturbed, fully serial run *)
  let base_keys, base_digest, _ =
    with_env [ ("PDAT_CHAOS", "") ] (fun () ->
        run_once ~jobs:1 ~design ~env ())
  in
  let check = describe_outcome ~base_keys ~base_digest in
  let worker_kill () =
    Engine.Chaos.reset ();
    let keys, digest, r =
      with_env
        [ ("PDAT_CHAOS", "worker-kill");
          ("PDAT_FORCE_CORES", string_of_int jobs) ]
        (fun () -> run_once ~jobs ~retries ~design ~env ())
    in
    let st = r.Pipeline.report.Pipeline.induction in
    if st.Engine.Induction.workers < 2 then
      {
        name = "worker-kill";
        ok = false;
        detail =
          Printf.sprintf
            "vacuous: proof stage did not shard (workers=%d) — design too \
             small for the matrix"
            st.Engine.Induction.workers;
      }
    else if st.Engine.Induction.workers_failed = 0 then
      {
        name = "worker-kill";
        ok = false;
        detail = "vacuous: chaos kill never fired (no worker failures)";
      }
    else
      let ok, detail = check keys digest in
      {
        name = "worker-kill";
        ok;
        detail =
          Printf.sprintf "%s (%d kills, %d retries, %d fallbacks)" detail
            st.Engine.Induction.workers_failed
            st.Engine.Induction.worker_retries
            st.Engine.Induction.worker_fallbacks;
      }
  in
  let cache_trunc () =
    Engine.Chaos.reset ();
    let cache_dir = Filename.concat dir "chaos-cache" in
    (* run 1 fills the cache and truncates the flushed scope file *)
    let keys1, digest1, _ =
      with_env [ ("PDAT_CHAOS", "cache-trunc") ] (fun () ->
          let cache = Engine.Proof_cache.create ~dir:cache_dir () in
          run_once ~jobs:1 ~cache ~design ~env ())
    in
    Engine.Chaos.reset ();
    (* run 2 opens the damaged cache cold: salvage + quarantine *)
    let cache2 = Engine.Proof_cache.create ~dir:cache_dir () in
    let keys2, digest2, _ =
      with_env [ ("PDAT_CHAOS", "") ] (fun () ->
          run_once ~jobs:1 ~cache:cache2 ~design ~env ())
    in
    let cstats = Engine.Proof_cache.stats cache2 in
    let ok1, d1 = check keys1 digest1 in
    let ok2, d2 = check keys2 digest2 in
    if not ok1 then
      { name = "cache-trunc"; ok = false; detail = "first run: " ^ d1 }
    else if cstats.Engine.Proof_cache.corrupt_files = 0 then
      {
        name = "cache-trunc";
        ok = false;
        detail = "vacuous: second run saw no damaged cache file";
      }
    else
      {
        name = "cache-trunc";
        ok = ok2;
        detail =
          Printf.sprintf
            "%s (warm run over damaged cache: %d quarantined, %d entries \
             salvaged)"
            d2 cstats.Engine.Proof_cache.corrupt_files
            cstats.Engine.Proof_cache.salvaged_entries;
      }
  in
  let sigterm_resume () =
    Engine.Chaos.reset ();
    let run_dir = Filename.concat dir "chaos-run" in
    flush stdout;
    flush stderr;
    let killed =
      match Unix.fork () with
      | 0 ->
          (* the victim: a journaled run that SIGTERMs itself when the
             proof stage starts.  Reaching the exit means the chaos hook
             never fired. *)
          (try
             Unix.putenv "PDAT_CHAOS" "sigterm:prove";
             ignore (run_once ~jobs:1 ~run_dir ~design ~env ())
           with _ -> ());
          Unix._exit 0
      | pid -> (
          let rec wait () =
            try snd (Unix.waitpid [] pid)
            with Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
          in
          match wait () with
          | Unix.WSIGNALED s when s = Sys.sigterm -> true
          | _ -> false)
    in
    if not killed then
      {
        name = "sigterm-resume";
        ok = false;
        detail = "vacuous: victim run was not SIGTERM-killed mid-pipeline";
      }
    else
      let keys, digest, r =
        with_env [ ("PDAT_CHAOS", "") ] (fun () ->
            run_once ~jobs:1 ~run_dir ~resume:true ~design ~env ())
      in
      let ok, detail = check keys digest in
      let resumed =
        match r.Pipeline.report.Pipeline.resume with
        | Some ri -> ri.Pipeline.resumed_stages
        | None -> []
      in
      if not (List.mem "mine" resumed) then
        {
          name = "sigterm-resume";
          ok = false;
          detail = "resume did not replay the journaled mine stage";
        }
      else
        {
          name = "sigterm-resume";
          ok;
          detail =
            Printf.sprintf "%s (replayed stages: %s)" detail
              (String.concat ", " resumed);
        }
  in
  [ worker_kill (); cache_trunc (); sigterm_resume () ]
