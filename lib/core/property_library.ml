module C = Netlist.Cell

type property_class = {
  name : string;
  applies_to : C.kind list;
  description : string;
  rewires_to : string;
}

let every_cell =
  [ C.Buf; C.Inv; C.And2; C.Or2; C.Nand2; C.Nor2; C.Xor2; C.Xnor2; C.And3;
    C.Or3; C.Nand3; C.Nor3; C.And4; C.Or4; C.Mux2; C.Aoi21; C.Oai21; C.Dff ]

let catalog =
  [
    {
      name = "out_stuck_0";
      applies_to = every_cell;
      description =
        "assert property (ZN == 1'b0): the cell's output never rises \
         under the environment restriction";
      rewires_to = "output net tied to the 0 rail; cell becomes dead logic";
    };
    {
      name = "out_stuck_1";
      applies_to = every_cell;
      description = "assert property (ZN == 1'b1)";
      rewires_to = "output net tied to the 1 rail; cell becomes dead logic";
    };
    {
      name = "in_implies";
      applies_to = [ C.And2; C.Nand2; C.Or2; C.Nor2 ];
      description =
        "assert property (A1 -> A2) (and the symmetric A2 -> A1): one \
         input dominates the other on all reachable states";
      rewires_to =
        "AND2 output becomes the dominated input (NAND2 its inverse); \
         OR2 output becomes the dominating input (NOR2 its inverse)";
    };
  ]

let mine ?config ?deadline ?attribution ~model ~assume ~stimulus () =
  Engine.Rsim.mine ?config ?deadline ?attribution ~assume model stimulus

let restrict_to_original ~original cands =
  let max_net = Netlist.Design.num_nets original in
  let max_cell = Netlist.Design.num_cells original in
  List.filter
    (fun c ->
      match c with
      | Engine.Candidate.Const (n, _) -> n < max_net
      | Engine.Candidate.Implies { cell; a; b } ->
          cell < max_cell && a < max_net && b < max_net)
    cands
