(** The Netlist Rewiring Stage (paper section IV-B).

    Applies proved property instances to the original netlist: nets
    proved constant are detached from their drivers and tied to the
    matching rail; a proved input implication collapses its gate's
    output onto the dominating/dominated input (through an inverter
    for the inverting gates).  No cell is removed here — the dead
    drivers are left for the resynthesis stage, exactly as in the
    paper. *)

val apply_certified :
  Netlist.Design.t ->
  Engine.Candidate.t list ->
  Netlist.Design.t * Analysis.Certificate.t
(** The rewired netlist plus a certificate with one edit per redirected
    net, each citing its justifying invariant — the input of
    {!Analysis.Audit.run}.  Candidates must have been proved on (a
    model of) this design; instances referring to unknown cells raise
    [Invalid_argument]. *)

val apply : Netlist.Design.t -> Engine.Candidate.t list -> Netlist.Design.t
(** [apply d cands] = [fst (apply_certified d cands)]. *)
