module D = Netlist.Design
module C = Netlist.Cell

type kind = Flip_constant | Bogus_invariant | Miswire | Perturb_cell

type structural = Multi_driven | Comb_cycle | Undriven_input

type seeded = {
  seeded : D.t;
  rule : string;
  net : D.net option;
  cell : int option;
  description : string;
}

type t = {
  kind : kind;
  seed : int;
}

let all = [ Flip_constant; Bogus_invariant; Miswire; Perturb_cell ]

let name = function
  | Flip_constant -> "flip-constant"
  | Bogus_invariant -> "bogus-invariant"
  | Miswire -> "miswire"
  | Perturb_cell -> "perturb-cell"

let of_name s =
  match String.lowercase_ascii s with
  | "flip-constant" | "flip_constant" -> Some Flip_constant
  | "bogus-invariant" | "bogus_invariant" -> Some Bogus_invariant
  | "miswire" -> Some Miswire
  | "perturb-cell" | "perturb_cell" -> Some Perturb_cell
  | _ -> None

(* Nets backwards-reachable from the primary outputs.  A corruption
   outside this cone is invisible by construction, so every injector
   restricts itself to it: the point is to test the validator, not to
   hide faults from it. *)
let output_cone d =
  let seen = Array.make (D.num_nets d) false in
  let stack = ref [] in
  let visit n =
    if not seen.(n) then begin
      seen.(n) <- true;
      stack := n :: !stack
    end
  in
  List.iter (fun (_, n) -> visit n) (D.outputs d);
  let rec drain () =
    match !stack with
    | [] -> ()
    | n :: rest ->
        stack := rest;
        (match D.driver d n with
        | Some ci -> Array.iter visit (D.cell d ci).D.ins
        | None -> ());
        drain ()
  in
  drain ();
  seen

let pick rng = function
  | [] -> None
  | l -> Some (List.nth l (Random.State.int rng (List.length l)))

let structural_all = [ Multi_driven; Comb_cycle; Undriven_input ]

let structural_name = function
  | Multi_driven -> "multi-driven"
  | Comb_cycle -> "comb-cycle"
  | Undriven_input -> "undriven-input"

(* Seed one structural fault of the class the lint rules must reject.
   Like the stage corruptors these are pure (they corrupt a copy) and
   return the exact rule id and net/cell location the linter is
   expected to report. *)
let seed_structural which ~seed design =
  let rng = Random.State.make [| seed |] in
  let comb_sites pred =
    let acc = ref [] in
    D.iter_cells design (fun i c ->
        if
          i > 1
          && (not (C.is_sequential c.D.kind))
          && Array.length c.D.ins > 0
          && pred c
        then acc := i :: !acc);
    !acc
  in
  match which with
  | Multi_driven -> (
      let nets = ref [] in
      D.iter_cells design (fun i c ->
          if i > 1 && c.D.out > D.net_true then nets := c.D.out :: !nets);
      match pick rng !nets with
      | None -> None
      | Some n ->
          let d = D.copy design in
          D.unsafe_add_cell_out d C.Buf [| D.net_true |] ~out:n;
          Some
            {
              seeded = d;
              rule = structural_name Multi_driven;
              net = Some n;
              cell = None;
              description =
                Printf.sprintf
                  "seeded second driver (BUF of rail-1) onto net %d (%s)" n
                  (D.net_name design n);
            })
  | Comb_cycle -> (
      match pick rng (comb_sites (fun _ -> true)) with
      | None -> None
      | Some i ->
          let d = D.copy design in
          let c = D.cell d i in
          let ins = Array.copy c.D.ins in
          let pin = Random.State.int rng (Array.length ins) in
          ins.(pin) <- c.D.out;
          D.replace_cell d i c.D.kind ins;
          Some
            {
              seeded = d;
              rule = structural_name Comb_cycle;
              net = None;
              cell = Some i;
              description =
                Printf.sprintf
                  "seeded combinational self-loop: cell %d (%s) pin %d fed \
                   its own output"
                  i (C.name c.D.kind) pin;
            })
  | Undriven_input -> (
      let sites = ref [] in
      D.iter_cells design (fun i c ->
          if i > 1 && Array.length c.D.ins > 0 then sites := i :: !sites);
      match pick rng !sites with
      | None -> None
      | Some i ->
          let d = D.copy design in
          let floating = D.new_net d in
          let c = D.cell d i in
          let ins = Array.copy c.D.ins in
          let pin = Random.State.int rng (Array.length ins) in
          ins.(pin) <- floating;
          D.replace_cell d i c.D.kind ins;
          Some
            {
              seeded = d;
              rule = structural_name Undriven_input;
              net = Some floating;
              cell = Some i;
              description =
                Printf.sprintf
                  "seeded floating input: cell %d (%s) pin %d fed fresh \
                   undriven net %d"
                  i (C.name c.D.kind) pin floating;
            })

let corrupt_proved t ~design proved =
  let rng = Random.State.make [| t.seed |] in
  match t.kind with
  | Flip_constant ->
      let cone = output_cone design in
      let is_po = Array.make (D.num_nets design) false in
      List.iter (fun (_, n) -> is_po.(n) <- true) (D.outputs design);
      (* prefer constants on primary-output nets: rewiring redirects
         the output itself, so the flip is observable no matter what
         other proved constants shadow the net's internal readers *)
      let consts_on pred =
        List.filter
          (function Engine.Candidate.Const (n, _) -> pred n | _ -> false)
          proved
      in
      let consts =
        match consts_on (fun n -> is_po.(n)) with
        | [] -> consts_on (fun n -> cone.(n))
        | l -> l
      in
      (match pick rng consts with
      | Some (Engine.Candidate.Const (n, b) as victim) ->
          let proved' =
            List.map
              (fun c ->
                if Engine.Candidate.equal c victim then
                  Engine.Candidate.Const (n, not b)
                else c)
              proved
          in
          Some
            ( proved',
              Printf.sprintf
                "flip-constant: proved stuck-at-%b on net %d (%s) flipped" b n
                (D.net_name design n) )
      | _ -> None)
  | Bogus_invariant ->
      let cone = output_cone design in
      (* a flip-flop that is genuinely proved constant is useless here:
         rewiring resolves conflicting claims in favour of whichever it
         sees last, so the bogus claim could be silently shadowed *)
      let claimed = Hashtbl.create 16 in
      List.iter
        (function
          | Engine.Candidate.Const (n, _) -> Hashtbl.replace claimed n ()
          | Engine.Candidate.Implies _ -> ())
        proved;
      let ffs = ref [] in
      D.iter_cells design (fun _ c ->
          if c.D.kind = C.Dff && cone.(c.D.out)
             && not (Hashtbl.mem claimed c.D.out)
          then ffs := c :: !ffs);
      (* claim the register is stuck at the complement of its reset
         value: false on the very first cycle, so an output-visible
         register guarantees the validator something to catch *)
      (match pick rng !ffs with
      | Some c ->
          Some
            ( Engine.Candidate.Const (c.D.out, not c.D.init) :: proved,
              Printf.sprintf
                "bogus-invariant: injected stuck-at-%b on flip-flop net %d (%s)"
                (not c.D.init) c.D.out
                (D.net_name design c.D.out) )
      | None -> None)
  | Miswire | Perturb_cell -> None

let corrupt_rewired t ~original ~rewired =
  match t.kind with
  | Miswire ->
      let rng = Random.State.make [| t.seed |] in
      let cone = output_cone rewired in
      let n = min (D.num_cells original) (D.num_cells rewired) in
      let sites = ref [] in
      for i = 2 to n - 1 do
        let co = D.cell original i and cr = D.cell rewired i in
        if cone.(cr.D.out) then
          Array.iteri
            (fun p orig_in ->
              let new_in = cr.D.ins.(p) in
              if
                new_in <> orig_in
                && (new_in = D.net_false || new_in = D.net_true)
              then sites := (i, p) :: !sites)
            co.D.ins
      done;
      (match pick rng !sites with
      | Some (i, p) ->
          let d = D.copy rewired in
          let c = D.cell d i in
          let ins = Array.copy c.D.ins in
          ins.(p) <-
            (if ins.(p) = D.net_false then D.net_true else D.net_false);
          D.replace_cell d i c.D.kind ins;
          Some
            ( d,
              Printf.sprintf "miswire: cell %d (%s) pin %d tied to the wrong rail"
                i (C.name c.D.kind) p )
      | None -> None)
  | Flip_constant | Bogus_invariant | Perturb_cell -> None

(* same-arity swap that complements the output on every input vector *)
let complement = function
  | C.Buf -> Some C.Inv
  | C.Inv -> Some C.Buf
  | C.And2 -> Some C.Nand2
  | C.Nand2 -> Some C.And2
  | C.Or2 -> Some C.Nor2
  | C.Nor2 -> Some C.Or2
  | C.Xor2 -> Some C.Xnor2
  | C.Xnor2 -> Some C.Xor2
  | C.And3 -> Some C.Nand3
  | C.Nand3 -> Some C.And3
  | C.Or3 -> Some C.Nor3
  | C.Nor3 -> Some C.Or3
  | C.Const0 | C.Const1 | C.And4 | C.Or4 | C.Mux2 | C.Aoi21 | C.Oai21
  | C.Dff ->
      None

let corrupt_reduced t ~reduced =
  match t.kind with
  | Perturb_cell ->
      let rng = Random.State.make [| t.seed |] in
      let cone = output_cone reduced in
      let is_po = Array.make (D.num_nets reduced) false in
      List.iter (fun (_, n) -> is_po.(n) <- true) (D.outputs reduced);
      let collect pred =
        let acc = ref [] in
        D.iter_cells reduced (fun i c ->
            if i > 1 && pred c.D.out then
              match complement c.D.kind with
              | Some k' -> acc := (i, `Kind k') :: !acc
              | None -> if c.D.kind = C.Dff then acc := (i, `Init) :: !acc);
        !acc
      in
      (* a complemented cell right on a primary output is a guaranteed
         divergence; fall back to anywhere in the cone *)
      let sites =
        match collect (fun n -> is_po.(n)) with
        | [] -> collect (fun n -> cone.(n))
        | l -> l
      in
      (match pick rng sites with
      | Some (i, action) ->
          let d = D.copy reduced in
          let c = D.cell d i in
          (match action with
          | `Kind k' ->
              D.replace_cell d i k' c.D.ins;
              Some
                ( d,
                  Printf.sprintf "perturb-cell: cell %d rewritten %s -> %s" i
                    (C.name c.D.kind) (C.name k') )
          | `Init ->
              D.replace_cell d i ~init:(not c.D.init) c.D.kind c.D.ins;
              Some
                ( d,
                  Printf.sprintf
                    "perturb-cell: cell %d (%s) reset value flipped" i
                    (C.name c.D.kind) ))
      | None -> None)
  | Flip_constant | Bogus_invariant | Miswire -> None
