exception Mismatch of string

type t = { path : string; mutable oc : out_channel option }

type recovered = {
  r_label : string;
  r_stages : (string * string list) list;
  r_shards : (string * string list) list;
  r_complete : bool;
  r_dropped_lines : int;
}

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let journal_path dir = Filename.concat dir "journal.jsonl"
let path t = t.path

(* ---------------- flat JSON of the restricted shape ----------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ escape s ^ "\""
let jlist items = "[" ^ String.concat "," (List.map jstr items) ^ "]"

(* Parser for exactly the objects we write: string keys mapping to a
   string, a bool, or an array of strings.  Anything else is a parse
   failure (the line is treated as damage). *)
type jv = Jstr of string | Jbool of bool | Jarr of string list

let parse_flat s =
  let n = String.length s in
  let pos = ref 0 in
  let fail () = raise Exit in
  let peek () = if !pos >= n then fail () else s.[!pos] in
  let advance () = incr pos in
  let expect c = if peek () <> c then fail () else advance () in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if !pos + 4 >= n then fail ();
              let hex = String.sub s (!pos + 1) 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
              | _ -> fail ());
              pos := !pos + 4
          | _ -> fail ());
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_value () =
    match peek () with
    | '"' -> Jstr (parse_string ())
    | 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
          pos := !pos + 4;
          Jbool true
        end
        else fail ()
    | 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
          pos := !pos + 5;
          Jbool false
        end
        else fail ()
    | '[' ->
        advance ();
        if peek () = ']' then begin
          advance ();
          Jarr []
        end
        else begin
          let rec items acc =
            let item = parse_string () in
            match peek () with
            | ',' ->
                advance ();
                items (item :: acc)
            | ']' ->
                advance ();
                List.rev (item :: acc)
            | _ -> fail ()
          in
          Jarr (items [])
        end
    | _ -> fail ()
  in
  try
    expect '{';
    let rec fields acc =
      let key = parse_string () in
      expect ':';
      let v = parse_value () in
      match peek () with
      | ',' ->
          advance ();
          fields ((key, v) :: acc)
      | '}' ->
          advance ();
          List.rev ((key, v) :: acc)
      | _ -> fail ()
    in
    let fs = fields [] in
    if !pos <> n then None else Some fs
  with Exit -> None

(* ---------------- line framing -------------------------------------- *)

(* One record is one line:

     {"crc":"xxxxxxxx","type":...,...}

   where the CRC-32 covers everything after the [crc] field's
   terminating comma — so the checksum protects exactly the payload it
   prefixes, and a torn tail fails either the frame match or the CRC. *)
let frame body = Printf.sprintf "{\"crc\":\"%s\",%s" (Engine.Checksum.crc32_hex body) body

let unframe line =
  let prefix = "{\"crc\":\"" in
  let plen = String.length prefix in
  if
    String.length line < plen + 9
    || not (String.sub line 0 plen = prefix)
    || line.[plen + 8] <> '"'
    || line.[plen + 9] <> ','
  then None
  else
    let crc = String.sub line plen 8 in
    let body = String.sub line (plen + 10) (String.length line - plen - 10) in
    if Engine.Checksum.check_hex body ~crc then Some ("{" ^ body) else None

let write_record t body =
  match t.oc with
  | None -> invalid_arg "Journal: record after close"
  | Some oc ->
      output_string oc (frame body ^ "\n");
      flush oc;
      (* fsync: the record must survive a machine-level crash before the
         work it acknowledges is skipped by a future resume *)
      (try Unix.fsync (Unix.descr_of_out_channel oc)
       with Unix.Unix_error _ -> ())

(* ---------------- records ------------------------------------------- *)

let header_body ~digest ~label =
  Printf.sprintf "\"type\":\"run\",\"version\":\"1\",\"digest\":%s,\"label\":%s}"
    (jstr digest) (jstr label)

let create ~dir ~digest ~label =
  mkdir_p dir;
  let oc = open_out (journal_path dir) in
  let t = { path = journal_path dir; oc = Some oc } in
  write_record t (header_body ~digest ~label);
  t

let record_stage t ~name ~items =
  write_record t
    (Printf.sprintf "\"type\":\"stage\",\"name\":%s,\"items\":%s}" (jstr name)
       (jlist items))

let record_shard t ~fp ~proved =
  write_record t
    (Printf.sprintf "\"type\":\"shard\",\"fp\":%s,\"proved\":%s}" (jstr fp)
       (jlist proved))

let record_end t ~ok =
  write_record t
    (Printf.sprintf "\"type\":\"end\",\"ok\":%s}" (if ok then "true" else "false"))

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
      t.oc <- None;
      close_out_noerr oc

(* ---------------- replay -------------------------------------------- *)

let field fs key = List.assoc_opt key fs

let resume ~dir ~digest =
  let jp = journal_path dir in
  if not (Sys.file_exists jp) then
    raise (Mismatch (Printf.sprintf "no journal at %s" jp));
  let ic = open_in_bin jp in
  let label = ref "" in
  let stages = ref [] in
  let shards = ref [] in
  let complete = ref false in
  let dropped = ref 0 in
  let good_upto = ref 0 in
  let header_seen = ref false in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let stop = ref false in
      let line_start = ref 0 in
      while not !stop do
        match input_line ic with
        | exception End_of_file -> stop := true
        | line -> (
            (* a CRC-valid line that lost its newline is still a torn
               write: appending after it would glue two records *)
            let after = pos_in ic in
            let terminated = after - !line_start = String.length line + 1 in
            line_start := after;
            match
              if terminated then Option.bind (unframe line) parse_flat
              else None
            with
            | None ->
                (* first damage: everything after it is untrusted *)
                incr dropped;
                stop := true
            | Some fs -> (
                let ok =
                  match field fs "type" with
                  | Some (Jstr "run") -> (
                      match (field fs "digest", field fs "label") with
                      | Some (Jstr d), Some (Jstr l) ->
                          if !header_seen then false
                          else if d <> digest then
                            raise
                              (Mismatch
                                 (Printf.sprintf
                                    "journal is for digest %s, run is %s — \
                                     the netlist or environment changed"
                                    d digest))
                          else begin
                            header_seen := true;
                            label := l;
                            true
                          end
                      | _ -> false)
                  | Some (Jstr "stage") -> (
                      match (field fs "name", field fs "items") with
                      | Some (Jstr name), Some (Jarr items) ->
                          !header_seen
                          &&
                          (stages := (name, items) :: !stages;
                           true)
                      | _ -> false)
                  | Some (Jstr "shard") -> (
                      match (field fs "fp", field fs "proved") with
                      | Some (Jstr fp), Some (Jarr proved) ->
                          !header_seen
                          &&
                          (shards := (fp, proved) :: !shards;
                           true)
                      | _ -> false)
                  | Some (Jstr "end") -> (
                      match field fs "ok" with
                      | Some (Jbool b) ->
                          !header_seen
                          &&
                          (complete := b;
                           true)
                      | _ -> false)
                  | _ -> false
                in
                if ok then good_upto := pos_in ic
                else begin
                  incr dropped;
                  stop := true
                end))
      done);
  if not !header_seen then
    raise (Mismatch (Printf.sprintf "journal at %s has no valid header" jp));
  (* count any bytes past the last good record as dropped damage and
     truncate them away before appending *)
  let size = (Unix.stat jp).Unix.st_size in
  if size > !good_upto then begin
    if !dropped = 0 then incr dropped;
    let fd = Unix.openfile jp [ Unix.O_WRONLY ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () -> Unix.ftruncate fd !good_upto)
  end;
  let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 jp in
  ( { path = jp; oc = Some oc },
    {
      r_label = !label;
      r_stages = List.rev !stages;
      r_shards = List.rev !shards;
      r_complete = !complete;
      r_dropped_lines = !dropped;
    } )
