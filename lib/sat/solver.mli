(** CDCL SAT solver with two-watched-literal propagation, 1-UIP
    learning, VSIDS branching with phase saving, Luby restarts and
    activity-based learned-clause reduction.

    The solver is incremental: clauses may be added between [solve]
    calls, and each call may carry assumption literals.  A conflict
    budget turns the solver into a semi-decision procedure — exactly
    what the PDAT property-checking stage needs, where "unknown" just
    means an optimization is skipped. *)

type t

type result =
  | Sat
  | Unsat
  | Unknown  (** conflict budget or wall-clock deadline exhausted *)

val create : unit -> t

val new_var : t -> int

val num_vars : t -> int

val add_clause : t -> Lit.t list -> unit
(** Clauses over undeclared variables raise [Invalid_argument].
    Adding a clause that is falsified at level 0 marks the instance
    unsatisfiable. *)

val solve :
  ?assumptions:Lit.t list -> ?conflict_budget:int -> ?deadline:float -> t ->
  result
(** [conflict_budget < 0] (default) means no budget.  [deadline] is an
    absolute time on the monotonic [Obs.Clock.now_s] scale (i.e.
    [Obs.Clock.now_s () +. budget]; an NTP step cannot fire or defer
    it); the check runs once per conflict, so a call returns [Unknown]
    at the first conflict past the deadline (or immediately if already
    past).  A timed-out call leaves the solver fully usable, exactly
    like an exhausted conflict budget.

    Every call also feeds the [sat.calls] / [sat.conflicts] /
    [sat.decisions] / [sat.propagations] counters in {!Obs}, so any
    enclosing trace span carries the SAT work it caused, and records
    its wall-clock latency into the [sat.call_s] {!Obs} distribution
    (p50/p95 of it surface in bench JSON and run reports). *)

val new_selector : t -> Lit.t
(** A fresh {e selector} (activation) literal for incremental clause
    groups.  Clauses added under it with {!add_guarded} hold only in
    [solve] calls that assume the selector true; the whole group is
    permanently removed with {!retire}.  A selector is an ordinary
    variable — it may appear in assumptions and shows up in
    {!failed_assumptions} like any other assumption literal, which is
    how the proof engine maps unsat cores back to candidates. *)

val add_guarded : t -> guard:Lit.t -> Lit.t list -> unit
(** [add_guarded s ~guard lits] adds the clause [¬guard ∨ lits] and
    registers it under [guard]'s variable for {!retire}.  [guard]
    should be a literal from {!new_selector}; guarding on a literal
    that also receives ordinary clauses is allowed but then [retire]
    deletes only the registered clauses. *)

val retire : t -> Lit.t -> unit
(** Permanently deactivates a selector: adds the unit clause
    [¬guard], so learned clauses mentioning the selector become
    vacuous, and physically deletes every clause registered under it
    (they can never propagate again, so deletion is sound).  Must be
    called between [solve] calls (decision level 0).  Retiring twice,
    or retiring a selector with no registered clauses, is a no-op
    beyond the unit. *)

val value : t -> int -> bool
(** Model value of a variable after {!solve} returned [Sat].
    Unconstrained variables read as [false]. *)

val lit_value : t -> Lit.t -> bool

val failed_assumptions : t -> Lit.t list
(** After [Unsat] under assumptions: a subset of the assumptions
    sufficient for unsatisfiability (not minimized). *)

val num_conflicts : t -> int
(** Total conflicts across all [solve] calls, for budget accounting. *)

type snapshot = {
  vars : int;
  clauses : int;  (** problem clauses *)
  learnts : int;  (** currently retained learned clauses *)
  conflicts : int;
  decisions : int;
  propagations : int;
}

val snapshot : t -> snapshot
(** A cheap copy of the cumulative search counters.  Used by the
    parallel proof engine: each forked worker snapshots its solvers and
    ships the counters back to the coordinator, which aggregates them
    into the per-shard statistics. *)

val num_clauses : t -> int

val set_seed : t -> int -> unit
(** Seeds the (rare) random branching decisions; default 91648253. *)
