exception Parse_error of { line : int; token : string; reason : string }

let () =
  Printexc.register_printer (function
    | Parse_error { line; token; reason } ->
        Some
          (Printf.sprintf "Dimacs.Parse_error: line %d, at %S: %s" line token
             reason)
    | _ -> None)

let error ~line ~token reason = raise (Parse_error { line; token; reason })

type warning = { line : int; token : string; reason : string }

let parse ?(on_warning = fun (_ : warning) -> ()) src =
  let n_vars = ref 0 in
  let header_seen = ref false in
  let clauses = ref [] in
  let current = ref [] in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let text = String.trim raw in
      if text = "" || text.[0] = 'c' then ()
      else if text.[0] = 'p' then begin
        if !header_seen then
          error ~line ~token:text "duplicate problem line";
        match String.split_on_char ' ' text |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; nv; nc ] -> (
            match (int_of_string_opt nv, int_of_string_opt nc) with
            | Some v, Some c when v >= 0 && c >= 0 ->
                n_vars := v;
                header_seen := true
            | _ ->
                error ~line ~token:text
                  "malformed problem line (expected `p cnf <vars> <clauses>')")
        | _ ->
            error ~line ~token:text
              "malformed problem line (expected `p cnf <vars> <clauses>')"
      end
      else
        String.split_on_char ' ' text
        |> List.filter (( <> ) "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | None -> error ~line ~token:tok "not an integer literal"
               | Some 0 ->
                   clauses := List.rev !current :: !clauses;
                   current := []
               | Some v ->
                   if not !header_seen then
                     error ~line ~token:tok "clause before the problem line";
                   if abs v > !n_vars then
                     error ~line ~token:tok
                       (Printf.sprintf
                          "literal exceeds the %d declared variables" !n_vars);
                   let lit = Lit.of_int v in
                   if List.mem lit !current then
                     on_warning
                       {
                         line;
                         token = tok;
                         reason = "duplicate literal in clause, dropped";
                       }
                   else current := lit :: !current))
    lines;
  if !current <> [] then clauses := List.rev !current :: !clauses;
  (!n_vars, List.rev !clauses)

let load ?on_warning solver src =
  let n_vars, clauses = parse ?on_warning src in
  for _ = 1 to n_vars do
    ignore (Solver.new_var solver)
  done;
  List.iter (Solver.add_clause solver) clauses

let to_string (n_vars, clauses) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" n_vars (List.length clauses));
  List.iter
    (fun c ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int (Lit.to_int l) ^ " ")) c;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf
