(* CDCL in the MiniSat lineage.  The invariants that matter:
   - lits.(0) and lits.(1) of every clause are the watched literals;
     watches.(l) lists the clauses currently watching literal l.
   - A clause is inspected when its watched literal becomes false.
   - All assignments live on the trail; reason.(v) is the clause that
     propagated v (None for decisions and assumptions).
   - For a reason clause, lits.(0) is the literal it propagated.
   - Assumptions occupy decision levels 1..n; a conflict is never
     resolved by flipping an assumption, so unsatisfiability under
     assumptions surfaces when an assumption is false at its own
     establishment (or at level 0). *)

type clause = {
  mutable lits : int array;
  mutable act : float;
  learnt : bool;
  mutable deleted : bool;
}

type vec_clause = { mutable data : clause array; mutable len : int }

let dummy_clause = { lits = [||]; act = 0.0; learnt = false; deleted = true }

let vc_create () = { data = Array.make 4 dummy_clause; len = 0 }

let vc_push v c =
  if v.len = Array.length v.data then begin
    let data = Array.make (2 * v.len) dummy_clause in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  v.data.(v.len) <- c;
  v.len <- v.len + 1

type t = {
  mutable clauses : clause list;
  mutable learnts : clause list;
  mutable watches : vec_clause array;
  mutable assign : int array;  (* var -> -1 undef / 0 false / 1 true *)
  mutable model : int array;
  mutable level : int array;
  mutable reason : clause option array;
  mutable activity : float array;
  mutable polarity : bool array;
  mutable heap : int array;
  mutable heap_pos : int array;
  mutable heap_len : int;
  mutable seen : bool array;
  mutable trail : int array;
  mutable trail_len : int;
  mutable trail_lim : int array;  (* trail length at entry to each level *)
  mutable n_levels : int;
  mutable qhead : int;
  mutable n_vars : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable n_clauses : int;
  mutable n_learnts : int;
  mutable max_learnts : float;
  mutable failed : int list;
  mutable rng : Random.State.t;
  guarded : (int, clause list) Hashtbl.t;
      (* selector var -> problem clauses retired together with it *)
  mutable n_dead : int;  (* deleted problem clauses awaiting compaction *)
}

type result = Sat | Unsat | Unknown

let create () =
  {
    clauses = [];
    learnts = [];
    watches = Array.init 4 (fun _ -> vc_create ());
    assign = Array.make 2 (-1);
    model = Array.make 2 (-1);
    level = Array.make 2 0;
    reason = Array.make 2 None;
    activity = Array.make 2 0.0;
    polarity = Array.make 2 false;
    heap = Array.make 2 0;
    heap_pos = Array.make 2 (-1);
    heap_len = 0;
    seen = Array.make 2 false;
    trail = Array.make 16 0;
    trail_len = 0;
    trail_lim = Array.make 16 0;
    n_levels = 0;
    qhead = 0;
    n_vars = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    n_clauses = 0;
    n_learnts = 0;
    max_learnts = 8192.0;
    failed = [];
    rng = Random.State.make [| 91648253 |];
    guarded = Hashtbl.create 64;
    n_dead = 0;
  }

let set_seed s seed = s.rng <- Random.State.make [| seed |]
let num_vars s = s.n_vars
let num_conflicts s = s.conflicts
let num_clauses s = s.n_clauses

(* ---------------- variable order heap (max-heap on activity) ------- *)

let heap_less s a b = s.activity.(a) > s.activity.(b)

let heap_swap s i j =
  let a = s.heap.(i) and b = s.heap.(j) in
  s.heap.(i) <- b;
  s.heap.(j) <- a;
  s.heap_pos.(b) <- i;
  s.heap_pos.(a) <- j

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less s s.heap.(i) s.heap.(p) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_len && heap_less s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_len && heap_less s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    if s.heap_len = Array.length s.heap then begin
      let heap = Array.make (2 * s.heap_len) 0 in
      Array.blit s.heap 0 heap 0 s.heap_len;
      s.heap <- heap
    end;
    s.heap.(s.heap_len) <- v;
    s.heap_pos.(v) <- s.heap_len;
    s.heap_len <- s.heap_len + 1;
    heap_up s (s.heap_len - 1)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_len <- s.heap_len - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_len > 0 then begin
    s.heap.(0) <- s.heap.(s.heap_len);
    s.heap_pos.(s.heap.(0)) <- 0;
    heap_down s 0
  end;
  v

let heap_bubble_up s v = if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* ---------------- variables and values ----------------------------- *)

let ensure_capacity s n =
  let cap = Array.length s.assign in
  if n > cap then begin
    let ncap = max (2 * cap) n in
    let grow_int a def =
      let a' = Array.make ncap def in
      Array.blit a 0 a' 0 cap;
      a'
    in
    s.assign <- grow_int s.assign (-1);
    s.model <- grow_int s.model (-1);
    s.level <- grow_int s.level 0;
    (let a = Array.make ncap None in
     Array.blit s.reason 0 a 0 cap;
     s.reason <- a);
    (let a = Array.make ncap 0.0 in
     Array.blit s.activity 0 a 0 cap;
     s.activity <- a);
    (let a = Array.make ncap false in
     Array.blit s.polarity 0 a 0 cap;
     s.polarity <- a);
    s.heap_pos <- grow_int s.heap_pos (-1);
    (let a = Array.make ncap false in
     Array.blit s.seen 0 a 0 cap;
     s.seen <- a);
    (let w = Array.init (2 * ncap) (fun _ -> vc_create ()) in
     Array.blit s.watches 0 w 0 (Array.length s.watches);
     s.watches <- w);
    (let t = Array.make ncap 0 in
     Array.blit s.trail 0 t 0 s.trail_len;
     s.trail <- t);
    let tl = Array.make (ncap + 1) 0 in
    Array.blit s.trail_lim 0 tl 0 s.n_levels;
    s.trail_lim <- tl
  end

let new_var s =
  let v = s.n_vars in
  s.n_vars <- v + 1;
  ensure_capacity s s.n_vars;
  heap_insert s v;
  v

let lit_val s l =
  let v = s.assign.(l lsr 1) in
  if v < 0 then -1 else v lxor (l land 1)

(* ---------------- trail ------------------------------------------- *)

let enqueue s l reason =
  if reason <> None then s.propagations <- s.propagations + 1;
  let v = l lsr 1 in
  s.assign.(v) <- (l land 1) lxor 1;
  s.level.(v) <- s.n_levels;
  s.reason.(v) <- reason;
  s.trail.(s.trail_len) <- l;
  s.trail_len <- s.trail_len + 1

let cancel_until s lvl =
  if s.n_levels > lvl then begin
    let target = s.trail_lim.(lvl) in
    for i = s.trail_len - 1 downto target do
      let l = s.trail.(i) in
      let v = l lsr 1 in
      s.polarity.(v) <- s.assign.(v) = 1;
      s.assign.(v) <- -1;
      s.reason.(v) <- None;
      heap_insert s v
    done;
    s.trail_len <- target;
    s.qhead <- target;
    s.n_levels <- lvl
  end

let new_decision_level s =
  s.trail_lim.(s.n_levels) <- s.trail_len;
  s.n_levels <- s.n_levels + 1

(* ---------------- clause management -------------------------------- *)

let watch s l c = vc_push s.watches.(l) c

let attach_clause s c =
  watch s c.lits.(0) c;
  watch s c.lits.(1) c

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.n_vars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_bubble_up s v

let var_decay s = s.var_inc <- s.var_inc /. 0.95

let cla_bump s c =
  c.act <- c.act +. s.cla_inc;
  if c.act > 1e20 then begin
    List.iter (fun c -> c.act <- c.act *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. 0.999

(* Returns the clause object actually stored, when one is: simplified
   or satisfied clauses (and units, which go straight onto the trail)
   allocate nothing and return [None]. *)
let add_clause_tracked s lits =
  List.iter
    (fun l ->
      if l lsr 1 >= s.n_vars then
        invalid_arg "Solver.add_clause: unknown variable")
    lits;
  if not s.ok then None
  else begin
    assert (s.n_levels = 0);
    let lits = List.sort_uniq compare lits in
    let rec tautology = function
      | a :: b :: _ when b = a lxor 1 -> true
      | _ :: rest -> tautology rest
      | [] -> false
    in
    if tautology lits || List.exists (fun l -> lit_val s l = 1) lits then None
    else
      let lits = List.filter (fun l -> lit_val s l <> 0) lits in
      match lits with
      | [] ->
          s.ok <- false;
          None
      | [ l ] ->
          enqueue s l None;
          None
      | _ ->
          let c =
            { lits = Array.of_list lits; act = 0.0; learnt = false; deleted = false }
          in
          attach_clause s c;
          s.clauses <- c :: s.clauses;
          s.n_clauses <- s.n_clauses + 1;
          Some c
  end

let add_clause s lits = ignore (add_clause_tracked s lits)

(* ---------------- selectors (guarded clause groups) ----------------- *)

(* A selector is an ordinary variable used as an activation literal:
   clauses added under it carry its negation, so they are vacuous
   unless the selector is assumed true in a [solve] call.  Selectors
   never gain a positive unit clause, hence a guarded clause can never
   propagate at decision level 0 and is safe to delete physically. *)

let new_selector s = Lit.pos (new_var s)

let add_guarded s ~guard lits =
  match add_clause_tracked s (Lit.negate guard :: lits) with
  | None -> ()
  | Some c ->
      let v = Lit.var guard in
      let prev = try Hashtbl.find s.guarded v with Not_found -> [] in
      Hashtbl.replace s.guarded v (c :: prev)

let retire s guard =
  (* The unit clause makes the selector false forever, turning any
     learned clause that mentions it vacuous; the problem clauses it
     guarded are deleted outright rather than left satisfied. *)
  add_clause s [ Lit.negate guard ];
  let v = Lit.var guard in
  (match Hashtbl.find_opt s.guarded v with
  | None -> ()
  | Some cs ->
      Hashtbl.remove s.guarded v;
      List.iter
        (fun c ->
          if not c.deleted then begin
            c.deleted <- true;
            s.n_clauses <- s.n_clauses - 1;
            s.n_dead <- s.n_dead + 1
          end)
        cs);
  (* Amortized compaction: watch lists self-clean during propagation,
     but the clause list itself is swept only when dead clauses pile
     up, keeping [retire] O(group size) amortized. *)
  if s.n_dead > 64 && s.n_dead > s.n_clauses then begin
    s.clauses <- List.filter (fun c -> not c.deleted) s.clauses;
    s.n_dead <- 0
  end

(* ---------------- propagation -------------------------------------- *)

exception Conflict of clause

let propagate s =
  try
    while s.qhead < s.trail_len do
      let p = s.trail.(s.qhead) in
      s.qhead <- s.qhead + 1;
      (* p became true: clauses watching ¬p lost a watch. *)
      let np = p lxor 1 in
      let ws = s.watches.(np) in
      let j = ref 0 in
      let i = ref 0 in
      while !i < ws.len do
        let c = ws.data.(!i) in
        incr i;
        if not c.deleted then begin
          if c.lits.(0) = np then begin
            c.lits.(0) <- c.lits.(1);
            c.lits.(1) <- np
          end;
          if lit_val s c.lits.(0) = 1 then begin
            ws.data.(!j) <- c;
            incr j
          end
          else begin
            let n = Array.length c.lits in
            let found = ref false in
            let k = ref 2 in
            while (not !found) && !k < n do
              if lit_val s c.lits.(!k) <> 0 then begin
                c.lits.(1) <- c.lits.(!k);
                c.lits.(!k) <- np;
                watch s c.lits.(1) c;
                found := true
              end;
              incr k
            done;
            if not !found then begin
              ws.data.(!j) <- c;
              incr j;
              if lit_val s c.lits.(0) = 0 then begin
                while !i < ws.len do
                  ws.data.(!j) <- ws.data.(!i);
                  incr j;
                  incr i
                done;
                ws.len <- !j;
                s.qhead <- s.trail_len;
                raise (Conflict c)
              end
              else enqueue s c.lits.(0) (Some c)
            end
          end
        end
      done;
      ws.len <- !j
    done;
    None
  with Conflict c -> Some c

(* ---------------- conflict analysis -------------------------------- *)

let analyze s confl =
  let learnt = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let index = ref (s.trail_len - 1) in
  let confl = ref confl in
  let dl = s.n_levels in
  let uip = ref 0 in
  let continue = ref true in
  while !continue do
    let c = !confl in
    if c.learnt then cla_bump s c;
    let start = if !p < 0 then 0 else 1 in
    for k = start to Array.length c.lits - 1 do
      let q = c.lits.(k) in
      let v = q lsr 1 in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        var_bump s v;
        if s.level.(v) >= dl then incr path else learnt := q :: !learnt
      end
    done;
    let rec find_next () =
      let l = s.trail.(!index) in
      decr index;
      if s.seen.(l lsr 1) then l else find_next ()
    in
    let l = find_next () in
    let v = l lsr 1 in
    s.seen.(v) <- false;
    decr path;
    if !path = 0 then begin
      uip := Lit.negate l;
      continue := false
    end
    else begin
      (match s.reason.(v) with
      | Some c -> confl := c
      | None -> assert false);
      p := l
    end
  done;
  (* Cheap recursive-free minimization against direct reasons. *)
  let learnt_list = !learnt in
  List.iter (fun q -> s.seen.(q lsr 1) <- true) learnt_list;
  let redundant q =
    match s.reason.(q lsr 1) with
    | None -> false
    | Some c ->
        Array.for_all
          (fun l ->
            l lsr 1 = q lsr 1 || s.seen.(l lsr 1) || s.level.(l lsr 1) = 0)
          c.lits
  in
  let kept = List.filter (fun q -> not (redundant q)) learnt_list in
  List.iter (fun q -> s.seen.(q lsr 1) <- false) learnt_list;
  let blevel = List.fold_left (fun acc q -> max acc s.level.(q lsr 1)) 0 kept in
  (!uip :: kept, blevel)

let record_learnt s lits =
  match lits with
  | [] -> s.ok <- false
  | [ l ] -> enqueue s l None
  | l0 :: rest ->
      let rest_arr = Array.of_list rest in
      let max_i = ref 0 in
      Array.iteri
        (fun i q ->
          if s.level.(q lsr 1) > s.level.(rest_arr.(!max_i) lsr 1) then max_i := i)
        rest_arr;
      let tmp = rest_arr.(0) in
      rest_arr.(0) <- rest_arr.(!max_i);
      rest_arr.(!max_i) <- tmp;
      let c =
        {
          lits = Array.append [| l0 |] rest_arr;
          act = 0.0;
          learnt = true;
          deleted = false;
        }
      in
      attach_clause s c;
      cla_bump s c;
      s.learnts <- c :: s.learnts;
      s.n_learnts <- s.n_learnts + 1;
      enqueue s l0 (Some c)

let locked s c =
  Array.length c.lits > 0
  &&
  let v = c.lits.(0) lsr 1 in
  s.assign.(v) >= 0
  && (match s.reason.(v) with Some c' -> c' == c | None -> false)

let reduce_db s =
  let learnts =
    List.filter (fun c -> not c.deleted) s.learnts
    |> List.sort (fun a b -> compare a.act b.act)
  in
  let n = List.length learnts in
  let killed = ref 0 in
  List.iteri
    (fun i c ->
      if i < n / 2 && Array.length c.lits > 2 && not (locked s c) then begin
        c.deleted <- true;
        incr killed
      end)
    learnts;
  s.learnts <- List.filter (fun c -> not c.deleted) learnts;
  s.n_learnts <- s.n_learnts - !killed

(* ---------------- search -------------------------------------------- *)

(* Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let luby x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let pick_branch_var s =
  let rec go () =
    if s.heap_len = 0 then -1
    else
      let v = heap_pop s in
      if s.assign.(v) < 0 then v else go ()
  in
  go ()

(* Collect the assumption decisions that a falsified literal rests on. *)
let analyze_final s seed_lit =
  s.failed <- [];
  let marked = ref [ seed_lit lsr 1 ] in
  s.seen.(seed_lit lsr 1) <- true;
  for i = s.trail_len - 1 downto 0 do
    let l = s.trail.(i) in
    let v = l lsr 1 in
    if s.seen.(v) then
      match s.reason.(v) with
      | None -> if s.level.(v) > 0 then s.failed <- l :: s.failed
      | Some c ->
          Array.iter
            (fun q ->
              let vq = q lsr 1 in
              if (not s.seen.(vq)) && s.level.(vq) > 0 then begin
                s.seen.(vq) <- true;
                marked := vq :: !marked
              end)
            c.lits
  done;
  List.iter (fun v -> s.seen.(v) <- false) !marked

let solve_body ?(assumptions = []) ?(conflict_budget = -1) ?deadline s =
  let deadline = match deadline with Some t -> t | None -> infinity in
  if not s.ok then Unsat
  else if deadline < infinity && Obs.Clock.now_s () >= deadline then begin
    s.failed <- [];
    Unknown
  end
  else begin
    s.failed <- [];
    let budget_start = s.conflicts in
    let assumptions = Array.of_list assumptions in
    let n_assumps = Array.length assumptions in
    let restart_count = ref 0 in
    let result = ref Unknown in
    let finished = ref false in
    let local_conflicts = ref 0 in
    let restart_budget = ref (100 * luby 0) in
    while not !finished do
      match propagate s with
      | Some confl ->
          s.conflicts <- s.conflicts + 1;
          incr local_conflicts;
          if s.n_levels = 0 then begin
            s.ok <- false;
            result := Unsat;
            finished := true
          end
          else begin
            let lits, blevel = analyze s confl in
            cancel_until s blevel;
            record_learnt s lits;
            var_decay s;
            cla_decay s;
            if (conflict_budget >= 0
                && s.conflicts - budget_start >= conflict_budget)
               || (deadline < infinity && Obs.Clock.now_s () >= deadline)
            then begin
              result := Unknown;
              finished := true
            end
          end
      | None ->
          if !local_conflicts >= !restart_budget && s.n_levels > n_assumps
          then begin
            cancel_until s n_assumps;
            incr restart_count;
            local_conflicts := 0;
            restart_budget := 100 * luby !restart_count
          end
          else if float_of_int s.n_learnts >= s.max_learnts then begin
            reduce_db s;
            s.max_learnts <- s.max_learnts *. 1.2
          end
          else if s.n_levels < n_assumps then begin
            let a = assumptions.(s.n_levels) in
            match lit_val s a with
            | 1 -> new_decision_level s
            | 0 ->
                analyze_final s a;
                s.failed <- a :: s.failed;
                result := Unsat;
                finished := true
            | _ ->
                new_decision_level s;
                enqueue s a None
          end
          else begin
            let v = pick_branch_var s in
            if v < 0 then begin
              Array.blit s.assign 0 s.model 0 s.n_vars;
              result := Sat;
              finished := true
            end
            else begin
              s.decisions <- s.decisions + 1;
              new_decision_level s;
              enqueue s (Lit.make v s.polarity.(v)) None
            end
          end
    done;
    cancel_until s 0;
    !result
  end

(* PDAT_CHAOS=slow-solver[:sec] delays every solve — the synthetic
   regression the CI perf gate proves it can catch.  Parsed here (the
   sat layer cannot see Engine.Chaos) with the same comma-separated
   re-parse-per-injection-point convention. *)
let chaos_slow_solver () =
  match Sys.getenv_opt "PDAT_CHAOS" with
  | None | Some "" -> ()
  | Some specs ->
      String.split_on_char ',' specs
      |> List.iter (fun spec ->
             let spec = String.trim spec in
             let delay =
               if spec = "slow-solver" then Some 0.002
               else
                 match String.index_opt spec ':' with
                 | Some i when String.sub spec 0 i = "slow-solver" ->
                     float_of_string_opt
                       (String.sub spec (i + 1) (String.length spec - i - 1))
                 | _ -> None
             in
             match delay with
             | Some d when d > 0. -> (
                 try ignore (Unix.select [] [] [] d)
                 with Unix.Unix_error _ -> ())
             | _ -> ())

let solve ?assumptions ?conflict_budget ?deadline s =
  let c0 = s.conflicts and d0 = s.decisions and p0 = s.propagations in
  let t0 = Obs.Clock.now_s () in
  chaos_slow_solver ();
  let r = solve_body ?assumptions ?conflict_budget ?deadline s in
  let dt = Obs.Clock.now_s () -. t0 in
  Obs.observe "sat.call_s" dt;
  Obs.Attr.charge_call ~wall_s:dt ~conflicts:(s.conflicts - c0);
  Obs.add_int "sat.calls" 1;
  Obs.add_int "sat.conflicts" (s.conflicts - c0);
  Obs.add_int "sat.decisions" (s.decisions - d0);
  Obs.add_int "sat.propagations" (s.propagations - p0);
  r

type snapshot = {
  vars : int;
  clauses : int;
  learnts : int;
  conflicts : int;
  decisions : int;
  propagations : int;
}

let snapshot s =
  {
    vars = s.n_vars;
    clauses = s.n_clauses;
    learnts = s.n_learnts;
    conflicts = s.conflicts;
    decisions = s.decisions;
    propagations = s.propagations;
  }

let value s v = s.model.(v) = 1

let lit_value s l =
  if Lit.sign l then value s (Lit.var l) else not (value s (Lit.var l))

let failed_assumptions s = s.failed
