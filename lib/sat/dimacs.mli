(** DIMACS CNF parsing and printing, used by the solver's test suite. *)

exception Parse_error of { line : int; token : string; reason : string }
(** Located syntax error: 1-based source line, the offending token (the
    whole line for problem-line errors) and a human-readable reason.  A
    printer is registered with [Printexc]. *)

type warning = { line : int; token : string; reason : string }
(** A recoverable oddity in otherwise well-formed input.  Currently the
    only producer is a duplicate literal inside one clause, which the
    parser drops (the clause is logically unchanged) and reports.
    [Analysis.Diag.of_dimacs_warning] lifts this into the shared
    diagnostic type. *)

val parse : ?on_warning:(warning -> unit) -> string -> int * Lit.t list list
(** [parse src] is [(n_vars, clauses)].  The problem line is required
    before the first clause, and every literal must stay within the
    declared variable count.  Duplicate literals within a clause are
    deduplicated and reported through [on_warning] (ignored by
    default).
    @raise Parse_error on malformed input. *)

val load : ?on_warning:(warning -> unit) -> Solver.t -> string -> unit
(** Parses and loads into a solver, declaring variables as needed. *)

val to_string : int * Lit.t list list -> string
