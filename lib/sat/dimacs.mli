(** DIMACS CNF parsing and printing, used by the solver's test suite. *)

exception Parse_error of { line : int; token : string; reason : string }
(** Located syntax error: 1-based source line, the offending token (the
    whole line for problem-line errors) and a human-readable reason.  A
    printer is registered with [Printexc]. *)

val parse : string -> int * Lit.t list list
(** [parse src] is [(n_vars, clauses)].  The problem line is required
    before the first clause, and every literal must stay within the
    declared variable count.
    @raise Parse_error on malformed input. *)

val load : Solver.t -> string -> unit
(** Parses and loads into a solver, declaring variables as needed. *)

val to_string : int * Lit.t list list -> string
