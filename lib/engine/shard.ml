module D = Netlist.Design

let candidate_nets = function
  | Candidate.Const (n, _) -> [ n ]
  | Candidate.Implies { a; b; _ } -> [ a; b ]

(* One short 64-lane random simulation; a candidate's signature folds the
   words its nets carried, so candidates that toggle together sort
   adjacently when an oversized component has to be cut into chunks. *)
let signatures d cands =
  let sim = Netlist.Sim64.create d in
  let rng = Random.State.make [| 0x5A4D |] in
  let random_word () =
    Int64.logor
      (Int64.of_int (Random.State.bits rng))
      (Int64.logor
         (Int64.shift_left (Int64.of_int (Random.State.bits rng)) 30)
         (Int64.shift_left (Int64.of_int (Random.State.bits rng)) 60))
  in
  let sigs = Array.make (Array.length cands) 0 in
  let inputs = D.inputs d in
  for _ = 1 to 16 do
    List.iter (fun (_, n) -> Netlist.Sim64.set_input sim n (random_word ())) inputs;
    Netlist.Sim64.eval sim;
    Array.iteri
      (fun i cand ->
        List.iter
          (fun n ->
            sigs.(i) <-
              (sigs.(i) * 1000003) lxor Hashtbl.hash (Netlist.Sim64.read sim n))
          (candidate_nets cand))
      cands;
    Netlist.Sim64.step sim
  done;
  sigs

let partition d ~jobs candidates =
  let cands = Array.of_list candidates in
  let n = Array.length cands in
  let jobs = max 1 (min jobs n) in
  if n = 0 then []
  else if jobs <= 1 then [ candidates ]
  else begin
    let nn = D.num_nets d in
    let parent = Array.init nn (fun i -> i) in
    let rec find i =
      if parent.(i) = i then i
      else begin
        let r = find parent.(i) in
        parent.(i) <- r;
        r
      end
    in
    let is_pi = Array.make nn false in
    List.iter (fun (_, net) -> if net < nn then is_pi.(net) <- true) (D.inputs d);
    (* rails and primary inputs are high-fanout hubs: letting them merge
       components would glue the whole netlist into one *)
    let hub net = net = D.net_false || net = D.net_true || is_pi.(net) in
    let union a b =
      if not (hub a || hub b) then begin
        let ra = find a and rb = find b in
        if ra <> rb then parent.(max ra rb) <- min ra rb
      end
    in
    D.iter_cells d (fun _ c -> Array.iter (fun i -> union c.D.out i) c.D.ins);
    Array.iter
      (fun cand ->
        match candidate_nets cand with [ a; b ] -> union a b | _ -> ())
      cands;
    let root_of cand =
      match List.filter (fun net -> not (hub net)) (candidate_nets cand) with
      | net :: _ -> find net
      | [] -> -1
    in
    let groups : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
    let roots_seen = ref [] in
    let singletons = ref [] in
    Array.iteri
      (fun i cand ->
        match root_of cand with
        | -1 -> singletons := [ i ] :: !singletons
        | r -> (
            match Hashtbl.find_opt groups r with
            | Some l -> l := i :: !l
            | None ->
                Hashtbl.replace groups r (ref [ i ]);
                roots_seen := r :: !roots_seen))
      cands;
    let sigs = signatures d cands in
    let cap = max 1 ((n + jobs - 1) / jobs) in
    let chunk idxs =
      let sorted =
        List.sort (fun a b -> compare (sigs.(a), a) (sigs.(b), b)) idxs
      in
      let rec cut acc cur k = function
        | [] -> if cur = [] then acc else List.rev cur :: acc
        | x :: rest ->
            if k = cap then cut (List.rev cur :: acc) [ x ] 1 rest
            else cut acc (x :: cur) (k + 1) rest
      in
      cut [] [] 0 sorted
    in
    let chunks =
      List.rev !singletons
      @ List.concat_map
          (fun r -> chunk (List.rev !(Hashtbl.find groups r)))
          (List.rev !roots_seen)
    in
    (* largest chunks first, then greedy least-loaded packing *)
    let key c = (-List.length c, List.fold_left min max_int c) in
    let chunks = List.sort (fun a b -> compare (key a) (key b)) chunks in
    let loads = Array.make jobs 0 in
    let shards = Array.make jobs [] in
    List.iter
      (fun c ->
        let best = ref 0 in
        for j = 1 to jobs - 1 do
          if loads.(j) < loads.(!best) then best := j
        done;
        shards.(!best) <- c @ shards.(!best);
        loads.(!best) <- loads.(!best) + List.length c)
      chunks;
    Array.to_list shards
    |> List.filter_map (fun idxs ->
           match List.sort compare idxs with
           | [] -> None
           | l -> Some (List.map (fun i -> cands.(i)) l))
  end
