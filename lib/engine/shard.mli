(** Candidate-set sharding for the parallel proof engine.

    Candidates whose cones of influence overlap interact during mutual
    induction (one may serve as the hypothesis that makes another
    inductive), so they should be proved by the same worker; candidates
    over disjoint logic are independent and parallelize freely.

    [partition] derives structural components from the netlist
    (union-find over the cell graph, ignoring the constant rails and
    primary inputs, which are high-fanout hubs that would glue
    everything together), refines the order inside oversized components
    with 64-lane random-simulation signatures (candidates that toggle
    together land in the same chunk), and bin-packs the components onto
    [jobs] shards, splitting any component larger than a fair share.

    The partition is purely a performance heuristic: the parallel
    prover's join round re-establishes mutual induction over the union
    of shard survivors, so any partition — even a random one — yields
    the same final proved set (see DESIGN.md). *)

val partition :
  Netlist.Design.t ->
  jobs:int ->
  Candidate.t list ->
  Candidate.t list list
(** Splits the candidates into at most [jobs] non-empty shards.
    Deterministic: depends only on the design and the candidate list.
    Candidates keep their relative input order within each shard.
    [jobs <= 1], an empty candidate list, or fewer candidates than
    shards degenerate gracefully (never returns empty shards). *)
