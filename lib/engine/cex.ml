module D = Netlist.Design

type t = {
  inputs : D.net array;
  frames : bool array array;
}

let length t = Array.length t.frames

let of_inputs d frames =
  let inputs = Array.of_list (List.map snd (D.inputs d)) in
  Array.iteri
    (fun c frame ->
      if Array.length frame <> Array.length inputs then
        invalid_arg
          (Printf.sprintf "Cex.of_inputs: frame %d has %d values for %d inputs"
             c (Array.length frame) (Array.length inputs)))
    frames;
  { inputs; frames }

(* Drive the trace into an already-reset simulator.  Booleans broadcast
   to all 64 lanes; no [step] after the last frame so the caller reads
   the violating cycle. *)
let drive ?on_frame sim t =
  let last = Array.length t.frames - 1 in
  Array.iteri
    (fun c frame ->
      Array.iteri
        (fun i b ->
          Netlist.Sim64.set_input sim t.inputs.(i) (if b then -1L else 0L))
        frame;
      Netlist.Sim64.eval sim;
      (match on_frame with Some f -> f sim c | None -> ());
      if c < last then Netlist.Sim64.step sim)
    t.frames

let replay ?on_frame d t =
  let sim = Netlist.Sim64.create d in
  Netlist.Sim64.reset sim;
  drive ?on_frame sim t;
  sim

let violates d t cand =
  Array.length t.frames > 0
  &&
  let sim = replay d t in
  not (Candidate.holds_in_values (Netlist.Sim64.read sim) cand)

let nets_of_candidate d cand =
  let label n = D.net_name d n in
  match cand with
  | Candidate.Const (n, _) -> [ (label n, [| n |]) ]
  | Candidate.Implies { a; b; _ } ->
      [ (label a, [| a |]); (label b, [| b |]) ]

let dump ?(extra = []) ~path d t =
  let sim = Netlist.Sim64.create d in
  let nets =
    Array.to_list (Array.map (fun n -> (D.net_name d n, [| n |])) t.inputs)
    @ extra
  in
  let vcd = Netlist.Vcd.create sim ~path ~nets in
  Fun.protect
    ~finally:(fun () -> Netlist.Vcd.close vcd)
    (fun () ->
      Netlist.Sim64.reset sim;
      drive ~on_frame:(fun _ _ -> Netlist.Vcd.sample vcd) sim t)
