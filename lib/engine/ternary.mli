(** Three-valued (0/1/X) reachability analysis — a cheap, complete-in-
    minutes alternative to SAT induction for *constant* invariants.

    Every primary input is classified as stuck-at-0, stuck-at-1 or free
    (X); flip-flops start at their reset values and the state lattice is
    iterated to a fixpoint, joining each flop's next value into its
    current one.  Any net still carrying a definite value at the
    fixpoint is constant on {e all} executions consistent with the
    input classes — a sound overapproximation (no candidate list, no
    counterexamples, but it misses everything that depends on input
    correlations, e.g. "these 32 bits always form a LUI or an ADD").

    PDAT uses it two ways: as a fast first screen before the inductive
    prover, and as the engine-comparison ablation. *)

type input_class = Zero | One | Free

val x : int
(** The unknown value.  Definite values are [0] and [1]; every other
    function in this interface speaks this three-point lattice. *)

val join : int -> int -> int
(** Lattice join: agreeing definite values stay, disagreement goes to
    [x]. *)

val eval_cell : Netlist.Cell.kind -> int array -> int
(** Ternary transfer function for one combinational cell, pessimistic
    but sound for every kind (an [x] input yields [x] output unless the
    definite inputs already decide the function).
    @raise Invalid_argument on [Dff] — sequential cells have no
    combinational transfer. *)

val constants :
  ?max_iterations:int ->
  Netlist.Design.t ->
  classify:(Netlist.Design.net -> input_class) ->
  Candidate.t list
(** Proved constant nets (excluding rails and primary inputs).
    [classify] is consulted for each primary input bit.
    @raise Failure if the fixpoint does not converge (cannot happen
    within [2 * flops + 2] iterations; the default bound is generous). *)
