module D = Netlist.Design
module S = Sat.Solver
module L = Sat.Lit

type cls = { rep : Candidate.t; members : Candidate.t list }

type stats = {
  n_candidates : int;
  n_classes : int;
  n_sieved : int;
  sat_calls : int;
  sat_merges : int;
}

(* The claim a candidate makes, with the mining byproducts (the [cell]
   tag of an implication) stripped: candidates with equal shape are the
   same formula and merge with no checking at all. *)
type shape =
  | Sh_const of D.net * bool
  | Sh_implies of D.net * D.net

let shape = function
  | Candidate.Const (n, b) -> Sh_const (n, b)
  | Candidate.Implies { a; b; _ } -> Sh_implies (a, b)

let random_word rng =
  Int64.logor
    (Int64.of_int (Random.State.bits rng))
    (Int64.logor
       (Int64.shift_left (Int64.of_int (Random.State.bits rng)) 30)
       (Int64.shift_left (Int64.of_int (Random.State.bits rng)) 60))

(* 64-lane violation word of a candidate's claim, masked by the lanes
   where the environment assumption holds: equal words on every probe
   is the bucketing signature, and genuinely equivalent candidates are
   pointwise equal here by construction. *)
let violation_word sim ~mask = function
  | Candidate.Const (n, true) ->
      Int64.logand mask (Int64.lognot (Netlist.Sim64.read sim n))
  | Candidate.Const (n, false) -> Int64.logand mask (Netlist.Sim64.read sim n)
  | Candidate.Implies { a; b; _ } ->
      Int64.logand mask
        (Int64.logand (Netlist.Sim64.read sim a)
           (Int64.lognot (Netlist.Sim64.read sim b)))

let partition ?(runs = 4) ?(cycles = 64) ?(seed = 0x51EE) ?(conflict_budget = 5000)
    ~assume d candidates =
  let n_candidates = List.length candidates in
  (* ---- stage 1: syntactic grouping (free merges) ------------------- *)
  let group_of = Hashtbl.create (max 16 n_candidates) in
  let groups = ref [] (* (rep, members rev) refs, reverse input order *) in
  List.iter
    (fun cand ->
      let sh = shape cand in
      match Hashtbl.find_opt group_of sh with
      | Some members -> members := cand :: !members
      | None ->
          let members = ref [] in
          Hashtbl.replace group_of sh members;
          groups := (cand, members) :: !groups)
    candidates;
  let groups = List.rev !groups in
  (* ---- stage 2: signature bucketing -------------------------------- *)
  let sim = Netlist.Sim64.create d in
  let rng = Random.State.make [| seed |] in
  let inputs = D.inputs d in
  let reps = Array.of_list (List.map fst groups) in
  let n_groups = Array.length reps in
  let sigs = Array.make n_groups [] in
  for _ = 1 to runs do
    (* a fresh random state per run: induction's step side quantifies
       over free states, so the signature must too *)
    Netlist.Sim64.load_state sim (fun _ -> random_word rng);
    for _ = 1 to cycles do
      List.iter
        (fun (_, nnet) -> Netlist.Sim64.set_input sim nnet (random_word rng))
        inputs;
      Netlist.Sim64.eval sim;
      let mask = Netlist.Sim64.read sim assume in
      for g = 0 to n_groups - 1 do
        sigs.(g) <- violation_word sim ~mask reps.(g) :: sigs.(g)
      done;
      Netlist.Sim64.step sim
    done
  done;
  let buckets = Hashtbl.create (max 16 n_groups) in
  let bucket_order = ref [] in
  Array.iteri
    (fun g signature ->
      match Hashtbl.find_opt buckets signature with
      | Some gs -> gs := g :: !gs
      | None ->
          let gs = ref [ g ] in
          Hashtbl.replace buckets signature gs;
          bucket_order := signature :: !bucket_order)
    sigs;
  (* ---- stage 3: SAT confirmation within buckets -------------------- *)
  (* One long-lived solver holding a single combinational frame (free
     state, assume forced): each comparison adds the difference clauses
     [h1 ∨ h2] and [¬h1 ∨ ¬h2] under a fresh selector, solves assuming
     it, and retires it — incremental equivalence checking with the
     exact machinery the prover itself uses. *)
  let solver = S.create () in
  let u = Unroll.create solver d ~init:`Free in
  Unroll.add_frame u;
  S.add_clause solver [ Unroll.lit u ~frame:0 assume ];
  let hold_lit cand =
    match cand with
    | Candidate.Const (nn, b) ->
        let l = Unroll.lit u ~frame:0 nn in
        if b then l else L.negate l
    | Candidate.Implies { a; b; _ } ->
        let h = L.pos (S.new_var solver) in
        Sat.Tseitin.or2 solver ~out:h
          (L.negate (Unroll.lit u ~frame:0 a))
          (Unroll.lit u ~frame:0 b);
        h
  in
  let hold = Array.map hold_lit reps in
  let sat_calls = ref 0 in
  let sat_merges = ref 0 in
  (* one equivalence query: Unsat = pointwise equivalent under assume;
     Sat additionally leaves a distinguishing model in the solver *)
  let equivalent g1 g2 =
    incr sat_calls;
    let sel = S.new_selector solver in
    S.add_guarded solver ~guard:sel [ hold.(g1); hold.(g2) ];
    S.add_guarded solver ~guard:sel
      [ L.negate hold.(g1); L.negate hold.(g2) ];
    let r = S.solve ~assumptions:[ sel ] ~conflict_budget solver in
    S.retire solver sel;
    (match r with S.Unsat -> incr sat_merges | S.Sat | S.Unknown -> ());
    r
  in
  (* classes as (first group index, member group indices rev) *)
  let classes = ref [] in
  List.iter
    (fun signature ->
      let gs = List.rev !(Hashtbl.find buckets signature) in
      let sub = ref [] (* (leader g, followers rev) within this bucket *) in
      List.iter
        (fun g ->
          (* scan the bucket's leaders; a Sat answer is a concrete
             valuation, so every other leader whose hold-bit differs
             from [g]'s in that model is provably inequivalent to [g]
             and is pruned without its own query — this keeps false
             bucket collisions (e.g. candidates that rarely violate
             under random stimulus) linear instead of quadratic *)
          let rec place = function
            | [] -> sub := !sub @ [ (g, ref []) ]
            | (leader, followers) :: rest -> (
                match equivalent leader g with
                | S.Unsat -> followers := g :: !followers
                | S.Unknown -> place rest
                | S.Sat ->
                    let v_g = S.lit_value solver hold.(g) in
                    place
                      (List.filter
                         (fun (l, _) ->
                           S.lit_value solver hold.(l) = v_g)
                         rest))
          in
          (* bill the confirmation queries to the candidate being placed *)
          Obs.Attr.with_key (Candidate.key reps.(g)) (fun () -> place !sub))
        gs;
      List.iter (fun c -> classes := c :: !classes) !sub)
    (List.rev !bucket_order);
  (* classes in input order of their leader group, members in global
     input order within each class *)
  let classes =
    List.sort (fun (a, _) (b, _) -> compare a b) (List.rev !classes)
  in
  let position = Hashtbl.create (max 16 n_candidates) in
  List.iteri
    (fun i cand ->
      if not (Hashtbl.mem position cand) then Hashtbl.replace position cand i)
    candidates;
  let groups_arr = Array.of_list groups in
  let result =
    List.map
      (fun (leader, followers) ->
        let group_members g = List.rev !(snd groups_arr.(g)) in
        let members =
          group_members leader
          @ List.concat_map
              (fun g -> reps.(g) :: group_members g)
              (List.sort compare (List.rev !followers))
        in
        let members =
          List.sort
            (fun a b ->
              compare (Hashtbl.find position a) (Hashtbl.find position b))
            members
        in
        { rep = reps.(leader); members })
      classes
  in
  let n_classes = List.length result in
  ( result,
    {
      n_candidates;
      n_classes;
      n_sieved = n_candidates - n_classes;
      sat_calls = !sat_calls;
      sat_merges = !sat_merges;
    } )
