(** Mutual k-induction over the candidate set — the Property Checking
    Stage of PDAT.

    The candidates are proved *simultaneously*: the inductive step may
    assume every still-alive candidate in frames [0..k-1] when proving
    frame [k].  Counterexample models evict violated candidates and the
    fixpoint re-runs; the survivors of a round that ends in UNSAT for
    both the base and the step are genuine invariants of the design
    under the environment assumption.

    Conflict budgets make the prover incomplete, never unsound: an
    inconclusive SAT call only drops candidates (paper section VII-C —
    an inconclusive analysis just means a less optimized netlist). *)

type options = {
  k : int;                    (** induction depth, >= 1 *)
  call_conflict_budget : int; (** per aggregate SAT call; -1 = unlimited *)
  total_conflict_budget : int;(** across the whole proof; -1 = unlimited *)
  time_budget_s : float;
      (** wall-clock seconds for the whole proof; <= 0 = unlimited.
          Measured from the [prove] call; once exceeded, every further
          SAT call returns Unknown, so remaining candidates are dropped
          (incomplete, never unsound) and the fixpoint winds down
          quickly. *)
}

val default_options : options

type stats = {
  n_candidates : int;
  n_proved : int;
  sat_calls : int;
  conflicts : int;
  rounds : int;
  budget_exhausted : bool;
  deadline_exceeded : bool;  (** the wall-clock budget cut the proof short *)
}

val pp_stats : Format.formatter -> stats -> unit

val prove :
  ?options:options ->
  ?cex:Stimulus.t * int ->
  assume:Netlist.Design.net ->
  Netlist.Design.t ->
  Candidate.t list ->
  Candidate.t list * stats
(** Returns the proved subset of the candidates.  [assume] is the
    environment-ok net, forced to 1 in every time frame (use
    {!Netlist.Design.net_true} for an unconstrained environment).

    [cex] = [(stimulus, cycles)] enables counterexample propagation:
    after each SAT kill, the model's state is replayed forward in the
    64-lane simulator for [cycles] cycles under the stimulus, evicting
    further candidates without SAT queries.  Conservative only — an
    eviction never makes the result unsound, it only skips an
    optimization. *)
