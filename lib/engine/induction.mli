(** Mutual k-induction over the candidate set — the Property Checking
    Stage of PDAT.

    The candidates are proved *simultaneously*: the inductive step may
    assume every still-alive candidate in frames [0..k-1] when proving
    frame [k].  Counterexample models evict violated candidates and the
    fixpoint re-runs; the survivors of a round that ends in UNSAT for
    both the base and the step are genuine invariants of the design
    under the environment assumption.

    Conflict budgets make the prover incomplete, never unsound: an
    inconclusive SAT call only drops candidates (paper section VII-C —
    an inconclusive analysis just means a less optimized netlist). *)

type options = {
  k : int;                    (** induction depth, >= 1 *)
  call_conflict_budget : int; (** per aggregate SAT call; -1 = unlimited *)
  total_conflict_budget : int;(** across the whole proof; -1 = unlimited *)
  time_budget_s : float;
      (** wall-clock seconds for the whole proof; <= 0 = unlimited.
          Measured from the [prove] call; once exceeded, every further
          SAT call returns Unknown, so remaining candidates are dropped
          (incomplete, never unsound) and the fixpoint winds down
          quickly. *)
}

val default_options : options

type stats = {
  n_candidates : int;
  n_proved : int;
  sat_calls : int;
  conflicts : int;
  decisions : int;     (** SAT branch decisions, summed over solvers *)
  propagations : int;  (** unit propagations, summed over solvers *)
  rounds : int;
  budget_exhausted : bool;
  deadline_exceeded : bool;  (** the wall-clock budget cut the proof short *)
  workers : int;          (** forked workers (0 = ran serially) *)
  workers_failed : int;   (** workers that crashed; their shards dropped *)
  worker_failures : (int * string) list;
      (** (worker index, reason) per lost worker — a non-zero exit
          status, a fatal signal, and a garbled result pipe are
          distinguished so the failure is diagnosable from stats alone *)
  worker_times : (int * float * float) list;
      (** (worker index, wall seconds, CPU seconds) per surviving
          worker, measured inside the worker on the monotonic clock *)
  shard_sizes : int list; (** candidates per shard, parallel runs only *)
  cache_hits : int;       (** candidates resolved from the proof cache *)
  cache_misses : int;     (** candidates the cache had no verdict for *)
  worker_seconds : float; (** wall-clock of the fork/collect span *)
}

val pp_stats : Format.formatter -> stats -> unit

(** {1 Per-candidate verdicts}

    Fate of one candidate through the prover, for the provenance
    layer.  Only a base-side SAT kill carries a counterexample: the
    base case unrolls from reset, so its model is a concrete input
    trace that replays in {!Netlist.Sim64} ({!Cex.replay}) and refutes
    the candidate on real hardware states.  A step-side kill starts
    from an unconstrained state and proves nothing about
    reachability. *)
type verdict =
  | V_proved of { k : int }  (** survived mutual induction at depth [k] *)
  | V_refuted of { frame : int; cex : Cex.t option }
      (** violated at [frame] of the base case; [cex] is the replayable
          refuting input trace from reset *)
  | V_sim_killed
      (** evicted by counterexample propagation (simulator replay of
          another candidate's kill state) *)
  | V_not_inductive  (** killed on the induction step side *)
  | V_dropped of string
      (** conservatively dropped without a refutation: an inconclusive
          SAT call, an exhausted budget, a lost worker — the reason
          string says which *)
  | V_cached of Proof_cache.verdict  (** settled by the proof cache *)

val verdict_label : verdict -> string
(** Short stable tag ("proved", "refuted", ...) for reports. *)

type attribution = {
  verdict : verdict;
  shard : int option;
      (** worker index that decided it; [None] for cache hits, serial
          runs and join-round-only candidates *)
  cache_hit : bool;
}

val prove :
  ?options:options ->
  ?cex:Stimulus.t * int ->
  ?known:Candidate.t list ->
  ?hypotheses:Candidate.t list ->
  ?fates:(Candidate.t, verdict) Hashtbl.t ->
  assume:Netlist.Design.net ->
  Netlist.Design.t ->
  Candidate.t list ->
  Candidate.t list * stats
(** Returns the proved subset of the candidates.  [assume] is the
    environment-ok net, forced to 1 in every time frame (use
    {!Netlist.Design.net_true} for an unconstrained environment).

    [cex] = [(stimulus, cycles)] enables counterexample propagation:
    after each SAT kill, the model's state is replayed forward in the
    64-lane simulator for [cycles] cycles under the stimulus, evicting
    further candidates without SAT queries.  Conservative only — an
    eviction never makes the result unsound, it only skips an
    optimization.

    [known] are established invariants of the design under [assume]
    (e.g. from {!Proof_cache}); they are asserted at every frame of both
    the base and the step side, strengthening the induction for free.
    Soundness requires that they really are invariants.

    [hypotheses] are *unverified* co-candidates being proved elsewhere
    (other shards of a parallel run).  They are assumed only where the
    candidate set assumes its own members: frames [0..k-1] of the step
    side, never the base side.  Survivors of a run with hypotheses are
    only proved relative to them — {!prove_parallel}'s join round
    discharges that relativity.

    [fates], when given, is filled with one {!verdict} per candidate.
    Fate tracking costs nothing on the proof path except counterexample
    extraction at each base-side kill (one literal read per input per
    frame, while the SAT model is live). *)

val prove_parallel :
  ?options:options ->
  ?cex:Stimulus.t * int ->
  ?jobs:int ->
  ?cache:Proof_cache.t ->
  ?attributions:(Candidate.t, attribution) Hashtbl.t ->
  assume:Netlist.Design.net ->
  Netlist.Design.t ->
  Candidate.t list ->
  Candidate.t list * stats
(** Sharded fork-based prover.  Returns exactly the proved set of the
    serial {!prove} (when neither is cut short by budgets):

    - candidates with a cached verdict are settled up front; cached
      proofs join the run as [known] invariants,
    - the rest are partitioned by {!Shard.partition} and proved in
      [jobs] forked workers, each assuming the other shards' candidates
      as step-side [hypotheses] (workers run without [cex] so their
      kills are deterministic and exact),
    - worker result pipes are drained with [Unix.select] as data
      arrives, so a slow worker never blocks collection of the others,
    - a worker that crashes or writes a garbled result only loses its
      shard (incomplete, never unsound) and is reported in
      [worker_failures] with the reason,
    - one serial mutual-induction join round over the union of shard
      survivors restores the greatest fixpoint of the whole set.

    Workers over-assume, so the survivor union is a superset of the
    serial fixpoint; the greatest fixpoint of any superset of the
    fixpoint (within the original set) is that fixpoint, hence the join
    round's result equals the serial one.

    Fresh verdicts are recorded in [cache] only when the run completed
    cleanly (no budget/deadline exhaustion, no failed workers); the
    caller is responsible for {!Proof_cache.flush}.  [jobs <= 1] (the
    default), a single shard, or a fully cache-resolved candidate list
    short-circuit to the serial path with no forking.

    [attributions], when given, receives one {!attribution} per input
    candidate: cache hits as [V_cached], fresh candidates with the
    verdict from the worker (or join round) that decided them tagged
    with the shard index, and a lost worker's candidates as
    [V_dropped].  Workers marshal their fates — including
    counterexamples — back through the result pipe, and their
    histogram samples (e.g. per-SAT-call latency) are merged into the
    coordinator's {!Obs} distributions either way. *)
