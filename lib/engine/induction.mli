(** Mutual k-induction over the candidate set — the Property Checking
    Stage of PDAT.

    The candidates are proved *simultaneously*: the inductive step may
    assume every still-alive candidate in frames [0..k-1] when proving
    frame [k].  Counterexample models evict violated candidates and the
    fixpoint re-runs; the survivors of a round that ends in UNSAT for
    both the base and the step are genuine invariants of the design
    under the environment assumption.

    Conflict budgets make the prover incomplete, never unsound: an
    inconclusive SAT call only drops candidates (paper section VII-C —
    an inconclusive analysis just means a less optimized netlist). *)

type options = {
  k : int;                    (** induction depth, >= 1 *)
  call_conflict_budget : int; (** per aggregate SAT call; -1 = unlimited *)
  total_conflict_budget : int;(** across the whole proof; -1 = unlimited *)
  time_budget_s : float;
      (** wall-clock seconds for the whole proof; [infinity] =
          unlimited, and any finite non-positive value is an
          already-expired deadline (nothing proves).  Measured from the
          [prove] call; once exceeded, every further SAT call returns
          Unknown, so remaining candidates are dropped (incomplete,
          never unsound) and the fixpoint winds down quickly. *)
}

val default_options : options

type stats = {
  n_candidates : int;
  n_proved : int;
  sat_calls : int;
  conflicts : int;
  decisions : int;     (** SAT branch decisions, summed over solvers *)
  propagations : int;  (** unit propagations, summed over solvers *)
  rounds : int;
  core_skips : int;
      (** step-side re-checks avoided because the candidate's last
          unsat core mentioned none of the newly killed co-candidates *)
  n_sieved : int;
      (** candidates settled by signature-class verdict transfer
          instead of their own SAT checks *)
  sieve_classes : int;  (** equivalence classes that entered the prover *)
  sieve_sat_calls : int;
      (** one-frame equivalence-confirmation SAT calls spent by the
          sieve itself *)
  budget_exhausted : bool;
  deadline_exceeded : bool;  (** the wall-clock budget cut the proof short *)
  workers : int;          (** shards of the parallel run (0 = ran serially) *)
  workers_failed : int;   (** failed worker attempts (each was retried
                              or fell back; no shard is ever dropped) *)
  worker_failures : (int * string) list;
      (** (shard index, reason) per failed attempt — a non-zero exit
          status, a fatal signal, a garbled result pipe and a watchdog
          kill are distinguished so the failure is diagnosable from
          stats alone *)
  worker_retries : int;   (** attempts relaunched after a failure *)
  worker_fallbacks : int; (** shards proved serially in-process after
                              exhausting their retries *)
  resumed_shards : int;   (** shards settled from a journal checkpoint
                              instead of being re-proved *)
  worker_times : (int * float * float) list;
      (** (worker index, wall seconds, CPU seconds) per surviving
          worker, measured inside the worker on the monotonic clock *)
  shard_sizes : int list; (** candidates per shard, parallel runs only *)
  cache_hits : int;       (** candidates resolved from the proof cache *)
  cache_misses : int;     (** candidates the cache had no verdict for *)
  worker_seconds : float; (** wall-clock of the fork/collect span *)
  n_static_proved : int;
      (** candidates discharged by the abstract-interpretation tier
          without any SAT call *)
  strengthening_facts : int;
      (** absint invariants outside the candidate set asserted at every
          frame of every solver (k=1 induction strengthening) *)
  top_costs : Obs.Attr.row list;
      (** deterministic top-K most expensive candidates of this run
          ({!Obs.Attr.top} over the run's attribution delta): ranked by
          conflicts, then SAT calls, then key — never by wall time, so
          for a fixed configuration (same jobs/sieve/absint) the table
          is byte-reproducible run to run.  Aggregate-round costs are
          shared equally among the candidates the round refuted; rows
          carry the shard that settled them *)
  worker_wall_max_s : float;
      (** slowest surviving worker's own wall clock (0 when serial) *)
  worker_wall_mean_s : float;  (** mean worker wall clock *)
  worker_idle_frac : float;
      (** 1 - mean/max: the fraction of the slowest worker's window the
          average worker spent idle — the shard load-balance gauge *)
}

val blank_stats : stats
(** All-zero stats — the base for synthesizing a stats record when the
    proof stage itself was replayed from a journal. *)

val pp_stats : Format.formatter -> stats -> unit

(** {1 Per-candidate verdicts}

    Fate of one candidate through the prover, for the provenance
    layer.  Only a base-side SAT kill carries a counterexample: the
    base case unrolls from reset, so its model is a concrete input
    trace that replays in {!Netlist.Sim64} ({!Cex.replay}) and refutes
    the candidate on real hardware states.  A step-side kill starts
    from an unconstrained state and proves nothing about
    reachability. *)
type verdict =
  | V_proved of { k : int }  (** survived mutual induction at depth [k] *)
  | V_refuted of { frame : int; cex : Cex.t option }
      (** violated at [frame] of the base case; [cex] is the replayable
          refuting input trace from reset *)
  | V_sim_killed
      (** evicted by counterexample propagation (simulator replay of
          another candidate's kill state) *)
  | V_not_inductive  (** killed on the induction step side *)
  | V_dropped of string
      (** conservatively dropped without a refutation: an inconclusive
          SAT call, an exhausted budget, a lost worker — the reason
          string says which *)
  | V_cached of Proof_cache.verdict  (** settled by the proof cache *)
  | V_sieved of { rep : Candidate.t; proved : bool }
      (** settled by the simulation-signature sieve: the candidate is
          pointwise equivalent (under the environment assumption) to
          [rep], whose verdict — [proved] — was transferred to it.
          [rep] is always a candidate the prover actually checked. *)
  | V_static_proved
      (** discharged by the abstract-interpretation tier: the
          candidate's violation is impossible in the conditioned
          post-fixpoint, so it never touched SAT *)

val verdict_label : verdict -> string
(** Short stable tag ("proved", "refuted", ...) for reports. *)

type attribution = {
  verdict : verdict;
  shard : int option;
      (** worker index that decided it; [None] for cache hits, serial
          runs and join-round-only candidates *)
  cache_hit : bool;
}

val prove :
  ?options:options ->
  ?cex:Stimulus.t * int ->
  ?known:Candidate.t list ->
  ?hypotheses:Candidate.t list ->
  ?fates:(Candidate.t, verdict) Hashtbl.t ->
  assume:Netlist.Design.net ->
  Netlist.Design.t ->
  Candidate.t list ->
  Candidate.t list * stats
(** Returns the proved subset of the candidates.  [assume] is the
    environment-ok net, forced to 1 in every time frame (use
    {!Netlist.Design.net_true} for an unconstrained environment).

    [cex] = [(stimulus, cycles)] enables counterexample propagation:
    after each SAT kill, the model's state is replayed forward in the
    64-lane simulator for [cycles] cycles under the stimulus, evicting
    further candidates without SAT queries.  Conservative only — an
    eviction never makes the result unsound, it only skips an
    optimization.

    [known] are established invariants of the design under [assume]
    (e.g. from {!Proof_cache}); they are asserted at every frame of both
    the base and the step side, strengthening the induction for free.
    Soundness requires that they really are invariants.

    [hypotheses] are *unverified* co-candidates being proved elsewhere
    (other shards of a parallel run).  They are assumed only where the
    candidate set assumes its own members: frames [0..k-1] of the step
    side, never the base side.  Survivors of a run with hypotheses are
    only proved relative to them — {!prove_parallel}'s join round
    discharges that relativity.

    [fates], when given, is filled with one {!verdict} per candidate.
    Fate tracking costs nothing on the proof path except counterexample
    extraction at each base-side kill (one literal read per input per
    frame, while the SAT model is live). *)

val prove_snapshot :
  ?options:options ->
  ?known:Candidate.t list ->
  ?hypotheses:Candidate.t list ->
  assume:Netlist.Design.net ->
  Netlist.Design.t ->
  Candidate.t list ->
  Candidate.t list * stats
(** The pre-incremental snapshot/restore prover, kept as a
    differential-test oracle and bench baseline: every pass re-encodes
    the transition relation into fresh solvers and pays one solver
    round-trip per candidate per pass, so nothing — learned clauses,
    selectors, cores — is reused between checks.  On complete runs
    (generous budgets, no [Unknown] drops) its proved set is the
    greatest mutual-induction fixpoint and must be byte-identical to
    {!prove}'s.  No counterexample propagation and no fates: this is a
    measurement and verification artifact, not a production path. *)

val shard_fingerprint : ?salt:string -> Candidate.t list -> string
(** Content digest of a shard's candidate set (order-independent, over
    {!Candidate.key}s).  This is the name under which the run journal
    checkpoints a shard's proved set, and the name a resumed run uses
    to recognize it.  [salt] — the absint facts digest on strengthened
    runs — keeps checkpoints written with different strengthening sets
    from resuming each other. *)

val prove_parallel :
  ?options:options ->
  ?cex:Stimulus.t * int ->
  ?jobs:int ->
  ?cache:Proof_cache.t ->
  ?absint:Absint.t ->
  ?attributions:(Candidate.t, attribution) Hashtbl.t ->
  ?retries:int ->
  ?checkpoint:(string -> Candidate.t list -> unit) ->
  ?recovered:(string * Candidate.t list) list ->
  ?sieve:bool ->
  assume:Netlist.Design.net ->
  Netlist.Design.t ->
  Candidate.t list ->
  Candidate.t list * stats
(** Sharded fork-based prover with worker supervision.  Returns exactly
    the proved set of the serial {!prove} (when neither is cut short by
    budgets):

    - when [absint] is given, its static tier runs first: candidates
      the abstract post-fixpoint already proves get [V_static_proved]
      and never touch SAT, the interpreter's remaining facts are
      asserted at every frame of every solver below (strengthening),
      and the facts digest salts both the cache scope and the shard
      fingerprints so strengthened runs share nothing with
      unstrengthened ones,
    - candidates with a cached verdict are settled up front; cached
      proofs join the run as [known] invariants,
    - the rest are partitioned by {!Shard.partition} and proved in
      [jobs] forked workers, each assuming the other shards' candidates
      as step-side [hypotheses] (workers run without [cex] so their
      kills are deterministic and exact),
    - worker result pipes are drained with [Unix.select] as data
      arrives, so a slow worker never blocks collection of the others,
    - every worker heartbeats once a second on a dedicated pipe; the
      coordinator SIGKILLs a worker that goes silent
      ([PDAT_STALL_TIMEOUT_S], default 30) or outlives a finite time
      budget past a grace period, and a worker past its own hard
      deadline exits 124 on its next alarm tick,
    - a worker that crashes, stalls, or writes a garbled result is
      retried up to [retries] times (default [PDAT_RETRIES] or 2) with
      exponential backoff (base [PDAT_RETRY_BACKOFF_S], default 0.1s);
      a shard that exhausts its retries is proved serially in-process —
      {e no shard is ever silently dropped},
    - one serial mutual-induction join round over the union of shard
      survivors restores the greatest fixpoint of the whole set.

    Workers over-assume, so the survivor union is a superset of the
    serial fixpoint; the greatest fixpoint of any superset of the
    fixpoint (within the original set) is that fixpoint, hence the join
    round's result equals the serial one.

    [sieve] (default [false]) switches on the {!Sieve}: cache-missed
    candidates are partitioned into pointwise-equivalence classes, only
    the representatives are sharded and proved, and each member
    inherits its representative's verdict (fate
    [V_sieved { rep; proved }]).  Because members are exactly
    equivalent under [assume], the expanded proved set is byte-identical
    to a sieve-off run; shard fingerprints, however, are computed over
    representative sets, so journal checkpoints written with the sieve
    on only resume runs with the sieve on (the stage-level journal
    entry is unaffected either way).

    [checkpoint], when given, is called with
    ([{!shard_fingerprint} shard], proved set) each time a shard is
    settled by a worker or a fallback — the hook the run journal uses.
    [recovered] maps shard fingerprints to proved sets persisted by a
    prior run; a shard whose fingerprint matches skips its worker
    entirely (counted in [resumed_shards]) and feeds its recovered
    survivors straight to the join round, which is sound because the
    prior worker over-assumed exactly like a live one.

    Fresh verdicts are recorded in [cache] only when the run completed
    cleanly (no budget/deadline exhaustion — worker failures are fine,
    since supervision guarantees coverage); the caller is responsible
    for {!Proof_cache.flush}.  [jobs <= 1] (the default), a single
    shard, or a fully cache-resolved candidate list short-circuit to
    the serial path with no forking.

    [attributions], when given, receives one {!attribution} per input
    candidate: cache hits as [V_cached], fresh candidates with the
    verdict from the worker (or join round) that decided them tagged
    with the shard index, and a recovered shard's non-survivors as
    [V_dropped "resumed"].  Workers marshal their fates — including
    counterexamples — back through the result pipe, and their
    histogram samples (e.g. per-SAT-call latency) are merged into the
    coordinator's {!Obs} distributions either way. *)
