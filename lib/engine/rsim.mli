(** Candidate mining by constrained random simulation.

    Runs the design from reset for a number of cycles across several
    runs, 64 lanes at a time, with inputs drawn from the stimulus.
    Whatever invariant is never violated becomes a candidate for the
    proof stage: constant nets, and per-gate input implications on
    AND/NAND/OR/NOR cells (the rewiring stage knows how to exploit
    exactly those). *)

type config = {
  cycles : int;   (** cycles per run *)
  runs : int;     (** independent runs from reset *)
  seed : int;
}

val default : config

val mine :
  ?config:config ->
  ?assume:Netlist.Design.net ->
  ?deadline:float ->
  ?attribution:(Candidate.t * int) list ref ->
  Netlist.Design.t ->
  Stimulus.t ->
  Candidate.t list
(** [assume] is the environment-ok net: lanes/cycles where it is 0 are
    masked out of observation (data-dependent restrictions cannot
    always be generated constructively).  Raises [Failure] only if the
    assumption never held at all.  Candidates never mention the
    constant rails or primary inputs.

    [deadline] (absolute wall-clock time, checked each cycle) truncates
    the simulation: a shorter observation window only produces more
    false candidates for the prover to kill, never unsoundness.  If the
    deadline expires before any cycle was observed, the result is the
    empty candidate list rather than [Failure].

    [attribution], when given, is filled with one [(candidate, round)]
    pair per returned candidate: the 1-based simulation run that
    contributed the last new observation on the candidate's support
    nets — the mining round the provenance layer credits it to.  Costs
    one extra comparison per net per observed cycle; free when
    omitted. *)

type kill = {
  k_run : int;    (** 1-based run the violation occurred in *)
  k_cycle : int;  (** 1-based cycle within that run *)
  k_lane : int;   (** simulation lane that violated *)
  k_cex : Cex.t option;
      (** the violating lane's input trace from reset up to and
          including [k_cycle], replayable via {!Cex.replay} *)
}

val refine :
  ?config:config ->
  ?assume:Netlist.Design.net ->
  ?deadline:float ->
  ?kills:(Candidate.t * kill) list ref ->
  Netlist.Design.t ->
  Stimulus.t ->
  Candidate.t list ->
  Candidate.t list
(** Much cheaper per cycle than {!mine} (it only watches the candidate
    nets), so it can run an order of magnitude more cycles to weed out
    false candidates before the SAT stage — every candidate killed here
    saves a counterexample query.

    [kills], when given, receives one entry per killed candidate with
    the refuting lane extracted as a replayable {!Cex.t}.  Capturing
    records the per-cycle input words of the current run, so it costs
    one array copy per cycle; free when omitted. *)
