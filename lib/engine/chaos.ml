(* Spec parsing is deliberately re-done at each injection point: the
   chaos matrix flips PDAT_CHAOS between scenarios with [putenv], and a
   forked worker must see the value current at its own fork. *)

let specs () =
  match Sys.getenv_opt "PDAT_CHAOS" with
  | None | Some "" -> []
  | Some s ->
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun x -> x <> "")

(* One-shots are process-local: a forked worker starts with fresh
   copies, which is what makes "worker-kill" fire once per attempted
   worker rather than once per run. *)
let spent_cache_trunc = ref false
let spent_sigterm = ref false

let reset () =
  spent_cache_trunc := false;
  spent_sigterm := false

let worker_kill_requested ~idx ~attempt =
  if attempt <> 0 then `No
  else
    let legacy =
      match Sys.getenv_opt "PDAT_KILL_WORKER" with
      | Some s -> int_of_string_opt (String.trim s) = Some idx
      | None -> false
    in
    if legacy then `Exit3
    else if
      List.exists
        (fun spec ->
          spec = "worker-kill"
          || spec = Printf.sprintf "worker-kill:%d" idx)
        (specs ())
    then `Sigkill
    else `No

let worker_delay ~idx =
  match Sys.getenv_opt "PDAT_SLOW_WORKER" with
  | Some s -> (
      match String.split_on_char ':' (String.trim s) with
      | [ i; sec ] when int_of_string_opt i = Some idx -> (
          match float_of_string_opt sec with
          | Some d when d > 0. -> Unix.sleepf d
          | _ -> ())
      | _ -> ())
  | None -> ()

let cache_truncate ~path =
  if !spent_cache_trunc || not (List.mem "cache-trunc" (specs ())) then false
  else begin
    spent_cache_trunc := true;
    match Unix.stat path with
    | { Unix.st_size; _ } when st_size > 1 ->
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () -> Unix.ftruncate fd (st_size / 2));
        Obs.add_int "chaos.cache_truncations" 1;
        true
    | _ | (exception Unix.Unix_error _) -> false
  end

let stage_sigterm stage =
  if
    (not !spent_sigterm)
    && List.mem ("sigterm:" ^ stage) (specs ())
  then begin
    spent_sigterm := true;
    Obs.add_int "chaos.sigterms" 1;
    Unix.kill (Unix.getpid ()) Sys.sigterm;
    (* the default disposition kills us before returning; if a test
       installed a handler we just fall through *)
    ()
  end
