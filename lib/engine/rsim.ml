module D = Netlist.Design

type config = {
  cycles : int;
  runs : int;
  seed : int;
}

let default = { cycles = 512; runs = 4; seed = 0xC0FFEE }

(* Deadlines are checked once per simulated cycle; an expired deadline
   just truncates the observation window, which is conservative for
   both mining (more false candidates for the prover to kill) and
   refinement (fewer cheap kills). *)
let expired deadline =
  match deadline with
  | None -> false
  | Some t -> Obs.Clock.now_s () >= t

(* Per-net accumulators: bits ever seen 1 / ever seen 0.  Per-eligible-
   cell accumulators: violation masks for a->b and b->a. *)
let mine ?(config = default) ?(assume = D.net_true) ?deadline ?attribution d
    stimulus =
  let sim = Netlist.Sim64.create d in
  let n_nets = D.num_nets d in
  let seen1 = Array.make n_nets 0L in
  let seen0 = Array.make n_nets 0L in
  let eligible =
    let acc = ref [] in
    D.iter_cells d (fun ci c ->
        match c.D.kind with
        | Netlist.Cell.And2 | Netlist.Cell.Nand2 | Netlist.Cell.Or2
        | Netlist.Cell.Nor2 ->
            if c.D.ins.(0) <> c.D.ins.(1) then acc := (ci, c.D.ins.(0), c.D.ins.(1)) :: !acc
        | Netlist.Cell.Const0 | Netlist.Cell.Const1 | Netlist.Cell.Buf
        | Netlist.Cell.Inv | Netlist.Cell.Xor2 | Netlist.Cell.Xnor2
        | Netlist.Cell.And3 | Netlist.Cell.Or3 | Netlist.Cell.Nand3
        | Netlist.Cell.Nor3 | Netlist.Cell.And4 | Netlist.Cell.Or4
        | Netlist.Cell.Mux2 | Netlist.Cell.Aoi21 | Netlist.Cell.Oai21
        | Netlist.Cell.Dff ->
            ());
    Array.of_list !acc
  in
  let viol_ab = Array.make (Array.length eligible) 0L in
  let viol_ba = Array.make (Array.length eligible) 0L in
  let rng = Random.State.make [| config.seed |] in
  let inputs = D.inputs d in
  let random_word () =
    Int64.logor
      (Int64.of_int (Random.State.bits rng))
      (Int64.logor
         (Int64.shift_left (Int64.of_int (Random.State.bits rng)) 30)
         (Int64.shift_left (Int64.of_int (Random.State.bits rng)) 60))
  in
  (* Lanes where the environment assumption does not hold are masked
     out of observation: they neither create nor kill candidates.
     (They may still steer the state; that only widens behaviour, which
     is conservative for candidate mining.) *)
  let observed_lanes = ref 0 in
  (* Attribution (optional, for provenance): the run in which each
     net's observed-value set last grew.  A surviving candidate is
     attributed to the latest such run over its support nets — the
     round that contributed its final piece of evidence. *)
  let attributing = attribution <> None in
  let net_round = Array.make (if attributing then n_nets else 0) 0 in
  let observe run mask =
    if mask <> 0L then begin
      for n = 0 to n_nets - 1 do
        let v = Netlist.Sim64.read sim n in
        let s1 = Int64.logor seen1.(n) (Int64.logand v mask) in
        let s0 = Int64.logor seen0.(n) (Int64.logand (Int64.lognot v) mask) in
        if attributing && (s1 <> seen1.(n) || s0 <> seen0.(n)) then
          net_round.(n) <- run;
        seen1.(n) <- s1;
        seen0.(n) <- s0
      done;
      Array.iteri
        (fun i (_, a, b) ->
          let va = Netlist.Sim64.read sim a and vb = Netlist.Sim64.read sim b in
          viol_ab.(i) <-
            Int64.logor viol_ab.(i)
              (Int64.logand mask (Int64.logand va (Int64.lognot vb)));
          viol_ba.(i) <-
            Int64.logor viol_ba.(i)
              (Int64.logand mask (Int64.logand vb (Int64.lognot va))))
        eligible;
      incr observed_lanes
    end
  in
  let simulated = ref 0 in
  (try
     for run = 1 to config.runs do
       Netlist.Sim64.reset sim;
       for _cycle = 1 to config.cycles do
         if expired deadline then raise Exit;
         let driven = stimulus.Stimulus.drive rng in
         let driven_nets = List.map fst driven in
         List.iter
           (fun (_, n) ->
             if not (List.mem n driven_nets) then Netlist.Sim64.set_input sim n (random_word ()))
           inputs;
         List.iter (fun (n, v) -> Netlist.Sim64.set_input sim n v) driven;
         Netlist.Sim64.eval sim;
         observe run (Netlist.Sim64.read sim assume);
         Netlist.Sim64.step sim;
         incr simulated
       done
     done
   with Exit -> ());
  Obs.add_int "rsim.cycles" !simulated;
  if !observed_lanes = 0 then
    if expired deadline then
      (* out of time before observing anything: no candidates is the
         graceful-degradation answer, not a crash *)
      []
    else
      failwith "Rsim.mine: the environment assumption never held in simulation"
  else begin
  (* Primary inputs and rails are not rewiring targets. *)
  let is_input = Array.make n_nets false in
  List.iter (fun (_, n) -> is_input.(n) <- true) inputs;
  let consts = ref [] in
  for n = n_nets - 1 downto 2 do
    if not is_input.(n) then
      if seen1.(n) = 0L then consts := Candidate.Const (n, false) :: !consts
      else if seen0.(n) = 0L then consts := Candidate.Const (n, true) :: !consts
  done;
  let implications = ref [] in
  Array.iteri
    (fun i (cell, a, b) ->
      (* skip implications already subsumed by a constant candidate *)
      let a_const = seen1.(a) = 0L || seen0.(a) = 0L in
      let b_const = seen1.(b) = 0L || seen0.(b) = 0L in
      if not (a_const || b_const) then begin
        if viol_ab.(i) = 0L then
          implications := Candidate.Implies { cell; a; b } :: !implications;
        if viol_ba.(i) = 0L then
          implications := Candidate.Implies { cell; a = b; b = a } :: !implications
      end)
    eligible;
    let result = !consts @ !implications in
    (match attribution with
    | None -> ()
    | Some r ->
        let round_of = function
          | Candidate.Const (n, _) -> net_round.(n)
          | Candidate.Implies { a; b; _ } -> max net_round.(a) net_round.(b)
        in
        r := List.map (fun c -> (c, round_of c)) result);
    result
  end

type kill = {
  k_run : int;
  k_cycle : int;
  k_lane : int;
  k_cex : Cex.t option;
}

let lane_of_mask m =
  let rec go m i =
    if Int64.logand m 1L <> 0L then i
    else go (Int64.shift_right_logical m 1) (i + 1)
  in
  go m 0

let refine ?(config = default) ?(assume = D.net_true) ?deadline ?kills d
    stimulus cands =
  let sim = Netlist.Sim64.create d in
  let rng = Random.State.make [| config.seed lxor 0x5EED |] in
  let inputs = D.inputs d in
  let cands = Array.of_list cands in
  let alive = Array.make (Array.length cands) true in
  let random_word () =
    Int64.logor
      (Int64.of_int (Random.State.bits rng))
      (Int64.logor
         (Int64.shift_left (Int64.of_int (Random.State.bits rng)) 30)
         (Int64.shift_left (Int64.of_int (Random.State.bits rng)) 60))
  in
  (* Kill attribution (optional): keep the current run's input history
     (one word per input per cycle) so a kill can be converted into a
     single-lane replayable trace from reset — the refuting assignment,
     captured where it was found. *)
  let capturing = kills <> None in
  let inputs_arr = Array.of_list (List.map snd inputs) in
  let history = ref [] (* newest cycle first *) in
  let cex_of_lane lane =
    let frames =
      List.rev_map
        (fun words ->
          Array.map
            (fun w ->
              Int64.logand (Int64.shift_right_logical w lane) 1L <> 0L)
            words)
        !history
    in
    { Cex.inputs = inputs_arr; frames = Array.of_list frames }
  in
  let killed = ref [] in
  let simulated = ref 0 in
  (try
  for run = 1 to config.runs do
    Netlist.Sim64.reset sim;
    history := [];
    for cycle = 1 to config.cycles do
      if expired deadline then raise Exit;
      incr simulated;
      let driven = stimulus.Stimulus.drive rng in
      let driven_nets = List.map fst driven in
      List.iter
        (fun (_, n) ->
          if not (List.mem n driven_nets) then
            Netlist.Sim64.set_input sim n (random_word ()))
        inputs;
      List.iter (fun (n, v) -> Netlist.Sim64.set_input sim n v) driven;
      Netlist.Sim64.eval sim;
      if capturing then
        history :=
          Array.map (fun n -> Netlist.Sim64.read sim n) inputs_arr :: !history;
      let mask = Netlist.Sim64.read sim assume in
      if mask <> 0L then
        Array.iteri
          (fun i cand ->
            if alive.(i) then
              let viol =
                match cand with
                | Candidate.Const (n, true) ->
                    Int64.logand mask (Int64.lognot (Netlist.Sim64.read sim n))
                | Candidate.Const (n, false) ->
                    Int64.logand mask (Netlist.Sim64.read sim n)
                | Candidate.Implies { a; b; _ } ->
                    Int64.logand mask
                      (Int64.logand (Netlist.Sim64.read sim a)
                         (Int64.lognot (Netlist.Sim64.read sim b)))
              in
              if viol <> 0L then begin
                alive.(i) <- false;
                if capturing then begin
                  let lane = lane_of_mask viol in
                  killed :=
                    ( cand,
                      {
                        k_run = run;
                        k_cycle = cycle;
                        k_lane = lane;
                        k_cex = Some (cex_of_lane lane);
                      } )
                    :: !killed
                end
              end)
          cands;
      Netlist.Sim64.step sim
    done
  done
  with Exit -> ());
  (match kills with None -> () | Some r -> r := List.rev !killed);
  Obs.add_int "rsim.cycles" !simulated;
  let out = ref [] in
  for i = Array.length cands - 1 downto 0 do
    if alive.(i) then out := cands.(i) :: !out
  done;
  !out
