module D = Netlist.Design

type config = {
  cycles : int;
  runs : int;
  seed : int;
}

let default = { cycles = 512; runs = 4; seed = 0xC0FFEE }

(* Deadlines are checked once per simulated cycle; an expired deadline
   just truncates the observation window, which is conservative for
   both mining (more false candidates for the prover to kill) and
   refinement (fewer cheap kills). *)
let expired deadline =
  match deadline with
  | None -> false
  | Some t -> Obs.Clock.now_s () >= t

(* Per-net accumulators: bits ever seen 1 / ever seen 0.  Per-eligible-
   cell accumulators: violation masks for a->b and b->a. *)
let mine ?(config = default) ?(assume = D.net_true) ?deadline d stimulus =
  let sim = Netlist.Sim64.create d in
  let n_nets = D.num_nets d in
  let seen1 = Array.make n_nets 0L in
  let seen0 = Array.make n_nets 0L in
  let eligible =
    let acc = ref [] in
    D.iter_cells d (fun ci c ->
        match c.D.kind with
        | Netlist.Cell.And2 | Netlist.Cell.Nand2 | Netlist.Cell.Or2
        | Netlist.Cell.Nor2 ->
            if c.D.ins.(0) <> c.D.ins.(1) then acc := (ci, c.D.ins.(0), c.D.ins.(1)) :: !acc
        | Netlist.Cell.Const0 | Netlist.Cell.Const1 | Netlist.Cell.Buf
        | Netlist.Cell.Inv | Netlist.Cell.Xor2 | Netlist.Cell.Xnor2
        | Netlist.Cell.And3 | Netlist.Cell.Or3 | Netlist.Cell.Nand3
        | Netlist.Cell.Nor3 | Netlist.Cell.And4 | Netlist.Cell.Or4
        | Netlist.Cell.Mux2 | Netlist.Cell.Aoi21 | Netlist.Cell.Oai21
        | Netlist.Cell.Dff ->
            ());
    Array.of_list !acc
  in
  let viol_ab = Array.make (Array.length eligible) 0L in
  let viol_ba = Array.make (Array.length eligible) 0L in
  let rng = Random.State.make [| config.seed |] in
  let inputs = D.inputs d in
  let random_word () =
    Int64.logor
      (Int64.of_int (Random.State.bits rng))
      (Int64.logor
         (Int64.shift_left (Int64.of_int (Random.State.bits rng)) 30)
         (Int64.shift_left (Int64.of_int (Random.State.bits rng)) 60))
  in
  (* Lanes where the environment assumption does not hold are masked
     out of observation: they neither create nor kill candidates.
     (They may still steer the state; that only widens behaviour, which
     is conservative for candidate mining.) *)
  let observed_lanes = ref 0 in
  let observe mask =
    if mask <> 0L then begin
      for n = 0 to n_nets - 1 do
        let v = Netlist.Sim64.read sim n in
        seen1.(n) <- Int64.logor seen1.(n) (Int64.logand v mask);
        seen0.(n) <- Int64.logor seen0.(n) (Int64.logand (Int64.lognot v) mask)
      done;
      Array.iteri
        (fun i (_, a, b) ->
          let va = Netlist.Sim64.read sim a and vb = Netlist.Sim64.read sim b in
          viol_ab.(i) <-
            Int64.logor viol_ab.(i)
              (Int64.logand mask (Int64.logand va (Int64.lognot vb)));
          viol_ba.(i) <-
            Int64.logor viol_ba.(i)
              (Int64.logand mask (Int64.logand vb (Int64.lognot va))))
        eligible;
      incr observed_lanes
    end
  in
  let simulated = ref 0 in
  (try
     for _run = 1 to config.runs do
       Netlist.Sim64.reset sim;
       for _cycle = 1 to config.cycles do
         if expired deadline then raise Exit;
         let driven = stimulus.Stimulus.drive rng in
         let driven_nets = List.map fst driven in
         List.iter
           (fun (_, n) ->
             if not (List.mem n driven_nets) then Netlist.Sim64.set_input sim n (random_word ()))
           inputs;
         List.iter (fun (n, v) -> Netlist.Sim64.set_input sim n v) driven;
         Netlist.Sim64.eval sim;
         observe (Netlist.Sim64.read sim assume);
         Netlist.Sim64.step sim;
         incr simulated
       done
     done
   with Exit -> ());
  Obs.add_int "rsim.cycles" !simulated;
  if !observed_lanes = 0 then
    if expired deadline then
      (* out of time before observing anything: no candidates is the
         graceful-degradation answer, not a crash *)
      []
    else
      failwith "Rsim.mine: the environment assumption never held in simulation"
  else begin
  (* Primary inputs and rails are not rewiring targets. *)
  let is_input = Array.make n_nets false in
  List.iter (fun (_, n) -> is_input.(n) <- true) inputs;
  let consts = ref [] in
  for n = n_nets - 1 downto 2 do
    if not is_input.(n) then
      if seen1.(n) = 0L then consts := Candidate.Const (n, false) :: !consts
      else if seen0.(n) = 0L then consts := Candidate.Const (n, true) :: !consts
  done;
  let implications = ref [] in
  Array.iteri
    (fun i (cell, a, b) ->
      (* skip implications already subsumed by a constant candidate *)
      let a_const = seen1.(a) = 0L || seen0.(a) = 0L in
      let b_const = seen1.(b) = 0L || seen0.(b) = 0L in
      if not (a_const || b_const) then begin
        if viol_ab.(i) = 0L then
          implications := Candidate.Implies { cell; a; b } :: !implications;
        if viol_ba.(i) = 0L then
          implications := Candidate.Implies { cell; a = b; b = a } :: !implications
      end)
    eligible;
    !consts @ !implications
  end

let refine ?(config = default) ?(assume = D.net_true) ?deadline d stimulus cands =
  let sim = Netlist.Sim64.create d in
  let rng = Random.State.make [| config.seed lxor 0x5EED |] in
  let inputs = D.inputs d in
  let cands = Array.of_list cands in
  let alive = Array.make (Array.length cands) true in
  let random_word () =
    Int64.logor
      (Int64.of_int (Random.State.bits rng))
      (Int64.logor
         (Int64.shift_left (Int64.of_int (Random.State.bits rng)) 30)
         (Int64.shift_left (Int64.of_int (Random.State.bits rng)) 60))
  in
  let simulated = ref 0 in
  (try
  for _run = 1 to config.runs do
    Netlist.Sim64.reset sim;
    for _cycle = 1 to config.cycles do
      if expired deadline then raise Exit;
      incr simulated;
      let driven = stimulus.Stimulus.drive rng in
      let driven_nets = List.map fst driven in
      List.iter
        (fun (_, n) ->
          if not (List.mem n driven_nets) then
            Netlist.Sim64.set_input sim n (random_word ()))
        inputs;
      List.iter (fun (n, v) -> Netlist.Sim64.set_input sim n v) driven;
      Netlist.Sim64.eval sim;
      let mask = Netlist.Sim64.read sim assume in
      if mask <> 0L then
        Array.iteri
          (fun i cand ->
            if alive.(i) then
              let viol =
                match cand with
                | Candidate.Const (n, true) ->
                    Int64.logand mask (Int64.lognot (Netlist.Sim64.read sim n))
                | Candidate.Const (n, false) ->
                    Int64.logand mask (Netlist.Sim64.read sim n)
                | Candidate.Implies { a; b; _ } ->
                    Int64.logand mask
                      (Int64.logand (Netlist.Sim64.read sim a)
                         (Int64.lognot (Netlist.Sim64.read sim b)))
              in
              if viol <> 0L then alive.(i) <- false)
          cands;
      Netlist.Sim64.step sim
    done
  done
  with Exit -> ());
  Obs.add_int "rsim.cycles" !simulated;
  let out = ref [] in
  for i = Array.length cands - 1 downto 0 do
    if alive.(i) then out := cands.(i) :: !out
  done;
  !out
