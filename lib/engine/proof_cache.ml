module D = Netlist.Design

type verdict = Proved | Disproved

type scope = string (* hex digest of (design, assume) *)

type scope_state = {
  entries : (string, verdict) Hashtbl.t;
  mutable dirty : bool;
}

type stats = {
  hits : int;
  misses : int;
  stored : int;
  corrupt_files : int;
}

type t = {
  dir : string option;
  scopes : (scope, scope_state) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable stored : int;
  mutable corrupt : int;
}

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?dir () =
  Option.iter mkdir_p dir;
  {
    dir;
    scopes = Hashtbl.create 8;
    hits = 0;
    misses = 0;
    stored = 0;
    corrupt = 0;
  }

let dir t = t.dir

let stats t =
  { hits = t.hits; misses = t.misses; stored = t.stored;
    corrupt_files = t.corrupt }

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0;
  t.stored <- 0;
  t.corrupt <- 0

(* ---------------- content addressing -------------------------------- *)

let scope_digest design ~assume =
  let b = Buffer.create 4096 in
  Buffer.add_string b "pdat-scope-v1\n";
  Buffer.add_string b (string_of_int assume);
  Buffer.add_char b '\n';
  D.iter_cells design (fun _ c ->
      Buffer.add_string b (Netlist.Cell.name c.D.kind);
      Array.iter
        (fun i ->
          Buffer.add_char b ' ';
          Buffer.add_string b (string_of_int i))
        c.D.ins;
      Buffer.add_char b '>';
      Buffer.add_string b (string_of_int c.D.out);
      if c.D.init then Buffer.add_char b '!';
      Buffer.add_char b '\n');
  List.iter
    (fun (nm, net) ->
      Buffer.add_string b "i ";
      Buffer.add_string b nm;
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int net);
      Buffer.add_char b '\n')
    (D.inputs design);
  List.iter
    (fun (nm, net) ->
      Buffer.add_string b "o ";
      Buffer.add_string b nm;
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int net);
      Buffer.add_char b '\n')
    (D.outputs design);
  Digest.to_hex (Digest.string (Buffer.contents b))

let candidate_key = function
  | Candidate.Const (n, b) -> Printf.sprintf "C%d:%d" n (Bool.to_int b)
  | Candidate.Implies { cell; a; b } -> Printf.sprintf "I%d:%d>%d" cell a b

(* ---------------- disk format --------------------------------------- *)

let header = "pdat-proof-cache v1"

let file_of t sc =
  Option.map (fun d -> Filename.concat d (sc ^ ".pdatcache")) t.dir

exception Damaged

let load_file path sc =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let entries = Hashtbl.create 256 in
      (match input_line ic with
      | l when l = header ^ " " ^ sc -> ()
      | _ -> raise Damaged
      | exception End_of_file -> raise Damaged);
      let finished = ref false in
      (try
         while not !finished do
           let line = input_line ic in
           match String.split_on_char ' ' line with
           | [ "P"; key ] -> Hashtbl.replace entries key Proved
           | [ "D"; key ] -> Hashtbl.replace entries key Disproved
           | [ "end"; n ] ->
               if int_of_string_opt n <> Some (Hashtbl.length entries) then
                 raise Damaged;
               finished := true
           | _ -> raise Damaged
         done
       with End_of_file -> raise Damaged);
      (* anything after the trailer is damage too *)
      (match input_line ic with
      | _ -> raise Damaged
      | exception End_of_file -> ());
      entries)

let scope_state t sc =
  match Hashtbl.find_opt t.scopes sc with
  | Some st -> st
  | None ->
      let entries =
        match file_of t sc with
        | Some path when Sys.file_exists path -> (
            try load_file path sc
            with _ ->
              t.corrupt <- t.corrupt + 1;
              Obs.add_int "cache.corrupt_files" 1;
              Hashtbl.create 16)
        | Some _ | None -> Hashtbl.create 16
      in
      let st = { entries; dirty = false } in
      Hashtbl.replace t.scopes sc st;
      st

let scope t ~design ~assume =
  let sc = scope_digest design ~assume in
  ignore (scope_state t sc);
  sc

let find t sc cand =
  let st = scope_state t sc in
  match Hashtbl.find_opt st.entries (candidate_key cand) with
  | Some v ->
      t.hits <- t.hits + 1;
      Obs.add_int "cache.hits" 1;
      Some v
  | None ->
      t.misses <- t.misses + 1;
      Obs.add_int "cache.misses" 1;
      None

let record t sc cand verdict =
  let st = scope_state t sc in
  let key = candidate_key cand in
  if Hashtbl.find_opt st.entries key <> Some verdict then begin
    Hashtbl.replace st.entries key verdict;
    st.dirty <- true;
    t.stored <- t.stored + 1;
    Obs.add_int "cache.stored" 1
  end

let flush t =
  match t.dir with
  | None -> ()
  | Some _ ->
      Hashtbl.iter
        (fun sc st ->
          if st.dirty then begin
            let path = Option.get (file_of t sc) in
            let tmp = path ^ ".tmp" in
            let oc = open_out tmp in
            Printf.fprintf oc "%s %s\n" header sc;
            Hashtbl.iter
              (fun key v ->
                Printf.fprintf oc "%s %s\n"
                  (match v with Proved -> "P" | Disproved -> "D")
                  key)
              st.entries;
            Printf.fprintf oc "end %d\n" (Hashtbl.length st.entries);
            close_out oc;
            Sys.rename tmp path;
            st.dirty <- false
          end)
        t.scopes
