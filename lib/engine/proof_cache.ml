module D = Netlist.Design

type verdict = Proved | Disproved

type scope = string (* hex digest of (design, assume) *)

type scope_state = {
  entries : (string, verdict) Hashtbl.t;
  mutable dirty : bool;
}

type stats = {
  hits : int;
  misses : int;
  stored : int;
  corrupt_files : int;
  salvaged_entries : int;
  evicted_files : int;
}

type t = {
  dir : string option;
  max_bytes : int option;
  scopes : (scope, scope_state) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable stored : int;
  mutable corrupt : int;
  mutable salvaged : int;
  mutable evicted : int;
}

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ---------------- single-writer discipline --------------------------- *)

(* Every mutation of the cache directory — flush, eviction, stale-tmp
   cleanup, quarantine moves — happens under an exclusive lock on
   [<dir>/.lock], so two processes sharing a cache directory serialize
   their writes instead of clobbering each other's tmp files.  Readers
   never take the lock: a reader sees either the old or the new file of
   an atomic rename, and per-entry CRCs catch anything torn below the
   rename. *)
let with_dir_lock dir f =
  let lock_path = Filename.concat dir ".lock" in
  let fd = Unix.openfile lock_path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.lockf fd Unix.F_LOCK 0;
      Fun.protect ~finally:(fun () -> Unix.lockf fd Unix.F_ULOCK 0) f)

let is_tmp name = Filename.check_suffix name ".tmp"

(* A tmp file can only exist mid-flush, and flushes are serialized by
   the directory lock — so under the lock, any tmp file is an orphan of
   a crashed writer and safe to delete. *)
let sweep_stale_tmps dir =
  Array.iter
    (fun name ->
      if is_tmp name then
        try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||])

let create ?dir ?max_bytes () =
  Option.iter
    (fun d ->
      mkdir_p d;
      with_dir_lock d (fun () -> sweep_stale_tmps d))
    dir;
  {
    dir;
    max_bytes;
    scopes = Hashtbl.create 8;
    hits = 0;
    misses = 0;
    stored = 0;
    corrupt = 0;
    salvaged = 0;
    evicted = 0;
  }

let dir t = t.dir

let stats t =
  { hits = t.hits; misses = t.misses; stored = t.stored;
    corrupt_files = t.corrupt; salvaged_entries = t.salvaged;
    evicted_files = t.evicted }

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0;
  t.stored <- 0;
  t.corrupt <- 0;
  t.salvaged <- 0;
  t.evicted <- 0

(* ---------------- content addressing -------------------------------- *)

let scope_digest ?salt design ~assume =
  let b = Buffer.create 4096 in
  Buffer.add_string b "pdat-scope-v1\n";
  (match salt with
  | None -> ()
  | Some s ->
      Buffer.add_string b "salt ";
      Buffer.add_string b s;
      Buffer.add_char b '\n');
  Buffer.add_string b (string_of_int assume);
  Buffer.add_char b '\n';
  D.iter_cells design (fun _ c ->
      Buffer.add_string b (Netlist.Cell.name c.D.kind);
      Array.iter
        (fun i ->
          Buffer.add_char b ' ';
          Buffer.add_string b (string_of_int i))
        c.D.ins;
      Buffer.add_char b '>';
      Buffer.add_string b (string_of_int c.D.out);
      if c.D.init then Buffer.add_char b '!';
      Buffer.add_char b '\n');
  List.iter
    (fun (nm, net) ->
      Buffer.add_string b "i ";
      Buffer.add_string b nm;
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int net);
      Buffer.add_char b '\n')
    (D.inputs design);
  List.iter
    (fun (nm, net) ->
      Buffer.add_string b "o ";
      Buffer.add_string b nm;
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int net);
      Buffer.add_char b '\n')
    (D.outputs design);
  Digest.to_hex (Digest.string (Buffer.contents b))

let candidate_key = Candidate.key

(* ---------------- disk format --------------------------------------- *)

(* v2: every entry line carries its own CRC-32, so a torn write is
   localized — the valid prefix is salvaged, the damage quarantined.

     pdat-proof-cache v2 <scope>
     P <key> <crc32-of-"P <key>">
     D <key> <crc32>
     end <count>
*)
let header = "pdat-proof-cache v2"

let file_of t sc =
  Option.map (fun d -> Filename.concat d (sc ^ ".pdatcache")) t.dir

let entry_body verdict key =
  (match verdict with Proved -> "P " | Disproved -> "D ") ^ key

let entry_line verdict key =
  let body = entry_body verdict key in
  body ^ " " ^ Checksum.crc32_hex body

(* Parse one entry line; [None] for anything that is not a CRC-valid
   entry. *)
let parse_entry line =
  match String.rindex_opt line ' ' with
  | None -> None
  | Some i ->
      let body = String.sub line 0 i in
      let crc = String.sub line (i + 1) (String.length line - i - 1) in
      if not (Checksum.check_hex body ~crc) then None
      else
        let verdict_of = function "P" -> Some Proved | "D" -> Some Disproved | _ -> None in
        (match String.index_opt body ' ' with
        | Some j when j > 0 -> (
            match verdict_of (String.sub body 0 j) with
            | Some v ->
                Some (String.sub body (j + 1) (String.length body - j - 1), v)
            | None -> None)
        | _ -> None)

type load_result = {
  l_entries : (string, verdict) Hashtbl.t;
  l_damaged : bool;   (* anything unreadable: header, an entry, the trailer *)
  l_salvaged : int;   (* CRC-valid entries recovered from a damaged file *)
}

(* Reads greedily up to the first damage: a crash-truncated file yields
   every entry that made it to disk intact.  Entries after a damaged
   line are dropped (conservative: we cannot tell a torn tail from an
   interleaved write). *)
let load_file path sc =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let entries = Hashtbl.create 256 in
      let damaged = ref false in
      (match input_line ic with
      | l when l = header ^ " " ^ sc -> (
          let finished = ref false in
          try
            while not !finished && not !damaged do
              let line = input_line ic in
              match parse_entry line with
              | Some (key, v) -> Hashtbl.replace entries key v
              | None -> (
                  match String.split_on_char ' ' line with
                  | [ "end"; n ]
                    when int_of_string_opt n = Some (Hashtbl.length entries) ->
                      finished := true;
                      (* anything after the trailer is damage too *)
                      (match input_line ic with
                      | _ -> damaged := true
                      | exception End_of_file -> ())
                  | _ -> damaged := true)
            done
          with End_of_file -> damaged := true (* missing trailer *))
      | _ -> damaged := true
      | exception End_of_file -> damaged := true);
      {
        l_entries = entries;
        l_damaged = !damaged;
        l_salvaged = (if !damaged then Hashtbl.length entries else 0);
      })

(* Damaged files are preserved for diagnosis, not silently overwritten:
   they move (under the directory lock) into [<dir>/quarantine/] with a
   unique suffix. *)
let quarantine_seq = ref 0

let quarantine t path =
  match t.dir with
  | None -> ()
  | Some d -> (
      let qdir = Filename.concat d "quarantine" in
      incr quarantine_seq;
      let dest =
        Filename.concat qdir
          (Printf.sprintf "%s.%d.%d.corrupt" (Filename.basename path)
             (Unix.getpid ()) !quarantine_seq)
      in
      try
        with_dir_lock d (fun () ->
            mkdir_p qdir;
            Sys.rename path dest)
      with Sys_error _ | Unix.Unix_error _ -> ())

let scope_state t sc =
  match Hashtbl.find_opt t.scopes sc with
  | Some st -> st
  | None ->
      let st =
        match file_of t sc with
        | Some path when Sys.file_exists path -> (
            match load_file path sc with
            | { l_damaged = false; l_entries; _ } ->
                { entries = l_entries; dirty = false }
            | { l_damaged = true; l_entries; l_salvaged } ->
                t.corrupt <- t.corrupt + 1;
                t.salvaged <- t.salvaged + l_salvaged;
                Obs.add_int "cache.corrupt_files" 1;
                Obs.add_int "cache.salvaged_entries" l_salvaged;
                quarantine t path;
                (* dirty: the next flush rewrites a clean file from the
                   salvaged entries *)
                { entries = l_entries; dirty = Hashtbl.length l_entries > 0 }
            | exception Sys_error _ ->
                t.corrupt <- t.corrupt + 1;
                Obs.add_int "cache.corrupt_files" 1;
                { entries = Hashtbl.create 16; dirty = false })
        | Some _ | None -> { entries = Hashtbl.create 16; dirty = false }
      in
      Hashtbl.replace t.scopes sc st;
      st

let scope ?salt t ~design ~assume =
  let sc = scope_digest ?salt design ~assume in
  ignore (scope_state t sc);
  sc

let find t sc cand =
  let st = scope_state t sc in
  match Hashtbl.find_opt st.entries (candidate_key cand) with
  | Some v ->
      t.hits <- t.hits + 1;
      Obs.add_int "cache.hits" 1;
      Some v
  | None ->
      t.misses <- t.misses + 1;
      Obs.add_int "cache.misses" 1;
      None

let record t sc cand verdict =
  let st = scope_state t sc in
  let key = candidate_key cand in
  if Hashtbl.find_opt st.entries key <> Some verdict then begin
    Hashtbl.replace st.entries key verdict;
    st.dirty <- true;
    t.stored <- t.stored + 1;
    Obs.add_int "cache.stored" 1
  end

(* Oldest-mtime scope files go first; the quarantine subdirectory and
   the lock file never count against the budget. *)
let evict t dir limit =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun name ->
           if not (Filename.check_suffix name ".pdatcache") then None
           else
             let path = Filename.concat dir name in
             match Unix.stat path with
             | { Unix.st_size; st_mtime; _ } -> Some (path, st_size, st_mtime)
             | exception Unix.Unix_error _ -> None)
  in
  let total = List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 files in
  if total > limit then begin
    let by_age =
      List.sort (fun (_, _, a) (_, _, b) -> compare a b) files
    in
    let excess = ref (total - limit) in
    List.iter
      (fun (path, sz, _) ->
        if !excess > 0 then begin
          (try
             Sys.remove path;
             excess := !excess - sz;
             t.evicted <- t.evicted + 1;
             Obs.add_int "cache.evicted_files" 1
           with Sys_error _ -> ());
          (* the in-memory scope survives; drop nothing there *)
          ()
        end)
      by_age
  end

let flush t =
  match t.dir with
  | None -> ()
  | Some d ->
      with_dir_lock d (fun () ->
          Hashtbl.iter
            (fun sc st ->
              if st.dirty then begin
                let path = Option.get (file_of t sc) in
                (* pid-unique tmp name: concurrent writers (serialized
                   by the lock, but also any process that bypasses it)
                   never build in each other's tmp file *)
                let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
                let oc = open_out tmp in
                Printf.fprintf oc "%s %s\n" header sc;
                Hashtbl.iter
                  (fun key v -> output_string oc (entry_line v key ^ "\n"))
                  st.entries;
                Printf.fprintf oc "end %d\n" (Hashtbl.length st.entries);
                close_out oc;
                Sys.rename tmp path;
                ignore (Chaos.cache_truncate ~path);
                st.dirty <- false
              end)
            t.scopes;
          Option.iter (evict t d) t.max_bytes)
