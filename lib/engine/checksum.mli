(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial) for cheap integrity
    checks on journal lines and proof-cache entries.  Not a defense
    against an adversary — it catches torn writes, truncation and
    bit rot, which is exactly what crash-safety needs. *)

val crc32 : string -> int32
(** CRC of the whole string. *)

val crc32_hex : string -> string
(** {!crc32} rendered as 8 lowercase hex digits — the on-disk form. *)

val check_hex : string -> crc:string -> bool
(** [check_hex s ~crc] is true iff [crc] equals [crc32_hex s]
    (case-insensitive).  Malformed [crc] strings are simply false. *)
