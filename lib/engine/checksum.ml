(* Table-driven CRC-32, reflected form, polynomial 0xEDB88320. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor t.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let crc32_hex s = Printf.sprintf "%08lx" (crc32 s)

let check_hex s ~crc =
  String.length crc = 8
  && String.lowercase_ascii crc = crc32_hex s
