module D = Netlist.Design
module C = Netlist.Cell

type word_fact = {
  w_base : string;
  w_width : int;
  w_known_mask : int64;
  w_known_value : int64;
  w_lo : int64;
  w_hi : int64;
}

type t = {
  design : D.t;
  sched : Netlist.Topo.schedule;
  values : int array;  (* post-fixpoint values conditioned on assume *)
  assume : D.net;
  iterations : int;
  contradiction : bool;
  is_input : bool array;
  digest : string;
}

exception Contradiction

let meet a b =
  if a = Ternary.x then b
  else if b = Ternary.x then a
  else if a = b then a
  else raise Contradiction

(* Backward transfer for one cell: the output is required to be
   [v_out]; enumerate every completion of the unknown inputs (at most
   2^4) and force any input on which all surviving completions agree.
   Treating the inputs as independent coordinates over-approximates
   the satisfying set when one net feeds two pins, which only loses
   precision, never soundness. *)
let backward_cell kind v_out ins_vals =
  let n = Array.length ins_vals in
  let unknown = ref [] in
  for i = n - 1 downto 0 do
    if ins_vals.(i) = Ternary.x then unknown := i :: !unknown
  done;
  match !unknown with
  | [] ->
      if Ternary.eval_cell kind ins_vals <> v_out then raise Contradiction;
      ins_vals
  | us ->
      let unknown = Array.of_list us in
      let k = Array.length unknown in
      let seen0 = Array.make k false and seen1 = Array.make k false in
      let any = ref false in
      let trial = Array.copy ins_vals in
      for m = 0 to (1 lsl k) - 1 do
        for j = 0 to k - 1 do
          trial.(unknown.(j)) <- (m lsr j) land 1
        done;
        if Ternary.eval_cell kind trial = v_out then begin
          any := true;
          for j = 0 to k - 1 do
            if (m lsr j) land 1 = 1 then seen1.(j) <- true
            else seen0.(j) <- true
          done
        end
      done;
      if not !any then raise Contradiction;
      let out = Array.copy ins_vals in
      for j = 0 to k - 1 do
        if not (seen0.(j) && seen1.(j)) then
          out.(unknown.(j)) <- (if seen1.(j) then 1 else 0)
      done;
      out

(* Refine [v] in place under equality constraints, alternating a
   backward (reverse-topological) and a forward (meet with re-
   evaluation) sweep until nothing changes.  Each sweep only moves
   values down the x -> {0,1} lattice, so termination is by net count;
   the pass bound is just a safety valve.
   @raise Contradiction when the constraint set is unsatisfiable in
   the cube. *)
let condition d sched (v : int array) constraints =
  List.iter
    (fun (n, b) -> v.(n) <- meet v.(n) (Bool.to_int b))
    constraints;
  let order = sched.Netlist.Topo.order in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes < 8 do
    changed := false;
    incr passes;
    for i = Array.length order - 1 downto 0 do
      let c = D.cell d order.(i) in
      if v.(c.D.out) <> Ternary.x then begin
        let ins_vals = Array.map (fun n -> v.(n)) c.D.ins in
        let refined = backward_cell c.D.kind v.(c.D.out) ins_vals in
        Array.iteri
          (fun j n ->
            let m = meet v.(n) refined.(j) in
            if m <> v.(n) then begin
              v.(n) <- m;
              changed := true
            end)
          c.D.ins
      end
    done;
    Array.iter
      (fun ci ->
        let c = D.cell d ci in
        let out' =
          Ternary.eval_cell c.D.kind (Array.map (fun n -> v.(n)) c.D.ins)
        in
        let m = meet v.(c.D.out) out' in
        if m <> v.(c.D.out) then begin
          v.(c.D.out) <- m;
          changed := true
        end)
      order
  done

let run ?(classify = fun _ -> Ternary.Free) ?max_iterations ~assume d =
  let sched = Netlist.Topo.schedule d in
  let n_nets = D.num_nets d in
  let flops = sched.Netlist.Topo.flops in
  let is_input = Array.make n_nets false in
  List.iter (fun (_, n) -> is_input.(n) <- true) (D.inputs d);
  (* register-state lattice, seeded from the reset values *)
  let state = Array.make n_nets Ternary.x in
  Array.iter
    (fun ci ->
      let c = D.cell d ci in
      state.(c.D.out) <- Bool.to_int c.D.init)
    flops;
  let eval_from_state () =
    let v = Array.make n_nets Ternary.x in
    v.(D.net_false) <- 0;
    v.(D.net_true) <- 1;
    List.iter
      (fun (_, n) ->
        v.(n) <-
          (match classify n with
          | Ternary.Zero -> 0
          | Ternary.One -> 1
          | Ternary.Free -> Ternary.x))
      (D.inputs d);
    Array.iter
      (fun ci ->
        let c = D.cell d ci in
        v.(c.D.out) <- state.(c.D.out))
      flops;
    Array.iter
      (fun ci ->
        let c = D.cell d ci in
        v.(c.D.out) <-
          Ternary.eval_cell c.D.kind (Array.map (fun n -> v.(n)) c.D.ins))
      sched.Netlist.Topo.order;
    v
  in
  let limit =
    match max_iterations with
    | Some m -> m
    | None -> (2 * Array.length flops) + 8
  in
  let contradiction = ref false in
  let iterations = ref 0 in
  (* Per-bit state lattices have height 2 and the join is monotone, so
     this terminates well inside [limit]; conditioning on the
     assumption happens before each transition so the cube tracks only
     states reachable while the assumption holds at every cycle. *)
  let rec fixpoint i =
    if i > limit then failwith "Absint.run: no convergence";
    iterations := i;
    let v = eval_from_state () in
    match condition d sched v [ (assume, true) ] with
    | exception Contradiction -> contradiction := true
    | () ->
        let changed = ref false in
        Array.iter
          (fun ci ->
            let c = D.cell d ci in
            let next = Ternary.join state.(c.D.out) v.(c.D.ins.(0)) in
            if next <> state.(c.D.out) then begin
              state.(c.D.out) <- next;
              changed := true
            end)
          flops;
        if !changed then fixpoint (i + 1)
  in
  fixpoint 1;
  let values =
    if !contradiction then Array.make n_nets Ternary.x
    else begin
      let v = eval_from_state () in
      (match condition d sched v [ (assume, true) ] with
      | exception Contradiction -> contradiction := true
      | () -> ());
      if !contradiction then Array.make n_nets Ternary.x else v
    end
  in
  let digest =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "pdat-absint-v1\n";
    Buffer.add_string buf (if !contradiction then "contradiction\n" else "ok\n");
    Array.iteri
      (fun n v ->
        if v <> Ternary.x then begin
          Buffer.add_string buf (string_of_int n);
          Buffer.add_char buf '=';
          Buffer.add_string buf (string_of_int v);
          Buffer.add_char buf '\n'
        end)
      values;
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  {
    design = d;
    sched;
    values;
    assume;
    iterations = !iterations;
    contradiction = !contradiction;
    is_input;
    digest;
  }

let iterations t = t.iterations
let contradiction t = t.contradiction
let value t n = t.values.(n)
let facts_digest t = t.digest

let constants t =
  if t.contradiction then []
  else begin
    let out = ref [] in
    for n = Array.length t.values - 1 downto 2 do
      if (not t.is_input.(n)) && t.values.(n) <> Ternary.x then
        out := Candidate.Const (n, t.values.(n) = 1) :: !out
    done;
    !out
  end

let facts = constants
let n_facts t = List.length (constants t)

let proves t cand =
  if t.contradiction then false
  else
    match cand with
    | Candidate.Const (n, b) -> t.values.(n) = Bool.to_int b
    | Candidate.Implies { a; b; _ } ->
        t.values.(a) = 0 || t.values.(b) = 1
        (* with a constant-1 antecedent, conditioning on it is a no-op
           and the direct lookup above was already the full answer *)
        || t.values.(a) <> 1
           && begin
             (* condition the post-fixpoint cube on the antecedent: a
                contradiction means the antecedent never fires in an
                assumed reachable state, which proves the implication
                vacuously *)
             let v = Array.copy t.values in
             match condition t.design t.sched v [ (a, true) ] with
             | exception Contradiction -> true
             | () -> v.(b) = 1
           end

let word_facts t =
  if t.contradiction then []
  else begin
    let d = t.design in
    let n_nets = D.num_nets d in
    let groups : (string, (int * D.net) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    let add name net =
      match String.index_opt name '[' with
      | None -> ()
      | Some l ->
          let len = String.length name in
          if len > l + 1 && name.[len - 1] = ']' then
            match int_of_string_opt (String.sub name (l + 1) (len - l - 2)) with
            | Some i when i >= 0 ->
                let base = String.sub name 0 l in
                let cell =
                  match Hashtbl.find_opt groups base with
                  | Some r -> r
                  | None ->
                      let r = ref [] in
                      Hashtbl.add groups base r;
                      r
                in
                cell := (i, net) :: !cell
            | _ -> ()
    in
    List.iter (fun (nm, n) -> add nm n) (D.inputs d);
    List.iter (fun (nm, n) -> add nm n) (D.outputs d);
    for n = 0 to n_nets - 1 do
      if not t.is_input.(n) then add (D.net_name d n) n
    done;
    let out = ref [] in
    Hashtbl.iter
      (fun base bits ->
        let width =
          List.fold_left (fun acc (i, _) -> max acc (i + 1)) 0 !bits
        in
        if width >= 1 && width <= 63 then begin
          let known_mask = ref 0L and known_value = ref 0L in
          List.iter
            (fun (i, n) ->
              let v = t.values.(n) in
              if v <> Ternary.x then begin
                known_mask := Int64.logor !known_mask (Int64.shift_left 1L i);
                if v = 1 then
                  known_value :=
                    Int64.logor !known_value (Int64.shift_left 1L i)
              end)
            !bits;
          let all = Int64.sub (Int64.shift_left 1L width) 1L in
          let unknown = Int64.logand all (Int64.lognot !known_mask) in
          out :=
            {
              w_base = base;
              w_width = width;
              w_known_mask = !known_mask;
              w_known_value = !known_value;
              w_lo = !known_value;
              w_hi = Int64.logor !known_value unknown;
            }
            :: !out
        end)
      groups;
    List.sort (fun a b -> compare a.w_base b.w_base) !out
  end

let stuck_registers t =
  if t.contradiction then []
  else begin
    let d = t.design in
    let out = ref [] in
    Array.iter
      (fun ci ->
        let c = D.cell d ci in
        if t.values.(c.D.out) <> Ternary.x then
          out := (ci, t.values.(c.D.out) = 1) :: !out)
      t.sched.Netlist.Topo.flops;
    List.rev !out
  end

let dead_writes t =
  if t.contradiction then []
  else begin
    let d = t.design in
    let out = ref [] in
    Array.iter
      (fun ci ->
        let c = D.cell d ci in
        match D.driver d c.D.ins.(0) with
        | Some mi -> (
            let m = D.cell d mi in
            match m.D.kind with
            | C.Mux2 when t.values.(m.D.ins.(0)) <> Ternary.x ->
                out := (ci, t.values.(m.D.ins.(0)) = 1) :: !out
            | _ -> ())
        | None -> ())
      t.sched.Netlist.Topo.flops;
    List.rev !out
  end
