(** Candidate gate invariants — the Property Library instances of the
    paper, section IV.1.

    A candidate is an invariant over one net or one gate's pins that
    has survived constrained random simulation and awaits proof:

    - [Const (n, b)]: net [n] always carries [b] (the paper's
      [and_out_ZN_0] / [and_out_ZN_1] properties, generalized to any
      net).
    - [Implies (a, b)]: whenever [a] is 1 so is [b]
      (the paper's [and_in_A2_A1] property); attached to a specific
      cell so the rewiring stage knows which gate collapses. *)

type t =
  | Const of Netlist.Design.net * bool
  | Implies of { cell : int; a : Netlist.Design.net; b : Netlist.Design.net }

val compare : t -> t -> int
val equal : t -> t -> bool

val holds_in_values : (Netlist.Design.net -> int64) -> t -> bool
(** Does the candidate hold on all 64 lanes of a simulation snapshot? *)

val key : t -> string
(** Compact stable structural rendering — ["C<net>:<0|1>"] for
    constants, ["I<cell>:<a>><b>"] for implications.  Used as the
    proof-cache entry key and the run-journal checkpoint form.  Net and
    cell ids are only meaningful relative to a pinned netlist digest
    (see {!Proof_cache.scope} and {!val-of_key}). *)

val of_key : string -> t option
(** Inverse of {!key}; [None] on any malformed string.  The caller is
    responsible for having verified (by digest) that the ids refer to
    the same netlist that produced the key. *)

val pp : Netlist.Design.t -> Format.formatter -> t -> unit
