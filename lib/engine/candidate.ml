type t =
  | Const of Netlist.Design.net * bool
  | Implies of { cell : int; a : Netlist.Design.net; b : Netlist.Design.net }

let compare = Stdlib.compare
let equal a b = compare a b = 0

let holds_in_values value = function
  | Const (n, true) -> value n = -1L
  | Const (n, false) -> value n = 0L
  | Implies { a; b; _ } -> Int64.logand (value a) (Int64.lognot (value b)) = 0L

let key = function
  | Const (n, b) -> Printf.sprintf "C%d:%d" n (Bool.to_int b)
  | Implies { cell; a; b } -> Printf.sprintf "I%d:%d>%d" cell a b

let of_key s =
  let num t = match int_of_string_opt t with Some n when n >= 0 -> Some n | _ -> None in
  if String.length s < 2 then None
  else
    let body = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'C' -> (
        match String.split_on_char ':' body with
        | [ n; "0" ] -> Option.map (fun n -> Const (n, false)) (num n)
        | [ n; "1" ] -> Option.map (fun n -> Const (n, true)) (num n)
        | _ -> None)
    | 'I' -> (
        match String.split_on_char ':' body with
        | [ cell; rest ] -> (
            match String.split_on_char '>' rest with
            | [ a; b ] -> (
                match (num cell, num a, num b) with
                | Some cell, Some a, Some b -> Some (Implies { cell; a; b })
                | _ -> None)
            | _ -> None)
        | _ -> None)
    | _ -> None

let pp d fmt = function
  | Const (n, b) ->
      Format.fprintf fmt "%s == %d" (Netlist.Design.net_name d n) (Bool.to_int b)
  | Implies { a; b; cell } ->
      Format.fprintf fmt "%s -> %s (cell %d)" (Netlist.Design.net_name d a)
        (Netlist.Design.net_name d b) cell
