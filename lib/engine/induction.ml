module D = Netlist.Design
module S = Sat.Solver
module L = Sat.Lit

type options = {
  k : int;
  call_conflict_budget : int;
  total_conflict_budget : int;
  time_budget_s : float;
}

let default_options =
  { k = 1; call_conflict_budget = 200_000; total_conflict_budget = -1;
    time_budget_s = infinity }

type stats = {
  n_candidates : int;
  n_proved : int;
  sat_calls : int;
  conflicts : int;
  decisions : int;
  propagations : int;
  rounds : int;
  core_skips : int;
  n_sieved : int;
  sieve_classes : int;
  sieve_sat_calls : int;
  budget_exhausted : bool;
  deadline_exceeded : bool;
  workers : int;
  workers_failed : int;
  worker_failures : (int * string) list;
  worker_retries : int;
  worker_fallbacks : int;
  resumed_shards : int;
  worker_times : (int * float * float) list;
  shard_sizes : int list;
  cache_hits : int;
  cache_misses : int;
  worker_seconds : float;
  n_static_proved : int;
  strengthening_facts : int;
  top_costs : Obs.Attr.row list;
  worker_wall_max_s : float;
  worker_wall_mean_s : float;
  worker_idle_frac : float;
}

let blank_stats =
  {
    n_candidates = 0;
    n_proved = 0;
    sat_calls = 0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    rounds = 0;
    core_skips = 0;
    n_sieved = 0;
    sieve_classes = 0;
    sieve_sat_calls = 0;
    budget_exhausted = false;
    deadline_exceeded = false;
    workers = 0;
    workers_failed = 0;
    worker_failures = [];
    worker_retries = 0;
    worker_fallbacks = 0;
    resumed_shards = 0;
    worker_times = [];
    shard_sizes = [];
    cache_hits = 0;
    cache_misses = 0;
    worker_seconds = 0.;
    n_static_proved = 0;
    strengthening_facts = 0;
    top_costs = [];
    worker_wall_max_s = 0.;
    worker_wall_mean_s = 0.;
    worker_idle_frac = 0.;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "candidates=%d proved=%d sat_calls=%d conflicts=%d rounds=%d%s%s"
    s.n_candidates s.n_proved s.sat_calls s.conflicts s.rounds
    (if s.budget_exhausted then " (budget exhausted)" else "")
    (if s.deadline_exceeded then " (deadline exceeded)" else "");
  if s.core_skips > 0 then Format.fprintf fmt " core_skips=%d" s.core_skips;
  if s.sieve_classes > 0 then
    Format.fprintf fmt " sieve=%d/%d classes (%d sieve SAT calls)"
      s.sieve_classes
      (s.sieve_classes + s.n_sieved)
      s.sieve_sat_calls;
  if s.workers > 0 then begin
    Format.fprintf fmt " workers=%d shards=[%s] worker_wall=%.1fs"
      s.workers
      (String.concat ";" (List.map string_of_int s.shard_sizes))
      s.worker_seconds;
    if s.resumed_shards > 0 then
      Format.fprintf fmt " resumed=%d" s.resumed_shards;
    if s.workers_failed > 0 then
      Format.fprintf fmt " (%d worker failure%s: %s; %d retr%s, %d fallback%s)"
        s.workers_failed
        (if s.workers_failed = 1 then "" else "s")
        (String.concat "; "
           (List.map
              (fun (i, why) -> Printf.sprintf "#%d %s" i why)
              s.worker_failures))
        s.worker_retries
        (if s.worker_retries = 1 then "y" else "ies")
        s.worker_fallbacks
        (if s.worker_fallbacks = 1 then "" else "s")
  end;
  if s.cache_hits + s.cache_misses > 0 then
    Format.fprintf fmt " cache=%d/%d hits" s.cache_hits
      (s.cache_hits + s.cache_misses);
  if s.n_static_proved > 0 || s.strengthening_facts > 0 then
    Format.fprintf fmt " absint=%d static (%d strengthening facts)"
      s.n_static_proved s.strengthening_facts;
  if s.worker_wall_max_s > 0. then
    Format.fprintf fmt " balance=max %.2fs mean %.2fs idle %.0f%%"
      s.worker_wall_max_s s.worker_wall_mean_s (100. *. s.worker_idle_frac)

(* Per-candidate fate, for the provenance layer.  Only [V_refuted]
   carries a counterexample: a base-side SAT model is a trace from
   reset, so it replays exactly in the simulator; a step-side kill
   starts from a free state and proves nothing about reachability. *)
type verdict =
  | V_proved of { k : int }
  | V_refuted of { frame : int; cex : Cex.t option }
  | V_sim_killed
  | V_not_inductive
  | V_dropped of string
  | V_cached of Proof_cache.verdict
  | V_sieved of { rep : Candidate.t; proved : bool }
  | V_static_proved

let verdict_label = function
  | V_proved _ -> "proved"
  | V_refuted _ -> "refuted"
  | V_sim_killed -> "sim-killed"
  | V_not_inductive -> "not-inductive"
  | V_dropped _ -> "dropped"
  | V_cached Proof_cache.Proved -> "cached-proved"
  | V_cached Proof_cache.Disproved -> "cached-disproved"
  | V_sieved { proved = true; _ } -> "sieved-proved"
  | V_sieved { proved = false; _ } -> "sieved-dropped"
  | V_static_proved -> "static-proved"

(* A candidate's claim at a given frame, as a bare literal list (the
   clause asserting it), optionally under a guard literal. *)
let claim_lits u ~frame = function
  | Candidate.Const (n, b) ->
      let l = Unroll.lit u ~frame n in
      [ (if b then l else L.negate l) ]
  | Candidate.Implies { a; b; _ } ->
      [ L.negate (Unroll.lit u ~frame a); Unroll.lit u ~frame b ]

let claim_clause u ~frame ~guard cand =
  L.negate guard :: claim_lits u ~frame cand

(* violation literal: true in a model ⇒ the candidate fails at [frame] *)
let violation_lit u ~frame = function
  | Candidate.Const (n, b) ->
      let l = Unroll.lit u ~frame n in
      if b then L.negate l else l
  | Candidate.Implies { a; b; _ } ->
      let s = Unroll.solver u in
      let v = L.pos (S.new_var s) in
      S.add_clause s [ L.negate v; Unroll.lit u ~frame a ];
      S.add_clause s [ L.negate v; L.negate (Unroll.lit u ~frame b) ];
      v

(* does the candidate hold at [frame] in the current model? *)
let holds_in_model u ~frame = function
  | Candidate.Const (n, b) -> S.lit_value (Unroll.solver u) (Unroll.lit u ~frame n) = b
  | Candidate.Implies { a; b; _ } ->
      (not (S.lit_value (Unroll.solver u) (Unroll.lit u ~frame a)))
      || S.lit_value (Unroll.solver u) (Unroll.lit u ~frame b)

type side = {
  u : Unroll.t;
  viol : L.t array;          (* aggregated violation literal per candidate *)
  check_frames : int list;   (* frames where claims are checked *)
  hyp_actives : L.t array option;  (* step side only: hypothesis guards *)
}

let or_lits u lits =
  match lits with
  | [ l ] -> l
  | _ ->
      let s = Unroll.solver u in
      let v = L.pos (S.new_var s) in
      (* v -> (l1 | l2 | ...): enough for the "model implies violation"
         direction that the kill loop relies on *)
      S.add_clause s (L.negate v :: lits);
      v

let build_side d ~assume ~init ~n_frames ~check_frames ~with_hypothesis
    ~known ~hypotheses candidates =
  let solver = S.create () in
  let u = Unroll.create solver d ~init in
  for _ = 1 to n_frames do
    Unroll.add_frame u
  done;
  for f = 0 to n_frames - 1 do
    S.add_clause solver [ Unroll.lit u ~frame:f assume ]
  done;
  let tl = Unroll.lit_true u in
  (* [known] are established invariants of the reachable state space:
     sound to assert at every frame of either side (strengthening) *)
  List.iter
    (fun cand ->
      for f = 0 to n_frames - 1 do
        S.add_clause solver (claim_clause u ~frame:f ~guard:tl cand)
      done)
    known;
  (* [hypotheses] are unverified co-candidates from other shards: they
     may only be assumed where this side's own candidates assume theirs
     — the induction window of the step side, never the base side *)
  if with_hypothesis then
    List.iter
      (fun cand ->
        for f = 0 to n_frames - 2 do
          S.add_clause solver (claim_clause u ~frame:f ~guard:tl cand)
        done)
      hypotheses;
  let hyp_actives =
    if not with_hypothesis then None
    else begin
      (* own candidates' window claims are selector-guarded: the guard
         is assumed while the candidate is alive and retired on its
         kill, physically deleting the claim clauses from the solver *)
      let guards =
        Array.map
          (fun cand ->
            let g = S.new_selector solver in
            for f = 0 to n_frames - 2 do
              S.add_guarded solver ~guard:g (claim_lits u ~frame:f cand)
            done;
            g)
          candidates
      in
      Some guards
    end
  in
  let viol =
    Array.map
      (fun cand ->
        or_lits u (List.map (fun f -> violation_lit u ~frame:f cand) check_frames))
      candidates
  in
  { u; viol; check_frames; hyp_actives }

exception Out_of_budget

let prove ?(options = default_options) ?cex ?(known = []) ?(hypotheses = [])
    ?fates ~assume d candidate_list =
  let candidates = Array.of_list candidate_list in
  let n = Array.length candidates in
  let ckey = Array.map Candidate.key candidates in
  let attr0 = Obs.Attr.export () in
  let alive = Array.make n true in
  let sat_calls = ref 0 in
  let core_skips = ref 0 in
  (* Fate tracking (optional, for provenance): each candidate's first
     cause of death, or its proof.  [fate.(i)] is write-once. *)
  let want_fates = fates <> None in
  let fate : verdict option array = Array.make (if want_fates then n else 0) None in
  let set_fate i v = if want_fates && fate.(i) = None then fate.(i) <- Some v in
  let inputs_arr = lazy (Array.of_list (List.map snd (D.inputs d))) in
  (* Called immediately after a Sat answer, while the model is live:
     find the first check frame where candidate [i] fails and pull the
     input literals of frames [0..f] out of the model. *)
  let extract_cex side i =
    let u = side.u in
    let solver = Unroll.solver u in
    match
      List.find_opt
        (fun f -> not (holds_in_model u ~frame:f candidates.(i)))
        (List.sort compare side.check_frames)
    with
    | None -> None
    | Some f ->
        let inputs = Lazy.force inputs_arr in
        let frames =
          Array.init (f + 1) (fun frame ->
              Array.map
                (fun nnet -> S.lit_value solver (Unroll.lit u ~frame nnet))
                inputs)
        in
        Some (f, { Cex.inputs; frames })
  in
  let record_kill side ~is_base i why =
    if want_fates then
      match why with
      | `Inconclusive -> set_fate i (V_dropped "inconclusive")
      | `Model ->
          if is_base then
            match extract_cex side i with
            | Some (frame, c) -> set_fate i (V_refuted { frame; cex = Some c })
            | None -> set_fate i (V_dropped "spurious-model")
          else set_fate i V_not_inductive
  in
  (* counterexample propagation: replay each CEX state forward in the
     bit-parallel simulator to mass-kill non-inductive candidates that
     would otherwise each cost their own SAT query *)
  let cex_sim =
    match cex with
    | None -> None
    | Some _ -> Some (Netlist.Sim64.create d, Random.State.make [| 0xCE11 |])
  in
  let cex_propagate side () =
    match cex, cex_sim with
    | Some (stimulus, cycles), Some (sim, rng) ->
        let u = side.u in
        let solver = Unroll.solver u in
        let frame = List.fold_left max 0 side.check_frames in
        Netlist.Sim64.load_state sim (fun nnet ->
            if S.lit_value solver (Unroll.lit u ~frame nnet) then -1L else 0L);
        let inputs = D.inputs d in
        let random_word () =
          Int64.logor
            (Int64.of_int (Random.State.bits rng))
            (Int64.logor
               (Int64.shift_left (Int64.of_int (Random.State.bits rng)) 30)
               (Int64.shift_left (Int64.of_int (Random.State.bits rng)) 60))
        in
        for _ = 1 to cycles do
          let driven = stimulus.Stimulus.drive rng in
          let driven_nets = List.map fst driven in
          List.iter
            (fun (_, nnet) ->
              if not (List.mem nnet driven_nets) then
                Netlist.Sim64.set_input sim nnet (random_word ()))
            inputs;
          List.iter (fun (nnet, v) -> Netlist.Sim64.set_input sim nnet v) driven;
          Netlist.Sim64.eval sim;
          let mask = Netlist.Sim64.read sim assume in
          if mask <> 0L then
            Array.iteri
              (fun i cand ->
                if alive.(i) then
                  let viol =
                    match cand with
                    | Candidate.Const (nnet, true) ->
                        Int64.logand mask
                          (Int64.lognot (Netlist.Sim64.read sim nnet))
                    | Candidate.Const (nnet, false) ->
                        Int64.logand mask (Netlist.Sim64.read sim nnet)
                    | Candidate.Implies { a; b; _ } ->
                        Int64.logand mask
                          (Int64.logand (Netlist.Sim64.read sim a)
                             (Int64.lognot (Netlist.Sim64.read sim b)))
                  in
                  if viol <> 0L then begin
                    alive.(i) <- false;
                    set_fate i V_sim_killed
                  end)
              candidates;
          Netlist.Sim64.step sim
        done
    | _ -> ()
  in
  let budget_left =
    ref
      (if options.total_conflict_budget < 0 then None
       else Some options.total_conflict_budget)
  in
  (* [infinity] means unlimited; any finite non-positive budget is an
     already-expired deadline, so the very first SAT call returns
     Unknown and every candidate is conservatively dropped — uniform
     with Rsim and the raw solver. *)
  let deadline =
    if options.time_budget_s = infinity then None
    else Some (Obs.Clock.now_s () +. Float.max 0. options.time_budget_s)
  in
  let deadline_hit = ref false in
  let k = max 1 options.k in
  let base =
    build_side d ~assume ~init:`Reset ~n_frames:k
      ~check_frames:(List.init k (fun i -> i))
      ~with_hypothesis:false ~known ~hypotheses:[] candidates
  in
  let step =
    build_side d ~assume ~init:`Free ~n_frames:(k + 1) ~check_frames:[ k ]
      ~with_hypothesis:true ~known ~hypotheses candidates
  in
  let rounds = ref 0 in
  let exhausted = ref false in
  let alive_indices () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if alive.(i) then acc := i :: !acc
    done;
    !acc
  in
  let kill_from_model side ~is_base =
    let killed = ref [] in
    Array.iteri
      (fun i a ->
        if a then
          let ok =
            List.for_all
              (fun f -> holds_in_model side.u ~frame:f candidates.(i))
              side.check_frames
          in
          if not ok then begin
            alive.(i) <- false;
            record_kill side ~is_base i `Model;
            killed := i :: !killed
          end)
      alive;
    List.rev !killed
  in
  (* an aggregate round whose model refuted candidates is those
     candidates' cost: each gets an equal share of the round's
     conflicts and wall, and the one call that settled it — without
     this, kernels the aggregates settle outright would attribute
     nothing per-candidate *)
  let bill_round solver killed ~c0 ~t0 =
    let nk = List.length killed in
    let share_c = (S.num_conflicts solver - c0) / nk in
    let share_w = (Obs.Clock.now_s () -. t0) /. float_of_int nk in
    List.iter
      (fun i ->
        Obs.Attr.with_key ckey.(i) (fun () ->
            Obs.Attr.charge_call ~wall_s:share_w ~conflicts:share_c))
      killed
  in
  let budgeted_solve solver assumptions =
    incr sat_calls;
    let before = S.num_conflicts solver in
    let budget =
      let b = options.call_conflict_budget in
      match !budget_left with
      | None -> b
      | Some total -> if b < 0 then total else min b total
    in
    let r = S.solve ~assumptions ~conflict_budget:budget ?deadline solver in
    (match (r, deadline) with
    | S.Unknown, Some t when Obs.Clock.now_s () >= t -> deadline_hit := true
    | _ -> ());
    let spent = S.num_conflicts solver - before in
    (match !budget_left with
    | None -> ()
    | Some total ->
        let remaining = total - spent in
        if remaining <= 0 then raise Out_of_budget;
        budget_left := Some remaining);
    r
  in
  (* ---- step-side incremental bookkeeping --------------------------
     Both sides keep one long-lived solver.  The step side additionally
     tracks, per candidate:
     - its selector guard (window claim clauses live under it; a kill
       retires the selector, physically deleting them);
     - the unsat core of its last individual step check, as the set of
       co-candidate indices the proof assumed.  A later kill only
       invalidates ("dirties") the candidates whose core mentions the
       victim: everyone else's Unsat is monotone in the shrinking
       assumption set and is {e not} re-solved ([core_skips]). *)
  let step_solver = Unroll.solver step.u in
  let step_guards =
    match step.hyp_actives with Some g -> g | None -> [||]
  in
  let guard_index = Hashtbl.create (max 16 n) in
  Array.iteri (fun i g -> Hashtbl.replace guard_index g i) step_guards;
  let retired = Array.make n false in
  let cores : int list option array = Array.make n None in
  let sync_kills () =
    Array.iteri
      (fun j a ->
        if (not a) && not retired.(j) then begin
          retired.(j) <- true;
          S.retire step_solver step_guards.(j);
          Array.iteri
            (fun i core ->
              match core with
              | Some deps when List.mem j deps -> cores.(i) <- None
              | _ -> ())
            cores
        end)
      alive
  in
  let base_pass () =
    let solver = Unroll.solver base.u in
    (* The base side has no hypothesis assumptions, so a candidate's
       base validity never depends on the alive set: one complete pass
       settles it forever and the fixpoint never returns here. *)
    let rec aggregate () =
      match alive_indices () with
      | [] -> ()
      | idxs ->
          incr rounds;
          let r = S.new_selector solver in
          S.add_guarded solver ~guard:r
            (List.map (fun i -> base.viol.(i)) idxs);
          let c0 = S.num_conflicts solver in
          let t0 = Obs.Clock.now_s () in
          let res =
            Obs.Attr.with_key "(base-aggregate)" (fun () ->
                budgeted_solve solver [ r ])
          in
          S.retire solver r;
          (match res with
          | S.Sat ->
              let killed = kill_from_model base ~is_base:true in
              if killed <> [] then begin
                bill_round solver killed ~c0 ~t0;
                cex_propagate base ();
                aggregate ()
              end
              else
                (* the model satisfied only spurious violation literals
                   of implication candidates; check individually *)
                individual idxs
          | S.Unsat -> ()
          | S.Unknown -> individual idxs)
    and individual idxs =
      List.iter
        (fun i ->
          if alive.(i) then
            match
              Obs.Attr.with_key ckey.(i) (fun () ->
                  budgeted_solve solver [ base.viol.(i) ])
            with
            | S.Sat ->
                ignore (kill_from_model base ~is_base:true : int list);
                if alive.(i) then begin
                  alive.(i) <- false;
                  record_kill base ~is_base:true i `Model
                end;
                cex_propagate base ()
            | S.Unsat -> ()
            | S.Unknown ->
                (* inconclusive: conservatively drop *)
                alive.(i) <- false;
                record_kill base ~is_base:true i `Inconclusive)
        idxs
    in
    aggregate ()
  in
  let step_fixpoint () =
    let solver = step_solver in
    sync_kills ();
    let assumptions_alive () =
      List.map (fun i -> step_guards.(i)) (alive_indices ())
    in
    let rec aggregate () =
      match alive_indices () with
      | [] -> ()
      | idxs ->
          incr rounds;
          let r = S.new_selector solver in
          S.add_guarded solver ~guard:r
            (List.map (fun i -> step.viol.(i)) idxs);
          let c0 = S.num_conflicts solver in
          let t0 = Obs.Clock.now_s () in
          let res =
            Obs.Attr.with_key "(step-aggregate)" (fun () ->
                budgeted_solve solver (r :: assumptions_alive ()))
          in
          S.retire solver r;
          (match res with
          | S.Sat ->
              let killed = kill_from_model step ~is_base:false in
              if killed <> [] then begin
                bill_round solver killed ~c0 ~t0;
                cex_propagate step ();
                sync_kills ();
                aggregate ()
              end
              else individual ()
          | S.Unsat -> ()
          | S.Unknown -> individual ())
    and individual () =
      (* Worklist to a fixpoint: only candidates without a valid core
         are (re-)checked; a kill dirties exactly its dependents. *)
      let progress = ref true in
      let first = ref true in
      while !progress do
        progress := false;
        let al = alive_indices () in
        let pending = List.filter (fun i -> cores.(i) = None) al in
        if not !first then begin
          core_skips := !core_skips + (List.length al - List.length pending);
          (* attribution: each alive candidate with a still-valid core
             just dodged one re-check *)
          List.iter
            (fun i ->
              if cores.(i) <> None then Obs.Attr.credit_core_skip ckey.(i))
            al
        end;
        first := false;
        List.iter
          (fun i ->
            if alive.(i) && cores.(i) = None then
              match
                Obs.Attr.with_key ckey.(i) (fun () ->
                    budgeted_solve solver
                      (step.viol.(i) :: assumptions_alive ()))
              with
              | S.Sat ->
                  ignore (kill_from_model step ~is_base:false : int list);
                  if alive.(i) then begin
                    alive.(i) <- false;
                    record_kill step ~is_base:false i `Model
                  end;
                  cex_propagate step ();
                  sync_kills ();
                  progress := true
              | S.Unsat ->
                  let failed = S.failed_assumptions solver in
                  cores.(i) <-
                    Some
                      (List.filter_map
                         (fun l -> Hashtbl.find_opt guard_index l)
                         failed)
              | S.Unknown ->
                  alive.(i) <- false;
                  record_kill step ~is_base:false i `Inconclusive;
                  sync_kills ();
                  progress := true)
          pending
      done
    in
    aggregate ()
  in
  (try
     base_pass ();
     step_fixpoint ()
   with Out_of_budget ->
     exhausted := true;
     if want_fates then
       Array.iteri
         (fun i a -> if a then set_fate i (V_dropped "conflict-budget"))
         alive;
     Array.fill alive 0 n false);
  let proved = ref [] in
  for i = n - 1 downto 0 do
    if alive.(i) then proved := candidates.(i) :: !proved
  done;
  (match fates with
  | None -> ()
  | Some tbl ->
      Array.iteri
        (fun i a ->
          let v =
            if a then V_proved { k }
            else
              match fate.(i) with
              | Some v -> v
              | None -> V_dropped "unaccounted"
          in
          Hashtbl.replace tbl candidates.(i) v)
        alive);
  let snap_base = S.snapshot (Unroll.solver base.u) in
  let snap_step = S.snapshot (Unroll.solver step.u) in
  ( !proved,
    {
      blank_stats with
      n_candidates = n;
      n_proved = List.length !proved;
      sat_calls = !sat_calls;
      conflicts = snap_base.S.conflicts + snap_step.S.conflicts;
      decisions = snap_base.S.decisions + snap_step.S.decisions;
      propagations = snap_base.S.propagations + snap_step.S.propagations;
      rounds = !rounds;
      core_skips = !core_skips;
      budget_exhausted = !exhausted;
      deadline_exceeded = !deadline_hit;
      top_costs = Obs.Attr.top (Obs.Attr.delta ~since:attr0 (Obs.Attr.export ()));
    } )

(* Reference prover, retained as the differential-test oracle and the
   bench baseline: the pre-incremental snapshot/restore discipline.
   Every pass re-encodes the unrolled transition relation into fresh
   solvers and pays one solver round-trip per candidate, so no learned
   clause, selector or core survives between checks.  Slow but
   obviously correct — on complete runs (no budget/deadline drop) its
   proved set is the greatest mutual-induction fixpoint, which is
   exactly what [prove] computes incrementally. *)
let prove_snapshot ?(options = default_options) ?(known = [])
    ?(hypotheses = []) ~assume d candidate_list =
  let candidates = Array.of_list candidate_list in
  let n = Array.length candidates in
  let ckey = Array.map Candidate.key candidates in
  let alive = Array.make n true in
  let sat_calls = ref 0 in
  let rounds = ref 0 in
  let k = max 1 options.k in
  let deadline =
    if options.time_budget_s = infinity then None
    else Some (Obs.Clock.now_s () +. Float.max 0. options.time_budget_s)
  in
  let solve_one solver assumptions =
    incr sat_calls;
    S.solve ~assumptions ~conflict_budget:options.call_conflict_budget
      ?deadline solver
  in
  let continue = ref true in
  while !continue do
    continue := false;
    incr rounds;
    let base =
      build_side d ~assume ~init:`Reset ~n_frames:k
        ~check_frames:(List.init k (fun i -> i))
        ~with_hypothesis:false ~known ~hypotheses:[] candidates
    in
    Array.iteri
      (fun i a ->
        if a then
          match
            Obs.Attr.with_key ckey.(i) (fun () ->
                solve_one (Unroll.solver base.u) [ base.viol.(i) ])
          with
          | S.Sat | S.Unknown ->
              alive.(i) <- false;
              continue := true
          | S.Unsat -> ())
      alive;
    let step =
      build_side d ~assume ~init:`Free ~n_frames:(k + 1) ~check_frames:[ k ]
        ~with_hypothesis:true ~known ~hypotheses candidates
    in
    let hyp_guards =
      match step.hyp_actives with Some g -> g | None -> [||]
    in
    let assumptions () =
      let acc = ref [] in
      for i = n - 1 downto 0 do
        if alive.(i) then acc := hyp_guards.(i) :: !acc
      done;
      !acc
    in
    Array.iteri
      (fun i a ->
        if a then
          match
            Obs.Attr.with_key ckey.(i) (fun () ->
                solve_one (Unroll.solver step.u)
                  (step.viol.(i) :: assumptions ()))
          with
          | S.Sat | S.Unknown ->
              alive.(i) <- false;
              continue := true
          | S.Unsat -> ())
      alive
  done;
  let proved = ref [] in
  for i = n - 1 downto 0 do
    if alive.(i) then proved := candidates.(i) :: !proved
  done;
  ( !proved,
    {
      blank_stats with
      n_candidates = n;
      n_proved = List.length !proved;
      sat_calls = !sat_calls;
      rounds = !rounds;
    } )

(* ------------------------------------------------------------------ *)
(* Parallel prover: shard, fork, supervise, join.                      *)
(* ------------------------------------------------------------------ *)

(* A shard is identified across runs by the digest of its candidate
   keys: the journal checkpoints proved sets under this fingerprint, and
   a resumed run recognizes its shards by it even though pids, fds and
   timings all differ. *)
let shard_fingerprint ?salt cands =
  let keys = List.sort compare (List.map Candidate.key cands) in
  let keys =
    match salt with None -> keys | Some s -> ("salt " ^ s) :: keys
  in
  Digest.to_hex (Digest.string (String.concat "\n" keys))

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n -> n | None -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match float_of_string_opt (String.trim s) with Some f -> f | None -> default)
  | None -> default

let default_retries () = max 0 (env_int "PDAT_RETRIES" 2)
let retry_backoff_s () = Float.max 0. (env_float "PDAT_RETRY_BACKOFF_S" 0.1)
let stall_timeout_s () = Float.max 1. (env_float "PDAT_STALL_TIMEOUT_S" 30.)

(* Everything a worker ships back through its result pipe: the proof
   outcome plus its own telemetry, so the coordinator's trace shows the
   worker as a first-class span with its counters attached. *)
type worker_result = {
  w_proved : Candidate.t list;
  w_stats : stats;
  w_wall_s : float;
  w_cpu_s : float;  (* user + system CPU, from [Unix.times] *)
  w_events : Obs.event list;
  w_counters : (string * float) list;
  w_fates : (Candidate.t * verdict) list;  (* empty unless requested *)
  w_hists : (string * float array) list;   (* histogram samples *)
  w_attr : Obs.Attr.row list;              (* per-candidate cost rows *)
}

let status_str = function
  | Unix.WEXITED n -> Printf.sprintf "exit status %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped by signal %d" n

type attribution = {
  verdict : verdict;
  shard : int option;  (* worker index, parallel fresh candidates only *)
  cache_hit : bool;
}

let prove_parallel ?(options = default_options) ?cex ?(jobs = 1) ?cache
    ?absint ?attributions ?retries ?checkpoint ?(recovered = [])
    ?(sieve = false) ~assume d candidate_list =
  let retries = match retries with Some r -> max 0 r | None -> default_retries () in
  let attr0 = Obs.Attr.export () in
  let want_fates = attributions <> None in
  let attribute cand verdict shard cache_hit =
    match attributions with
    | None -> ()
    | Some tbl -> Hashtbl.replace tbl cand { verdict; shard; cache_hit }
  in
  (* ---- static tier -----------------------------------------------------
     The abstract interpreter settles every candidate whose violation is
     impossible in its conditioned post-fixpoint before anything touches
     SAT; the remaining facts it proved become strengthening invariants,
     asserted at every frame of every solver below.  Both change what a
     run can prove, so the facts digest salts the cache scope and the
     shard fingerprints: strengthened and unstrengthened runs must never
     share cache entries or journal checkpoints. *)
  let static_proved, candidate_list_work, strengthen, fp_salt =
    match absint with
    | None -> ([], candidate_list, [], None)
    | Some ai ->
        let sp, rest =
          Obs.with_span ~cat:"prove" "static-tier" (fun () ->
              List.partition (Absint.proves ai) candidate_list)
        in
        List.iter
          (fun cand ->
            attribute cand V_static_proved None false;
            Obs.Attr.note_static (Candidate.key cand))
          sp;
        let in_cands = Hashtbl.create 64 in
        List.iter (fun c -> Hashtbl.replace in_cands c ()) candidate_list;
        let strengthen =
          List.filter (fun f -> not (Hashtbl.mem in_cands f)) (Absint.facts ai)
        in
        Obs.add_int "absint.static_proved" (List.length sp);
        Obs.add_int "absint.strengthening_facts" (List.length strengthen);
        (sp, rest, strengthen, Some (Absint.facts_digest ai))
  in
  let shard_fingerprint cands = shard_fingerprint ?salt:fp_salt cands in
  let sc =
    Option.map
      (fun c -> (c, Proof_cache.scope ?salt:fp_salt c ~design:d ~assume))
      cache
  in
  (* split the input into cache-resolved candidates and genuine work *)
  let cached_proved = ref [] and fresh = ref [] in
  let hits = ref 0 and misses = ref 0 in
  List.iter
    (fun cand ->
      match sc with
      | None -> fresh := cand :: !fresh
      | Some (c, scope) -> (
          match Proof_cache.find c scope cand with
          | Some Proof_cache.Proved ->
              incr hits;
              attribute cand (V_cached Proof_cache.Proved) None true;
              cached_proved := cand :: !cached_proved
          | Some Proof_cache.Disproved ->
              incr hits;
              attribute cand (V_cached Proof_cache.Disproved) None true
          | None ->
              incr misses;
              fresh := cand :: !fresh))
    candidate_list_work;
  let known = static_proved @ List.rev !cached_proved in
  (* what the solvers may assume at every frame: settled input candidates
     plus facts the interpreter proved about nets outside the candidate
     set (never part of the returned proved list) *)
  let solver_known = known @ strengthen in
  let fresh = List.rev !fresh in
  (* ---- simulation-signature sieve ------------------------------------
     Partition the cache-missed candidates into pointwise-equivalence
     classes (under [assume]); only one representative per class enters
     the prover and the verdict transfers to the rest.  Equivalent
     candidates are killed by the same models and contribute logically
     identical induction hypotheses, so the expanded proved set equals
     the sieve-off one exactly. *)
  let sieve_classes, sieve_st =
    if sieve && List.compare_length_with fresh 1 > 0 then begin
      let classes, sst =
        Obs.with_span ~cat:"prove" "sieve" (fun () ->
            Sieve.partition ~assume d fresh)
      in
      Obs.add_int "sieve.classes" sst.Sieve.n_classes;
      Obs.add_int "sieve.sieved" sst.Sieve.n_sieved;
      (Some classes, sst)
    end
    else
      ( None,
        {
          Sieve.n_candidates = 0;
          n_classes = 0;
          n_sieved = 0;
          sat_calls = 0;
          sat_merges = 0;
        } )
  in
  let work =
    match sieve_classes with
    | None -> fresh
    | Some classes -> List.map (fun c -> c.Sieve.rep) classes
  in
  let n_total = List.length candidate_list in
  let position = Hashtbl.create (max 16 n_total) in
  List.iteri (fun i cand -> Hashtbl.replace position cand i) candidate_list;
  let in_input_order l =
    List.sort
      (fun a b -> compare (Hashtbl.find position a) (Hashtbl.find position b))
      l
  in
  let finish ~proved ~st ~workers ~worker_failures ~worker_retries
      ~worker_fallbacks ~resumed_shards ~worker_times ~shard_sizes
      ~worker_seconds =
    let workers_failed = List.length worker_failures in
    (* sieve expansion: every member inherits its representative's
       verdict, with a [V_sieved] fate naming the rep actually checked *)
    let proved =
      match sieve_classes with
      | None -> proved
      | Some classes ->
          let proved_tbl = Hashtbl.create 64 in
          List.iter (fun cand -> Hashtbl.replace proved_tbl cand ()) proved;
          List.fold_left
            (fun acc cl ->
              let p = Hashtbl.mem proved_tbl cl.Sieve.rep in
              List.iter
                (fun m ->
                  attribute m
                    (V_sieved { rep = cl.Sieve.rep; proved = p })
                    None false)
                cl.Sieve.members;
              if p then acc @ cl.Sieve.members else acc)
            proved classes
    in
    (* verdicts are recorded only for runs that completed cleanly: a
       candidate dropped because a budget ran out is not a refutation
       and must stay re-provable.  Worker crashes no longer poison the
       record — supervision (retry, then in-process fallback) guarantees
       every shard was genuinely proved by someone. *)
    (match sc with
    | Some (c, scope)
      when (not st.budget_exhausted) && not st.deadline_exceeded ->
        let proved_tbl = Hashtbl.create 64 in
        List.iter (fun cand -> Hashtbl.replace proved_tbl cand ()) proved;
        List.iter
          (fun cand ->
            Proof_cache.record c scope cand
              (if Hashtbl.mem proved_tbl cand then Proof_cache.Proved
               else Proof_cache.Disproved))
          fresh
    | _ -> ());
    let all_proved = in_input_order (known @ proved) in
    (* load-balance gauges over the surviving workers' own wall clocks;
       idle fraction is how much of the slowest worker's window the
       average worker spent waiting (0 for a serial run) *)
    let walls = List.map (fun (_, w, _) -> w) worker_times in
    let wall_max = List.fold_left Float.max 0. walls in
    let wall_mean =
      match walls with
      | [] -> 0.
      | _ -> List.fold_left ( +. ) 0. walls /. float_of_int (List.length walls)
    in
    ( all_proved,
      {
        st with
        n_candidates = n_total;
        n_proved = List.length all_proved;
        top_costs =
          Obs.Attr.top (Obs.Attr.delta ~since:attr0 (Obs.Attr.export ()));
        worker_wall_max_s = wall_max;
        worker_wall_mean_s = wall_mean;
        worker_idle_frac =
          (if wall_max > 0. then 1. -. (wall_mean /. wall_max) else 0.);
        workers;
        workers_failed;
        worker_failures;
        worker_retries;
        worker_fallbacks;
        resumed_shards;
        worker_times;
        shard_sizes;
        cache_hits = !hits;
        cache_misses = !misses;
        worker_seconds;
        n_sieved = sieve_st.Sieve.n_sieved;
        sieve_classes = sieve_st.Sieve.n_classes;
        sieve_sat_calls = sieve_st.Sieve.sat_calls;
        n_static_proved = List.length static_proved;
        strengthening_facts = List.length strengthen;
      } )
  in
  let serial () =
    let fates = if want_fates then Some (Hashtbl.create 64) else None in
    let proved, st =
      prove ~options ?cex ~known:solver_known ?fates ~assume d work
    in
    (match fates with
    | None -> ()
    | Some f -> Hashtbl.iter (fun cand v -> attribute cand v None false) f);
    finish ~proved ~st ~workers:0 ~worker_failures:[] ~worker_retries:0
      ~worker_fallbacks:0 ~resumed_shards:0 ~worker_times:[] ~shard_sizes:[]
      ~worker_seconds:0.
  in
  if fresh = [] then
    finish ~proved:[] ~st:blank_stats ~workers:0 ~worker_failures:[]
      ~worker_retries:0 ~worker_fallbacks:0 ~resumed_shards:0 ~worker_times:[]
      ~shard_sizes:[] ~worker_seconds:0.
  else if jobs <= 1 then serial ()
  else begin
    let shards = Shard.partition d ~jobs work in
    if List.length shards <= 1 then serial ()
    else begin
      let n_work = List.length work in
      let worker_options shard_n =
        if options.total_conflict_budget <= 0 then options
        else
          { options with
            total_conflict_budget =
              max 1000 (options.total_conflict_budget * shard_n / n_work) }
      in
      let shard_tbls =
        List.map
          (fun shard ->
            let tbl = Hashtbl.create 64 in
            List.iter (fun cand -> Hashtbl.replace tbl cand ()) shard;
            tbl)
          shards
      in
      let hypotheses_for tbl =
        List.filter (fun c -> not (Hashtbl.mem tbl c)) work
      in
      let t_fork = Obs.Clock.now_s () in
      (* -------- resume: shards already proved by a prior run -------- *)
      let fingerprints = List.map shard_fingerprint shards in
      let recovered_results, todo =
        List.fold_left2
          (fun (rec_acc, todo_acc) (idx, shard) fp ->
            match List.assoc_opt fp recovered with
            | Some proved ->
                (* trust nothing beyond the fingerprint: keep only
                   candidates that really are in this shard *)
                let tbl = List.nth shard_tbls idx in
                let proved = List.filter (Hashtbl.mem tbl) proved in
                ((idx, shard, proved) :: rec_acc, todo_acc)
            | None -> (rec_acc, (idx, shard) :: todo_acc))
          ([], [])
          (List.mapi (fun i s -> (i, s)) shards)
          fingerprints
      in
      let recovered_results = List.rev recovered_results in
      let resumed_shards = List.length recovered_results in
      if resumed_shards > 0 then
        Obs.add_int "prove.resumed_shards" resumed_shards;
      (* -------- supervised worker pool ------------------------------ *)
      let backoff_base = retry_backoff_s () in
      let stall_after = stall_timeout_s () in
      (* a worker that outlives its own time budget by this much is
         presumed wedged and killed by the coordinator *)
      let watchdog_grace = 5.0 in
      let pending = ref [] (* (idx, shard, attempt, not_before) *) in
      List.iter
        (fun (idx, shard) -> pending := (idx, shard, 0, 0.) :: !pending)
        (List.rev todo);
      let running = ref [] in
      let ok_results = ref [] (* (idx, worker_result) *) in
      let failures = ref [] (* (idx, reason), every failed attempt *) in
      let fallback_tasks = ref [] (* (idx, shard), retries exhausted *) in
      let n_retries = ref 0 in
      let hb_scratch = Bytes.create 256 in
      let chunk = Bytes.create 65536 in
      let spawn (idx, shard, attempt, _) =
        flush stdout;
        flush stderr;
        let res_rd, res_wr = Unix.pipe () in
        let hb_rd, hb_wr = Unix.pipe () in
        match Unix.fork () with
        | 0 ->
            (* child: prove the shard (no cex propagation — workers must
               be deterministic and kill only on real violations), ship
               the result + telemetry through the result pipe, beat on
               the heartbeat pipe once a second, and die without running
               the parent's at_exit machinery *)
            (try
               Unix.close res_rd;
               Unix.close hb_rd;
               Obs.reset ();
               Obs.Attr.set_shard (Some idx);
               (match Chaos.worker_kill_requested ~idx ~attempt with
               | `Exit3 -> Unix._exit 3
               | `Sigkill -> Unix.kill (Unix.getpid ()) Sys.sigkill
               | `No -> ());
               (* heartbeat + in-child deadline watchdog: SIGALRM every
                  second writes one byte to the heartbeat pipe and, past
                  the hard deadline, exits 124 — the in-process half of
                  the rlimit-style watchdog (the coordinator SIGKILL is
                  the other half) *)
               let hard_deadline =
                 let b = options.time_budget_s in
                 if b = infinity then None
                 else Some (Obs.Clock.now_s () +. Float.max 0. b +. 2.0)
               in
               Unix.set_nonblock hb_wr;
               let beat = Bytes.make 1 'b' in
               Sys.set_signal Sys.sigalrm
                 (Sys.Signal_handle
                    (fun _ ->
                      (try ignore (Unix.write hb_wr beat 0 1)
                       with Unix.Unix_error _ -> ());
                      match hard_deadline with
                      | Some t when Obs.Clock.now_s () >= t -> Unix._exit 124
                      | _ -> ()));
               ignore
                 (Unix.setitimer Unix.ITIMER_REAL
                    { Unix.it_interval = 1.0; it_value = 1.0 });
               let t0 = Obs.Clock.now_s () in
               let tm0 = Unix.times () in
               Chaos.worker_delay ~idx;
               let payload =
                 try
                   let fates =
                     if want_fates then Some (Hashtbl.create 64) else None
                   in
                   let proved, st =
                     Obs.with_span ~cat:"worker"
                       (Printf.sprintf "worker-%d" idx)
                       (fun () ->
                         prove
                           ~options:(worker_options (List.length shard))
                           ~known:solver_known
                           ~hypotheses:
                             (hypotheses_for (List.nth shard_tbls idx))
                           ?fates ~assume d shard)
                   in
                   let tm1 = Unix.times () in
                   Ok
                     {
                       w_proved = proved;
                       w_stats = st;
                       w_wall_s = Obs.Clock.now_s () -. t0;
                       w_cpu_s =
                         tm1.Unix.tms_utime -. tm0.Unix.tms_utime
                         +. tm1.Unix.tms_stime -. tm0.Unix.tms_stime;
                       w_events = Obs.drain ();
                       w_counters = Obs.counters ();
                       w_fates =
                         (match fates with
                         | None -> []
                         | Some f ->
                             Hashtbl.fold (fun c v acc -> (c, v) :: acc) f []);
                       w_hists = Obs.histogram_samples ();
                       w_attr = Obs.Attr.export ();
                     }
                 with e -> Error (Printexc.to_string e)
               in
               (* quiesce the timer before the result write so SIGALRM
                  cannot interrupt the marshalled stream mid-syscall *)
               ignore
                 (Unix.setitimer Unix.ITIMER_REAL
                    { Unix.it_interval = 0.; it_value = 0. });
               let oc = Unix.out_channel_of_descr res_wr in
               Marshal.to_channel oc payload [];
               flush oc
             with _ -> ());
            Unix._exit 0
        | pid ->
            Unix.close res_wr;
            Unix.close hb_wr;
            let now = Obs.Clock.now_s () in
            let kill_after =
              if options.time_budget_s = infinity then None
              else
                Some
                  (now +. Float.max 0. options.time_budget_s +. watchdog_grace)
            in
            running :=
              (idx, shard, attempt, pid, res_rd, hb_rd, Buffer.create 4096,
               ref false, ref false, ref now, kill_after, ref None)
              :: !running
      in
      let reap pid =
        let rec wait () =
          try snd (Unix.waitpid [] pid)
          with Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        in
        wait ()
      in
      let handle_failure idx shard attempt reason =
        failures := (idx, reason) :: !failures;
        Obs.add_int "prove.worker_failures" 1;
        Obs.Log.event ~level:Obs.Log.Warn ~stage:"prove" ~shard:idx
          "worker-failure"
          ~kv:[ ("attempt", Obs.Int attempt); ("reason", Obs.Str reason) ];
        if attempt < retries then begin
          incr n_retries;
          Obs.add_int "prove.worker_retries" 1;
          let delay = backoff_base *. (2. ** float_of_int attempt) in
          pending :=
            !pending @ [ (idx, shard, attempt + 1, Obs.Clock.now_s () +. delay) ]
        end
        else
          (* retries exhausted: fall back to proving the shard serially
             in this process once the pool drains — the shard is never
             silently dropped *)
          fallback_tasks := (idx, shard) :: !fallback_tasks
      in
      let finish_worker (idx, shard, attempt, pid, res_rd, hb_rd, buf, res_eof,
                         hb_eof, _, _, killed) =
        if not !res_eof then (try Unix.close res_rd with Unix.Unix_error _ -> ());
        if not !hb_eof then (try Unix.close hb_rd with Unix.Unix_error _ -> ());
        let status = reap pid in
        let data = Buffer.contents buf in
        let payload =
          if String.length data = 0 then Error "empty pipe"
          else
            try Ok (Marshal.from_string data 0 : (worker_result, string) result)
            with Failure _ | End_of_file -> Error "garbled pipe"
        in
        let outcome =
          match (!killed, payload, status) with
          | Some why, _, st ->
              Error (Printf.sprintf "%s (%s)" why (status_str st))
          | None, Ok (Ok r), Unix.WEXITED 0 -> Ok r
          | None, Ok (Error msg), _ -> Error ("worker raised: " ^ msg)
          | None, Error why, Unix.WEXITED 0 -> Error why
          | None, (Ok (Ok _) | Error _), st -> Error (status_str st)
        in
        match outcome with
        | Ok r ->
            ok_results := (idx, r) :: !ok_results;
            Option.iter
              (fun cp -> cp (shard_fingerprint shard) r.w_proved)
              checkpoint
        | Error reason -> handle_failure idx shard attempt reason
      in
      (* progress heartbeat on the structured run log: how many shards
         and candidates are settled, and how much of the stage budget is
         left (the pipeline's stage allocator put it in
         [options.time_budget_s], so this is the honest ETA bound) *)
      let shard_size = Array.of_list (List.map List.length shards) in
      let last_hb = ref 0. in
      let log_heartbeat () =
        if Obs.Log.active () then begin
          let now = Obs.Clock.now_s () in
          if now -. !last_hb >= 1.0 then begin
            last_hb := now;
            let settled_shards =
              List.length !ok_results + List.length recovered_results
            in
            let settled =
              !hits
              + List.length static_proved
              + List.fold_left
                  (fun acc (idx, _) -> acc + shard_size.(idx))
                  0 !ok_results
              + List.fold_left
                  (fun acc (idx, _, _) -> acc + shard_size.(idx))
                  0 recovered_results
            in
            let kv =
              [
                ("shards_done", Obs.Int settled_shards);
                ("shards_total", Obs.Int (List.length shards));
                ("candidates_settled", Obs.Int settled);
                ("candidates_total", Obs.Int n_total);
                ("running", Obs.Int (List.length !running));
              ]
              @
              if options.time_budget_s = infinity then []
              else
                [
                  ( "eta_s",
                    Obs.Float
                      (Float.max 0.
                         (t_fork +. options.time_budget_s -. now)) );
                ]
            in
            Obs.Log.event ~stage:"prove" "heartbeat" ~kv
          end
        end
      in
      let rec supervise () =
        log_heartbeat ();
        (* launch every eligible pending task while a slot is free *)
        let now = Obs.Clock.now_s () in
        let eligible, waiting =
          List.partition (fun (_, _, _, nb) -> nb <= now) !pending
        in
        let free = max 0 (max 1 jobs - List.length !running) in
        let to_start, overflow =
          if List.length eligible <= free then (eligible, [])
          else
            let rec split n = function
              | rest when n = 0 -> ([], rest)
              | [] -> ([], [])
              | x :: rest ->
                  let a, b = split (n - 1) rest in
                  (x :: a, b)
            in
            split free eligible
        in
        pending := waiting @ overflow;
        List.iter spawn to_start;
        if !running <> [] then begin
          let res_fds =
            List.filter_map
              (fun (_, _, _, _, res_rd, _, _, res_eof, _, _, _, _) ->
                if !res_eof then None else Some res_rd)
              !running
          and hb_fds =
            List.filter_map
              (fun (_, _, _, _, _, hb_rd, _, _, hb_eof, _, _, _) ->
                if !hb_eof then None else Some hb_rd)
              !running
          in
          let readable, _, _ =
            try Unix.select (res_fds @ hb_fds) [] [] 0.2
            with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
          in
          let now = Obs.Clock.now_s () in
          List.iter
            (fun ((_, _, _, pid, res_rd, hb_rd, buf, res_eof, hb_eof,
                   last_beat, kill_after, killed) as _slot) ->
              if (not !hb_eof) && List.memq hb_rd readable then begin
                match Unix.read hb_rd hb_scratch 0 (Bytes.length hb_scratch) with
                | 0 ->
                    hb_eof := true;
                    Unix.close hb_rd
                | _ -> last_beat := now
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              end;
              if (not !res_eof) && List.memq res_rd readable then begin
                match Unix.read res_rd chunk 0 (Bytes.length chunk) with
                | 0 ->
                    res_eof := true;
                    Unix.close res_rd
                | n -> Buffer.add_subbytes buf chunk 0 n
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              end;
              (* watchdogs: a worker past its deadline + grace, or one
                 whose heartbeat went quiet, is presumed wedged *)
              if (not !res_eof) && !killed = None then begin
                (match kill_after with
                | Some t when now >= t ->
                    killed := Some "deadline watchdog";
                    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
                | _ -> ());
                if
                  !killed = None
                  && (not !hb_eof)
                  && now -. !last_beat > stall_after
                then begin
                  killed :=
                    Some
                      (Printf.sprintf "stalled: no heartbeat for %.0fs"
                         stall_after);
                  try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()
                end
              end;
              ignore pid)
            !running;
          (* a closed result pipe means the child wrote everything it
             ever will: settle it *)
          let done_, still =
            List.partition
              (fun (_, _, _, _, _, _, _, res_eof, _, _, _, _) -> !res_eof)
              !running
          in
          running := still;
          List.iter finish_worker done_;
          supervise ()
        end
        else if !pending <> [] then begin
          (* everything eligible is in backoff: sleep to the earliest *)
          let next =
            List.fold_left
              (fun acc (_, _, _, nb) -> Float.min acc nb)
              infinity !pending
          in
          let dt = Float.max 0.01 (next -. Obs.Clock.now_s ()) in
          Unix.sleepf (Float.min dt 0.2);
          supervise ()
        end
      in
      supervise ();
      (* -------- serial fallbacks ------------------------------------ *)
      let fallback_results =
        List.rev_map
          (fun (idx, shard) ->
            Obs.add_int "prove.worker_fallbacks" 1;
            Obs.Log.event ~level:Obs.Log.Warn ~stage:"prove" ~shard:idx
              "worker-fallback"
              ~kv:[ ("candidates", Obs.Int (List.length shard)) ];
            let fates = if want_fates then Some (Hashtbl.create 64) else None in
            let proved, st =
              Obs.with_span ~cat:"worker"
                (Printf.sprintf "fallback-%d" idx)
                (fun () ->
                  (* bill the in-process fallback to the shard it covers *)
                  Obs.Attr.set_shard (Some idx);
                  Fun.protect
                    ~finally:(fun () -> Obs.Attr.set_shard None)
                    (fun () ->
                      prove
                        ~options:(worker_options (List.length shard))
                        ~known:solver_known
                        ~hypotheses:(hypotheses_for (List.nth shard_tbls idx))
                        ?fates ~assume d shard))
            in
            Option.iter
              (fun cp -> cp (shard_fingerprint shard) proved)
              checkpoint;
            let w_fates =
              match fates with
              | None -> []
              | Some f -> Hashtbl.fold (fun c v acc -> (c, v) :: acc) f []
            in
            (idx, proved, st, w_fates))
          !fallback_tasks
      in
      let worker_seconds = Obs.Clock.now_s () -. t_fork in
      let workers = List.length shards in
      let worker_failures = List.rev !failures in
      let worker_times =
        List.rev_map (fun (idx, r) -> (idx, r.w_wall_s, r.w_cpu_s)) !ok_results
      in
      (* fold worker telemetry into this process: spans appear under the
         worker's own pid in the trace, counters into the global table,
         histogram samples into the matching distributions *)
      List.iter
        (fun (_, r) ->
          Obs.inject r.w_events;
          Obs.merge_counters r.w_counters;
          Obs.merge_histogram_samples r.w_hists;
          Obs.Attr.merge r.w_attr)
        !ok_results;
      (* provenance: each fresh candidate's fate, tagged with the shard
         that decided it *)
      if want_fates then begin
        List.iter
          (fun (idx, r) ->
            List.iter
              (fun (cand, v) -> attribute cand v (Some idx) false)
              r.w_fates)
          !ok_results;
        List.iter
          (fun (idx, _, _, w_fates) ->
            List.iter
              (fun (cand, v) -> attribute cand v (Some idx) false)
              w_fates)
          fallback_results;
        (* a recovered shard carries only its proved set; its dropped
           candidates keep the honest "settled by a prior run" tag *)
        List.iter
          (fun (idx, shard, proved) ->
            let proved_tbl = Hashtbl.create 64 in
            List.iter (fun c -> Hashtbl.replace proved_tbl c ()) proved;
            List.iter
              (fun cand ->
                attribute cand
                  (if Hashtbl.mem proved_tbl cand then
                     V_proved { k = max 1 options.k }
                   else V_dropped "resumed")
                  (Some idx) false)
              shard)
          recovered_results
      end;
      let surv_tbl = Hashtbl.create 64 in
      List.iter
        (fun (_, r) ->
          List.iter (fun c -> Hashtbl.replace surv_tbl c ()) r.w_proved)
        !ok_results;
      List.iter
        (fun (_, proved, _, _) ->
          List.iter (fun c -> Hashtbl.replace surv_tbl c ()) proved)
        fallback_results;
      List.iter
        (fun (_, _, proved) ->
          List.iter (fun c -> Hashtbl.replace surv_tbl c ()) proved)
        recovered_results;
      let survivors = List.filter (Hashtbl.mem surv_tbl) work in
      (* join round: one serial mutual-induction fixpoint over the union
         of shard survivors.  Workers over-assume (every other shard's
         candidates as step hypotheses), so their survivor union is a
         superset of the serial fixpoint; the greatest fixpoint of a
         superset that still contains it is the same set, so this round
         restores exact agreement with the serial prover.  Recovered
         shards were proved by an identical worker in a prior run, so
         the argument covers them unchanged. *)
      let join_fates = if want_fates then Some (Hashtbl.create 64) else None in
      let joined, jst =
        Obs.with_span ~cat:"prove" "join-round" (fun () ->
            prove ~options ?cex ~known:solver_known ?fates:join_fates ~assume d
              survivors)
      in
      (* the join round has the final word on shard survivors; keep the
         shard tag from the worker that carried the candidate there *)
      (match (join_fates, attributions) with
      | Some jf, Some tbl ->
          Hashtbl.iter
            (fun cand v ->
              match Hashtbl.find_opt tbl cand with
              | Some prev -> Hashtbl.replace tbl cand { prev with verdict = v }
              | None ->
                  Hashtbl.replace tbl cand
                    { verdict = v; shard = None; cache_hit = false })
            jf
      | _ -> ());
      let shard_stats =
        List.rev_map (fun (_, r) -> r.w_stats) !ok_results
        @ List.rev_map (fun (_, _, st, _) -> st) fallback_results
      in
      let sum f = List.fold_left (fun acc s -> acc + f s) 0 shard_stats in
      let any f = List.exists f shard_stats in
      let st =
        {
          jst with
          sat_calls = jst.sat_calls + sum (fun s -> s.sat_calls);
          conflicts = jst.conflicts + sum (fun s -> s.conflicts);
          decisions = jst.decisions + sum (fun s -> s.decisions);
          propagations = jst.propagations + sum (fun s -> s.propagations);
          rounds = jst.rounds + sum (fun s -> s.rounds);
          budget_exhausted =
            jst.budget_exhausted || any (fun s -> s.budget_exhausted);
          deadline_exceeded =
            jst.deadline_exceeded || any (fun s -> s.deadline_exceeded);
        }
      in
      finish ~proved:joined ~st ~workers ~worker_failures
        ~worker_retries:!n_retries
        ~worker_fallbacks:(List.length fallback_results) ~resumed_shards
        ~worker_times ~shard_sizes:(List.map List.length shards)
        ~worker_seconds
    end
  end
