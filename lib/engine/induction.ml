module D = Netlist.Design
module S = Sat.Solver
module L = Sat.Lit

type options = {
  k : int;
  call_conflict_budget : int;
  total_conflict_budget : int;
  time_budget_s : float;
}

let default_options =
  { k = 1; call_conflict_budget = 200_000; total_conflict_budget = -1;
    time_budget_s = -1. }

type stats = {
  n_candidates : int;
  n_proved : int;
  sat_calls : int;
  conflicts : int;
  rounds : int;
  budget_exhausted : bool;
  deadline_exceeded : bool;
}

let pp_stats fmt s =
  Format.fprintf fmt
    "candidates=%d proved=%d sat_calls=%d conflicts=%d rounds=%d%s%s"
    s.n_candidates s.n_proved s.sat_calls s.conflicts s.rounds
    (if s.budget_exhausted then " (budget exhausted)" else "")
    (if s.deadline_exceeded then " (deadline exceeded)" else "")

(* A candidate's claim at a given frame, as (clause to assert it under a
   guard) and (literal implying its violation). *)
let claim_clause u ~frame ~guard = function
  | Candidate.Const (n, b) ->
      let l = Unroll.lit u ~frame n in
      [ L.negate guard; (if b then l else L.negate l) ]
  | Candidate.Implies { a; b; _ } ->
      [ L.negate guard;
        L.negate (Unroll.lit u ~frame a);
        Unroll.lit u ~frame b ]

(* violation literal: true in a model ⇒ the candidate fails at [frame] *)
let violation_lit u ~frame = function
  | Candidate.Const (n, b) ->
      let l = Unroll.lit u ~frame n in
      if b then L.negate l else l
  | Candidate.Implies { a; b; _ } ->
      let s = Unroll.solver u in
      let v = L.pos (S.new_var s) in
      S.add_clause s [ L.negate v; Unroll.lit u ~frame a ];
      S.add_clause s [ L.negate v; L.negate (Unroll.lit u ~frame b) ];
      v

(* does the candidate hold at [frame] in the current model? *)
let holds_in_model u ~frame = function
  | Candidate.Const (n, b) -> S.lit_value (Unroll.solver u) (Unroll.lit u ~frame n) = b
  | Candidate.Implies { a; b; _ } ->
      (not (S.lit_value (Unroll.solver u) (Unroll.lit u ~frame a)))
      || S.lit_value (Unroll.solver u) (Unroll.lit u ~frame b)

type side = {
  u : Unroll.t;
  viol : L.t array;          (* aggregated violation literal per candidate *)
  check_frames : int list;   (* frames where claims are checked *)
  hyp_actives : L.t array option;  (* step side only: hypothesis guards *)
}

let or_lits u lits =
  match lits with
  | [ l ] -> l
  | _ ->
      let s = Unroll.solver u in
      let v = L.pos (S.new_var s) in
      (* v -> (l1 | l2 | ...): enough for the "model implies violation"
         direction that the kill loop relies on *)
      S.add_clause s (L.negate v :: lits);
      v

let build_side d ~assume ~init ~n_frames ~check_frames ~with_hypothesis candidates =
  let solver = S.create () in
  let u = Unroll.create solver d ~init in
  for _ = 1 to n_frames do
    Unroll.add_frame u
  done;
  for f = 0 to n_frames - 1 do
    S.add_clause solver [ Unroll.lit u ~frame:f assume ]
  done;
  let hyp_actives =
    if not with_hypothesis then None
    else begin
      let guards =
        Array.map
          (fun cand ->
            let g = L.pos (S.new_var solver) in
            for f = 0 to n_frames - 2 do
              S.add_clause solver (claim_clause u ~frame:f ~guard:g cand)
            done;
            g)
          candidates
      in
      Some guards
    end
  in
  let viol =
    Array.map
      (fun cand ->
        or_lits u (List.map (fun f -> violation_lit u ~frame:f cand) check_frames))
      candidates
  in
  { u; viol; check_frames; hyp_actives }

exception Out_of_budget

(* One pass over a side: eliminate alive candidates violated on this
   side until UNSAT (all alive jointly hold).  Returns true if any
   candidate was killed. *)
let run_pass side ~alive ~candidates ~opts ~sat_calls ~budget_left ~deadline
    ~deadline_hit ~on_kill =
  let solver = Unroll.solver side.u in
  let killed_any = ref false in
  let alive_indices () =
    let acc = ref [] in
    Array.iteri (fun i a -> if a then acc := i :: !acc) alive;
    !acc
  in
  let assumptions_base () =
    match side.hyp_actives with
    | None -> []
    | Some guards -> List.map (fun i -> guards.(i)) (alive_indices ())
  in
  let kill_from_model () =
    let n_killed = ref 0 in
    Array.iteri
      (fun i a ->
        if a then
          let ok =
            List.for_all
              (fun f -> holds_in_model side.u ~frame:f candidates.(i))
              side.check_frames
          in
          if not ok then begin
            alive.(i) <- false;
            incr n_killed
          end)
      alive;
    !n_killed
  in
  let budgeted_solve assumptions =
    incr sat_calls;
    let before = S.num_conflicts solver in
    let budget =
      let b = opts.call_conflict_budget in
      match !budget_left with
      | None -> b
      | Some total -> if b < 0 then total else min b total
    in
    let r = S.solve ~assumptions ~conflict_budget:budget ?deadline solver in
    (match (r, deadline) with
    | S.Unknown, Some t when Unix.gettimeofday () >= t -> deadline_hit := true
    | _ -> ());
    let spent = S.num_conflicts solver - before in
    (match !budget_left with
    | None -> ()
    | Some total ->
        let remaining = total - spent in
        if remaining <= 0 then raise Out_of_budget;
        budget_left := Some remaining);
    r
  in
  let rec aggregate_loop () =
    match alive_indices () with
    | [] -> ()
    | idxs ->
        let r_var = L.pos (S.new_var solver) in
        S.add_clause solver
          (L.negate r_var :: List.map (fun i -> side.viol.(i)) idxs);
        (match budgeted_solve (r_var :: assumptions_base ()) with
        | S.Sat ->
            let n = kill_from_model () in
            killed_any := true;
            if n > 0 then on_kill ();
            if n = 0 then
              (* the model satisfied only spurious violation literals of
                 implication candidates; fall back to individual checks *)
              individual_loop idxs
            else aggregate_loop ()
        | S.Unsat -> ()
        | S.Unknown -> individual_loop idxs)
  and individual_loop idxs =
    List.iter
      (fun i ->
        if alive.(i) then
          match budgeted_solve (side.viol.(i) :: assumptions_base ()) with
          | S.Sat ->
              ignore (kill_from_model ());
              alive.(i) <- false;
              killed_any := true;
              on_kill ()
          | S.Unsat -> ()
          | S.Unknown ->
              (* inconclusive: conservatively drop *)
              alive.(i) <- false;
              killed_any := true)
      idxs
  in
  aggregate_loop ();
  !killed_any

let prove ?(options = default_options) ?cex ~assume d candidate_list =
  let candidates = Array.of_list candidate_list in
  let n = Array.length candidates in
  let alive = Array.make n true in
  let sat_calls = ref 0 in
  (* counterexample propagation: replay each CEX state forward in the
     bit-parallel simulator to mass-kill non-inductive candidates that
     would otherwise each cost their own SAT query *)
  let cex_sim =
    match cex with
    | None -> None
    | Some _ -> Some (Netlist.Sim64.create d, Random.State.make [| 0xCE11 |])
  in
  let cex_propagate side () =
    match cex, cex_sim with
    | Some (stimulus, cycles), Some (sim, rng) ->
        let u = side.u in
        let solver = Unroll.solver u in
        let frame = List.fold_left max 0 side.check_frames in
        Netlist.Sim64.load_state sim (fun nnet ->
            if S.lit_value solver (Unroll.lit u ~frame nnet) then -1L else 0L);
        let inputs = D.inputs d in
        let random_word () =
          Int64.logor
            (Int64.of_int (Random.State.bits rng))
            (Int64.logor
               (Int64.shift_left (Int64.of_int (Random.State.bits rng)) 30)
               (Int64.shift_left (Int64.of_int (Random.State.bits rng)) 60))
        in
        for _ = 1 to cycles do
          let driven = stimulus.Stimulus.drive rng in
          let driven_nets = List.map fst driven in
          List.iter
            (fun (_, nnet) ->
              if not (List.mem nnet driven_nets) then
                Netlist.Sim64.set_input sim nnet (random_word ()))
            inputs;
          List.iter (fun (nnet, v) -> Netlist.Sim64.set_input sim nnet v) driven;
          Netlist.Sim64.eval sim;
          let mask = Netlist.Sim64.read sim assume in
          if mask <> 0L then
            Array.iteri
              (fun i cand ->
                if alive.(i) then
                  let viol =
                    match cand with
                    | Candidate.Const (nnet, true) ->
                        Int64.logand mask
                          (Int64.lognot (Netlist.Sim64.read sim nnet))
                    | Candidate.Const (nnet, false) ->
                        Int64.logand mask (Netlist.Sim64.read sim nnet)
                    | Candidate.Implies { a; b; _ } ->
                        Int64.logand mask
                          (Int64.logand (Netlist.Sim64.read sim a)
                             (Int64.lognot (Netlist.Sim64.read sim b)))
                  in
                  if viol <> 0L then alive.(i) <- false)
              candidates;
          Netlist.Sim64.step sim
        done
    | _ -> ()
  in
  let budget_left =
    ref
      (if options.total_conflict_budget < 0 then None
       else Some options.total_conflict_budget)
  in
  let deadline =
    if options.time_budget_s > 0. then
      Some (Unix.gettimeofday () +. options.time_budget_s)
    else None
  in
  let deadline_hit = ref false in
  let k = max 1 options.k in
  let base =
    build_side d ~assume ~init:`Reset ~n_frames:k
      ~check_frames:(List.init k (fun i -> i))
      ~with_hypothesis:false candidates
  in
  let step =
    build_side d ~assume ~init:`Free ~n_frames:(k + 1) ~check_frames:[ k ]
      ~with_hypothesis:true candidates
  in
  let rounds = ref 0 in
  let exhausted = ref false in
  (try
     let continue = ref true in
     while !continue do
       incr rounds;
       let kb =
         run_pass base ~alive ~candidates ~opts:options ~sat_calls ~budget_left
           ~deadline ~deadline_hit ~on_kill:(cex_propagate base)
       in
       let ks =
         run_pass step ~alive ~candidates ~opts:options ~sat_calls ~budget_left
           ~deadline ~deadline_hit ~on_kill:(cex_propagate step)
       in
       continue := kb || ks
     done
   with Out_of_budget ->
     exhausted := true;
     Array.fill alive 0 n false);
  let proved = ref [] in
  for i = n - 1 downto 0 do
    if alive.(i) then proved := candidates.(i) :: !proved
  done;
  let conflicts =
    S.num_conflicts (Unroll.solver base.u) + S.num_conflicts (Unroll.solver step.u)
  in
  ( !proved,
    {
      n_candidates = n;
      n_proved = List.length !proved;
      sat_calls = !sat_calls;
      conflicts;
      rounds = !rounds;
      budget_exhausted = !exhausted;
      deadline_exceeded = !deadline_hit;
    } )
