(** Replayable counterexamples.

    A counterexample is an input trace from reset: one boolean per
    primary input per cycle.  It is solver-independent — the refinement
    stage extracts one from the killing simulation lane, the induction
    stage from a SAT model of the base case — and replayable: driving
    the trace into {!Netlist.Sim64} from reset reproduces the violation
    deterministically, and {!dump} renders it as a VCD waveform that
    shows {e why} a candidate invariant was refuted. *)

type t = {
  inputs : Netlist.Design.net array;
      (** primary inputs, in driving order; [frames.(c).(i)] drives
          [inputs.(i)] on cycle [c] *)
  frames : bool array array;
}

val length : t -> int
(** Number of cycles in the trace (at least 1 for a valid trace). *)

val of_inputs : Netlist.Design.t -> bool array array -> t
(** Pair a frame matrix with the design's primary inputs (in
    {!Netlist.Design.inputs} order).  @raise Invalid_argument if a
    frame's width does not match the input count. *)

val replay :
  ?on_frame:(Netlist.Sim64.t -> int -> unit) -> Netlist.Design.t -> t ->
  Netlist.Sim64.t
(** Simulate the trace from reset.  Each boolean is broadcast to all
    64 lanes; per cycle: drive inputs, [eval], call [on_frame sim c],
    then clock ([step]) — except after the last frame, so the returned
    simulator is settled {e at} the final cycle, where the violation
    (if any) is visible. *)

val violates : Netlist.Design.t -> t -> Candidate.t -> bool
(** Does replaying the trace end in a state refuting the candidate?
    The ground-truth check used by tests and by the self-test harness
    before trusting a counterexample enough to report it. *)

val dump :
  ?extra:(string * Netlist.Design.net array) list ->
  path:string -> Netlist.Design.t -> t -> unit
(** Replay and write a VCD waveform: all primary inputs plus the
    [extra] labelled nets (e.g. the nets of the refuted candidate),
    one sample per cycle.  Creates/overwrites [path]. *)

val nets_of_candidate : Netlist.Design.t -> Candidate.t -> (string * Netlist.Design.net array) list
(** The candidate's nets as labelled 1-bit signals, ready to pass as
    [extra] to {!dump} so the waveform shows the violated relation. *)
