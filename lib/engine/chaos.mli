(** Deterministic fault/chaos injection hooks, driven by environment
    variables so they reach forked proof workers without plumbing.

    [PDAT_CHAOS] holds a comma-separated list of fault specs:

    - ["worker-kill"] / ["worker-kill:<i>"] — the matching proof worker
      (every worker, or worker [i]) SIGKILLs itself at the start of its
      shard, {e first attempt only}: the supervisor's retry must
      succeed, which is exactly the property the chaos matrix asserts.
    - ["cache-trunc"] — the first proof-cache scope file flushed by this
      process is truncated to half its size right after the atomic
      rename (one-shot), simulating a torn write that the per-entry
      CRCs must catch on the next open.
    - ["sigterm:<stage>"] — the process sends itself SIGTERM when the
      named pipeline stage starts (one-shot), simulating an operator
      kill; a journaled run must be resumable afterwards.
    - ["slow-solver"] / ["slow-solver:<sec>"] — every SAT solve sleeps
      for [<sec>] (default 0.002) seconds first: the synthetic
      regression the CI perf gate proves it can catch.  Implemented in
      [Sat.Solver] (the sat layer cannot depend on this module), listed
      here because [PDAT_CHAOS] is the single chaos surface.

    The legacy test hooks keep working and live here too:
    [PDAT_KILL_WORKER=<i>] makes worker [i] [_exit 3] before proving
    (first attempt only), [PDAT_SLOW_WORKER=<i>:<sec>] delays worker
    [i].  All hooks are inert when their variables are unset — the
    production path pays one [getenv] per injection point. *)

val worker_kill_requested : idx:int -> attempt:int -> [ `No | `Exit3 | `Sigkill ]
(** What, if anything, the worker [idx] on [attempt] should do to
    itself before proving.  [`Exit3] comes from [PDAT_KILL_WORKER],
    [`Sigkill] from the ["worker-kill"] chaos spec; both fire only on
    [attempt = 0]. *)

val worker_delay : idx:int -> unit
(** Sleep if [PDAT_SLOW_WORKER] targets this worker. *)

val cache_truncate : path:string -> bool
(** If ["cache-trunc"] is armed and unspent, truncate the file at
    [path] to half its size, spend the one-shot, and return true. *)

val stage_sigterm : string -> unit
(** If ["sigterm:<stage>"] is armed for this stage name and unspent,
    spend the one-shot and send SIGTERM to the current process (the
    default disposition terminates it). *)

val reset : unit -> unit
(** Re-arm the process-local one-shots (for tests that run several
    scenarios in one process). *)
