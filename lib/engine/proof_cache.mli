(** Content-addressed invariant cache for the proof engine.

    Mutual induction proves that each surviving candidate holds on every
    state reachable under the environment assumption — a semantic fact
    about the (netlist, assumption, candidate) triple that is
    independent of which other candidates happened to be in the set.
    That makes proved verdicts safely reusable across runs: a later run
    over the same netlist and assumption may take every cached [Proved]
    candidate as a known invariant and skip its SAT work entirely.

    [Disproved] records a candidate that a completed proof run dropped
    (refuted or inconclusive).  Re-dropping it on a warm run is always
    sound — dropping candidates never breaks soundness, it only skips an
    optimization — and reproduces the cold run's result exactly.
    Verdicts from runs cut short by budgets, deadlines or worker crashes
    are never recorded (see {!Induction.prove_parallel}).

    Keys are content hashes: a [scope] digests the full cell list
    (kind, fanin nets, output net, reset value), the port declarations
    and the assumption net, so any structural change — one cell swapped,
    one wire moved — yields a different scope and a cold cache.  Within
    a scope, candidates address entries by their own structural
    rendering.  Net ids are meaningful inside a scope because the scope
    digest pins the exact netlist that defines them.

    A cache is in-memory by default; give it a directory and [flush]
    persists each scope to one file, loaded back lazily on first use.
    Damaged files (bad header, bad record, missing or wrong trailer) are
    detected, counted, and treated as a cold cache — never an error. *)

type t

type verdict = Proved | Disproved

type scope
(** A (design, assumption) universe of entries. *)

type stats = {
  hits : int;     (** lookups answered from the cache *)
  misses : int;   (** lookups that found nothing *)
  stored : int;   (** new entries recorded *)
  corrupt_files : int;  (** damaged scope files treated as cold *)
}

val create : ?dir:string -> unit -> t
(** [dir], if given, enables disk persistence under that directory
    (created if missing).  Without it the cache lives and dies with the
    process. *)

val dir : t -> string option

val scope : t -> design:Netlist.Design.t -> assume:Netlist.Design.net -> scope
(** Digests the design and assumption.  If the cache is disk-backed and
    this scope has a file, it is loaded now (damaged files count in
    [corrupt_files] and yield an empty scope). *)

val find : t -> scope -> Candidate.t -> verdict option

val record : t -> scope -> Candidate.t -> verdict -> unit
(** Last write wins; recording the already-present verdict is a no-op. *)

val flush : t -> unit
(** Writes every modified scope to disk (atomically, via rename).
    No-op for in-memory caches. *)

val stats : t -> stats

val reset_counters : t -> unit
(** Zeroes [hits]/[misses]/[stored]/[corrupt_files] without touching
    entries — lets tests and benches meter a single run. *)
