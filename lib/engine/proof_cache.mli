(** Content-addressed invariant cache for the proof engine.

    Mutual induction proves that each surviving candidate holds on every
    state reachable under the environment assumption — a semantic fact
    about the (netlist, assumption, candidate) triple that is
    independent of which other candidates happened to be in the set.
    That makes proved verdicts safely reusable across runs: a later run
    over the same netlist and assumption may take every cached [Proved]
    candidate as a known invariant and skip its SAT work entirely.

    [Disproved] records a candidate that a completed proof run dropped
    (refuted or inconclusive).  Re-dropping it on a warm run is always
    sound — dropping candidates never breaks soundness, it only skips an
    optimization — and reproduces the cold run's result exactly.
    Verdicts from runs cut short by budgets or deadlines are never
    recorded (see {!Induction.prove_parallel}).

    Keys are content hashes: a [scope] digests the full cell list
    (kind, fanin nets, output net, reset value), the port declarations
    and the assumption net, so any structural change — one cell swapped,
    one wire moved — yields a different scope and a cold cache.  Within
    a scope, candidates address entries by {!Candidate.key}.  Net ids
    are meaningful inside a scope because the scope digest pins the
    exact netlist that defines them.

    A cache is in-memory by default; give it a directory and [flush]
    persists each scope to one file, loaded back lazily on first use.

    {2 Crash and concurrency hardening}

    The on-disk format is versioned ([pdat-proof-cache v2]) and every
    entry line carries its own CRC-32, so a torn or truncated write is
    localized: on the next open the valid prefix is salvaged, the
    damaged file is moved into [<dir>/quarantine/] for diagnosis, and
    the salvaged entries are rewritten clean on the next [flush].
    Flushes build the new file under a pid-unique [*.tmp] name and
    rename it into place; stale tmp files left by crashed writers are
    swept on [create].  All directory mutations take an exclusive
    [lockf] lock on [<dir>/.lock], so processes sharing a cache
    directory serialize their writes.  With [max_bytes], each flush
    evicts oldest-mtime scope files until the directory fits. *)

type t

type verdict = Proved | Disproved

type scope
(** A (design, assumption) universe of entries. *)

type stats = {
  hits : int;     (** lookups answered from the cache *)
  misses : int;   (** lookups that found nothing *)
  stored : int;   (** new entries recorded *)
  corrupt_files : int;  (** damaged scope files quarantined *)
  salvaged_entries : int;  (** CRC-valid entries recovered from them *)
  evicted_files : int;  (** scope files removed by size eviction *)
}

val create : ?dir:string -> ?max_bytes:int -> unit -> t
(** [dir], if given, enables disk persistence under that directory
    (created if missing; stale [*.tmp] files from crashed writers are
    removed).  [max_bytes] bounds the total size of scope files in the
    directory — enforced at [flush] by evicting oldest-mtime files
    first.  Without [dir] the cache lives and dies with the process. *)

val dir : t -> string option

val scope_digest :
  ?salt:string -> Netlist.Design.t -> assume:Netlist.Design.net -> string
(** The raw content hash of a (design, assumption) pair — also used by
    the run journal to pin a run to its exact netlist.  [salt] folds
    extra context into the hash; the prover passes the absint facts
    digest so strengthened runs get a scope of their own (a [Disproved]
    entry recorded without strengthening must never short-circuit a run
    that could prove the candidate with it, and vice versa). *)

val scope :
  ?salt:string ->
  t ->
  design:Netlist.Design.t ->
  assume:Netlist.Design.net ->
  scope
(** Digests the design and assumption.  If the cache is disk-backed and
    this scope has a file, it is loaded now (damaged files count in
    [corrupt_files], salvage their valid prefix, and are quarantined). *)

val find : t -> scope -> Candidate.t -> verdict option

val record : t -> scope -> Candidate.t -> verdict -> unit
(** Last write wins; recording the already-present verdict is a no-op. *)

val flush : t -> unit
(** Writes every modified scope to disk (atomically, via a pid-unique
    tmp file and rename, under the directory lock), then applies the
    [max_bytes] eviction if configured.  No-op for in-memory caches. *)

val stats : t -> stats

val reset_counters : t -> unit
(** Zeroes all counters without touching entries — lets tests and
    benches meter a single run. *)
