(** Abstract interpretation over the sequential netlist — the static
    prover tier.

    The domain is a product: per-net ternary values (the {!Ternary}
    lattice, generalised from its one-shot use), per-bus known-bits
    masks and unsigned intervals derived from them.  The interpreter
    runs the per-cell ternary transfer functions to a fixpoint over
    register state, {e conditioned on the environment assumption}: at
    every step the abstract state is refined by forward re-evaluation
    and backward per-cell constraint propagation under [assume = 1],
    which is what lets it see facts plain ternary reachability cannot
    (instruction bits forced by the monitor, rename-table valid bits
    that only stay down because the assumption holds on every cycle).

    Soundness argument, in one paragraph: the per-net value array is a
    cube over-approximating the set of states reachable when the
    assumption holds at every cycle — exactly the state space the
    inductive prover explores, which asserts [assume] at every frame.
    The transfer functions over-approximate concrete cell evaluation;
    backward conditioning only forces a net when {e every} completion
    of the unknown inputs that satisfies the required output agrees,
    and the enumerated completion set itself over-approximates the
    concrete one (cartesian abstraction), so a forced value holds in
    every concrete state of the cube satisfying the constraint.  Each
    per-bit state lattice has height 2, so the join-based widening
    terminates in at most [2 * flops] iterations.  A conditioning
    contradiction means no state in the cube satisfies the assumption;
    the engine then degrades to claiming nothing ({!contradiction}),
    which is conservative.

    Facts exported here feed the prover three ways: {!proves} backs the
    [V_static_proved] verdict (no SAT call), {!facts} become assumption
    clauses at every frame of the incremental solvers (strengthening
    k=1 induction), and {!facts_digest} salts proof-cache scopes and
    shard fingerprints so strengthened runs never share journal or
    cache entries with unstrengthened ones. *)

type word_fact = {
  w_base : string;  (** bus name, from ["base\[i\]"] net names *)
  w_width : int;
  w_known_mask : int64;  (** bit i set iff bit i has a definite value *)
  w_known_value : int64;  (** definite bits; zero where unknown *)
  w_lo : int64;  (** unsigned interval low end (unknown bits as 0) *)
  w_hi : int64;  (** unsigned interval high end (unknown bits as 1) *)
}

type t

val run :
  ?classify:(Netlist.Design.net -> Ternary.input_class) ->
  ?max_iterations:int ->
  assume:Netlist.Design.net ->
  Netlist.Design.t ->
  t
(** Run the interpreter to its fixpoint.  [classify] defaults to every
    primary input [Free]; environment structure is normally conveyed
    through [assume] (the monitor's output net) instead.
    @raise Netlist.Topo.Combinational_cycle on cyclic designs.
    @raise Failure if the fixpoint does not converge within
    [max_iterations] (impossible at the default bound). *)

val iterations : t -> int
(** Sequential fixpoint iterations taken. *)

val contradiction : t -> bool
(** True when conditioning found the assumption unsatisfiable in the
    abstract cube.  All queries below then claim nothing. *)

val value : t -> Netlist.Design.net -> int
(** Post-fixpoint conditioned value of a net: [0], [1] or {!Ternary.x}. *)

val constants : t -> Candidate.t list
(** Nets forced constant in every reachable state satisfying the
    assumption, as candidates (rails and primary inputs excluded,
    matching {!Ternary.constants}). *)

val facts : t -> Candidate.t list
(** The strengthening set: invariants sound to assume at every frame of
    an inductive proof under the same [assume].  Currently
    [constants]. *)

val n_facts : t -> int

val proves : t -> Candidate.t -> bool
(** [true] iff the candidate's violation is impossible in the abstract
    post-fixpoint: constants by direct lookup, implications by
    conditioning the post-fixpoint cube on the antecedent. *)

val facts_digest : t -> string
(** Hex digest of the exported facts (and the contradiction flag) —
    the salt for proof-cache scopes and shard fingerprints. *)

val word_facts : t -> word_fact list
(** Known-bits masks and unsigned intervals for every named bus
    (["base\[i\]"] nets, input and output ports), widest buses first in
    name order.  Buses wider than 63 bits are skipped. *)

val stuck_registers : t -> (int * bool) list
(** Flop cell ids whose state never leaves the given value in any
    reachable assumed state — unreachable-FSM-state evidence for the
    lint pass. *)

val dead_writes : t -> (int * bool) list
(** Flop cell ids fed by a [Mux2] whose select is forced to the given
    constant: the other write arm is dead. *)
