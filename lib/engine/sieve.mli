(** Simulation-signature sieve in front of the prover.

    Duplicate work is endemic in mined candidate sets: the same
    implication shows up once per gate that exhibits it, and
    functionally equivalent nets spawn whole families of candidates
    whose SAT checks are interchangeable.  The sieve partitions the
    candidate list into {e pointwise-equivalence classes under the
    environment assumption} — two candidates land in one class only
    when their claim evaluates identically on {b every} net assignment
    with [assume = 1] — so the prover checks one representative per
    class and the verdict transfers to the rest
    ({!Induction.verdict.V_sieved}).

    Pointwise equivalence (not mere signature equality, and not
    subsumption) is what makes the transfer exact: equivalent
    candidates are killed by the same models, contribute logically
    identical induction hypotheses, and therefore survive the mutual
    induction fixpoint together or not at all.  Sieve-on and sieve-off
    runs produce byte-identical proved sets.

    The pipeline is cheap-to-expensive:
    + candidates that are syntactically the same claim (e.g. the same
      implication mined from different cells) merge for free;
    + remaining groups are bucketed by a bit-parallel
      {!Netlist.Sim64} signature — the masked violation word over
      random states and inputs — so only groups the simulator cannot
      tell apart reach SAT;
    + a bucket is confirmed by one-frame combinational equivalence
      checks on a single long-lived solver, one selector-guarded
      difference query per comparison ([h1 ≠ h2] under [assume],
      Unsat ⇒ merge), retired after each query.  [Sat] or [Unknown]
      keeps the group separate — never unsound, only less sieving. *)

type cls = {
  rep : Candidate.t;           (** first class member in input order *)
  members : Candidate.t list;  (** the rest, in input order *)
}

type stats = {
  n_candidates : int;
  n_classes : int;
  n_sieved : int;    (** candidates that ride along: Σ |members| *)
  sat_calls : int;   (** equivalence-confirmation queries *)
  sat_merges : int;  (** merges that needed SAT (vs syntactic) *)
}

val partition :
  ?runs:int ->
  ?cycles:int ->
  ?seed:int ->
  ?conflict_budget:int ->
  assume:Netlist.Design.net ->
  Netlist.Design.t ->
  Candidate.t list ->
  cls list * stats
(** Deterministic for a given (design, candidate list, parameters):
    classes come back in input order of their representatives, members
    in input order within each class.  [runs] × [cycles] (default
    4 × 64) is the signature length; each run starts from a fresh
    random state, so the signature also covers states unreachable from
    reset — required, since the step side of induction quantifies over
    free states.  [conflict_budget] (default 5000) bounds each
    confirmation query. *)
