module D = Netlist.Design
module Cand = Engine.Candidate
module I = Engine.Induction
module P = Provenance

(* ---------------- JSON plumbing ------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ escape s ^ "\""

(* Fixed-precision floats keep the JSON byte-stable: every area in the
   repo is a finite sum of Liberty constants, so two decimals never
   flap between runs. *)
let jarea f = Printf.sprintf "%.2f" f
let jpct f = Printf.sprintf "%.2f" f
let jopt_int = function Some i -> string_of_int i | None -> "null"
let jlist l = "[" ^ String.concat "," l ^ "]"
let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields)
  ^ "}"

(* ---------------- resume provenance --------------------------------- *)

(* Mirrors Pdat.Pipeline.resume_info without depending on the pdat
   library (report sits below it in the dependency order). *)
type resume_summary = {
  rs_journal : string;
  rs_resumed : bool;
  rs_stages : string list;
  rs_shards : int;
  rs_dropped_lines : int;
}

(* ---------------- shared derivations -------------------------------- *)

type status =
  | Refine_killed of Engine.Rsim.kill
  | Prover of I.attribution
  | Unresolved

let status_of (r : P.cand_record) =
  match (r.refine_kill, r.attribution) with
  | Some k, _ -> Refine_killed k
  | None, Some a -> Prover a
  | None, None -> Unresolved

let status_label = function
  | Refine_killed _ -> "refine-killed"
  | Prover a -> I.verdict_label a.I.verdict
  | Unresolved -> "unresolved"

type summary = {
  s_candidates : int;
  s_refine_killed : int;
  s_proved : int;  (* fresh + cached proofs: what rewiring may use *)
  s_refuted : int;
  s_sim_killed : int;
  s_not_inductive : int;
  s_dropped : int;
  s_cached_proved : int;
  s_cached_disproved : int;
  s_sieved_proved : int;
  s_sieved_dropped : int;
  s_static_proved : int;
  s_unresolved : int;
  s_with_cex : int;
}

let summarize records =
  let s =
    ref
      {
        s_candidates = 0;
        s_refine_killed = 0;
        s_proved = 0;
        s_refuted = 0;
        s_sim_killed = 0;
        s_not_inductive = 0;
        s_dropped = 0;
        s_cached_proved = 0;
        s_cached_disproved = 0;
        s_sieved_proved = 0;
        s_sieved_dropped = 0;
        s_static_proved = 0;
        s_unresolved = 0;
        s_with_cex = 0;
      }
  in
  List.iter
    (fun r ->
      let t = !s in
      let t = { t with s_candidates = t.s_candidates + 1 } in
      let t =
        if r.P.cex_file <> None then { t with s_with_cex = t.s_with_cex + 1 }
        else t
      in
      s :=
        (match status_of r with
        | Refine_killed _ -> { t with s_refine_killed = t.s_refine_killed + 1 }
        | Unresolved -> { t with s_unresolved = t.s_unresolved + 1 }
        | Prover a -> (
            match a.I.verdict with
            | I.V_proved _ -> { t with s_proved = t.s_proved + 1 }
            | I.V_refuted _ -> { t with s_refuted = t.s_refuted + 1 }
            | I.V_sim_killed -> { t with s_sim_killed = t.s_sim_killed + 1 }
            | I.V_not_inductive ->
                { t with s_not_inductive = t.s_not_inductive + 1 }
            | I.V_dropped _ -> { t with s_dropped = t.s_dropped + 1 }
            | I.V_cached Engine.Proof_cache.Proved ->
                {
                  t with
                  s_proved = t.s_proved + 1;
                  s_cached_proved = t.s_cached_proved + 1;
                }
            | I.V_cached Engine.Proof_cache.Disproved ->
                { t with s_cached_disproved = t.s_cached_disproved + 1 }
            | I.V_sieved { proved = true; _ } ->
                (* sieve-settled proofs count as proved: the rewiring
                   stage may cite them like any other invariant *)
                {
                  t with
                  s_proved = t.s_proved + 1;
                  s_sieved_proved = t.s_sieved_proved + 1;
                }
            | I.V_sieved { proved = false; _ } ->
                { t with s_sieved_dropped = t.s_sieved_dropped + 1 }
            | I.V_static_proved ->
                (* statically discharged candidates are proofs: the
                   rewiring stage may cite them like any other invariant *)
                {
                  t with
                  s_proved = t.s_proved + 1;
                  s_static_proved = t.s_static_proved + 1;
                })))
    records;
  !s

let via_label = function
  | Analysis.Certificate.Direct -> "direct"
  | Analysis.Certificate.Fresh_inv _ -> "fresh-inv"

let net_label prov n =
  match P.designs prov with
  | Some ds -> D.net_name ds.P.original n
  | None -> Printf.sprintf "n%d" n

(* ---------------- JSON report --------------------------------------- *)

let stats_json st =
  jobj
    [
      ("cells", string_of_int (Netlist.Stats.total_cells st));
      ("gates", string_of_int st.Netlist.Stats.gates);
      ("buffers", string_of_int st.Netlist.Stats.buffers);
      ("flops", string_of_int st.Netlist.Stats.flops);
      ("area", jarea st.Netlist.Stats.area);
      ( "groups",
        jlist
          (List.map
             (fun (g : Netlist.Stats.group) ->
               jobj
                 [
                   ("label", jstr g.Netlist.Stats.label);
                   ("count", string_of_int g.Netlist.Stats.count);
                   ("area", jarea g.Netlist.Stats.area);
                   ( "kinds",
                     jlist
                       (List.map
                          (fun (k, c, a) ->
                            jobj
                              [
                                ("kind", jstr (Netlist.Cell.name k));
                                ("count", string_of_int c);
                                ("area", jarea a);
                              ])
                          g.Netlist.Stats.kinds) );
                 ])
             (Netlist.Stats.groups st)) );
    ]

let delta_rows_json rows =
  jlist
    (List.map
       (fun (r : Netlist.Stats.delta_row) ->
         jobj
           [
             ("kind", jstr (Netlist.Cell.name r.Netlist.Stats.kind));
             ("before", string_of_int r.Netlist.Stats.count_before);
             ("after", string_of_int r.Netlist.Stats.count_after);
             ("area_before", jarea r.Netlist.Stats.area_before);
             ("area_after", jarea r.Netlist.Stats.area_after);
           ])
       rows)

let cand_json prov (r : P.cand_record) =
  let base =
    match r.P.cand with
    | Cand.Const (n, b) ->
        [
          ("id", string_of_int r.P.id);
          ("kind", jstr "const");
          ("net", jstr (net_label prov n));
          ("value", string_of_bool b);
        ]
    | Cand.Implies { cell; a; b } ->
        [
          ("id", string_of_int r.P.id);
          ("kind", jstr "implies");
          ("cell", string_of_int cell);
          ("a", jstr (net_label prov a));
          ("b", jstr (net_label prov b));
        ]
  in
  let mined = [ ("mined_round", jopt_int r.P.mined_round) ] in
  let st = status_of r in
  let status_fields =
    [ ("status", jstr (status_label st)) ]
    @ (match st with
      | Refine_killed k ->
          [
            ("run", string_of_int k.Engine.Rsim.k_run);
            ("cycle", string_of_int k.Engine.Rsim.k_cycle);
            ("lane", string_of_int k.Engine.Rsim.k_lane);
          ]
      | Prover a -> (
          [ ("shard", jopt_int a.I.shard);
            ("cache_hit", string_of_bool a.I.cache_hit) ]
          @
          match a.I.verdict with
          | I.V_proved { k } -> [ ("k", string_of_int k) ]
          | I.V_refuted { frame; cex } ->
              [ ("frame", string_of_int frame) ]
              @ (match cex with
                | Some c -> [ ("cex_frames", string_of_int (Engine.Cex.length c)) ]
                | None -> [])
          | I.V_dropped reason -> [ ("reason", jstr reason) ]
          | I.V_sieved { rep; _ } -> [ ("rep", jstr (Engine.Candidate.key rep)) ]
          | I.V_sim_killed | I.V_not_inductive | I.V_cached _
          | I.V_static_proved ->
              [])
      | Unresolved -> [])
  in
  let cex_field =
    match r.P.cex_file with
    | Some p -> [ ("cex_file", jstr (Filename.basename p)) ]
    | None -> []
  in
  jobj (base @ mined @ status_fields @ cex_field)

let edit_json prov (e : P.edit_record) =
  jobj
    [
      ("index", string_of_int e.P.e_index);
      ("net", jstr (net_label prov e.P.e_edit.Analysis.Certificate.net));
      ("target", jstr (net_label prov e.P.e_edit.Analysis.Certificate.target));
      ("via", jstr (via_label e.P.e_edit.Analysis.Certificate.via));
      ("invariants", jlist (List.map string_of_int e.P.e_invariants));
      ( "dead_cells",
        jlist
          (List.map
             (fun (ci, k) ->
               jobj
                 [
                   ("cell", string_of_int ci);
                   ("kind", jstr (Netlist.Cell.name k));
                 ])
             e.P.e_dead) );
    ]

(* Deterministic projection of a cost row: wall time is deliberately
   omitted (render.mli promises the JSON carries no wall-clock data);
   ranking inside [top_costs] never used it either. *)
let attr_row_json (r : Obs.Attr.row) =
  jobj
    [
      ("key", jstr r.Obs.Attr.a_key);
      ("shard", jopt_int r.Obs.Attr.a_shard);
      ("sat_calls", string_of_int r.Obs.Attr.a_sat_calls);
      ("conflicts", string_of_int r.Obs.Attr.a_conflicts);
      ("core_skips", string_of_int r.Obs.Attr.a_core_skips);
      ("static", string_of_bool r.Obs.Attr.a_static);
    ]

let json ?(target = "design") ?induction ?resume prov =
  let records = P.records prov in
  let s = summarize records in
  let edits = P.edits prov in
  let dead_per_edit =
    List.fold_left (fun acc e -> acc + List.length e.P.e_dead) 0 edits
  in
  let summary_json =
    jobj
      [
        ("candidates", string_of_int s.s_candidates);
        ("refine_killed", string_of_int s.s_refine_killed);
        ("proved", string_of_int s.s_proved);
        ("refuted", string_of_int s.s_refuted);
        ("sim_killed", string_of_int s.s_sim_killed);
        ("not_inductive", string_of_int s.s_not_inductive);
        ("dropped", string_of_int s.s_dropped);
        ("cached_proved", string_of_int s.s_cached_proved);
        ("cached_disproved", string_of_int s.s_cached_disproved);
        ("static_proved", string_of_int s.s_static_proved);
        ("unresolved", string_of_int s.s_unresolved);
        ("with_counterexample", string_of_int s.s_with_cex);
        ("edits", string_of_int (List.length edits));
        ("rewire_dead_cells", string_of_int dead_per_edit);
        ( "unattributed_dead_cells",
          string_of_int (List.length (P.unattributed_dead prov)) );
      ]
  in
  let area_json =
    match P.designs prov with
    | None -> "null"
    | Some ds ->
        let st_orig = Netlist.Stats.of_design ds.P.original in
        let st_rew = Netlist.Stats.of_design ds.P.rewired in
        let st_red = Netlist.Stats.of_design ds.P.reduced in
        let st_base = Netlist.Stats.of_design ds.P.baseline in
        jobj
          [
            ("original", stats_json st_orig);
            ("rewired", stats_json st_rew);
            ("reduced", stats_json st_red);
            ("baseline", stats_json st_base);
            ( "resynth_delta",
              delta_rows_json
                (Netlist.Stats.delta_by_kind ~before:st_rew ~after:st_red) );
            ( "delta_vs_baseline",
              delta_rows_json
                (Netlist.Stats.delta_by_kind ~before:st_base ~after:st_red) );
            ( "area_delta_pct",
              jpct
                (Netlist.Stats.delta_pct
                   ~baseline:st_base.Netlist.Stats.area
                   st_red.Netlist.Stats.area) );
            ( "gate_delta_pct",
              jpct
                (Netlist.Stats.delta_pct
                   ~baseline:
                     (float_of_int (Netlist.Stats.gate_count st_base))
                   (float_of_int (Netlist.Stats.gate_count st_red))) );
          ]
  in
  let costs_fields =
    match induction with
    | None -> []
    | Some (st : I.stats) ->
        [
          ( "costs",
            jobj
              [
                ( "top_candidates",
                  jlist (List.map attr_row_json st.I.top_costs) );
                ( "load_balance",
                  jobj
                    [
                      ("workers", string_of_int st.I.workers);
                      ( "shard_sizes",
                        jlist (List.map string_of_int st.I.shard_sizes) );
                    ] );
              ] );
        ]
  in
  let resume_fields =
    match resume with
    | None -> []
    | Some r ->
        [
          ( "resume",
            jobj
              [
                (* basename only: the run directory is machine-local,
                   and the golden tests require byte-stable output *)
                ("journal", jstr (Filename.basename r.rs_journal));
                ("resumed", if r.rs_resumed then "true" else "false");
                ("replayed_stages", jlist (List.map jstr r.rs_stages));
                ("resumed_shards", string_of_int r.rs_shards);
                ("dropped_lines", string_of_int r.rs_dropped_lines);
              ] );
        ]
  in
  jobj
    ([
       ("schema_version", string_of_int Meta.schema_version);
       ("target", jstr target);
       ("summary", summary_json);
      ("invariants", jlist (List.map (cand_json prov) records));
      ("edits", jlist (List.map (edit_json prov) edits));
      ( "unattributed_dead",
        jlist
          (List.map
             (fun (ci, k) ->
               jobj
                 [
                   ("cell", string_of_int ci);
                   ("kind", jstr (Netlist.Cell.name k));
                 ])
             (P.unattributed_dead prov)) );
      ("area", area_json);
    ]
    @ costs_fields @ resume_fields)
  ^ "\n"

(* ---------------- markdown report ----------------------------------- *)

let cand_pp prov (r : P.cand_record) =
  match r.P.cand with
  | Cand.Const (n, b) ->
      Printf.sprintf "`%s == %d`" (net_label prov n) (if b then 1 else 0)
  | Cand.Implies { a; b; _ } ->
      Printf.sprintf "`%s -> %s`" (net_label prov a) (net_label prov b)

let markdown ?(target = "design") ?(timings = []) ?(histograms = []) ?commit
    ?induction ?resume prov =
  let b = Buffer.create 8192 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let records = P.records prov in
  let s = summarize records in
  let edits = P.edits prov in
  let dead_total =
    List.fold_left (fun acc e -> acc + List.length e.P.e_dead) 0 edits
  in
  pr "# PDAT run report — %s\n\n" target;
  (* --- the paper's table shape: per-stage funnel ------------------- *)
  let mined_rounds =
    List.fold_left
      (fun acc r ->
        match r.P.mined_round with Some x -> max acc x | None -> acc)
      0 records
  in
  pr "## Pipeline funnel\n\n";
  pr "| stage | survivors | detail |\n|---|---|---|\n";
  pr "| mine | %d candidates | last new evidence in rsim round %d |\n"
    s.s_candidates mined_rounds;
  pr "| refine | %d | %d killed in long simulation |\n"
    (s.s_candidates - s.s_refine_killed)
    s.s_refine_killed;
  pr
    "| prove | %d proved | %d refuted, %d not inductive, %d sim-killed, %d \
     dropped; %d/%d from cache |\n"
    s.s_proved s.s_refuted s.s_not_inductive s.s_sim_killed s.s_dropped
    s.s_cached_proved
    (s.s_cached_proved + s.s_cached_disproved);
  if s.s_static_proved > 0 then
    pr "| absint | %d static-proved | discharged without SAT |\n"
      s.s_static_proved;
  pr "| rewire | %d edits | %d original cells made dead |\n"
    (List.length edits) dead_total;
  (match P.designs prov with
  | None -> pr "| resynth | — | design snapshots not recorded |\n\n"
  | Some ds ->
      let st_rew = Netlist.Stats.of_design ds.P.rewired in
      let st_red = Netlist.Stats.of_design ds.P.reduced in
      let st_base = Netlist.Stats.of_design ds.P.baseline in
      pr "| resynth | %d cells | %d cells and %.2f um^2 removed |\n"
        (Netlist.Stats.total_cells st_red)
        (Netlist.Stats.total_cells st_rew - Netlist.Stats.total_cells st_red)
        (st_rew.Netlist.Stats.area -. st_red.Netlist.Stats.area);
      pr "| vs baseline | %.2f%% area, %.2f%% gates | baseline %.2f um^2 → \
          reduced %.2f um^2 |\n"
        (Netlist.Stats.delta_pct ~baseline:st_base.Netlist.Stats.area
           st_red.Netlist.Stats.area)
        (Netlist.Stats.delta_pct
           ~baseline:(float_of_int (Netlist.Stats.gate_count st_base))
           (float_of_int (Netlist.Stats.gate_count st_red)))
        st_base.Netlist.Stats.area st_red.Netlist.Stats.area;
      pr "\n## Area breakdown\n\n";
      pr "| design | cells | gates | buffers | flops | area (um^2) |\n";
      pr "|---|---|---|---|---|---|\n";
      List.iter
        (fun (label, st) ->
          pr "| %s | %d | %d | %d | %d | %.2f |\n" label
            (Netlist.Stats.total_cells st)
            st.Netlist.Stats.gates st.Netlist.Stats.buffers
            st.Netlist.Stats.flops st.Netlist.Stats.area)
        [
          ("original", Netlist.Stats.of_design ds.P.original);
          ("rewired", st_rew);
          ("reduced", st_red);
          ("baseline", st_base);
        ];
      pr "\n### Reduced design by class\n\n";
      pr "| class | kind | count | area (um^2) |\n|---|---|---|---|\n";
      List.iter
        (fun (g : Netlist.Stats.group) ->
          pr "| **%s** | | %d | %.2f |\n" g.Netlist.Stats.label
            g.Netlist.Stats.count g.Netlist.Stats.area;
          List.iter
            (fun (k, c, a) ->
              pr "| | %s | %d | %.2f |\n" (Netlist.Cell.name k) c a)
            g.Netlist.Stats.kinds)
        (Netlist.Stats.groups st_red);
      pr "\n### Per-kind delta (baseline → reduced)\n\n";
      pr "| kind | before | after | Δ |\n|---|---|---|---|\n";
      List.iter
        (fun (r : Netlist.Stats.delta_row) ->
          pr "| %s | %d | %d | %+d |\n"
            (Netlist.Cell.name r.Netlist.Stats.kind)
            r.Netlist.Stats.count_before r.Netlist.Stats.count_after
            (r.Netlist.Stats.count_after - r.Netlist.Stats.count_before))
        (Netlist.Stats.delta_by_kind ~before:st_base ~after:st_red));
  (* --- refuted candidates with replayable waveforms ---------------- *)
  let with_cex =
    List.filter (fun r -> r.P.cex_file <> None) records
  in
  if with_cex <> [] then begin
    pr "\n## Refuted candidates with counterexample waveforms\n\n";
    pr "| id | property | refuted by | waveform |\n|---|---|---|---|\n";
    List.iter
      (fun r ->
        let how =
          match status_of r with
          | Refine_killed k ->
              Printf.sprintf "simulation (run %d, cycle %d, lane %d)"
                k.Engine.Rsim.k_run k.Engine.Rsim.k_cycle k.Engine.Rsim.k_lane
          | Prover { I.verdict = I.V_refuted { frame; _ }; _ } ->
              Printf.sprintf "induction base case (frame %d)" frame
          | st -> status_label st
        in
        pr "| %d | %s | %s | `%s` |\n" r.P.id (cand_pp prov r) how
          (Filename.basename (Option.get r.P.cex_file)))
      with_cex
  end;
  (* --- certificate edits ------------------------------------------- *)
  if edits <> [] then begin
    let cap = 200 in
    pr "\n## Rewire edits\n\n";
    pr "| # | net | target | via | invariant | dead cells |\n";
    pr "|---|---|---|---|---|---|\n";
    List.iteri
      (fun i e ->
        if i < cap then
          pr "| %d | `%s` | `%s` | %s | %s | %d |\n" e.P.e_index
            (net_label prov e.P.e_edit.Analysis.Certificate.net)
            (net_label prov e.P.e_edit.Analysis.Certificate.target)
            (via_label e.P.e_edit.Analysis.Certificate.via)
            (String.concat ", "
               (List.map (fun id -> Printf.sprintf "inv#%d" id)
                  e.P.e_invariants))
            (List.length e.P.e_dead))
      edits;
    if List.length edits > cap then
      pr "\n*(%d further edits omitted — see the JSON report)*\n"
        (List.length edits - cap)
  end;
  (match P.unattributed_dead prov with
  | [] -> ()
  | rest ->
      pr "\n**%d dead cells not attributable to any edit** — \
          this indicates an uncertified netlist change.\n"
        (List.length rest));
  (* --- crash-safety provenance ------------------------------------- *)
  (match resume with
  | None -> ()
  | Some r ->
      pr "\n## Journal\n\n";
      pr "Run journaled to `%s`.\n" r.rs_journal;
      if r.rs_resumed then begin
        pr "\nThis run **resumed** from a prior journal: %d stage(s) \
            replayed%s, %d proof shard(s) settled from checkpoints"
          (List.length r.rs_stages)
          (if r.rs_stages = [] then ""
           else " (" ^ String.concat ", " r.rs_stages ^ ")")
          r.rs_shards;
        if r.rs_dropped_lines > 0 then
          pr "; %d torn journal line(s) truncated" r.rs_dropped_lines;
        pr ".\n"
      end);
  (* --- cost attribution -------------------------------------------- *)
  (match induction with
  | None -> ()
  | Some (st : I.stats) ->
      if st.I.top_costs <> [] then begin
        pr "\n## Most expensive candidates\n\n";
        pr "| candidate | shard | SAT calls | conflicts | core skips | \
            wall (s) | static |\n";
        pr "|---|---|---|---|---|---|---|\n";
        List.iter
          (fun (r : Obs.Attr.row) ->
            pr "| `%s` | %s | %d | %d | %d | %.4f | %s |\n" r.Obs.Attr.a_key
              (match r.Obs.Attr.a_shard with
              | Some i -> string_of_int i
              | None -> "—")
              r.Obs.Attr.a_sat_calls r.Obs.Attr.a_conflicts
              r.Obs.Attr.a_core_skips r.Obs.Attr.a_wall_s
              (if r.Obs.Attr.a_static then "yes" else ""))
          st.I.top_costs
      end;
      if st.I.workers > 0 then begin
        pr "\n## Shard load balance\n\n";
        pr "| workers | shard sizes | max wall (s) | mean wall (s) | \
            idle |\n|---|---|---|---|---|\n";
        pr "| %d | %s | %.2f | %.2f | %.0f%% |\n" st.I.workers
          (String.concat ";" (List.map string_of_int st.I.shard_sizes))
          st.I.worker_wall_max_s st.I.worker_wall_mean_s
          (100. *. st.I.worker_idle_frac)
      end);
  (* --- optional non-deterministic sections ------------------------- *)
  if timings <> [] then begin
    pr "\n## Stage timings\n\n| stage | seconds |\n|---|---|\n";
    List.iter (fun (name, sec) -> pr "| %s | %.3f |\n" name sec) timings
  end;
  if histograms <> [] then begin
    pr "\n## Latency distributions\n\n";
    pr "| distribution | count | p50 | p90 | p95 | max |\n";
    pr "|---|---|---|---|---|---|\n";
    List.iter
      (fun (name, (h : Obs.histogram)) ->
        pr "| %s | %d | %.6f | %.6f | %.6f | %.6f |\n" name h.Obs.count
          h.Obs.p50 h.Obs.p90 h.Obs.p95 h.Obs.max_v)
      histograms
  end;
  pr "\n---\nschema v%d%s\n" Meta.schema_version
    (match commit with Some c -> " · commit " ^ c | None -> "");
  Buffer.contents b
