(** Report generation from a {!Provenance} database.

    Two renderings of the same data:

    - {!json}: the machine-readable [REPORT_<target>.json].  Schema-
      versioned ({!Meta.schema_version}) and fully deterministic — it
      contains no wall-clock timings and no commit hash, all lists are
      emitted in stable orders, and waveform paths are reduced to
      their basenames — so two runs with the same seed produce
      byte-identical files (the golden-test property).
    - {!markdown}: the human report, reproducing the paper's table
      shape (candidates → proved → rewired → removed → area delta per
      stage) plus per-kind area breakdowns, the refuted-candidate
      waveform index, and the per-edit justification table.  Timings,
      histograms and the commit stamp are appended when provided —
      the report is deterministic modulo those sections. *)

type resume_summary = {
  rs_journal : string;  (** path of the run's [journal.jsonl] *)
  rs_resumed : bool;    (** the run replayed a prior journal *)
  rs_stages : string list;  (** stages replayed instead of recomputed *)
  rs_shards : int;          (** proof shards settled from checkpoints *)
  rs_dropped_lines : int;   (** torn journal tail lines truncated *)
}
(** Crash-safety provenance of a journaled run, mirroring
    [Pdat.Pipeline.resume_info] (this library sits below [pdat], so the
    record is duplicated here).  Optional on both renderings: when
    absent the output is byte-identical to pre-journal reports, which
    the golden tests rely on.  The JSON rendering keeps only the
    journal's basename so reports stay machine-independent. *)

val json :
  ?target:string ->
  ?induction:Engine.Induction.stats ->
  ?resume:resume_summary ->
  Provenance.t ->
  string
(** [induction], when given, adds a ["costs"] object: the run's
    deterministic top-K candidate-cost table (key, shard, SAT calls,
    conflicts, core-skip credits, static flag — {e no wall time}, so
    the golden byte-determinism property is preserved) and the shard
    load-balance shape (worker count, shard sizes). *)

val markdown :
  ?target:string ->
  ?timings:(string * float) list ->
  ?histograms:(string * Obs.histogram) list ->
  ?commit:string ->
  ?induction:Engine.Induction.stats ->
  ?resume:resume_summary ->
  Provenance.t ->
  string
(** [induction] appends the cost-attribution table (here including
    per-candidate wall seconds) and the shard load-balance gauges
    (max/mean worker wall, idle fraction) — wall data lives in these
    non-deterministic markdown sections, never in the JSON. *)
