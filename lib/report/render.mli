(** Report generation from a {!Provenance} database.

    Two renderings of the same data:

    - {!json}: the machine-readable [REPORT_<target>.json].  Schema-
      versioned ({!Meta.schema_version}) and fully deterministic — it
      contains no wall-clock timings and no commit hash, all lists are
      emitted in stable orders, and waveform paths are reduced to
      their basenames — so two runs with the same seed produce
      byte-identical files (the golden-test property).
    - {!markdown}: the human report, reproducing the paper's table
      shape (candidates → proved → rewired → removed → area delta per
      stage) plus per-kind area breakdowns, the refuted-candidate
      waveform index, and the per-edit justification table.  Timings,
      histograms and the commit stamp are appended when provided —
      the report is deterministic modulo those sections. *)

val json : ?target:string -> Provenance.t -> string

val markdown :
  ?target:string ->
  ?timings:(string * float) list ->
  ?histograms:(string * Obs.histogram) list ->
  ?commit:string ->
  Provenance.t ->
  string
