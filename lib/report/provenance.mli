(** The provenance database: where every number in a PDAT run report
    comes from.

    Each candidate invariant gets a record the moment it is mined and
    accumulates its history as the pipeline advances: the rsim round
    that mined it, the refinement kill that discarded it (with the
    refuting input trace), the prover's verdict (proved at depth k /
    refuted with a counterexample / dropped, with shard id and
    cache-hit flag), and the waveform file its counterexample was
    dumped to.  Certificate edits link back to the proved invariants
    that justify them, and every original cell made dead by rewiring
    is attributed to the edit whose cone it sits in.

    The database is pure bookkeeping — it never influences the run —
    and everything recorded here is deterministic for a fixed seed, so
    reports generated from it can be golden-tested byte-for-byte. *)

type cand_record = {
  id : int;  (** stable provenance id, assigned in registration order *)
  cand : Engine.Candidate.t;
  mutable mined_round : int option;  (** 1-based rsim run, if attributed *)
  mutable refine_kill : Engine.Rsim.kill option;
  mutable attribution : Engine.Induction.attribution option;
  mutable cex_file : string option;  (** dumped waveform, if any *)
}

type edit_record = {
  e_index : int;  (** position in the certificate's application order *)
  e_edit : Analysis.Certificate.edit;
  e_invariants : int list;
      (** provenance ids of the proved invariants justifying the edit;
          never empty for a certificate that passed the audit *)
  mutable e_dead : (int * Netlist.Cell.kind) list;
      (** original cells this edit's cone made dead (so resynthesis
          removes them), sorted by cell id *)
}

type designs = {
  original : Netlist.Design.t;
  rewired : Netlist.Design.t;
  reduced : Netlist.Design.t;   (** the design the pipeline returned *)
  baseline : Netlist.Design.t;  (** plain resynthesis of the original *)
}

type t

val create : unit -> t

val register : t -> Engine.Candidate.t list -> unit
(** Assign provenance ids to candidates (in list order); candidates
    already registered keep their id. *)

val find : t -> Engine.Candidate.t -> cand_record option
val id_of : t -> Engine.Candidate.t -> int option

val set_mined_rounds : t -> (Engine.Candidate.t * int) list -> unit
val set_refine_kills : t -> (Engine.Candidate.t * Engine.Rsim.kill) list -> unit

val set_attributions :
  t -> (Engine.Candidate.t, Engine.Induction.attribution) Hashtbl.t -> unit

val set_cex_file : t -> Engine.Candidate.t -> string -> unit

val record_certificate : t -> Analysis.Certificate.t -> unit
(** One {!edit_record} per certificate edit, resolving each edit's
    justifying invariant to its provenance id. *)

val record_designs :
  t ->
  original:Netlist.Design.t ->
  rewired:Netlist.Design.t ->
  reduced:Netlist.Design.t ->
  baseline:Netlist.Design.t ->
  unit
(** Stores the four pipeline design snapshots and runs dead-cone
    attribution: an original cell that is output-reachable in
    [original] but not in [rewired] was made dead by some rewire edit
    (reads were redirected past it); walking each edit's input cone in
    certificate order claims those cells for the edit that killed
    them.  Cells dead in [rewired] but in no edit's cone land in
    {!unattributed_dead} (and would indicate an uncertified edit).
    Call after {!record_certificate}. *)

val records : t -> cand_record list
(** All candidate records in id order. *)

val edits : t -> edit_record list
(** Certificate edits in application order ([[]] until
    {!record_certificate}). *)

val unattributed_dead : t -> (int * Netlist.Cell.kind) list

val designs : t -> designs option

val proved_ids : t -> int list
(** Ids of candidates whose final verdict is proved (fresh or cached),
    ascending. *)
