module D = Netlist.Design
module Cand = Engine.Candidate
module I = Engine.Induction

type cand_record = {
  id : int;
  cand : Cand.t;
  mutable mined_round : int option;
  mutable refine_kill : Engine.Rsim.kill option;
  mutable attribution : I.attribution option;
  mutable cex_file : string option;
}

type edit_record = {
  e_index : int;
  e_edit : Analysis.Certificate.edit;
  e_invariants : int list;
  mutable e_dead : (int * Netlist.Cell.kind) list;
}

type designs = {
  original : D.t;
  rewired : D.t;
  reduced : D.t;
  baseline : D.t;
}

type t = {
  mutable next_id : int;
  by_cand : (Cand.t, cand_record) Hashtbl.t;
  mutable rev_records : cand_record list;
  mutable cert_edits : edit_record list;
  mutable dead_rest : (int * Netlist.Cell.kind) list;
  mutable snap : designs option;
}

let create () =
  {
    next_id = 0;
    by_cand = Hashtbl.create 256;
    rev_records = [];
    cert_edits = [];
    dead_rest = [];
    snap = None;
  }

let register t cands =
  List.iter
    (fun cand ->
      if not (Hashtbl.mem t.by_cand cand) then begin
        let r =
          {
            id = t.next_id;
            cand;
            mined_round = None;
            refine_kill = None;
            attribution = None;
            cex_file = None;
          }
        in
        t.next_id <- t.next_id + 1;
        Hashtbl.replace t.by_cand cand r;
        t.rev_records <- r :: t.rev_records
      end)
    cands

let find t cand = Hashtbl.find_opt t.by_cand cand
let id_of t cand = Option.map (fun r -> r.id) (find t cand)

let set_mined_rounds t l =
  List.iter
    (fun (cand, round) ->
      match find t cand with
      | Some r -> r.mined_round <- Some round
      | None -> ())
    l

let set_refine_kills t l =
  List.iter
    (fun (cand, kill) ->
      match find t cand with
      | Some r -> r.refine_kill <- Some kill
      | None -> ())
    l

let set_attributions t tbl =
  Hashtbl.iter
    (fun cand a ->
      match find t cand with
      | Some r -> r.attribution <- Some a
      | None -> ())
    tbl

let set_cex_file t cand path =
  match find t cand with Some r -> r.cex_file <- Some path | None -> ()

let record_certificate t (cert : Analysis.Certificate.t) =
  t.cert_edits <-
    List.mapi
      (fun i (e : Analysis.Certificate.edit) ->
        {
          e_index = i;
          e_edit = e;
          e_invariants =
            (match id_of t e.Analysis.Certificate.justification with
            | Some id -> [ id ]
            | None -> []);
          e_dead = [];
        })
      cert.Analysis.Certificate.edits

(* Output-reachability, mirroring what [Design.compact] (and hence
   resynthesis) keeps: a cell is live iff some primary output depends
   on it through driver edges. *)
let live_cells d =
  let live_net = Array.make (max 1 (D.num_nets d)) false in
  let live_cell = Array.make (max 1 (D.num_cells d)) false in
  let stack = ref [] in
  let mark n =
    if n >= 0 && n < Array.length live_net && not live_net.(n) then begin
      live_net.(n) <- true;
      stack := n :: !stack
    end
  in
  List.iter (fun (_, n) -> mark n) (D.outputs d);
  let rec drain () =
    match !stack with
    | [] -> ()
    | n :: rest ->
        stack := rest;
        (match D.driver d n with
        | Some ci when not live_cell.(ci) ->
            live_cell.(ci) <- true;
            Array.iter mark (D.cell d ci).D.ins
        | Some _ | None -> ());
        drain ()
  in
  drain ();
  live_cell

(* [substitute] preserves cell ids, so original cell [i] is cell [i] of
   the rewired design; cells beyond the original count are the fresh
   inverters.  A cell live before rewiring but dead after was discon-
   nected by some edit; walking each edit's input cone in application
   order assigns every such cell to the first edit that explains it. *)
let attribute_dead t ~original ~rewired =
  let n_orig = D.num_cells original in
  let live_before = live_cells original in
  let live_after = live_cells rewired in
  let newly_dead = Array.make (max 1 n_orig) false in
  for i = 0 to n_orig - 1 do
    if live_before.(i) && not live_after.(i) then newly_dead.(i) <- true
  done;
  let claimed = Array.make (max 1 n_orig) false in
  let claim_cone er =
    let acc = ref [] in
    let stack = ref [ er.e_edit.Analysis.Certificate.net ] in
    let rec drain () =
      match !stack with
      | [] -> ()
      | n :: rest ->
          stack := rest;
          (match D.driver original n with
          | Some ci when ci < n_orig && newly_dead.(ci) && not claimed.(ci) ->
              claimed.(ci) <- true;
              let c = D.cell original ci in
              acc := (ci, c.D.kind) :: !acc;
              Array.iter (fun n' -> stack := n' :: !stack) c.D.ins
          | Some _ | None -> ());
          drain ()
    in
    drain ();
    er.e_dead <- List.sort compare !acc
  in
  List.iter claim_cone t.cert_edits;
  let rest = ref [] in
  for i = n_orig - 1 downto 0 do
    if newly_dead.(i) && not claimed.(i) then
      rest := (i, (D.cell original i).D.kind) :: !rest
  done;
  t.dead_rest <- !rest

let record_designs t ~original ~rewired ~reduced ~baseline =
  t.snap <- Some { original; rewired; reduced; baseline };
  attribute_dead t ~original ~rewired

let records t = List.rev t.rev_records
let edits t = t.cert_edits
let unattributed_dead t = t.dead_rest
let designs t = t.snap

let proved_ids t =
  List.filter_map
    (fun r ->
      match r.attribution with
      | Some { I.verdict = I.V_proved _; _ }
      | Some { I.verdict = I.V_cached Engine.Proof_cache.Proved; _ }
      | Some { I.verdict = I.V_sieved { proved = true; _ }; _ }
      | Some { I.verdict = I.V_static_proved; _ } ->
          Some r.id
      | _ -> None)
    (records t)
