let schema_version = 1

let detect_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short=12 HEAD 2>/dev/null" in
    let line = try Some (input_line ic) with End_of_file -> None in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, Some l when String.trim l <> "" -> String.trim l
    | _ -> "unknown"
  with _ -> "unknown"

let cached = ref None

let git_commit () =
  match !cached with
  | Some c -> c
  | None ->
      let c = detect_commit () in
      cached := Some c;
      c
