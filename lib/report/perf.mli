(** The [pdat perf] comparison engine: diff two schema-versioned
    [BENCH_*.json] envelopes and gate on noise-aware thresholds.

    A metric gates (can fail the comparison) iff it is a wall-clock
    scalar (name ending in [_s]) or a histogram percentile ([p50]/
    [p95]).  A gated metric regresses when its increase exceeds {e
    both} the relative tolerance and the absolute floor — the
    two-condition rule keeps micro-noise on millisecond numbers from
    tripping the gate while still catching a 20% slide on a
    seconds-scale stage timing.  Counters and derived ratios
    (SAT-call counts, speedups, [jobs_effective]) are reported as
    informational deltas only.

    Everything here is byte-deterministic for fixed inputs: fields
    are sorted by name, floats render with a fixed format, and no
    wall clock is consulted — the golden tests diff the markdown
    table verbatim. *)

exception Perf_error of string
(** Unreadable file, malformed JSON, missing or mismatched
    [schema_version], or mismatched [target].  The CLI maps this to
    exit code 2 (vs 1 for a genuine regression). *)

type hist_summary = { h_count : float; h_p50 : float; h_p95 : float }

type bench = {
  b_path : string;
  b_schema : int;
  b_target : string;   (** [""] when the envelope has no [target] field *)
  b_fields : (string * float) list;  (** numeric scalars, sorted by name *)
  b_hists : (string * hist_summary) list;  (** sorted by name *)
}

val load : string -> bench
(** Parse one BENCH envelope.  Raises {!Perf_error} if the file is
    unreadable, is not a JSON object, or lacks a numeric
    [schema_version] — old-schema files must be regenerated, not
    silently compared. *)

type thresholds = {
  rel_tol : float;        (** relative increase tolerated on gated metrics *)
  abs_floor_s : float;    (** timings below this absolute delta never gate *)
  abs_floor_hist_s : float;  (** same, for histogram percentiles *)
}

val default_thresholds : thresholds
(** [{ rel_tol = 0.15; abs_floor_s = 0.05; abs_floor_hist_s = 0.0005 }] *)

type delta = {
  d_metric : string;
  d_base : float;
  d_cur : float;
  d_gated : bool;      (** this metric can fail the gate *)
  d_regression : bool;
}

val compare_benches : ?thresholds:thresholds -> base:bench -> bench -> delta list
(** Deltas for every metric present in {e both} envelopes (metrics only
    one side has are skipped — schema growth must not fail old
    baselines), in a deterministic order: scalars sorted by name, then
    per-histogram [p50]/[p95]/[count] triples sorted by histogram name.
    Raises {!Perf_error} on [schema_version] or [target] mismatch. *)

val regressions : delta list -> delta list
(** The gated rows that regressed; [[]] means the gate passes. *)

val markdown_table :
  ?thresholds:thresholds -> base:bench -> bench -> delta list -> string
(** The human/CI-artifact rendering: a markdown table of every delta
    with its gate verdict, headed by the file pair and the thresholds
    in force, trailed by the regression count. *)
