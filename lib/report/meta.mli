(** Report/bench metadata stamps. *)

val schema_version : int
(** Version of both the [REPORT_*.json] and [BENCH_*.json] schemas;
    bump on any field rename or semantic change. *)

val git_commit : unit -> string
(** Short hash of the checked-out commit, or ["unknown"] outside a git
    checkout.  Cached after the first call.  Never goes into the
    deterministic report JSON — only into bench output and the
    markdown footer. *)
