(* The perf-regression gate: load two schema-versioned BENCH_*.json
   files, diff their timings / counters / histogram percentiles with
   noise-aware thresholds, render a byte-deterministic markdown delta
   table, and say whether anything regressed.

   Gating rules:
   - scalar fields named [*_s] are wall-clock timings: a regression is
     a relative increase beyond [rel_tol] that is also larger than
     [abs_floor_s] in absolute seconds (both conditions, so micro-noise
     on a 2 ms number can never trip the gate);
   - histogram [p50]/[p95] gate the same way against [abs_floor_hist_s]
     (per-call latencies are three orders of magnitude smaller than
     stage timings, so they get their own floor);
   - every other numeric field (counters, cores, speedups) is reported
     as a delta but never gates — SAT call counts legitimately move
     when an optimization lands, and speedups are derived from the
     timings that already gate. *)

exception Perf_error of string

(* ---------------- minimal JSON reader -------------------------------- *)
(* Just enough for the flat BENCH envelope: objects, strings, numbers,
   booleans, nulls, and arrays of numbers. *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Num of float
  | Str of string
  | Bool of bool
  | Null

let parse_json ~path s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Perf_error (Printf.sprintf "%s: invalid JSON at byte %d: %s" path !pos msg))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'n' -> Buffer.add_char b '\n'
          | Some 't' -> Buffer.add_char b '\t'
          | Some 'u' ->
              (* keep the raw escape: bench fields never need it decoded *)
              Buffer.add_string b "\\u"
          | Some c -> Buffer.add_char b c
          | None -> fail "unterminated escape");
          advance ();
          go ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---------------- the bench envelope ---------------------------------- *)

type hist_summary = { h_count : float; h_p50 : float; h_p95 : float }

type bench = {
  b_path : string;
  b_schema : int;
  b_target : string;
  b_fields : (string * float) list;  (* numeric scalars, sorted by name *)
  b_hists : (string * hist_summary) list;  (* sorted by name *)
}

let load path =
  let contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg -> raise (Perf_error msg)
  in
  let fields =
    match parse_json ~path contents with
    | Obj fields -> fields
    | _ -> raise (Perf_error (path ^ ": not a JSON object"))
  in
  let schema =
    match List.assoc_opt "schema_version" fields with
    | Some (Num v) -> int_of_float v
    | Some _ -> raise (Perf_error (path ^ ": schema_version is not a number"))
    | None ->
        raise
          (Perf_error
             (path
            ^ ": missing schema_version — regenerate this BENCH file with a \
               current `bench <target> --json` run"))
  in
  let target =
    match List.assoc_opt "target" fields with Some (Str t) -> t | _ -> ""
  in
  let scalars =
    List.filter_map
      (fun (k, v) ->
        match v with
        | Num f when k <> "schema_version" -> Some (k, f)
        | _ -> None)
      fields
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let hists =
    match List.assoc_opt "histograms" fields with
    | Some (Obj hs) ->
        List.filter_map
          (fun (name, v) ->
            match v with
            | Obj h ->
                let num key =
                  match List.assoc_opt key h with Some (Num f) -> f | _ -> 0.
                in
                Some
                  ( name,
                    { h_count = num "count"; h_p50 = num "p50"; h_p95 = num "p95" } )
            | _ -> None)
          hs
        |> List.sort (fun (a, _) (b, _) -> compare a b)
    | _ -> []
  in
  { b_path = path; b_schema = schema; b_target = target; b_fields = scalars;
    b_hists = hists }

(* ---------------- comparison ------------------------------------------ *)

type thresholds = {
  rel_tol : float;        (* relative increase tolerated on gated metrics *)
  abs_floor_s : float;    (* timings below this absolute delta never gate *)
  abs_floor_hist_s : float;  (* same, for histogram percentiles *)
}

let default_thresholds =
  { rel_tol = 0.15; abs_floor_s = 0.05; abs_floor_hist_s = 0.0005 }

type delta = {
  d_metric : string;
  d_base : float;
  d_cur : float;
  d_gated : bool;       (* this metric can fail the gate *)
  d_regression : bool;
}

let is_timing name =
  let n = String.length name in
  n > 2 && String.sub name (n - 2) 2 = "_s"

let gate ~tol ~floor base cur =
  cur -. base > floor && cur > base *. (1. +. tol)

let compare_benches ?(thresholds = default_thresholds) ~base cur =
  if base.b_schema <> cur.b_schema then
    raise
      (Perf_error
         (Printf.sprintf
            "schema_version mismatch: %s has %d, %s has %d — regenerate the \
             older file"
            base.b_path base.b_schema cur.b_path cur.b_schema));
  if base.b_target <> "" && cur.b_target <> "" && base.b_target <> cur.b_target
  then
    raise
      (Perf_error
         (Printf.sprintf "target mismatch: %s is '%s', %s is '%s'" base.b_path
            base.b_target cur.b_path cur.b_target));
  let scalar_deltas =
    List.filter_map
      (fun (name, cur_v) ->
        match List.assoc_opt name base.b_fields with
        | None -> None
        | Some base_v ->
            let gated = is_timing name in
            Some
              {
                d_metric = name;
                d_base = base_v;
                d_cur = cur_v;
                d_gated = gated;
                d_regression =
                  gated
                  && gate ~tol:thresholds.rel_tol ~floor:thresholds.abs_floor_s
                       base_v cur_v;
              })
      cur.b_fields
  in
  let hist_deltas =
    List.concat_map
      (fun (name, (ch : hist_summary)) ->
        match List.assoc_opt name base.b_hists with
        | None -> []
        | Some bh ->
            let pct label base_v cur_v =
              {
                d_metric = Printf.sprintf "%s.%s" name label;
                d_base = base_v;
                d_cur = cur_v;
                d_gated = true;
                d_regression =
                  gate ~tol:thresholds.rel_tol
                    ~floor:thresholds.abs_floor_hist_s base_v cur_v;
              }
            in
            [
              pct "p50" bh.h_p50 ch.h_p50;
              pct "p95" bh.h_p95 ch.h_p95;
              {
                d_metric = name ^ ".count";
                d_base = bh.h_count;
                d_cur = ch.h_count;
                d_gated = false;
                d_regression = false;
              };
            ])
      cur.b_hists
  in
  scalar_deltas @ hist_deltas

let regressions = List.filter (fun d -> d.d_regression)

(* ---------------- rendering ------------------------------------------- *)

let fnum f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let markdown_table ?(thresholds = default_thresholds) ~base cur deltas =
  let b = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "## Perf delta: %s → %s\n\n"
    (Filename.basename base.b_path)
    (Filename.basename cur.b_path);
  pr "Thresholds: ±%.0f%% relative, %.3fs absolute floor (timings), %.4fs \
      (histogram percentiles). Only timing and percentile rows gate.\n\n"
    (100. *. thresholds.rel_tol)
    thresholds.abs_floor_s thresholds.abs_floor_hist_s;
  pr "| metric | base | current | Δ%% | gate |\n|---|---|---|---|---|\n";
  List.iter
    (fun d ->
      let pct =
        if d.d_base = 0. then if d.d_cur = 0. then "0.0" else "inf"
        else Printf.sprintf "%+.1f" (100. *. (d.d_cur -. d.d_base) /. d.d_base)
      in
      let flag =
        if d.d_regression then "**REGRESSION**"
        else if d.d_gated then "ok"
        else "—"
      in
      pr "| %s | %s | %s | %s | %s |\n" d.d_metric (fnum d.d_base)
        (fnum d.d_cur) pct flag)
    deltas;
  let regs = regressions deltas in
  if regs = [] then pr "\nNo regressions.\n"
  else
    pr "\n**%d regression%s.**\n" (List.length regs)
      (if List.length regs = 1 then "" else "s");
  Buffer.contents b
