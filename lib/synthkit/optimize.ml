type report = {
  iterations : int;
  before : Netlist.Stats.t;
  after : Netlist.Stats.t;
  removed_by_kind : Netlist.Stats.delta_row list;
}

let run ?(max_iterations = 16) d =
  let before = Netlist.Stats.of_design d in
  let rec go d iterations =
    if iterations >= max_iterations then (d, iterations)
    else begin
      let d' = Netlist.Design.compact (Simplify.run d) in
      if Netlist.Design.num_cells d' >= Netlist.Design.num_cells d then (d, iterations + 1)
      else go d' (iterations + 1)
    end
  in
  let d', iterations = go d 0 in
  let after = Netlist.Stats.of_design d' in
  ( d',
    {
      iterations;
      before;
      after;
      removed_by_kind = Netlist.Stats.delta_by_kind ~before ~after;
    } )

let pp_report fmt r =
  Format.fprintf fmt "%d iterations: %d -> %d cells, %.1f -> %.1f um^2"
    r.iterations
    (Netlist.Stats.total_cells r.before)
    (Netlist.Stats.total_cells r.after)
    r.before.Netlist.Stats.area r.after.Netlist.Stats.area
