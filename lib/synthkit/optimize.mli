(** The Logic Resynthesis Stage: iterate {!Simplify.run} and
    {!Netlist.Design.compact} until the cell count stops improving.
    Standing in for the commercial synthesis flow of the paper's
    section IV-C, whose only job there is to exploit the constants
    introduced by rewiring. *)

type report = {
  iterations : int;
  before : Netlist.Stats.t;
  after : Netlist.Stats.t;
  removed_by_kind : Netlist.Stats.delta_row list;
      (** per-kind before/after rows ({!Netlist.Stats.delta_by_kind}),
          the run report's "what resynthesis removed" breakdown *)
}

val run : ?max_iterations:int -> Netlist.Design.t -> Netlist.Design.t * report

val pp_report : Format.formatter -> report -> unit
