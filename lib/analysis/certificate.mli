(** Rewire certificates.

    The rewiring stage does not just return a new netlist: it also
    emits a certificate — one {!edit} per redirected net, each citing
    the proved invariant that justifies it and, for the inverting
    gates, the fresh inverter cell it inserted.  The certificate is a
    complete, replayable description of the transformation: {!Audit}
    re-derives the rewired netlist from (original, certificate) alone
    and compares structurally, so a netlist edit with no certified
    justification cannot go unnoticed. *)

type via =
  | Direct
      (** The consuming reads of [net] were redirected straight to
          [target] (constant rail, or the surviving input of an
          [And2]/[Or2] collapse). *)
  | Fresh_inv of { cell : int; out : Netlist.Design.net; input : Netlist.Design.net }
      (** A [Nand2]/[Nor2] collapse: inverter cell [cell] with output
          [out] over [input] was appended, and [target = out]. *)

type edit = {
  net : Netlist.Design.net;  (** The net whose reads are redirected. *)
  target : Netlist.Design.net;  (** Where they now point (pre-chaining). *)
  via : via;
  justification : Engine.Candidate.t;
      (** The proved invariant this edit rests on.  A [Const] justifies
          a rail tie of its own net; an [Implies] justifies collapsing
          its own cell's output. *)
}

type t = { edits : edit list }
(** Edits in application order: constant ties first (one per net, the
    surviving claim), then implication collapses in candidate order —
    the order {!Audit} replays them in. *)

val empty : t
val length : t -> int

val pp : Netlist.Design.t -> Format.formatter -> t -> unit
(** Renders each edit with design net/cell names. *)
