type via =
  | Direct
  | Fresh_inv of { cell : int; out : Netlist.Design.net; input : Netlist.Design.net }

type edit = {
  net : Netlist.Design.net;
  target : Netlist.Design.net;
  via : via;
  justification : Engine.Candidate.t;
}

type t = { edits : edit list }

let empty = { edits = [] }
let length t = List.length t.edits

let pp_edit d ppf e =
  let net n = Fmt.pf ppf "%s(%d)" (Netlist.Design.net_name d n) n in
  Fmt.pf ppf "@[<h>";
  net e.net;
  Fmt.pf ppf " -> ";
  net e.target;
  (match e.via with
  | Direct -> ()
  | Fresh_inv { cell; input; _ } ->
      Fmt.pf ppf " [inv cell %d over " cell;
      net input;
      Fmt.pf ppf "]");
  Fmt.pf ppf " by %a@]" (Engine.Candidate.pp d) e.justification

let pp d ppf t =
  Fmt.pf ppf "@[<v>%d edit(s)@,%a@]" (length t)
    (Fmt.list ~sep:Fmt.cut (pp_edit d))
    t.edits
