module D = Netlist.Design
module C = Netlist.Cell

type gate = Off | Warn | Strict

let gate_name = function Off -> "off" | Warn -> "warn" | Strict -> "strict"

type rule = {
  id : string;
  severity : Diag.severity;
  doc : string;
  check : D.t -> Diag.t list;
}

(* ------------------------------------------------------------------ *)
(* Well-formedness: the array-indexing contract every rule relies on. *)

let well_formed d =
  let n_nets = D.num_nets d in
  let diags = ref [] in
  let emit rule loc msg =
    diags := Diag.make ~rule ~severity:Diag.Error ~loc msg :: !diags
  in
  D.iter_cells d (fun ci c ->
      let kind = C.name c.D.kind in
      if Array.length c.D.ins <> C.arity c.D.kind then
        emit "bad-arity"
          (Diag.Cell { cell = ci; kind; out = c.D.out; out_name = "?" })
          (Printf.sprintf "%s expects %d inputs, cell has %d" kind
             (C.arity c.D.kind) (Array.length c.D.ins));
      Array.iteri
        (fun pin n ->
          if n < 0 || n >= n_nets then
            emit "net-out-of-range"
              (Diag.Cell { cell = ci; kind; out = c.D.out; out_name = "?" })
              (Printf.sprintf
                 "input pin %s references net %d but the design has %d nets"
                 (try C.input_pin_name c.D.kind pin with _ -> string_of_int pin)
                 n n_nets))
        c.D.ins;
      if c.D.out < 0 || c.D.out >= n_nets then
        emit "net-out-of-range"
          (Diag.Cell { cell = ci; kind; out = c.D.out; out_name = "?" })
          (Printf.sprintf "output net %d out of range (%d nets)" c.D.out n_nets));
  List.iter
    (fun (nm, n) ->
      if n < 0 || n >= n_nets then
        emit "net-out-of-range" (Diag.Port nm)
          (Printf.sprintf "output port maps to net %d but the design has %d nets"
             n n_nets))
    (D.outputs d);
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Shared per-rule scaffolding.  Driver lists are recomputed from the
   cell list rather than trusted from the store's driver index, so the
   rules stay honest on netlists built with [unsafe_add_cell_out]. *)

let drivers_of d =
  let a = Array.make (max 1 (D.num_nets d)) [] in
  D.iter_cells d (fun ci c -> a.(c.D.out) <- ci :: a.(c.D.out));
  Array.map List.rev a

let pi_mask d =
  let a = Array.make (max 1 (D.num_nets d)) false in
  List.iter (fun (_, n) -> a.(n) <- true) (D.inputs d);
  a

(* ------------------------------------------------------------------ *)
(* Rules. *)

let check_multi_driven d =
  let drivers = drivers_of d and is_pi = pi_mask d in
  let diags = ref [] in
  for n = 0 to D.num_nets d - 1 do
    let cells = drivers.(n) in
    let total = List.length cells + if is_pi.(n) then 1 else 0 in
    if total > 1 then begin
      let who =
        (List.map
           (fun ci ->
             Printf.sprintf "cell %d (%s)" ci (C.name (D.cell d ci).D.kind))
           cells
        @ if is_pi.(n) then [ "primary input" ] else [])
        |> String.concat ", "
      in
      diags :=
        Diag.make ~rule:"multi-driven" ~severity:Diag.Error
          ~loc:(Diag.net_loc d n)
          (Printf.sprintf "%d drivers: %s" total who)
        :: !diags
    end
  done;
  List.rev !diags

let check_undriven_inputs d =
  let drivers = drivers_of d and is_pi = pi_mask d in
  let diags = ref [] in
  D.iter_cells d (fun ci c ->
      Array.iteri
        (fun pin n ->
          if drivers.(n) = [] && not is_pi.(n) then
            diags :=
              Diag.make ~rule:"undriven-input" ~severity:Diag.Error
                ~loc:(Diag.cell_loc d ci)
                (Printf.sprintf "input pin %s (net %d %s) is floating"
                   (C.input_pin_name c.D.kind pin)
                   n (D.net_name d n))
              :: !diags)
        c.D.ins);
  List.rev !diags

let check_undriven_outputs d =
  let drivers = drivers_of d and is_pi = pi_mask d in
  List.filter_map
    (fun (nm, n) ->
      if drivers.(n) = [] && not is_pi.(n) then
        Some
          (Diag.make ~rule:"undriven-output" ~severity:Diag.Error
             ~loc:(Diag.Port nm)
             (Printf.sprintf "output is fed by undriven net %d (%s)" n
                (D.net_name d n)))
      else None)
    (D.outputs d)

let check_comb_cycles d =
  let drivers = drivers_of d in
  let n_cells = D.num_cells d in
  let color = Array.make (max 1 n_cells) 0 in
  let diags = ref [] in
  (* DFS over combinational cells only; an edge runs from the driver of
     an input net to the consuming cell.  A gray hit is a back edge and
     [path] (most-recent-first ancestor outs) yields the witness. *)
  let rec visit path ci =
    let c = D.cell d ci in
    if C.is_sequential c.D.kind then ()
    else
      match color.(ci) with
      | 2 -> ()
      | 1 ->
          let rec take acc = function
            | [] -> acc
            | (ci', o) :: rest ->
                if ci' = ci then o :: acc else take (o :: acc) rest
          in
          let cycle = take [] path in
          let shown = if List.length cycle > 8 then 8 else List.length cycle in
          let names =
            List.filteri (fun i _ -> i < shown) cycle
            |> List.map (D.net_name d)
            |> String.concat " -> "
          in
          let suffix =
            if shown < List.length cycle then
              Printf.sprintf " -> ... (%d nets)" (List.length cycle)
            else ""
          in
          diags :=
            Diag.make ~rule:"comb-cycle" ~severity:Diag.Error
              ~loc:(Diag.cell_loc d ci)
              (Printf.sprintf "combinational cycle: %s%s" names suffix)
            :: !diags
      | _ ->
          color.(ci) <- 1;
          Array.iter
            (fun n -> List.iter (visit ((ci, c.D.out) :: path)) drivers.(n))
            c.D.ins;
          color.(ci) <- 2
  in
  for ci = 0 to n_cells - 1 do
    visit [] ci
  done;
  List.rev !diags

let check_unreachable_cells d =
  let drivers = drivers_of d in
  let cell_live = Array.make (max 1 (D.num_cells d)) false in
  let net_seen = Array.make (max 1 (D.num_nets d)) false in
  let stack = ref [] in
  let visit n =
    if not net_seen.(n) then begin
      net_seen.(n) <- true;
      stack := n :: !stack
    end
  in
  List.iter (fun (_, n) -> visit n) (D.outputs d);
  let rec drain () =
    match !stack with
    | [] -> ()
    | n :: rest ->
        stack := rest;
        List.iter
          (fun ci ->
            if not cell_live.(ci) then begin
              cell_live.(ci) <- true;
              Array.iter visit (D.cell d ci).D.ins
            end)
          drivers.(n);
        drain ()
  in
  drain ();
  let diags = ref [] in
  D.iter_cells d (fun ci c ->
      let is_tie = c.D.kind = C.Const0 || c.D.kind = C.Const1 in
      if (not cell_live.(ci)) && not is_tie then
        diags :=
          Diag.make ~rule:"unreachable-cell" ~severity:Diag.Warning
            ~loc:(Diag.cell_loc d ci)
            "no forward path to any primary output; dead logic"
          :: !diags);
  List.rev !diags

let check_const_feedback_regs d =
  let diags = ref [] in
  D.iter_cells d (fun ci c ->
      if c.D.kind = C.Dff then begin
        let data = c.D.ins.(0) in
        if data = c.D.out then
          diags :=
            Diag.make ~rule:"const-feedback-reg" ~severity:Diag.Warning
              ~loc:(Diag.cell_loc d ci)
              (Printf.sprintf
                 "register feeds itself; it holds its reset value %B forever"
                 c.D.init)
            :: !diags
        else if data = D.net_false || data = D.net_true then
          diags :=
            Diag.make ~rule:"const-feedback-reg" ~severity:Diag.Warning
              ~loc:(Diag.cell_loc d ci)
              (Printf.sprintf
                 "register data input is tied to the constant-%d rail"
                 (if data = D.net_true then 1 else 0))
            :: !diags
      end);
  List.rev !diags

let parse_indexed nm =
  match String.index_opt nm '[' with
  | Some i when i > 0 && String.length nm > i + 2 && nm.[String.length nm - 1] = ']'
    -> (
      let base = String.sub nm 0 i in
      match int_of_string_opt (String.sub nm (i + 1) (String.length nm - i - 2)) with
      | Some idx when idx >= 0 -> Some (base, idx)
      | _ -> None)
  | _ -> None

let check_bus_groups d =
  let check_side side ports =
    (* Group the side's ports by bus base, keeping first-seen order so
       diagnostics are deterministic. *)
    let order = ref [] in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (nm, _) ->
        let base, entry =
          match parse_indexed nm with
          | Some (base, i) -> (base, Some i)
          | None -> (nm, None)
        in
        if not (Hashtbl.mem tbl base) then order := base :: !order;
        Hashtbl.replace tbl base (entry :: (try Hashtbl.find tbl base with Not_found -> [])))
      ports;
    List.concat_map
      (fun base ->
        let entries = List.rev (Hashtbl.find tbl base) in
        let idxs = List.filter_map Fun.id entries in
        if idxs = [] then []
        else
          let warn msg =
            Diag.make ~rule:"bus-mismatch" ~severity:Diag.Warning
              ~loc:(Diag.Port base) msg
          in
          let scalar_clash =
            if List.exists (fun e -> e = None) entries then
              [ warn (Printf.sprintf "%s bus %s mixes a scalar port with indexed bits" side base) ]
            else []
          in
          let sorted = List.sort compare idxs in
          let rec dups = function
            | a :: (b :: _ as rest) ->
                if a = b then
                  warn (Printf.sprintf "%s bus %s declares bit [%d] twice" side base a)
                  :: dups (List.filter (fun x -> x <> a) rest)
                else dups rest
            | _ -> []
          in
          let uniq = List.sort_uniq compare idxs in
          let gaps =
            match uniq with
            | [] | [ _ ] -> []
            | lo :: _ ->
                let hi = List.nth uniq (List.length uniq - 1) in
                let missing = ref [] in
                for i = hi downto lo do
                  if not (List.mem i uniq) then missing := i :: !missing
                done;
                if !missing = [] then []
                else
                  [ warn
                      (Printf.sprintf
                         "%s bus %s[%d:%d] has width gaps: missing %s" side base
                         hi lo
                         (String.concat ", "
                            (List.map (Printf.sprintf "[%d]") !missing)))
                  ]
          in
          scalar_clash @ dups sorted @ gaps)
      (List.rev !order)
  in
  check_side "input" (D.inputs d) @ check_side "output" (D.outputs d)

(* The abstract interpreter schedules the design, so a cyclic or
   otherwise degenerate netlist must not reach it — those shapes are
   already reported by the Error-severity rules. *)
let absint_of d =
  match
    Engine.Absint.run d ~classify:(fun _ -> Engine.Ternary.Free)
      ~assume:Netlist.Design.net_true
  with
  | exception _ -> None
  | ai -> Some ai

let check_ternary_consts d =
  match absint_of d with
  | None -> []
  | Some ai ->
      List.filter_map
        (function
          | Engine.Candidate.Const (n, b) ->
              Some
                (Diag.make ~rule:"ternary-const" ~severity:Diag.Info
                   ~loc:(Diag.net_loc d n)
                   (Printf.sprintf
                      "ternary reachability forces this net to %d with all \
                       inputs free; dead candidate, the miner can skip it"
                      (if b then 1 else 0)))
          | _ -> None)
        (Engine.Absint.constants ai)

let check_stuck_regs d =
  match absint_of d with
  | None -> []
  | Some ai ->
      List.map
        (fun (ci, b) ->
          Diag.make ~rule:"absint-stuck-reg" ~severity:Diag.Warning
            ~loc:(Diag.net_loc d (D.cell d ci).D.out)
            (Printf.sprintf
               "register is stuck at %d from reset under abstract \
                interpretation; its state bit carries no information"
               (if b then 1 else 0)))
        (Engine.Absint.stuck_registers ai)

let check_dead_writes d =
  match absint_of d with
  | None -> []
  | Some ai ->
      List.map
        (fun (ci, sel) ->
          Diag.make ~rule:"absint-dead-write" ~severity:Diag.Info
            ~loc:(Diag.net_loc d (D.cell d ci).D.out)
            (Printf.sprintf
               "register data mux select is always %d; the %s-input write \
                arm is dead"
               (if sel then 1 else 0)
               (if sel then "A" else "B")))
        (Engine.Absint.dead_writes ai)

let structural_rules =
  [
    {
      id = "multi-driven";
      severity = Diag.Error;
      doc = "a net with more than one driver (cells and/or a primary input)";
      check = check_multi_driven;
    };
    {
      id = "undriven-input";
      severity = Diag.Error;
      doc = "a cell input pin fed by a net with no driver";
      check = check_undriven_inputs;
    };
    {
      id = "undriven-output";
      severity = Diag.Error;
      doc = "a primary output fed by a net with no driver";
      check = check_undriven_outputs;
    };
    {
      id = "comb-cycle";
      severity = Diag.Error;
      doc = "a combinational cycle through non-register cells";
      check = check_comb_cycles;
    };
    {
      id = "bus-mismatch";
      severity = Diag.Warning;
      doc = "width gaps, duplicate bits or scalar clashes in indexed port buses";
      check = check_bus_groups;
    };
    {
      id = "unreachable-cell";
      severity = Diag.Warning;
      doc = "a cell with no forward path to any primary output";
      check = check_unreachable_cells;
    };
    {
      id = "const-feedback-reg";
      severity = Diag.Warning;
      doc = "a register whose data input is itself or a constant rail";
      check = check_const_feedback_regs;
    };
  ]

let all_rules =
  structural_rules
  @ [
      {
        id = "ternary-const";
        severity = Diag.Info;
        doc = "a net forced constant by 0/1/X reachability with all inputs free";
        check = check_ternary_consts;
      };
      {
        id = "absint-stuck-reg";
        severity = Diag.Warning;
        doc = "a register stuck at its reset value in the abstract fixpoint";
        check = check_stuck_regs;
      };
      {
        id = "absint-dead-write";
        severity = Diag.Info;
        doc = "a register write mux whose select is constant in the fixpoint";
        check = check_dead_writes;
      };
    ]

let run ?(rules = all_rules) d =
  match well_formed d with
  | [] -> List.concat_map (fun r -> r.check d) rules
  | diags -> diags
