(** The rewire-certificate audit — a static re-validation of the
    rewiring stage.

    Soundness argument: {!run} accepts iff (1) every certificate edit's
    justification is a member of the proved invariant set and actually
    justifies that edit (right net, right gate shape, right target);
    (2) replaying the certificate against the {e original} netlist —
    re-inserting the recorded inverter cells and re-substituting —
    reproduces the rewired netlist {e exactly}, cell for cell; and
    (3) the rewired netlist introduces no Error-severity lint finding
    the original did not already have.  (1) and (2) together mean the
    rewired netlist differs from the original only in ways certified by
    proved invariants: a corrupted proved set, a forged justification,
    or a netlist edit that bypassed {!Core.Rewire} all produce a
    located [Error] diagnostic without running a single simulation
    cycle.  The audit shares no code with [Rewire.apply_certified]
    beyond the published edit semantics, so a bug must appear in both
    implementations to go unnoticed — same independence argument as
    the differential validator. *)

val run :
  ?pre_lint:Diag.t list ->
  ?prov_id:(Engine.Candidate.t -> int option) ->
  original:Netlist.Design.t ->
  rewired:Netlist.Design.t ->
  proved:Engine.Candidate.t list ->
  certificate:Certificate.t ->
  unit ->
  Diag.t list
(** Empty result = certificate accepted.  Rules emitted, all [Error]:
    [cert-unjustified] (justification not in [proved]),
    [cert-mismatch] (justification does not support the edit, duplicate
    edit, or inverter replay inconsistency), [cert-netlist-mismatch]
    (replayed netlist differs from [rewired]), and [lint-regression]
    (new Error-severity structural lint finding post-rewire).
    [?pre_lint] supplies the original's lint findings if already
    computed, to skip re-linting it.  [?prov_id] resolves a candidate
    to its provenance id; when given, justification diagnostics cite
    the invariant as [inv#<id>] so a report reader can cross-reference
    the audit finding against the run report. *)
