(** Netlist lint — single-pass-per-rule structural checks.

    The commercial flow the paper assumes (Design Compiler in, Questa
    alongside) rejects malformed structure before any proof runs; this
    module is our equivalent.  Each rule makes one pass over the design
    and emits located diagnostics ({!Diag.t}).  Rules never raise on
    degenerate inputs (empty design, self-loop registers, cyclic
    combinational logic): {!run} checks basic well-formedness first and
    stops there if net references are out of range, so every later rule
    can index arrays safely.

    Severity convention: structural soundness violations (multi-driven
    nets, combinational cycles, floating inputs, undriven outputs,
    malformed cells) are [Error]; suspicious-but-executable shapes
    (unreachable cells, constant-feedback registers, bus index gaps)
    are [Warning]; the dataflow rules are backed by the
    {!Engine.Absint} fixpoint run with every input [Free] and a true
    assumption: [ternary-const] ([Info]) flags nets the abstract
    fixpoint forces to a constant, i.e. dead candidates the miner
    should skip; [absint-stuck-reg] ([Warning]) flags registers that
    never leave their reset value — unreachable-FSM-state evidence;
    [absint-dead-write] ([Info]) flags register write muxes whose
    select is constant in the fixpoint, leaving one write arm dead. *)

type gate = Off | Warn | Strict
(** How a pipeline stage consumes lint results: [Off] skips the
    analysis, [Warn] records diagnostics in the report, [Strict]
    additionally fails on any [Error]-severity finding. *)

val gate_name : gate -> string

type rule = {
  id : string;
  severity : Diag.severity;  (** Highest severity the rule can emit. *)
  doc : string;
  check : Netlist.Design.t -> Diag.t list;
      (** Precondition: {!well_formed} returned []. *)
}

val well_formed : Netlist.Design.t -> Diag.t list
(** Net-range and arity checks ([net-out-of-range], [bad-arity]) that
    every other rule's array indexing depends on.  Always safe to call. *)

val structural_rules : rule list
(** Every rule except the absint-backed dataflow rules ([ternary-const],
    [absint-stuck-reg], [absint-dead-write]) — the set the certificate
    audit diffs pre/post rewiring. *)

val all_rules : rule list

val run : ?rules:rule list -> Netlist.Design.t -> Diag.t list
(** [run d] = {!well_formed} findings if any, else the concatenation of
    each rule's findings (default {!all_rules}), in rule order. *)
