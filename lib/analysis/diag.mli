(** Located diagnostics — the shared currency of the static-analysis
    subsystem.

    Every finding the lint rules or the certificate audit produce is a
    [t]: a stable rule id, a severity, a location that names the
    offending net/cell/port, and a human message.  The pipeline, the
    CLI and CI all gate on the same values, so severities have a fixed
    meaning: [Error] findings make Strict gates fail, [Warning]s are
    reported but never gate, [Info] is advisory (e.g. ternary-constant
    nets the miner could skip). *)

type severity = Info | Warning | Error

type location =
  | Net of { net : Netlist.Design.net; name : string }
  | Cell of { cell : int; kind : string; out : Netlist.Design.net; out_name : string }
  | Port of string  (** A primary input/output (or bus base) by name. *)
  | Clause of { line : int }  (** A DIMACS source line. *)
  | Whole_design

type t = {
  rule : string;  (** Stable kebab-case rule id, e.g. ["multi-driven"]. *)
  severity : severity;
  loc : location;
  message : string;
}

val make : rule:string -> severity:severity -> loc:location -> string -> t

val net_loc : Netlist.Design.t -> Netlist.Design.net -> location
(** Location of a net, resolving its debug name. *)

val cell_loc : Netlist.Design.t -> int -> location
(** Location of a cell by id, resolving kind and output-net names. *)

val severity_name : severity -> string
val compare_severity : severity -> severity -> int
(** [Info < Warning < Error]. *)

val errors : t list -> t list
(** The [Error]-severity subset, order preserved. *)

val count : t list -> int * int * int
(** [(errors, warnings, infos)]. *)

val of_dimacs_warning : Sat.Dimacs.warning -> t
(** Lifts a DIMACS parser warning into the shared diagnostic type. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
