type severity = Info | Warning | Error

type location =
  | Net of { net : Netlist.Design.net; name : string }
  | Cell of { cell : int; kind : string; out : Netlist.Design.net; out_name : string }
  | Port of string
  | Clause of { line : int }
  | Whole_design

type t = {
  rule : string;
  severity : severity;
  loc : location;
  message : string;
}

let make ~rule ~severity ~loc message = { rule; severity; loc; message }

let net_loc d n = Net { net = n; name = Netlist.Design.net_name d n }

let cell_loc d ci =
  let c = Netlist.Design.cell d ci in
  Cell
    {
      cell = ci;
      kind = Netlist.Cell.name c.Netlist.Design.kind;
      out = c.Netlist.Design.out;
      out_name = Netlist.Design.net_name d c.Netlist.Design.out;
    }

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2
let compare_severity a b = compare (severity_rank a) (severity_rank b)

let errors ds = List.filter (fun d -> d.severity = Error) ds

let count ds =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) ds

let of_dimacs_warning (w : Sat.Dimacs.warning) =
  {
    rule = "dimacs-duplicate-literal";
    severity = Warning;
    loc = Clause { line = w.Sat.Dimacs.line };
    message =
      Printf.sprintf "literal %s: %s" w.Sat.Dimacs.token w.Sat.Dimacs.reason;
  }

let pp_location ppf = function
  | Net { net; name } -> Fmt.pf ppf "net %d (%s)" net name
  | Cell { cell; kind; out; out_name } ->
      Fmt.pf ppf "cell %d (%s -> net %d %s)" cell kind out out_name
  | Port nm -> Fmt.pf ppf "port %S" nm
  | Clause { line } -> Fmt.pf ppf "dimacs line %d" line
  | Whole_design -> Fmt.pf ppf "design"

let pp ppf d =
  Fmt.pf ppf "%s[%s]: %a: %s" (severity_name d.severity) d.rule pp_location
    d.loc d.message

let to_string d = Fmt.str "%a" pp d
