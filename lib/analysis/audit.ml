module D = Netlist.Design
module C = Netlist.Cell

let err rule loc msg = Diag.make ~rule ~severity:Diag.Error ~loc msg

let rail b = if b then D.net_true else D.net_false

(* (1) Every edit must cite a proved invariant that really supports it. *)
let check_edits ?prov_id original proved (cert : Certificate.t) =
  let diags = ref [] in
  let emit rule loc msg = diags := err rule loc msg :: !diags in
  let cite cand =
    match prov_id with
    | None -> ""
    | Some f -> (
        match f cand with
        | Some id -> Printf.sprintf " (inv#%d)" id
        | None -> " (no provenance record)")
  in
  let seen_nets = Hashtbl.create 16 in
  List.iter
    (fun (e : Certificate.edit) ->
      let loc = Diag.net_loc original e.net in
      if Hashtbl.mem seen_nets e.net then
        emit "cert-mismatch" loc "duplicate edit for this net";
      Hashtbl.replace seen_nets e.net ();
      if not (List.exists (Engine.Candidate.equal e.justification) proved) then
        emit "cert-unjustified" loc
          (Fmt.str "justification %a%s is not in the proved invariant set"
             (Engine.Candidate.pp original) e.justification
             (cite e.justification))
      else
        match e.justification with
        | Engine.Candidate.Const (n, b) ->
            if e.net <> n then
              emit "cert-mismatch" loc
                (Printf.sprintf
                   "constant invariant is about net %d, edit redirects net %d"
                   n e.net)
            else if e.target <> rail b || e.via <> Certificate.Direct then
              emit "cert-mismatch" loc
                (Printf.sprintf
                   "net proved stuck-at-%d must tie to rail %d, edit targets \
                    net %d"
                   (if b then 1 else 0) (rail b) e.target)
        | Engine.Candidate.Implies { cell; a; b } ->
            if cell < 0 || cell >= D.num_cells original then
              emit "cert-mismatch" loc
                (Printf.sprintf "implication cites unknown cell %d" cell)
            else
              let c = D.cell original cell in
              if e.net <> c.D.out then
                emit "cert-mismatch" loc
                  (Printf.sprintf
                     "implication is about cell %d (out net %d), edit \
                      redirects net %d"
                     cell c.D.out e.net)
              else
                let ok =
                  match (c.D.kind, e.via) with
                  | C.And2, Certificate.Direct -> e.target = a
                  | C.Or2, Certificate.Direct -> e.target = b
                  | C.Nand2, Certificate.Fresh_inv { input; out; _ } ->
                      input = a && e.target = out
                  | C.Nor2, Certificate.Fresh_inv { input; out; _ } ->
                      input = b && e.target = out
                  | _ -> false
                in
                if not ok then
                  emit "cert-mismatch" loc
                    (Printf.sprintf
                       "implication%s on a %s gate does not support \
                        redirecting net %d to net %d"
                       (cite e.justification) (C.name c.D.kind) e.net e.target))
    cert.Certificate.edits;
  List.rev !diags

(* (2) Replay the certificate against the original and demand the exact
   rewired netlist back.  This is an independent re-implementation of
   the published edit semantics, on purpose. *)
let replay original (cert : Certificate.t) =
  let d = D.copy original in
  let problems = ref [] in
  List.iter
    (fun (e : Certificate.edit) ->
      match e.via with
      | Certificate.Direct -> ()
      | Certificate.Fresh_inv { cell; out; input } -> (
          if cell <> D.num_cells d then
            problems :=
              err "cert-mismatch" (Diag.net_loc original e.net)
                (Printf.sprintf
                   "recorded inverter cell id %d, replay is at cell %d" cell
                   (D.num_cells d))
              :: !problems
          else
            match D.add_cell d C.Inv [| input |] with
            | o when o = out -> ()
            | o ->
                problems :=
                  err "cert-mismatch" (Diag.net_loc original e.net)
                    (Printf.sprintf
                       "recorded inverter output net %d, replay allocated %d"
                       out o)
                  :: !problems
            | exception Invalid_argument m ->
                problems :=
                  err "cert-mismatch" (Diag.net_loc original e.net)
                    ("inverter replay failed: " ^ m)
                  :: !problems))
    cert.Certificate.edits;
  if !problems <> [] then Error (List.rev !problems)
  else begin
    let target = Hashtbl.create 64 in
    List.iter
      (fun (e : Certificate.edit) -> Hashtbl.replace target e.net e.target)
      cert.Certificate.edits;
    let rec resolve seen n =
      match Hashtbl.find_opt target n with
      | Some n' when not (List.mem n' seen) -> resolve (n :: seen) n'
      | Some _ | None -> n
    in
    Ok (D.substitute d (fun n -> resolve [] n))
  end

let diff_designs expected rewired =
  let mismatch loc msg = [ err "cert-netlist-mismatch" loc msg ] in
  if D.num_cells expected <> D.num_cells rewired then
    mismatch Diag.Whole_design
      (Printf.sprintf "replay yields %d cells, rewired netlist has %d"
         (D.num_cells expected) (D.num_cells rewired))
  else if D.num_nets expected <> D.num_nets rewired then
    mismatch Diag.Whole_design
      (Printf.sprintf "replay yields %d nets, rewired netlist has %d"
         (D.num_nets expected) (D.num_nets rewired))
  else if D.inputs expected <> D.inputs rewired then
    mismatch Diag.Whole_design "primary inputs differ from replay"
  else if D.outputs expected <> D.outputs rewired then
    mismatch Diag.Whole_design
      (Printf.sprintf "primary outputs differ from replay (replay: %s)"
         (String.concat ", "
            (List.map
               (fun (nm, n) -> Printf.sprintf "%s=net %d" nm n)
               (D.outputs expected))))
  else begin
    let bad = ref None in
    D.iter_cells rewired (fun ci c ->
        if !bad = None then begin
          let e = D.cell expected ci in
          if
            c.D.kind <> e.D.kind || c.D.out <> e.D.out || c.D.init <> e.D.init
            || c.D.ins <> e.D.ins
          then bad := Some (ci, e)
        end);
    match !bad with
    | None -> []
    | Some (ci, e) ->
        mismatch (Diag.cell_loc rewired ci)
          (Printf.sprintf
             "cell differs from certificate replay (expected %s(%s) -> net %d)"
             (C.name e.D.kind)
             (String.concat ", " (Array.to_list (Array.map string_of_int e.D.ins)))
             e.D.out)
  end

(* (3) Rewiring must not create new Error-severity structural findings. *)
let lint_regression ?pre_lint original rewired =
  let pre =
    match pre_lint with
    | Some l -> l
    | None -> Lint.run ~rules:Lint.structural_rules original
  in
  let post = Lint.run ~rules:Lint.structural_rules rewired in
  let key (d : Diag.t) = (d.Diag.rule, d.Diag.loc) in
  let pre_keys = List.map key pre in
  List.filter_map
    (fun (d : Diag.t) ->
      if d.Diag.severity = Diag.Error && not (List.mem (key d) pre_keys) then
        Some
          {
            d with
            Diag.rule = "lint-regression";
            Diag.message = d.Diag.rule ^ ": " ^ d.Diag.message;
          }
      else None)
    post

let run ?pre_lint ?prov_id ~original ~rewired ~proved ~certificate () =
  let justified = check_edits ?prov_id original proved certificate in
  let structural =
    match replay original certificate with
    | Error ds -> ds
    | Ok expected -> diff_designs expected rewired
  in
  justified @ structural @ lint_regression ?pre_lint original rewired
