(** Executes catalog variants through the PDAT pipeline and formats
    paper-style result rows.

    Core netlists are built once and shared across the variants that
    use them; the Cortex-M0 is obfuscated before it enters any flow,
    matching the paper's firm-IP setting.  [fast] shrinks the RIDECORE
    configuration and the simulation budget — used by the test suite;
    benches run full size. *)

type row = {
  variant : Variants.t;
  area : float;
  gates : int;
  baseline_area : float;  (** the figure's "Full" variant, synthesized *)
  baseline_gates : int;
  proved : int;           (** 0 for the baseline row *)
  seconds : float;
}

val area_delta : row -> float
(** Percent area reduction versus the baseline row. *)

val gate_delta : row -> float

val run : ?fast:bool -> ?jobs:int -> ?cache:Engine.Proof_cache.t -> Variants.t -> row

val run_full :
  ?fast:bool ->
  ?jobs:int ->
  ?cache:Engine.Proof_cache.t ->
  Variants.t ->
  row * Pdat.Pipeline.result option
(** Like {!run} but also returns the pipeline result (with its full
    report — per-stage timings, induction stats) when the variant
    actually ran the pipeline ([None] for baseline-only variants).
    Unless [cache] is given, all variants share one session-wide proof
    cache; set the [PDAT_CACHE_DIR] environment variable to make it
    disk-backed so verdicts persist across processes.  [jobs] is the
    proof-stage worker count (default: [PDAT_JOBS] or 1, see
    {!Pdat.Pipeline.run}). *)

val run_figure :
  ?fast:bool -> ?jobs:int -> ?cache:Engine.Proof_cache.t -> string -> row list

val pp_row : Format.formatter -> row -> unit

val pp_rows : title:string -> Format.formatter -> row list -> unit

val reduced_design : ?fast:bool -> Variants.t -> Netlist.Design.t
(** The transformed netlist itself (for equivalence checks and
    export). *)
