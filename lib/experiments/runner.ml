type row = {
  variant : Variants.t;
  area : float;
  gates : int;
  baseline_area : float;
  baseline_gates : int;
  proved : int;
  seconds : float;
}

let area_delta r = Netlist.Stats.delta_pct ~baseline:r.baseline_area r.area

let gate_delta r =
  Netlist.Stats.delta_pct
    ~baseline:(float_of_int r.baseline_gates)
    (float_of_int r.gates)

(* ------------- shared core instances -------------------------------- *)

let ibex = lazy (Cores.Ibex_like.build ())

let cm0_obfuscated =
  lazy
    (let t = Cores.Cm0_like.build () in
     Netlist.Obfuscate.run t.Cores.Cm0_like.design)

let ridecore_full = lazy (Cores.Ridecore_like.build ())

let ridecore_fast =
  lazy
    (Cores.Ridecore_like.build
       ~config:
         { Cores.Ridecore_like.rob_entries = 16; phys_regs = 48;
           iq_entries = 8; pht_entries = 64; btb_entries = 8 }
       ())

let design_of ?(fast = false) (v : Variants.t) =
  match v.Variants.core with
  | Variants.Ibex -> (Lazy.force ibex).Cores.Ibex_like.design
  | Variants.Cm0 -> Lazy.force cm0_obfuscated
  | Variants.Ridecore ->
      (Lazy.force (if fast then ridecore_fast else ridecore_full))
        .Cores.Ridecore_like.design

let cut_nets_of (v : Variants.t) =
  match v.Variants.core with
  | Variants.Ibex -> Some (Cores.Ibex_like.cutpoint_nets (Lazy.force ibex))
  | Variants.Cm0 | Variants.Ridecore -> None

let rsim_config ?(fast = false) (v : Variants.t) =
  let base = Engine.Rsim.default in
  match v.Variants.core with
  | Variants.Ibex | Variants.Cm0 ->
      { base with Engine.Rsim.cycles = 400; runs = 2 }
  | Variants.Ridecore ->
      { base with Engine.Rsim.cycles = (if fast then 256 else 384); runs = 2 }

let induction_options ?(fast = false) (v : Variants.t) =
  (* per-call caps keep single SAT queries from monopolizing the run
     (an inconclusive query only drops its candidates); total caps
     bound each variant's worst case *)
  match v.Variants.core with
  | Variants.Ibex | Variants.Cm0 ->
      { Engine.Induction.k = 1; call_conflict_budget = 30_000;
        total_conflict_budget = 2_000_000; time_budget_s = infinity }
  | Variants.Ridecore ->
      { Engine.Induction.k = 1;
        call_conflict_budget = (if fast then 30_000 else 60_000);
        total_conflict_budget = (if fast then 1_000_000 else 4_000_000);
        time_budget_s = infinity }

(* cached per-design baselines: synthesizing RIDECORE repeatedly would
   dominate the run time *)
let baselines : (string, Netlist.Stats.t) Hashtbl.t = Hashtbl.create 8

let baseline_stats design =
  let key =
    Printf.sprintf "%s-%d" (Netlist.Design.name design)
      (Netlist.Design.num_cells design)
  in
  match Hashtbl.find_opt baselines key with
  | Some st -> st
  | None ->
      let _, st = Pdat.Pipeline.baseline design in
      Hashtbl.replace baselines key st;
      st

(* one proof cache shared by every variant of a session: Ibex variants
   reuse each other's verdicts whenever their (model, assume) scopes
   coincide, and PDAT_CACHE_DIR makes the verdicts survive the process *)
let shared_cache =
  lazy
    (Engine.Proof_cache.create ?dir:(Sys.getenv_opt "PDAT_CACHE_DIR") ())

let finish_env (v : Variants.t) design env =
  (* the Aligned variant additionally pins the data-address low bits *)
  if v.Variants.id = "ibex-aligned" then
    Pdat.Environment.constrain_low_bits env
      (Netlist.Design.output_bus design "data_addr")
      ~bits:2
  else env

let run_full ?(fast = false) ?jobs ?cache (v : Variants.t) =
  let cache =
    match cache with Some c -> Some c | None -> Some (Lazy.force shared_cache)
  in
  let t0 = Obs.Clock.now_s () in
  let design = design_of ~fast v in
  let base = baseline_stats design in
  match v.Variants.make_env design ~cut_nets:(cut_nets_of v) with
  | None ->
      ( {
          variant = v;
          area = base.Netlist.Stats.area;
          gates = Netlist.Stats.gate_count base;
          baseline_area = base.Netlist.Stats.area;
          baseline_gates = Netlist.Stats.gate_count base;
          proved = 0;
          seconds = Obs.Clock.now_s () -. t0;
        },
        None )
  | Some env ->
      let env = finish_env v design env in
      let result =
        Pdat.Pipeline.run ~rsim:(rsim_config ~fast v)
          ~induction:(induction_options ~fast v) ?jobs ?cache ~design ~env ()
      in
      let r = result.Pdat.Pipeline.report in
      ( {
          variant = v;
          area = r.Pdat.Pipeline.after.Netlist.Stats.area;
          gates = Netlist.Stats.gate_count r.Pdat.Pipeline.after;
          baseline_area = base.Netlist.Stats.area;
          baseline_gates = Netlist.Stats.gate_count base;
          proved = r.Pdat.Pipeline.proved;
          seconds = Obs.Clock.now_s () -. t0;
        },
        Some result )

let run ?fast ?jobs ?cache v = fst (run_full ?fast ?jobs ?cache v)

let reduced_design ?fast v =
  match run_full ?fast v with
  | _, Some result -> result.Pdat.Pipeline.reduced
  | _, None -> fst (Pdat.Pipeline.baseline (design_of ?fast v))

let run_figure ?fast ?jobs ?cache figure =
  List.map (run ?fast ?jobs ?cache) (Variants.by_figure figure)

let pp_row fmt r =
  Format.fprintf fmt "%-22s %9.1f um^2 (%+6.1f%%)  %6d gates (%+6.1f%%)  [proved %5d, %5.1fs]"
    r.variant.Variants.label r.area (-.area_delta r) r.gates (-.gate_delta r)
    r.proved r.seconds

let pp_rows ~title fmt rows =
  Format.fprintf fmt "@[<v>== %s ==@," title;
  List.iter (fun r -> Format.fprintf fmt "%a@," pp_row r) rows;
  Format.fprintf fmt "@]"
