(* Tracing + metrics.  Counters are always on (one Hashtbl update per
   batched instrumentation point); spans are recorded only while
   enabled.  Everything here is single-threaded and fork-aware: a
   worker calls [reset] right after the fork and ships its events and
   counter deltas back through its result pipe. *)

module Clock = struct
  (* Monotonic fallback on gettimeofday: accumulate only plausible
     positive deltas, so a stepped wall clock (NTP, manual set) can
     neither run time backwards nor bill a huge phantom interval to
     whatever is being timed. *)
  let max_step_s = 3600.
  let last_raw = ref (Unix.gettimeofday ())
  let mono = ref 0.

  let now_s () =
    let raw = Unix.gettimeofday () in
    let d = raw -. !last_raw in
    last_raw := raw;
    if d > 0. && d < max_step_s then mono := !mono +. d;
    !mono

  let wall_s = Unix.gettimeofday
end

module Hw = struct
  let from_getconf () =
    try
      let ic = Unix.open_process_in "getconf _NPROCESSORS_ONLN 2>/dev/null" in
      let line = try Some (input_line ic) with End_of_file -> None in
      ignore (Unix.close_process_in ic);
      match line with
      | Some l -> int_of_string_opt (String.trim l)
      | None -> None
    with _ -> None

  let from_proc_cpuinfo () =
    try
      let ic = open_in "/proc/cpuinfo" in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = ref 0 in
          (try
             while true do
               let line = input_line ic in
               if String.length line >= 9 && String.sub line 0 9 = "processor"
               then incr n
             done
           with End_of_file -> ());
          if !n > 0 then Some !n else None)
    with _ -> None

  let detect () =
    match from_getconf () with
    | Some n when n >= 1 -> n
    | _ -> ( match from_proc_cpuinfo () with Some n -> n | None -> 1)

  let cached = ref (-1)

  let online_cores () =
    match Sys.getenv_opt "PDAT_FORCE_CORES" with
    | Some s when String.trim s <> "" -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> n
        | _ ->
            if !cached < 0 then cached := detect ();
            !cached)
    | _ ->
        if !cached < 0 then cached := detect ();
        !cached
end

(* ---------------- recorder state ------------------------------------ *)

type arg = Int of int | Float of float | Str of string | Bool of bool

type phase = Complete | Instant | Counter

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts_us : float;
  dur_us : float;
  pid : int;
  args : (string * arg) list;
}

let enabled = ref false
let events : event list ref = ref [] (* newest first *)
let tbl : (string, float) Hashtbl.t = Hashtbl.create 64
let cur_pid = ref (Unix.getpid ())

let enable () = enabled := true
let disable () = enabled := false
let is_enabled () = !enabled

let reset_hists = ref (fun () -> ())
let reset_attr = ref (fun () -> ())

let reset () =
  events := [];
  Hashtbl.reset tbl;
  !reset_hists ();
  !reset_attr ();
  cur_pid := Unix.getpid ()

(* ---------------- counters ------------------------------------------ *)

let add name v =
  match Hashtbl.find_opt tbl name with
  | Some old -> Hashtbl.replace tbl name (old +. v)
  | None -> Hashtbl.replace tbl name v

let add_int name v = if v <> 0 then add name (float_of_int v)

let counters () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters_delta ~since =
  counters ()
  |> List.filter_map (fun (k, v) ->
         let d =
           match List.assoc_opt k since with Some v0 -> v -. v0 | None -> v
         in
         if d <> 0. then Some (k, d) else None)

let merge_counters l = List.iter (fun (k, v) -> add k v) l

(* ---------------- histograms ---------------------------------------- *)

(* Named sample distributions (per-SAT-call latency, per-run simulation
   time, ...).  Always on, like counters: one dynamic-array push per
   observation.  Summaries (p50/p95/...) are computed on demand by
   sorting a copy — observation stays O(1), reporting pays the sort.
   Past [hist_cap] samples, new observations overwrite a slot chosen by
   a deterministic LCG: a bounded-memory reservoir that keeps the
   summary representative without making two identical runs diverge. *)

let hist_cap = 65_536

type hist_state = {
  mutable samples : float array;
  mutable n : int;        (* filled slots, <= Array.length samples *)
  mutable total : int;    (* observations ever, for the reservoir *)
  mutable lcg : int;
}

let hists : (string, hist_state) Hashtbl.t = Hashtbl.create 16

let observe name v =
  let h =
    match Hashtbl.find_opt hists name with
    | Some h -> h
    | None ->
        let h = { samples = Array.make 64 0.; n = 0; total = 0; lcg = 0x5EED } in
        Hashtbl.replace hists name h;
        h
  in
  h.total <- h.total + 1;
  if h.n < hist_cap then begin
    if h.n = Array.length h.samples then begin
      let bigger = Array.make (min hist_cap (2 * h.n)) 0. in
      Array.blit h.samples 0 bigger 0 h.n;
      h.samples <- bigger
    end;
    h.samples.(h.n) <- v;
    h.n <- h.n + 1
  end
  else begin
    h.lcg <- ((h.lcg * 1103515245) + 12345) land 0x3FFFFFFF;
    h.samples.(h.lcg mod hist_cap) <- v
  end

type histogram = {
  count : int;    (* observations ever, not just retained samples *)
  sum : float;    (* over retained samples *)
  min_v : float;
  max_v : float;
  p50 : float;
  p90 : float;
  p95 : float;
}

let summarize h =
  let s = Array.sub h.samples 0 h.n in
  Array.sort compare s;
  let pct p =
    (* nearest-rank on the retained sample set *)
    s.(min (h.n - 1) (int_of_float (ceil (p *. float_of_int h.n)) - 1 |> max 0))
  in
  {
    count = h.total;
    sum = Array.fold_left ( +. ) 0. s;
    min_v = s.(0);
    max_v = s.(h.n - 1);
    p50 = pct 0.50;
    p90 = pct 0.90;
    p95 = pct 0.95;
  }

let histogram name =
  match Hashtbl.find_opt hists name with
  | Some h when h.n > 0 -> Some (summarize h)
  | Some _ | None -> None

let histograms () =
  Hashtbl.fold
    (fun k h acc -> if h.n > 0 then (k, summarize h) :: acc else acc)
    hists []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let histogram_samples () =
  Hashtbl.fold
    (fun k h acc ->
      if h.n > 0 then (k, Array.sub h.samples 0 h.n) :: acc else acc)
    hists []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge_histogram_samples l =
  List.iter (fun (name, s) -> Array.iter (observe name) s) l

let () = reset_hists := fun () -> Hashtbl.reset hists

(* ---------------- cost attribution ---------------------------------- *)

(* Per-candidate cost rows.  The SAT layer bills every solve to the key
   currently in dynamic scope ([with_key]); untagged calls are simply
   not billed.  Like counters, the table is fork-aware: a worker resets,
   tags its shard, and ships [export ()] home through its result pipe
   where the coordinator [merge]s it — a killed worker's rows die with
   it, so nothing is double-billed. *)

module Attr = struct
  type row = {
    a_key : string;          (* Candidate.key, or "(...)"-bracketed bucket *)
    a_shard : int option;
    a_wall_s : float;
    a_sat_calls : int;
    a_conflicts : int;
    a_core_skips : int;
    a_static : bool;
  }

  let atbl : (string, row) Hashtbl.t = Hashtbl.create 64
  let cur_key : string option ref = ref None
  let cur_shard : int option ref = ref None

  let set_shard s = cur_shard := s

  let blank key =
    {
      a_key = key;
      a_shard = !cur_shard;
      a_wall_s = 0.;
      a_sat_calls = 0;
      a_conflicts = 0;
      a_core_skips = 0;
      a_static = false;
    }

  let find key =
    match Hashtbl.find_opt atbl key with
    | Some r -> r
    | None -> blank key

  let with_key key f =
    let saved = !cur_key in
    cur_key := Some key;
    Fun.protect ~finally:(fun () -> cur_key := saved) f

  let charge_call ~wall_s ~conflicts =
    match !cur_key with
    | None -> ()
    | Some key ->
        let r = find key in
        Hashtbl.replace atbl key
          {
            r with
            a_shard = (match r.a_shard with Some _ as s -> s | None -> !cur_shard);
            a_wall_s = r.a_wall_s +. wall_s;
            a_sat_calls = r.a_sat_calls + 1;
            a_conflicts = r.a_conflicts + conflicts;
          }

  let credit_core_skip key =
    let r = find key in
    Hashtbl.replace atbl key { r with a_core_skips = r.a_core_skips + 1 }

  let note_static key =
    let r = find key in
    Hashtbl.replace atbl key { r with a_static = true }

  let export () =
    Hashtbl.fold (fun _ r acc -> r :: acc) atbl []
    |> List.sort (fun a b -> compare a.a_key b.a_key)

  let merge rows =
    List.iter
      (fun r ->
        match Hashtbl.find_opt atbl r.a_key with
        | None -> Hashtbl.replace atbl r.a_key r
        | Some o ->
            Hashtbl.replace atbl r.a_key
              {
                a_key = o.a_key;
                a_shard = (match o.a_shard with Some _ as s -> s | None -> r.a_shard);
                a_wall_s = o.a_wall_s +. r.a_wall_s;
                a_sat_calls = o.a_sat_calls + r.a_sat_calls;
                a_conflicts = o.a_conflicts + r.a_conflicts;
                a_core_skips = o.a_core_skips + r.a_core_skips;
                a_static = o.a_static || r.a_static;
              })
      rows

  let delta ~since rows =
    let base = Hashtbl.create (List.length since) in
    List.iter (fun r -> Hashtbl.replace base r.a_key r) since;
    List.filter_map
      (fun r ->
        let d =
          match Hashtbl.find_opt base r.a_key with
          | None -> r
          | Some o ->
              {
                r with
                a_wall_s = r.a_wall_s -. o.a_wall_s;
                a_sat_calls = r.a_sat_calls - o.a_sat_calls;
                a_conflicts = r.a_conflicts - o.a_conflicts;
                a_core_skips = r.a_core_skips - o.a_core_skips;
                (* static only counts if set within the window — an
                   earlier run's static discharges must not leak into
                   this run's table *)
                a_static = r.a_static && not o.a_static;
              }
        in
        if
          d.a_sat_calls = 0 && d.a_conflicts = 0 && d.a_core_skips = 0
          && d.a_wall_s = 0. && not d.a_static
        then None
        else Some d)
      rows

  (* deterministic ranking: wall time is excluded on purpose, so the
     same proof run always yields the same table byte-for-byte *)
  let top ?(k = 10) rows =
    rows
    |> List.filter (fun r -> String.length r.a_key > 0 && r.a_key.[0] <> '(')
    |> List.sort (fun a b ->
           match compare b.a_conflicts a.a_conflicts with
           | 0 -> (
               match compare b.a_sat_calls a.a_sat_calls with
               | 0 -> compare a.a_key b.a_key
               | c -> c)
           | c -> c)
    |> List.filteri (fun i _ -> i < k)

  let () = reset_attr := fun () ->
      Hashtbl.reset atbl;
      cur_key := None;
      cur_shard := None
end

(* ---------------- spans --------------------------------------------- *)

let record e = events := e :: !events

let instant ?(cat = "instant") ?(args = []) name =
  if !enabled then
    record
      {
        name;
        cat;
        ph = Instant;
        ts_us = Clock.now_s () *. 1e6;
        dur_us = 0.;
        pid = !cur_pid;
        args;
      }

let with_span ?(cat = "span") ?args name f =
  if not !enabled then f ()
  else begin
    let snap = counters () in
    let t0 = Clock.now_s () in
    let close () =
      let t1 = Clock.now_s () in
      let extra =
        match args with
        | None -> []
        | Some thunk -> ( try thunk () with _ -> [])
      in
      record
        {
          name;
          cat;
          ph = Complete;
          ts_us = t0 *. 1e6;
          dur_us = (t1 -. t0) *. 1e6;
          pid = !cur_pid;
          args =
            extra
            @ List.map (fun (k, v) -> (k, Float v)) (counters_delta ~since:snap);
        }
    in
    match f () with
    | r ->
        close ();
        r
    | exception e ->
        close ();
        raise e
  end

let with_span_timed ?cat ?args name f =
  let t0 = Clock.now_s () in
  let r = with_span ?cat ?args name f in
  (r, Clock.now_s () -. t0)

let drain () =
  (* recorded order is completion order (a nested span closes before its
     parent); chronological means start-time order, so sort — stable, so
     simultaneous events keep their recording order *)
  let l =
    List.stable_sort
      (fun a b -> compare a.ts_us b.ts_us)
      (List.rev !events)
  in
  events := [];
  l

let inject evs =
  if !enabled then List.iter record evs

let counter_events () =
  let ts = Clock.now_s () *. 1e6 in
  List.map
    (fun (name, v) ->
      {
        name;
        cat = "counter";
        ph = Counter;
        ts_us = ts;
        dur_us = 0.;
        pid = !cur_pid;
        args = [ ("value", Float v) ];
      })
    (counters ())

(* ---------------- JSON emission ------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_json f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "0"

let arg_json = function
  | Int i -> string_of_int i
  | Float f -> float_json f
  | Str s -> "\"" ^ escape s ^ "\""
  | Bool b -> string_of_bool b

let args_json = function
  | [] -> ""
  | args ->
      Printf.sprintf ",\"args\":{%s}"
        (String.concat ","
           (List.map
              (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (arg_json v))
              args))

let event_json e =
  let ph, extra =
    match e.ph with
    | Complete -> ("X", Printf.sprintf ",\"dur\":%.3f" e.dur_us)
    | Instant -> ("i", ",\"s\":\"p\"")
    | Counter -> ("C", "")
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f%s,\"pid\":%d,\"tid\":0%s}"
    (escape e.name) (escape e.cat) ph e.ts_us extra e.pid (args_json e.args)

let write_chrome oc evs =
  output_string oc "{\"traceEvents\":[\n";
  output_string oc (String.concat ",\n" (List.map event_json evs));
  output_string oc "\n],\"displayTimeUnit\":\"ms\"}\n"

let write_jsonl oc evs =
  List.iter
    (fun e ->
      output_string oc (event_json e);
      output_char oc '\n')
    evs

type sink = Chrome of string | Jsonl of string

let sink_of_path path =
  if Filename.check_suffix path ".jsonl" then Jsonl path else Chrome path

(* ---------------- atomic file writes -------------------------------- *)

(* Same discipline as Proof_cache v2: write to a pid-unique sibling tmp,
   then rename.  A reader (the perf gate, a metrics scraper) either sees
   the old complete file or the new complete file, never a torn one. *)
let write_file_atomic path contents =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  let oc = open_out tmp in
  (try
     output_string oc contents;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let write_sink sink evs =
  let path, writer =
    match sink with
    | Chrome p -> (p, write_chrome)
    | Jsonl p -> (p, write_jsonl)
  in
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  (try
     let oc = open_out tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () -> writer oc evs);
     Sys.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e)

(* ---------------- structured run log -------------------------------- *)

(* Leveled JSONL event log.  One [Unix.write] per line on an O_APPEND
   descriptor: atomic on POSIX for these sizes, so a forked worker that
   inherited the fd interleaves whole lines with the coordinator rather
   than tearing them. *)

module Log = struct
  type level = Debug | Info | Warn | Error

  let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
  let level_label = function
    | Debug -> "debug" | Info -> "info" | Warn -> "warn" | Error -> "error"

  let level_of_string s =
    match String.lowercase_ascii (String.trim s) with
    | "debug" -> Some Debug
    | "info" -> Some Info
    | "warn" | "warning" -> Some Warn
    | "error" -> Some Error
    | _ -> None

  let fd : Unix.file_descr option ref = ref None
  let threshold = ref Info

  let set ?(level = Info) path =
    (match !fd with Some f -> (try Unix.close f with Unix.Unix_error _ -> ()) | None -> ());
    threshold := level;
    fd :=
      Some
        (Unix.openfile path
           [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
           0o644)

  let close () =
    (match !fd with Some f -> (try Unix.close f with Unix.Unix_error _ -> ()) | None -> ());
    fd := None

  let active () = !fd <> None

  let write_line line =
    match !fd with
    | None -> ()
    | Some f ->
        let line = line ^ "\n" in
        let b = Bytes.of_string line in
        (try ignore (Unix.write f b 0 (Bytes.length b))
         with Unix.Unix_error _ -> ())

  let event ?(level = Info) ?stage ?shard ?(kv = []) name =
    match !fd with
    | None -> ()
    | Some _ when level_rank level < level_rank !threshold -> ()
    | Some _ ->
        let b = Buffer.create 128 in
        Buffer.add_string b
          (Printf.sprintf "{\"ts\":%.6f,\"level\":\"%s\",\"event\":\"%s\""
             (Clock.wall_s ()) (level_label level) (escape name));
        (match stage with
        | Some s -> Buffer.add_string b (Printf.sprintf ",\"stage\":\"%s\"" (escape s))
        | None -> ());
        (match shard with
        | Some i -> Buffer.add_string b (Printf.sprintf ",\"shard\":%d" i)
        | None -> ());
        List.iter
          (fun (k, v) ->
            Buffer.add_string b
              (Printf.sprintf ",\"%s\":%s" (escape k) (arg_json v)))
          kv;
        Buffer.add_char b '}';
        write_line (Buffer.contents b)
end

(* ---------------- OpenMetrics exposition ---------------------------- *)

(* Prometheus text format over the always-on counters and histograms.
   Fully deterministic for a fixed recorder state: names are sanitized
   and sorted, floats go through %.6g, and histogram buckets are a fixed
   ladder.  [_count]/[_sum] are over the *retained* reservoir samples
   (see the histogram doc), which keeps the exposition consistent with
   the bucket counts. *)

let metric_name name =
  let b = Buffer.create (String.length name + 5) in
  Buffer.add_string b "pdat_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let hist_buckets = [ 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.; 10. ]

let openmetrics () =
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      let m = metric_name name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" m);
      Buffer.add_string b (Printf.sprintf "%s_total %s\n" m (float_json v)))
    (counters ());
  List.iter
    (fun (name, samples) ->
      let m = metric_name name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" m);
      let n = Array.length samples in
      let cum le = Array.fold_left (fun acc s -> if s <= le then acc + 1 else acc) 0 samples in
      List.iter
        (fun le ->
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" m (float_json le) (cum le)))
        hist_buckets;
      Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" m n);
      Buffer.add_string b
        (Printf.sprintf "%s_sum %s\n" m
           (float_json (Array.fold_left ( +. ) 0. samples)));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" m n))
    (histogram_samples ());
  Buffer.add_string b "# EOF\n";
  Buffer.contents b
