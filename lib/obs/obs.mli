(** Observability: tracing spans, named counters and a monotonic clock
    for the whole PDAT stack.

    The layer has two halves with different costs:

    - {b counters} are always on.  Every [add] updates one hash-table
      cell; instrumentation points (SAT calls, simulated cycles, cache
      probes) batch their updates so the overhead stays far below the
      work being counted.
    - {b spans} are recorded only while tracing is {!enable}d.  A span
      is a named interval on the monotonic clock; at exit it
      automatically attaches the delta of every counter that moved
      while it was open, so a ["prove"] stage span carries the SAT
      conflicts/decisions/propagations and cache hits it caused.

    Recorded events serialize as Chrome trace-event JSON (load the file
    in [chrome://tracing] / Perfetto) or as JSONL.  Events are plain
    marshalable values: a forked worker records its own events and
    ships them back through its result pipe, and the parent {!inject}s
    them into the session, so workers appear as spans under their own
    pid next to the coordinator's stages. *)

module Clock : sig
  val now_s : unit -> float
  (** Monotonic seconds since process start (shared with forked
      children, so parent and child timestamps are comparable).  Built
      on [Unix.gettimeofday] guarded against clock steps: a backwards
      step contributes zero elapsed time instead of a negative one, and
      an implausibly large forward step (> 1 h between two observations
      of a busy process) is dropped rather than billed to whatever span
      was open.  All deadline arithmetic in the repo is on this scale:
      a deadline is [now_s () +. budget], never a wall-clock date, so
      an NTP correction can neither fire a budget early nor park it in
      the future. *)

  val wall_s : unit -> float
  (** [Unix.gettimeofday], for timestamps that must mean calendar time.
      Never used for deadlines. *)
end

module Hw : sig
  val online_cores : unit -> int
  (** Detected online CPU count: [getconf _NPROCESSORS_ONLN], falling
      back to counting [processor] lines in [/proc/cpuinfo], falling
      back to 1.  Cached after the first call.  The [PDAT_FORCE_CORES]
      environment variable overrides the detection (checked on every
      call; intended for tests that need a deterministic clamp). *)
end

(** {1 Counters} *)

val add : string -> float -> unit
(** [add name v] accumulates [v] into the named counter.  Always on. *)

val add_int : string -> int -> unit

val counters : unit -> (string * float) list
(** Current cumulative counter values, sorted by name. *)

val counters_delta : since:(string * float) list -> (string * float) list
(** Counters that moved since a previous {!counters} snapshot, with
    their deltas. *)

val merge_counters : (string * float) list -> unit
(** Accumulate another process' counter deltas (e.g. a worker's) into
    this process' counters. *)

(** {1 Histograms}

    Named sample distributions, always on like counters: {!observe} is
    one dynamic-array push.  Percentiles are computed on demand
    (nearest-rank over the retained samples).  Each distribution
    retains at most 65 536 samples; past that, new observations
    overwrite deterministically-chosen slots (a fixed-seed reservoir),
    so [count] keeps counting every observation while memory stays
    bounded.  {!reset} clears distributions along with counters. *)

val observe : string -> float -> unit
(** [observe name v] records one sample into the named distribution. *)

type histogram = {
  count : int;    (** observations ever, including overwritten ones *)
  sum : float;    (** over the retained samples *)
  min_v : float;
  max_v : float;
  p50 : float;
  p90 : float;
  p95 : float;
}

val histogram : string -> histogram option
(** [None] if the distribution has no samples. *)

val histograms : unit -> (string * histogram) list
(** All non-empty distributions, sorted by name. *)

val histogram_samples : unit -> (string * float array) list
(** Raw retained samples, sorted by name — how a forked worker ships
    its distributions back to the coordinator. *)

val merge_histogram_samples : (string * float array) list -> unit
(** Re-observe another process' samples into this process. *)

(** {1 Cost attribution}

    Per-candidate cost rows: wall time, SAT calls, conflicts and
    unsat-core skip credits, billed to whatever key is in dynamic scope
    when the SAT layer reports a solve.  Keys are {!Engine.Candidate}
    keys; aggregate (multi-candidate) solver calls are billed to
    ["(...)"]-bracketed bucket keys, which {!Attr.top} excludes.  Like
    counters, the table is fork-aware: a worker {!reset}s, tags its
    shard with {!Attr.set_shard}, and ships {!Attr.export} home through
    its result pipe, where the coordinator {!Attr.merge}s it exactly
    once — a killed worker's rows die with the worker. *)

module Attr : sig
  type row = {
    a_key : string;       (** candidate key, or a ["(...)"] bucket *)
    a_shard : int option; (** worker index that paid the cost, if any *)
    a_wall_s : float;     (** solver wall time billed to this key *)
    a_sat_calls : int;
    a_conflicts : int;
    a_core_skips : int;   (** re-checks avoided by an unsat core *)
    a_static : bool;      (** discharged by the abstract-interpretation
                              tier without SAT *)
  }

  val set_shard : int option -> unit
  (** Tag subsequently created rows with this worker index. *)

  val with_key : string -> (unit -> 'a) -> 'a
  (** [with_key k f] bills every {!charge_call} during [f] to [k].
      Nests; restored on exit even when [f] raises. *)

  val charge_call : wall_s:float -> conflicts:int -> unit
  (** Bill one SAT call to the key in scope (no-op without one) — the
      call site is the solver's solve wrapper. *)

  val credit_core_skip : string -> unit
  (** Credit one avoided re-check to the given candidate key. *)

  val note_static : string -> unit
  (** Mark the key as discharged by the static tier. *)

  val export : unit -> row list
  (** All rows, sorted by key — the marshalable worker payload. *)

  val merge : row list -> unit
  (** Accumulate another process' rows: numeric fields sum, an existing
      shard tag wins over an incoming one. *)

  val delta : since:row list -> row list -> row list
  (** Rows of the second argument minus a prior {!export} snapshot;
      all-zero rows are dropped. *)

  val top : ?k:int -> row list -> row list
  (** Deterministic top-[k] (default 10) most expensive candidates:
      ranked by conflicts, then SAT calls, then key — wall time is
      deliberately not a ranking criterion, so the table is
      byte-reproducible across runs.  Bucket rows are excluded. *)
end

(** {1 Spans and events} *)

type arg = Int of int | Float of float | Str of string | Bool of bool

type phase = Complete | Instant | Counter

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts_us : float;   (** start time, µs on the {!Clock.now_s} scale *)
  dur_us : float;  (** [Complete] spans only *)
  pid : int;       (** recording process *)
  args : (string * arg) list;
}

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Clear recorded events and all counters, and re-read the pid.  A
    forked child must call this first so it records only its own work
    under its own pid. *)

val with_span :
  ?cat:string -> ?args:(unit -> (string * arg) list) -> string ->
  (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span (recorded only when
    enabled).  [args] is evaluated at span exit — it may read state [f]
    produced.  Counter deltas are attached automatically.  The span is
    closed (and recorded) even when [f] raises. *)

val with_span_timed :
  ?cat:string -> ?args:(unit -> (string * arg) list) -> string ->
  (unit -> 'a) -> 'a * float
(** Like {!with_span} but additionally returns the wall-clock duration
    in seconds, measured on {!Clock.now_s} whether or not tracing is
    enabled — the pipeline's per-stage timing is this value. *)

val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit
(** Record a point event (when enabled). *)

val drain : unit -> event list
(** All recorded events in chronological order; clears the buffer. *)

val inject : event list -> unit
(** Append events recorded elsewhere (a worker's {!drain} shipped back
    over a pipe).  Dropped when tracing is disabled. *)

val counter_events : unit -> event list
(** One [Counter] event per current counter, timestamped now — append
    to a drained event list so the final totals appear in the trace. *)

(** {1 Sinks} *)

type sink = Chrome of string | Jsonl of string

val sink_of_path : string -> sink
(** [.jsonl] paths select {!Jsonl}, everything else {!Chrome}. *)

val write_chrome : out_channel -> event list -> unit
(** Chrome trace-event format: [{"traceEvents": [...]}]. *)

val write_jsonl : out_channel -> event list -> unit
(** One JSON event object per line. *)

val write_file_atomic : string -> string -> unit
(** [write_file_atomic path contents] writes through a pid-unique
    sibling tmp file and renames it into place — the same discipline as
    [Proof_cache]'s flush, so an interrupted writer can never leave a
    torn file.  Raises as [open_out]/[Sys.rename] do. *)

val write_sink : sink -> event list -> unit
(** Write (creating/overwriting) the sink's file.  Atomic: the file is
    staged as a pid-unique tmp and renamed into place. *)

(** {1 Structured run log}

    Leveled JSONL events ([{"ts":..,"level":..,"event":..,...}]) on an
    [O_APPEND] descriptor, one [Unix.write] per line — whole lines
    interleave rather than tear, so forked workers may share the fd.
    Inactive (every call a no-op) until {!Log.set} opens a file. *)

module Log : sig
  type level = Debug | Info | Warn | Error

  val level_of_string : string -> level option
  (** ["debug"]/["info"]/["warn"]/["error"], case-insensitive. *)

  val set : ?level:level -> string -> unit
  (** Open (append) the log file and set the minimum level (default
      [Info]).  Replaces any previously open log. *)

  val close : unit -> unit
  val active : unit -> bool

  val event :
    ?level:level -> ?stage:string -> ?shard:int ->
    ?kv:(string * arg) list -> string -> unit
  (** Emit one event line: [ts] (wall clock), [level], [event] name,
      optional [stage]/[shard], then the [kv] pairs.  Dropped when no
      log is open or the level is below the threshold. *)
end

(** {1 OpenMetrics exposition} *)

val openmetrics : unit -> string
(** The current counters and histograms in Prometheus/OpenMetrics text
    format: each counter as [pdat_<name>_total], each histogram with
    cumulative buckets over a fixed le-ladder
    (1e-5 … 10, +Inf) plus [_sum]/[_count], terminated by [# EOF].
    Histogram [_count]/[_sum] cover the retained reservoir samples.
    Byte-deterministic for a fixed recorder state: names sanitized
    ([^a-zA-Z0-9_] → [_]) and emitted in sorted order. *)
