type net = int

type cell = {
  kind : Cell.kind;
  ins : net array;
  out : net;
  init : bool;
}

type t = {
  name : string;
  cells : cell Vec.t;
  mutable n_nets : int;
  drivers : int Vec.t;
  pis : (string * net) Vec.t;
  pos : (string * net) Vec.t;
  names : (net, string) Hashtbl.t;
  pi_index : (string, net) Hashtbl.t;
}

let net_false = 0
let net_true = 1

let dummy_cell = { kind = Cell.Const0; ins = [||]; out = 0; init = false }

let create name =
  let d =
    {
      name;
      cells = Vec.create ~dummy:dummy_cell ();
      n_nets = 0;
      drivers = Vec.create ~dummy:(-1) ();
      pis = Vec.create ~dummy:("", -1) ();
      pos = Vec.create ~dummy:("", -1) ();
      names = Hashtbl.create 64;
      pi_index = Hashtbl.create 16;
    }
  in
  (* Nets 0 and 1 are the constant rails, driven by cells 0 and 1. *)
  d.n_nets <- 2;
  Vec.push d.drivers 0;
  Vec.push d.drivers 1;
  Vec.push d.cells { kind = Cell.Const0; ins = [||]; out = net_false; init = false };
  Vec.push d.cells { kind = Cell.Const1; ins = [||]; out = net_true; init = false };
  d

let name d = d.name

let new_net d =
  let n = d.n_nets in
  d.n_nets <- n + 1;
  Vec.push d.drivers (-1);
  n

let num_nets d = d.n_nets
let num_cells d = Vec.length d.cells

let check_ins d kind ins =
  if Array.length ins <> Cell.arity kind then
    invalid_arg
      (Printf.sprintf "Design.add_cell %s: arity %d, got %d inputs"
         (Cell.name kind) (Cell.arity kind) (Array.length ins));
  Array.iter
    (fun n ->
      if n < 0 || n >= d.n_nets then
        invalid_arg
          (Printf.sprintf "Design.add_cell %s: input net %d out of range"
             (Cell.name kind) n))
    ins

let add_cell_out d ?(init = false) kind ins ~out =
  check_ins d kind ins;
  if out < 0 || out >= d.n_nets then
    invalid_arg "Design.add_cell_out: output net out of range";
  if Vec.get d.drivers out <> -1 then
    invalid_arg
      (Printf.sprintf "Design.add_cell_out: net %d already driven" out);
  Vec.set d.drivers out (Vec.length d.cells);
  Vec.push d.cells { kind; ins = Array.copy ins; out; init }

let unsafe_add_cell_out d ?(init = false) kind ins ~out =
  check_ins d kind ins;
  if out < 0 || out >= d.n_nets then
    invalid_arg "Design.unsafe_add_cell_out: output net out of range";
  (* Unlike [add_cell_out] this never raises on an already-driven net;
     the driver index keeps the first driver so reads stay deterministic. *)
  if Vec.get d.drivers out = -1 then Vec.set d.drivers out (Vec.length d.cells);
  Vec.push d.cells { kind; ins = Array.copy ins; out; init }

let add_cell d kind ins =
  let out = new_net d in
  add_cell_out d kind ins ~out;
  out

let add_dff d ?(init = false) ~d:data () =
  let out = new_net d in
  add_cell_out d ~init Cell.Dff [| data |] ~out;
  out

let cell d i = Vec.get d.cells i

let replace_cell d i ?init kind ins =
  if i < 0 || i >= Vec.length d.cells then
    invalid_arg "Design.replace_cell: cell id out of range";
  if i <= 1 then invalid_arg "Design.replace_cell: cannot replace a tie cell";
  check_ins d kind ins;
  let old = Vec.get d.cells i in
  let init = match init with Some b -> b | None -> old.init in
  Vec.set d.cells i { kind; ins = Array.copy ins; out = old.out; init }
let iter_cells d f = Vec.iteri f d.cells
let fold_cells d f acc = snd (Vec.fold (fun (i, acc) c -> (i + 1, f acc i c)) (0, acc) d.cells)

let driver d n =
  if n < 0 || n >= d.n_nets then None
  else
    match Vec.get d.drivers n with
    | -1 | -2 -> None
    | i -> Some i

let driver_kind d n =
  if n < 0 || n >= d.n_nets then `Floating
  else
    match Vec.get d.drivers n with
    | -1 -> `Floating
    | -2 -> `Input
    | i -> `Cell i

let add_input d nm =
  let n = new_net d in
  Vec.push d.pis (nm, n);
  Hashtbl.replace d.pi_index nm n;
  Hashtbl.replace d.names n nm;
  (* Mark as externally driven so validation treats it as a source. *)
  Vec.set d.drivers n (-2);
  n

let add_output d nm n =
  if n < 0 || n >= d.n_nets then invalid_arg "Design.add_output: net out of range";
  Vec.push d.pos (nm, n)

let inputs d = Vec.to_list d.pis
let outputs d = Vec.to_list d.pos
let find_input d nm = Hashtbl.find_opt d.pi_index nm

let find_output d nm =
  Vec.fold (fun acc (nm', n) -> if nm = nm' then Some n else acc) None d.pos

let bus_of_ports ports base =
  let matches (nm, n) =
    if nm = base then Some (0, n)
    else
      let prefix = base ^ "[" in
      let lp = String.length prefix in
      if String.length nm > lp + 1
         && String.sub nm 0 lp = prefix
         && nm.[String.length nm - 1] = ']'
      then
        match int_of_string_opt (String.sub nm lp (String.length nm - lp - 1)) with
        | Some i -> Some (i, n)
        | None -> None
      else None
  in
  let found = List.filter_map matches ports in
  if found = [] then raise Not_found;
  let found = List.sort (fun (i, _) (j, _) -> compare i j) found in
  Array.of_list (List.map snd found)

let input_bus d base = bus_of_ports (Vec.to_list d.pis) base
let output_bus d base = bus_of_ports (Vec.to_list d.pos) base

let set_net_name d n nm = Hashtbl.replace d.names n nm

let net_name d n =
  match Hashtbl.find_opt d.names n with
  | Some nm -> nm
  | None -> Printf.sprintf "n%d" n

(* Rebuild with every *read* occurrence of a net redirected through [f].
   Drivers stay put, so untouched analysis data (net ids, cell ids)
   remains valid on the result. *)
let substitute d f =
  let d' =
    {
      name = d.name;
      cells = Vec.create ~capacity:(num_cells d) ~dummy:dummy_cell ();
      n_nets = d.n_nets;
      drivers = Vec.copy d.drivers;
      pis = Vec.copy d.pis;
      pos = Vec.create ~capacity:(Vec.length d.pos) ~dummy:("", -1) ();
      names = Hashtbl.copy d.names;
      pi_index = Hashtbl.copy d.pi_index;
    }
  in
  Vec.iter
    (fun c -> Vec.push d'.cells { c with ins = Array.map f c.ins })
    d.cells;
  Vec.iter (fun (nm, n) -> Vec.push d'.pos (nm, f n)) d.pos;
  d'

let copy d = substitute d (fun n -> n)

let compact d =
  let keep_cell = Array.make (num_cells d) false in
  let seen_net = Array.make d.n_nets false in
  let stack = ref [] in
  let visit n =
    if not seen_net.(n) then begin
      seen_net.(n) <- true;
      stack := n :: !stack
    end
  in
  visit net_false;
  visit net_true;
  List.iter (fun (_, n) -> visit n) (outputs d);
  let rec drain () =
    match !stack with
    | [] -> ()
    | n :: rest ->
        stack := rest;
        (match driver d n with
        | Some ci when not keep_cell.(ci) ->
            keep_cell.(ci) <- true;
            Array.iter visit (cell d ci).ins
        | Some _ | None -> ());
        drain ()
  in
  drain ();
  let d' = create d.name in
  let map = Array.make d.n_nets (-1) in
  map.(net_false) <- net_false;
  map.(net_true) <- net_true;
  (* Inputs are part of the interface: keep them all, in order. *)
  List.iter (fun (nm, n) -> map.(n) <- add_input d' nm) (inputs d);
  let mapped n =
    if map.(n) >= 0 then map.(n)
    else begin
      let n' = new_net d' in
      map.(n) <- n';
      n'
    end
  in
  iter_cells d (fun ci c ->
      (* The fresh design owns its tie cells already. *)
      let is_tie = c.kind = Cell.Const0 || c.kind = Cell.Const1 in
      if keep_cell.(ci) && not (is_tie && mapped c.out <= net_true) then begin
        let ins = Array.map mapped c.ins in
        let out = mapped c.out in
        add_cell_out d' ~init:c.init c.kind ins ~out
      end);
  List.iter (fun (nm, n) -> add_output d' nm (mapped n)) (outputs d);
  Hashtbl.iter
    (fun n nm -> if n < d.n_nets && map.(n) >= 0 then set_net_name d' map.(n) nm)
    d.names;
  d'

let validate d =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_cell i c =
    if Array.length c.ins <> Cell.arity c.kind then
      Some
        (Printf.sprintf "cell %d (%s): bad arity %d" i (Cell.name c.kind)
           (Array.length c.ins))
    else
      Array.fold_left
        (fun acc n ->
          match acc with
          | Some _ -> acc
          | None ->
              if n < 0 || n >= d.n_nets then
                Some (Printf.sprintf "cell %d: input net %d out of range" i n)
              else if Vec.get d.drivers n = -1 then
                Some
                  (Printf.sprintf "cell %d (%s): input net %d (%s) undriven" i
                     (Cell.name c.kind) n (net_name d n))
              else None)
        None c.ins
  in
  let problem =
    fold_cells d
      (fun acc i c -> match acc with Some _ -> acc | None -> check_cell i c)
      None
  in
  match problem with
  | Some msg -> err "%s: %s" d.name msg
  | None ->
      let bad_po =
        List.find_opt (fun (_, n) -> Vec.get d.drivers n = -1) (outputs d)
      in
      (match bad_po with
      | Some (nm, n) -> err "%s: output %s (net %d) undriven" d.name nm n
      | None -> Ok ())
