(** The gate-level netlist store.

    A design is a single-clock-domain synchronous circuit: a set of
    nets (dense integer ids), cells driving nets, named primary inputs
    and outputs.  Nets {!net_false} and {!net_true} are always present
    and driven by tie cells.

    The store is a builder: cells and nets are appended, and analysis
    passes ({!Topo}, {!Stats}, simulation, SAT encoding) treat it as
    read-only.  Transformations produce new designs via {!substitute}
    and {!compact}. *)

type net = int

type cell = {
  kind : Cell.kind;
  ins : net array;
  out : net;
  init : bool;  (** reset value; meaningful only for [Dff] *)
}

type t

val net_false : net
(** The always-0 net (id 0). *)

val net_true : net
(** The always-1 net (id 1). *)

val create : string -> t
val name : t -> string

val new_net : t -> net
val num_nets : t -> int
val num_cells : t -> int

val add_cell : t -> Cell.kind -> net array -> net
(** [add_cell d kind ins] allocates a fresh output net, appends the
    cell and returns the output net.
    @raise Invalid_argument on arity mismatch or undriven semantics
    violations (an input net id out of range). *)

val add_cell_out : t -> ?init:bool -> Cell.kind -> net array -> out:net -> unit
(** Like {!add_cell} but drives a pre-allocated net, used to close
    register feedback loops.  @raise Invalid_argument if [out] already
    has a driver. *)

val add_dff : t -> ?init:bool -> d:net -> unit -> net
(** Flip-flop convenience wrapper around {!add_cell_out}. *)

val unsafe_add_cell_out : t -> ?init:bool -> Cell.kind -> net array -> out:net -> unit
(** Like {!add_cell_out} but skips the single-driver check, so it can
    construct deliberately malformed netlists (multi-driven nets) for
    the lint tests and the structural fault seeder.  The driver index
    keeps the {e first} driver.  Never use this in transformation
    passes. *)

val cell : t -> int -> cell
(** Cell by dense id, [0 <= id < num_cells]. *)

val replace_cell : t -> int -> ?init:bool -> Cell.kind -> net array -> unit
(** [replace_cell d i kind ins] swaps cell [i]'s function and fanin in
    place, keeping its output net (and [init] unless overridden).  The
    mutation exists for the fault-injection harness; transformation
    passes should keep using {!substitute}.
    @raise Invalid_argument on a tie cell (ids 0/1), an out-of-range
    id, or an arity/net-range violation. *)

val iter_cells : t -> (int -> cell -> unit) -> unit
val fold_cells : t -> ('a -> int -> cell -> 'a) -> 'a -> 'a

val driver : t -> net -> int option
(** Cell id driving the net; [None] for primary inputs and dangling nets. *)

val driver_kind : t -> net -> [ `Cell of int | `Input | `Floating ]
(** Like {!driver} but distinguishes a primary input from a genuinely
    undriven (floating) net — the distinction the lint rules need. *)

val add_input : t -> string -> net
(** Declares a single-bit primary input and returns its fresh net. *)

val add_output : t -> string -> net -> unit
(** Declares a single-bit primary output fed by an existing net. *)

val inputs : t -> (string * net) list
(** In declaration order. *)

val outputs : t -> (string * net) list

val find_input : t -> string -> net option
val find_output : t -> string -> net option

val input_bus : t -> string -> net array
(** All inputs named [base[i]] in index order; [base] alone is a
    1-bit bus.  @raise Not_found if no input matches. *)

val output_bus : t -> string -> net array

val set_net_name : t -> net -> string -> unit
(** Attaches a debug name; later names win. *)

val net_name : t -> net -> string
(** Debug or synthesized name (["n42"]). *)

val substitute : t -> (net -> net) -> t
(** [substitute d f] rewrites every cell input and primary output net
    [n] to [f n].  Cell outputs and input declarations are unchanged;
    cells whose outputs become unread turn into dead logic for
    {!Synthkit} to remove.  [f] need not be the identity outside used
    nets. *)

val compact : t -> t
(** Garbage-collects: keeps exactly the cells (and nets) reachable
    backwards from primary outputs and keeps all primary inputs.
    Dff cells reachable from outputs keep their full fanin cone. *)

val validate : t -> (unit, string) result
(** Structural checks: every cell input driven or a primary input,
    single driver per net, arities correct. *)

val copy : t -> t
