type t = {
  gates : int;
  buffers : int;
  flops : int;
  area : float;
  by_kind : (Cell.kind * int) list;
}

let of_design d =
  let counts = Hashtbl.create 24 in
  let bump k = Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)) in
  let gates = ref 0 and buffers = ref 0 and flops = ref 0 and area = ref 0.0 in
  Design.iter_cells d (fun _ c ->
      bump c.kind;
      area := !area +. Cell.area c.kind;
      match c.kind with
      | Cell.Const0 | Cell.Const1 -> ()
      | Cell.Buf -> incr buffers
      | Cell.Dff -> incr flops
      | Cell.Inv | Cell.And2 | Cell.Or2 | Cell.Nand2 | Cell.Nor2 | Cell.Xor2
      | Cell.Xnor2 | Cell.And3 | Cell.Or3 | Cell.Nand3 | Cell.Nor3 | Cell.And4
      | Cell.Or4 | Cell.Mux2 | Cell.Aoi21 | Cell.Oai21 ->
          incr gates);
  let by_kind =
    Hashtbl.fold (fun k c acc -> (k, c) :: acc) counts []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  { gates = !gates; buffers = !buffers; flops = !flops; area = !area; by_kind }

let total_cells t = t.gates + t.buffers + t.flops
let gate_count t = total_cells t

let delta_pct ~baseline v =
  if baseline = 0.0 then 0.0 else 100.0 *. (baseline -. v) /. baseline

(* ---------------- hierarchical breakdowns --------------------------- *)

let kind_class = function
  | Cell.Const0 | Cell.Const1 -> "tie"
  | Cell.Buf -> "buffer"
  | Cell.Dff -> "sequential"
  | Cell.Inv | Cell.And2 | Cell.Or2 | Cell.Nand2 | Cell.Nor2 | Cell.Xor2
  | Cell.Xnor2 | Cell.And3 | Cell.Or3 | Cell.Nand3 | Cell.Nor3 | Cell.And4
  | Cell.Or4 | Cell.Mux2 | Cell.Aoi21 | Cell.Oai21 ->
      "combinational"

let classes = [ "combinational"; "sequential"; "buffer"; "tie" ]

type group = {
  label : string;
  count : int;
  area : float;
  kinds : (Cell.kind * int * float) list;
}

let count_of t k =
  match List.assoc_opt k t.by_kind with Some c -> c | None -> 0

let groups t =
  List.filter_map
    (fun label ->
      let kinds =
        List.filter_map
          (fun (k, c) ->
            if kind_class k = label then
              Some (k, c, float_of_int c *. Cell.area k)
            else None)
          t.by_kind
        (* declaration order of {!Cell.kind}, for deterministic output *)
        |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
      in
      if kinds = [] then None
      else
        Some
          {
            label;
            count = List.fold_left (fun acc (_, c, _) -> acc + c) 0 kinds;
            area = List.fold_left (fun acc (_, _, a) -> acc +. a) 0. kinds;
            kinds;
          })
    classes

type delta_row = {
  kind : Cell.kind;
  count_before : int;
  count_after : int;
  area_before : float;
  area_after : float;
}

let delta_by_kind ~before ~after =
  List.filter_map
    (fun k ->
      let cb = count_of before k and ca = count_of after k in
      if cb = 0 && ca = 0 then None
      else
        Some
          {
            kind = k;
            count_before = cb;
            count_after = ca;
            area_before = float_of_int cb *. Cell.area k;
            area_after = float_of_int ca *. Cell.area k;
          })
    Cell.all

let pp fmt t =
  Format.fprintf fmt "@[<v>gates=%d buffers=%d flops=%d area=%.1f um^2@,"
    t.gates t.buffers t.flops t.area;
  List.iter
    (fun (k, c) -> Format.fprintf fmt "  %-10s %6d@," (Cell.name k) c)
    t.by_kind;
  Format.fprintf fmt "@]"
