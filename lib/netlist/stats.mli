(** Gate-count and area accounting, the metrics reported in the paper's
    figures.  Tie cells are excluded from the gate count (they are
    rails, not logic), matching how synthesis reports count cells. *)

type t = {
  gates : int;        (** combinational cells, excluding ties and buffers *)
  buffers : int;
  flops : int;
  area : float;       (** um^2 over all cells including ties *)
  by_kind : (Cell.kind * int) list;  (** descending count *)
}

val of_design : Design.t -> t

val total_cells : t -> int
(** gates + buffers + flops. *)

val gate_count : t -> int
(** The paper's "gate count": all logic cells including flops. *)

val pp : Format.formatter -> t -> unit

val delta_pct : baseline:float -> float -> float
(** [delta_pct ~baseline v] is the percent reduction of [v] versus
    [baseline]; positive when [v] is smaller. *)

(** {1 Hierarchical breakdowns}

    The run-report layer wants stats one level deeper than the flat
    totals above: cells grouped into classes (combinational /
    sequential / buffer / tie), each class broken down by cell kind
    with its Liberty area contribution, and a per-kind before/after
    delta table.  All orderings are deterministic — kinds sort in
    {!Cell.kind} declaration order — so reports built from these are
    byte-stable across runs. *)

val kind_class : Cell.kind -> string
(** ["combinational"], ["sequential"], ["buffer"] or ["tie"]. *)

val count_of : t -> Cell.kind -> int
(** Cells of that kind; [0] for a kind absent from the design. *)

type group = {
  label : string;  (** class name, see {!kind_class} *)
  count : int;
  area : float;    (** um^2, count x per-kind Liberty area *)
  kinds : (Cell.kind * int * float) list;  (** (kind, count, area) *)
}

val groups : t -> group list
(** Non-empty classes in the fixed order combinational, sequential,
    buffer, tie; within a class, kinds in declaration order. *)

type delta_row = {
  kind : Cell.kind;
  count_before : int;
  count_after : int;
  area_before : float;
  area_after : float;
}

val delta_by_kind : before:t -> after:t -> delta_row list
(** One row per kind present in either design, in {!Cell.kind}
    declaration order. *)
