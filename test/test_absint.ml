(* Tests for the abstract-interpretation invariant engine and its
   integrations: the static prover tier, induction strengthening, the
   absint-backed lint rules, plus first coverage for [Engine.Cutpoint]
   and [Engine.Equiv].

   The soundness contract under test everywhere: a fact exported by
   [Absint] is an invariant of the design under the same [assume] the
   inductive prover uses, so the snapshot oracle must confirm every
   one of them, and absint-on pipeline runs must land on the same
   reduced netlist as absint-off runs. *)

module D = Netlist.Design
module C = Netlist.Cell
module A = Engine.Absint

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sorted = List.sort Engine.Candidate.compare
let same_set a b = sorted a = sorted b

let mem_const consts n b =
  List.exists (Engine.Candidate.equal (Engine.Candidate.Const (n, b))) consts

(* the snapshot oracle must prove the whole fact set: the conjunction
   of absint facts is 1-inductive under the same assumption, and
   mutual induction is complete for conjunctive 1-inductive sets *)
let oracle_confirms ?known d assume facts =
  facts = []
  ||
  let proved, _ =
    Engine.Induction.prove_snapshot ?known ~assume d facts
  in
  same_set proved facts

(* --- the abstract fixpoint --------------------------------------------- *)

(* a rail-fed register is 0 forever; the constant propagates through a
   gate, another register and a disjunction *)
let test_forced_constants () =
  let d = D.create "const_chain" in
  let a = D.add_input d "a" in
  let na = D.add_cell d C.Inv [| a |] in
  let r = D.add_dff d ~d:D.net_false () in
  let zero = D.add_cell d C.And2 [| a; r |] in
  let r2 = D.add_dff d ~d:zero () in
  let y = D.add_cell d C.Or2 [| r; r2 |] in
  D.add_output d "y" y;
  let ai = A.run ~assume:D.net_true d in
  check "no contradiction" false (A.contradiction ai);
  check "fixpoint iterated" true (A.iterations ai >= 1);
  check_int "zero is 0" 0 (A.value ai zero);
  check_int "r is 0" 0 (A.value ai r);
  check_int "r2 is 0" 0 (A.value ai r2);
  check_int "y is 0" 0 (A.value ai y);
  check_int "free input is unknown" Engine.Ternary.x (A.value ai a);
  let consts = A.constants ai in
  check "zero exported" true (mem_const consts zero false);
  check "r exported" true (mem_const consts r false);
  check "y exported" true (mem_const consts y false);
  check "inputs never exported" false
    (List.exists
       (function Engine.Candidate.Const (n, _) -> n = a | _ -> false)
       consts);
  check "proves the constant" true
    (A.proves ai (Engine.Candidate.Const (zero, false)));
  check "refuses the negation" false
    (A.proves ai (Engine.Candidate.Const (zero, true)));
  check "refuses a free net" false
    (A.proves ai (Engine.Candidate.Const (na, false)));
  check "facts digest is stable" true
    (A.facts_digest ai = A.facts_digest (A.run ~assume:D.net_true d));
  check "oracle confirms every fact" true
    (oracle_confirms d D.net_true (A.facts ai))

(* the monitor pins an input; only assume-conditioning can see the
   register behind it never leaves reset — plain ternary cannot *)
let test_assume_conditioning () =
  let d = D.create "conditioned" in
  let i = D.add_input d "i" in
  let ok = D.add_cell d C.Inv [| i |] in
  let r = D.add_dff d ~d:i () in
  D.add_output d "q" r;
  let plain = A.run ~assume:D.net_true d in
  check_int "without the monitor the register is free" Engine.Ternary.x
    (A.value plain r);
  let ai = A.run ~assume:ok d in
  check "no contradiction" false (A.contradiction ai);
  check_int "conditioning forces the input" 0 (A.value ai i);
  check_int "the register never leaves reset" 0 (A.value ai r);
  check "fact exported" true (mem_const (A.facts ai) r false);
  (match A.stuck_registers ai with
  | [ (ci, false) ] ->
      check_int "stuck register is the dff" r (D.cell d ci).D.out
  | l -> Alcotest.failf "expected one stuck register, got %d" (List.length l));
  check "oracle confirms every conditioned fact" true
    (oracle_confirms d ok (A.facts ai))

(* implication proving: And2 out = 1 forces both inputs, hence the Or2 *)
let test_implies_proving () =
  let d = D.create "implies" in
  let x = D.add_input d "x" in
  let y = D.add_input d "y" in
  let a = D.add_cell d C.And2 [| x; y |] in
  let b = D.add_cell d C.Or2 [| x; y |] in
  D.add_output d "a" a;
  D.add_output d "b" b;
  let cell = match D.driver d a with Some ci -> ci | None -> assert false in
  let ai = A.run ~assume:D.net_true d in
  check "and=1 implies or=1" true
    (A.proves ai (Engine.Candidate.Implies { cell; a; b }));
  check "or=1 does not imply and=1" false
    (A.proves ai (Engine.Candidate.Implies { cell; a = b; b = a }));
  check "implications are not in the fact set" true
    (List.for_all
       (function Engine.Candidate.Const _ -> true | _ -> false)
       (A.facts ai))

let test_word_facts () =
  let d = D.create "words" in
  let a0 = D.add_input d "a[0]" in
  let a1 = D.add_input d "a[1]" in
  let ok = D.add_cell d C.Inv [| a1 |] in
  let y = D.add_cell d C.Or2 [| a0; a1 |] in
  D.add_output d "y" y;
  let ai = A.run ~assume:ok d in
  match List.filter (fun w -> w.A.w_base = "a") (A.word_facts ai) with
  | [ w ] ->
      check_int "width" 2 w.A.w_width;
      check "bit 1 known" true (Int64.equal w.A.w_known_mask 2L);
      check "known value 0" true (Int64.equal w.A.w_known_value 0L);
      check "lo" true (Int64.equal w.A.w_lo 0L);
      check "hi" true (Int64.equal w.A.w_hi 1L)
  | l -> Alcotest.failf "expected one word fact for a, got %d" (List.length l)

(* an unsatisfiable assumption: the engine must degrade to claiming
   nothing rather than "proving" everything *)
let test_contradiction () =
  let d = D.create "contra" in
  let a = D.add_input d "a" in
  let r = D.add_dff d ~d:a () in
  D.add_output d "q" r;
  let ai = A.run ~assume:D.net_false d in
  check "contradiction flagged" true (A.contradiction ai);
  check_int "no facts" 0 (A.n_facts ai);
  check "proves nothing" false
    (A.proves ai (Engine.Candidate.Const (r, false)));
  check "no stuck registers claimed" true (A.stuck_registers ai = []);
  check "digest still defined" true (String.length (A.facts_digest ai) > 0)

let test_dead_write () =
  let d = D.create "deadwrite" in
  let s = D.add_input d "s" in
  let a = D.add_input d "a" in
  let b = D.add_input d "b" in
  let ok = D.add_cell d C.Inv [| s |] in
  let m = D.add_cell d C.Mux2 [| s; a; b |] in
  let r = D.add_dff d ~d:m () in
  D.add_output d "q" r;
  (* free select: no claim *)
  check "free select claims nothing" true
    (A.dead_writes (A.run ~assume:D.net_true d) = []);
  (* the monitor pins the select low: the B arm is dead *)
  match A.dead_writes (A.run ~assume:ok d) with
  | [ (ci, false) ] -> check_int "the register's write" r (D.cell d ci).D.out
  | l -> Alcotest.failf "expected one dead write, got %d" (List.length l)

(* --- the static tier inside the prover --------------------------------- *)

let test_static_tier_accounting () =
  let d = D.create "tier" in
  let a = D.add_input d "a" in
  let r = D.add_dff d ~d:D.net_false () in
  let zero = D.add_cell d C.And2 [| a; r |] in
  D.add_output d "y" (D.add_cell d C.Or2 [| zero; a |]);
  let cands =
    [ Engine.Candidate.Const (zero, false); Engine.Candidate.Const (r, false) ]
  in
  let ai = A.run ~assume:D.net_true d in
  let proved, st =
    Engine.Induction.prove_parallel ~jobs:1 ~absint:ai ~assume:D.net_true d
      cands
  in
  check "both candidates proved" true (same_set proved cands);
  check_int "both discharged statically" 2
    st.Engine.Induction.n_static_proved;
  check_int "no SAT call needed" 0 st.Engine.Induction.sat_calls;
  (* facts outside the candidate set are counted as strengthening *)
  check "strengthening facts counted" true
    (st.Engine.Induction.strengthening_facts
    = A.n_facts ai - List.length cands)

(* every statically proved verdict is cross-checked against the
   snapshot oracle, strengthened by the remaining facts *)
let test_static_proved_vs_oracle () =
  let gen_config =
    { Netlist.Generate.n_inputs = 6; n_gates = 42; n_flops = 8; n_outputs = 6 }
  in
  let mine_config =
    { Engine.Rsim.default with Engine.Rsim.cycles = 128; runs = 1 }
  in
  let confirmed = ref 0 in
  for seed = 1 to 20 do
    let d = Netlist.Generate.random ~seed ~config:gen_config () in
    let cands =
      Engine.Rsim.mine ~config:mine_config d Engine.Stimulus.unconstrained
    in
    let ai = A.run ~assume:D.net_true d in
    let static = List.filter (A.proves ai) cands in
    confirmed := !confirmed + List.length static;
    if
      not
        (oracle_confirms ~known:(A.facts ai) d D.net_true static
        && oracle_confirms d D.net_true (A.facts ai))
    then
      Alcotest.failf "seed %d: snapshot oracle refuted a static verdict" seed
  done;
  check "the sweep exercised static proofs" true (!confirmed > 0)

(* the strengthening flip: a candidate that k=1 induction alone kills on
   the step side (V_not_inductive) but that the strengthened run proves.
   [fr] is a rail-backed register — a fact absint proves — and the
   register [r] is held at 0 by

     r' = (s | (r|fr)) & (~s | (r|fr))

   which needs the non-cartesian identity (s|z) & (~s|z) = z, invisible
   to the ternary cube, so the static tier cannot discharge the
   candidate itself.  Plain induction's step side starts [fr] free,
   drives r' = 1 through fr = 1, and kills the candidate; with the fact
   fr = 0 asserted as a strengthening assumption the step query is
   Unsat and the candidate is proved. *)
let test_strengthening_flips_not_inductive () =
  let d = D.create "strengthen_flip" in
  let s = D.add_input d "s" in
  let fr = D.add_dff d ~d:D.net_false () in
  let r = D.new_net d in
  let supp = D.add_cell d C.Or2 [| r; fr |] in
  let sn = D.add_cell d C.Inv [| s |] in
  let left = D.add_cell d C.Or2 [| s; supp |] in
  let right = D.add_cell d C.Or2 [| sn; supp |] in
  let x = D.add_cell d C.And2 [| left; right |] in
  D.add_cell_out d C.Dff [| x |] ~out:r;
  D.add_output d "q" r;
  let cand = Engine.Candidate.Const (r, false) in
  let ai = A.run ~assume:D.net_true d in
  check "the support register is a fact" true
    (mem_const (A.facts ai) fr false);
  check "the cube cannot prove the candidate itself" false
    (A.proves ai cand);
  let fates = Hashtbl.create 4 in
  let p_off, _ =
    Engine.Induction.prove ~fates ~assume:D.net_true d [ cand ]
  in
  check "plain induction fails" true (p_off = []);
  check "the off-fate is a step-side kill" true
    (Hashtbl.find_opt fates cand = Some Engine.Induction.V_not_inductive);
  let attributions = Hashtbl.create 4 in
  let p_on, st =
    Engine.Induction.prove_parallel ~jobs:1 ~absint:ai ~attributions
      ~assume:D.net_true d [ cand ]
  in
  check "the strengthened run proves it" true (p_on = [ cand ]);
  check_int "not via the static tier" 0 st.Engine.Induction.n_static_proved;
  check "the fact was fed to the solver" true
    (st.Engine.Induction.strengthening_facts > 0);
  (match Hashtbl.find_opt attributions cand with
  | Some { Engine.Induction.verdict = Engine.Induction.V_proved _; _ } -> ()
  | Some a ->
      Alcotest.failf "unexpected on-fate %s"
        (Engine.Induction.verdict_label a.Engine.Induction.verdict)
  | None -> Alcotest.fail "no attribution for the candidate");
  (* the flip is sound: the snapshot oracle agrees once handed the fact *)
  check "oracle confirms the strengthened proof" true
    (oracle_confirms ~known:(A.facts ai) d D.net_true [ cand ])

(* --- absint-backed lint rules ------------------------------------------ *)

let test_lint_absint_rules () =
  let d = D.create "lintable" in
  let q = D.new_net d in
  D.add_cell_out d C.Dff [| q |] ~out:q;
  let m = D.add_cell d C.Mux2 [| D.net_false; D.add_input d "a"; q |] in
  let r = D.add_dff d ~d:m () in
  D.add_output d "q" q;
  D.add_output d "r" r;
  let ds = Analysis.Lint.run d in
  let with_rule id = List.filter (fun x -> x.Analysis.Diag.rule = id) ds in
  (match with_rule "absint-stuck-reg" with
  | [] -> Alcotest.fail "absint-stuck-reg did not fire on a stuck register"
  | h :: _ ->
      check "stuck-reg severity" true
        (h.Analysis.Diag.severity = Analysis.Diag.Warning);
      (match h.Analysis.Diag.loc with
      | Analysis.Diag.Net { net; _ } -> check "located at a flop" true (net = q || net = r)
      | _ -> Alcotest.fail "expected a net location"));
  (match with_rule "absint-dead-write" with
  | [] -> Alcotest.fail "absint-dead-write did not fire on a rail select"
  | h :: _ ->
      check "dead-write severity" true
        (h.Analysis.Diag.severity = Analysis.Diag.Info);
      check "message names the dead arm" true
        (let msg = h.Analysis.Diag.message in
         let has sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length msg
             && (String.sub msg i n = sub || go (i + 1))
           in
           go 0
         in
         has "B-input"))

(* --- cutpoint insertion ------------------------------------------------ *)

let test_cutpoint_roundtrip () =
  let d = D.create "cut" in
  let a = D.add_input d "a" in
  let b = D.add_input d "b" in
  let z = D.add_cell d C.And2 [| a; b |] in
  let y = D.add_cell d C.Inv [| z |] in
  D.add_output d "y" y;
  let d', fresh = Engine.Cutpoint.apply d ~name:"cp" [| z |] in
  check_int "one fresh input" 1 (Array.length fresh);
  check "single-net cutpoint keeps the bare name" true
    (List.mem_assoc "cp" (D.inputs d'));
  check "original design untouched" true
    (not (List.mem_assoc "cp" (D.inputs d)));
  (* drive the cutpoint with the value its old driver computes: the
     cut design must be indistinguishable from the original *)
  let sim = Netlist.Sim64.create d in
  let sim' = Netlist.Sim64.create d' in
  let y' = List.assoc "y" (D.outputs d') in
  let rng = Random.State.make [| 4242 |] in
  let ok = ref true in
  for _ = 1 to 64 do
    let va = Int64.of_int (Random.State.bits rng) in
    let vb = Int64.of_int (Random.State.bits rng) in
    Netlist.Sim64.set_input sim a va;
    Netlist.Sim64.set_input sim b vb;
    Netlist.Sim64.eval sim;
    Netlist.Sim64.set_input sim' (List.assoc "a" (D.inputs d')) va;
    Netlist.Sim64.set_input sim' (List.assoc "b" (D.inputs d')) vb;
    Netlist.Sim64.set_input sim' fresh.(0) (Netlist.Sim64.read sim z);
    Netlist.Sim64.eval sim';
    if not (Int64.equal (Netlist.Sim64.read sim y) (Netlist.Sim64.read sim' y'))
    then ok := false
  done;
  check "cut design matches when the cutpoint is driven honestly" true !ok

let test_cutpoint_bus_names_and_errors () =
  let d = D.create "cutbus" in
  let a = D.add_input d "a" in
  let n1 = D.add_cell d C.Inv [| a |] in
  let n2 = D.add_cell d C.Buf [| a |] in
  D.add_output d "y" (D.add_cell d C.And2 [| n1; n2 |]);
  let d', fresh = Engine.Cutpoint.apply d ~name:"cp" [| n1; n2 |] in
  check_int "two fresh inputs" 2 (Array.length fresh);
  check "bus cutpoints are indexed" true
    (List.mem_assoc "cp[0]" (D.inputs d')
    && List.mem_assoc "cp[1]" (D.inputs d'));
  (* cutting a primary input is a caller bug, not a silent no-op *)
  (match Engine.Cutpoint.apply d ~name:"bad" [| a |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cutting a primary input must raise")

(* --- bounded equivalence checking -------------------------------------- *)

let miter_pair build2 =
  let d1 = D.create "m1" in
  let a = D.add_input d1 "a" in
  let b = D.add_input d1 "b" in
  D.add_output d1 "y" (D.add_cell d1 C.And2 [| a; b |]);
  let d2 = D.create "m2" in
  build2 d2;
  (d1, d2)

let test_equiv_equal () =
  let _, d2 =
    miter_pair (fun d2 ->
        let a = D.add_input d2 "a" in
        let b = D.add_input d2 "b" in
        (* same function, different structure: !(!(a&b)) *)
        let n = D.add_cell d2 C.Nand2 [| a; b |] in
        D.add_output d2 "y" (D.add_cell d2 C.Inv [| n |]))
  in
  let d1, _ = miter_pair (fun _ -> ()) in
  (match Engine.Equiv.bounded ~frames:3 d1 d2 with
  | Engine.Equiv.Equivalent -> ()
  | Engine.Equiv.Counterexample { frame; output } ->
      Alcotest.failf "spurious counterexample at frame %d on %s" frame output
  | Engine.Equiv.Unknown -> Alcotest.fail "budget exhausted on a 2-gate miter")

let test_equiv_counterexample () =
  let d1, d2 =
    miter_pair (fun d2 ->
        let a = D.add_input d2 "a" in
        let b = D.add_input d2 "b" in
        D.add_output d2 "y" (D.add_cell d2 C.Or2 [| a; b |]))
  in
  match Engine.Equiv.bounded ~frames:2 d1 d2 with
  | Engine.Equiv.Counterexample { output; _ } ->
      check "cex names the diverging output" true (output = "y")
  | Engine.Equiv.Equivalent -> Alcotest.fail "and vs or declared equivalent"
  | Engine.Equiv.Unknown -> Alcotest.fail "budget exhausted on a 2-gate miter"

let test_equiv_under_assumption () =
  (* d1's monitor pins a = 0, under which a&b == 0 *)
  let d1 = D.create "m1" in
  let a = D.add_input d1 "a" in
  let b = D.add_input d1 "b" in
  let ok = D.add_cell d1 C.Inv [| a |] in
  D.add_output d1 "y" (D.add_cell d1 C.And2 [| a; b |]);
  let d2 = D.create "m2" in
  D.add_output d2 "y" D.net_false;
  (match Engine.Equiv.bounded ~assume:ok ~frames:3 d1 d2 with
  | Engine.Equiv.Equivalent -> ()
  | _ -> Alcotest.fail "assumed equivalence not recognized");
  (match Engine.Equiv.bounded ~frames:2 d1 d2 with
  | Engine.Equiv.Counterexample _ -> ()
  | _ -> Alcotest.fail "unassumed inequivalence not found");
  (* disjoint output names are a contract violation *)
  let d3 = D.create "m3" in
  D.add_output d3 "z" D.net_false;
  match Engine.Equiv.bounded ~frames:1 d1 d3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no shared outputs must raise"

(* --- the pipeline differential ----------------------------------------- *)

(* same digest-level identity the chaos harness uses *)
let design_digest d =
  Engine.Proof_cache.scope_digest d ~assume:D.net_true

let test_pipeline_absint_differential () =
  let gen_config =
    { Netlist.Generate.n_inputs = 6; n_gates = 42; n_flops = 8; n_outputs = 6 }
  in
  let reduced = ref 0 in
  for seed = 1 to 50 do
    let d = Netlist.Generate.random ~seed ~config:gen_config () in
    let run absint =
      let r =
        Pdat.Pipeline.run ~jobs:1 ~absint ~design:d
          ~env:(Pdat.Environment.unconstrained d) ()
      in
      check (Printf.sprintf "seed %d: absint flag recorded" seed) absint
        r.Pdat.Pipeline.report.Pdat.Pipeline.absint;
      r
    in
    let off = run false in
    let on = run true in
    if design_digest off.Pdat.Pipeline.reduced
       <> design_digest on.Pdat.Pipeline.reduced
    then Alcotest.failf "seed %d: absint changed the reduced netlist" seed;
    if off.Pdat.Pipeline.report.Pdat.Pipeline.proved > 0 then incr reduced
  done;
  check "the sweep exercised non-trivial reductions" true (!reduced > 10)

(* --- strengthening on the flagship out-of-order core ------------------- *)

(* At flagship scale the tier's contract is: a large slice of the mined
   set is discharged without SAT, every static verdict agrees with the
   SAT run, facts flow to the solvers as strengthening assumptions, and
   the proved set is exactly preserved — mutual k-induction is complete
   for the conjunctive candidate set when no budget bites, so on this
   core strengthening must not (and does not) change the fixpoint.
   The fate-flip mechanism itself (V_not_inductive -> proved) is pinned
   by [test_strengthening_flips_not_inductive] above, where the missing
   support is outside the candidate set by construction. *)
let test_ridecore_strengthening () =
  let config =
    { Cores.Ridecore_like.rob_entries = 16; phys_regs = 48; iq_entries = 8;
      pht_entries = 64; btb_entries = 8 }
  in
  let t = Cores.Ridecore_like.build ~config () in
  let d = t.Cores.Ridecore_like.design in
  let env = Pdat.Environment.riscv_port d ~port:"instr_rdata" Isa.Subset.rv32i in
  let model = env.Pdat.Environment.model in
  let assume = env.Pdat.Environment.assume in
  let rsim = { Engine.Rsim.default with Engine.Rsim.cycles = 256; runs = 2 } in
  let cands =
    Pdat.Property_library.mine ~config:rsim ~model ~assume
      ~stimulus:env.Pdat.Environment.stimulus ()
    |> Pdat.Property_library.restrict_to_original ~original:d
    |> Engine.Rsim.refine ~config:rsim ~assume model
         env.Pdat.Environment.stimulus
  in
  check "mining found candidates" true (List.length cands > 100);
  let opts =
    { Engine.Induction.k = 1; call_conflict_budget = 30_000;
      total_conflict_budget = 1_000_000; time_budget_s = infinity }
  in
  let ai = A.run ~assume model in
  check "fixpoint found facts on ridecore" true (A.n_facts ai > 0);
  let p_off, _ =
    Engine.Induction.prove_parallel ~options:opts ~jobs:1 ~assume model cands
  in
  let p_on, s_on =
    Engine.Induction.prove_parallel ~options:opts ~jobs:1 ~absint:ai ~assume
      model cands
  in
  let off_tbl = Hashtbl.create 4096 in
  List.iter (fun c -> Hashtbl.replace off_tbl c ()) p_off;
  let on_tbl = Hashtbl.create 4096 in
  List.iter (fun c -> Hashtbl.replace on_tbl c ()) p_on;
  check "monotone: nothing lost by strengthening" true
    (List.for_all (Hashtbl.mem on_tbl) p_off);
  check "complete run: the proved fixpoint is exactly preserved" true
    (List.for_all (Hashtbl.mem off_tbl) p_on);
  check "a large slice of the set is discharged without SAT" true
    (s_on.Engine.Induction.n_static_proved * 10 > List.length cands);
  check "facts beyond the candidate set strengthen the solvers" true
    (s_on.Engine.Induction.strengthening_facts > 0);
  (* soundness at scale, for free: every statically discharged candidate
     was independently proved by the plain SAT run *)
  let static = List.filter (A.proves ai) cands in
  check_int "static accounting matches the cube"
    (List.length static) s_on.Engine.Induction.n_static_proved;
  check "every static verdict agrees with the SAT run" true
    (List.for_all (Hashtbl.mem off_tbl) static)

let () =
  Alcotest.run "absint"
    [
      ( "fixpoint",
        [
          Alcotest.test_case "forced constants propagate" `Quick
            test_forced_constants;
          Alcotest.test_case "assume-conditioning sees through the monitor"
            `Quick test_assume_conditioning;
          Alcotest.test_case "implication proving by conditioning" `Quick
            test_implies_proving;
          Alcotest.test_case "word facts: known bits and intervals" `Quick
            test_word_facts;
          Alcotest.test_case "contradiction degrades to no claims" `Quick
            test_contradiction;
          Alcotest.test_case "dead write arms" `Quick test_dead_write;
        ] );
      ( "prover",
        [
          Alcotest.test_case "static tier accounting" `Quick
            test_static_tier_accounting;
          Alcotest.test_case "static verdicts vs the snapshot oracle, 20 seeds"
            `Slow test_static_proved_vs_oracle;
          Alcotest.test_case "strengthening flips a not-inductive fate" `Quick
            test_strengthening_flips_not_inductive;
        ] );
      ( "lint",
        [
          Alcotest.test_case "absint-backed rules fire" `Quick
            test_lint_absint_rules;
        ] );
      ( "cutpoint",
        [
          Alcotest.test_case "insertion round-trips under honest driving"
            `Quick test_cutpoint_roundtrip;
          Alcotest.test_case "bus naming and input rejection" `Quick
            test_cutpoint_bus_names_and_errors;
        ] );
      ( "equiv",
        [
          Alcotest.test_case "structurally different, equivalent" `Quick
            test_equiv_equal;
          Alcotest.test_case "counterexample on a real difference" `Quick
            test_equiv_counterexample;
          Alcotest.test_case "assumption-relative equivalence" `Quick
            test_equiv_under_assumption;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "absint-on == absint-off reduced netlists, 50 \
                              seeds"
            `Slow test_pipeline_absint_differential;
        ] );
      ( "ridecore",
        [
          Alcotest.test_case
            "static tier at flagship scale: discharge, soundness, fixpoint \
             preservation" `Slow test_ridecore_strengthening;
        ] );
    ]
