(* Soundness tests for the simulation-signature sieve.

   The sieve may only merge candidates that are *pointwise equivalent*
   under the environment assumption — that is the whole basis of
   verdict transfer.  Here the claim is checked exhaustively: the test
   netlists are small enough to enumerate every (state, input)
   assignment, 64 per simulator eval, so a single disagreeing lane in
   any merged class is a hard failure, not a sampling miss. *)

module D = Netlist.Design
module C = Netlist.Cell

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let sf = Printf.sprintf

let gen_config =
  { Netlist.Generate.n_inputs = 4; n_gates = 16; n_flops = 4; n_outputs = 4 }

let mine_config =
  { Engine.Rsim.default with Engine.Rsim.cycles = 96; runs = 1 }

(* all flop output nets, in cell order *)
let flops d =
  let acc = ref [] in
  D.iter_cells d (fun _ c -> if c.D.kind = C.Dff then acc := c.D.out :: !acc);
  List.rev !acc

(* Drive [d] through EVERY (state, input) assignment, 64 per eval;
   [f sim valid] sees each batch with a mask of the meaningful lanes. *)
let exhaustive d f =
  let sim = Netlist.Sim64.create d in
  let ins = List.map snd (D.inputs d) in
  let sts = flops d in
  let all = ins @ sts in
  let bits = List.length all in
  if bits > 14 then invalid_arg "netlist too large to enumerate";
  let total = 1 lsl bits in
  let idx = Hashtbl.create 16 in
  List.iteri (fun j n -> Hashtbl.replace idx n j) all;
  let n_batches = (total + 63) / 64 in
  for b = 0 to n_batches - 1 do
    (* lane l of bit j = bit j of combo number b*64+l *)
    let word_of j =
      let w = ref 0L in
      for l = 0 to 63 do
        let combo = (b * 64) + l in
        if combo < total && (combo lsr j) land 1 = 1 then
          w := Int64.logor !w (Int64.shift_left 1L l)
      done;
      !w
    in
    Netlist.Sim64.load_state sim (fun n ->
        match Hashtbl.find_opt idx n with
        | Some j -> word_of j
        | None -> 0L);
    List.iter
      (fun n -> Netlist.Sim64.set_input sim n (word_of (Hashtbl.find idx n)))
      ins;
    Netlist.Sim64.eval sim;
    let valid = ref 0L in
    for l = 0 to 63 do
      if (b * 64) + l < total then
        valid := Int64.logor !valid (Int64.shift_left 1L l)
    done;
    f sim !valid
  done

(* same violation convention as the sieve itself *)
let violation sim = function
  | Engine.Candidate.Const (n, true) ->
      Int64.lognot (Netlist.Sim64.read sim n)
  | Engine.Candidate.Const (n, false) -> Netlist.Sim64.read sim n
  | Engine.Candidate.Implies { a; b; _ } ->
      Int64.logand (Netlist.Sim64.read sim a)
        (Int64.lognot (Netlist.Sim64.read sim b))

(* --- every merged class is exhaustively equivalent --------------------- *)

let test_classes_exhaustively_equivalent () =
  let merged = ref 0 in
  for seed = 1 to 25 do
    let d = Netlist.Generate.random ~seed ~config:gen_config () in
    let cands =
      Engine.Rsim.mine ~config:mine_config d Engine.Stimulus.unconstrained
    in
    let classes, st = Engine.Sieve.partition ~assume:D.net_true d cands in
    (* rep :: members of every class partition the input exactly
       ([members] is "the rest" — the rep is not repeated in it) *)
    let all =
      List.concat_map
        (fun c -> c.Engine.Sieve.rep :: c.Engine.Sieve.members)
        classes
    in
    check_int (sf "seed %d: classes cover the input" seed)
      (List.length cands) (List.length all);
    check (sf "seed %d: partition is a permutation" seed) true
      (List.sort Engine.Candidate.compare all
      = List.sort Engine.Candidate.compare cands);
    List.iter
      (fun cl ->
        check (sf "seed %d: rep not repeated among members" seed) false
          (List.exists (Engine.Candidate.equal cl.Engine.Sieve.rep)
             cl.Engine.Sieve.members))
      classes;
    check_int (sf "seed %d: stats add up" seed)
      (List.length cands)
      (st.Engine.Sieve.n_classes + st.Engine.Sieve.n_sieved);
    merged := !merged + st.Engine.Sieve.n_sieved;
    (* the soundness core: a member may NEVER disagree with its rep on
       any reachable-or-not (state, input) assignment *)
    exhaustive d (fun sim valid ->
        List.iter
          (fun cl ->
            let rv = violation sim cl.Engine.Sieve.rep in
            List.iter
              (fun m ->
                if
                  Int64.logand valid (Int64.logxor rv (violation sim m))
                  <> 0L
                then
                  Alcotest.failf
                    "seed %d: merged candidate %s disagrees with rep %s"
                    seed (Engine.Candidate.key m)
                    (Engine.Candidate.key cl.Engine.Sieve.rep))
              cl.Engine.Sieve.members)
          classes)
  done;
  (* the harness must actually exercise merging, not just singletons *)
  check "sieve merged something across the seeds" true (!merged > 0)

(* --- merging licensed by the assumption -------------------------------- *)

(* [a] and [a ∨ ¬a] differ when the assumption [assume = a] is off, and
   agree when it is on: the sieve must merge them under [a] and keep
   them apart under an unconstrained assumption *)
let assume_design () =
  let d = D.create "assume_merge" in
  let a = D.add_input d "a" in
  let na = D.add_cell d C.Inv [| a |] in
  let t = D.add_cell d C.Or2 [| a; na |] in
  D.add_output d "t" t;
  (d, a, [ Engine.Candidate.Const (a, true); Engine.Candidate.Const (t, true) ])

let test_assumption_scoped_merge () =
  let d, a, cands = assume_design () in
  let classes, st = Engine.Sieve.partition ~assume:a d cands in
  check_int "under assume=a the pair merges" 1 st.Engine.Sieve.n_classes;
  check_int "one candidate sieved" 1 st.Engine.Sieve.n_sieved;
  check_int "merge was SAT-confirmed" 1 st.Engine.Sieve.sat_merges;
  let cl = List.hd classes in
  check_int "one candidate rides along" 1
    (List.length cl.Engine.Sieve.members);
  (* unconstrained, a=0 distinguishes them: no merge allowed *)
  let classes', st' = Engine.Sieve.partition ~assume:D.net_true d cands in
  check_int "unconstrained keeps them apart" 2 (List.length classes');
  check_int "nothing sieved unconstrained" 0 st'.Engine.Sieve.n_sieved

(* --- V_sieved fates cite the rep actually proved ----------------------- *)

let test_fates_cite_proved_rep () =
  let sieved_seen = ref 0 in
  for seed = 1 to 12 do
    let d = Netlist.Generate.random ~seed ~config:gen_config () in
    let cands =
      Engine.Rsim.mine ~config:mine_config d Engine.Stimulus.unconstrained
    in
    let attributions = Hashtbl.create 64 in
    let proved, _ =
      Engine.Induction.prove_parallel ~sieve:true ~attributions
        ~assume:D.net_true d cands
    in
    let off, _ = Engine.Induction.prove_parallel ~assume:D.net_true d cands in
    check (sf "seed %d: sieve-on == sieve-off" seed) true
      (List.sort Engine.Candidate.compare proved
      = List.sort Engine.Candidate.compare off);
    let in_proved c = List.exists (Engine.Candidate.equal c) proved in
    Hashtbl.iter
      (fun cand (att : Engine.Induction.attribution) ->
        match att.Engine.Induction.verdict with
        | Engine.Induction.V_sieved { rep; proved = p } -> (
            incr sieved_seen;
            (* the cited rep went through the prover itself: it carries
               its own first-class verdict, never a sieved one *)
            match Hashtbl.find_opt attributions rep with
            | None ->
                Alcotest.failf "seed %d: sieved fate cites an unknown rep"
                  seed
            | Some rep_att -> (
                match rep_att.Engine.Induction.verdict with
                | Engine.Induction.V_sieved _ ->
                    Alcotest.failf
                      "seed %d: rep of a sieved candidate is itself sieved"
                      seed
                | Engine.Induction.V_proved _ ->
                    check (sf "seed %d: proved rep transfers proved" seed)
                      true (p && in_proved rep && in_proved cand)
                | _ ->
                    check (sf "seed %d: unproved rep transfers dropped" seed)
                      true
                      ((not p) && not (in_proved cand))))
        | _ -> ())
      attributions
  done;
  check "harness saw sieved fates" true (!sieved_seen > 0)

let () =
  Alcotest.run "sieve"
    [
      ( "soundness",
        [
          Alcotest.test_case
            "merged classes are exhaustively equivalent (25 netlists)" `Quick
            test_classes_exhaustively_equivalent;
          Alcotest.test_case "merging is scoped to the assumption" `Quick
            test_assumption_scoped_merge;
          Alcotest.test_case "sieved fates cite the rep actually proved"
            `Quick test_fates_cite_proved_rep;
        ] );
    ]
