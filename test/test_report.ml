(* Tests for the provenance & run-report layer: Netlist.Stats
   hierarchical breakdowns, counterexample capture/replay, per-edit
   invariant attribution, and the determinism of the rendered report
   (the golden property: same seed, byte-identical JSON). *)

module D = Netlist.Design
module C = Netlist.Cell
module Stats = Netlist.Stats

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Stats breakdowns --------------------------------------------------- *)

let test_stats_empty_design () =
  (* a fresh design holds only the two rail tie cells *)
  let s = Stats.of_design (D.create "empty") in
  check_int "no logic" 0 (Stats.gate_count s);
  (match Stats.groups s with
  | [ g ] ->
      Alcotest.(check string) "only the tie group" "tie" g.Stats.label;
      check_int "both rails" 2 g.Stats.count
  | gs -> Alcotest.failf "expected one group, got %d" (List.length gs));
  check_int "absent kind counts zero" 0 (Stats.count_of s C.And2);
  check "self-delta changes nothing" true
    (List.for_all
       (fun r -> r.Stats.count_before = r.Stats.count_after)
       (Stats.delta_by_kind ~before:s ~after:s))

let small_design () =
  let d = D.create "small" in
  let a = D.add_input d "a" in
  let b = D.add_input d "b" in
  let x = D.add_cell d C.And2 [| a; b |] in
  let y = D.add_cell d C.And2 [| x; b |] in
  let z = D.add_cell d C.Inv [| y |] in
  let q = D.add_dff d ~d:z () in
  D.add_output d "q" q;
  d

let test_stats_groups () =
  let s = Stats.of_design (small_design ()) in
  let gs = Stats.groups s in
  check "classes in fixed order" true
    (List.map (fun g -> g.Stats.label) gs
    = [ "combinational"; "sequential"; "tie" ]);
  let comb = List.hd gs in
  check_int "two and2 + one inv" 3 comb.Stats.count;
  check "kinds in declaration order, with counts" true
    (List.map (fun (k, n, _) -> (k, n)) comb.Stats.kinds
    = [ (C.Inv, 1); (C.And2, 2) ]);
  (* group areas recompose the flat total exactly *)
  let total = List.fold_left (fun acc g -> acc +. g.Stats.area) 0. gs in
  Alcotest.(check (float 1e-9)) "areas sum to the total" s.Stats.area total;
  check_int "count_of known kind" 2 (Stats.count_of s C.And2);
  check_int "count_of kind not in design" 0 (Stats.count_of s C.Nor2)

let test_stats_delta_arithmetic () =
  let before = Stats.of_design (small_design ()) in
  let d = D.create "after" in
  let a = D.add_input d "a" in
  let x = D.add_cell d C.And2 [| a; a |] in
  D.add_output d "x" x;
  let after = Stats.of_design d in
  let rows = Stats.delta_by_kind ~before ~after in
  check "rows follow Cell.all declaration order" true
    (List.map (fun r -> r.Stats.kind) rows
    = List.filter
        (fun k -> List.exists (fun r -> r.Stats.kind = k) rows)
        C.all);
  let and2 = List.find (fun r -> r.Stats.kind = C.And2) rows in
  check_int "and2 before" 2 and2.Stats.count_before;
  check_int "and2 after" 1 and2.Stats.count_after;
  Alcotest.(check (float 1e-9))
    "and2 area scales with count" (2. *. C.area C.And2)
    and2.Stats.area_before;
  let dff = List.find (fun r -> r.Stats.kind = C.Dff) rows in
  check_int "dff fully removed" 0 dff.Stats.count_after;
  Alcotest.(check (float 1e-9)) "removed kind has zero area" 0.
    dff.Stats.area_after;
  check "kind absent on both sides has no row" true
    (not (List.exists (fun r -> r.Stats.kind = C.Nor2) rows))

(* --- counterexample capture and replay ---------------------------------- *)

(* q latches a free input: [q == 0] survives mining for a cycle but a
   lane with a=1 kills it, and the kill must carry a replayable trace. *)
let test_refine_kill_carries_cex () =
  let d = D.create "latch" in
  let a = D.add_input d "a" in
  let q = D.add_dff d ~d:a () in
  D.add_output d "q" q;
  let cand = Engine.Candidate.Const (q, false) in
  let kills = ref [] in
  let survivors =
    Engine.Rsim.refine
      ~config:{ Engine.Rsim.default with Engine.Rsim.cycles = 32; runs = 2 }
      ~kills ~assume:D.net_true d
      Engine.Stimulus.{ drive = (fun _ -> []) }
      [ cand ]
  in
  check "candidate killed" true (survivors = []);
  match !kills with
  | [ (c, k) ] -> (
      check "right candidate" true (Engine.Candidate.equal c cand);
      check "lane in range" true (k.Engine.Rsim.k_lane >= 0 && k.Engine.Rsim.k_lane < 64);
      match k.Engine.Rsim.k_cex with
      | None -> Alcotest.fail "kill captured no counterexample"
      | Some cex ->
          check "replay violates the candidate" true
            (Engine.Cex.violates d cex cand);
          let path = Filename.temp_file "pdat_cex" ".vcd" in
          Engine.Cex.dump
            ~extra:(Engine.Cex.nets_of_candidate d cand)
            ~path d cex;
          let st = Unix.stat path in
          check "waveform written" true (st.Unix.st_size > 0);
          Sys.remove path)
  | l -> Alcotest.failf "expected one kill, got %d" (List.length l)

(* --- provenance through the pipeline ------------------------------------ *)

(* the frozen-accumulator design and en=0 environment from test_pdat:
   small, fully deterministic, and guaranteed to produce edits *)
let acc_design () =
  let c = Hdl.Ctx.create "acc" in
  let en = Hdl.Ctx.input c "en" 1 in
  let data = Hdl.Ctx.input c "data" 8 in
  let acc = Hdl.Reg.reg_en c "acc" ~en (Hdl.Ops.( +: ) data data) in
  Hdl.Ctx.output c "acc" acc;
  Hdl.Ctx.output c "pass" data;
  Hdl.Ctx.finish c

let en0_env d =
  let model = D.copy d in
  let en_net = Option.get (D.find_input model "en") in
  let inv = D.add_cell model C.Inv [| en_net |] in
  {
    Pdat.Environment.model;
    assume = inv;
    stimulus =
      Engine.Stimulus.
        { drive = (fun _ -> [ (Option.get (D.find_input d "en"), 0L) ]) };
    cuts = [||];
    description = "en=0";
  }

let run_with_provenance () =
  let d = acc_design () in
  let prov = Report.Provenance.create () in
  let result =
    Pdat.Pipeline.run ~lint:Analysis.Lint.Strict ~provenance:prov ~design:d
      ~env:(en0_env d) ()
  in
  (prov, result)

let test_edits_cite_proved_invariants () =
  let prov, _ = run_with_provenance () in
  let edits = Report.Provenance.edits prov in
  check "pipeline produced edits" true (edits <> []);
  let proved = Report.Provenance.proved_ids prov in
  List.iter
    (fun (er : Report.Provenance.edit_record) ->
      check "edit cites at least one invariant" true
        (er.Report.Provenance.e_invariants <> []);
      List.iter
        (fun id -> check "citation is a proved invariant" true
            (List.mem id proved))
        er.Report.Provenance.e_invariants)
    edits;
  check "every dead cell is attributed to an edit" true
    (Report.Provenance.unattributed_dead prov = [])

let test_area_matches_recomputed_stats () =
  let prov, result = run_with_provenance () in
  match Report.Provenance.designs prov with
  | None -> Alcotest.fail "no design snapshots recorded"
  | Some snap ->
      let recomputed = Stats.of_design snap.Report.Provenance.reduced in
      let after = result.Pdat.Pipeline.report.Pdat.Pipeline.after in
      Alcotest.(check (float 0.)) "area identical" after.Stats.area
        recomputed.Stats.area;
      check_int "gate count identical" (Stats.gate_count after)
        (Stats.gate_count recomputed)

let test_report_json_golden () =
  let prov1, _ = run_with_provenance () in
  let prov2, _ = run_with_provenance () in
  let j1 = Report.Render.json ~target:"acc" prov1 in
  let j2 = Report.Render.json ~target:"acc" prov2 in
  Alcotest.(check string) "byte-identical across runs" j1 j2;
  check "schema-versioned" true
    (String.length j1 > 20
    && String.sub j1 0 19 = "{\"schema_version\":1");
  (* the markdown renders without raising and shows the funnel *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let md = Report.Render.markdown ~target:"acc" prov1 in
  check "markdown has the funnel table" true (contains md "candidates")

let () =
  Alcotest.run "report"
    [
      ( "stats",
        [
          Alcotest.test_case "empty design" `Quick test_stats_empty_design;
          Alcotest.test_case "class groups" `Quick test_stats_groups;
          Alcotest.test_case "before/after delta arithmetic" `Quick
            test_stats_delta_arithmetic;
        ] );
      ( "cex",
        [
          Alcotest.test_case "refine kill carries a replayable trace" `Quick
            test_refine_kill_carries_cex;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "edits cite proved invariants" `Quick
            test_edits_cite_proved_invariants;
          Alcotest.test_case "area matches recomputed stats" `Quick
            test_area_matches_recomputed_stats;
          Alcotest.test_case "report JSON golden (determinism)" `Quick
            test_report_json_golden;
        ] );
    ]
