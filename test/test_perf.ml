(* Tests for the [pdat perf] comparison engine (lib/report/perf):
   envelope loading with schema refusal, the two-condition noise gate,
   and the byte-deterministic markdown delta table. *)

module P = Report.Perf

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* fixtures need stable basenames (they appear in the markdown header),
   so they live in a throwaway directory instead of Filename.temp_file *)
let with_fixture_dir f =
  let dir = Filename.temp_file "pdat_perf" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with _ -> ())
    (fun () -> f dir)

let write dir name contents =
  let path = Filename.concat dir name in
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc;
  path

let base_json =
  {|{
  "schema_version": 1,
  "target": "sat",
  "sat_calls": 100,
  "t_prove_s": 2.0,
  "histograms": {"sat.call_s": {"count": 100, "p50": 0.001, "p95": 0.004}}
}|}

(* +25% on a stage timing and on p95: both clear the relative tolerance
   and the absolute floor, so both must gate *)
let regressed_json =
  {|{
  "schema_version": 1,
  "target": "sat",
  "sat_calls": 120,
  "t_prove_s": 2.5,
  "histograms": {"sat.call_s": {"count": 110, "p50": 0.001, "p95": 0.005}}
}|}

(* --- loading ------------------------------------------------------------- *)

let test_load () =
  with_fixture_dir @@ fun dir ->
  let b = P.load (write dir "base.json" base_json) in
  check_int "schema parsed" 1 b.P.b_schema;
  check_str "target parsed" "sat" b.P.b_target;
  check "scalars sorted by name" true
    (List.map fst b.P.b_fields = [ "sat_calls"; "t_prove_s" ]);
  (match b.P.b_hists with
  | [ (name, h) ] ->
      check_str "histogram name" "sat.call_s" name;
      Alcotest.(check (float 1e-12)) "p95 parsed" 0.004 h.P.h_p95;
      Alcotest.(check (float 1e-12)) "count parsed" 100. h.P.h_count
  | hs -> Alcotest.failf "expected 1 histogram, got %d" (List.length hs));
  check "missing file raises" true
    (try
       ignore (P.load (Filename.concat dir "absent.json"));
       false
     with P.Perf_error _ -> true);
  check "non-object JSON raises" true
    (try
       ignore (P.load (write dir "arr.json" "[1,2]"));
       false
     with P.Perf_error _ -> true);
  check "missing schema_version refused" true
    (try
       ignore (P.load (write dir "old.json" {|{"target": "sat", "t_x_s": 1}|}));
       false
     with P.Perf_error msg -> msg <> "" && String.length msg > 0)

(* --- gating -------------------------------------------------------------- *)

let test_gate_identical () =
  with_fixture_dir @@ fun dir ->
  let b = P.load (write dir "base.json" base_json) in
  let deltas = P.compare_benches ~base:b b in
  check "identical envelopes: no regression" true (P.regressions deltas = []);
  check "every metric still reported" true (List.length deltas = 5)

let test_gate_regression () =
  with_fixture_dir @@ fun dir ->
  let b = P.load (write dir "base.json" base_json) in
  let c = P.load (write dir "cur.json" regressed_json) in
  let regs = P.regressions (P.compare_benches ~base:b c) in
  check "timing and p95 both flagged" true
    (List.map (fun d -> d.P.d_metric) regs
    = [ "t_prove_s"; "sat.call_s.p95" ]);
  (* counters moved too, but only timings/percentiles may gate *)
  check "counter rows never gate" true
    (List.for_all
       (fun d -> d.P.d_metric <> "sat_calls" && d.P.d_metric <> "sat.call_s.count")
       regs)

(* the two-condition rule: an increase must clear BOTH the relative
   tolerance and the absolute floor before it counts *)
let test_gate_two_condition () =
  let bench fields hists =
    {
      P.b_path = "x.json";
      b_schema = 1;
      b_target = "sat";
      b_fields = fields;
      b_hists = hists;
    }
  in
  (* +100% relative but only 10ms absolute: under the 50ms floor *)
  let b = bench [ ("t_x_s", 0.010) ] [] in
  let c = bench [ ("t_x_s", 0.020) ] [] in
  check "micro-noise under the absolute floor never gates" true
    (P.regressions (P.compare_benches ~base:b c) = []);
  (* +60ms absolute but only +0.6% relative: under the tolerance *)
  let b = bench [ ("t_x_s", 10.0) ] [] in
  let c = bench [ ("t_x_s", 10.06) ] [] in
  check "sub-tolerance drift on big timings never gates" true
    (P.regressions (P.compare_benches ~base:b c) = []);
  (* both conditions cleared: gates *)
  let b = bench [ ("t_x_s", 1.0) ] [] in
  let c = bench [ ("t_x_s", 1.3) ] [] in
  check "real slide gates" true
    (P.regressions (P.compare_benches ~base:b c) <> [])

let test_gate_mismatches () =
  with_fixture_dir @@ fun dir ->
  let b = P.load (write dir "base.json" base_json) in
  let v2 =
    P.load
      (write dir "v2.json" {|{"schema_version": 2, "target": "sat", "t_x_s": 1}|})
  in
  check "schema mismatch refused" true
    (try
       ignore (P.compare_benches ~base:b v2);
       false
     with P.Perf_error _ -> true);
  let other =
    P.load
      (write dir "o.json" {|{"schema_version": 1, "target": "absint", "t_x_s": 1}|})
  in
  check "target mismatch refused" true
    (try
       ignore (P.compare_benches ~base:b other);
       false
     with P.Perf_error _ -> true)

(* schema growth: metrics present on only one side are informational
   gaps, not failures — old baselines must stay comparable *)
let test_gate_skips_one_sided () =
  with_fixture_dir @@ fun dir ->
  let b = P.load (write dir "base.json" base_json) in
  let c =
    P.load
      (write dir "grown.json"
         {|{
  "schema_version": 1,
  "target": "sat",
  "sat_calls": 100,
  "t_prove_s": 2.0,
  "t_brand_new_stage_s": 99.0,
  "histograms": {"sat.call_s": {"count": 100, "p50": 0.001, "p95": 0.004},
                 "new.hist_s": {"count": 5, "p50": 9.0, "p95": 9.0}}
}|})
  in
  let deltas = P.compare_benches ~base:b c in
  check "one-sided metrics skipped" true
    (List.for_all
       (fun d ->
         d.P.d_metric <> "t_brand_new_stage_s"
         && not
              (String.length d.P.d_metric >= 8
              && String.sub d.P.d_metric 0 8 = "new.hist"))
       deltas);
  check "grown envelope still passes" true (P.regressions deltas = [])

(* --- the markdown table -------------------------------------------------- *)

let golden_markdown =
  "## Perf delta: base.json \xe2\x86\x92 cur.json\n\n\
   Thresholds: \xc2\xb115% relative, 0.050s absolute floor (timings), \
   0.0005s (histogram percentiles). Only timing and percentile rows gate.\n\n\
   | metric | base | current | \xce\x94% | gate |\n\
   |---|---|---|---|---|\n\
   | sat_calls | 100 | 120 | +20.0 | \xe2\x80\x94 |\n\
   | t_prove_s | 2 | 2.5 | +25.0 | **REGRESSION** |\n\
   | sat.call_s.p50 | 0.001 | 0.001 | +0.0 | ok |\n\
   | sat.call_s.p95 | 0.004 | 0.005 | +25.0 | **REGRESSION** |\n\
   | sat.call_s.count | 100 | 110 | +10.0 | \xe2\x80\x94 |\n\n\
   **2 regressions.**\n"

let test_markdown_golden () =
  with_fixture_dir @@ fun dir ->
  let b = P.load (write dir "base.json" base_json) in
  let c = P.load (write dir "cur.json" regressed_json) in
  let deltas = P.compare_benches ~base:b c in
  let md = P.markdown_table ~base:b c deltas in
  check_str "golden delta table" golden_markdown md;
  check "byte-deterministic across calls" true
    (md = P.markdown_table ~base:b c deltas);
  let clean = P.markdown_table ~base:b b (P.compare_benches ~base:b b) in
  check "clean table reports no regressions" true
    (String.length clean >= 17
    && String.sub clean (String.length clean - 17) 17 = "\nNo regressions.\n")

let () =
  Alcotest.run "perf"
    [
      ( "load",
        [ Alcotest.test_case "envelope parsing and refusals" `Quick test_load ] );
      ( "gate",
        [
          Alcotest.test_case "identical runs pass" `Quick test_gate_identical;
          Alcotest.test_case "injected regression flagged" `Quick
            test_gate_regression;
          Alcotest.test_case "two-condition noise rule" `Quick
            test_gate_two_condition;
          Alcotest.test_case "schema/target mismatches refused" `Quick
            test_gate_mismatches;
          Alcotest.test_case "one-sided metrics skipped" `Quick
            test_gate_skips_one_sided;
        ] );
      ( "markdown",
        [
          Alcotest.test_case "golden delta table" `Quick test_markdown_golden;
        ] );
    ]
