(* Unit tests for the crash-safe run journal: round-trip replay,
   digest pinning, and torn-tail truncation.

   The journal is the write-ahead log behind `pdat reduce --resume`;
   these tests exercise it directly, below the pipeline, so the
   corruption cases can be constructed byte-exactly. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pdat_journal_%d_%d" (Unix.getpid ())
         (Random.int 100000))
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let digest = String.make 32 'a'

let write_sample dir =
  let j = Pdat.Journal.create ~dir ~digest ~label:"test-run" in
  Pdat.Journal.record_stage j ~name:"mine" ~items:[ "C3:0"; "C7:1" ];
  Pdat.Journal.record_stage j ~name:"refine" ~items:[ "C3:0" ];
  Pdat.Journal.record_shard j ~fp:"f00d" ~proved:[ "C3:0" ];
  j

let test_roundtrip () =
  with_temp_dir (fun dir ->
      let j = write_sample dir in
      Pdat.Journal.record_stage j ~name:"prove" ~items:[ "C3:0" ];
      Pdat.Journal.record_end j ~ok:true;
      Pdat.Journal.close j;
      let j2, r = Pdat.Journal.resume ~dir ~digest in
      Pdat.Journal.close j2;
      check_str "label survives" "test-run" r.Pdat.Journal.r_label;
      check "end marker replayed" true r.Pdat.Journal.r_complete;
      check_int "no lines dropped" 0 r.Pdat.Journal.r_dropped_lines;
      check "stages in order" true
        (List.map fst r.Pdat.Journal.r_stages = [ "mine"; "refine"; "prove" ]);
      check "stage items survive" true
        (List.assoc "mine" r.Pdat.Journal.r_stages = [ "C3:0"; "C7:1" ]);
      check "shard checkpoint survives" true
        (r.Pdat.Journal.r_shards = [ ("f00d", [ "C3:0" ]) ]))

let test_digest_mismatch () =
  with_temp_dir (fun dir ->
      Pdat.Journal.close (write_sample dir);
      match Pdat.Journal.resume ~dir ~digest:(String.make 32 'b') with
      | _ -> Alcotest.fail "resume accepted a foreign journal"
      | exception Pdat.Journal.Mismatch _ -> ())

let test_missing_journal () =
  with_temp_dir (fun dir ->
      ignore (Sys.command (Printf.sprintf "mkdir -p %s" (Filename.quote dir)));
      match Pdat.Journal.resume ~dir ~digest with
      | _ -> Alcotest.fail "resume invented a journal"
      | exception Pdat.Journal.Mismatch _ -> ())

let journal_file dir = Filename.concat dir "journal.jsonl"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let append_raw path s =
  let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 path in
  output_string oc s;
  close_out oc

let test_torn_tail_truncated () =
  with_temp_dir (fun dir ->
      Pdat.Journal.close (write_sample dir);
      let path = journal_file dir in
      let intact = read_file path in
      (* a crash mid-write: half a record, no trailing newline *)
      append_raw path "{\"crc\":\"0000";
      let j, r = Pdat.Journal.resume ~dir ~digest in
      check_int "torn line dropped" 1 r.Pdat.Journal.r_dropped_lines;
      check "valid prefix fully replayed" true
        (List.map fst r.Pdat.Journal.r_stages = [ "mine"; "refine" ]);
      check "file truncated back to the valid prefix" true
        (read_file path = intact);
      (* the resumed journal must still be appendable and replayable *)
      Pdat.Journal.record_stage j ~name:"prove" ~items:[];
      Pdat.Journal.close j;
      let j2, r2 = Pdat.Journal.resume ~dir ~digest in
      Pdat.Journal.close j2;
      check "append after truncation replays" true
        (List.map fst r2.Pdat.Journal.r_stages = [ "mine"; "refine"; "prove" ]))

let test_unterminated_valid_line () =
  with_temp_dir (fun dir ->
      Pdat.Journal.close (write_sample dir);
      let path = journal_file dir in
      (* chop the final newline: the last record is CRC-valid but
         unterminated, so an append would glue onto it — it must be
         treated as torn and truncated away *)
      let s = read_file path in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd (String.length s - 1);
      Unix.close fd;
      let j, r = Pdat.Journal.resume ~dir ~digest in
      Pdat.Journal.close j;
      check_int "unterminated line dropped" 1 r.Pdat.Journal.r_dropped_lines;
      check_int "its shard checkpoint is gone" 0
        (List.length r.Pdat.Journal.r_shards))

let test_corrupt_middle_drops_suffix () =
  with_temp_dir (fun dir ->
      Pdat.Journal.close (write_sample dir);
      let path = journal_file dir in
      let s = read_file path in
      (* flip one byte inside the second record's body *)
      let lines = String.split_on_char '\n' s in
      let mutated =
        String.concat "\n"
          (List.mapi
             (fun i line ->
               if i = 1 && String.length line > 20 then begin
                 let b = Bytes.of_string line in
                 Bytes.set b 20
                   (if Bytes.get b 20 = 'x' then 'y' else 'x');
                 Bytes.to_string b
               end
               else line)
             lines)
      in
      let oc = open_out_bin path in
      output_string oc mutated;
      close_out oc;
      let j, r = Pdat.Journal.resume ~dir ~digest in
      Pdat.Journal.close j;
      (* replay stops at the first bad CRC: only the header survives *)
      check "suffix after the corrupt record dropped" true
        (r.Pdat.Journal.r_dropped_lines >= 1);
      check "stages after the damage are not replayed" true
        (List.length r.Pdat.Journal.r_stages < 3))

let () =
  Random.self_init ();
  Alcotest.run "journal"
    [
      ( "journal",
        [
          Alcotest.test_case "create/record/resume round-trip" `Quick
            test_roundtrip;
          Alcotest.test_case "foreign digest refused" `Quick
            test_digest_mismatch;
          Alcotest.test_case "missing journal refused" `Quick
            test_missing_journal;
          Alcotest.test_case "torn tail truncated, append continues" `Quick
            test_torn_tail_truncated;
          Alcotest.test_case "CRC-valid but unterminated tail dropped" `Quick
            test_unterminated_valid_line;
          Alcotest.test_case "corrupt middle record drops the suffix" `Quick
            test_corrupt_middle_drops_suffix;
        ] );
    ]
