(* Unit and property tests for the CDCL solver.  The property tests
   cross-check against brute-force enumeration on small instances. *)

let lit = Sat.Lit.of_int

let mk n_vars =
  let s = Sat.Solver.create () in
  for _ = 1 to n_vars do
    ignore (Sat.Solver.new_var s)
  done;
  s

let check_result = Alcotest.(check bool)

let is_sat = function Sat.Solver.Sat -> true | Sat.Solver.Unsat | Sat.Solver.Unknown -> false
let is_unsat = function Sat.Solver.Unsat -> true | Sat.Solver.Sat | Sat.Solver.Unknown -> false

let test_trivial_sat () =
  let s = mk 2 in
  Sat.Solver.add_clause s [ lit 1; lit 2 ];
  check_result "sat" true (is_sat (Sat.Solver.solve s))

let test_trivial_unsat () =
  let s = mk 1 in
  Sat.Solver.add_clause s [ lit 1 ];
  Sat.Solver.add_clause s [ lit (-1) ];
  check_result "unsat" true (is_unsat (Sat.Solver.solve s))

let test_empty_clause () =
  let s = mk 1 in
  Sat.Solver.add_clause s [];
  check_result "unsat" true (is_unsat (Sat.Solver.solve s))

let test_unit_propagation_chain () =
  let s = mk 5 in
  (* 1 -> 2 -> 3 -> 4 -> 5, assert 1, check model *)
  Sat.Solver.add_clause s [ lit 1 ];
  for i = 1 to 4 do
    Sat.Solver.add_clause s [ lit (-i); lit (i + 1) ]
  done;
  check_result "sat" true (is_sat (Sat.Solver.solve s));
  for i = 0 to 4 do
    check_result (Printf.sprintf "v%d" i) true (Sat.Solver.value s i)
  done

let test_model_satisfies () =
  let s = mk 4 in
  let clauses =
    [ [ 1; 2 ]; [ -1; 3 ]; [ -2; -3 ]; [ 2; 3; 4 ]; [ -4; 1 ] ]
  in
  List.iter (fun c -> Sat.Solver.add_clause s (List.map lit c)) clauses;
  check_result "sat" true (is_sat (Sat.Solver.solve s));
  List.iter
    (fun c ->
      let holds = List.exists (fun i -> Sat.Solver.lit_value s (lit i)) c in
      check_result "clause satisfied" true holds)
    clauses

(* Pigeonhole: n+1 pigeons in n holes is unsatisfiable. *)
let pigeonhole n =
  let s = Sat.Solver.create () in
  let var = Array.init (n + 1) (fun _ -> Array.init n (fun _ -> Sat.Solver.new_var s)) in
  for p = 0 to n do
    Sat.Solver.add_clause s (List.init n (fun h -> Sat.Lit.pos var.(p).(h)))
  done;
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        Sat.Solver.add_clause s [ Sat.Lit.neg var.(p1).(h); Sat.Lit.neg var.(p2).(h) ]
      done
    done
  done;
  s

let test_pigeonhole () =
  check_result "php(4) unsat" true (is_unsat (Sat.Solver.solve (pigeonhole 4)));
  check_result "php(6) unsat" true (is_unsat (Sat.Solver.solve (pigeonhole 6)))

let test_assumptions () =
  let s = mk 3 in
  Sat.Solver.add_clause s [ lit (-1); lit 2 ];
  Sat.Solver.add_clause s [ lit (-2); lit 3 ];
  Sat.Solver.add_clause s [ lit (-3) ];
  (* assuming 1 forces 3 which is forbidden *)
  check_result "unsat under assumption" true
    (is_unsat (Sat.Solver.solve ~assumptions:[ lit 1 ] s));
  check_result "failed assumptions mention 1" true
    (List.mem (lit 1) (Sat.Solver.failed_assumptions s));
  (* solver still usable, and satisfiable without the assumption *)
  check_result "sat without assumption" true (is_sat (Sat.Solver.solve s));
  check_result "v1 must be false" false (Sat.Solver.value s 0)

let test_incremental () =
  let s = mk 3 in
  Sat.Solver.add_clause s [ lit 1; lit 2 ];
  check_result "sat 1" true (is_sat (Sat.Solver.solve s));
  Sat.Solver.add_clause s [ lit (-1) ];
  check_result "sat 2" true (is_sat (Sat.Solver.solve s));
  check_result "v2 true" true (Sat.Solver.value s 1);
  Sat.Solver.add_clause s [ lit (-2) ];
  check_result "unsat 3" true (is_unsat (Sat.Solver.solve s));
  (* once root-level unsat, stays unsat *)
  check_result "unsat 4" true (is_unsat (Sat.Solver.solve s))

let test_budget () =
  (* php(7) should exceed a tiny conflict budget *)
  let s = pigeonhole 7 in
  match Sat.Solver.solve ~conflict_budget:5 s with
  | Sat.Solver.Unknown -> ()
  | Sat.Solver.Sat -> Alcotest.fail "php(7) cannot be sat"
  | Sat.Solver.Unsat -> ()
(* solving it fully within 5 conflicts would be miraculous but sound *)

let test_deadline () =
  (* an already-expired deadline yields Unknown without burning time;
     the solver stays usable afterwards *)
  let s = pigeonhole 7 in
  (match Sat.Solver.solve ~deadline:(Obs.Clock.now_s () -. 1.) s with
  | Sat.Solver.Unknown -> ()
  | Sat.Solver.Sat | Sat.Solver.Unsat ->
      Alcotest.fail "expired deadline must report Unknown");
  (* a generous deadline must not change the verdict *)
  let s4 = pigeonhole 4 in
  check_result "php(4) still unsat under a far deadline" true
    (is_unsat (Sat.Solver.solve ~deadline:(Obs.Clock.now_s () +. 3600.) s4))

let test_dimacs_roundtrip () =
  let src = "c example\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  let n, clauses = Sat.Dimacs.parse src in
  Alcotest.(check int) "vars" 3 n;
  Alcotest.(check int) "clauses" 2 (List.length clauses);
  let n', clauses' = Sat.Dimacs.parse (Sat.Dimacs.to_string (n, clauses)) in
  Alcotest.(check int) "vars rt" n n';
  Alcotest.(check bool) "clauses rt" true (clauses = clauses')

let test_dimacs_duplicate_literals () =
  let warnings = ref [] in
  let n, clauses =
    Sat.Dimacs.parse
      ~on_warning:(fun w -> warnings := w :: !warnings)
      "p cnf 2 2\n1 1 -2 0\n-1 2 0\n"
  in
  Alcotest.(check int) "vars" 2 n;
  Alcotest.(check int) "clauses kept" 2 (List.length clauses);
  (* the duplicate is dropped, the clause is otherwise intact *)
  Alcotest.(check int) "deduped clause width" 2
    (List.length (List.hd clauses));
  (match !warnings with
  | [ w ] ->
      Alcotest.(check int) "warning line" 2 w.Sat.Dimacs.line;
      Alcotest.(check string) "warning token" "1" w.Sat.Dimacs.token;
      Alcotest.(check bool) "reason mentions the duplicate" true
        (String.length w.Sat.Dimacs.reason > 0)
  | ws -> Alcotest.failf "expected exactly one warning, got %d" (List.length ws));
  (* opposite-polarity literals are not duplicates *)
  let warnings = ref [] in
  let _, tauto =
    Sat.Dimacs.parse
      ~on_warning:(fun w -> warnings := w :: !warnings)
      "p cnf 1 1\n1 -1 0\n"
  in
  Alcotest.(check int) "tautology untouched" 2
    (List.length (List.hd tauto));
  Alcotest.(check int) "no warning for x or !x" 0 (List.length !warnings);
  (* default callback: duplicates are still silently deduplicated *)
  let _, silent = Sat.Dimacs.parse "p cnf 2 1\n2 2 2 1 0\n" in
  Alcotest.(check int) "silent dedup" 2 (List.length (List.hd silent))

let expect_parse_error ?token src ~line =
  match Sat.Dimacs.parse src with
  | _ -> Alcotest.fail (Printf.sprintf "parser accepted malformed input %S" src)
  | exception Sat.Dimacs.Parse_error { line = l; token = t; _ } ->
      Alcotest.(check int) "error line" line l;
      Option.iter (fun tok -> Alcotest.(check string) "error token" tok t) token

let test_dimacs_errors () =
  (* clause before the problem line *)
  expect_parse_error "c hi\n1 -2 0\n" ~line:2 ~token:"1";
  (* malformed problem lines *)
  expect_parse_error "p cnf three 2\n" ~line:1 ~token:"p cnf three 2";
  expect_parse_error "p dimacs 3 2\n" ~line:1;
  expect_parse_error "p cnf -3 2\n" ~line:1;
  (* duplicate problem line *)
  expect_parse_error "p cnf 3 1\np cnf 3 1\n1 0\n" ~line:2;
  (* non-integer literal, with the right line under comments/blanks *)
  expect_parse_error "p cnf 3 1\nc note\n\n1 x 0\n" ~line:4 ~token:"x";
  (* literal out of the declared range *)
  expect_parse_error "p cnf 3 1\n1 -4 0\n" ~line:2 ~token:"-4";
  (* well-formed input still parses *)
  let n, clauses = Sat.Dimacs.parse "c ok\np cnf 2 2\n1 2 0\n-1 0\n" in
  Alcotest.(check int) "vars" 2 n;
  Alcotest.(check int) "clauses" 2 (List.length clauses)

(* --- brute force cross-check ---------------------------------------- *)

let brute_force n_vars clauses =
  let rec go assignment v =
    if v = n_vars then
      List.for_all
        (fun c ->
          List.exists
            (fun l ->
              let value = (assignment lsr Sat.Lit.var l) land 1 = 1 in
              if Sat.Lit.sign l then value else not value)
            c)
        clauses
    else go assignment (v + 1) || go (assignment lor (1 lsl v)) (v + 1)
  in
  go 0 0

let random_cnf rng n_vars n_clauses =
  List.init n_clauses (fun _ ->
      let len = 1 + Random.State.int rng 3 in
      List.init len (fun _ ->
          Sat.Lit.make (Random.State.int rng n_vars) (Random.State.bool rng)))

let test_vs_brute_force () =
  let rng = Random.State.make [| 7 |] in
  for _case = 1 to 200 do
    let n_vars = 3 + Random.State.int rng 8 in
    let n_clauses = 2 + Random.State.int rng 25 in
    let clauses = random_cnf rng n_vars n_clauses in
    let s = mk n_vars in
    List.iter (Sat.Solver.add_clause s) clauses;
    let expected = brute_force n_vars clauses in
    (match Sat.Solver.solve s with
    | Sat.Solver.Sat ->
        if not expected then Alcotest.fail "solver said SAT, brute force UNSAT";
        List.iter
          (fun c ->
            if not (List.exists (Sat.Solver.lit_value s) c) then
              Alcotest.fail "model does not satisfy a clause")
          clauses
    | Sat.Solver.Unsat ->
        if expected then Alcotest.fail "solver said UNSAT, brute force SAT"
    | Sat.Solver.Unknown -> Alcotest.fail "unexpected Unknown without budget")
  done

let test_assumptions_vs_brute_force () =
  let rng = Random.State.make [| 13 |] in
  for _case = 1 to 100 do
    let n_vars = 3 + Random.State.int rng 6 in
    let clauses = random_cnf rng n_vars (2 + Random.State.int rng 15) in
    let n_assumps = 1 + Random.State.int rng 3 in
    let assumptions =
      List.init n_assumps (fun _ ->
          Sat.Lit.make (Random.State.int rng n_vars) (Random.State.bool rng))
    in
    let s = mk n_vars in
    List.iter (Sat.Solver.add_clause s) clauses;
    let expected =
      brute_force n_vars (clauses @ List.map (fun l -> [ l ]) assumptions)
    in
    (match Sat.Solver.solve ~assumptions s with
    | Sat.Solver.Sat -> if not expected then Alcotest.fail "SAT vs brute UNSAT (assumptions)"
    | Sat.Solver.Unsat -> if expected then Alcotest.fail "UNSAT vs brute SAT (assumptions)"
    | Sat.Solver.Unknown -> Alcotest.fail "unexpected Unknown");
    (* the solver must remain reusable afterwards *)
    ignore (Sat.Solver.solve s)
  done

(* --- assumption cores, selector guards, clause reuse ------------------- *)

(* php(n) with every clause guarded by pigeon [p]'s selector: the
   instance is unsat exactly when every selector is assumed (drop any
   one and that pigeon simply goes unplaced) *)
let guarded_pigeonhole n =
  let s = Sat.Solver.create () in
  let var =
    Array.init (n + 1) (fun _ -> Array.init n (fun _ -> Sat.Solver.new_var s))
  in
  let sels = Array.init (n + 1) (fun _ -> Sat.Solver.new_selector s) in
  for p = 0 to n do
    Sat.Solver.add_guarded s ~guard:sels.(p)
      (List.init n (fun h -> Sat.Lit.pos var.(p).(h)))
  done;
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        Sat.Solver.add_guarded s ~guard:sels.(p1)
          [ Sat.Lit.neg var.(p1).(h); Sat.Lit.neg var.(p2).(h) ]
      done
    done
  done;
  (s, Array.to_list sels)

let test_failed_assumptions_subset () =
  (* randomized: the reported core must be a subset of the assumptions
     that is itself sufficient for unsatisfiability — re-solving under
     the core alone must still be Unsat *)
  let unsat_cases = ref 0 in
  for seed = 1 to 40 do
    let rng = Random.State.make [| seed |] in
    let n_vars = 8 and n_assum = 5 in
    let s = mk (n_vars + n_assum) in
    for _ = 1 to 42 do
      let rl () =
        let v = 1 + Random.State.int rng n_vars in
        if Random.State.bool rng then lit v else lit (-v)
      in
      let g = lit (n_vars + 1 + Random.State.int rng n_assum) in
      Sat.Solver.add_clause s [ Sat.Lit.negate g; rl (); rl (); rl () ]
    done;
    let assums = List.init n_assum (fun i -> lit (n_vars + 1 + i)) in
    match Sat.Solver.solve ~assumptions:assums s with
    | Sat.Solver.Sat | Sat.Solver.Unknown -> ()
    | Sat.Solver.Unsat ->
        incr unsat_cases;
        let core = Sat.Solver.failed_assumptions s in
        check_result "core is a subset of the assumptions" true
          (List.for_all (fun l -> List.mem l assums) core);
        check_result "core alone is still unsat" true
          (is_unsat (Sat.Solver.solve ~assumptions:core s));
        (* and the solver is still correct without any assumption *)
        check_result "sat with the guards off" true
          (is_sat (Sat.Solver.solve s))
  done;
  check_result "harness exercised unsat cores" true (!unsat_cases > 5);
  (* structured instance where the minimal core is ALL assumptions: a
     genuinely-sufficient subset cannot drop a single one *)
  let s, sels = guarded_pigeonhole 4 in
  check_result "guarded php(4) unsat under all selectors" true
    (is_unsat (Sat.Solver.solve ~assumptions:sels s));
  let core = Sat.Solver.failed_assumptions s in
  check_result "core is a subset" true
    (List.for_all (fun l -> List.mem l sels) core);
  check_result "core re-solves to unsat" true
    (is_unsat (Sat.Solver.solve ~assumptions:core s));
  check_result "php core names every pigeon" true
    (List.length core = List.length sels)

let test_usable_after_assumption_unsat () =
  let s = mk 2 in
  Sat.Solver.add_clause s [ lit 1; lit 2 ];
  Sat.Solver.add_clause s [ lit (-1); lit 2 ];
  check_result "unsat assuming -2" true
    (is_unsat (Sat.Solver.solve ~assumptions:[ lit (-2) ] s));
  check_result "sat afterwards" true (is_sat (Sat.Solver.solve s));
  check_result "v2 true in the model" true (Sat.Solver.value s 1);
  (* Unknown from an exhausted conflict budget must not wedge the
     solver either: a later unrestricted solve still terminates with
     the real verdict *)
  let s7 = pigeonhole 7 in
  (match Sat.Solver.solve ~conflict_budget:3 s7 with
  | Sat.Solver.Unknown | Sat.Solver.Unsat -> ()
  | Sat.Solver.Sat -> Alcotest.fail "php(7) cannot be sat");
  check_result "full verdict after a budget timeout" true
    (is_unsat (Sat.Solver.solve s7))

let test_learned_clause_reuse () =
  (* the whole point of the incremental prover: clauses learned during
     an assumption-based solve survive, so repeating the same query
     costs strictly fewer conflicts *)
  let s, sels = guarded_pigeonhole 6 in
  let c0 = Sat.Solver.num_conflicts s in
  check_result "unsat under all selectors" true
    (is_unsat (Sat.Solver.solve ~assumptions:sels s));
  let c1 = Sat.Solver.num_conflicts s - c0 in
  check_result "first solve actually fought" true (c1 > 0);
  check_result "still unsat on repeat" true
    (is_unsat (Sat.Solver.solve ~assumptions:sels s));
  let c2 = Sat.Solver.num_conflicts s - c0 - c1 in
  check_result "repeat query costs strictly fewer conflicts" true (c2 < c1)

let test_selector_guard_and_retire () =
  let s = mk 1 in
  let g = Sat.Solver.new_selector s in
  Sat.Solver.add_guarded s ~guard:g [ lit 1 ];
  Sat.Solver.add_guarded s ~guard:g [ lit (-1) ];
  (* guarded clauses are inert without the assumption... *)
  check_result "sat without the guard" true (is_sat (Sat.Solver.solve s));
  (* ...and bite under it *)
  check_result "unsat under the guard" true
    (is_unsat (Sat.Solver.solve ~assumptions:[ g ] s));
  check_result "the guard is the core" true
    (List.mem g (Sat.Solver.failed_assumptions s));
  let before = Sat.Solver.num_clauses s in
  Sat.Solver.retire s g;
  check_result "guarded clauses physically deleted" true
    (Sat.Solver.num_clauses s < before);
  check_result "sat after retirement" true (is_sat (Sat.Solver.solve s));
  check_result "a retired guard can never be re-activated" true
    (is_unsat (Sat.Solver.solve ~assumptions:[ g ] s))

let qcheck_tseitin =
  (* Tseitin-encode a random 3-gate function two different ways and
     check equisatisfiability of the miter being 1/0. *)
  QCheck.Test.make ~name:"tseitin and/or/xor against semantics" ~count:200
    QCheck.(triple bool bool bool)
    (fun (a, b, c) ->
      let s = Sat.Solver.create () in
      let va = Sat.Solver.new_var s
      and vb = Sat.Solver.new_var s
      and vc = Sat.Solver.new_var s in
      let vand = Sat.Solver.new_var s
      and vor = Sat.Solver.new_var s
      and vxor = Sat.Solver.new_var s
      and vmux = Sat.Solver.new_var s in
      Sat.Tseitin.and2 s ~out:(Sat.Lit.pos vand) (Sat.Lit.pos va) (Sat.Lit.pos vb);
      Sat.Tseitin.or2 s ~out:(Sat.Lit.pos vor) (Sat.Lit.pos va) (Sat.Lit.pos vb);
      Sat.Tseitin.xor2 s ~out:(Sat.Lit.pos vxor) (Sat.Lit.pos va) (Sat.Lit.pos vb);
      Sat.Tseitin.mux s ~out:(Sat.Lit.pos vmux) ~sel:(Sat.Lit.pos vc)
        ~a:(Sat.Lit.pos va) ~b:(Sat.Lit.pos vb);
      Sat.Tseitin.const s (Sat.Lit.pos va) a;
      Sat.Tseitin.const s (Sat.Lit.pos vb) b;
      Sat.Tseitin.const s (Sat.Lit.pos vc) c;
      match Sat.Solver.solve s with
      | Sat.Solver.Sat ->
          Sat.Solver.value s vand = (a && b)
          && Sat.Solver.value s vor = (a || b)
          && Sat.Solver.value s vxor = (a <> b)
          && Sat.Solver.value s vmux = (if c then b else a)
      | Sat.Solver.Unsat | Sat.Solver.Unknown -> false)

let () =
  Alcotest.run "sat"
    [
      ( "solver",
        [
          Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
          Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "unit chain" `Quick test_unit_propagation_chain;
          Alcotest.test_case "model satisfies" `Quick test_model_satisfies;
          Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "incremental" `Quick test_incremental;
          Alcotest.test_case "conflict budget" `Quick test_budget;
          Alcotest.test_case "wall-clock deadline" `Quick test_deadline;
          Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "dimacs located errors" `Quick test_dimacs_errors;
          Alcotest.test_case "dimacs duplicate literals" `Quick
            test_dimacs_duplicate_literals;
          Alcotest.test_case "vs brute force" `Quick test_vs_brute_force;
          Alcotest.test_case "assumptions vs brute force" `Quick
            test_assumptions_vs_brute_force;
        ] );
      ( "incremental-api",
        [
          Alcotest.test_case "failed assumptions are a sufficient core"
            `Quick test_failed_assumptions_subset;
          Alcotest.test_case "usable after assumption unsat and timeouts"
            `Quick test_usable_after_assumption_unsat;
          Alcotest.test_case "learned clauses persist across solves" `Quick
            test_learned_clause_reuse;
          Alcotest.test_case "selector guards activate and retire" `Quick
            test_selector_guard_and_retire;
        ] );
      ( "tseitin",
        [ QCheck_alcotest.to_alcotest qcheck_tseitin ] );
    ]
