(* Tests for the formal engine: simulation-based candidate mining,
   CNF unrolling, mutual k-induction, and cutpoints.  Soundness checks
   cross-validate proved invariants against long random simulations. *)

module D = Netlist.Design
module C = Netlist.Cell

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A design with structure worth proving things about:
     in: a[2], en
     r0: register that only loads when en=1, data = a&~a = 0 -> always 0
     r1: toggles
     y = r0 & r1  -> always 0
     z = r1 | ~r1 -> always 1 (combinationally)
*)
let demo_design () =
  let d = D.create "demo" in
  let a0 = D.add_input d "a[0]" in
  let a1 = D.add_input d "a[1]" in
  let en = D.add_input d "en" in
  let na0 = D.add_cell d C.Inv [| a0 |] in
  let zero_comb = D.add_cell d C.And2 [| a0; na0 |] in
  let r0 = D.new_net d in
  let r0_next = D.add_cell d C.Mux2 [| en; r0; zero_comb |] in
  D.add_cell_out d ~init:false C.Dff [| r0_next |] ~out:r0;
  let r1 = D.new_net d in
  let nr1 = D.add_cell d C.Inv [| r1 |] in
  D.add_cell_out d ~init:false C.Dff [| nr1 |] ~out:r1;
  let y = D.add_cell d C.And2 [| r0; r1 |] in
  let z = D.add_cell d C.Or2 [| r1; nr1 |] in
  let w = D.add_cell d C.Xor2 [| a1; r1 |] in
  D.add_output d "y" y;
  D.add_output d "z" z;
  D.add_output d "w" w;
  (d, zero_comb, r0, y, z, w)

let test_rsim_finds_constants () =
  let d, zero_comb, r0, y, z, w = demo_design () in
  let cands = Engine.Rsim.mine d Engine.Stimulus.unconstrained in
  let has c = List.exists (Engine.Candidate.equal c) cands in
  check "zero_comb const0" true (has (Engine.Candidate.Const (zero_comb, false)));
  check "r0 const0" true (has (Engine.Candidate.Const (r0, false)));
  check "y const0" true (has (Engine.Candidate.Const (y, false)));
  check "z const1" true (has (Engine.Candidate.Const (z, true)));
  (* w toggles with a1, must not be a candidate *)
  check "w not const" false
    (has (Engine.Candidate.Const (w, false)) || has (Engine.Candidate.Const (w, true)))

let test_induction_proves_true_invariants () =
  let d, zero_comb, r0, y, z, _w = demo_design () in
  let cands = Engine.Rsim.mine d Engine.Stimulus.unconstrained in
  let proved, stats = Engine.Induction.prove ~assume:D.net_true d cands in
  let has c = List.exists (Engine.Candidate.equal c) proved in
  check "zero_comb proved" true (has (Engine.Candidate.Const (zero_comb, false)));
  check "r0 proved" true (has (Engine.Candidate.Const (r0, false)));
  check "y proved" true (has (Engine.Candidate.Const (y, false)));
  check "z proved" true (has (Engine.Candidate.Const (z, true)));
  check "not exhausted" false stats.Engine.Induction.budget_exhausted

let test_rsim_deadline () =
  let d, _, _, _, _, _ = demo_design () in
  let past = Obs.Clock.now_s () -. 1. in
  (* an expired deadline before any observation degrades to "no
     candidates", never to an exception *)
  check "mine returns empty" true
    (Engine.Rsim.mine ~deadline:past d Engine.Stimulus.unconstrained = []);
  (* refine without simulation time keeps every candidate (conservative:
     fewer cheap kills, the prover still guards soundness) *)
  let cand = Engine.Candidate.Const (2, false) in
  check_int "refine passes candidates through" 1
    (List.length
       (Engine.Rsim.refine ~deadline:past d Engine.Stimulus.unconstrained
          [ cand ]))

let test_induction_time_budget () =
  let d, zero_comb, _, _, _, _ = demo_design () in
  let cands = Engine.Rsim.mine d Engine.Stimulus.unconstrained in
  check "have candidates" true (cands <> []);
  (* an (effectively) zero budget: every SAT call is inconclusive, all
     candidates are conservatively dropped, and the stats say why *)
  let opts =
    { Engine.Induction.default_options with
      Engine.Induction.time_budget_s = 1e-9 }
  in
  let proved, stats = Engine.Induction.prove ~options:opts ~assume:D.net_true d cands in
  check "nothing proved" true (proved = []);
  check "deadline flagged" true stats.Engine.Induction.deadline_exceeded;
  (* a generous budget changes nothing *)
  let opts =
    { Engine.Induction.default_options with
      Engine.Induction.time_budget_s = 3600. }
  in
  let proved, stats = Engine.Induction.prove ~options:opts ~assume:D.net_true d cands in
  check "still proves under a generous budget" true
    (List.exists
       (Engine.Candidate.equal (Engine.Candidate.Const (zero_comb, false)))
       proved);
  check "deadline not flagged" false stats.Engine.Induction.deadline_exceeded

let test_expired_budget_uniformity () =
  (* a zero or negative wall-clock budget is an immediate deadline hit
     at every layer, uniformly: the raw solver, the prover *)
  let s = Sat.Solver.create () in
  let v = Sat.Solver.new_var s in
  Sat.Solver.add_clause s [ Sat.Lit.pos v ];
  check "solver: past deadline is Unknown" true
    (Sat.Solver.solve ~deadline:(Obs.Clock.now_s () -. 5.) s
    = Sat.Solver.Unknown);
  check "solver: same instance solves without a deadline" true
    (Sat.Solver.solve s = Sat.Solver.Sat);
  let d, _, _, _, _, _ = demo_design () in
  let cands = Engine.Rsim.mine d Engine.Stimulus.unconstrained in
  List.iter
    (fun budget ->
      let opts =
        { Engine.Induction.default_options with
          Engine.Induction.time_budget_s = budget }
      in
      let proved, stats =
        Engine.Induction.prove ~options:opts ~assume:D.net_true d cands
      in
      check (Printf.sprintf "budget %g: nothing proved" budget) true
        (proved = []);
      check (Printf.sprintf "budget %g: deadline flagged" budget) true
        stats.Engine.Induction.deadline_exceeded)
    [ 0.; -5. ];
  (* [infinity] is the unlimited sentinel, not a deadline *)
  let opts =
    { Engine.Induction.default_options with
      Engine.Induction.time_budget_s = infinity }
  in
  let proved, stats =
    Engine.Induction.prove ~options:opts ~assume:D.net_true d cands
  in
  check "infinite budget proves" true (proved <> []);
  check "infinite budget: deadline not flagged" false
    stats.Engine.Induction.deadline_exceeded

let test_induction_kills_false_candidates () =
  (* candidate claims a free input-fed flop is constant: must die *)
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let q = D.add_dff d ~d:a () in
  D.add_output d "q" q;
  let false_cand = Engine.Candidate.Const (q, false) in
  let proved, _ = Engine.Induction.prove ~assume:D.net_true d [ false_cand ] in
  check "killed" true (proved = [])

let test_induction_with_assumption () =
  (* q loads input a every cycle; under the assumption a=0, q is
     provably constant 0; without it, not *)
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let q = D.add_dff d ~d:a () in
  let na = D.add_cell d C.Inv [| a |] in
  D.add_output d "q" q;
  let cand = Engine.Candidate.Const (q, false) in
  let proved_free, _ = Engine.Induction.prove ~assume:D.net_true d [ cand ] in
  check "unprovable without env" true (proved_free = []);
  let proved_env, _ = Engine.Induction.prove ~assume:na d [ cand ] in
  check "provable under env" true (proved_env = [ cand ])

let test_induction_implications () =
  (* g = x & (x | y): x -> (x|y) always holds *)
  let d = D.create "t" in
  let x = D.add_input d "x" in
  let y = D.add_input d "y" in
  let x_or_y = D.add_cell d C.Or2 [| x; y |] in
  let g = D.add_cell d C.And2 [| x; x_or_y |] in
  D.add_output d "g" g;
  let cands = Engine.Rsim.mine d Engine.Stimulus.unconstrained in
  let expected =
    Engine.Candidate.Implies
      { cell = (match D.driver d g with Some ci -> ci | None -> -1); a = x; b = x_or_y }
  in
  check "mined" true (List.exists (Engine.Candidate.equal expected) cands);
  let proved, _ = Engine.Induction.prove ~assume:D.net_true d cands in
  check "proved" true (List.exists (Engine.Candidate.equal expected) proved)

(* soundness: every proved invariant must hold on a long random sim *)
let soundness_check d assume proved ~cycles =
  let sim = Netlist.Sim64.create d in
  let rng = Random.State.make [| 31337 |] in
  let random_word () =
    Int64.logor
      (Int64.of_int (Random.State.bits rng))
      (Int64.shift_left (Int64.of_int (Random.State.bits rng)) 30)
  in
  let ok = ref true in
  for _ = 1 to cycles do
    List.iter (fun (_, n) -> Netlist.Sim64.set_input sim n (random_word ())) (D.inputs d);
    Netlist.Sim64.eval sim;
    (* only check cycles where the (unconstrained) assumption holds *)
    if Netlist.Sim64.read sim assume = -1L then
      List.iter
        (fun c ->
          if not (Engine.Candidate.holds_in_values (Netlist.Sim64.read sim) c) then
            ok := false)
        proved;
    Netlist.Sim64.step sim
  done;
  !ok

let qcheck_induction_sound =
  QCheck.Test.make ~name:"proved invariants hold in simulation" ~count:15
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let d = Netlist.Generate.random ~seed () in
      let cands = Engine.Rsim.mine d Engine.Stimulus.unconstrained in
      let proved, _ = Engine.Induction.prove ~assume:D.net_true d cands in
      soundness_check d D.net_true proved ~cycles:500)

let test_unroll_semantics () =
  (* unrolled toggle flop: frame f value = parity of f *)
  let d = D.create "t" in
  let q = D.new_net d in
  let nq = D.add_cell d C.Inv [| q |] in
  D.add_cell_out d ~init:false C.Dff [| nq |] ~out:q;
  D.add_output d "q" q;
  let solver = Sat.Solver.create () in
  let u = Engine.Unroll.create solver d ~init:`Reset in
  for _ = 0 to 4 do
    Engine.Unroll.add_frame u
  done;
  (match Sat.Solver.solve solver with
  | Sat.Solver.Sat -> ()
  | Sat.Solver.Unsat | Sat.Solver.Unknown -> Alcotest.fail "unrolling unsat");
  for f = 0 to 4 do
    let l = Engine.Unroll.lit u ~frame:f q in
    check_int (Printf.sprintf "frame %d" f) (f mod 2)
      (if Sat.Solver.lit_value solver l then 1 else 0)
  done

let test_cutpoint () =
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let x = D.add_cell d C.Inv [| a |] in
  let y = D.add_cell d C.Inv [| x |] in
  D.add_output d "y" y;
  let d', fresh = Engine.Cutpoint.apply d ~name:"cut" [| x |] in
  check_int "one new input" (List.length (D.inputs d) + 1) (List.length (D.inputs d'));
  (* y = Inv(x); after the cut, y = Inv(cut) regardless of a *)
  let sim = Netlist.Sim64.create d' in
  Netlist.Sim64.set_input sim (Option.get (D.find_input d' "a")) 0L;
  Netlist.Sim64.set_input sim fresh.(0) (-1L);
  Netlist.Sim64.eval sim;
  let y' = Option.get (D.find_output d' "y") in
  check "y = not cut" true (Netlist.Sim64.read sim y' = 0L);
  Netlist.Sim64.set_input sim fresh.(0) 0L;
  Netlist.Sim64.eval sim;
  check "y follows cut inverted" true (Netlist.Sim64.read sim y' = -1L);
  check "cutting an input rejected" true
    (try ignore (Engine.Cutpoint.apply d ~name:"c" [| a |]); false
     with Invalid_argument _ -> true)

let test_stimulus_pack () =
  let lanes = Engine.Stimulus.pack_lanes (fun lane -> lane land 0xF) ~width:4 in
  (* lane words are 0,1,2,...,63 masked to 4 bits; bit i of lanes.(j) is
     bit j of word i *)
  for lane = 0 to 63 do
    let got =
      List.fold_left
        (fun acc j ->
          if Int64.logand (Int64.shift_right_logical lanes.(j) lane) 1L = 1L then
            acc lor (1 lsl j)
          else acc)
        0 [ 0; 1; 2; 3 ]
    in
    check_int (Printf.sprintf "lane %d" lane) (lane land 0xF) got
  done

let () =
  Alcotest.run "engine"
    [
      ( "rsim",
        [
          Alcotest.test_case "finds constants" `Quick test_rsim_finds_constants;
          Alcotest.test_case "deadline degrades gracefully" `Quick
            test_rsim_deadline;
          Alcotest.test_case "stimulus packing" `Quick test_stimulus_pack;
        ] );
      ( "induction",
        [
          Alcotest.test_case "proves true invariants" `Quick
            test_induction_proves_true_invariants;
          Alcotest.test_case "kills false candidates" `Quick
            test_induction_kills_false_candidates;
          Alcotest.test_case "env assumptions" `Quick test_induction_with_assumption;
          Alcotest.test_case "implications" `Quick test_induction_implications;
          Alcotest.test_case "time budget" `Quick test_induction_time_budget;
          Alcotest.test_case "zero/negative budgets expire immediately"
            `Quick test_expired_budget_uniformity;
        ] );
      ("unroll", [ Alcotest.test_case "semantics" `Quick test_unroll_semantics ]);
      ("cutpoint", [ Alcotest.test_case "apply" `Quick test_cutpoint ]);
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_induction_sound ]);
    ]
