(* Tests for the PDAT core library: rewiring semantics, environment
   monitors, the full pipeline on a small design, and the end-to-end
   guarantee on the Ibex-class core: a program from the reduced ISA
   executes identically on the original and the PDAT-reduced netlist. *)

module D = Netlist.Design
module C = Netlist.Cell

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- rewiring ---------------------------------------------------------- *)

let sim_output d inputs_v =
  let sim = Netlist.Sim64.create d in
  List.iter (fun (nm, v) -> Netlist.Sim64.set_input_name sim nm v) inputs_v;
  Netlist.Sim64.eval sim;
  List.map (fun (nm, n) -> (nm, Netlist.Sim64.read sim n)) (D.outputs d)

let test_rewire_const () =
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let x = D.add_cell d C.And2 [| a; a |] in
  D.add_output d "x" x;
  (* pretend we proved x == 0: the output must follow the rail *)
  let d' = Pdat.Rewire.apply d [ Engine.Candidate.Const (x, false) ] in
  check "x tied low" true
    (sim_output d' [ ("a", -1L) ] = [ ("x", 0L) ])

let test_rewire_implies_and () =
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let b = D.add_input d "b" in
  let x = D.add_cell d C.And2 [| a; b |] in
  D.add_output d "x" x;
  let cell = Option.get (D.driver d x) in
  (* a -> b proved: output = a *)
  let d' = Pdat.Rewire.apply d [ Engine.Candidate.Implies { cell; a; b } ] in
  check "follows a" true
    (sim_output d' [ ("a", -1L); ("b", 0L) ] = [ ("x", -1L) ])

let test_rewire_implies_or () =
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let b = D.add_input d "b" in
  let x = D.add_cell d C.Or2 [| a; b |] in
  D.add_output d "x" x;
  let cell = Option.get (D.driver d x) in
  (* a -> b proved: a | b = b *)
  let d' = Pdat.Rewire.apply d [ Engine.Candidate.Implies { cell; a; b } ] in
  check "follows b" true
    (sim_output d' [ ("a", -1L); ("b", 0L) ] = [ ("x", 0L) ])

let test_rewire_implies_nand_nor () =
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let b = D.add_input d "b" in
  let x = D.add_cell d C.Nand2 [| a; b |] in
  let y = D.add_cell d C.Nor2 [| a; b |] in
  D.add_output d "x" x;
  D.add_output d "y" y;
  let cx = Option.get (D.driver d x) in
  let cy = Option.get (D.driver d y) in
  let d' =
    Pdat.Rewire.apply d
      [ Engine.Candidate.Implies { cell = cx; a; b };
        Engine.Candidate.Implies { cell = cy; a; b } ]
  in
  (* nand: !a ; nor: !b *)
  check "nand is !a, nor is !b" true
    (sim_output d' [ ("a", 0L); ("b", -1L) ] = [ ("x", -1L); ("y", 0L) ])

let test_rewire_empty_is_identity () =
  (* no proved properties: rewiring must be a semantic no-op, and the
     resynthesized result must match the baseline exactly *)
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let b = D.add_input d "b" in
  let x = D.add_cell d C.And2 [| a; b |] in
  let q = D.add_dff d ~d:x () in
  D.add_output d "x" x;
  D.add_output d "q" q;
  let d' = Pdat.Rewire.apply d [] in
  check "same stats before resynthesis" true
    (Netlist.Stats.of_design d = Netlist.Stats.of_design d');
  let opt = Netlist.Stats.of_design (fst (Synthkit.Optimize.run d)) in
  let opt' = Netlist.Stats.of_design (fst (Synthkit.Optimize.run d')) in
  check "same stats after resynthesis" true (opt = opt')

let test_rewire_unknown_cell () =
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let b = D.add_input d "b" in
  D.add_output d "x" (D.add_cell d C.And2 [| a; b |]);
  let raises cell =
    try
      ignore (Pdat.Rewire.apply d [ Engine.Candidate.Implies { cell; a; b } ]);
      false
    with Invalid_argument _ -> true
  in
  check "cell id past the end rejected" true (raises (D.num_cells d));
  check "negative cell id rejected" true (raises (-1))

let test_rewire_chain () =
  (* implication redirect onto a net itself proved constant *)
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let b = D.add_input d "b" in
  let x = D.add_cell d C.And2 [| a; b |] in
  D.add_output d "x" x;
  let cell = Option.get (D.driver d x) in
  let d' =
    Pdat.Rewire.apply d
      [ Engine.Candidate.Implies { cell; a; b };
        Engine.Candidate.Const (a, true) ]
  in
  check "chained to rail" true
    (sim_output d' [ ("a", 0L); ("b", 0L) ] = [ ("x", -1L) ])

(* --- environment monitors ---------------------------------------------- *)

(* a bare 32-bit port design to host a monitor *)
let port_design () =
  let d = D.create "port" in
  let nets = Array.init 32 (fun i -> D.add_input d (Printf.sprintf "instr_rdata[%d]" i)) in
  (* keep a visible output so the design is non-trivial *)
  D.add_output d "parity" (D.add_cell d C.Xor2 [| nets.(0); nets.(1) |]);
  d

let monitor_accepts subset word =
  let d = port_design () in
  let env = Pdat.Environment.riscv_port d ~port:"instr_rdata" subset in
  let sim = Netlist.Sim64.create env.Pdat.Environment.model in
  Netlist.Sim64.set_bus sim
    (D.input_bus env.Pdat.Environment.model "instr_rdata")
    word;
  Netlist.Sim64.eval sim;
  Netlist.Sim64.read sim env.Pdat.Environment.assume = -1L

let reference_accepts subset word =
  let is16 = word land 3 <> 3 in
  List.exists
    (fun nm ->
      let i = Isa.Rv32.find nm in
      let e = i.Isa.Rv32.enc in
      if e.Isa.Encoding.width = 16 then
        is16 && Isa.Encoding.matches e (word land 0xFFFF)
      else (not is16) && Isa.Encoding.matches e word)
    (Isa.Subset.instructions subset)

let qcheck_monitor_matches_reference =
  QCheck.Test.make ~name:"port monitor equals reference semantics" ~count:150
    QCheck.(int_range 0 0xFFFFFFF)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let subset = Isa.Subset.rv32imc in
      (* half the samples are valid instructions, half random words *)
      let word =
        if Random.State.bool rng then
          let instrs = Isa.Subset.instructions subset in
          let i = Isa.Rv32.find (List.nth instrs (Random.State.int rng (List.length instrs))) in
          let w = Isa.Encoding.random_instance rng i.Isa.Rv32.enc in
          if i.Isa.Rv32.enc.Isa.Encoding.width = 16 then
            w lor (Random.State.int rng 0x10000 lsl 16)
          else w
        else Random.State.bits rng lor (Random.State.bits rng lsl 30)
      in
      let word = word land 0xFFFFFFFF in
      monitor_accepts subset word = reference_accepts subset word)

let test_stimulus_satisfies_monitor () =
  let d = port_design () in
  let subset = Isa.Workloads.riscv_all in
  let env = Pdat.Environment.riscv_port d ~port:"instr_rdata" subset in
  let sim = Netlist.Sim64.create env.Pdat.Environment.model in
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 200 do
    List.iter
      (fun (n, v) -> Netlist.Sim64.set_input sim n v)
      (env.Pdat.Environment.stimulus.Engine.Stimulus.drive rng);
    Netlist.Sim64.eval sim;
    if Netlist.Sim64.read sim env.Pdat.Environment.assume <> -1L then
      Alcotest.fail "stimulus produced a word the monitor rejects"
  done

(* --- pipeline on a small design ----------------------------------------- *)

(* environment: en is always 0 *)
let en0_env d =
  let model = D.copy d in
  let en_net = Option.get (D.find_input model "en") in
  let inv = D.add_cell model C.Inv [| en_net |] in
  {
    Pdat.Environment.model;
    assume = inv;
    stimulus =
      Engine.Stimulus.
        { drive = (fun _ -> [ (Option.get (D.find_input d "en"), 0L) ]) };
    cuts = [||];
    description = "en=0";
  }

let test_pipeline_small_design () =
  (* an input-gated accumulator: constraining the gate input to 0
     freezes the accumulator and PDAT removes it *)
  let c = Hdl.Ctx.create "acc" in
  let en = Hdl.Ctx.input c "en" 1 in
  let data = Hdl.Ctx.input c "data" 8 in
  let acc = Hdl.Reg.reg_en c "acc" ~en (Hdl.Ops.( +: ) data data) in
  Hdl.Ctx.output c "acc" acc;
  Hdl.Ctx.output c "pass" data;
  let d = Hdl.Ctx.finish c in
  let env = en0_env d in
  let result = Pdat.Pipeline.run ~design:d ~env () in
  let before = result.Pdat.Pipeline.report.Pdat.Pipeline.before in
  let after = result.Pdat.Pipeline.report.Pdat.Pipeline.after in
  check "flops removed" true
    (after.Netlist.Stats.flops < before.Netlist.Stats.flops);
  check_int "all 8 accumulator flops gone" 0 after.Netlist.Stats.flops;
  (* outputs still correct for allowed behaviour *)
  let sim = Netlist.Sim64.create result.Pdat.Pipeline.reduced in
  Netlist.Sim64.set_bus sim (D.input_bus result.Pdat.Pipeline.reduced "data") 0x2A;
  Netlist.Sim64.eval sim;
  check_int "pass-through intact" 0x2A
    (Netlist.Sim64.read_bus sim (D.output_bus result.Pdat.Pipeline.reduced "pass"))

(* --- guard layer: validation, fault injection, deadlines ---------------- *)

(* A design exercising every fault class: a provably-frozen accumulator
   (constants to flip), a live toggle register (a bogus-invariant
   target), a gate mixing a frozen net with live data (a miswire site),
   and pure combinational logic surviving resynthesis (a perturb
   site). *)
let guard_design () =
  let open Hdl.Ops in
  let c = Hdl.Ctx.create "guard" in
  let en = Hdl.Ctx.input c "en" 1 in
  let data = Hdl.Ctx.input c "data" 8 in
  let acc = Hdl.Reg.reg_en c "acc" ~en (data +: data) in
  Hdl.Ctx.output c "acc" acc;
  Hdl.Ctx.output c "parity" (reduce_xor data);
  Hdl.Ctx.output c "mix" (bit acc 0 |: bit data 0);
  let tog = Hdl.Reg.create c ~init:0 ~width:1 "tog" in
  Hdl.Reg.connect tog ~:(Hdl.Reg.q tog);
  Hdl.Ctx.output c "tog" (Hdl.Reg.q tog);
  Hdl.Ctx.finish c

let test_validate_accepts_copy () =
  let d = guard_design () in
  match
    Pdat.Validate.run ~original:d ~reduced:(D.copy d)
      ~env:(Pdat.Environment.unconstrained d) ()
  with
  | Pdat.Validate.Equivalent { observations; _ } ->
      check "observed lanes" true (observations > 0)
  | o -> Alcotest.failf "expected equivalence, got %s" (Pdat.Validate.describe o)

let test_validate_detects_divergence () =
  let mk kind =
    let d = D.create "t" in
    let a = D.add_input d "a" in
    let b = D.add_input d "b" in
    D.add_output d "x" (D.add_cell d kind [| a; b |]);
    d
  in
  let original = mk C.And2 and broken = mk C.Or2 in
  match
    Pdat.Validate.run ~original ~reduced:broken
      ~env:(Pdat.Environment.unconstrained original) ()
  with
  | Pdat.Validate.Divergent dv ->
      Alcotest.(check string) "output name" "x" dv.Pdat.Validate.output;
      check_int "first run" 1 dv.Pdat.Validate.run;
      check_int "first cycle" 1 dv.Pdat.Validate.cycle;
      check "lane in range" true
        (dv.Pdat.Validate.lane >= 0 && dv.Pdat.Validate.lane < 64)
  | o -> Alcotest.failf "expected divergence, got %s" (Pdat.Validate.describe o)

let test_validate_unsupported_interface () =
  let d = guard_design () in
  let empty = D.create "empty" in
  match
    Pdat.Validate.run ~original:d ~reduced:empty
      ~env:(Pdat.Environment.unconstrained d) ()
  with
  | Pdat.Validate.Unsupported _ -> ()
  | o -> Alcotest.failf "expected unsupported, got %s" (Pdat.Validate.describe o)

let test_pipeline_validates_unfaulted () =
  let d = guard_design () in
  let r = Pdat.Pipeline.run ~validate:true ~design:d ~env:(en0_env d) () in
  let rep = r.Pdat.Pipeline.report in
  check "validated" true rep.Pdat.Pipeline.validated;
  check "no fallback" true (rep.Pdat.Pipeline.fallback_reason = None);
  check "no fault" true (rep.Pdat.Pipeline.injected_fault = None);
  (match rep.Pdat.Pipeline.validation with
  | Some (Pdat.Validate.Equivalent { observations; _ }) ->
      check "observed lanes" true (observations > 0)
  | _ -> Alcotest.fail "expected a recorded equivalence outcome");
  check "validate stage timed" true
    (List.mem_assoc "validate" rep.Pdat.Pipeline.stage_seconds);
  (* the guard layer must not change the reduction itself *)
  let r0 = Pdat.Pipeline.run ~design:d ~env:(en0_env d) () in
  check "area/gate deltas unchanged by validation" true
    (rep.Pdat.Pipeline.after = r0.Pdat.Pipeline.report.Pdat.Pipeline.after)

let test_pipeline_fault_matrix () =
  let d = guard_design () in
  let entries = Pdat.Pipeline.self_test ~design:d ~env:(en0_env d) () in
  check_int "every fault class exercised" (List.length Pdat.Faults.all)
    (List.length entries);
  List.iter
    (fun e ->
      let nm = Pdat.Faults.name e.Pdat.Pipeline.fault in
      check (nm ^ " found an injection site") true
        (e.Pdat.Pipeline.injected <> None);
      check (nm ^ " caught by the validator") true e.Pdat.Pipeline.caught;
      (* every pre-resynthesis fault must be caught by the certificate
         audit alone — zero simulation cycles; Perturb_cell corrupts
         after the certified stage, so only the validator can see it *)
      let expect_static = e.Pdat.Pipeline.fault <> Pdat.Faults.Perturb_cell in
      check
        (nm
        ^
        if expect_static then " caught statically by the audit"
        else " is differential-only")
        expect_static e.Pdat.Pipeline.caught_statically)
    entries

let test_pipeline_strict_lint_clean_run () =
  (* a clean design under the Strict gate: linted, certified, audited —
     and the reduction itself is untouched by the analysis layer *)
  let d = guard_design () in
  let r =
    Pdat.Pipeline.run ~validate:true ~lint:Analysis.Lint.Strict ~design:d
      ~env:(en0_env d) ()
  in
  let rep = r.Pdat.Pipeline.report in
  check "validated" true rep.Pdat.Pipeline.validated;
  check "no fallback" true (rep.Pdat.Pipeline.fallback_reason = None);
  check "gate recorded" true
    (rep.Pdat.Pipeline.lint_gate = Analysis.Lint.Strict);
  check "no error-severity input findings" true
    (Analysis.Diag.errors rep.Pdat.Pipeline.input_lint = []);
  check "audit accepted the certificate" true (rep.Pdat.Pipeline.audit = []);
  check "rewiring emitted certified edits" true
    (rep.Pdat.Pipeline.certificate_edits > 0);
  check "lint stage timed" true
    (List.mem_assoc "lint" rep.Pdat.Pipeline.stage_seconds);
  check "audit stage timed" true
    (List.mem_assoc "audit" rep.Pdat.Pipeline.stage_seconds);
  (* the static gate must not change the reduction *)
  let r0 = Pdat.Pipeline.run ~design:d ~env:(en0_env d) () in
  check "area/gate deltas unchanged by the static gate" true
    (rep.Pdat.Pipeline.after = r0.Pdat.Pipeline.report.Pdat.Pipeline.after)

let test_pipeline_rejects_malformed_input () =
  (* satellite: a cell referencing a nonexistent net surfaces as a
     located Rejected from the always-on well-formedness precheck —
     never a bare Invalid_argument from deep inside a stage — even
     with the lint gate Off *)
  let d = guard_design () in
  let en = Option.get (D.find_input d "en") in
  let bad = D.substitute d (fun n -> if n = en then D.num_nets d + 41 else n) in
  match Pdat.Pipeline.run ~design:bad ~env:(en0_env bad) () with
  | _ -> Alcotest.fail "pipeline accepted a design with out-of-range nets"
  | exception Pdat.Pipeline.Rejected ds ->
      check "diagnostics present" true (ds <> []);
      check "every finding is net-out-of-range" true
        (List.for_all
           (fun x -> x.Analysis.Diag.rule = "net-out-of-range")
           ds);
      check "findings are located at cells" true
        (List.exists
           (fun x ->
             match x.Analysis.Diag.loc with
             | Analysis.Diag.Cell _ -> true
             | _ -> false)
           ds)

let test_pipeline_fallback_reports_reason () =
  let d = guard_design () in
  let r =
    Pdat.Pipeline.run ~validate:true
      ~inject:{ Pdat.Faults.kind = Pdat.Faults.Perturb_cell; seed = 7 }
      ~design:d ~env:(en0_env d) ()
  in
  let rep = r.Pdat.Pipeline.report in
  check "fault applied" true (rep.Pdat.Pipeline.injected_fault <> None);
  check "not validated" false rep.Pdat.Pipeline.validated;
  (match rep.Pdat.Pipeline.fallback_reason with
  | Some reason -> check "reason mentions divergence" true
      (String.length reason > 0)
  | None -> Alcotest.fail "expected a fallback reason");
  (* the fallback result is the baseline, not the corrupted reduction *)
  check "fallback matches baseline stats" true
    (rep.Pdat.Pipeline.after = rep.Pdat.Pipeline.before)

let test_pipeline_budget_reclaim () =
  (* regression: the proof stage must inherit the budget that mining and
     refinement did not use, instead of being capped at a hard fraction
     of the total.  On this tiny design mine+refine take well under a
     second, so with validation off virtually the whole 40s budget must
     reach the prover (the old hard-coded checkpoints capped it at 85%,
     minus everything the earlier stages were *allotted* but never
     used). *)
  let d = guard_design () in
  let budget = 40. in
  let r = Pdat.Pipeline.run ~time_budget:budget ~design:d ~env:(en0_env d) () in
  let rep = r.Pdat.Pipeline.report in
  check "proof stage reclaims unused mining/refinement budget" true
    (rep.Pdat.Pipeline.proof_budget_s > 0.9 *. budget);
  check "pipeline still reduces under a generous budget" true
    (rep.Pdat.Pipeline.proved > 0);
  (* with validation on, the validator's share is genuinely reserved *)
  let rv =
    Pdat.Pipeline.run ~validate:true ~time_budget:budget ~design:d
      ~env:(en0_env d) ()
  in
  check "validator share reserved when validation is on" true
    (rv.Pdat.Pipeline.report.Pdat.Pipeline.proof_budget_s < 0.9 *. budget);
  (* no budget at all: the allocator stays out of the way *)
  let r0 = Pdat.Pipeline.run ~design:d ~env:(en0_env d) () in
  check "no budget, no allocation" true
    (r0.Pdat.Pipeline.report.Pdat.Pipeline.proof_budget_s = 0.)

let test_pipeline_fault_matrix_parallel () =
  (* the validator must catch every fault class when the proof stage
     runs sharded across forked workers too *)
  let d = guard_design () in
  let entries = Pdat.Pipeline.self_test ~jobs:4 ~design:d ~env:(en0_env d) () in
  check_int "every fault class exercised" (List.length Pdat.Faults.all)
    (List.length entries);
  List.iter
    (fun e ->
      let nm = Pdat.Faults.name e.Pdat.Pipeline.fault in
      check (nm ^ " found an injection site (jobs=4)") true
        (e.Pdat.Pipeline.injected <> None);
      check (nm ^ " caught by the validator (jobs=4)") true
        e.Pdat.Pipeline.caught;
      let expect_static = e.Pdat.Pipeline.fault <> Pdat.Faults.Perturb_cell in
      check (nm ^ " static catch as expected (jobs=4)") expect_static
        e.Pdat.Pipeline.caught_statically)
    entries

let test_validate_divergence_fields_parallel () =
  (* a faulted run under the parallel prover: the divergence report must
     carry the reproduction coordinates (run, cycle, lane, seed) *)
  let d = guard_design () in
  let r =
    Pdat.Pipeline.run ~jobs:2 ~validate:true
      ~inject:{ Pdat.Faults.kind = Pdat.Faults.Perturb_cell; seed = 7 }
      ~design:d ~env:(en0_env d) ()
  in
  let rep = r.Pdat.Pipeline.report in
  check "fault applied" true (rep.Pdat.Pipeline.injected_fault <> None);
  check "not validated" false rep.Pdat.Pipeline.validated;
  match rep.Pdat.Pipeline.validation with
  | Some (Pdat.Validate.Divergent dv) ->
      check "run indexed from 1" true (dv.Pdat.Validate.run >= 1);
      check "cycle indexed from 1" true (dv.Pdat.Validate.cycle >= 1);
      check "lane in range" true
        (dv.Pdat.Validate.lane >= 0 && dv.Pdat.Validate.lane < 64);
      check "divergent output named" true
        (String.length dv.Pdat.Validate.output > 0);
      check "stimulus seed reported for reproduction" true
        (dv.Pdat.Validate.seed <> 0)
  | _ -> Alcotest.fail "expected a recorded divergence"

let test_pipeline_time_budget_degrades () =
  let d = guard_design () in
  (* a budget so small every stage deadline is already expired: the
     pipeline must still terminate and return a working design *)
  let r =
    Pdat.Pipeline.run ~time_budget:1e-6 ~design:d ~env:(en0_env d) ()
  in
  let rep = r.Pdat.Pipeline.report in
  check_int "nothing mined in time" 0 rep.Pdat.Pipeline.mined;
  check_int "nothing proved" 0 rep.Pdat.Pipeline.proved;
  check "result is a valid netlist" true
    (D.validate r.Pdat.Pipeline.reduced = Ok ());
  check "no reduction claimed" true
    (rep.Pdat.Pipeline.after = rep.Pdat.Pipeline.before)

(* --- end-to-end on the Ibex-class core ---------------------------------- *)

(* Run a program on a design through the testbench and collect the
   values it stores to memory. *)
let run_and_dump design program ~cycles ~addrs =
  let tb = Cores.Testbench.create design ~program () in
  Cores.Testbench.run tb ~cycles;
  List.map (fun a -> Cores.Testbench.read_mem32 tb a) addrs

let test_reduced_ibex_runs_subset_program () =
  let t = Cores.Ibex_like.build () in
  let d = t.Cores.Ibex_like.design in
  let env =
    Pdat.Environment.riscv_cutpoint d ~nets:(Cores.Ibex_like.cutpoint_nets t)
      Isa.Subset.rv32i
  in
  (* the env constrains cutpoints deep inside the model, so give the
     differential validator port-level stimuli biased toward legal
     rv32i words instead of its unconstrained default *)
  let validate_stimulus =
    (Pdat.Environment.riscv_port d ~port:"instr_rdata" Isa.Subset.rv32i)
      .Pdat.Environment.stimulus
  in
  let result =
    Pdat.Pipeline.run
      ~rsim:{ Engine.Rsim.default with Engine.Rsim.cycles = 384; runs = 2 }
      ~validate:true ~validate_stimulus ~design:d ~env ()
  in
  check "meaningful reduction" true
    (Pdat.Pipeline.gate_delta_pct result.Pdat.Pipeline.report > 10.0);
  check "reduction validated" true
    result.Pdat.Pipeline.report.Pdat.Pipeline.validated;
  check "no fallback" true
    (result.Pdat.Pipeline.report.Pdat.Pipeline.fallback_reason = None);
  (* an rv32i program: compute and store results *)
  let p = Isa.Asm.create () in
  Isa.Asm.li p ~rd:1 1000;
  Isa.Asm.li p ~rd:2 0;
  Isa.Asm.li p ~rd:3 5;
  Isa.Asm.label p "loop";
  Isa.Asm.add p ~rd:2 ~rs1:2 ~rs2:1;
  Isa.Asm.addi p ~rd:1 ~rs1:1 (-100);
  Isa.Asm.addi p ~rd:3 ~rs1:3 (-1);
  Isa.Asm.bne p ~rs1:3 ~rs2:0 "loop";
  Isa.Asm.li p ~rd:5 0x80;
  Isa.Asm.sw p ~rs2:2 ~rs1:5 0;
  Isa.Asm.sw p ~rs2:1 ~rs1:5 4;
  Isa.Asm.xor p ~rd:6 ~rs1:2 ~rs2:1;
  Isa.Asm.sw p ~rs2:6 ~rs1:5 8;
  Isa.Asm.label p "end";
  Isa.Asm.j p "end";
  let program = Isa.Asm.assemble p in
  let addrs = [ 0x80; 0x84; 0x88 ] in
  let base = run_and_dump d program ~cycles:200 ~addrs in
  let reduced =
    run_and_dump result.Pdat.Pipeline.reduced program ~cycles:200 ~addrs
  in
  check "identical architectural results" true (base = reduced);
  check "program actually computed" true (List.nth base 0 = 4000)

let test_reduced_cm0_validates () =
  let t = Cores.Cm0_like.build () in
  let d = t.Cores.Cm0_like.design in
  let env =
    Pdat.Environment.arm_port d ~port:"instr_rdata"
      Isa.Subset.armv6m_interesting
  in
  let result =
    Pdat.Pipeline.run
      ~rsim:{ Engine.Rsim.default with Engine.Rsim.cycles = 400; runs = 2 }
      ~validate:true ~design:d ~env ()
  in
  let rep = result.Pdat.Pipeline.report in
  check "proved something" true (rep.Pdat.Pipeline.proved > 0);
  check "reduction validated" true rep.Pdat.Pipeline.validated;
  check "no fallback" true (rep.Pdat.Pipeline.fallback_reason = None)

let test_catalog () =
  check "catalog has the three property classes" true
    (List.length Pdat.Property_library.catalog = 3);
  List.iter
    (fun pc ->
      check "documented" true (String.length pc.Pdat.Property_library.description > 0);
      check "has cells" true (pc.Pdat.Property_library.applies_to <> []))
    Pdat.Property_library.catalog

let () =
  Alcotest.run "pdat"
    [
      ( "rewire",
        [
          Alcotest.test_case "const" `Quick test_rewire_const;
          Alcotest.test_case "implies and" `Quick test_rewire_implies_and;
          Alcotest.test_case "implies or" `Quick test_rewire_implies_or;
          Alcotest.test_case "implies nand/nor" `Quick test_rewire_implies_nand_nor;
          Alcotest.test_case "chains" `Quick test_rewire_chain;
          Alcotest.test_case "empty proof set is identity" `Quick
            test_rewire_empty_is_identity;
          Alcotest.test_case "unknown cell rejected" `Quick
            test_rewire_unknown_cell;
        ] );
      ( "environment",
        [
          Alcotest.test_case "stimulus satisfies monitor" `Quick
            test_stimulus_satisfies_monitor;
          QCheck_alcotest.to_alcotest qcheck_monitor_matches_reference;
        ] );
      ( "validate",
        [
          Alcotest.test_case "accepts an exact copy" `Quick
            test_validate_accepts_copy;
          Alcotest.test_case "detects divergence" `Quick
            test_validate_detects_divergence;
          Alcotest.test_case "unsupported interface" `Quick
            test_validate_unsupported_interface;
        ] );
      ( "guard",
        [
          Alcotest.test_case "unfaulted run validates" `Quick
            test_pipeline_validates_unfaulted;
          Alcotest.test_case "fault matrix all caught" `Quick
            test_pipeline_fault_matrix;
          Alcotest.test_case "fault matrix all caught at jobs=4" `Quick
            test_pipeline_fault_matrix_parallel;
          Alcotest.test_case "divergence coordinates under jobs=2" `Quick
            test_validate_divergence_fields_parallel;
          Alcotest.test_case "strict lint gate on a clean run" `Quick
            test_pipeline_strict_lint_clean_run;
          Alcotest.test_case "malformed input rejected with location" `Quick
            test_pipeline_rejects_malformed_input;
          Alcotest.test_case "fallback reports reason" `Quick
            test_pipeline_fallback_reports_reason;
          Alcotest.test_case "time budget degrades gracefully" `Quick
            test_pipeline_time_budget_degrades;
          Alcotest.test_case "proof stage reclaims stage budget" `Quick
            test_pipeline_budget_reclaim;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "small design" `Quick test_pipeline_small_design;
          Alcotest.test_case "reduced ibex equivalence" `Slow
            test_reduced_ibex_runs_subset_program;
          Alcotest.test_case "reduced cm0 validates" `Slow
            test_reduced_cm0_validates;
        ] );
      ("property library", [ Alcotest.test_case "catalog" `Quick test_catalog ]);
    ]
