(* Tests for the static-analysis subsystem: the lint rule set, the
   rewire certificate, and the certificate audit.

   The seeded-fault section is the acceptance test of the lint gate:
   for every structural fault class [Faults.seed_structural] can
   inject, [Lint.run] must report exactly the promised rule id at the
   promised net/cell, and [Pipeline.run ~lint:Strict] must refuse the
   design with a located [Rejected] — never a bare exception. *)

module D = Netlist.Design
module C = Netlist.Cell
module Diag = Analysis.Diag
module Lint = Analysis.Lint
module Cert = Analysis.Certificate
module Audit = Analysis.Audit

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rules ds = List.map (fun x -> x.Diag.rule) ds
let with_rule r ds = List.filter (fun x -> x.Diag.rule = r) ds
let has_rule r ds = with_rule r ds <> []

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- diagnostics ------------------------------------------------------ *)

let test_diag_rendering () =
  let d =
    Diag.make ~rule:"multi-driven" ~severity:Diag.Error
      ~loc:(Diag.Net { net = 7; name = "acc_q" })
      "2 drivers: cell 3 (AND2_X1), primary input"
  in
  Alcotest.(check string) "net diagnostic"
    "error[multi-driven]: net 7 (acc_q): 2 drivers: cell 3 (AND2_X1), \
     primary input"
    (Diag.to_string d);
  let w =
    Diag.make ~rule:"bus-mismatch" ~severity:Diag.Warning
      ~loc:(Diag.Port "data") "missing [1]"
  in
  check "port diagnostic names the port" true
    (contains ~sub:"warning[bus-mismatch]: port \"data\"" (Diag.to_string w));
  check "severity order" true
    (Diag.compare_severity Diag.Error Diag.Warning > 0);
  let ds =
    [ d; w; Diag.make ~rule:"x" ~severity:Diag.Info ~loc:Diag.Whole_design "i" ]
  in
  let e, wn, i = Diag.count ds in
  check "count splits by severity" true (e = 1 && wn = 1 && i = 1);
  check_int "errors subset" 1 (List.length (Diag.errors ds))

let test_diag_of_dimacs_warning () =
  let d =
    Diag.of_dimacs_warning
      { Sat.Dimacs.line = 4; token = "3"; reason = "duplicate literal" }
  in
  check "rule" true (d.Diag.rule = "dimacs-duplicate-literal");
  check "severity" true (d.Diag.severity = Diag.Warning);
  (match d.Diag.loc with
  | Diag.Clause { line } -> check_int "line" 4 line
  | _ -> Alcotest.fail "expected a clause location");
  check "message carries the token" true (contains ~sub:"3" d.Diag.message)

(* --- lint: clean and degenerate designs ------------------------------- *)

(* request/acknowledge latch, same shape as examples/netlists/handshake.v *)
let clean_design () =
  let d = D.create "handshake" in
  let req = D.add_input d "req" in
  let clr = D.add_input d "clr" in
  let nclr = D.add_cell d C.Inv [| clr |] in
  let q = D.new_net d in
  let set = D.add_cell d C.And2 [| req; nclr |] in
  let hold = D.add_cell d C.And2 [| q; nclr |] in
  let data = D.add_cell d C.Or2 [| set; hold |] in
  D.add_cell_out d C.Dff [| data |] ~out:q;
  let ack = D.add_cell d C.Buf [| q |] in
  D.add_output d "ack" ack;
  D.add_output d "busy" q;
  d

let test_lint_clean_design () =
  check "handshake latch is lint-clean" true (Lint.run (clean_design ()) = [])

let test_lint_degenerate_no_crash () =
  (* empty design: only the two rail ties *)
  check "empty design is clean" true (Lint.run (D.create "empty") = []);
  (* inputs only, nothing driven, nothing read *)
  let d = D.create "inputs_only" in
  ignore (D.add_input d "a");
  ignore (D.add_input d "b");
  check "inputs-only design is clean" true (Lint.run d = []);
  (* a lone self-loop register: warned about, no Error, no crash *)
  let d = D.create "selfloop" in
  let q = D.new_net d in
  D.add_cell_out d C.Dff [| q |] ~out:q;
  D.add_output d "q" q;
  let ds = Lint.run d in
  check "self-loop register only warns" true (Diag.errors ds = []);
  check "const-feedback-reg fires" true (has_rule "const-feedback-reg" ds)

(* --- lint: one rule at a time ----------------------------------------- *)

let test_lint_multi_driven () =
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let x = D.add_cell d C.Inv [| a |] in
  D.add_output d "x" x;
  D.unsafe_add_cell_out d C.Buf [| a |] ~out:x;
  let hits = with_rule "multi-driven" (Lint.run d) in
  check_int "one finding" 1 (List.length hits);
  let hit = List.hd hits in
  check "severity Error" true (hit.Diag.severity = Diag.Error);
  (match hit.Diag.loc with
  | Diag.Net { net; _ } -> check_int "located at the doubly-driven net" x net
  | _ -> Alcotest.fail "expected a net location");
  check "message counts both drivers" true
    (contains ~sub:"2 drivers" hit.Diag.message)

let test_lint_undriven_input () =
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let floating = D.new_net d in
  let x = D.add_cell d C.And2 [| a; floating |] in
  D.add_output d "x" x;
  let hits = with_rule "undriven-input" (Lint.run d) in
  check_int "one finding" 1 (List.length hits);
  let hit = List.hd hits in
  check "severity Error" true (hit.Diag.severity = Diag.Error);
  (match hit.Diag.loc with
  | Diag.Cell { kind; _ } ->
      check "located at the consuming AND2" true (kind = C.name C.And2)
  | _ -> Alcotest.fail "expected a cell location");
  check "message names the pin" true (contains ~sub:"A2" hit.Diag.message)

let test_lint_undriven_output () =
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let x = D.add_cell d C.Inv [| a |] in
  D.add_output d "x" x;
  D.add_output d "y" (D.new_net d);
  let hits = with_rule "undriven-output" (Lint.run d) in
  check_int "one finding" 1 (List.length hits);
  match (List.hd hits).Diag.loc with
  | Diag.Port nm -> check "located at the port" true (nm = "y")
  | _ -> Alcotest.fail "expected a port location"

let test_lint_comb_cycle () =
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let loop_net = D.new_net d in
  let x = D.add_cell d C.And2 [| a; loop_net |] in
  D.add_cell_out d C.Inv [| x |] ~out:loop_net;
  D.add_output d "x" x;
  let ds = Lint.run d in
  let hits = with_rule "comb-cycle" ds in
  check "cycle reported" true (hits <> []);
  let hit = List.hd hits in
  check "severity Error" true (hit.Diag.severity = Diag.Error);
  (match hit.Diag.loc with
  | Diag.Cell _ -> ()
  | _ -> Alcotest.fail "expected a cell location");
  check "witness path rendered" true (contains ~sub:"->" hit.Diag.message);
  (* the guarded ternary rule must not blow up on the cyclic design *)
  check "no ternary findings on a cyclic design" true
    (not (has_rule "ternary-const" ds))

let test_lint_unreachable_cell () =
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let live = D.add_cell d C.Inv [| a |] in
  let dead = D.add_cell d C.Inv [| live |] in
  ignore (D.add_cell d C.Buf [| dead |]);
  D.add_output d "x" live;
  let hits = with_rule "unreachable-cell" (Lint.run d) in
  check_int "both dead cells flagged, ties excused" 2 (List.length hits);
  List.iter
    (fun h -> check "warning severity" true (h.Diag.severity = Diag.Warning))
    hits

let test_lint_const_feedback_reg () =
  let d = D.create "t" in
  let q = D.new_net d in
  D.add_cell_out d C.Dff [| q |] ~out:q;
  let r = D.add_dff d ~d:D.net_true () in
  let y = D.add_cell d C.And2 [| q; r |] in
  D.add_output d "y" y;
  let hits = with_rule "const-feedback-reg" (Lint.run d) in
  check_int "self-loop and rail-tied register both flagged" 2
    (List.length hits);
  check "self-loop message mentions the reset value" true
    (List.exists (fun h -> contains ~sub:"reset value" h.Diag.message) hits);
  check "rail-tie message mentions the rail" true
    (List.exists (fun h -> contains ~sub:"rail" h.Diag.message) hits)

let test_lint_bus_groups () =
  let d = D.create "t" in
  let g0 = D.add_input d "g[0]" in
  let g2 = D.add_input d "g[2]" in
  ignore (D.add_input d "b");
  ignore (D.add_input d "b[0]");
  let x = D.add_cell d C.And2 [| g0; g2 |] in
  D.add_output d "o[3]" x;
  D.add_output d "o[3]" x;
  let hits = with_rule "bus-mismatch" (Lint.run d) in
  check "gap reported" true
    (List.exists
       (fun h ->
         (match h.Diag.loc with Diag.Port "g" -> true | _ -> false)
         && contains ~sub:"missing [1]" h.Diag.message)
       hits);
  check "scalar clash reported" true
    (List.exists
       (fun h ->
         (match h.Diag.loc with Diag.Port "b" -> true | _ -> false)
         && contains ~sub:"scalar" h.Diag.message)
       hits);
  check "duplicate bit reported" true
    (List.exists
       (fun h ->
         (match h.Diag.loc with Diag.Port "o" -> true | _ -> false)
         && contains ~sub:"[3] twice" h.Diag.message)
       hits)

let test_lint_ternary_consts () =
  (* a register fed by the 0-rail is forced constant, and so is the
     AND gate that reads it; both are dead candidates the miner can
     skip *)
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let r = D.add_dff d ~d:D.net_false () in
  let y = D.add_cell d C.And2 [| a; r |] in
  D.add_output d "y" y;
  let ds = Lint.run d in
  let infos = with_rule "ternary-const" ds in
  check "forced-constant nets reported" true (List.length infos >= 2);
  List.iter
    (fun h ->
      check "info severity" true (h.Diag.severity = Diag.Info);
      match h.Diag.loc with
      | Diag.Net { net; _ } ->
          check "only r and y are forced" true (net = r || net = y)
      | _ -> Alcotest.fail "expected a net location")
    infos

let test_well_formed_out_of_range () =
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let x = D.add_cell d C.Inv [| a |] in
  D.add_output d "x" x;
  (* [substitute] rewrites reads without range validation — exactly the
     malformed shape [well_formed] exists to refuse *)
  let bad = D.substitute d (fun n -> if n = a then 9999 else n) in
  let ds = Lint.run bad in
  check "at least the Inv read is flagged" true (ds <> []);
  check "only well-formedness findings, later rules never ran" true
    (List.for_all (fun r -> r = "net-out-of-range") (rules ds));
  List.iter
    (fun h -> check "error severity" true (h.Diag.severity = Diag.Error))
    ds

(* --- seeded structural faults: the lint gate acceptance test ----------- *)

let seed_target () =
  let d = D.create "seedme" in
  let a = D.add_input d "a" in
  let b = D.add_input d "b" in
  let x = D.add_cell d C.And2 [| a; b |] in
  let y = D.add_cell d C.Or2 [| x; a |] in
  let q = D.add_dff d ~d:y () in
  D.add_output d "q" q;
  d

(* For multi-driven the expected coordinate is the net; for comb-cycle
   and undriven-input it is the consuming cell (the floating net of an
   undriven input has no name to point at). *)
let location_matches (s : Pdat.Faults.seeded) (h : Diag.t) =
  match (s.Pdat.Faults.cell, s.Pdat.Faults.net, h.Diag.loc) with
  | Some c, _, Diag.Cell { cell; _ } -> cell = c
  | None, Some n, Diag.Net { net; _ } -> net = n
  | _ -> false

let test_seeded_faults_linted () =
  let d = seed_target () in
  List.iter
    (fun which ->
      let name = Pdat.Faults.structural_name which in
      List.iter
        (fun seed ->
          match Pdat.Faults.seed_structural which ~seed d with
          | None -> Alcotest.failf "%s: no eligible site on the target" name
          | Some s ->
              check (name ^ ": the input design is untouched") true
                (Lint.run d = []);
              let errs = Diag.errors (Lint.run s.Pdat.Faults.seeded) in
              let hits = with_rule s.Pdat.Faults.rule errs in
              check
                (Printf.sprintf "%s (seed %d): promised rule fires" name seed)
                true (hits <> []);
              check
                (Printf.sprintf "%s (seed %d): located as promised" name seed)
                true
                (List.exists (location_matches s) hits))
        [ 1; 2; 3; 7 ])
    Pdat.Faults.structural_all

let test_seeded_faults_rejected_by_pipeline () =
  let d = seed_target () in
  List.iter
    (fun which ->
      let name = Pdat.Faults.structural_name which in
      match Pdat.Faults.seed_structural which ~seed:3 d with
      | None -> Alcotest.failf "%s: no eligible site" name
      | Some s -> (
          let bad = s.Pdat.Faults.seeded in
          match
            Pdat.Pipeline.run ~lint:Lint.Strict ~design:bad
              ~env:(Pdat.Environment.unconstrained bad) ()
          with
          | _ ->
              Alcotest.failf "%s: strict pipeline accepted a seeded fault" name
          | exception Pdat.Pipeline.Rejected ds ->
              check (name ^ ": rejection cites the seeded rule") true
                (has_rule s.Pdat.Faults.rule ds);
              check (name ^ ": every rejection diagnostic is an error") true
                (Diag.errors ds = ds)))
    Pdat.Faults.structural_all

(* --- certificates and the audit ---------------------------------------- *)

(* a AND !a is provably 0, and so is the register it feeds *)
let const_design () =
  let d = D.create "cd" in
  let a = D.add_input d "a" in
  let na = D.add_cell d C.Inv [| a |] in
  let z = D.add_cell d C.And2 [| a; na |] in
  let q = D.add_dff d ~d:z () in
  D.add_output d "q" q;
  (d, z, q)

let audit ?pre_lint ~original ~rewired ~proved cert =
  Audit.run ?pre_lint ~original ~rewired ~proved ~certificate:cert ()

let test_certificate_const_edits () =
  let d, z, q = const_design () in
  let proved =
    [ Engine.Candidate.Const (z, false); Engine.Candidate.Const (q, false) ]
  in
  let rewired, cert = Pdat.Rewire.apply_certified d proved in
  check_int "one edit per redirected net" 2 (Cert.length cert);
  List.iter
    (fun (e : Cert.edit) ->
      check "edit cites a proved invariant" true
        (List.exists (Engine.Candidate.equal e.Cert.justification) proved);
      check "constant edits tie to the 0 rail" true
        (e.Cert.target = D.net_false && e.Cert.via = Cert.Direct))
    cert.Cert.edits;
  check "audit accepts the honest certificate" true
    (audit ~original:d ~rewired ~proved cert = []);
  (* [apply] is literally the certified rewiring minus the certificate *)
  let plain = Pdat.Rewire.apply d proved in
  check "apply = fst apply_certified (audited replay agrees)" true
    (audit ~original:d ~rewired:plain ~proved cert = [])

let test_certificate_implies_direct () =
  let d = D.create "imp" in
  let a = D.add_input d "a" in
  let b = D.add_cell d C.Buf [| a |] in
  let y = D.add_cell d C.And2 [| a; b |] in
  let q = D.add_dff d ~d:y () in
  D.add_output d "q" q;
  let cell = Option.get (D.driver d y) in
  let proved = [ Engine.Candidate.Implies { cell; a; b } ] in
  let rewired, cert = Pdat.Rewire.apply_certified d proved in
  check_int "one edit" 1 (Cert.length cert);
  let e = List.hd cert.Cert.edits in
  check "AND2 collapses onto the dominating input" true
    (e.Cert.net = y && e.Cert.target = a && e.Cert.via = Cert.Direct);
  check_int "no cells added for a direct collapse" (D.num_cells d)
    (D.num_cells rewired);
  check "audit accepts" true (audit ~original:d ~rewired ~proved cert = [])

let test_certificate_implies_fresh_inverter () =
  let d = D.create "nimp" in
  let a = D.add_input d "a" in
  let b = D.add_cell d C.Buf [| a |] in
  let y = D.add_cell d C.Nand2 [| a; b |] in
  let q = D.add_dff d ~d:y () in
  D.add_output d "q" q;
  let cell = Option.get (D.driver d y) in
  let proved = [ Engine.Candidate.Implies { cell; a; b } ] in
  let rewired, cert = Pdat.Rewire.apply_certified d proved in
  check_int "one edit" 1 (Cert.length cert);
  check_int "the fresh inverter was appended" (D.num_cells d + 1)
    (D.num_cells rewired);
  (match (List.hd cert.Cert.edits).Cert.via with
  | Cert.Fresh_inv { cell = ic; out; input } ->
      check "inverter recorded with its pins" true
        (ic = D.num_cells d
        && input = a
        && out = (List.hd cert.Cert.edits).Cert.target)
  | Cert.Direct -> Alcotest.fail "expected a fresh-inverter edit");
  check "audit accepts" true (audit ~original:d ~rewired ~proved cert = [])

let test_audit_rejects_corrupted_justification () =
  let d, z, q = const_design () in
  let proved =
    [ Engine.Candidate.Const (z, false); Engine.Candidate.Const (q, false) ]
  in
  let rewired, cert = Pdat.Rewire.apply_certified d proved in
  (* the acceptance scenario: flip one cited invariant id — the edit
     now rests on an invariant nobody proved *)
  let corrupt =
    {
      Cert.edits =
        List.map
          (fun (e : Cert.edit) ->
            if e.Cert.net = z then
              { e with Cert.justification = Engine.Candidate.Const (z, true) }
            else e)
          cert.Cert.edits;
    }
  in
  let ds = audit ~original:d ~rewired ~proved corrupt in
  check "corrupted certificate rejected" true (ds <> []);
  check "rejection rule is cert-unjustified" true
    (has_rule "cert-unjustified" ds);
  List.iter
    (fun h -> check "errors only" true (h.Diag.severity = Diag.Error))
    ds

let test_audit_rejects_forged_edit () =
  let d, z, q = const_design () in
  let proved = [ Engine.Candidate.Const (z, false) ] in
  let rewired, cert = Pdat.Rewire.apply_certified d proved in
  (* an extra edit citing a real invariant that does not justify it:
     Const z cannot justify touching q *)
  let forged =
    {
      Cert.edits =
        cert.Cert.edits
        @ [
            {
              Cert.net = q;
              target = D.net_false;
              via = Cert.Direct;
              justification = Engine.Candidate.Const (z, false);
            };
          ];
    }
  in
  let ds = audit ~original:d ~rewired ~proved forged in
  check "forged edit rejected" true (has_rule "cert-mismatch" ds)

let test_audit_rejects_dropped_edit () =
  let d, z, q = const_design () in
  let proved =
    [ Engine.Candidate.Const (z, false); Engine.Candidate.Const (q, false) ]
  in
  let rewired, cert = Pdat.Rewire.apply_certified d proved in
  ignore q;
  let dropped = { Cert.edits = [ List.hd cert.Cert.edits ] } in
  let ds = audit ~original:d ~rewired ~proved dropped in
  check "a certificate that explains less than the diff is rejected" true
    (has_rule "cert-netlist-mismatch" ds)

let test_audit_rejects_miswired_netlist () =
  let d, z, _q = const_design () in
  let proved = [ Engine.Candidate.Const (z, false) ] in
  let rewired, cert = Pdat.Rewire.apply_certified d proved in
  check "honest certificate accepted first" true
    (audit ~original:d ~rewired ~proved cert = []);
  (* tie the register's rewired data pin to the opposite rail behind
     the certificate's back *)
  let bad = D.copy rewired in
  let dff = ref (-1) in
  D.iter_cells bad (fun i c -> if c.D.kind = C.Dff then dff := i);
  check "found the register" true (!dff >= 0);
  let c = D.cell bad !dff in
  check "its data pin was rewired to the 0 rail" true
    (c.D.ins.(0) = D.net_false);
  D.replace_cell bad !dff ~init:c.D.init C.Dff [| D.net_true |];
  let ds = audit ~original:d ~rewired:bad ~proved cert in
  check "uncertified netlist edit rejected" true
    (has_rule "cert-netlist-mismatch" ds)

let test_audit_empty_certificate () =
  let d, _, _ = const_design () in
  check "nothing proved, nothing rewired: empty certificate accepted" true
    (audit ~original:d ~rewired:(D.copy d) ~proved:[] Cert.empty = []);
  check_int "empty certificate has no edits" 0 (Cert.length Cert.empty)

let () =
  Alcotest.run "analysis"
    [
      ( "diag",
        [
          Alcotest.test_case "rendering" `Quick test_diag_rendering;
          Alcotest.test_case "dimacs warning lift" `Quick
            test_diag_of_dimacs_warning;
        ] );
      ( "lint",
        [
          Alcotest.test_case "clean design" `Quick test_lint_clean_design;
          Alcotest.test_case "degenerate designs never crash" `Quick
            test_lint_degenerate_no_crash;
          Alcotest.test_case "multi-driven" `Quick test_lint_multi_driven;
          Alcotest.test_case "undriven input" `Quick test_lint_undriven_input;
          Alcotest.test_case "undriven output" `Quick test_lint_undriven_output;
          Alcotest.test_case "combinational cycle" `Quick test_lint_comb_cycle;
          Alcotest.test_case "unreachable cells" `Quick
            test_lint_unreachable_cell;
          Alcotest.test_case "constant-feedback registers" `Quick
            test_lint_const_feedback_reg;
          Alcotest.test_case "bus groupings" `Quick test_lint_bus_groups;
          Alcotest.test_case "ternary constants" `Quick
            test_lint_ternary_consts;
          Alcotest.test_case "net-out-of-range stops the run" `Quick
            test_well_formed_out_of_range;
        ] );
      ( "seeded faults",
        [
          Alcotest.test_case "linter reports rule and location" `Quick
            test_seeded_faults_linted;
          Alcotest.test_case "strict pipeline rejects every class" `Quick
            test_seeded_faults_rejected_by_pipeline;
        ] );
      ( "audit",
        [
          Alcotest.test_case "constant edits certified" `Quick
            test_certificate_const_edits;
          Alcotest.test_case "direct implication collapse" `Quick
            test_certificate_implies_direct;
          Alcotest.test_case "inverting collapse records the inverter" `Quick
            test_certificate_implies_fresh_inverter;
          Alcotest.test_case "corrupted justification rejected" `Quick
            test_audit_rejects_corrupted_justification;
          Alcotest.test_case "forged edit rejected" `Quick
            test_audit_rejects_forged_edit;
          Alcotest.test_case "dropped edit rejected" `Quick
            test_audit_rejects_dropped_edit;
          Alcotest.test_case "miswired netlist rejected" `Quick
            test_audit_rejects_miswired_netlist;
          Alcotest.test_case "empty certificate" `Quick
            test_audit_empty_certificate;
        ] );
    ]
