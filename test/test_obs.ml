(* Tests for the observability layer (lib/obs) and the prover/pipeline
   fixes it exists to catch: worker counts clamped to online cores,
   out-of-order worker completion under the select-based pipe drain,
   per-worker failure attribution, and a parseable --trace file whose
   spans cover every pipeline stage. *)

module D = Netlist.Design
module C = Netlist.Cell

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_env_var name value f =
  Unix.putenv name value;
  Fun.protect ~finally:(fun () -> Unix.putenv name "") f

(* --- a minimal JSON reader (no external deps) --------------------------- *)
(* Just enough to validate what Obs.write_chrome emits; rejects anything
   structurally malformed, which is the point of the golden test. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal word v =
      String.iter expect word;
      v
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some '"' -> advance (); Buffer.add_char b '"'; go ()
            | Some '\\' -> advance (); Buffer.add_char b '\\'; go ()
            | Some '/' -> advance (); Buffer.add_char b '/'; go ()
            | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
            | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
            | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
            | Some 'b' -> advance (); Buffer.add_char b '\b'; go ()
            | Some 'f' -> advance (); Buffer.add_char b '\012'; go ()
            | Some 'u' ->
                advance ();
                for _ = 1 to 4 do
                  match peek () with
                  | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                  | _ -> fail "bad \\u escape"
                done;
                Buffer.add_char b '?';
                go ()
            | _ -> fail "bad escape")
        | Some c ->
            advance ();
            Buffer.add_char b c;
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin advance (); Obj [] end
          else begin
            let rec members acc =
              skip_ws ();
              let key = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); members ((key, v) :: acc)
              | Some '}' -> advance (); List.rev ((key, v) :: acc)
              | _ -> fail "expected , or } in object"
            in
            Obj (members [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin advance (); List [] end
          else begin
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' -> advance (); elems (v :: acc)
              | Some ']' -> advance (); List.rev (v :: acc)
              | _ -> fail "expected , or ] in array"
            in
            List (elems [])
          end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
      | None -> fail "unexpected end of input"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None

  let str_exn = function Str s -> s | _ -> raise (Bad "expected string")
  let num_exn = function Num f -> f | _ -> raise (Bad "expected number")
end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_temp_file suffix f =
  let path = Filename.temp_file "pdat_obs" suffix in
  Fun.protect ~finally:(fun () -> try Sys.remove path with _ -> ()) (fun () -> f path)

(* --- clock -------------------------------------------------------------- *)

let test_clock () =
  let a = Obs.Clock.now_s () in
  check "clock is non-negative" true (a >= 0.);
  let worst = ref a in
  for _ = 1 to 10_000 do
    let t = Obs.Clock.now_s () in
    if t < !worst then Alcotest.failf "clock went backwards: %f -> %f" !worst t;
    worst := t
  done;
  (* real time must actually accumulate *)
  Unix.sleepf 0.01;
  check "clock advances across a sleep" true (Obs.Clock.now_s () > a)

(* --- counters ------------------------------------------------------------ *)

let test_counters () =
  Obs.reset ();
  Obs.add "t.x" 1.5;
  Obs.add_int "t.x" 2;
  Obs.add_int "t.y" 7;
  let cs = Obs.counters () in
  check "x accumulated" true (List.assoc "t.x" cs = 3.5);
  check "y accumulated" true (List.assoc "t.y" cs = 7.);
  let since = cs in
  Obs.add_int "t.y" 1;
  Obs.add_int "t.z" 4;
  let delta = Obs.counters_delta ~since in
  check "unmoved counter absent from delta" true
    (List.assoc_opt "t.x" delta = None);
  check "moved counter delta" true (List.assoc "t.y" delta = 1.);
  check "new counter delta" true (List.assoc "t.z" delta = 4.);
  Obs.merge_counters [ ("t.x", 10.) ];
  check "merge accumulates" true (List.assoc "t.x" (Obs.counters ()) = 13.5);
  Obs.reset ();
  check "reset clears counters" true (Obs.counters () = [])

(* --- spans --------------------------------------------------------------- *)

let test_spans () =
  Obs.reset ();
  check "disabled by default here" false (Obs.is_enabled ());
  ignore (Obs.with_span "ignored" (fun () -> 1));
  check "no events recorded while disabled" true (Obs.drain () = []);
  Obs.enable ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  let r =
    Obs.with_span ~cat:"test" "outer" (fun () ->
        Obs.add_int "span.work" 3;
        Obs.with_span "inner" (fun () -> ());
        17)
  in
  check_int "with_span returns the body's value" 17 r;
  (try
     Obs.with_span "raiser" (fun () -> failwith "boom")
   with Failure _ -> ());
  Obs.instant "marker";
  let events = Obs.drain () in
  let names = List.map (fun (e : Obs.event) -> e.Obs.name) events in
  check "outer recorded" true (List.mem "outer" names);
  check "inner recorded" true (List.mem "inner" names);
  check "span recorded on exception" true (List.mem "raiser" names);
  check "instant recorded" true (List.mem "marker" names);
  let outer =
    List.find (fun (e : Obs.event) -> e.Obs.name = "outer") events
  in
  check "counter delta attached to span" true
    (List.assoc_opt "span.work" outer.Obs.args = Some (Obs.Float 3.));
  check "drain clears" true (Obs.drain () = []);
  (* chronological order: events sorted by start time *)
  let ts = List.map (fun (e : Obs.event) -> e.Obs.ts_us) events in
  check "drain is chronological" true (List.sort compare ts = ts)

let test_chrome_writer () =
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  Obs.with_span ~cat:"stage" "alpha" (fun () -> Obs.add_int "w" 1);
  Obs.instant "beta";
  with_temp_file ".json" @@ fun path ->
  Obs.write_sink (Obs.Chrome path) (Obs.drain () @ Obs.counter_events ());
  let j = Json.parse (read_file path) in
  let events =
    match Json.member "traceEvents" j with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  check "three events" true (List.length events = 3);
  List.iter
    (fun e ->
      let ph = Json.str_exn (Option.get (Json.member "ph" e)) in
      check "valid phase" true (List.mem ph [ "X"; "i"; "C" ]);
      check "ts present and sane" true
        (Json.num_exn (Option.get (Json.member "ts" e)) >= 0.);
      check "pid present" true
        (Json.num_exn (Option.get (Json.member "pid" e)) > 0.))
    events;
  let names =
    List.map (fun e -> Json.str_exn (Option.get (Json.member "name" e))) events
  in
  check "span, instant and counter all present" true
    (List.mem "alpha" names && List.mem "beta" names && List.mem "w" names)

(* --- core detection and jobs clamping ------------------------------------ *)

let test_online_cores () =
  check "at least one core" true (Obs.Hw.online_cores () >= 1);
  with_env_var "PDAT_FORCE_CORES" "3" (fun () ->
      check_int "PDAT_FORCE_CORES overrides detection" 3
        (Obs.Hw.online_cores ()))

let test_default_jobs_clamped () =
  with_env_var "PDAT_FORCE_CORES" "2" (fun () ->
      with_env_var "PDAT_JOBS" "8" (fun () ->
          check_int "PDAT_JOBS=8 clamped to 2 cores" 2
            (Pdat.Pipeline.default_jobs ()));
      with_env_var "PDAT_JOBS" "1" (fun () ->
          check_int "PDAT_JOBS=1 stays 1" 1 (Pdat.Pipeline.default_jobs ())));
  with_env_var "PDAT_FORCE_CORES" "16" (fun () ->
      with_env_var "PDAT_JOBS" "4" (fun () ->
          check_int "plenty of cores: request honored" 4
            (Pdat.Pipeline.default_jobs ())))

(* jobs > candidates: the sharder must still never emit empty shards *)
let test_shard_never_empty () =
  let d = D.create "tiny" in
  let a = D.add_input d "a" in
  let na = D.add_cell d C.Inv [| a |] in
  let zero = D.add_cell d C.And2 [| a; na |] in
  D.add_output d "y" zero;
  let cands = [ Engine.Candidate.Const (zero, false) ] in
  let shards = Engine.Shard.partition d ~jobs:8 cands in
  check "at most one shard per candidate" true
    (List.length shards <= List.length cands);
  check "no empty shards" true (List.for_all (fun s -> s <> []) shards)

(* --- the twin design (two disjoint provable blocks) ---------------------- *)

let twin_design () =
  let d = D.create "twin" in
  let block name =
    let a = D.add_input d name in
    let na = D.add_cell d C.Inv [| a |] in
    let zero = D.add_cell d C.And2 [| a; na |] in
    let r = D.add_dff d ~d:zero () in
    D.add_output d ("y_" ^ name) r;
    [ Engine.Candidate.Const (zero, false); Engine.Candidate.Const (r, false) ]
  in
  let cands = block "a" @ block "b" in
  (d, cands)

(* a worker delayed well past the others must not stall the drain, and
   the result must still match the serial prover exactly *)
let test_out_of_order_completion () =
  let d, cands = twin_design () in
  let serial, _ = Engine.Induction.prove ~assume:D.net_true d cands in
  check_int "all four constants provable" 4 (List.length serial);
  let par, st =
    with_env_var "PDAT_SLOW_WORKER" "0:0.4" (fun () ->
        Engine.Induction.prove_parallel ~jobs:2 ~assume:D.net_true d cands)
  in
  check "same set as serial despite the slow worker" true
    (List.sort Engine.Candidate.compare par
    = List.sort Engine.Candidate.compare serial);
  check_int "two workers ran" 2 st.Engine.Induction.workers;
  check_int "no workers lost" 0 st.Engine.Induction.workers_failed;
  check_int "wall/cpu time reported for both workers" 2
    (List.length st.Engine.Induction.worker_times);
  (match
     List.find_opt (fun (i, _, _) -> i = 0) st.Engine.Induction.worker_times
   with
  | Some (_, wall, _) ->
      check "delayed worker's wall time includes the delay" true (wall >= 0.4)
  | None -> Alcotest.fail "worker 0 has no time entry")

let test_worker_failure_reason () =
  let d, cands = twin_design () in
  let _, st =
    with_env_var "PDAT_KILL_WORKER" "0" (fun () ->
        Engine.Induction.prove_parallel ~jobs:2 ~assume:D.net_true d cands)
  in
  check_int "one worker lost" 1 st.Engine.Induction.workers_failed;
  match st.Engine.Induction.worker_failures with
  | [ (0, reason) ] ->
      (* PDAT_KILL_WORKER makes the child _exit(3) before writing: the
         failure must be attributed to the exit status, not the pipe *)
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      check "reason names the exit status" true (contains reason "exit status 3")
  | other ->
      Alcotest.failf "expected worker 0 to fail, got %d entries"
        (List.length other)

(* workers appear as injected spans under their own pid when tracing *)
let test_worker_spans_injected () =
  let d, cands = twin_design () in
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  let _, st =
    Engine.Induction.prove_parallel ~jobs:2 ~assume:D.net_true d cands
  in
  check_int "two workers ran" 2 st.Engine.Induction.workers;
  let events = Obs.drain () in
  let worker_spans =
    List.filter (fun (e : Obs.event) -> e.Obs.cat = "worker") events
  in
  check_int "one span per worker" 2 (List.length worker_spans);
  let self = Unix.getpid () in
  List.iter
    (fun (e : Obs.event) ->
      check "worker span under its own pid" true (e.Obs.pid <> self);
      check "worker span carries SAT counters" true
        (List.mem_assoc "sat.calls" e.Obs.args))
    worker_spans

(* --- pipeline: clamp + trace golden file --------------------------------- *)

let gen_config =
  { Netlist.Generate.n_inputs = 6; n_gates = 42; n_flops = 8; n_outputs = 6 }

let test_pipeline_jobs_clamped () =
  let d = Netlist.Generate.random ~seed:11 ~config:gen_config () in
  let env = Pdat.Environment.unconstrained d in
  let r =
    with_env_var "PDAT_FORCE_CORES" "1" (fun () ->
        Pdat.Pipeline.run ~jobs:8 ~design:d ~env ())
  in
  check_int "jobs=8 on 1 core clamps to 1" 1 r.Pdat.Pipeline.report.Pdat.Pipeline.jobs;
  check_int "clamped run forks no workers" 0
    r.Pdat.Pipeline.report.Pdat.Pipeline.induction.Engine.Induction.workers

let test_pipeline_trace_golden () =
  let d = Netlist.Generate.random ~seed:11 ~config:gen_config () in
  let env = Pdat.Environment.unconstrained d in
  with_temp_file ".json" @@ fun path ->
  let r =
    Pdat.Pipeline.run ~validate:true ~lint:Analysis.Lint.Warn
      ~trace:(Obs.Chrome path) ~design:d ~env ()
  in
  check "tracing restored to disabled" false (Obs.is_enabled ());
  let j = Json.parse (read_file path) in
  let events =
    match Json.member "traceEvents" j with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let span_names =
    List.filter_map
      (fun e ->
        match (Json.member "ph" e, Json.member "name" e) with
        | Some (Json.Str "X"), Some (Json.Str name) -> Some name
        | _ -> None)
      events
  in
  List.iter
    (fun stage ->
      check (Printf.sprintf "stage %S has a span" stage) true
        (List.mem stage span_names))
    [ "lint"; "mine"; "refine"; "prove"; "rewire"; "resynth"; "baseline";
      "validate" ];
  (* the counters the report carries must also surface in the trace *)
  let counter_names =
    List.filter_map
      (fun e ->
        match (Json.member "ph" e, Json.member "name" e) with
        | Some (Json.Str "C"), Some (Json.Str name) -> Some name
        | _ -> None)
      events
  in
  check "rsim cycle counter in trace" true (List.mem "rsim.cycles" counter_names);
  check "report counters non-empty" true
    (r.Pdat.Pipeline.report.Pdat.Pipeline.counters <> []);
  check "report counts rsim cycles" true
    (List.mem_assoc "rsim.cycles" r.Pdat.Pipeline.report.Pdat.Pipeline.counters)

let test_pdat_trace_env_var () =
  let d = Netlist.Generate.random ~seed:3 ~config:gen_config () in
  let env = Pdat.Environment.unconstrained d in
  with_temp_file ".jsonl" @@ fun path ->
  let _ =
    with_env_var "PDAT_TRACE" path (fun () ->
        Pdat.Pipeline.run ~design:d ~env ())
  in
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> String.trim l <> "")
  in
  check "jsonl sink wrote events" true (lines <> []);
  (* every line is a standalone JSON object *)
  List.iter
    (fun line ->
      match Json.parse line with
      | Json.Obj _ -> ()
      | _ -> Alcotest.fail "jsonl line is not an object")
    lines

(* --- histograms --------------------------------------------------------- *)

let test_histogram_percentiles () =
  Obs.reset ();
  (* 1..100 in a scrambled order: percentiles must not depend on
     insertion order *)
  let xs = List.init 100 (fun i -> float_of_int (((i * 37) mod 100) + 1)) in
  List.iter (Obs.observe "t.lat") xs;
  match Obs.histogram "t.lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check int) "count" 100 h.Obs.count;
      Alcotest.(check (float 1e-9)) "min" 1.0 h.Obs.min_v;
      Alcotest.(check (float 1e-9)) "max" 100.0 h.Obs.max_v;
      Alcotest.(check (float 1e-9)) "p50" 50.0 h.Obs.p50;
      Alcotest.(check (float 1e-9)) "p95" 95.0 h.Obs.p95

let test_histogram_empty () =
  Obs.reset ();
  Alcotest.(check bool) "no samples, no histogram" true
    (Obs.histogram "never.observed" = None);
  Alcotest.(check (list string)) "no distributions" []
    (List.map fst (Obs.histograms ()))

let test_histogram_merge () =
  Obs.reset ();
  Obs.observe "m.x" 1.0;
  Obs.observe "m.x" 3.0;
  let shipped = Obs.histogram_samples () in
  Obs.reset ();
  Obs.observe "m.x" 2.0;
  Obs.merge_histogram_samples shipped;
  (match Obs.histogram "m.x" with
  | Some h ->
      Alcotest.(check int) "merged count" 3 h.Obs.count;
      Alcotest.(check (float 1e-9)) "merged p50" 2.0 h.Obs.p50
  | None -> Alcotest.fail "merged histogram missing");
  Obs.reset ();
  Alcotest.(check bool) "reset clears distributions" true
    (Obs.histogram "m.x" = None)

(* --- cost attribution ---------------------------------------------------- *)

let test_attr_billing () =
  Obs.reset ();
  (* a charge with no key in scope is dropped, not misfiled *)
  Obs.Attr.charge_call ~wall_s:1.0 ~conflicts:5;
  check "untagged charge is a no-op" true (Obs.Attr.export () = []);
  Obs.Attr.with_key "C1:0" (fun () ->
      Obs.Attr.charge_call ~wall_s:0.5 ~conflicts:3;
      Obs.Attr.charge_call ~wall_s:0.25 ~conflicts:1);
  Obs.Attr.credit_core_skip "C1:0";
  Obs.Attr.note_static "C2:0";
  (match Obs.Attr.export () with
  | [ r1; r2 ] ->
      check "rows sorted by key" true
        (r1.Obs.Attr.a_key = "C1:0" && r2.Obs.Attr.a_key = "C2:0");
      check_int "calls accumulated" 2 r1.Obs.Attr.a_sat_calls;
      check_int "conflicts accumulated" 4 r1.Obs.Attr.a_conflicts;
      check_int "core skip credited" 1 r1.Obs.Attr.a_core_skips;
      Alcotest.(check (float 1e-9)) "wall accumulated" 0.75 r1.Obs.Attr.a_wall_s;
      check "static flag set" true r2.Obs.Attr.a_static;
      check_int "static row has no SAT calls" 0 r2.Obs.Attr.a_sat_calls
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows));
  (* the key scope is restored even when the body raises *)
  (try Obs.Attr.with_key "C9:0" (fun () -> failwith "boom")
   with Failure _ -> ());
  Obs.Attr.charge_call ~wall_s:0.1 ~conflicts:1;
  check_int "key restored after raise: charge dropped again" 2
    (List.length (Obs.Attr.export ()));
  Obs.reset ();
  check "reset clears the attribution table" true (Obs.Attr.export () = [])

let test_attr_delta_and_top () =
  Obs.reset ();
  Obs.Attr.with_key "(base-aggregate)" (fun () ->
      Obs.Attr.charge_call ~wall_s:1.0 ~conflicts:100);
  Obs.Attr.with_key "C1:0" (fun () ->
      Obs.Attr.charge_call ~wall_s:0.1 ~conflicts:2);
  Obs.Attr.note_static "C5:0";
  let since = Obs.Attr.export () in
  Obs.Attr.with_key "C1:0" (fun () ->
      Obs.Attr.charge_call ~wall_s:0.1 ~conflicts:8);
  Obs.Attr.with_key "C2:0" (fun () ->
      Obs.Attr.charge_call ~wall_s:0.1 ~conflicts:10);
  Obs.Attr.with_key "C3:0" (fun () ->
      Obs.Attr.charge_call ~wall_s:0.1 ~conflicts:10);
  let d = Obs.Attr.delta ~since (Obs.Attr.export ()) in
  (* unmoved rows are dropped — including a row whose static flag was
     already set before the window, which must not leak in again *)
  check "delta drops unmoved rows" true
    (List.for_all
       (fun r ->
         r.Obs.Attr.a_key <> "(base-aggregate)" && r.Obs.Attr.a_key <> "C5:0")
       d);
  (match List.find_opt (fun r -> r.Obs.Attr.a_key = "C1:0") d with
  | Some r -> check_int "delta is windowed, not cumulative" 8 r.Obs.Attr.a_conflicts
  | None -> Alcotest.fail "C1:0 missing from delta");
  let top = Obs.Attr.top ~k:2 d in
  check_int "top honors k" 2 (List.length top);
  (* conflicts desc, then SAT calls desc, then key asc: C2/C3 tie on
     both counters and the tie breaks on the key *)
  check "deterministic ranking" true
    (List.map (fun r -> r.Obs.Attr.a_key) top = [ "C2:0"; "C3:0" ]);
  check "aggregate buckets never surface in top" true
    (List.for_all
       (fun r -> r.Obs.Attr.a_key.[0] <> '(')
       (Obs.Attr.top (Obs.Attr.export ())))

let test_attr_merge () =
  let row key shard conflicts =
    {
      Obs.Attr.a_key = key;
      a_shard = shard;
      a_wall_s = 0.1;
      a_sat_calls = 1;
      a_conflicts = conflicts;
      a_core_skips = 0;
      a_static = false;
    }
  in
  Obs.reset ();
  Obs.Attr.merge [ row "C1:0" (Some 0) 2 ];
  Obs.Attr.merge [ row "C1:0" (Some 1) 3; row "C2:0" None 1 ];
  (match Obs.Attr.export () with
  | [ r1; r2 ] ->
      check_int "calls sum across merges" 2 r1.Obs.Attr.a_sat_calls;
      check_int "conflicts sum across merges" 5 r1.Obs.Attr.a_conflicts;
      check "existing shard tag wins" true (r1.Obs.Attr.a_shard = Some 0);
      check "new key inserted" true (r2.Obs.Attr.a_key = "C2:0")
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows));
  Obs.reset ()

(* twin design plus one deliberately false claim per block: the false
   claim is refuted by an aggregate round, whose cost the prover bills
   to the candidates the round killed — so the cost table is non-empty
   and its exactly-once merge under worker kills is observable *)
let twin_with_refuted () =
  let d = D.create "twin_r" in
  let block name =
    let a = D.add_input d name in
    let na = D.add_cell d C.Inv [| a |] in
    let zero = D.add_cell d C.And2 [| a; na |] in
    let one = D.add_cell d C.Inv [| zero |] in
    let r = D.add_dff d ~d:zero () in
    D.add_output d ("y_" ^ name) r;
    D.add_output d ("o_" ^ name) one;
    [
      Engine.Candidate.Const (zero, false);
      Engine.Candidate.Const (r, false);
      (* false: [one] is constantly high *)
      Engine.Candidate.Const (one, false);
    ]
  in
  let cands = block "a" @ block "b" in
  (d, cands)

(* the cost-table signature we require to be reproducible: everything
   except wall time, which is deliberately not part of the contract *)
let attr_sig (st : Engine.Induction.stats) =
  List.map
    (fun (r : Obs.Attr.row) ->
      ( r.Obs.Attr.a_key,
        r.Obs.Attr.a_shard,
        r.Obs.Attr.a_sat_calls,
        r.Obs.Attr.a_conflicts,
        r.Obs.Attr.a_core_skips,
        r.Obs.Attr.a_static ))
    st.Engine.Induction.top_costs

let test_attr_chaos_merge_once () =
  let d, cands = twin_with_refuted () in
  Engine.Chaos.reset ();
  Obs.reset ();
  let clean, clean_st =
    Engine.Induction.prove_parallel ~jobs:2 ~assume:D.net_true d cands
  in
  let clean_sig = attr_sig clean_st in
  let clean_hist =
    match Obs.histogram "sat.call_s" with
    | Some h -> h.Obs.count
    | None -> 0
  in
  check "refuted candidates produced cost rows" true (clean_sig <> []);
  check "parallel rows carry their shard tag" true
    (List.exists (fun (_, s, _, _, _, _) -> s <> None) clean_sig);
  (* same run with every worker's first attempt SIGKILLed: the killed
     attempt's partial rows and samples die with the worker, the retry
     ships them once, so the merged table and the histogram are
     byte-identical to the clean run *)
  Obs.reset ();
  let chaos, chaos_st =
    with_env_var "PDAT_CHAOS" "worker-kill" (fun () ->
        Engine.Induction.prove_parallel ~jobs:2 ~assume:D.net_true d cands)
  in
  Engine.Chaos.reset ();
  check "chaos run retried killed workers" true
    (chaos_st.Engine.Induction.worker_retries >= 1);
  check "proved set unchanged under kills" true
    (List.sort Engine.Candidate.compare chaos
    = List.sort Engine.Candidate.compare clean);
  check "attribution merged exactly once under kills" true
    (attr_sig chaos_st = clean_sig);
  let chaos_hist =
    match Obs.histogram "sat.call_s" with
    | Some h -> h.Obs.count
    | None -> 0
  in
  check_int "histogram samples merged exactly once under kills" clean_hist
    chaos_hist

(* --- structured run log -------------------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let log_lines path =
  String.split_on_char '\n' (read_file path)
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map Json.parse

let event_name o =
  match Json.member "event" o with Some (Json.Str s) -> s | _ -> ""

let test_log_jsonl () =
  check "level_of_string accepts synonyms" true
    (Obs.Log.level_of_string "WARNING" = Some Obs.Log.Warn);
  check "level_of_string rejects garbage" true
    (Obs.Log.level_of_string "loud" = None);
  with_temp_file ".jsonl" @@ fun path ->
  check "inactive before set" false (Obs.Log.active ());
  Obs.Log.event "dropped-without-a-sink";
  Obs.Log.set path;
  check "active after set" true (Obs.Log.active ());
  Obs.Log.event ~stage:"prove" ~shard:1
    ~kv:[ ("attempt", Obs.Int 0); ("wall_s", Obs.Float 0.25) ]
    "worker-start";
  Obs.Log.event ~level:Obs.Log.Debug "invisible";
  Obs.Log.event ~level:Obs.Log.Warn
    ~kv:[ ("reason", Obs.Str "say \"hi\"") ]
    "warned";
  Obs.Log.close ();
  check "inactive after close" false (Obs.Log.active ());
  let objs = log_lines path in
  check_int "debug filtered below the Info threshold" 2 (List.length objs);
  List.iter
    (fun o ->
      check "ts present" true (Json.member "ts" o <> None);
      check "level present" true (Json.member "level" o <> None))
    objs;
  let first = List.nth objs 0 in
  check "event name" true (event_name first = "worker-start");
  check "level label" true (Json.member "level" first = Some (Json.Str "info"));
  check "stage field" true (Json.member "stage" first = Some (Json.Str "prove"));
  check "shard field" true (Json.member "shard" first = Some (Json.Num 1.));
  check "int kv" true (Json.member "attempt" first = Some (Json.Num 0.));
  check "float kv" true (Json.member "wall_s" first = Some (Json.Num 0.25));
  let second = List.nth objs 1 in
  check "warn level" true (Json.member "level" second = Some (Json.Str "warn"));
  check "string kv escapes round-trip" true
    (Json.member "reason" second = Some (Json.Str "say \"hi\""))

let test_pipeline_log_and_metrics () =
  let d = Netlist.Generate.random ~seed:11 ~config:gen_config () in
  let env = Pdat.Environment.unconstrained d in
  with_temp_file ".jsonl" @@ fun log_path ->
  with_temp_file ".txt" @@ fun metrics_path ->
  let r =
    Pdat.Pipeline.run ~log:log_path ~metrics_out:metrics_path ~design:d ~env ()
  in
  check "pipeline closed the log it opened" false (Obs.Log.active ());
  let evs = log_lines log_path in
  let names = List.map event_name evs in
  List.iter
    (fun n ->
      check (Printf.sprintf "log has a %S event" n) true (List.mem n names))
    [ "run-start"; "stage-start"; "stage-end"; "run-end" ];
  check "stage events carry the stage name" true
    (List.exists
       (fun o ->
         event_name o = "stage-end"
         && Json.member "stage" o = Some (Json.Str "mine")
         && Json.member "wall_s" o <> None)
       evs);
  (match List.find_opt (fun o -> event_name o = "run-end") evs with
  | Some o ->
      check "run-end reports the proved count" true
        (Json.member "proved" o
        = Some
            (Json.Num
               (float_of_int r.Pdat.Pipeline.report.Pdat.Pipeline.proved)))
  | None -> Alcotest.fail "no run-end event");
  (* --metrics-out dumped the recorder as OpenMetrics text *)
  let m = read_file metrics_path in
  check "metrics end with the EOF trailer" true
    (String.length m >= 6 && String.sub m (String.length m - 6) 6 = "# EOF\n");
  check "metrics include the SAT call counter" true
    (contains m "pdat_sat_calls_total")

let test_pdat_log_env_var () =
  let d = Netlist.Generate.random ~seed:3 ~config:gen_config () in
  let env = Pdat.Environment.unconstrained d in
  with_temp_file ".jsonl" @@ fun path ->
  let _ =
    with_env_var "PDAT_LOG" path (fun () -> Pdat.Pipeline.run ~design:d ~env ())
  in
  check "PDAT_LOG-selected file got events" true
    (List.mem "run-end" (List.map event_name (log_lines path)))

(* --- OpenMetrics exposition ---------------------------------------------- *)

let test_openmetrics_golden () =
  Obs.reset ();
  Obs.add_int "sat.calls" 3;
  Obs.observe "solve.s" 0.0005;
  Obs.observe "solve.s" 0.02;
  Obs.observe "solve.s" 5.0;
  let expected =
    String.concat "\n"
      [
        "# TYPE pdat_sat_calls counter";
        "pdat_sat_calls_total 3";
        "# TYPE pdat_solve_s histogram";
        "pdat_solve_s_bucket{le=\"1e-05\"} 0";
        "pdat_solve_s_bucket{le=\"0.0001\"} 0";
        "pdat_solve_s_bucket{le=\"0.001\"} 1";
        "pdat_solve_s_bucket{le=\"0.01\"} 1";
        "pdat_solve_s_bucket{le=\"0.1\"} 2";
        "pdat_solve_s_bucket{le=\"1\"} 2";
        "pdat_solve_s_bucket{le=\"10\"} 3";
        "pdat_solve_s_bucket{le=\"+Inf\"} 3";
        "pdat_solve_s_sum 5.0205";
        "pdat_solve_s_count 3";
        "# EOF";
        "";
      ]
  in
  Alcotest.(check string) "golden exposition" expected (Obs.openmetrics ());
  check "byte-deterministic across calls" true
    (Obs.openmetrics () = Obs.openmetrics ());
  Obs.reset ();
  Alcotest.(check string) "empty recorder is just the trailer" "# EOF\n"
    (Obs.openmetrics ())

let test_write_file_atomic () =
  let dir = Filename.temp_file "pdat_atomic" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with _ -> ())
  @@ fun () ->
  let path = Filename.concat dir "out.txt" in
  Obs.write_file_atomic path "first\n";
  Obs.write_file_atomic path "second\n";
  Alcotest.(check string) "last write wins" "second\n" (read_file path);
  check "no tmp file left behind" true
    (Sys.readdir dir |> Array.to_list |> List.for_all (fun f -> f = "out.txt"))

let () =
  Alcotest.run "obs"
    [
      ( "histograms",
        [
          Alcotest.test_case "percentiles over scrambled input" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "empty distributions" `Quick test_histogram_empty;
          Alcotest.test_case "worker sample merge + reset" `Quick
            test_histogram_merge;
        ] );
      ( "obs",
        [
          Alcotest.test_case "monotonic clock" `Quick test_clock;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "spans" `Quick test_spans;
          Alcotest.test_case "chrome writer emits valid JSON" `Quick
            test_chrome_writer;
          Alcotest.test_case "online core detection" `Quick test_online_cores;
        ] );
      ( "clamp",
        [
          Alcotest.test_case "default_jobs clamps to cores" `Quick
            test_default_jobs_clamped;
          Alcotest.test_case "more jobs than candidates" `Quick
            test_shard_never_empty;
          Alcotest.test_case "pipeline clamps explicit jobs" `Quick
            test_pipeline_jobs_clamped;
        ] );
      ( "drain",
        [
          Alcotest.test_case "out-of-order worker completion" `Quick
            test_out_of_order_completion;
          Alcotest.test_case "failure reason per worker" `Quick
            test_worker_failure_reason;
          Alcotest.test_case "worker spans injected into the trace" `Quick
            test_worker_spans_injected;
        ] );
      ( "trace",
        [
          Alcotest.test_case "pipeline --trace golden file" `Quick
            test_pipeline_trace_golden;
          Alcotest.test_case "PDAT_TRACE env var, jsonl sink" `Quick
            test_pdat_trace_env_var;
        ] );
      ( "attr",
        [
          Alcotest.test_case "billing, scoping and reset" `Quick
            test_attr_billing;
          Alcotest.test_case "delta window and deterministic top" `Quick
            test_attr_delta_and_top;
          Alcotest.test_case "merge sums rows, keeps first shard" `Quick
            test_attr_merge;
          Alcotest.test_case "exactly-once merge under worker kills" `Quick
            test_attr_chaos_merge_once;
        ] );
      ( "log",
        [
          Alcotest.test_case "leveled JSONL events" `Quick test_log_jsonl;
          Alcotest.test_case "pipeline --log + --metrics-out" `Quick
            test_pipeline_log_and_metrics;
          Alcotest.test_case "PDAT_LOG env var" `Quick test_pdat_log_env_var;
        ] );
      ( "openmetrics",
        [
          Alcotest.test_case "golden exposition text" `Quick
            test_openmetrics_golden;
          Alcotest.test_case "atomic file writes" `Quick test_write_file_atomic;
        ] );
    ]
