(* Randomized differential tests for the parallel proof engine and the
   invariant cache.

   The central claim under test: [Induction.prove_parallel] — sharding,
   forked workers, join round — proves *exactly* the set the serial
   [Induction.prove] proves, for any job count, and every proved
   invariant survives long constrained simulation.  Neither prover gets
   [~cex] here: the set-identity theorem is stated for exact kills, and
   worker determinism depends on it. *)

module D = Netlist.Design
module C = Netlist.Cell

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sorted = List.sort Engine.Candidate.compare

let same_set a b = sorted a = sorted b

(* every proved invariant must hold on a long random simulation *)
let survives_sim d assume proved ~cycles =
  let sim = Netlist.Sim64.create d in
  let rng = Random.State.make [| 98765 |] in
  let random_word () =
    Int64.logor
      (Int64.of_int (Random.State.bits rng))
      (Int64.shift_left (Int64.of_int (Random.State.bits rng)) 30)
  in
  let ok = ref true in
  for _ = 1 to cycles do
    List.iter
      (fun (_, n) -> Netlist.Sim64.set_input sim n (random_word ()))
      (D.inputs d);
    Netlist.Sim64.eval sim;
    if Netlist.Sim64.read sim assume = -1L then
      List.iter
        (fun c ->
          if not (Engine.Candidate.holds_in_values (Netlist.Sim64.read sim) c)
          then ok := false)
        proved;
    Netlist.Sim64.step sim
  done;
  !ok

let gen_config =
  { Netlist.Generate.n_inputs = 6; n_gates = 42; n_flops = 8; n_outputs = 6 }

let mine_config =
  { Engine.Rsim.default with Engine.Rsim.cycles = 128; runs = 1 }

(* --- parallel == serial, across seeds and job counts ------------------- *)

let test_differential () =
  let nonempty = ref 0 in
  for seed = 1 to 50 do
    let d = Netlist.Generate.random ~seed ~config:gen_config () in
    let cands =
      Engine.Rsim.mine ~config:mine_config d Engine.Stimulus.unconstrained
    in
    let serial, _ = Engine.Induction.prove ~assume:D.net_true d cands in
    (* the incremental prover (persistent solvers, selector-guarded
       clauses, unsat-core skips) against the snapshot/restore oracle:
       both run to completion, so the greatest-fixpoint sets must be
       byte-identical *)
    let snap, _ = Engine.Induction.prove_snapshot ~assume:D.net_true d cands in
    if not (same_set serial snap) then
      Alcotest.failf
        "seed %d: incremental proved %d, snapshot oracle proved %d \
         (different sets)"
        seed (List.length serial) (List.length snap);
    if serial <> [] then begin
      incr nonempty;
      (* the certified rewiring of the serial proof set must pass the
         static audit on every random netlist, not just the flagship *)
      let rewired, cert = Pdat.Rewire.apply_certified d serial in
      match
        Analysis.Audit.run ~original:d ~rewired ~proved:serial
          ~certificate:cert ()
      with
      | [] -> ()
      | diag :: _ ->
          Alcotest.failf "seed %d: audit rejected an honest certificate: %s"
            seed
            (Analysis.Diag.to_string diag)
    end;
    List.iter
      (fun jobs ->
        let par, stats =
          Engine.Induction.prove_parallel ~jobs ~assume:D.net_true d cands
        in
        if not (same_set serial par) then
          Alcotest.failf
            "seed %d jobs %d: parallel proved %d, serial proved %d \
             (different sets)"
            seed jobs (List.length par) (List.length serial);
        check (Printf.sprintf "seed %d jobs %d: no worker lost" seed jobs)
          true
          (stats.Engine.Induction.workers_failed = 0);
        check
          (Printf.sprintf "seed %d jobs %d: survives simulation" seed jobs)
          true
          (survives_sim d D.net_true par ~cycles:1000))
      [ 1; 2; 4 ];
    (* the absint static tier: every statically discharged verdict and
       every strengthening fact must be confirmed by the snapshot
       oracle, and under an unconstrained environment the mined
       candidate set already contains the whole ternary cube, so the
       strengthened proved set must be byte-identical to the serial
       one *)
    let ai = Engine.Absint.run ~assume:D.net_true d in
    let p_ai, sai =
      Engine.Induction.prove_parallel ~jobs:1 ~absint:ai ~assume:D.net_true d
        cands
    in
    if not (same_set serial p_ai) then
      Alcotest.failf
        "seed %d: absint-on proved %d, absint-off proved %d (different sets)"
        seed (List.length p_ai) (List.length serial);
    check_int
      (Printf.sprintf "seed %d: static tier accounting" seed)
      (List.length (List.filter (Engine.Absint.proves ai) cands))
      sai.Engine.Induction.n_static_proved;
    check
      (Printf.sprintf "seed %d: absint-on proved set survives simulation" seed)
      true
      (survives_sim d D.net_true p_ai ~cycles:1000);
    (let facts = Engine.Absint.facts ai in
     if facts <> [] then begin
       let pf, _ =
         Engine.Induction.prove_snapshot ~assume:D.net_true d facts
       in
       if not (same_set pf facts) then
         Alcotest.failf
           "seed %d: snapshot oracle refuted %d of %d absint facts" seed
           (List.length facts - List.length pf)
           (List.length facts)
     end);
    (* the sieve transfers verdicts across pointwise-equivalent
       candidates: its expanded proved set must be byte-identical to a
       sieve-off run, serial and parallel alike *)
    List.iter
      (fun jobs ->
        let sieved, sst =
          Engine.Induction.prove_parallel ~jobs ~sieve:true ~assume:D.net_true
            d cands
        in
        if not (same_set serial sieved) then
          Alcotest.failf
            "seed %d jobs %d: sieve-on proved %d, sieve-off proved %d \
             (different sets)"
            seed jobs (List.length sieved) (List.length serial);
        if sst.Engine.Induction.sieve_classes > 0 then
          check
            (Printf.sprintf "seed %d jobs %d: sieve accounting consistent"
               seed jobs)
            true
            (sst.Engine.Induction.n_sieved
            = List.length cands - sst.Engine.Induction.sieve_classes))
      [ 1; 2 ]
  done;
  (* the harness must actually exercise non-trivial proofs *)
  check "some seeds proved something" true (!nonempty > 10)

(* --- crash isolation ---------------------------------------------------- *)

(* two structurally disjoint blocks, each with provable constants, so
   the sharder reliably produces two shards for jobs=2 *)
let twin_design () =
  let d = D.create "twin" in
  let block name =
    let a = D.add_input d name in
    let na = D.add_cell d C.Inv [| a |] in
    let zero = D.add_cell d C.And2 [| a; na |] in
    let r = D.add_dff d ~d:zero () in
    D.add_output d ("y_" ^ name) r;
    [ Engine.Candidate.Const (zero, false); Engine.Candidate.Const (r, false) ]
  in
  let cands = block "a" @ block "b" in
  (d, cands)

let with_env_var name value f =
  Unix.putenv name value;
  Fun.protect ~finally:(fun () -> Unix.putenv name "") f

let test_crash_retry () =
  let d, cands = twin_design () in
  let serial, _ = Engine.Induction.prove ~assume:D.net_true d cands in
  check_int "all four constants provable" 4 (List.length serial);
  (* sanity: without sabotage, two workers agree with serial *)
  let par, st = Engine.Induction.prove_parallel ~jobs:2 ~assume:D.net_true d cands in
  check "clean parallel run matches serial" true (same_set serial par);
  check_int "two workers ran" 2 st.Engine.Induction.workers;
  (* kill worker 0's first attempt: supervision retries the shard and
     the retry succeeds, so the final set is exactly the serial one *)
  let par, st =
    with_env_var "PDAT_KILL_WORKER" "0" (fun () ->
        Engine.Induction.prove_parallel ~jobs:2 ~assume:D.net_true d cands)
  in
  check "failed attempt counted" true (st.Engine.Induction.workers_failed >= 1);
  check "retry counted" true (st.Engine.Induction.worker_retries >= 1);
  check_int "no fallback needed" 0 st.Engine.Induction.worker_fallbacks;
  check "failure reason recorded for shard 0" true
    (List.exists (fun (i, _) -> i = 0) st.Engine.Induction.worker_failures);
  check "killed shard recovered: proved set == serial" true
    (same_set serial par);
  check "result still sound" true (survives_sim d D.net_true par ~cycles:500)

let test_crash_fallback () =
  let d, cands = twin_design () in
  let serial, _ = Engine.Induction.prove ~assume:D.net_true d cands in
  (* retries exhausted (none allowed): the killed shard is proved
     serially in-process instead — still nothing lost *)
  let par, st =
    with_env_var "PDAT_KILL_WORKER" "0" (fun () ->
        Engine.Induction.prove_parallel ~jobs:2 ~retries:0 ~assume:D.net_true
          d cands)
  in
  check "failed attempt counted" true (st.Engine.Induction.workers_failed >= 1);
  check_int "no retry granted" 0 st.Engine.Induction.worker_retries;
  check "fallback counted" true (st.Engine.Induction.worker_fallbacks >= 1);
  check "fallback recovered: proved set == serial" true (same_set serial par);
  check "result still sound" true (survives_sim d D.net_true par ~cycles:500)

let test_chaos_kill_every_worker () =
  let d, cands = twin_design () in
  let serial, _ = Engine.Induction.prove ~assume:D.net_true d cands in
  (* PDAT_CHAOS=worker-kill SIGKILLs *every* worker's first attempt;
     both shards must come back through retries *)
  let par, st =
    with_env_var "PDAT_CHAOS" "worker-kill" (fun () ->
        Engine.Induction.prove_parallel ~jobs:2 ~assume:D.net_true d cands)
  in
  Engine.Chaos.reset ();
  check_int "both first attempts killed" 2 st.Engine.Induction.workers_failed;
  check "both shards retried" true (st.Engine.Induction.worker_retries >= 2);
  check "every shard recovered: proved set == serial" true
    (same_set serial par);
  check "signal recorded in failure reasons" true
    (List.for_all
       (fun (_, why) ->
         let has_sub sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length why
             && (String.sub why i n = sub || go (i + 1))
           in
           go 0
         in
         has_sub "signal" || has_sub "exit")
       st.Engine.Induction.worker_failures)

(* the cost-attribution table must be part of the chaos identity: a
   killed attempt's partial rows die with the worker and the retry's
   rows merge exactly once, so (wall time aside — it is deliberately
   outside the determinism contract) the table matches a clean run's *)
let test_chaos_attribution_identity () =
  let d = D.create "twin_r" in
  let block name =
    let a = D.add_input d name in
    let na = D.add_cell d C.Inv [| a |] in
    let zero = D.add_cell d C.And2 [| a; na |] in
    let one = D.add_cell d C.Inv [| zero |] in
    let r = D.add_dff d ~d:zero () in
    D.add_output d ("y_" ^ name) r;
    D.add_output d ("o_" ^ name) one;
    [
      Engine.Candidate.Const (zero, false);
      Engine.Candidate.Const (r, false);
      (* false claim: refuted by an aggregate round, whose cost is
         billed to the killed candidate — a non-empty cost table *)
      Engine.Candidate.Const (one, false);
    ]
  in
  let cands = block "a" @ block "b" in
  let attr_sig (st : Engine.Induction.stats) =
    List.map
      (fun (r : Obs.Attr.row) ->
        ( r.Obs.Attr.a_key,
          r.Obs.Attr.a_shard,
          r.Obs.Attr.a_sat_calls,
          r.Obs.Attr.a_conflicts,
          r.Obs.Attr.a_core_skips,
          r.Obs.Attr.a_static ))
      st.Engine.Induction.top_costs
  in
  Engine.Chaos.reset ();
  Obs.reset ();
  let clean, clean_st =
    Engine.Induction.prove_parallel ~jobs:2 ~assume:D.net_true d cands
  in
  check "clean run billed the refuted candidates" true
    (attr_sig clean_st <> []);
  Obs.reset ();
  let par, st =
    with_env_var "PDAT_CHAOS" "worker-kill" (fun () ->
        Engine.Induction.prove_parallel ~jobs:2 ~assume:D.net_true d cands)
  in
  Engine.Chaos.reset ();
  check "every first attempt killed" true
    (st.Engine.Induction.workers_failed >= 1);
  check "proved set survives the kills" true (same_set clean par);
  check "cost table identical to the clean run" true
    (attr_sig st = attr_sig clean_st)

(* --- invariant cache ---------------------------------------------------- *)

let cache_fixture () =
  let seed = 11 in
  let d = Netlist.Generate.random ~seed ~config:gen_config () in
  let cands =
    Engine.Rsim.mine ~config:mine_config d Engine.Stimulus.unconstrained
  in
  (d, cands)

let test_cache_warm_run () =
  let d, cands = cache_fixture () in
  check "fixture mines candidates" true (List.length cands > 3);
  let cache = Engine.Proof_cache.create () in
  let cold, cst =
    Engine.Induction.prove_parallel ~jobs:2 ~cache ~assume:D.net_true d cands
  in
  check_int "cold run: no hits" 0 cst.Engine.Induction.cache_hits;
  check_int "cold run: all misses" (List.length cands)
    cst.Engine.Induction.cache_misses;
  let warm, wst =
    Engine.Induction.prove_parallel ~jobs:2 ~cache ~assume:D.net_true d cands
  in
  (* 100% hit: every candidate settled without any SAT call *)
  check_int "warm run: all hits" (List.length cands)
    wst.Engine.Induction.cache_hits;
  check_int "warm run: zero SAT calls" 0 wst.Engine.Induction.sat_calls;
  check_int "warm run: zero workers" 0 wst.Engine.Induction.workers;
  check "warm run: identical proved list" true (cold = warm)

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pdat_cache_%d_%d" (Unix.getpid ()) (Random.int 100000))
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let test_cache_disk_persistence () =
  let d, cands = cache_fixture () in
  with_temp_dir (fun dir ->
      let cache = Engine.Proof_cache.create ~dir () in
      let cold, _ =
        Engine.Induction.prove_parallel ~jobs:1 ~cache ~assume:D.net_true d
          cands
      in
      Engine.Proof_cache.flush cache;
      check "scope file written" true
        (Array.exists
           (fun f -> Filename.check_suffix f ".pdatcache")
           (Sys.readdir dir));
      (* a brand-new cache instance over the same directory: the second
         process' run is fully served from disk *)
      let cache2 = Engine.Proof_cache.create ~dir () in
      let warm, wst =
        Engine.Induction.prove_parallel ~jobs:1 ~cache:cache2
          ~assume:D.net_true d cands
      in
      check_int "warm across processes: zero SAT calls" 0
        wst.Engine.Induction.sat_calls;
      check "identical proved list across processes" true (cold = warm);
      check_int "no corrupt files seen" 0
        (Engine.Proof_cache.stats cache2).Engine.Proof_cache.corrupt_files)

let test_cache_mutated_netlist_is_cold () =
  let d, cands = cache_fixture () in
  let cache = Engine.Proof_cache.create () in
  let _ =
    Engine.Induction.prove_parallel ~jobs:1 ~cache ~assume:D.net_true d cands
  in
  (* swap one cell's function: a different design must never reuse the
     old verdicts, even though every net id still exists *)
  let d' = D.copy d in
  let swapped = ref false in
  (try
     D.iter_cells d' (fun i c ->
         if not !swapped then
           match c.D.kind with
           | C.And2 ->
               D.replace_cell d' i C.Or2 c.D.ins;
               swapped := true
           | C.Or2 ->
               D.replace_cell d' i C.And2 c.D.ins;
               swapped := true
           | _ -> ())
   with _ -> ());
  check "a cell was swapped" true !swapped;
  let proved', st' =
    Engine.Induction.prove_parallel ~jobs:1 ~cache ~assume:D.net_true d' cands
  in
  check_int "mutated design: zero cache hits" 0 st'.Engine.Induction.cache_hits;
  check "mutated design result is sound for the mutated design" true
    (survives_sim d' D.net_true proved' ~cycles:1000)

let test_cache_corrupt_files_are_cold () =
  let d, cands = cache_fixture () in
  with_temp_dir (fun dir ->
      let seed_cache = Engine.Proof_cache.create ~dir () in
      let cold, _ =
        Engine.Induction.prove_parallel ~jobs:1 ~cache:seed_cache
          ~assume:D.net_true d cands
      in
      Engine.Proof_cache.flush seed_cache;
      let files =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".pdatcache")
      in
      check "scope file exists" true (files <> []);
      let path = Filename.concat dir (List.hd files) in
      let quarantined () =
        let q = Filename.concat dir "quarantine" in
        if Sys.file_exists q then Array.length (Sys.readdir q) else 0
      in
      let damage_and_check label ~salvage mutate =
        let q_before = quarantined () in
        mutate path;
        let cache = Engine.Proof_cache.create ~dir () in
        let proved, st =
          Engine.Induction.prove_parallel ~jobs:1 ~cache ~assume:D.net_true d
            cands
        in
        let cst = Engine.Proof_cache.stats cache in
        (* the damage is detected, counted and quarantined; whatever the
           CRC check could salvage from the valid prefix may still serve
           hits, but the final result must equal the cold run's *)
        check (label ^ ": same proved list as cold") true (proved = cold);
        check (label ^ ": corruption counted") true
          (cst.Engine.Proof_cache.corrupt_files = 1);
        check (label ^ ": damaged file quarantined") true
          (quarantined () > q_before);
        if salvage then
          check (label ^ ": valid prefix salvaged") true
            (cst.Engine.Proof_cache.salvaged_entries > 0
            && st.Engine.Induction.cache_hits
               = cst.Engine.Proof_cache.salvaged_entries)
        else begin
          check (label ^ ": nothing salvaged, no stale hits") true
            (cst.Engine.Proof_cache.salvaged_entries = 0
            && st.Engine.Induction.cache_hits = 0);
          check (label ^ ": SAT actually ran") true
            (st.Engine.Induction.sat_calls > 0)
        end;
        (* the damaged file is replaced by a clean one on flush *)
        Engine.Proof_cache.flush cache;
        let cache2 = Engine.Proof_cache.create ~dir () in
        let _, st2 =
          Engine.Induction.prove_parallel ~jobs:1 ~cache:cache2
            ~assume:D.net_true d cands
        in
        check (label ^ ": healed after flush") true
          (st2.Engine.Induction.sat_calls = 0)
      in
      (* mid-entry truncation keeps the header and a valid prefix *)
      damage_and_check "truncated" ~salvage:true (fun p ->
          let n = (Unix.stat p).Unix.st_size in
          let fd = Unix.openfile p [ Unix.O_WRONLY ] 0o644 in
          Unix.ftruncate fd (n / 2);
          Unix.close fd);
      damage_and_check "garbage" ~salvage:false (fun p ->
          let oc = open_out p in
          output_string oc "not a cache file\nat all\n";
          close_out oc))

let test_cache_stale_tmp_cleanup () =
  let d, cands = cache_fixture () in
  with_temp_dir (fun dir ->
      Unix.mkdir dir 0o755;
      (* an orphan tmp from a crashed writer *)
      let stale = Filename.concat dir "deadbeef.pdatcache.1234.tmp" in
      let oc = open_out stale in
      output_string oc "half-written";
      close_out oc;
      let cache = Engine.Proof_cache.create ~dir () in
      check "stale tmp swept on open" false (Sys.file_exists stale);
      (* flush goes through a pid-unique tmp and leaves no tmp behind *)
      let _ =
        Engine.Induction.prove_parallel ~jobs:1 ~cache ~assume:D.net_true d
          cands
      in
      Engine.Proof_cache.flush cache;
      let leftover =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".tmp")
      in
      check "no tmp file survives a flush" true (leftover = []))

let test_cache_eviction () =
  let d, cands = cache_fixture () in
  with_temp_dir (fun dir ->
      (* seed one scope file, then open with a 1-byte budget: the next
         flush must evict down to (under) the budget *)
      let seed = Engine.Proof_cache.create ~dir () in
      let _ =
        Engine.Induction.prove_parallel ~jobs:1 ~cache:seed ~assume:D.net_true
          d cands
      in
      Engine.Proof_cache.flush seed;
      let scope_files () =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".pdatcache")
      in
      check "seed run wrote a scope file" true (scope_files () <> []);
      let bounded = Engine.Proof_cache.create ~dir ~max_bytes:1 () in
      let _ =
        Engine.Induction.prove_parallel ~jobs:1 ~cache:bounded
          ~assume:D.net_true d cands
      in
      Engine.Proof_cache.flush bounded;
      check "over-budget scope files evicted" true (scope_files () = []);
      check "eviction counted" true
        ((Engine.Proof_cache.stats bounded).Engine.Proof_cache.evicted_files
        >= 1))

let test_shard_checkpoint_resume () =
  let d, cands = twin_design () in
  let serial, _ = Engine.Induction.prove ~assume:D.net_true d cands in
  (* run 1 checkpoints every settled shard, as the run journal would *)
  let checkpoints = ref [] in
  let par, _ =
    Engine.Induction.prove_parallel ~jobs:2
      ~checkpoint:(fun fp proved -> checkpoints := (fp, proved) :: !checkpoints)
      ~assume:D.net_true d cands
  in
  check "run 1 matches serial" true (same_set serial par);
  check_int "both shards checkpointed" 2 (List.length !checkpoints);
  (* run 2 is handed the checkpoints: both shards are settled without
     forking a single worker, and the join round lands on the same set *)
  let par2, st2 =
    Engine.Induction.prove_parallel ~jobs:2 ~recovered:!checkpoints
      ~assume:D.net_true d cands
  in
  check_int "both shards resumed from checkpoints" 2
    st2.Engine.Induction.resumed_shards;
  check_int "no worker forked" 0 (List.length st2.Engine.Induction.worker_times);
  check "resumed run matches serial" true (same_set serial par2)

(* --- the sieve under crashes and resume -------------------------------- *)

(* [twin_design]'s two dead-zero constants sit on different nets of
   disjoint blocks, so only the sieve's SAT confirmation can merge
   them — exactly the path that must stay sound across worker kills *)
let test_sieve_chaos_kill () =
  let d, cands = twin_design () in
  let serial, _ = Engine.Induction.prove ~assume:D.net_true d cands in
  let par, st =
    with_env_var "PDAT_CHAOS" "worker-kill" (fun () ->
        Engine.Induction.prove_parallel ~jobs:2 ~sieve:true ~assume:D.net_true
          d cands)
  in
  Engine.Chaos.reset ();
  check "sieve merged at least one pair" true
    (st.Engine.Induction.n_sieved >= 1);
  check "every first attempt killed" true
    (st.Engine.Induction.workers_failed >= 1);
  check "sieved + killed run still matches serial" true (same_set serial par);
  check "result still sound" true (survives_sim d D.net_true par ~cycles:500)

let test_sieve_checkpoint_resume () =
  let d, cands = twin_design () in
  let serial, _ = Engine.Induction.prove ~assume:D.net_true d cands in
  (* run 1, sieve on, checkpoints its (representative-set) shards *)
  let checkpoints = ref [] in
  let par, st =
    Engine.Induction.prove_parallel ~jobs:2 ~sieve:true
      ~checkpoint:(fun fp proved -> checkpoints := (fp, proved) :: !checkpoints)
      ~assume:D.net_true d cands
  in
  check "sieved run matches serial" true (same_set serial par);
  check "sieve merged at least one pair" true
    (st.Engine.Induction.n_sieved >= 1);
  check "shards were checkpointed" true (!checkpoints <> []);
  (* run 2, same sieve setting: fingerprints are computed over the same
     representative sets, so every shard resumes without a worker and
     verdict expansion still lands on the serial set *)
  let par2, st2 =
    Engine.Induction.prove_parallel ~jobs:2 ~sieve:true
      ~recovered:!checkpoints ~assume:D.net_true d cands
  in
  check_int "all shards resumed from checkpoints"
    (List.length !checkpoints)
    st2.Engine.Induction.resumed_shards;
  check_int "no worker forked" 0
    (List.length st2.Engine.Induction.worker_times);
  check "resumed sieved run matches serial" true (same_set serial par2);
  (* a sieve-off run handed sieve-on checkpoints: fingerprints are
     content digests, so only a shard whose candidate set happens to be
     byte-identical may resume — either way the result is the serial
     set (a matching fingerprint means the identical proof obligation) *)
  let par3, _ =
    Engine.Induction.prove_parallel ~jobs:2 ~recovered:!checkpoints
      ~assume:D.net_true d cands
  in
  check "sieve-off run with sieve-on checkpoints matches serial" true
    (same_set serial par3)

(* --- the chaos matrix: crash-safety end-to-end ------------------------- *)

(* Like [twin_design], but sized so pipeline mining reliably finds the
   per-block constants and the sharder gets two disjoint components. *)
let chaos_design () =
  let d = D.create "chaos_twin" in
  let block name =
    let a = D.add_input d ("in_" ^ name) in
    let na = D.add_cell d C.Inv [| a |] in
    let zero = D.add_cell d C.And2 [| a; na |] in
    let r = D.add_dff d ~d:zero () in
    let r2 = D.add_dff d ~d:r () in
    D.add_output d ("y_" ^ name) (D.add_cell d C.Or2 [| r; r2 |])
  in
  block "a";
  block "b";
  d

let test_chaos_matrix () =
  let d = chaos_design () in
  let env = Pdat.Environment.unconstrained d in
  with_temp_dir (fun dir ->
      let scenarios =
        Pdat.Chaos_harness.matrix ~jobs:2 ~retries:2 ~dir ~design:d ~env ()
      in
      check_int "three scenarios ran" 3 (List.length scenarios);
      List.iter
        (fun s ->
          check
            (Printf.sprintf "chaos scenario %s: %s" s.Pdat.Chaos_harness.name
               s.Pdat.Chaos_harness.detail)
            true s.Pdat.Chaos_harness.ok)
        scenarios)

(* --- the flagship kernel at scale (mirrors the bench `parallel` target) -- *)

let test_ibex_parallel_identity () =
  let t = Cores.Ibex_like.build () in
  let d = t.Cores.Ibex_like.design in
  let env =
    Pdat.Environment.riscv_cutpoint d ~nets:(Cores.Ibex_like.cutpoint_nets t)
      Isa.Subset.rv32i
  in
  let model = env.Pdat.Environment.model in
  let assume = env.Pdat.Environment.assume in
  let rsim = { Engine.Rsim.default with Engine.Rsim.cycles = 400; runs = 2 } in
  let cands =
    Pdat.Property_library.mine ~config:rsim ~model ~assume
      ~stimulus:env.Pdat.Environment.stimulus ()
    |> Pdat.Property_library.restrict_to_original ~original:d
    |> Engine.Rsim.refine ~config:rsim ~assume model
         env.Pdat.Environment.stimulus
  in
  let opts =
    { Engine.Induction.k = 1; call_conflict_budget = 30_000;
      total_conflict_budget = -1; time_budget_s = infinity }
  in
  let p1, _ =
    Engine.Induction.prove_parallel ~options:opts ~jobs:1 ~assume model cands
  in
  check "proves a substantial set" true (List.length p1 > 50);
  let cache = Engine.Proof_cache.create () in
  let p4, s4 =
    Engine.Induction.prove_parallel ~options:opts ~jobs:4 ~cache ~assume model
      cands
  in
  check "jobs=4 proved set identical to jobs=1" true (same_set p1 p4);
  check "four workers ran" true (s4.Engine.Induction.workers >= 2);
  check_int "no workers lost" 0 s4.Engine.Induction.workers_failed;
  (* warm rerun: >= 95% of SAT calls skipped (here: all of them) *)
  let pw, sw =
    Engine.Induction.prove_parallel ~options:opts ~jobs:4 ~cache ~assume model
      cands
  in
  check "warm proved set identical" true (same_set p1 pw);
  check "warm run skips >= 95% of SAT calls" true
    (float_of_int sw.Engine.Induction.sat_calls
    <= 0.05 *. float_of_int (max 1 s4.Engine.Induction.sat_calls));
  (* --- the rv32i certificate audit (acceptance criterion) --------------
     every Rewire edit on the reduced Ibex must carry a certificate the
     auditor validates against the proved set, and a deliberately
     corrupted certificate (one wrong invariant id) must be rejected *)
  let rewired, cert = Pdat.Rewire.apply_certified d p1 in
  check "certificate covers the whole rewiring" true
    (Analysis.Certificate.length cert > 0);
  check "every edit cites a proved invariant" true
    (List.for_all
       (fun (e : Analysis.Certificate.edit) ->
         List.exists
           (Engine.Candidate.equal e.Analysis.Certificate.justification)
           p1)
       cert.Analysis.Certificate.edits);
  (match
     Analysis.Audit.run ~original:d ~rewired ~proved:p1 ~certificate:cert ()
   with
  | [] -> ()
  | diag :: _ ->
      Alcotest.failf "audit rejected the honest ibex certificate: %s"
        (Analysis.Diag.to_string diag));
  (* corrupt one justification to an invariant id nobody proved *)
  let corruptible (e : Analysis.Certificate.edit) =
    match e.Analysis.Certificate.justification with
    | Engine.Candidate.Const (n, b) ->
        let wrong = Engine.Candidate.Const (n, not b) in
        if List.exists (Engine.Candidate.equal wrong) p1 then None
        else Some { e with Analysis.Certificate.justification = wrong }
    | Engine.Candidate.Implies _ -> None
  in
  let corrupted = ref false in
  let edits' =
    List.map
      (fun e ->
        if !corrupted then e
        else
          match corruptible e with
          | Some e' ->
              corrupted := true;
              e'
          | None -> e)
      cert.Analysis.Certificate.edits
  in
  check "found an edit to corrupt" true !corrupted;
  let audit' =
    Analysis.Audit.run ~original:d ~rewired ~proved:p1
      ~certificate:{ Analysis.Certificate.edits = edits' } ()
  in
  check "corrupted certificate rejected" true (audit' <> []);
  check "rejection cites cert-unjustified" true
    (List.exists
       (fun (x : Analysis.Diag.t) -> x.Analysis.Diag.rule = "cert-unjustified")
       audit')

let () =
  Random.self_init ();
  Alcotest.run "prover_diff"
    [
      ( "differential",
        [
          Alcotest.test_case
            "incremental == snapshot == parallel == sieved, 50 netlists"
            `Slow test_differential;
          Alcotest.test_case "killed worker is retried, nothing lost"
            `Quick test_crash_retry;
          Alcotest.test_case "exhausted retries fall back to serial"
            `Quick test_crash_fallback;
          Alcotest.test_case "chaos kill of every worker still recovers"
            `Quick test_chaos_kill_every_worker;
          Alcotest.test_case "attribution identical under chaos kills" `Quick
            test_chaos_attribution_identity;
          Alcotest.test_case "checkpointed shards resume without workers"
            `Quick test_shard_checkpoint_resume;
          Alcotest.test_case "sieve + chaos worker kills still match serial"
            `Quick test_sieve_chaos_kill;
          Alcotest.test_case "sieve-on checkpoints resume sieve-on runs"
            `Quick test_sieve_checkpoint_resume;
        ] );
      ( "cache",
        [
          Alcotest.test_case "warm run is 100% hits, zero SAT" `Quick
            test_cache_warm_run;
          Alcotest.test_case "persists across cache instances" `Quick
            test_cache_disk_persistence;
          Alcotest.test_case "mutated netlist never reuses stale entries"
            `Quick test_cache_mutated_netlist_is_cold;
          Alcotest.test_case "corruption salvaged, quarantined, healed" `Quick
            test_cache_corrupt_files_are_cold;
          Alcotest.test_case "stale tmps swept, flush leaves none" `Quick
            test_cache_stale_tmp_cleanup;
          Alcotest.test_case "size budget evicts oldest scope files" `Quick
            test_cache_eviction;
        ] );
      ( "chaos",
        [
          Alcotest.test_case
            "matrix: worker kills, cache truncation, sigterm + resume" `Slow
            test_chaos_matrix;
        ] );
      ( "ibex",
        [
          Alcotest.test_case "jobs=4 identity + warm-cache skip" `Slow
            test_ibex_parallel_identity;
        ] );
    ]
