(* Unit and property tests for the netlist substrate: cells, the
   design store, topological scheduling, simulation, the Verilog
   backend and the obfuscator. *)

module D = Netlist.Design
module C = Netlist.Cell

let check = Alcotest.(check bool)

(* --- cells ----------------------------------------------------------- *)

(* Reference single-bit semantics, independent of the bit-parallel code. *)
let ref_eval kind ins =
  let to_b i = ins.(i) = 1 in
  let of_b b = if b then 1 else 0 in
  match kind with
  | C.Const0 -> 0
  | C.Const1 -> 1
  | C.Buf -> ins.(0)
  | C.Inv -> 1 - ins.(0)
  | C.And2 -> of_b (to_b 0 && to_b 1)
  | C.Or2 -> of_b (to_b 0 || to_b 1)
  | C.Nand2 -> of_b (not (to_b 0 && to_b 1))
  | C.Nor2 -> of_b (not (to_b 0 || to_b 1))
  | C.Xor2 -> of_b (to_b 0 <> to_b 1)
  | C.Xnor2 -> of_b (to_b 0 = to_b 1)
  | C.And3 -> of_b (to_b 0 && to_b 1 && to_b 2)
  | C.Or3 -> of_b (to_b 0 || to_b 1 || to_b 2)
  | C.Nand3 -> of_b (not (to_b 0 && to_b 1 && to_b 2))
  | C.Nor3 -> of_b (not (to_b 0 || to_b 1 || to_b 2))
  | C.And4 -> of_b (to_b 0 && to_b 1 && to_b 2 && to_b 3)
  | C.Or4 -> of_b (to_b 0 || to_b 1 || to_b 2 || to_b 3)
  | C.Mux2 -> if to_b 0 then ins.(2) else ins.(1)
  | C.Aoi21 -> of_b (not ((to_b 0 && to_b 1) || to_b 2))
  | C.Oai21 -> of_b (not ((to_b 0 || to_b 1) && to_b 2))
  | C.Dff -> invalid_arg "sequential"

let test_cell_truth_tables () =
  List.iter
    (fun kind ->
      if not (C.is_sequential kind) then begin
        let n = C.arity kind in
        for v = 0 to (1 lsl n) - 1 do
          let bits = Array.init n (fun i -> (v lsr i) land 1) in
          let lanes = Array.map (fun b -> if b = 1 then -1L else 0L) bits in
          let got = C.eval kind lanes in
          let expect = if ref_eval kind bits = 1 then -1L else 0L in
          if got <> expect then
            Alcotest.failf "%s mismatch on input %d" (C.name kind) v
        done
      end)
    C.all

let test_cell_names_roundtrip () =
  List.iter
    (fun kind ->
      match C.of_name (C.name kind) with
      | Some k -> check (C.name kind) true (k = kind)
      | None -> Alcotest.failf "of_name failed for %s" (C.name kind))
    C.all

(* --- design store ----------------------------------------------------- *)

let test_design_basics () =
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let b = D.add_input d "b" in
  let x = D.add_cell d C.And2 [| a; b |] in
  D.add_output d "x" x;
  check "validates" true (D.validate d = Ok ());
  Alcotest.(check int) "cells (2 ties + 1 gate)" 3 (D.num_cells d);
  check "find a" true (D.find_input d "a" = Some a);
  check "find x" true (D.find_output d "x" = Some x);
  check "driver of x" true (D.driver d x <> None);
  check "driver of a" true (D.driver d a = None)

let test_design_undriven_rejected () =
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let dangling = D.new_net d in
  let x = D.add_cell d C.And2 [| a; dangling |] in
  D.add_output d "x" x;
  check "invalid" true (match D.validate d with Error _ -> true | Ok () -> false)

let test_design_double_drive_rejected () =
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let x = D.add_cell d C.Inv [| a |] in
  check "double drive"
    true
    (try
       D.add_cell_out d C.Buf [| a |] ~out:x;
       false
     with Invalid_argument _ -> true)

let test_bus_helpers () =
  let d = D.create "t" in
  let nets = Array.init 4 (fun i -> D.add_input d (Printf.sprintf "data[%d]" i)) in
  let bus = D.input_bus d "data" in
  Alcotest.(check int) "bus width" 4 (Array.length bus);
  Array.iteri (fun i _n -> check "bus order" true (bus.(i) = nets.(i))) bus

let test_compact_removes_dead () =
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let live = D.add_cell d C.Inv [| a |] in
  let _dead = D.add_cell d C.Inv [| live |] in
  let _dead2 = D.add_cell d C.And2 [| a; a |] in
  D.add_output d "x" live;
  let d' = D.compact d in
  Alcotest.(check int) "only ties + live inv" 3 (D.num_cells d');
  check "still valid" true (D.validate d' = Ok ())

(* --- topo ------------------------------------------------------------ *)

let test_topo_orders_fanin_first () =
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let x = D.add_cell d C.Inv [| a |] in
  let y = D.add_cell d C.Inv [| x |] in
  D.add_output d "y" y;
  let s = Netlist.Topo.schedule d in
  let pos = Hashtbl.create 8 in
  Array.iteri (fun i ci -> Hashtbl.replace pos ci i) s.Netlist.Topo.order;
  D.iter_cells d (fun ci c ->
      if not (C.is_sequential c.D.kind) then
        Array.iter
          (fun n ->
            match D.driver d n with
            | Some ci' when not (C.is_sequential (D.cell d ci').D.kind) ->
                check "fanin scheduled before"
                  true
                  (Hashtbl.find pos ci' < Hashtbl.find pos ci)
            | Some _ | None -> ())
          c.D.ins)

let test_topo_detects_cycle () =
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let loop_net = D.new_net d in
  let x = D.add_cell d C.And2 [| a; loop_net |] in
  D.add_cell_out d C.Inv [| x |] ~out:loop_net;
  D.add_output d "x" x;
  check "cycle raised" true
    (try
       ignore (Netlist.Topo.schedule d);
       false
     with Netlist.Topo.Combinational_cycle _ -> true)

let test_topo_flop_breaks_cycle () =
  let d = D.create "t" in
  let q = D.new_net d in
  let nq = D.add_cell d C.Inv [| q |] in
  D.add_cell_out d C.Dff [| nq |] ~out:q;
  D.add_output d "q" q;
  ignore (Netlist.Topo.schedule d);
  check "ok" true true

let test_topo_self_loop_register () =
  (* q -> D of the same flop, no combinational logic at all: the flop
     output is a source, so the schedule must succeed *)
  let d = D.create "t" in
  let q = D.new_net d in
  D.add_cell_out d C.Dff [| q |] ~out:q;
  D.add_output d "q" q;
  let s = Netlist.Topo.schedule d in
  Alcotest.(check int) "one flop" 1 (Array.length s.Netlist.Topo.flops);
  (* the combinational order holds exactly the two rail ties *)
  Alcotest.(check int) "ties only" 2 (Array.length s.Netlist.Topo.order);
  Alcotest.(check int) "flop output is a source" 0
    s.Netlist.Topo.level.(q)

let test_topo_empty_design () =
  let d = D.create "empty" in
  let s = Netlist.Topo.schedule d in
  Alcotest.(check int) "rail ties scheduled" 2
    (Array.length s.Netlist.Topo.order);
  Alcotest.(check int) "no flops" 0 (Array.length s.Netlist.Topo.flops);
  Alcotest.(check int) "constants sit at level 0" 0
    (Netlist.Topo.max_level s)

(* --- sim -------------------------------------------------------------- *)

let test_sim_toggle_flop () =
  (* q' = !q toggles every cycle from its reset value *)
  let d = D.create "t" in
  let q = D.new_net d in
  let nq = D.add_cell d C.Inv [| q |] in
  D.add_cell_out d ~init:false C.Dff [| nq |] ~out:q;
  D.add_output d "q" q;
  let sim = Netlist.Sim64.create d in
  let values = ref [] in
  for _ = 1 to 4 do
    Netlist.Sim64.eval sim;
    values := Netlist.Sim64.read sim q :: !values;
    Netlist.Sim64.step sim
  done;
  check "toggles" true (List.rev !values = [ 0L; -1L; 0L; -1L ])

let test_sim_adder () =
  (* 4-bit ripple-carry adder built from gates; checked exhaustively. *)
  let d = D.create "adder" in
  let a = Array.init 4 (fun i -> D.add_input d (Printf.sprintf "a[%d]" i)) in
  let b = Array.init 4 (fun i -> D.add_input d (Printf.sprintf "b[%d]" i)) in
  let carry = ref D.net_false in
  let sum =
    Array.init 4 (fun i ->
        let axb = D.add_cell d C.Xor2 [| a.(i); b.(i) |] in
        let s = D.add_cell d C.Xor2 [| axb; !carry |] in
        let c1 = D.add_cell d C.And2 [| a.(i); b.(i) |] in
        let c2 = D.add_cell d C.And2 [| axb; !carry |] in
        carry := D.add_cell d C.Or2 [| c1; c2 |];
        s)
  in
  Array.iteri (fun i s -> D.add_output d (Printf.sprintf "s[%d]" i) s) sum;
  D.add_output d "cout" !carry;
  let sim = Netlist.Sim64.create d in
  for x = 0 to 15 do
    for y = 0 to 15 do
      Netlist.Sim64.set_bus sim a x;
      Netlist.Sim64.set_bus sim b y;
      Netlist.Sim64.eval sim;
      let s = Netlist.Sim64.read_bus sim sum in
      let cout = if Netlist.Sim64.read sim !carry = 0L then 0 else 1 in
      Alcotest.(check int) "sum" ((x + y) land 15) s;
      Alcotest.(check int) "cout" ((x + y) lsr 4) cout
    done
  done

(* --- equivalence harness used by verilog/obfuscate tests -------------- *)

let random_stimulus rng nets = List.map (fun n -> (n, Random.State.int64 rng Int64.max_int)) nets

let sequentially_equivalent ?(cycles = 20) d1 d2 =
  let rng = Random.State.make [| 99 |] in
  let in1 = D.inputs d1 and in2 = D.inputs d2 in
  if List.map fst in1 <> List.map fst in2 then false
  else begin
    let s1 = Netlist.Sim64.create d1 and s2 = Netlist.Sim64.create d2 in
    let ok = ref true in
    for _ = 1 to cycles do
      let stim = random_stimulus rng (List.map fst in1) in
      List.iter (fun (nm, v) -> Netlist.Sim64.set_input_name s1 nm v) stim;
      List.iter (fun (nm, v) -> Netlist.Sim64.set_input_name s2 nm v) stim;
      Netlist.Sim64.eval s1;
      Netlist.Sim64.eval s2;
      List.iter2
        (fun (nm, n1) (_, n2) ->
          if Netlist.Sim64.read s1 n1 <> Netlist.Sim64.read s2 n2 then begin
            ok := false;
            ignore nm
          end)
        (D.outputs d1) (D.outputs d2);
      Netlist.Sim64.step s1;
      Netlist.Sim64.step s2
    done;
    !ok
  end

let test_verilog_roundtrip () =
  for seed = 1 to 10 do
    let d = Netlist.Generate.random ~seed () in
    let src = Netlist.Verilog.to_string d in
    let d' = Netlist.Verilog.of_string src in
    check (Printf.sprintf "seed %d equivalent" seed) true
      (sequentially_equivalent d d')
  done

let test_verilog_rejects_garbage () =
  check "garbage rejected" true
    (try
       ignore (Netlist.Verilog.of_string "module m (input a;");
       false
     with Netlist.Verilog.Parse_error _ -> true);
  check "unknown cell rejected" true
    (try
       ignore
         (Netlist.Verilog.of_string
            "module m (input a, output z);\n FROB_X1 u1 (.A(a), .Z(z));\nendmodule");
       false
     with Netlist.Verilog.Parse_error _ -> true)

let test_obfuscate_equivalent () =
  for seed = 1 to 10 do
    let d = Netlist.Generate.random ~seed () in
    let d' = Netlist.Obfuscate.run d in
    check (Printf.sprintf "seed %d equivalent" seed) true
      (sequentially_equivalent d d')
  done

let test_obfuscate_nand_only () =
  let d = Netlist.Generate.random ~seed:3 () in
  let d' = Netlist.Obfuscate.nand_remap d in
  D.iter_cells d' (fun _ c ->
      match c.D.kind with
      | C.Nand2 | C.Inv | C.Buf | C.Dff | C.Const0 | C.Const1 -> ()
      | k -> Alcotest.failf "unexpected cell kind %s after remap" (C.name k))

(* exhaustive check of each single-gate remap recipe *)
let test_obfuscate_per_gate () =
  List.iter
    (fun kind ->
      if (not (C.is_sequential kind)) && C.arity kind > 0 then begin
        let d = D.create "g" in
        let ins =
          Array.init (C.arity kind) (fun i ->
              D.add_input d (Printf.sprintf "i[%d]" i))
        in
        let out = D.add_cell d kind ins in
        D.add_output d "o" out;
        let d' = Netlist.Obfuscate.nand_remap d in
        let sim = Netlist.Sim64.create d' in
        let obus = D.output_bus d' "o" in
        for v = 0 to (1 lsl C.arity kind) - 1 do
          let bits = Array.init (C.arity kind) (fun i -> (v lsr i) land 1) in
          Netlist.Sim64.set_bus sim (D.input_bus d' "i") v;
          Netlist.Sim64.eval sim;
          let got = Netlist.Sim64.read_bus sim obus in
          Alcotest.(check int)
            (Printf.sprintf "%s input %d" (C.name kind) v)
            (ref_eval kind bits) got
        done
      end)
    C.all

let test_stats () =
  let d = D.create "t" in
  let a = D.add_input d "a" in
  let x = D.add_cell d C.Inv [| a |] in
  let q = D.add_dff d ~d:x () in
  let b = D.add_cell d C.Buf [| q |] in
  D.add_output d "q" b;
  let st = Netlist.Stats.of_design d in
  Alcotest.(check int) "gates" 1 st.Netlist.Stats.gates;
  Alcotest.(check int) "buffers" 1 st.Netlist.Stats.buffers;
  Alcotest.(check int) "flops" 1 st.Netlist.Stats.flops;
  check "area positive" true (st.Netlist.Stats.area > 0.0);
  check "delta pct" true
    (abs_float (Netlist.Stats.delta_pct ~baseline:200.0 150.0 -. 25.0) < 1e-9)

(* --- qcheck properties ------------------------------------------------ *)

let qcheck_compact_preserves_behaviour =
  QCheck.Test.make ~name:"compact preserves sequential behaviour" ~count:30
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let d = Netlist.Generate.random ~seed () in
      sequentially_equivalent d (D.compact d))

let qcheck_verilog_roundtrip =
  QCheck.Test.make ~name:"verilog round-trip equivalence" ~count:30
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let d = Netlist.Generate.random ~seed () in
      sequentially_equivalent d (Netlist.Verilog.of_string (Netlist.Verilog.to_string d)))

let qcheck_obfuscate =
  QCheck.Test.make ~name:"obfuscation is sequence-equivalent" ~count:30
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let d = Netlist.Generate.random ~seed () in
      sequentially_equivalent d (Netlist.Obfuscate.run ~seed d))

let qcheck_generate_valid =
  QCheck.Test.make ~name:"generated designs validate" ~count:50
    QCheck.(int_range 1 100_000)
    (fun seed -> D.validate (Netlist.Generate.random ~seed ()) = Ok ())

let () =
  Alcotest.run "netlist"
    [
      ( "cell",
        [
          Alcotest.test_case "truth tables" `Quick test_cell_truth_tables;
          Alcotest.test_case "name roundtrip" `Quick test_cell_names_roundtrip;
        ] );
      ( "design",
        [
          Alcotest.test_case "basics" `Quick test_design_basics;
          Alcotest.test_case "undriven rejected" `Quick test_design_undriven_rejected;
          Alcotest.test_case "double drive rejected" `Quick
            test_design_double_drive_rejected;
          Alcotest.test_case "bus helpers" `Quick test_bus_helpers;
          Alcotest.test_case "compact removes dead" `Quick test_compact_removes_dead;
        ] );
      ( "topo",
        [
          Alcotest.test_case "fanin first" `Quick test_topo_orders_fanin_first;
          Alcotest.test_case "cycle detection" `Quick test_topo_detects_cycle;
          Alcotest.test_case "flop breaks cycle" `Quick test_topo_flop_breaks_cycle;
          Alcotest.test_case "self-loop register" `Quick
            test_topo_self_loop_register;
          Alcotest.test_case "empty design" `Quick test_topo_empty_design;
        ] );
      ( "sim",
        [
          Alcotest.test_case "toggle flop" `Quick test_sim_toggle_flop;
          Alcotest.test_case "4-bit adder exhaustive" `Quick test_sim_adder;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "roundtrip" `Quick test_verilog_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_verilog_rejects_garbage;
        ] );
      ( "obfuscate",
        [
          Alcotest.test_case "equivalent" `Quick test_obfuscate_equivalent;
          Alcotest.test_case "nand only" `Quick test_obfuscate_nand_only;
          Alcotest.test_case "per-gate recipes" `Quick test_obfuscate_per_gate;
        ] );
      ( "stats", [ Alcotest.test_case "counting" `Quick test_stats ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_compact_preserves_behaviour;
            qcheck_verilog_roundtrip;
            qcheck_obfuscate;
            qcheck_generate_valid;
          ] );
    ]
