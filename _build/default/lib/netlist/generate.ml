type config = {
  n_inputs : int;
  n_gates : int;
  n_flops : int;
  n_outputs : int;
}

let default = { n_inputs = 8; n_gates = 60; n_flops = 6; n_outputs = 4 }

let comb_kinds =
  [| Cell.Buf; Cell.Inv; Cell.And2; Cell.Or2; Cell.Nand2; Cell.Nor2;
     Cell.Xor2; Cell.Xnor2; Cell.And3; Cell.Or3; Cell.Nand3; Cell.Nor3;
     Cell.And4; Cell.Or4; Cell.Mux2; Cell.Aoi21; Cell.Oai21 |]

let random ?(seed = 42) ?(config = default) () =
  let rng = Random.State.make [| seed |] in
  let d = Design.create (Printf.sprintf "rand%d" seed) in
  let pool = Vec.create ~dummy:(-1) () in
  Vec.push pool Design.net_false;
  Vec.push pool Design.net_true;
  for i = 0 to config.n_inputs - 1 do
    Vec.push pool (Design.add_input d (Printf.sprintf "in[%d]" i))
  done;
  (* Flop outputs join the pool up front so combinational logic can read
     state; their D pins are connected at the end. *)
  let flop_outs =
    Array.init config.n_flops (fun _ ->
        let q = Design.new_net d in
        Vec.push pool q;
        q)
  in
  let pick () = Vec.get pool (Random.State.int rng (Vec.length pool)) in
  for _ = 1 to config.n_gates do
    let kind = comb_kinds.(Random.State.int rng (Array.length comb_kinds)) in
    let ins = Array.init (Cell.arity kind) (fun _ -> pick ()) in
    Vec.push pool (Design.add_cell d kind ins)
  done;
  Array.iter
    (fun q ->
      Design.add_cell_out d ~init:(Random.State.bool rng) Cell.Dff
        [| pick () |] ~out:q)
    flop_outs;
  for i = 0 to config.n_outputs - 1 do
    Design.add_output d (Printf.sprintf "out[%d]" i) (pick ())
  done;
  d
