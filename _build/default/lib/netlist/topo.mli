(** Topological ordering of the combinational portion of a design.

    Sources are constants, primary inputs and flip-flop outputs; an
    ordering exists iff the combinational logic is acyclic, which every
    valid synchronous netlist must satisfy. *)

type schedule = {
  order : int array;
      (** Combinational cell ids in dependency order (fanin first). *)
  level : int array;
      (** [level.(net)]: 0 for sources, else 1 + max over fanin nets. *)
  flops : int array;  (** All [Dff] cell ids. *)
}

exception Combinational_cycle of Design.net list
(** Carries a witness cycle through net ids. *)

val schedule : Design.t -> schedule
(** @raise Combinational_cycle if the combinational logic is cyclic. *)

val max_level : schedule -> int
