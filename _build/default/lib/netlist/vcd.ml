type signal = {
  ident : string;
  nets : Design.net array;
  mutable last : string option;
}

type t = {
  sim : Sim64.t;
  oc : out_channel;
  signals : signal list;
  mutable time : int;
  mutable closed : bool;
}

let ident_of i =
  (* printable VCD identifier codes: '!' .. '~' *)
  let base = 94 in
  let rec go i acc =
    let c = Char.chr (33 + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let create sim ~path ~nets =
  let oc = open_out path in
  let signals =
    List.mapi
      (fun i (label, bus) ->
        ignore label;
        { ident = ident_of i; nets = bus; last = None })
      nets
  in
  output_string oc "$date today $end\n$version pdat Sim64 $end\n";
  output_string oc "$timescale 1ns $end\n$scope module top $end\n";
  List.iteri
    (fun i (label, bus) ->
      Printf.fprintf oc "$var wire %d %s %s $end\n" (Array.length bus)
        (ident_of i) label)
    nets;
  output_string oc "$upscope $end\n$enddefinitions $end\n";
  { sim; oc; signals; time = 0; closed = false }

let value_string t s =
  let bits =
    Array.to_list s.nets
    |> List.rev_map (fun n -> if Sim64.read t.sim n = 0L then '0' else '1')
  in
  String.init (List.length bits) (List.nth bits)

let sample t =
  if t.closed then invalid_arg "Vcd.sample: closed";
  Printf.fprintf t.oc "#%d\n" t.time;
  List.iter
    (fun s ->
      let v = value_string t s in
      if s.last <> Some v then begin
        s.last <- Some v;
        if Array.length s.nets = 1 then
          Printf.fprintf t.oc "%s%s\n" v s.ident
        else Printf.fprintf t.oc "b%s %s\n" v s.ident
      end)
    t.signals;
  t.time <- t.time + 1

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out t.oc
  end
