type schedule = {
  order : int array;
  level : int array;
  flops : int array;
}

exception Combinational_cycle of Design.net list

(* Depth-first post-order over combinational cells.  DFS colors:
   0 = unvisited, 1 = on stack, 2 = done. *)
let schedule d =
  let n_cells = Design.num_cells d in
  let n_nets = Design.num_nets d in
  let color = Array.make n_cells 0 in
  let level = Array.make n_nets 0 in
  let order = Vec.create ~dummy:(-1) () in
  let flops = Vec.create ~dummy:(-1) () in
  let rec visit_cell path ci =
    let c = Design.cell d ci in
    if Cell.is_sequential c.kind then ()
    else
      match color.(ci) with
      | 2 -> ()
      | 1 -> raise (Combinational_cycle (List.rev (c.out :: path)))
      | _ ->
          color.(ci) <- 1;
          Array.iter (visit_net (c.out :: path)) c.ins;
          color.(ci) <- 2;
          let lvl =
            Array.fold_left (fun acc n -> max acc (level.(n) + 1)) 0 c.ins
          in
          level.(c.out) <- lvl;
          Vec.push order ci
  and visit_net path n =
    match Design.driver d n with
    | None -> ()
    | Some ci -> visit_cell path ci
  in
  Design.iter_cells d (fun ci c ->
      if Cell.is_sequential c.kind then Vec.push flops ci);
  Design.iter_cells d (fun ci _ -> visit_cell [] ci);
  (* Flip-flop D pins hang off combinational nets already scheduled. *)
  { order = Vec.to_array order; level; flops = Vec.to_array flops }

let max_level s = Array.fold_left max 0 s.level
