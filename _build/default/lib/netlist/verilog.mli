(** Structural-Verilog backend: how firm IP enters and leaves the tool.

    The supported subset is a flat gate-level module: a port list with
    directions, [wire] declarations, and standard-cell instances using
    named port connections.  Flip-flop reset values round-trip through
    an [(* init = 0|1 *)] attribute.  An implicit [CLK] input port is
    emitted for sequential designs and ignored when reading. *)

val to_string : Design.t -> string

val write_file : Design.t -> string -> unit

exception Parse_error of string

val of_string : ?name:string -> string -> Design.t
(** @raise Parse_error on malformed input or unknown cell names. *)

val read_file : string -> Design.t
