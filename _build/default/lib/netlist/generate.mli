(** Seeded random netlist generation for tests and fuzzing.

    Produces valid, acyclic, single-clock designs: a layer of primary
    inputs, a random DAG of combinational cells, a configurable number
    of flip-flops (whose D pins close feedback through the DAG), and a
    sample of nets exported as outputs. *)

type config = {
  n_inputs : int;
  n_gates : int;
  n_flops : int;
  n_outputs : int;
}

val default : config

val random : ?seed:int -> ?config:config -> unit -> Design.t
