lib/netlist/obfuscate.mli: Design
