lib/netlist/generate.ml: Array Cell Design Printf Random Vec
