lib/netlist/verilog.mli: Design
