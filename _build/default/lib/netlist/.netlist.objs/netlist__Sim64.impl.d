lib/netlist/sim64.ml: Array Cell Design Int64 List Printf Topo
