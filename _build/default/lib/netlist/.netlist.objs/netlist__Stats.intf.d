lib/netlist/stats.mli: Cell Design Format
