lib/netlist/obfuscate.ml: Array Cell Design Hashtbl List Printf Random
