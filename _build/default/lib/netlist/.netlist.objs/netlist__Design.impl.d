lib/netlist/design.ml: Array Cell Hashtbl List Printf String Vec
