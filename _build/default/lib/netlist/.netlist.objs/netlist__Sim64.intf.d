lib/netlist/sim64.mli: Design
