lib/netlist/stats.ml: Cell Design Format Hashtbl List Option
