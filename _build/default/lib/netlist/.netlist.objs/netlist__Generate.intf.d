lib/netlist/generate.mli: Design
