lib/netlist/topo.mli: Design
