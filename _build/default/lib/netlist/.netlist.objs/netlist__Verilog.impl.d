lib/netlist/verilog.ml: Array Buffer Cell Design Fun Hashtbl List Option Printf String
