lib/netlist/vcd.mli: Design Sim64
