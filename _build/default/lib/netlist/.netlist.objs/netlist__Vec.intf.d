lib/netlist/vec.mli:
