lib/netlist/topo.ml: Array Cell Design List Vec
