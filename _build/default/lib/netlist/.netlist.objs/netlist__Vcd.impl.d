lib/netlist/vcd.ml: Array Char Design List Printf Sim64 String
