lib/netlist/cell.ml: Array Format Int64 List Printf String
