(** Value-change-dump (VCD) tracing for the 64-lane simulator.

    Records lane 0 of the selected nets each clock cycle, producing a
    standard VCD file loadable in GTKWave & co. — indispensable when
    debugging core models.  Nets are labelled with their debug names. *)

type t

val create : Sim64.t -> path:string -> nets:(string * Design.net array) list -> t
(** [nets] are (label, LSB-first bus) pairs; 1-bit buses render as
    scalars.  Writes the VCD header immediately. *)

val sample : t -> unit
(** Record the current values (call once per cycle, after [eval]). *)

val close : t -> unit
