(** Standard-cell vocabulary of the gate-level netlist.

    The cell kinds mirror a small physical standard-cell library in the
    NANGATE-45nm style: simple static CMOS gates, a 2:1 mux, two
    complex gates and a D flip-flop.  Every combinational cell has a
    single output; [Dff] is the only sequential element.  Pin order for
    [Mux2] is [| sel; a; b |] with output [a] when [sel = 0].  Pin order
    for [Aoi21]/[Oai21] is [| a1; a2; b |]. *)

type kind =
  | Const0
  | Const1
  | Buf
  | Inv
  | And2
  | Or2
  | Nand2
  | Nor2
  | Xor2
  | Xnor2
  | And3
  | Or3
  | Nand3
  | Nor3
  | And4
  | Or4
  | Mux2
  | Aoi21  (** ZN = !((A1 & A2) | B) *)
  | Oai21  (** ZN = !((A1 | A2) & B) *)
  | Dff    (** Q = D delayed one clock; reset value carried by the cell *)

val arity : kind -> int
(** Number of input pins. *)

val name : kind -> string
(** Library cell name, e.g. ["AND2_X1"]. *)

val of_name : string -> kind option
(** Inverse of {!name}; also accepts lower-case spellings. *)

val area : kind -> float
(** Cell area in um^2, NANGATE45-like. *)

val is_sequential : kind -> bool

val eval : kind -> int64 array -> int64
(** Bit-parallel evaluation of a combinational cell over 64 lanes; each
    bit position of the operands is an independent simulation lane.
    @raise Invalid_argument on [Dff] (sequential update is the
    simulator's job) or on an input array of the wrong length. *)

val input_pin_name : kind -> int -> string
(** Pin name used by the Verilog backend: ["A1"], ["A2"], ["S"], ["D"]... *)

val output_pin_name : kind -> string

val all : kind list
(** Every kind, for exhaustive table-driven tests. *)

val pp : Format.formatter -> kind -> unit
