(* NAND/INV decompositions of each library cell.  Correctness of each
   recipe is covered by an exhaustive equivalence test per cell kind. *)

let nand_remap d =
  let d' = Design.create (Design.name d) in
  let map = Array.make (Design.num_nets d) (-1) in
  map.(Design.net_false) <- Design.net_false;
  map.(Design.net_true) <- Design.net_true;
  List.iter (fun (nm, n) -> map.(n) <- Design.add_input d' nm) (Design.inputs d);
  (* Flip-flop outputs are feedback points: allocate them up front. *)
  Design.iter_cells d (fun _ c ->
      if c.kind = Cell.Dff && map.(c.out) < 0 then map.(c.out) <- Design.new_net d');
  let mapped n =
    if map.(n) >= 0 then map.(n)
    else begin
      let n' = Design.new_net d' in
      map.(n) <- n';
      n'
    end
  in
  let nand a b = Design.add_cell d' Cell.Nand2 [| a; b |] in
  let inv a = Design.add_cell d' Cell.Inv [| a |] in
  let and_ a b = inv (nand a b) in
  let or_ a b = nand (inv a) (inv b) in
  let drive out n = Design.add_cell_out d' Cell.Buf [| n |] ~out in
  Design.iter_cells d (fun _ c ->
      let out () = mapped c.out in
      let i k = mapped c.ins.(k) in
      match c.kind with
      | Cell.Const0 | Cell.Const1 -> ()
      | Cell.Dff ->
          Design.add_cell_out d' ~init:c.init Cell.Dff [| i 0 |] ~out:(out ())
      | Cell.Buf -> drive (out ()) (i 0)
      | Cell.Inv -> Design.add_cell_out d' Cell.Inv [| i 0 |] ~out:(out ())
      | Cell.And2 -> drive (out ()) (and_ (i 0) (i 1))
      | Cell.Or2 -> drive (out ()) (or_ (i 0) (i 1))
      | Cell.Nand2 -> Design.add_cell_out d' Cell.Nand2 [| i 0; i 1 |] ~out:(out ())
      | Cell.Nor2 -> drive (out ()) (inv (or_ (i 0) (i 1)))
      | Cell.Xor2 ->
          let a = i 0 and b = i 1 in
          let m = nand a b in
          drive (out ()) (nand (nand a m) (nand b m))
      | Cell.Xnor2 ->
          let a = i 0 and b = i 1 in
          let m = nand a b in
          drive (out ()) (inv (nand (nand a m) (nand b m)))
      | Cell.And3 -> drive (out ()) (and_ (and_ (i 0) (i 1)) (i 2))
      | Cell.Or3 -> drive (out ()) (or_ (or_ (i 0) (i 1)) (i 2))
      | Cell.Nand3 -> drive (out ()) (inv (and_ (and_ (i 0) (i 1)) (i 2)))
      | Cell.Nor3 -> drive (out ()) (inv (or_ (or_ (i 0) (i 1)) (i 2)))
      | Cell.And4 -> drive (out ()) (and_ (and_ (i 0) (i 1)) (and_ (i 2) (i 3)))
      | Cell.Or4 -> drive (out ()) (or_ (or_ (i 0) (i 1)) (or_ (i 2) (i 3)))
      | Cell.Mux2 ->
          let s = i 0 and a = i 1 and b = i 2 in
          drive (out ()) (nand (nand a (inv s)) (nand b s))
      | Cell.Aoi21 -> drive (out ()) (inv (or_ (and_ (i 0) (i 1)) (i 2)))
      | Cell.Oai21 -> drive (out ()) (inv (and_ (or_ (i 0) (i 1)) (i 2))));
  List.iter (fun (nm, n) -> Design.add_output d' nm (mapped n)) (Design.outputs d);
  d'

let run ?(seed = 0x0bf5) d =
  let rng = Random.State.make [| seed |] in
  let d' = nand_remap d in
  (* Scrub internal names: give every non-port net an opaque label. *)
  let ports = Hashtbl.create 64 in
  List.iter (fun (nm, n) -> Hashtbl.replace ports n nm) (Design.inputs d');
  for n = 0 to Design.num_nets d' - 1 do
    if not (Hashtbl.mem ports n) then
      Design.set_net_name d' n
        (Printf.sprintf "g%08x" (Random.State.bits rng land 0xFFFFFFF))
  done;
  d'
