type kind =
  | Const0
  | Const1
  | Buf
  | Inv
  | And2
  | Or2
  | Nand2
  | Nor2
  | Xor2
  | Xnor2
  | And3
  | Or3
  | Nand3
  | Nor3
  | And4
  | Or4
  | Mux2
  | Aoi21
  | Oai21
  | Dff

let arity = function
  | Const0 | Const1 -> 0
  | Buf | Inv | Dff -> 1
  | And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2 -> 2
  | And3 | Or3 | Nand3 | Nor3 | Mux2 | Aoi21 | Oai21 -> 3
  | And4 | Or4 -> 4

let name = function
  | Const0 -> "TIELO_X1"
  | Const1 -> "TIEHI_X1"
  | Buf -> "BUF_X1"
  | Inv -> "INV_X1"
  | And2 -> "AND2_X1"
  | Or2 -> "OR2_X1"
  | Nand2 -> "NAND2_X1"
  | Nor2 -> "NOR2_X1"
  | Xor2 -> "XOR2_X1"
  | Xnor2 -> "XNOR2_X1"
  | And3 -> "AND3_X1"
  | Or3 -> "OR3_X1"
  | Nand3 -> "NAND3_X1"
  | Nor3 -> "NOR3_X1"
  | And4 -> "AND4_X1"
  | Or4 -> "OR4_X1"
  | Mux2 -> "MUX2_X1"
  | Aoi21 -> "AOI21_X1"
  | Oai21 -> "OAI21_X1"
  | Dff -> "DFF_X1"

let all =
  [ Const0; Const1; Buf; Inv; And2; Or2; Nand2; Nor2; Xor2; Xnor2;
    And3; Or3; Nand3; Nor3; And4; Or4; Mux2; Aoi21; Oai21; Dff ]

let of_name s =
  let s = String.uppercase_ascii s in
  List.find_opt (fun k -> name k = s) all

(* Areas in um^2, matching the relative weights of the NANGATE 45nm open
   cell library (X1 drive).  Absolute values only matter up to a scale
   factor: the evaluation reports area ratios between design variants. *)
let area = function
  | Const0 | Const1 -> 0.266
  | Inv -> 0.532
  | Buf -> 0.798
  | Nand2 | Nor2 -> 0.798
  | And2 | Or2 -> 1.064
  | Nand3 | Nor3 -> 1.064
  | And3 | Or3 -> 1.330
  | And4 | Or4 -> 1.596
  | Aoi21 | Oai21 -> 1.064
  | Xor2 | Xnor2 -> 1.596
  | Mux2 -> 1.862
  | Dff -> 4.522

let is_sequential = function
  | Dff -> true
  | Const0 | Const1 | Buf | Inv | And2 | Or2 | Nand2 | Nor2 | Xor2 | Xnor2
  | And3 | Or3 | Nand3 | Nor3 | And4 | Or4 | Mux2 | Aoi21 | Oai21 -> false

let bad_arity k n =
  invalid_arg
    (Printf.sprintf "Cell.eval %s: expected %d inputs, got %d" (name k)
       (arity k) n)

let eval k (ins : int64 array) : int64 =
  let n = Array.length ins in
  if n <> arity k then bad_arity k n;
  let ( &: ) = Int64.logand
  and ( |: ) = Int64.logor
  and ( ^: ) = Int64.logxor
  and notb = Int64.lognot in
  match k with
  | Const0 -> 0L
  | Const1 -> -1L
  | Buf -> ins.(0)
  | Inv -> notb ins.(0)
  | And2 -> ins.(0) &: ins.(1)
  | Or2 -> ins.(0) |: ins.(1)
  | Nand2 -> notb (ins.(0) &: ins.(1))
  | Nor2 -> notb (ins.(0) |: ins.(1))
  | Xor2 -> ins.(0) ^: ins.(1)
  | Xnor2 -> notb (ins.(0) ^: ins.(1))
  | And3 -> ins.(0) &: ins.(1) &: ins.(2)
  | Or3 -> ins.(0) |: ins.(1) |: ins.(2)
  | Nand3 -> notb (ins.(0) &: ins.(1) &: ins.(2))
  | Nor3 -> notb (ins.(0) |: ins.(1) |: ins.(2))
  | And4 -> ins.(0) &: ins.(1) &: ins.(2) &: ins.(3)
  | Or4 -> ins.(0) |: ins.(1) |: ins.(2) |: ins.(3)
  | Mux2 ->
      let s = ins.(0) in
      (notb s &: ins.(1)) |: (s &: ins.(2))
  | Aoi21 -> notb ((ins.(0) &: ins.(1)) |: ins.(2))
  | Oai21 -> notb ((ins.(0) |: ins.(1)) &: ins.(2))
  | Dff -> invalid_arg "Cell.eval: Dff is sequential"

let input_pin_name k i =
  match k, i with
  | Mux2, 0 -> "S"
  | Mux2, 1 -> "A"
  | Mux2, 2 -> "B"
  | (Aoi21 | Oai21), 0 -> "A1"
  | (Aoi21 | Oai21), 1 -> "A2"
  | (Aoi21 | Oai21), 2 -> "B"
  | Dff, 0 -> "D"
  | (Buf | Inv), 0 -> "A"
  | _, i when i < arity k -> Printf.sprintf "A%d" (i + 1)
  | _ -> invalid_arg "Cell.input_pin_name"

let output_pin_name = function
  | Dff -> "Q"
  | Buf | And2 | Or2 | And3 | Or3 | And4 | Or4 | Mux2 | Const1 -> "Z"
  | Inv | Nand2 | Nor2 | Xor2 | Xnor2 | Nand3 | Nor3 | Aoi21 | Oai21 | Const0
    -> "ZN"

let pp fmt k = Format.pp_print_string fmt (name k)
