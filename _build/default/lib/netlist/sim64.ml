type t = {
  d : Design.t;
  sched : Topo.schedule;
  values : int64 array;
  is_input : bool array;
}

let design t = t.d

let apply_reset t =
  Array.fill t.values 0 (Array.length t.values) 0L;
  t.values.(Design.net_true) <- -1L;
  Array.iter
    (fun ci ->
      let c = Design.cell t.d ci in
      t.values.(c.out) <- (if c.init then -1L else 0L))
    t.sched.Topo.flops

let create d =
  let sched = Topo.schedule d in
  let is_input = Array.make (Design.num_nets d) false in
  List.iter (fun (_, n) -> is_input.(n) <- true) (Design.inputs d);
  let t = { d; sched; values = Array.make (Design.num_nets d) 0L; is_input } in
  apply_reset t;
  t

let reset = apply_reset

let load_state t f =
  Array.iter
    (fun ci ->
      let c = Design.cell t.d ci in
      t.values.(c.out) <- f c.out)
    t.sched.Topo.flops

let set_input t n v =
  if n < 0 || n >= Array.length t.is_input || not t.is_input.(n) then
    invalid_arg "Sim64.set_input: not a primary input";
  t.values.(n) <- v

let set_input_name t nm v =
  match Design.find_input t.d nm with
  | Some n -> set_input t n v
  | None -> invalid_arg (Printf.sprintf "Sim64.set_input_name: no input %s" nm)

let eval t =
  let values = t.values in
  Array.iter
    (fun ci ->
      let c = Design.cell t.d ci in
      let ins = Array.map (fun n -> Array.unsafe_get values n) c.ins in
      Array.unsafe_set values c.out (Cell.eval c.kind ins))
    t.sched.Topo.order

let step t =
  let values = t.values in
  (* Two passes so that flop-to-flop chains see pre-edge values. *)
  let next =
    Array.map
      (fun ci -> values.((Design.cell t.d ci).ins.(0)))
      t.sched.Topo.flops
  in
  Array.iteri
    (fun i ci -> values.((Design.cell t.d ci).out) <- next.(i))
    t.sched.Topo.flops

let read t n = t.values.(n)

let set_bus t nets v =
  Array.iteri
    (fun i n -> set_input t n (if (v lsr i) land 1 = 1 then -1L else 0L))
    nets

let read_bus_lane t nets ~lane =
  let acc = ref 0 in
  Array.iteri
    (fun i n ->
      if Int64.logand (Int64.shift_right_logical t.values.(n) lane) 1L = 1L
      then acc := !acc lor (1 lsl i))
    nets;
  !acc

let read_bus t nets = read_bus_lane t nets ~lane:0
