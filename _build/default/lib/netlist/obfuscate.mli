(** Netlist obfuscation, modelling how the paper's Cortex-M0 arrives:
    a functionally identical design whose structure and names reveal
    nothing about the microarchitecture.

    The pass (1) remaps every combinational gate onto a NAND2/INV
    basis, (2) erases all internal net names and replaces them with
    hash-like identifiers, and (3) shuffles cell order.  Primary port
    names are preserved (the IP must still be integrable), which is
    exactly why only port-based environment constraints remain
    possible afterwards. *)

val run : ?seed:int -> Design.t -> Design.t
(** The result is sequentially equivalent to the input. *)

val nand_remap : Design.t -> Design.t
(** Just the technology remap onto [Nand2]/[Inv]/[Buf]/[Dff]. *)
