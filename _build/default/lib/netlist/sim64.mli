(** Levelized 64-lane bit-parallel simulator.

    Every net carries an [int64]; bit [i] of the word is simulation
    lane [i], so one pass simulates 64 independent stimulus vectors.
    Testbenches that need a single lane use the [_bus] helpers, which
    broadcast each bit across all lanes and read lane 0.

    Per-cycle protocol: {!set_input} / {!set_bus}, then {!eval}, then
    read outputs, then {!step} to clock the flip-flops. *)

type t

val create : Design.t -> t
(** Builds the schedule once; reset state is applied. *)

val design : t -> Design.t

val reset : t -> unit
(** Returns flip-flops to their reset values and clears inputs to 0. *)

val load_state : t -> (Design.net -> int64) -> unit
(** Overwrites every flip-flop output with the given value — used to
    start simulation from an arbitrary state (e.g. a SAT
    counterexample). *)

val set_input : t -> Design.net -> int64 -> unit
(** @raise Invalid_argument if the net is not a primary input. *)

val set_input_name : t -> string -> int64 -> unit

val eval : t -> unit
(** Settles all combinational logic for the current inputs and state. *)

val step : t -> unit
(** Clock edge: latches every flip-flop's D into Q.  Call after {!eval}. *)

val read : t -> Design.net -> int64
(** Value after the latest {!eval}. *)

val set_bus : t -> Design.net array -> int -> unit
(** LSB-first; each bit is broadcast to all 64 lanes. *)

val read_bus : t -> Design.net array -> int
(** LSB-first, lane 0. *)

val read_bus_lane : t -> Design.net array -> lane:int -> int
