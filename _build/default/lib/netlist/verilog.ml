exception Parse_error of string

(* Identifiers containing characters outside [A-Za-z0-9_$] are emitted
   in escaped form (backslash prefix, trailing space), per the Verilog
   grammar; bus bit names like "instr[3]" need this. *)
let emit_id nm =
  let plain =
    String.length nm > 0
    && (match nm.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
    && String.for_all
         (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true | _ -> false)
         nm
  in
  if plain then nm else "\\" ^ nm ^ " "

let to_string d =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let net_id = Array.make (Design.num_nets d) "" in
  List.iter (fun (nm, n) -> net_id.(n) <- emit_id nm) (Design.inputs d);
  let wires = ref [] in
  let name_of n =
    if net_id.(n) = "" then begin
      let nm = Printf.sprintf "n%d" n in
      net_id.(n) <- nm;
      wires := nm :: !wires
    end;
    net_id.(n)
  in
  ignore (name_of Design.net_false);
  ignore (name_of Design.net_true);
  let has_flops =
    Design.fold_cells d (fun acc _ c -> acc || Cell.is_sequential c.kind) false
  in
  let ports =
    (if has_flops then [ "input CLK" ] else [])
    @ List.map (fun (nm, _) -> "input " ^ emit_id nm) (Design.inputs d)
    @ List.map (fun (nm, _) -> "output " ^ emit_id nm) (Design.outputs d)
  in
  (* Pre-visit cells so wire declarations precede instances. *)
  let instances = Buffer.create 4096 in
  Design.iter_cells d (fun ci c ->
      let pins =
        Array.to_list
          (Array.mapi
             (fun i n ->
               Printf.sprintf ".%s(%s)" (Cell.input_pin_name c.kind i) (name_of n))
             c.ins)
        @ [ Printf.sprintf ".%s(%s)" (Cell.output_pin_name c.kind) (name_of c.out) ]
      in
      let pins = if c.kind = Cell.Dff then ".CK(CLK)" :: pins else pins in
      let attr =
        if c.kind = Cell.Dff then
          Printf.sprintf "(* init = %d *) " (if c.init then 1 else 0)
        else ""
      in
      Buffer.add_string instances
        (Printf.sprintf "  %s%s u%d (%s);\n" attr (Cell.name c.kind) ci
           (String.concat ", " pins)));
  add "module %s (%s);\n" (emit_id (Design.name d)) (String.concat ", " ports);
  List.iter (fun w -> add "  wire %s;\n" (emit_id w)) (List.rev !wires);
  Buffer.add_buffer buf instances;
  (* Outputs are plain assigns from their driving nets. *)
  List.iter
    (fun (nm, n) -> add "  assign %s = %s;\n" (emit_id nm) (name_of n))
    (Design.outputs d);
  add "endmodule\n";
  Buffer.contents buf

let write_file d path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string d))

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Id of string
  | Punct of char
  | Attr of string * int

let tokenize src =
  let toks = ref [] in
  let n = String.length src in
  let i = ref 0 in
  let peek () = if !i < n then Some src.[!i] else None in
  let fail msg = raise (Parse_error msg) in
  while !i < n do
    (match src.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '/' when !i + 1 < n && src.[!i + 1] = '/' ->
        while !i < n && src.[!i] <> '\n' do incr i done
    | '(' when !i + 1 < n && src.[!i + 1] = '*' -> begin
        (* attribute: (* init = 0 *) *)
        match String.index_from_opt src !i '*' with
        | None -> fail "unterminated attribute"
        | Some _ ->
            let rec find j =
              if j + 1 >= n then fail "unterminated attribute"
              else if src.[j] = '*' && src.[j + 1] = ')' then j
              else find (j + 1)
            in
            let close = find (!i + 2) in
            let body = String.sub src (!i + 2) (close - !i - 2) in
            (match String.split_on_char '=' body with
            | [ k; v ] ->
                toks :=
                  Attr (String.trim k, int_of_string (String.trim v)) :: !toks
            | _ -> fail ("bad attribute: " ^ body));
            i := close + 2
      end
    | '\\' ->
        let start = !i + 1 in
        let rec stop j = if j >= n || src.[j] = ' ' || src.[j] = '\n' then j else stop (j + 1) in
        let j = stop start in
        toks := Id (String.sub src start (j - start)) :: !toks;
        i := j
    | 'a' .. 'z' | 'A' .. 'Z' | '_' | '0' .. '9' | '$' ->
        let start = !i in
        let rec stop j =
          if j >= n then j
          else
            match src.[j] with
            | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' | '[' | ']' | '\'' -> stop (j + 1)
            | _ -> j
        in
        let j = stop start in
        toks := Id (String.sub src start (j - start)) :: !toks;
        i := j
    | ('(' | ')' | ';' | ',' | '.' | '=') as c ->
        toks := Punct c :: !toks;
        incr i
    | c -> fail (Printf.sprintf "unexpected character %C" c));
    ignore (peek ())
  done;
  List.rev !toks

type stream = { mutable toks : token list }

let next st =
  match st.toks with
  | [] -> raise (Parse_error "unexpected end of input")
  | t :: rest ->
      st.toks <- rest;
      t

let expect_id st =
  match next st with
  | Id s -> s
  | _ -> raise (Parse_error "expected identifier")

let expect_punct st c =
  match next st with
  | Punct c' when c = c' -> ()
  | _ -> raise (Parse_error (Printf.sprintf "expected %C" c))

let expect_kw st kw =
  let s = expect_id st in
  if s <> kw then raise (Parse_error (Printf.sprintf "expected %S, got %S" kw s))

let of_string ?name src =
  let st = { toks = tokenize src } in
  expect_kw st "module";
  let mod_name = expect_id st in
  let d = Design.create (Option.value ~default:mod_name name) in
  let nets : (string, Design.net) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.replace nets "1'b0" Design.net_false;
  Hashtbl.replace nets "1'b1" Design.net_true;
  let outputs = ref [] in
  let net_of nm =
    match Hashtbl.find_opt nets nm with
    | Some n -> n
    | None ->
        let n = Design.new_net d in
        Hashtbl.replace nets nm n;
        Design.set_net_name d n nm;
        n
  in
  (* Port list *)
  expect_punct st '(';
  let rec ports () =
    match next st with
    | Punct ')' -> ()
    | Id "input" ->
        let nm = expect_id st in
        if nm <> "CLK" then begin
          let n = Design.add_input d nm in
          Hashtbl.replace nets nm n
        end;
        ports_sep ()
    | Id "output" ->
        let nm = expect_id st in
        outputs := nm :: !outputs;
        ports_sep ()
    | _ -> raise (Parse_error "bad port list")
  and ports_sep () =
    match next st with
    | Punct ',' -> ports ()
    | Punct ')' -> ()
    | _ -> raise (Parse_error "bad port list separator")
  in
  ports ();
  expect_punct st ';';
  (* Body *)
  let pending_init = ref 0 in
  let rec body () =
    match next st with
    | Id "endmodule" -> ()
    | Id "wire" ->
        let nm = expect_id st in
        ignore (net_of nm);
        expect_punct st ';';
        body ()
    | Id "assign" ->
        let lhs = expect_id st in
        expect_punct st '=';
        let rhs = expect_id st in
        expect_punct st ';';
        if List.mem lhs !outputs then Design.add_output d lhs (net_of rhs)
        else begin
          (* net alias: emit a buffer *)
          let src_net = net_of rhs in
          (match Hashtbl.find_opt nets lhs with
          | Some existing -> Design.add_cell_out d Cell.Buf [| src_net |] ~out:existing
          | None ->
              let out = Design.add_cell d Cell.Buf [| src_net |] in
              Hashtbl.replace nets lhs out)
        end;
        body ()
    | Attr ("init", v) ->
        pending_init := v;
        body ()
    | Id cell_name -> begin
        match Cell.of_name cell_name with
        | None -> raise (Parse_error ("unknown cell: " ^ cell_name))
        | Some kind ->
            let _inst = expect_id st in
            expect_punct st '(';
            let pins = Hashtbl.create 8 in
            let rec conns () =
              match next st with
              | Punct ')' -> ()
              | Punct '.' ->
                  let pin = expect_id st in
                  expect_punct st '(';
                  let nm = expect_id st in
                  expect_punct st ')';
                  Hashtbl.replace pins pin nm;
                  (match next st with
                  | Punct ',' -> conns ()
                  | Punct ')' -> ()
                  | _ -> raise (Parse_error "bad connection list"))
              | _ -> raise (Parse_error "expected named connection")
            in
            conns ();
            expect_punct st ';';
            let pin nmp =
              match Hashtbl.find_opt pins nmp with
              | Some nm -> net_of nm
              | None -> raise (Parse_error ("missing pin " ^ nmp ^ " on " ^ cell_name))
            in
            (match kind with
            | Cell.Const0 | Cell.Const1 ->
                (* The design always owns its tie cells; alias the pin's
                   net name to the built-in rail instead. *)
                let rail =
                  if kind = Cell.Const0 then Design.net_false else Design.net_true
                in
                let nm =
                  match Hashtbl.find_opt pins (Cell.output_pin_name kind) with
                  | Some nm -> nm
                  | None ->
                      raise (Parse_error ("missing output pin on " ^ cell_name))
                in
                (match Hashtbl.find_opt nets nm with
                | Some existing when existing <> rail ->
                    Design.add_cell_out d Cell.Buf [| rail |] ~out:existing
                | Some _ -> ()
                | None -> Hashtbl.replace nets nm rail)
            | _ ->
                let ins =
                  Array.init (Cell.arity kind) (fun i ->
                      pin (Cell.input_pin_name kind i))
                in
                let out = pin (Cell.output_pin_name kind) in
                let init = !pending_init = 1 in
                pending_init := 0;
                Design.add_cell_out d ~init kind ins ~out);
            body ()
      end
    | _ -> raise (Parse_error "unexpected token in module body")
  in
  body ();
  d

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
