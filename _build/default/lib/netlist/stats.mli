(** Gate-count and area accounting, the metrics reported in the paper's
    figures.  Tie cells are excluded from the gate count (they are
    rails, not logic), matching how synthesis reports count cells. *)

type t = {
  gates : int;        (** combinational cells, excluding ties and buffers *)
  buffers : int;
  flops : int;
  area : float;       (** um^2 over all cells including ties *)
  by_kind : (Cell.kind * int) list;  (** descending count *)
}

val of_design : Design.t -> t

val total_cells : t -> int
(** gates + buffers + flops. *)

val gate_count : t -> int
(** The paper's "gate count": all logic cells including flops. *)

val pp : Format.formatter -> t -> unit

val delta_pct : baseline:float -> float -> float
(** [delta_pct ~baseline v] is the percent reduction of [v] versus
    [baseline]; positive when [v] is smaller. *)
