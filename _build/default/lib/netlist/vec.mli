(** Growable arrays, used throughout the netlist store.

    A [Vec.t] is a mutable sequence with amortized O(1) [push] and O(1)
    random access.  Unlike [Buffer], elements may be of any type. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty vector.  [dummy] fills unused slots and
    is never observable through the API. *)

val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Removes and returns the last element.  @raise Invalid_argument if empty. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : dummy:'a -> 'a list -> 'a t
val copy : 'a t -> 'a t
