type arch = Riscv | Arm

type t = {
  arch : arch;
  name : string;
  instrs : string list;  (* sorted, unique *)
}

let known arch nm =
  match arch with
  | Riscv -> List.exists (fun i -> i.Rv32.name = nm) Rv32.all
  | Arm -> List.exists (fun i -> i.Armv6m.name = nm) Armv6m.all

let make arch name instrs =
  let sorted = List.sort_uniq compare instrs in
  if List.length sorted <> List.length instrs then
    invalid_arg (Printf.sprintf "Subset.make %s: duplicate instructions" name);
  List.iter
    (fun nm ->
      if not (known arch nm) then
        invalid_arg (Printf.sprintf "Subset.make %s: unknown instruction %s" name nm))
    instrs;
  { arch; name; instrs = sorted }

let arch t = t.arch
let name t = t.name
let instructions t = t.instrs
let size t = List.length t.instrs
let mem t nm = List.mem nm t.instrs

let same_arch a b =
  if a.arch <> b.arch then invalid_arg "Subset: mixing architectures";
  a.arch

let union name a b = { arch = same_arch a b; name; instrs = List.sort_uniq compare (a.instrs @ b.instrs) }

let inter name a b =
  {
    arch = same_arch a b;
    name;
    instrs = List.filter (fun i -> List.mem i b.instrs) a.instrs;
  }

let remove name t dropped =
  List.iter
    (fun nm ->
      if not (known t.arch nm) then
        invalid_arg (Printf.sprintf "Subset.remove %s: unknown instruction %s" name nm))
    dropped;
  { t with name; instrs = List.filter (fun i -> not (List.mem i dropped)) t.instrs }

let encodings t =
  match t.arch with
  | Riscv -> List.map (fun nm -> (Rv32.find nm).Rv32.enc) t.instrs
  | Arm -> List.map (fun nm -> (Armv6m.find nm).Armv6m.enc) t.instrs

(* --- RISC-V families -------------------------------------------------- *)

let of_exts name exts =
  make Riscv name
    (List.concat_map (fun e -> Rv32.names (Rv32.by_ext e)) exts)

let rv32imcz = of_exts "rv32imcz" [ Rv32.I; Rv32.M; Rv32.C; Rv32.Zicsr; Rv32.Zifencei ]
let rv32imc = of_exts "rv32imc" [ Rv32.I; Rv32.M; Rv32.C ]
let rv32im = of_exts "rv32im" [ Rv32.I; Rv32.M ]
let rv32ic = of_exts "rv32ic" [ Rv32.I; Rv32.C ]
let rv32i = of_exts "rv32i" [ Rv32.I ]
let rv32e = { (of_exts "rv32i" [ Rv32.I ]) with name = "rv32e" }

let rv32i_reduced_addressing = remove "reduced-addressing" rv32i Rv32.r_type
let rv32i_safety_critical = remove "safety-critical" rv32i Rv32.safety_critical_removed
let rv32i_no_parallelism = remove "no-parallelism" rv32i Rv32.bit_parallel
let rv32i_aligned = { rv32i with name = "aligned" }
let risc16 = make Riscv "risc16" Rv32.risc16

(* --- ARM --------------------------------------------------------------- *)

let armv6m_full = make Arm "armv6m" (Armv6m.names Armv6m.all)
let armv6m_interesting = make Arm "armv6m-interesting" Armv6m.interesting_subset
