(** The RV32IMC(+Zicsr/Zifencei) instruction set as implemented by the
    Ibex-class core: every instruction carries its extension and a
    mask/match encoding (16-bit encodings for the C extension).

    The table drives three consumers: the decoder of the Ibex-like
    core's testbench tooling, the environment-restriction monitors of
    PDAT, and the Table-I workload accounting. *)

type ext = I | M | C | Zicsr | Zifencei

type t = {
  name : string;
  ext : ext;
  enc : Encoding.t;
}

val all : t list
(** Every instruction supported by the Ibex-like core. *)

val find : string -> t
(** @raise Not_found for unknown names. *)

val by_ext : ext -> t list

val names : t list -> string list

val decode32 : int -> t option
(** First matching 32-bit (uncompressed) instruction. *)

val decode16 : int -> t option
(** First matching compressed instruction (C-extension priority order
    resolves the deliberate encoding overlaps, e.g. C.ADDI16SP before
    C.LUI and C.JR before C.MV). *)

val is_compressed : int -> bool
(** Low two bits of the fetch word are not [11]. *)

val ext_name : ext -> string

val r_type : string list
(** Register-register instructions (the paper's "Reduced Addressing"
    subset removes these). *)

val safety_critical_removed : string list
(** JALR, AUIPC, FENCE, ECALL, EBREAK — removed by the paper's
    "Safety Critical" subset. *)

val bit_parallel : string list
(** Bitwise-parallel logic and shift instructions, removed by the
    paper's "No Parallelism" subset. *)

val risc16 : string list
(** The RiSC-16-like compressed subset of Fig. 5 (right). *)
