type item = {
  size : int;
  emit : pc:int -> resolve:(string -> int) -> int;
}

type t = {
  base : int;
  mutable items : item list;
  mutable pc : int;
  labels : (string, int) Hashtbl.t;
}

let create ?(base = 0) () =
  { base; items = []; pc = base; labels = Hashtbl.create 16 }

let label t name =
  if Hashtbl.mem t.labels name then failwith ("Asm_thumb.label: duplicate " ^ name);
  Hashtbl.replace t.labels name t.pc

let here t = t.pc

let push_item t size emit =
  t.items <- { size; emit } :: t.items;
  t.pc <- t.pc + size

let fixed t word = push_item t 2 (fun ~pc:_ ~resolve:_ -> word land 0xFFFF)
let raw16 = fixed

let lo3 what r =
  if r < 0 || r > 7 then failwith (Printf.sprintf "Asm_thumb: %s needs a low register, got r%d" what r)

let reg4 what r =
  if r < 0 || r > 15 then failwith (Printf.sprintf "Asm_thumb: bad register r%d in %s" r what)

let check what lo hi v =
  if v < lo || v > hi then
    failwith (Printf.sprintf "Asm_thumb: %s immediate %d out of range" what v)

(* --- moves / arithmetic ------------------------------------------------ *)

let movs t ~rd imm =
  lo3 "movs" rd; check "movs" 0 255 imm;
  fixed t ((0b00100 lsl 11) lor (rd lsl 8) lor imm)

let mov_reg t ~rd ~rm =
  reg4 "mov" rd; reg4 "mov" rm;
  fixed t ((0b01000110 lsl 8) lor (((rd lsr 3) land 1) lsl 7) lor (rm lsl 3) lor (rd land 7))

let addsub3 op t ~rd ~rn v =
  lo3 "adds3" rd; lo3 "adds3" rn;
  fixed t ((0b00011 lsl 11) lor (op lsl 9) lor (v lsl 6) lor (rn lsl 3) lor rd)

let adds_imm3 t ~rd ~rn imm = check "adds3" 0 7 imm; addsub3 0b10 t ~rd ~rn imm
let subs_imm3 t ~rd ~rn imm = check "subs3" 0 7 imm; addsub3 0b11 t ~rd ~rn imm

let adds_reg t ~rd ~rn ~rm = lo3 "adds" rm; addsub3 0b00 t ~rd ~rn rm
let subs_reg t ~rd ~rn ~rm = lo3 "subs" rm; addsub3 0b01 t ~rd ~rn rm

let adds_imm8 t ~rdn imm =
  lo3 "adds8" rdn; check "adds8" 0 255 imm;
  fixed t ((0b00110 lsl 11) lor (rdn lsl 8) lor imm)

let subs_imm8 t ~rdn imm =
  lo3 "subs8" rdn; check "subs8" 0 255 imm;
  fixed t ((0b00111 lsl 11) lor (rdn lsl 8) lor imm)

let add_hi t ~rdn ~rm =
  reg4 "add_hi" rdn; reg4 "add_hi" rm;
  fixed t ((0b01000100 lsl 8) lor (((rdn lsr 3) land 1) lsl 7) lor (rm lsl 3) lor (rdn land 7))

let cmp_imm t ~rn imm =
  lo3 "cmp" rn; check "cmp" 0 255 imm;
  fixed t ((0b00101 lsl 11) lor (rn lsl 8) lor imm)

(* --- data processing ---------------------------------------------------- *)

let dp op t rdn rm =
  lo3 "dp" rdn; lo3 "dp" rm;
  fixed t ((0b010000 lsl 10) lor (op lsl 6) lor (rm lsl 3) lor rdn)

let ands t ~rdn ~rm = dp 0b0000 t rdn rm
let eors t ~rdn ~rm = dp 0b0001 t rdn rm
let lsls_reg t ~rdn ~rs = dp 0b0010 t rdn rs
let lsrs_reg t ~rdn ~rs = dp 0b0011 t rdn rs
let asrs_reg t ~rdn ~rs = dp 0b0100 t rdn rs
let adcs t ~rdn ~rm = dp 0b0101 t rdn rm
let sbcs t ~rdn ~rm = dp 0b0110 t rdn rm
let rors_reg t ~rdn ~rs = dp 0b0111 t rdn rs
let tst t ~rn ~rm = dp 0b1000 t rn rm
let rsbs t ~rd ~rn = dp 0b1001 t rd rn
let cmp_reg t ~rn ~rm = dp 0b1010 t rn rm
let cmn t ~rn ~rm = dp 0b1011 t rn rm
let orrs t ~rdn ~rm = dp 0b1100 t rdn rm
let muls t ~rdm ~rn = dp 0b1101 t rdm rn
let bics t ~rdn ~rm = dp 0b1110 t rdn rm
let mvns t ~rd ~rm = dp 0b1111 t rd rm

(* --- shifts (immediate) -------------------------------------------------- *)

let shift_imm op t ~rd ~rm imm =
  lo3 "shift" rd; lo3 "shift" rm; check "shift" 0 31 imm;
  fixed t ((op lsl 11) lor (imm lsl 6) lor (rm lsl 3) lor rd)

let lsls_imm = shift_imm 0b00000
let lsrs_imm = shift_imm 0b00001
let asrs_imm = shift_imm 0b00010

(* --- memory --------------------------------------------------------------- *)

let ls_imm5 top t ~rt ~rn imm ~scale =
  lo3 "ls" rt; lo3 "ls" rn;
  if imm mod scale <> 0 then failwith "Asm_thumb: misscaled offset";
  let u = imm / scale in
  check "ls offset" 0 31 u;
  fixed t ((top lsl 11) lor (u lsl 6) lor (rn lsl 3) lor rt)

let str_imm t ~rt ~rn imm = ls_imm5 0b01100 t ~rt ~rn imm ~scale:4
let ldr_imm t ~rt ~rn imm = ls_imm5 0b01101 t ~rt ~rn imm ~scale:4
let strb_imm t ~rt ~rn imm = ls_imm5 0b01110 t ~rt ~rn imm ~scale:1
let ldrb_imm t ~rt ~rn imm = ls_imm5 0b01111 t ~rt ~rn imm ~scale:1
let strh_imm t ~rt ~rn imm = ls_imm5 0b10000 t ~rt ~rn imm ~scale:2
let ldrh_imm t ~rt ~rn imm = ls_imm5 0b10001 t ~rt ~rn imm ~scale:2

let ls_reg op t ~rt ~rn ~rm =
  lo3 "ls" rt; lo3 "ls" rn; lo3 "ls" rm;
  fixed t ((0b0101 lsl 12) lor (op lsl 9) lor (rm lsl 6) lor (rn lsl 3) lor rt)

let str_reg t ~rt ~rn ~rm = ls_reg 0b000 t ~rt ~rn ~rm
let ldrsb_reg t ~rt ~rn ~rm = ls_reg 0b011 t ~rt ~rn ~rm
let ldr_reg t ~rt ~rn ~rm = ls_reg 0b100 t ~rt ~rn ~rm
let ldrsh_reg t ~rt ~rn ~rm = ls_reg 0b111 t ~rt ~rn ~rm

let sp_rel top t ~rt imm =
  lo3 "sp-rel" rt;
  if imm mod 4 <> 0 then failwith "Asm_thumb: sp offset not word aligned";
  check "sp offset" 0 1020 imm;
  fixed t ((top lsl 11) lor (rt lsl 8) lor (imm / 4))

let str_sp t ~rt imm = sp_rel 0b10010 t ~rt imm
let ldr_sp t ~rt imm = sp_rel 0b10011 t ~rt imm

let list_mask what regs =
  List.fold_left
    (fun acc r ->
      lo3 what r;
      acc lor (1 lsl r))
    0 regs

let push t ?(lr = false) regs =
  fixed t ((0b1011010 lsl 9) lor ((if lr then 1 else 0) lsl 8) lor list_mask "push" regs)

let pop t ?(pc = false) regs =
  fixed t ((0b1011110 lsl 9) lor ((if pc then 1 else 0) lsl 8) lor list_mask "pop" regs)

let stm t ~rn regs =
  lo3 "stm" rn;
  fixed t ((0b11000 lsl 11) lor (rn lsl 8) lor list_mask "stm" regs)

let ldm t ~rn regs =
  lo3 "ldm" rn;
  fixed t ((0b11001 lsl 11) lor (rn lsl 8) lor list_mask "ldm" regs)

(* --- misc ------------------------------------------------------------------ *)

let extend op t ~rd ~rm =
  lo3 "extend" rd; lo3 "extend" rm;
  fixed t ((0b10110010 lsl 8) lor (op lsl 6) lor (rm lsl 3) lor rd)

let sxth t ~rd ~rm = extend 0b00 t ~rd ~rm
let sxtb t ~rd ~rm = extend 0b01 t ~rd ~rm
let uxth t ~rd ~rm = extend 0b10 t ~rd ~rm
let uxtb t ~rd ~rm = extend 0b11 t ~rd ~rm

let rev t ~rd ~rm =
  lo3 "rev" rd; lo3 "rev" rm;
  fixed t ((0b1011101000 lsl 6) lor (rm lsl 3) lor rd)

let add_sp_imm t imm =
  if imm mod 4 <> 0 then failwith "Asm_thumb: sp adjust not word aligned";
  check "add sp" 0 508 imm;
  fixed t ((0b101100000 lsl 7) lor (imm / 4))

let sub_sp_imm t imm =
  if imm mod 4 <> 0 then failwith "Asm_thumb: sp adjust not word aligned";
  check "sub sp" 0 508 imm;
  fixed t ((0b101100001 lsl 7) lor (imm / 4))

let nop t = fixed t 0xBF00

(* --- control flow ------------------------------------------------------------ *)

type cond = EQ | NE | CS | CC | MI | PL | VS | VC | HI | LS | GE | LT | GT | LE

let cond_code = function
  | EQ -> 0 | NE -> 1 | CS -> 2 | CC -> 3 | MI -> 4 | PL -> 5 | VS -> 6
  | VC -> 7 | HI -> 8 | LS -> 9 | GE -> 10 | LT -> 11 | GT -> 12 | LE -> 13

let b_cond t cond target =
  push_item t 2 (fun ~pc ~resolve ->
      let off = resolve target - (pc + 4) in
      if off mod 2 <> 0 then failwith "Asm_thumb: odd branch offset";
      let imm = off asr 1 in
      if imm < -128 || imm > 127 then failwith "Asm_thumb: b_cond out of range";
      (0b1101 lsl 12) lor (cond_code cond lsl 8) lor (imm land 0xFF))

let b t target =
  push_item t 2 (fun ~pc ~resolve ->
      let off = resolve target - (pc + 4) in
      let imm = off asr 1 in
      if imm < -1024 || imm > 1023 then failwith "Asm_thumb: b out of range";
      (0b11100 lsl 11) lor (imm land 0x7FF))

let bl t target =
  (* two halfwords; emitted as two items so pc bookkeeping stays simple *)
  let first_pc = t.pc in
  push_item t 2 (fun ~pc:_ ~resolve ->
      let off = resolve target - (first_pc + 4) in
      let imm = (off asr 1) land 0xFFFFFF in
      let s = (imm lsr 23) land 1 in
      let imm10 = (imm lsr 11) land 0x3FF in
      (0b11110 lsl 11) lor (s lsl 10) lor imm10);
  push_item t 2 (fun ~pc:_ ~resolve ->
      let off = resolve target - (first_pc + 4) in
      let imm = (off asr 1) land 0xFFFFFF in
      let s = (imm lsr 23) land 1 in
      let i1 = (imm lsr 22) land 1 in
      let i2 = (imm lsr 21) land 1 in
      let j1 = (lnot (i1 lxor s)) land 1 in
      let j2 = (lnot (i2 lxor s)) land 1 in
      let imm11 = imm land 0x7FF in
      (0b11 lsl 14) lor (j1 lsl 13) lor (1 lsl 12) lor (j2 lsl 11) lor imm11)

let bx t ~rm =
  reg4 "bx" rm;
  fixed t ((0b010001110 lsl 7) lor (rm lsl 3))

let blx t ~rm =
  reg4 "blx" rm;
  fixed t ((0b010001111 lsl 7) lor (rm lsl 3))

let svc t imm =
  check "svc" 0 255 imm;
  fixed t ((0b11011111 lsl 8) lor imm)

let udf t = fixed t 0xDE00

(* --- assembly ----------------------------------------------------------------- *)

let assemble t =
  let resolve name =
    match Hashtbl.find_opt t.labels name with
    | Some a -> a
    | None -> failwith ("Asm_thumb: undefined label " ^ name)
  in
  let items = List.rev t.items in
  let halfwords = Array.make ((t.pc - t.base) / 2) 0 in
  let pc = ref t.base in
  List.iter
    (fun item ->
      halfwords.((!pc - t.base) / 2) <- item.emit ~pc:!pc ~resolve land 0xFFFF;
      pc := !pc + item.size)
    items;
  halfwords
