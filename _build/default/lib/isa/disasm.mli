(** RV32IMC disassembler, used by reports, examples and debugging.

    Produces GNU-style mnemonics: ["addi x5, x3, -12"],
    ["c.mv x8, x9"], ["lw x1, 8(x2)"].  Unknown words render as
    [".word 0x..."] / [".half 0x..."]. *)

val instr32 : int -> string
(** Disassemble a 32-bit instruction word. *)

val instr16 : int -> string
(** Disassemble a compressed halfword. *)

val word : int -> string
(** Dispatch on the low two bits: compressed or full-width. *)

val program : int array -> (int * string) list
(** Disassemble an {!Asm.assemble} halfword stream into
    [(byte_offset, text)] rows. *)
