let sext width v =
  if v land (1 lsl (width - 1)) <> 0 then v - (1 lsl width) else v

let reg i = Printf.sprintf "x%d" i

let instr32 w =
  let rd = (w lsr 7) land 0x1F in
  let rs1 = (w lsr 15) land 0x1F in
  let rs2 = (w lsr 20) land 0x1F in
  let imm_i = sext 12 ((w lsr 20) land 0xFFF) in
  let imm_s = sext 12 (((w lsr 25) lsl 5) lor rd) in
  let imm_b =
    sext 13
      ((((w lsr 31) land 1) lsl 12)
      lor (((w lsr 7) land 1) lsl 11)
      lor (((w lsr 25) land 0x3F) lsl 5)
      lor (((w lsr 8) land 0xF) lsl 1))
  in
  let imm_u = (w lsr 12) land 0xFFFFF in
  let imm_j =
    sext 21
      ((((w lsr 31) land 1) lsl 20)
      lor (((w lsr 12) land 0xFF) lsl 12)
      lor (((w lsr 20) land 1) lsl 11)
      lor (((w lsr 21) land 0x3FF) lsl 1))
  in
  match Rv32.decode32 w with
  | None -> Printf.sprintf ".word 0x%08x" w
  | Some i -> (
      let n = i.Rv32.name in
      match n with
      | "lui" | "auipc" -> Printf.sprintf "%s %s, 0x%x" n (reg rd) imm_u
      | "jal" -> Printf.sprintf "jal %s, %d" (reg rd) imm_j
      | "jalr" -> Printf.sprintf "jalr %s, %d(%s)" (reg rd) imm_i (reg rs1)
      | "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" ->
          Printf.sprintf "%s %s, %s, %d" n (reg rs1) (reg rs2) imm_b
      | "lb" | "lh" | "lw" | "lbu" | "lhu" ->
          Printf.sprintf "%s %s, %d(%s)" n (reg rd) imm_i (reg rs1)
      | "sb" | "sh" | "sw" ->
          Printf.sprintf "%s %s, %d(%s)" n (reg rs2) imm_s (reg rs1)
      | "addi" | "slti" | "sltiu" | "xori" | "ori" | "andi" ->
          Printf.sprintf "%s %s, %s, %d" n (reg rd) (reg rs1) imm_i
      | "slli" | "srli" | "srai" ->
          Printf.sprintf "%s %s, %s, %d" n (reg rd) (reg rs1) rs2
      | "fence" -> "fence"
      | "fence.i" -> "fence.i"
      | "ecall" -> "ecall"
      | "ebreak" -> "ebreak"
      | "csrrw" | "csrrs" | "csrrc" ->
          Printf.sprintf "%s %s, 0x%x, %s" n (reg rd) ((w lsr 20) land 0xFFF) (reg rs1)
      | "csrrwi" | "csrrsi" | "csrrci" ->
          Printf.sprintf "%s %s, 0x%x, %d" n (reg rd) ((w lsr 20) land 0xFFF) rs1
      | _ ->
          (* R-type (base and M extension) *)
          Printf.sprintf "%s %s, %s, %s" n (reg rd) (reg rs1) (reg rs2))

let instr16 hw =
  let rdp = 8 + ((hw lsr 2) land 0x7) in
  let rs1p = 8 + ((hw lsr 7) land 0x7) in
  let rd_full = (hw lsr 7) land 0x1F in
  let rs2_full = (hw lsr 2) land 0x1F in
  let imm6 = sext 6 ((((hw lsr 12) land 1) lsl 5) lor ((hw lsr 2) land 0x1F)) in
  match Rv32.decode16 hw with
  | None -> Printf.sprintf ".half 0x%04x" hw
  | Some i -> (
      match i.Rv32.name with
      | "c.addi" -> Printf.sprintf "c.addi %s, %d" (reg rd_full) imm6
      | "c.li" -> Printf.sprintf "c.li %s, %d" (reg rd_full) imm6
      | "c.lui" -> Printf.sprintf "c.lui %s, %d" (reg rd_full) imm6
      | "c.addi16sp" -> "c.addi16sp"
      | "c.addi4spn" -> Printf.sprintf "c.addi4spn %s" (reg rdp)
      | "c.lw" -> Printf.sprintf "c.lw %s, (%s)" (reg rdp) (reg rs1p)
      | "c.sw" -> Printf.sprintf "c.sw %s, (%s)" (reg rdp) (reg rs1p)
      | "c.mv" -> Printf.sprintf "c.mv %s, %s" (reg rd_full) (reg rs2_full)
      | "c.add" -> Printf.sprintf "c.add %s, %s" (reg rd_full) (reg rs2_full)
      | "c.jr" -> Printf.sprintf "c.jr %s" (reg rd_full)
      | "c.jalr" -> Printf.sprintf "c.jalr %s" (reg rd_full)
      | "c.slli" -> Printf.sprintf "c.slli %s, %d" (reg rd_full) rs2_full
      | "c.srli" -> Printf.sprintf "c.srli %s, %d" (reg rs1p) rs2_full
      | "c.srai" -> Printf.sprintf "c.srai %s, %d" (reg rs1p) rs2_full
      | "c.andi" -> Printf.sprintf "c.andi %s, %d" (reg rs1p) imm6
      | "c.sub" | "c.xor" | "c.or" | "c.and" ->
          Printf.sprintf "%s %s, %s" i.Rv32.name (reg rs1p) (reg rdp)
      | "c.beqz" | "c.bnez" -> Printf.sprintf "%s %s" i.Rv32.name (reg rs1p)
      | "c.lwsp" -> Printf.sprintf "c.lwsp %s" (reg rd_full)
      | "c.swsp" -> Printf.sprintf "c.swsp %s" (reg rs2_full)
      | nm -> nm)

let word w = if Rv32.is_compressed w then instr16 (w land 0xFFFF) else instr32 w

let program halfwords =
  let rows = ref [] in
  let i = ref 0 in
  let n = Array.length halfwords in
  while !i < n do
    let hw = halfwords.(!i) in
    if Rv32.is_compressed hw then begin
      rows := (2 * !i, instr16 hw) :: !rows;
      incr i
    end
    else begin
      let w = hw lor (if !i + 1 < n then halfwords.(!i + 1) lsl 16 else 0) in
      rows := (2 * !i, instr32 w) :: !rows;
      i := !i + 2
    end
  done;
  List.rev !rows
