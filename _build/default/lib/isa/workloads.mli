(** MiBench benchmark-group instruction profiles (the paper's Table I).

    The paper compiled MiBench with gcc 9.2 and recorded which
    instructions each benchmark group uses.  We do not have those
    binaries; what the downstream experiments consume is only the
    *set of used instructions* per group, so each profile here is a
    concrete instruction set whose per-extension cardinalities
    reproduce Table I exactly (see the [table1] test). *)

type group = Networking | Security | Automotive

val group_name : group -> string
val groups : group list

val riscv : group -> Subset.t
(** Instructions used by the group on the Ibex-class RV32IMC core. *)

val riscv_all : Subset.t
(** Union across groups ("MiBench All"). *)

val arm : group -> Subset.t
val arm_all : Subset.t

val table1_riscv : (string * int * int * int * int) list
(** Rows of Table I (Ibex half): extension name, then instruction
    counts for networking / security / automotive / all. *)

val table1_arm : int * int * int * int
(** ARMv6-M instruction counts for networking / security / automotive / all. *)
