type item = {
  size : int;  (* bytes: 2 or 4 *)
  emit : pc:int -> resolve:(string -> int) -> int;
}

type t = {
  base : int;
  mutable items : item list;  (* reversed *)
  mutable pc : int;
  labels : (string, int) Hashtbl.t;
}

let create ?(base = 0) () = { base; items = []; pc = base; labels = Hashtbl.create 16 }

let label t name =
  if Hashtbl.mem t.labels name then failwith ("Asm.label: duplicate " ^ name);
  Hashtbl.replace t.labels name t.pc

let here t = t.pc

let push t size emit =
  t.items <- { size; emit } :: t.items;
  t.pc <- t.pc + size

let check_range ~what ~bits ~signed v =
  let lo, hi =
    if signed then (-(1 lsl (bits - 1)), (1 lsl (bits - 1)) - 1)
    else (0, (1 lsl bits) - 1)
  in
  if v < lo || v > hi then
    failwith (Printf.sprintf "Asm: %s immediate %d out of %d-bit range" what v bits)

let mask bits v = v land ((1 lsl bits) - 1)

let reg what r =
  if r < 0 || r > 31 then failwith (Printf.sprintf "Asm: bad register x%d in %s" r what)

(* --- fixed 32-bit format builders ------------------------------------- *)

let r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode =
  reg "r-type" rs2;
  reg "r-type" rs1;
  reg "r-type" rd;
  (funct7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (rd lsl 7) lor opcode

let i_type ~imm ~rs1 ~funct3 ~rd ~opcode =
  reg "i-type" rs1;
  reg "i-type" rd;
  check_range ~what:"i-type" ~bits:12 ~signed:true imm;
  (mask 12 imm lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7) lor opcode

let s_type ~imm ~rs2 ~rs1 ~funct3 ~opcode =
  reg "s-type" rs2;
  reg "s-type" rs1;
  check_range ~what:"s-type" ~bits:12 ~signed:true imm;
  let imm = mask 12 imm in
  ((imm lsr 5) lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor ((imm land 0x1F) lsl 7) lor opcode

let b_imm ~offset =
  check_range ~what:"branch" ~bits:13 ~signed:true offset;
  if offset land 1 <> 0 then failwith "Asm: odd branch offset";
  let imm = mask 13 offset in
  (((imm lsr 12) land 1) lsl 31)
  lor (((imm lsr 5) land 0x3F) lsl 25)
  lor (((imm lsr 1) land 0xF) lsl 8)
  lor (((imm lsr 11) land 1) lsl 7)

let j_imm ~offset =
  check_range ~what:"jal" ~bits:21 ~signed:true offset;
  if offset land 1 <> 0 then failwith "Asm: odd jump offset";
  let imm = mask 21 offset in
  (((imm lsr 20) land 1) lsl 31)
  lor (((imm lsr 1) land 0x3FF) lsl 21)
  lor (((imm lsr 11) land 1) lsl 20)
  lor (((imm lsr 12) land 0xFF) lsl 12)

let fixed32 t word = push t 4 (fun ~pc:_ ~resolve:_ -> word)
let raw32 = fixed32
let raw16 t word = push t 2 (fun ~pc:_ ~resolve:_ -> word land 0xFFFF)

(* --- RV32I -------------------------------------------------------------- *)

let lui t ~rd imm =
  reg "lui" rd;
  check_range ~what:"lui" ~bits:20 ~signed:false (imm land 0xFFFFF);
  fixed32 t ((mask 20 imm lsl 12) lor (rd lsl 7) lor 0b0110111)

let auipc t ~rd imm =
  reg "auipc" rd;
  fixed32 t ((mask 20 imm lsl 12) lor (rd lsl 7) lor 0b0010111)

let jal t ~rd target =
  reg "jal" rd;
  push t 4 (fun ~pc ~resolve ->
      j_imm ~offset:(resolve target - pc) lor (rd lsl 7) lor 0b1101111)

let jalr t ~rd ~rs1 imm = fixed32 t (i_type ~imm ~rs1 ~funct3:0 ~rd ~opcode:0b1100111)

let branch funct3 t ~rs1 ~rs2 target =
  push t 4 (fun ~pc ~resolve ->
      b_imm ~offset:(resolve target - pc)
      lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor 0b1100011)

let beq = branch 0b000
let bne = branch 0b001
let blt = branch 0b100
let bge = branch 0b101
let bltu = branch 0b110
let bgeu = branch 0b111

let load funct3 t ~rd ~rs1 imm = fixed32 t (i_type ~imm ~rs1 ~funct3 ~rd ~opcode:0b0000011)
let lb = load 0b000
let lh = load 0b001
let lw = load 0b010
let lbu = load 0b100
let lhu = load 0b101

let store funct3 t ~rs2 ~rs1 imm = fixed32 t (s_type ~imm ~rs2 ~rs1 ~funct3 ~opcode:0b0100011)
let sb = store 0b000
let sh = store 0b001
let sw = store 0b010

let op_imm funct3 t ~rd ~rs1 imm = fixed32 t (i_type ~imm ~rs1 ~funct3 ~rd ~opcode:0b0010011)
let addi = op_imm 0b000
let slti = op_imm 0b010
let sltiu = op_imm 0b011
let xori = op_imm 0b100
let ori = op_imm 0b110
let andi = op_imm 0b111

let shift_imm ~funct7 ~funct3 t ~rd ~rs1 shamt =
  check_range ~what:"shamt" ~bits:5 ~signed:false shamt;
  fixed32 t (r_type ~funct7 ~rs2:shamt ~rs1 ~funct3 ~rd ~opcode:0b0010011)

let slli = shift_imm ~funct7:0 ~funct3:0b001
let srli = shift_imm ~funct7:0 ~funct3:0b101
let srai = shift_imm ~funct7:0b0100000 ~funct3:0b101

let op ~funct7 ~funct3 t ~rd ~rs1 ~rs2 =
  fixed32 t (r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode:0b0110011)

let add = op ~funct7:0 ~funct3:0b000
let sub = op ~funct7:0b0100000 ~funct3:0b000
let sll = op ~funct7:0 ~funct3:0b001
let slt = op ~funct7:0 ~funct3:0b010
let sltu = op ~funct7:0 ~funct3:0b011
let xor = op ~funct7:0 ~funct3:0b100
let srl = op ~funct7:0 ~funct3:0b101
let sra = op ~funct7:0b0100000 ~funct3:0b101
let or_ = op ~funct7:0 ~funct3:0b110
let and_ = op ~funct7:0 ~funct3:0b111

let fence t = fixed32 t 0x0ff0000f
let ecall t = fixed32 t 0x00000073
let ebreak t = fixed32 t 0x00100073

let mul = op ~funct7:1 ~funct3:0b000
let mulh = op ~funct7:1 ~funct3:0b001
let mulhsu = op ~funct7:1 ~funct3:0b010
let mulhu = op ~funct7:1 ~funct3:0b011
let div = op ~funct7:1 ~funct3:0b100
let divu = op ~funct7:1 ~funct3:0b101
let rem = op ~funct7:1 ~funct3:0b110
let remu = op ~funct7:1 ~funct3:0b111

let csr funct3 t ~rd ~rs1 ~csr =
  check_range ~what:"csr" ~bits:12 ~signed:false csr;
  fixed32 t ((csr lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7) lor 0b1110011)

let csrrw = csr 0b001
let csrrs = csr 0b010

(* --- C extension --------------------------------------------------------- *)

let c_addi t ~rd imm =
  reg "c.addi" rd;
  check_range ~what:"c.addi" ~bits:6 ~signed:true imm;
  let imm = mask 6 imm in
  raw16 t
    ((0b000 lsl 13) lor (((imm lsr 5) land 1) lsl 12) lor (rd lsl 7)
    lor ((imm land 0x1F) lsl 2) lor 0b01)

let c_li t ~rd imm =
  reg "c.li" rd;
  check_range ~what:"c.li" ~bits:6 ~signed:true imm;
  let imm = mask 6 imm in
  raw16 t
    ((0b010 lsl 13) lor (((imm lsr 5) land 1) lsl 12) lor (rd lsl 7)
    lor ((imm land 0x1F) lsl 2) lor 0b01)

let c_mv t ~rd ~rs2 =
  if rs2 = 0 then failwith "Asm.c_mv: rs2 must not be x0";
  raw16 t ((0b1000 lsl 12) lor (rd lsl 7) lor (rs2 lsl 2) lor 0b10)

let c_add t ~rd ~rs2 =
  if rs2 = 0 then failwith "Asm.c_add: rs2 must not be x0";
  raw16 t ((0b1001 lsl 12) lor (rd lsl 7) lor (rs2 lsl 2) lor 0b10)

let cj_imm offset =
  check_range ~what:"c.j" ~bits:12 ~signed:true offset;
  if offset land 1 <> 0 then failwith "Asm: odd c.j offset";
  let u = mask 12 offset in
  let b i = (u lsr i) land 1 in
  (b 11 lsl 12) lor (b 4 lsl 11) lor (b 9 lsl 10) lor (b 8 lsl 9)
  lor (b 10 lsl 8) lor (b 6 lsl 7) lor (b 7 lsl 6) lor (b 3 lsl 5)
  lor (b 2 lsl 4) lor (b 1 lsl 3) lor (b 5 lsl 2)

let c_j t target =
  push t 2 (fun ~pc ~resolve ->
      (0b101 lsl 13) lor cj_imm (resolve target - pc) lor 0b01)

let c_nop t = raw16 t 0x0001

(* --- pseudo ---------------------------------------------------------------- *)

let nop t = addi t ~rd:0 ~rs1:0 0
let j t target = jal t ~rd:0 target

let li t ~rd v =
  let v = v land 0xFFFFFFFF in
  let v = if v land 0x80000000 <> 0 then v - 0x100000000 else v in
  let lo12 = v land 0xFFF in
  let lo12 = if lo12 >= 0x800 then lo12 - 0x1000 else lo12 in
  let hi20 = (v - lo12) asr 12 land 0xFFFFF in
  if hi20 = 0 then addi t ~rd ~rs1:0 lo12
  else begin
    lui t ~rd hi20;
    if lo12 <> 0 then addi t ~rd ~rs1:rd lo12
  end

(* --- assembly --------------------------------------------------------------- *)

let assemble t =
  let resolve name =
    match Hashtbl.find_opt t.labels name with
    | Some a -> a
    | None -> failwith ("Asm: undefined label " ^ name)
  in
  let items = List.rev t.items in
  let total_bytes = t.pc - t.base in
  let halfwords = Array.make ((total_bytes + 1) / 2) 0 in
  let pc = ref t.base in
  List.iter
    (fun item ->
      let word = item.emit ~pc:!pc ~resolve in
      let idx = (!pc - t.base) / 2 in
      halfwords.(idx) <- word land 0xFFFF;
      if item.size = 4 then halfwords.(idx + 1) <- (word lsr 16) land 0xFFFF;
      pc := !pc + item.size)
    items;
  halfwords

let words t =
  let hw = assemble t in
  let n = (Array.length hw + 1) / 2 in
  Array.init n (fun i ->
      let lo = hw.(2 * i) in
      let hi = if (2 * i) + 1 < Array.length hw then hw.((2 * i) + 1) else 0 in
      lo lor (hi lsl 16))
