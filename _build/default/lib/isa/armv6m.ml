type t = {
  name : string;
  enc : Encoding.t;
}

let def name pat = { name; enc = Encoding.of_pattern pat }

(* 16-bit Thumb encodings, MSB-first.  Order matters for decode16:
   specialized encodings (movs_reg within lsls_imm, udf/svc within the
   conditional-branch space) come before the general ones. *)
let narrow =
  [
    (* shift (immediate), add, subtract, move, compare *)
    def "movs_reg"   "00000_00000_zzz_zzz";
    def "lsls_imm"   "00000_zzzzz_zzz_zzz";
    def "lsrs_imm"   "00001_zzzzz_zzz_zzz";
    def "asrs_imm"   "00010_zzzzz_zzz_zzz";
    def "adds_reg"   "0001100_zzz_zzz_zzz";
    def "subs_reg"   "0001101_zzz_zzz_zzz";
    def "adds_imm3"  "0001110_zzz_zzz_zzz";
    def "subs_imm3"  "0001111_zzz_zzz_zzz";
    def "movs_imm"   "00100_zzz_zzzzzzzz";
    def "cmp_imm"    "00101_zzz_zzzzzzzz";
    def "adds_imm8"  "00110_zzz_zzzzzzzz";
    def "subs_imm8"  "00111_zzz_zzzzzzzz";
    (* data processing, register *)
    def "ands"       "0100000000_zzz_zzz";
    def "eors"       "0100000001_zzz_zzz";
    def "lsls_reg"   "0100000010_zzz_zzz";
    def "lsrs_reg"   "0100000011_zzz_zzz";
    def "asrs_reg"   "0100000100_zzz_zzz";
    def "adcs"       "0100000101_zzz_zzz";
    def "sbcs"       "0100000110_zzz_zzz";
    def "rors"       "0100000111_zzz_zzz";
    def "tst"        "0100001000_zzz_zzz";
    def "rsbs"       "0100001001_zzz_zzz";
    def "cmp_reg"    "0100001010_zzz_zzz";
    def "cmn"        "0100001011_zzz_zzz";
    def "orrs"       "0100001100_zzz_zzz";
    def "muls"       "0100001101_zzz_zzz";
    def "bics"       "0100001110_zzz_zzz";
    def "mvns"       "0100001111_zzz_zzz";
    (* special data, branch and exchange *)
    def "add_hi"     "01000100_z_zzzz_zzz";
    def "cmp_hi"     "01000101_z_zzzz_zzz";
    def "mov_hi"     "01000110_z_zzzz_zzz";
    def "bx"         "010001110_zzzz_000";
    def "blx_reg"    "010001111_zzzz_000";
    (* load/store *)
    def "ldr_lit"    "01001_zzz_zzzzzzzz";
    def "str_reg"    "0101000_zzz_zzz_zzz";
    def "strh_reg"   "0101001_zzz_zzz_zzz";
    def "strb_reg"   "0101010_zzz_zzz_zzz";
    def "ldrsb_reg"  "0101011_zzz_zzz_zzz";
    def "ldr_reg"    "0101100_zzz_zzz_zzz";
    def "ldrh_reg"   "0101101_zzz_zzz_zzz";
    def "ldrb_reg"   "0101110_zzz_zzz_zzz";
    def "ldrsh_reg"  "0101111_zzz_zzz_zzz";
    def "str_imm"    "01100_zzzzz_zzz_zzz";
    def "ldr_imm"    "01101_zzzzz_zzz_zzz";
    def "strb_imm"   "01110_zzzzz_zzz_zzz";
    def "ldrb_imm"   "01111_zzzzz_zzz_zzz";
    def "strh_imm"   "10000_zzzzz_zzz_zzz";
    def "ldrh_imm"   "10001_zzzzz_zzz_zzz";
    def "str_sp"     "10010_zzz_zzzzzzzz";
    def "ldr_sp"     "10011_zzz_zzzzzzzz";
    (* pc/sp relative address generation *)
    def "adr"        "10100_zzz_zzzzzzzz";
    def "add_sp_imm8" "10101_zzz_zzzzzzzz";
    (* miscellaneous *)
    def "add_sp_imm7" "101100000_zzzzzzz";
    def "sub_sp_imm7" "101100001_zzzzzzz";
    def "sxth"       "1011001000_zzz_zzz";
    def "sxtb"       "1011001001_zzz_zzz";
    def "uxth"       "1011001010_zzz_zzz";
    def "uxtb"       "1011001011_zzz_zzz";
    def "push"       "1011010_z_zzzzzzzz";
    def "cps"        "10110110011_z_0010";
    def "rev"        "1011101000_zzz_zzz";
    def "rev16"      "1011101001_zzz_zzz";
    def "revsh"      "1011101011_zzz_zzz";
    def "pop"        "1011110_z_zzzzzzzz";
    def "bkpt"       "10111110_zzzzzzzz";
    def "nop"        "1011111100000000";
    def "yield"      "1011111100010000";
    def "wfe"        "1011111100100000";
    def "wfi"        "1011111100110000";
    def "sev"        "1011111101000000";
    (* load/store multiple *)
    def "stm"        "11000_zzz_zzzzzzzz";
    def "ldm"        "11001_zzz_zzzzzzzz";
    (* conditional branch space; UDF and SVC occupy cond=1110/1111 *)
    def "udf"        "11011110_zzzzzzzz";
    def "svc"        "11011111_zzzzzzzz";
    def "b_cond"     "1101_zzzz_zzzzzzzz";
    def "b"          "11100_zzzzzzzzzzz";
  ]

(* 32-bit encodings as (first halfword << 16) | second halfword. *)
let wide_instrs =
  [
    def "bl"     "11110_zzzzzzzzzzz_11_z_1_z_zzzzzzzzzzz";
    def "msr"    "111100111000_zzzz_10001000_zzzzzzzz";
    def "mrs"    "1111001111101111_1000_zzzz_zzzzzzzz";
    def "dsb"    "1111001110111111_100011110100_zzzz";
    def "dmb"    "1111001110111111_100011110101_zzzz";
    def "isb"    "1111001110111111_100011110110_zzzz";
    def "udf_w"  "111101111111_zzzz_1010_zzzzzzzzzzzz";
  ]

let all = narrow @ wide_instrs

let find name = List.find (fun i -> i.name = name) all
let names l = List.map (fun i -> i.name) l

let decode16 word =
  List.find_opt (fun i -> Encoding.matches i.enc word) narrow

let is_wide halfword =
  let top5 = (halfword lsr 11) land 0x1F in
  top5 = 0b11101 || top5 = 0b11110 || top5 = 0b11111

let wide = names wide_instrs

let interesting_subset =
  let removed =
    wide @ [ "muls"; "sev"; "wfe"; "wfi"; "yield" ]
  in
  List.filter (fun i -> not (List.mem i.name removed)) all |> names
