type t = {
  mask : int;
  value : int;
  width : int;
}

let make ~width ~mask ~value =
  if width <> 16 && width <> 32 then invalid_arg "Encoding.make: width must be 16 or 32";
  if value land lnot mask <> 0 then
    invalid_arg "Encoding.make: value bits outside mask";
  let full = (1 lsl width) - 1 in
  if mask land lnot full <> 0 then invalid_arg "Encoding.make: mask exceeds width";
  { mask; value; width }

let matches t word = word land t.mask = t.value

let overlap a b =
  a.width = b.width && a.value land b.mask = b.value land a.mask

let random_instance rng t =
  let free = lnot t.mask land ((1 lsl t.width) - 1) in
  let r = Random.State.bits rng lor (Random.State.bits rng lsl 30) in
  t.value lor (r land free)

let of_pattern s =
  let bits = ref [] in
  String.iter
    (fun ch -> match ch with
      | '_' | ' ' -> ()
      | c -> bits := c :: !bits)
    s;
  (* !bits is now LSB first *)
  let width = List.length !bits in
  if width <> 16 && width <> 32 then
    invalid_arg (Printf.sprintf "Encoding.of_pattern: %d bits in %S" width s);
  let mask = ref 0 and value = ref 0 in
  List.iteri
    (fun i c ->
      match c with
      | '0' -> mask := !mask lor (1 lsl i)
      | '1' ->
          mask := !mask lor (1 lsl i);
          value := !value lor (1 lsl i)
      | 'a' .. 'z' | 'A' .. 'Z' | '?' -> ()
      | c -> invalid_arg (Printf.sprintf "Encoding.of_pattern: bad char %C" c))
    !bits;
  make ~width ~mask:!mask ~value:!value

let pp fmt t =
  Format.fprintf fmt "@[<h>";
  for i = t.width - 1 downto 0 do
    if t.mask land (1 lsl i) = 0 then Format.pp_print_char fmt 'z'
    else Format.pp_print_char fmt (if t.value land (1 lsl i) <> 0 then '1' else '0')
  done;
  Format.fprintf fmt "@]"
