(** A small two-pass RV32IMC assembler, used to build the test programs
    and synthetic workload kernels that run on the core models.

    Programs are built imperatively; branch/jump targets are labels
    resolved at {!assemble} time.  The output is an array of 16-bit
    halfwords starting at the base address, so mixed 16/32-bit
    instruction streams are represented exactly. *)

type t

val create : ?base:int -> unit -> t
(** [base] is the byte address of the first instruction (default 0). *)

val label : t -> string -> unit
val here : t -> int
(** Current byte address. *)

(* RV32I *)

val lui : t -> rd:int -> int -> unit
(** Immediate is the raw 20-bit field. *)

val auipc : t -> rd:int -> int -> unit
val jal : t -> rd:int -> string -> unit
val jalr : t -> rd:int -> rs1:int -> int -> unit
val beq : t -> rs1:int -> rs2:int -> string -> unit
val bne : t -> rs1:int -> rs2:int -> string -> unit
val blt : t -> rs1:int -> rs2:int -> string -> unit
val bge : t -> rs1:int -> rs2:int -> string -> unit
val bltu : t -> rs1:int -> rs2:int -> string -> unit
val bgeu : t -> rs1:int -> rs2:int -> string -> unit
val lb : t -> rd:int -> rs1:int -> int -> unit
val lh : t -> rd:int -> rs1:int -> int -> unit
val lw : t -> rd:int -> rs1:int -> int -> unit
val lbu : t -> rd:int -> rs1:int -> int -> unit
val lhu : t -> rd:int -> rs1:int -> int -> unit
val sb : t -> rs2:int -> rs1:int -> int -> unit
val sh : t -> rs2:int -> rs1:int -> int -> unit
val sw : t -> rs2:int -> rs1:int -> int -> unit
val addi : t -> rd:int -> rs1:int -> int -> unit
val slti : t -> rd:int -> rs1:int -> int -> unit
val sltiu : t -> rd:int -> rs1:int -> int -> unit
val xori : t -> rd:int -> rs1:int -> int -> unit
val ori : t -> rd:int -> rs1:int -> int -> unit
val andi : t -> rd:int -> rs1:int -> int -> unit
val slli : t -> rd:int -> rs1:int -> int -> unit
val srli : t -> rd:int -> rs1:int -> int -> unit
val srai : t -> rd:int -> rs1:int -> int -> unit
val add : t -> rd:int -> rs1:int -> rs2:int -> unit
val sub : t -> rd:int -> rs1:int -> rs2:int -> unit
val sll : t -> rd:int -> rs1:int -> rs2:int -> unit
val slt : t -> rd:int -> rs1:int -> rs2:int -> unit
val sltu : t -> rd:int -> rs1:int -> rs2:int -> unit
val xor : t -> rd:int -> rs1:int -> rs2:int -> unit
val srl : t -> rd:int -> rs1:int -> rs2:int -> unit
val sra : t -> rd:int -> rs1:int -> rs2:int -> unit
val or_ : t -> rd:int -> rs1:int -> rs2:int -> unit
val and_ : t -> rd:int -> rs1:int -> rs2:int -> unit
val fence : t -> unit
val ecall : t -> unit
val ebreak : t -> unit

(* M extension *)

val mul : t -> rd:int -> rs1:int -> rs2:int -> unit
val mulh : t -> rd:int -> rs1:int -> rs2:int -> unit
val mulhsu : t -> rd:int -> rs1:int -> rs2:int -> unit
val mulhu : t -> rd:int -> rs1:int -> rs2:int -> unit
val div : t -> rd:int -> rs1:int -> rs2:int -> unit
val divu : t -> rd:int -> rs1:int -> rs2:int -> unit
val rem : t -> rd:int -> rs1:int -> rs2:int -> unit
val remu : t -> rd:int -> rs1:int -> rs2:int -> unit

(* Zicsr *)

val csrrw : t -> rd:int -> rs1:int -> csr:int -> unit
val csrrs : t -> rd:int -> rs1:int -> csr:int -> unit

(* C extension (selected encodings, for mixed-width streams) *)

val c_addi : t -> rd:int -> int -> unit
val c_li : t -> rd:int -> int -> unit
val c_mv : t -> rd:int -> rs2:int -> unit
val c_add : t -> rd:int -> rs2:int -> unit
val c_j : t -> string -> unit
val c_nop : t -> unit

(* pseudo *)

val li : t -> rd:int -> int -> unit
(** Expands to lui+addi as needed; full 32-bit range. *)

val nop : t -> unit
val j : t -> string -> unit
val raw32 : t -> int -> unit
val raw16 : t -> int -> unit

val assemble : t -> int array
(** Halfwords from the base address.  @raise Failure on undefined
    labels or out-of-range immediates. *)

val words : t -> int array
(** Convenience: the program as 32-bit little-endian words (padded
    with a trailing zero halfword if odd). *)
