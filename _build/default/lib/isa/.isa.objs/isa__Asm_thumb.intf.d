lib/isa/asm_thumb.mli:
