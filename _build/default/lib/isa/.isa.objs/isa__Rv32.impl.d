lib/isa/rv32.ml: Encoding List
