lib/isa/workloads.ml: List Rv32 Subset
