lib/isa/encoding.ml: Format List Printf Random String
