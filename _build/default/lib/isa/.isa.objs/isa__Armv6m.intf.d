lib/isa/armv6m.mli: Encoding
