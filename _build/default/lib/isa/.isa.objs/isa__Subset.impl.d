lib/isa/subset.ml: Armv6m List Printf Rv32
