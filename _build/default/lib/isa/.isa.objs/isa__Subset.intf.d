lib/isa/subset.mli: Encoding
