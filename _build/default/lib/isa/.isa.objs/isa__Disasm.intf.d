lib/isa/disasm.mli:
