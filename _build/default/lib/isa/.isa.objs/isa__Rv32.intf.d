lib/isa/rv32.mli: Encoding
