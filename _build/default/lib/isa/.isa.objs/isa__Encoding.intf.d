lib/isa/encoding.mli: Format Random
