lib/isa/disasm.ml: Array List Printf Rv32
