lib/isa/armv6m.ml: Encoding List
