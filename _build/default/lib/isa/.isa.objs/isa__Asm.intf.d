lib/isa/asm.mli:
