lib/isa/workloads.mli: Subset
