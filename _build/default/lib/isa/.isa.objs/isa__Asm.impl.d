lib/isa/asm.ml: Array Hashtbl List Printf
