lib/isa/asm_thumb.ml: Array Hashtbl List Printf
