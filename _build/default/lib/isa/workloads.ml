type group = Networking | Security | Automotive

let group_name = function
  | Networking -> "networking"
  | Security -> "security"
  | Automotive -> "automotive"

let groups = [ Networking; Security; Automotive ]

(* Base-ISA usage.  Cardinalities match Table I: 18 / 24 / 28, union 29. *)
let net_base =
  [ "lui"; "jal"; "jalr"; "beq"; "bne"; "blt"; "lw"; "lbu"; "sb"; "sw";
    "addi"; "andi"; "add"; "sub"; "sll"; "srl"; "and"; "or" ]

let sec_base =
  [ "lui"; "jal"; "jalr"; "beq"; "bne"; "bltu"; "bgeu"; "lb"; "lw"; "lbu";
    "lhu"; "sb"; "sh"; "sw"; "addi"; "xori"; "ori"; "andi"; "add"; "sub";
    "sll"; "srl"; "and"; "or" ]

let auto_base =
  [ "lui"; "auipc"; "jal"; "jalr"; "beq"; "bne"; "blt"; "bge"; "bltu";
    "bgeu"; "lb"; "lh"; "lw"; "lbu"; "lhu"; "sb"; "sh"; "sw"; "addi";
    "slti"; "xori"; "ori"; "andi"; "add"; "sub"; "sll"; "srl"; "and" ]

(* M-extension usage: 2 / 0 / 3, union 4. *)
let net_m = [ "mul"; "mulhu" ]
let sec_m = []
let auto_m = [ "mul"; "div"; "rem" ]

(* C-extension usage: 13 / 18 / 19, union 20. *)
let net_c =
  [ "c.addi4spn"; "c.lw"; "c.sw"; "c.addi"; "c.li"; "c.j"; "c.beqz";
    "c.bnez"; "c.slli"; "c.lwsp"; "c.swsp"; "c.mv"; "c.and" ]

let sec_c =
  [ "c.addi4spn"; "c.lw"; "c.sw"; "c.addi"; "c.jal"; "c.li"; "c.lui";
    "c.srli"; "c.andi"; "c.j"; "c.beqz"; "c.bnez"; "c.slli"; "c.lwsp";
    "c.swsp"; "c.jr"; "c.mv"; "c.add" ]

let auto_c =
  [ "c.addi4spn"; "c.lw"; "c.sw"; "c.addi"; "c.jal"; "c.li"; "c.lui";
    "c.srli"; "c.andi"; "c.sub"; "c.j"; "c.beqz"; "c.bnez"; "c.slli";
    "c.lwsp"; "c.swsp"; "c.jr"; "c.mv"; "c.add" ]

let riscv g =
  let base, m, c =
    match g with
    | Networking -> (net_base, net_m, net_c)
    | Security -> (sec_base, sec_m, sec_c)
    | Automotive -> (auto_base, auto_m, auto_c)
  in
  Subset.make Subset.Riscv ("mibench-" ^ group_name g) (base @ m @ c)

let riscv_all =
  List.fold_left
    (fun acc g -> Subset.union "mibench-all" acc (riscv g))
    (riscv Networking) groups

(* ARMv6-M usage: 33 / 40 / 48, union 50 (Table I, Cortex-M0 half). *)
let auto_arm =
  [ "movs_reg"; "lsls_imm"; "lsrs_imm"; "asrs_imm"; "adds_reg"; "subs_reg";
    "adds_imm3"; "subs_imm3"; "movs_imm"; "cmp_imm"; "adds_imm8";
    "subs_imm8"; "ands"; "eors"; "lsls_reg"; "lsrs_reg"; "asrs_reg";
    "adcs"; "sbcs"; "orrs"; "muls"; "bics"; "mvns"; "tst"; "rsbs";
    "cmp_reg"; "add_hi"; "mov_hi"; "bx"; "blx_reg"; "ldr_lit"; "str_reg";
    "ldr_reg"; "ldrb_reg"; "strb_reg"; "str_imm"; "ldr_imm"; "strb_imm";
    "ldrb_imm"; "strh_imm"; "ldrh_imm"; "str_sp"; "ldr_sp"; "push"; "pop";
    "b_cond"; "b"; "bl" ]

let sec_arm =
  List.filter
    (fun i ->
      not
        (List.mem i
           [ "muls"; "adcs"; "sbcs"; "rsbs"; "blx_reg"; "strh_imm";
             "ldrh_imm"; "mvns" ]))
    auto_arm

let net_arm =
  [ "movs_reg"; "lsls_imm"; "lsrs_imm"; "adds_reg"; "subs_reg";
    "adds_imm3"; "movs_imm"; "cmp_imm"; "adds_imm8"; "subs_imm8"; "ands";
    "eors"; "lsls_reg"; "lsrs_reg"; "cmp_reg"; "mov_hi"; "bx"; "ldr_lit";
    "str_reg"; "ldr_reg"; "ldrb_reg"; "strb_reg"; "str_imm"; "ldr_imm";
    "strb_imm"; "ldrb_imm"; "push"; "pop"; "b_cond"; "b"; "bl";
    "uxtb"; "uxth" ]

let arm g =
  let l =
    match g with
    | Networking -> net_arm
    | Security -> sec_arm
    | Automotive -> auto_arm
  in
  Subset.make Subset.Arm ("mibench-" ^ group_name g) l

let arm_all =
  List.fold_left
    (fun acc g -> Subset.union "mibench-all" acc (arm g))
    (arm Networking) groups

let count_ext subset ext =
  List.length
    (List.filter
       (fun nm -> (Rv32.find nm).Rv32.ext = ext)
       (Subset.instructions subset))

let table1_riscv =
  let row name ext =
    ( name,
      count_ext (riscv Networking) ext,
      count_ext (riscv Security) ext,
      count_ext (riscv Automotive) ext,
      count_ext riscv_all ext )
  in
  [
    row "RV32i base" Rv32.I;
    row "M-Extension" Rv32.M;
    row "C-Extension" Rv32.C;
    ( "Zicsr-Extension",
      count_ext (riscv Networking) Rv32.Zicsr,
      count_ext (riscv Security) Rv32.Zicsr,
      count_ext (riscv Automotive) Rv32.Zicsr,
      count_ext riscv_all Rv32.Zicsr );
  ]

let table1_arm =
  ( Subset.size (arm Networking),
    Subset.size (arm Security),
    Subset.size (arm Automotive),
    Subset.size arm_all )
