(** ISA subsets: the unit of "what the reduced core must still
    support".  A subset is a named set of instruction names of one
    architecture; PDAT turns it into an environment restriction. *)

type arch = Riscv | Arm

type t

val make : arch -> string -> string list -> t
(** @raise Invalid_argument on names unknown to the architecture's
    table or on duplicates. *)

val arch : t -> arch
val name : t -> string
val instructions : t -> string list
(** Sorted, deduplicated. *)

val size : t -> int
val mem : t -> string -> bool

val union : string -> t -> t -> t
val remove : string -> t -> string list -> t
val inter : string -> t -> t -> t

val encodings : t -> Encoding.t list

(* RISC-V family subsets used across the evaluation *)

val rv32imcz : t
(** Everything the Ibex-like core implements. *)

val rv32imc : t
val rv32im : t
val rv32ic : t
val rv32i : t

val rv32e : t
(** RV32E proxy: RV32I restricted to 16 architectural registers; the
    register restriction itself is expressed by the environment (free
    register-field bits are constrained), so the instruction list
    equals RV32I. *)

val rv32i_reduced_addressing : t
(** RV32I without the R-type register-register instructions. *)

val rv32i_safety_critical : t
(** RV32I without JALR/AUIPC/FENCE/ECALL/EBREAK. *)

val rv32i_no_parallelism : t
(** RV32I without the bitwise/shift instructions. *)

val rv32i_aligned : t
(** Same instruction list as RV32I; misalignment is an *operand*
    restriction handled by the environment, see {!Pdat.Environment}. *)

val risc16 : t                    (** the compressed RiSC-16-like subset *)

(* ARMv6-M subsets *)

val armv6m_full : t
val armv6m_interesting : t
