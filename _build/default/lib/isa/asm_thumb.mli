(** A small two-pass ARMv6-M (Thumb) assembler for the Cortex-M0-like
    core's test programs.  Output is an array of 16-bit halfwords;
    32-bit encodings (BL) emit two. *)

type t

val create : ?base:int -> unit -> t
val label : t -> string -> unit
val here : t -> int

(* moves, arithmetic, compare *)

(* MOVS rd, #imm8 *)
val movs : t -> rd:int -> int -> unit
(* MOV rd, rm (high registers allowed) *)
val mov_reg : t -> rd:int -> rm:int -> unit
val adds_imm3 : t -> rd:int -> rn:int -> int -> unit
val subs_imm3 : t -> rd:int -> rn:int -> int -> unit
val adds_imm8 : t -> rdn:int -> int -> unit
val subs_imm8 : t -> rdn:int -> int -> unit
val adds_reg : t -> rd:int -> rn:int -> rm:int -> unit
val subs_reg : t -> rd:int -> rn:int -> rm:int -> unit
val add_hi : t -> rdn:int -> rm:int -> unit
val cmp_imm : t -> rn:int -> int -> unit
val cmp_reg : t -> rn:int -> rm:int -> unit

(* data processing (rdn at [2:0], rm at [5:3]) *)

val ands : t -> rdn:int -> rm:int -> unit
val eors : t -> rdn:int -> rm:int -> unit
val orrs : t -> rdn:int -> rm:int -> unit
val bics : t -> rdn:int -> rm:int -> unit
val mvns : t -> rd:int -> rm:int -> unit
val tst : t -> rn:int -> rm:int -> unit
val adcs : t -> rdn:int -> rm:int -> unit
val sbcs : t -> rdn:int -> rm:int -> unit
val rsbs : t -> rd:int -> rn:int -> unit
val muls : t -> rdm:int -> rn:int -> unit
val cmn : t -> rn:int -> rm:int -> unit

(* shifts *)

val lsls_imm : t -> rd:int -> rm:int -> int -> unit
val lsrs_imm : t -> rd:int -> rm:int -> int -> unit
val asrs_imm : t -> rd:int -> rm:int -> int -> unit
val lsls_reg : t -> rdn:int -> rs:int -> unit
val lsrs_reg : t -> rdn:int -> rs:int -> unit
val asrs_reg : t -> rdn:int -> rs:int -> unit
val rors_reg : t -> rdn:int -> rs:int -> unit

(* memory *)

(* word access, byte offset must be a multiple of 4 *)
val str_imm : t -> rt:int -> rn:int -> int -> unit
val ldr_imm : t -> rt:int -> rn:int -> int -> unit
val strb_imm : t -> rt:int -> rn:int -> int -> unit
val ldrb_imm : t -> rt:int -> rn:int -> int -> unit
val strh_imm : t -> rt:int -> rn:int -> int -> unit
val ldrh_imm : t -> rt:int -> rn:int -> int -> unit
val str_reg : t -> rt:int -> rn:int -> rm:int -> unit
val ldr_reg : t -> rt:int -> rn:int -> rm:int -> unit
val ldrsb_reg : t -> rt:int -> rn:int -> rm:int -> unit
val ldrsh_reg : t -> rt:int -> rn:int -> rm:int -> unit
val str_sp : t -> rt:int -> int -> unit
val ldr_sp : t -> rt:int -> int -> unit
(* operand lists take low registers only *)
val push : t -> ?lr:bool -> int list -> unit
val pop : t -> ?pc:bool -> int list -> unit
val stm : t -> rn:int -> int list -> unit
val ldm : t -> rn:int -> int list -> unit

(* misc *)

val sxtb : t -> rd:int -> rm:int -> unit
val sxth : t -> rd:int -> rm:int -> unit
val uxtb : t -> rd:int -> rm:int -> unit
val uxth : t -> rd:int -> rm:int -> unit
val rev : t -> rd:int -> rm:int -> unit
val add_sp_imm : t -> int -> unit
val sub_sp_imm : t -> int -> unit
val nop : t -> unit

(* control flow *)

type cond = EQ | NE | CS | CC | MI | PL | VS | VC | HI | LS | GE | LT | GT | LE

val b_cond : t -> cond -> string -> unit
val b : t -> string -> unit
val bl : t -> string -> unit
val bx : t -> rm:int -> unit
val blx : t -> rm:int -> unit
val svc : t -> int -> unit
val udf : t -> unit
val raw16 : t -> int -> unit

val assemble : t -> int array
