type ext = I | M | C | Zicsr | Zifencei

type t = {
  name : string;
  ext : ext;
  enc : Encoding.t;
}

let def name ext pat = { name; ext; enc = Encoding.of_pattern pat }

(* 32-bit patterns are written MSB-first:
   funct7 _ rs2 _ rs1 _ funct3 _ rd _ opcode.  'z' bits are free. *)

let base =
  [
    def "lui"    I "zzzzzzzzzzzzzzzzzzzz_zzzzz_0110111";
    def "auipc"  I "zzzzzzzzzzzzzzzzzzzz_zzzzz_0010111";
    def "jal"    I "zzzzzzzzzzzzzzzzzzzz_zzzzz_1101111";
    def "jalr"   I "zzzzzzzzzzzz_zzzzz_000_zzzzz_1100111";
    def "beq"    I "zzzzzzz_zzzzz_zzzzz_000_zzzzz_1100011";
    def "bne"    I "zzzzzzz_zzzzz_zzzzz_001_zzzzz_1100011";
    def "blt"    I "zzzzzzz_zzzzz_zzzzz_100_zzzzz_1100011";
    def "bge"    I "zzzzzzz_zzzzz_zzzzz_101_zzzzz_1100011";
    def "bltu"   I "zzzzzzz_zzzzz_zzzzz_110_zzzzz_1100011";
    def "bgeu"   I "zzzzzzz_zzzzz_zzzzz_111_zzzzz_1100011";
    def "lb"     I "zzzzzzzzzzzz_zzzzz_000_zzzzz_0000011";
    def "lh"     I "zzzzzzzzzzzz_zzzzz_001_zzzzz_0000011";
    def "lw"     I "zzzzzzzzzzzz_zzzzz_010_zzzzz_0000011";
    def "lbu"    I "zzzzzzzzzzzz_zzzzz_100_zzzzz_0000011";
    def "lhu"    I "zzzzzzzzzzzz_zzzzz_101_zzzzz_0000011";
    def "sb"     I "zzzzzzz_zzzzz_zzzzz_000_zzzzz_0100011";
    def "sh"     I "zzzzzzz_zzzzz_zzzzz_001_zzzzz_0100011";
    def "sw"     I "zzzzzzz_zzzzz_zzzzz_010_zzzzz_0100011";
    def "addi"   I "zzzzzzzzzzzz_zzzzz_000_zzzzz_0010011";
    def "slti"   I "zzzzzzzzzzzz_zzzzz_010_zzzzz_0010011";
    def "sltiu"  I "zzzzzzzzzzzz_zzzzz_011_zzzzz_0010011";
    def "xori"   I "zzzzzzzzzzzz_zzzzz_100_zzzzz_0010011";
    def "ori"    I "zzzzzzzzzzzz_zzzzz_110_zzzzz_0010011";
    def "andi"   I "zzzzzzzzzzzz_zzzzz_111_zzzzz_0010011";
    def "slli"   I "0000000_zzzzz_zzzzz_001_zzzzz_0010011";
    def "srli"   I "0000000_zzzzz_zzzzz_101_zzzzz_0010011";
    def "srai"   I "0100000_zzzzz_zzzzz_101_zzzzz_0010011";
    def "add"    I "0000000_zzzzz_zzzzz_000_zzzzz_0110011";
    def "sub"    I "0100000_zzzzz_zzzzz_000_zzzzz_0110011";
    def "sll"    I "0000000_zzzzz_zzzzz_001_zzzzz_0110011";
    def "slt"    I "0000000_zzzzz_zzzzz_010_zzzzz_0110011";
    def "sltu"   I "0000000_zzzzz_zzzzz_011_zzzzz_0110011";
    def "xor"    I "0000000_zzzzz_zzzzz_100_zzzzz_0110011";
    def "srl"    I "0000000_zzzzz_zzzzz_101_zzzzz_0110011";
    def "sra"    I "0100000_zzzzz_zzzzz_101_zzzzz_0110011";
    def "or"     I "0000000_zzzzz_zzzzz_110_zzzzz_0110011";
    def "and"    I "0000000_zzzzz_zzzzz_111_zzzzz_0110011";
    def "fence"  I "zzzz_zzzz_zzzz_zzzzz_000_zzzzz_0001111";
    def "ecall"  I "00000000000000000000000001110011";
    def "ebreak" I "00000000000100000000000001110011";
  ]

let m_ext =
  [
    def "mul"    M "0000001_zzzzz_zzzzz_000_zzzzz_0110011";
    def "mulh"   M "0000001_zzzzz_zzzzz_001_zzzzz_0110011";
    def "mulhsu" M "0000001_zzzzz_zzzzz_010_zzzzz_0110011";
    def "mulhu"  M "0000001_zzzzz_zzzzz_011_zzzzz_0110011";
    def "div"    M "0000001_zzzzz_zzzzz_100_zzzzz_0110011";
    def "divu"   M "0000001_zzzzz_zzzzz_101_zzzzz_0110011";
    def "rem"    M "0000001_zzzzz_zzzzz_110_zzzzz_0110011";
    def "remu"   M "0000001_zzzzz_zzzzz_111_zzzzz_0110011";
  ]

(* 16-bit compressed patterns, MSB-first: funct3 _ ... _ op.
   Some encodings deliberately overlap (c.addi16sp within c.lui's
   format, c.jr/c.mv, c.jalr/c.add/c.ebreak); decode16 resolves by
   list order, most specific first. *)
let c_ext =
  [
    def "c.addi4spn" C "000_zzzzzzzz_zzz_00";
    def "c.lw"       C "010_zzz_zzz_zz_zzz_00";
    def "c.sw"       C "110_zzz_zzz_zz_zzz_00";
    def "c.addi"     C "000_z_zzzzz_zzzzz_01";
    def "c.jal"      C "001_z_zzzzzzzzzz_01";
    def "c.li"       C "010_z_zzzzz_zzzzz_01";
    def "c.addi16sp" C "011_z_00010_zzzzz_01";
    def "c.lui"      C "011_z_zzzzz_zzzzz_01";
    def "c.srli"     C "100_0_00_zzz_zzzzz_01";
    def "c.srai"     C "100_0_01_zzz_zzzzz_01";
    def "c.andi"     C "100_z_10_zzz_zzzzz_01";
    def "c.sub"      C "100_0_11_zzz_00_zzz_01";
    def "c.xor"      C "100_0_11_zzz_01_zzz_01";
    def "c.or"       C "100_0_11_zzz_10_zzz_01";
    def "c.and"      C "100_0_11_zzz_11_zzz_01";
    def "c.j"        C "101_z_zzzzzzzzzz_01";
    def "c.beqz"     C "110_zzz_zzz_zzzzz_01";
    def "c.bnez"     C "111_zzz_zzz_zzzzz_01";
    def "c.slli"     C "000_0_zzzzz_zzzzz_10";
    def "c.lwsp"     C "010_z_zzzzz_zzzzz_10";
    def "c.jr"       C "100_0_zzzzz_00000_10";
    def "c.mv"       C "100_0_zzzzz_zzzzz_10";
    def "c.ebreak"   C "100_1_00000_00000_10";
    def "c.jalr"     C "100_1_zzzzz_00000_10";
    def "c.add"      C "100_1_zzzzz_zzzzz_10";
    def "c.swsp"     C "110_zzzzzz_zzzzz_10";
  ]

let zicsr =
  [
    def "csrrw"  Zicsr "zzzzzzzzzzzz_zzzzz_001_zzzzz_1110011";
    def "csrrs"  Zicsr "zzzzzzzzzzzz_zzzzz_010_zzzzz_1110011";
    def "csrrc"  Zicsr "zzzzzzzzzzzz_zzzzz_011_zzzzz_1110011";
    def "csrrwi" Zicsr "zzzzzzzzzzzz_zzzzz_101_zzzzz_1110011";
    def "csrrsi" Zicsr "zzzzzzzzzzzz_zzzzz_110_zzzzz_1110011";
    def "csrrci" Zicsr "zzzzzzzzzzzz_zzzzz_111_zzzzz_1110011";
  ]

let zifencei = [ def "fence.i" Zifencei "zzzz_zzzz_zzzz_zzzzz_001_zzzzz_0001111" ]

let all = base @ m_ext @ c_ext @ zicsr @ zifencei

let find name = List.find (fun i -> i.name = name) all
let by_ext e = List.filter (fun i -> i.ext = e) all
let names l = List.map (fun i -> i.name) l

(* decode priority: exact encodings (ecall/ebreak) must precede the
   free-field encodings they specialize; the table above already lists
   them before csr instructions via a dedicated pass below. *)
let decode32 word =
  let specials = [ find "ecall"; find "ebreak"; find "fence.i" ] in
  let try_list l = List.find_opt (fun i -> Encoding.matches i.enc word) l in
  match try_list specials with
  | Some i -> Some i
  | None ->
      try_list (List.filter (fun i -> i.enc.Encoding.width = 32) all)

let decode16 word =
  List.find_opt
    (fun i -> i.enc.Encoding.width = 16 && Encoding.matches i.enc word)
    c_ext

let is_compressed word = word land 3 <> 3

let ext_name = function
  | I -> "i"
  | M -> "m"
  | C -> "c"
  | Zicsr -> "zicsr"
  | Zifencei -> "zifencei"

let r_type =
  [ "add"; "sub"; "sll"; "slt"; "sltu"; "xor"; "srl"; "sra"; "or"; "and" ]

let safety_critical_removed = [ "jalr"; "auipc"; "fence"; "ecall"; "ebreak" ]

let bit_parallel =
  [ "and"; "or"; "xor"; "andi"; "ori"; "xori";
    "sll"; "srl"; "sra"; "slli"; "srli"; "srai" ]

let risc16 =
  [ "c.add"; "c.addi"; "c.and"; "c.xor"; "c.lui"; "c.lw"; "c.sw"; "c.beqz"; "c.jalr" ]
