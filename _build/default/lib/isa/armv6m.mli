(** The ARMv6-M (Cortex-M0 class) instruction set: 83 instructions,
    mostly 16-bit Thumb encodings plus the seven 32-bit encodings
    (BL, MSR, MRS, DSB, DMB, ISB, UDF.W).

    32-bit encodings are represented as [(first_halfword << 16) lor
    second_halfword].  ARMv6-M is {e not} modular — there is no
    extension structure to strip — which is exactly why the paper needs
    PDAT to reduce this core. *)

type t = {
  name : string;
  enc : Encoding.t;
}

val all : t list
(** All 83 instructions. *)

val find : string -> t
(** @raise Not_found for unknown names. *)

val names : t list -> string list

val decode16 : int -> t option
(** First matching 16-bit instruction (priority order resolves
    overlaps such as UDF/SVC within the B-conditional space). *)

val is_wide : int -> bool
(** Is this halfword the first half of a 32-bit encoding
    (0b11101 / 0b11110 / 0b11111 prefixes; in ARMv6-M only 0b11110 and
    0b11111 occur)? *)

val wide : string list
(** The seven 32-bit (four-byte) instructions. *)

val interesting_subset : string list
(** The paper's Fig. 6 "interesting subset": ARMv6-M minus memory
    ordering, inter-core signalling and hint instructions, the
    multiply, and all four-byte instructions; every remaining
    instruction is two bytes, so all branch targets stay inside the
    subset. *)
