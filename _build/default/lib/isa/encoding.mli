(** Mask/match instruction encodings.

    An encoding fixes some bits of an instruction word and leaves the
    rest (register and immediate fields) free — exactly the shape of
    the SVA properties in the paper's Listing 2, where an instruction
    class is [instr & mask = value]. *)

type t = {
  mask : int;   (** fixed-bit positions *)
  value : int;  (** required values at the fixed positions *)
  width : int;  (** 16 or 32 *)
}

val make : width:int -> mask:int -> value:int -> t
(** @raise Invalid_argument if [value] has bits outside [mask] or the
    width is not 16 or 32. *)

val matches : t -> int -> bool
(** Does a concrete instruction word match? *)

val overlap : t -> t -> bool
(** Can some word match both encodings (same width)? *)

val random_instance : Random.State.t -> t -> int
(** A concrete word matching the encoding, free bits randomized. *)

val of_pattern : string -> t
(** Parses a bit-pattern string like ["0100000_zzzzz_zzzzz_000_zzzzz_0110011"]:
    ['0']/['1'] are fixed bits (MSB first), any other letter is free,
    ['_'] is ignored.  Width is the number of bit characters. *)

val pp : Format.formatter -> t -> unit
