open Hdl.Ops
module Ctx = Hdl.Ctx
module Reg = Hdl.Reg
module Mem = Hdl.Mem

type t = {
  design : Netlist.Design.t;
  instr_port : string;
  cutpoint_bus : string;
}

(* Machine-mode CSR addresses implemented by the core. *)
let csr_mstatus = 0x300
let csr_misa = 0x301
let csr_mtvec = 0x305
let csr_mscratch = 0x340
let csr_mepc = 0x341
let csr_mcause = 0x342
let csr_cycle = 0xC00
let csr_instret = 0xC02
let csr_mhartid = 0xF14

let build () =
  let c = Ctx.create "ibex_like" in
  let instr_rdata = Ctx.input c "instr_rdata" 32 in
  let data_rdata = Ctx.input c "data_rdata" 32 in

  (* ------------------------------------------------------------------ *)
  (* Fetch stage state                                                    *)
  (* ------------------------------------------------------------------ *)
  let pc = Reg.create c ~init:0 ~width:32 "pc" in
  let if_id_instr = Reg.create c ~width:32 "if_id_instr" in
  let if_id_pc = Reg.create c ~width:32 "if_id_pc" in
  let if_id_valid = Reg.create c ~init:0 ~width:1 "if_id_valid" in
  let valid = Reg.q if_id_valid in
  let id_pc = Reg.q if_id_pc in

  (* ------------------------------------------------------------------ *)
  (* Decode                                                               *)
  (* ------------------------------------------------------------------ *)
  let exp = Rv_util.expand_compressed (Reg.q if_id_instr) in
  let instr = exp.Rv_util.instr32 in
  let dec = Rv_util.decode instr in
  let f3 = Rv_util.funct3 instr in
  let f7_sub = eq_const (Rv_util.funct7 instr) 0b0100000 in
  let rd_idx = Rv_util.rd instr in
  let rs1_idx = Rv_util.rs1 instr in
  let rs2_idx = Rv_util.rs2 instr in

  (* ------------------------------------------------------------------ *)
  (* Register file (x0 is a never-written word that holds its reset 0)    *)
  (* ------------------------------------------------------------------ *)
  let rf = Mem.create c ~words:32 ~width:32 "rf" in
  let rs1_val = Mem.read rf rs1_idx in
  let rs2_val = Mem.read rf rs2_idx in

  (* ------------------------------------------------------------------ *)
  (* Multiply / divide unit: iterative, 32 cycles, operands latched at    *)
  (* issue so an unused unit freezes to its reset state.                  *)
  (* ------------------------------------------------------------------ *)
  let is_muldiv = dec.Rv_util.is_mul |: dec.Rv_util.is_div in
  let md_busy = Reg.create c ~init:0 ~width:1 "md_busy" in
  let md_count = Reg.create c ~init:0 ~width:6 "md_count" in
  let md_start = valid &: is_muldiv &: ~:(Reg.q md_busy) in
  let md_done = Reg.q md_busy &: eq_const (Reg.q md_count) 0 in
  Reg.connect md_busy
    (mux2 md_start (Reg.q md_busy &: ~:md_done) (vdd c));
  (* 33 busy cycles: counts 32..1 iterate (32 steps), count 0 presents
     the result and releases the stall *)
  Reg.connect md_count
    (mux2 md_start
       (mux2 (Reg.q md_busy)
          (Reg.q md_count)
          (Reg.q md_count -: const c ~width:6 1))
       (const c ~width:6 32));

  (* operand magnitudes and result signs *)
  let a_signed =
    (* mulh, mulhsu take rs1 signed; div/rem signed variants too *)
    (dec.Rv_util.is_mul &: (eq_const f3 0b001 |: eq_const f3 0b010))
    |: (dec.Rv_util.is_div &: ~:(bit f3 0))
  in
  let b_signed =
    (dec.Rv_util.is_mul &: eq_const f3 0b001)
    |: (dec.Rv_util.is_div &: ~:(bit f3 0))
  in
  let gate en s = s &: repeat en 32 in
  let md_a_in = gate md_start rs1_val in
  let md_b_in = gate md_start rs2_val in
  let a_neg = a_signed &: msb md_a_in in
  let b_neg = b_signed &: msb md_b_in in
  let a_mag = mux2 a_neg md_a_in (negate md_a_in) in
  let b_mag = mux2 b_neg md_b_in (negate md_b_in) in
  (* latched control *)
  let md_sign_diff = Reg.create c ~init:0 ~width:1 "md_sign_diff" in
  Reg.connect_en md_sign_diff ~en:md_start (a_neg ^: b_neg) ;
  let md_a_neg = Reg.create c ~init:0 ~width:1 "md_a_neg" in
  Reg.connect_en md_a_neg ~en:md_start a_neg;
  (* raw operands latched for the div special cases *)
  let md_raw_a = Reg.create c ~init:0 ~width:32 "md_raw_a" in
  Reg.connect_en md_raw_a ~en:md_start md_a_in;
  let md_raw_b = Reg.create c ~init:0 ~width:32 "md_raw_b" in
  Reg.connect_en md_raw_b ~en:md_start md_b_in;

  (* per-unit issue/iterate strobes so that removing only MUL (or only
     DIV) from the ISA freezes exactly that unit's registers *)
  let md_iterate = Reg.q md_busy &: ~:md_done in
  let mul_start = md_start &: dec.Rv_util.is_mul in
  let div_start = md_start &: dec.Rv_util.is_div in
  let mul_iterate = md_iterate &: dec.Rv_util.is_mul in
  let div_iterate = md_iterate &: dec.Rv_util.is_div in

  (* multiplier: acc += breg[0] ? areg : 0; areg <<= 1; breg >>= 1 *)
  let mul_areg = Reg.create c ~init:0 ~width:64 "mul_areg" in
  let mul_breg = Reg.create c ~init:0 ~width:32 "mul_breg" in
  let mul_acc = Reg.create c ~init:0 ~width:64 "mul_acc" in
  let mul_step_acc =
    Reg.q mul_acc
    +: (Reg.q mul_areg &: repeat (lsb (Reg.q mul_breg)) 64)
  in
  Reg.connect mul_areg
    (mux2 mul_start
       (mux2 mul_iterate (Reg.q mul_areg) (sll_const (Reg.q mul_areg) 1))
       (zero_extend a_mag 64));
  Reg.connect mul_breg
    (mux2 mul_start
       (mux2 mul_iterate (Reg.q mul_breg) (srl_const (Reg.q mul_breg) 1))
       b_mag);
  Reg.connect mul_acc
    (mux2 mul_start
       (mux2 mul_iterate (Reg.q mul_acc) mul_step_acc)
       (zero c 64));
  let mul_product =
    mux2 (Reg.q md_sign_diff) (Reg.q mul_acc) (negate (Reg.q mul_acc))
  in
  let mul_result =
    mux2 (eq_const f3 0b000)
      (bits mul_product ~hi:63 ~lo:32)
      (bits mul_product ~hi:31 ~lo:0)
  in

  (* divider: restoring division on magnitudes *)
  let div_rem = Reg.create c ~init:0 ~width:33 "div_rem" in
  let div_quo = Reg.create c ~init:0 ~width:32 "div_quo" in
  let div_dvs = Reg.create c ~init:0 ~width:33 "div_dvs" in
  let div_shifted = concat [ bits (Reg.q div_rem) ~hi:31 ~lo:0; msb (Reg.q div_quo) ] in
  let div_diff = div_shifted -: Reg.q div_dvs in
  let div_ge = ~:(msb div_diff) in
  Reg.connect div_rem
    (mux2 div_start
       (mux2 div_iterate (Reg.q div_rem) (mux2 div_ge div_shifted div_diff))
       (zero c 33));
  (* div_quo doubles as the dividend shift register *)
  Reg.connect div_quo
    (mux2 div_start
       (mux2 div_iterate (Reg.q div_quo)
          (concat [ bits (Reg.q div_quo) ~hi:30 ~lo:0; div_ge ]))
       a_mag);
  Reg.connect div_dvs
    (mux2 div_start (Reg.q div_dvs) (zero_extend b_mag 33));
  let quo_mag = Reg.q div_quo in
  let rem_mag = bits (Reg.q div_rem) ~hi:31 ~lo:0 in
  let quo_signed = mux2 (Reg.q md_sign_diff) quo_mag (negate quo_mag) in
  let rem_signed = mux2 (Reg.q md_a_neg) rem_mag (negate rem_mag) in
  let div_by_zero = eq_const (Reg.q md_raw_b) 0 in
  let div_overflow =
    (Reg.q md_raw_a ==: const c ~width:32 0x80000000)
    &: (Reg.q md_raw_b ==: const c ~width:32 0xFFFFFFFF)
    &: ~:(bit f3 0)
  in
  let div_result =
    (* f3: 100 div, 101 divu, 110 rem, 111 remu *)
    mux2 (bit f3 1)
      (* quotient *)
      (mux2 div_by_zero
         (mux2 div_overflow quo_signed (const c ~width:32 0x80000000))
         (ones c 32))
      (* remainder *)
      (mux2 div_by_zero
         (mux2 div_overflow rem_signed (zero c 32))
         (Reg.q md_raw_a))
  in
  let md_result = mux2 dec.Rv_util.is_div mul_result div_result in
  let stall = md_start |: md_iterate in

  (* ------------------------------------------------------------------ *)
  (* ALU (operand-gated)                                                  *)
  (* ------------------------------------------------------------------ *)
  let is_alu = dec.Rv_util.is_alu_imm |: dec.Rv_util.is_alu_reg in
  let alu_en = valid &: is_alu in
  let op_a = gate alu_en rs1_val in
  let op_b =
    gate alu_en (mux2 dec.Rv_util.is_alu_reg (Rv_util.imm_i instr) rs2_val)
  in
  let shamt = bits op_b ~hi:4 ~lo:0 in
  let alu_sub = dec.Rv_util.is_alu_reg &: f7_sub in
  let sum = mux2 alu_sub (op_a +: op_b) (op_a -: op_b) in
  let shift_en = alu_en &: (eq_const f3 0b001 |: eq_const f3 0b101) in
  let sh_in = gate shift_en rs1_val in
  let sll_res = sll sh_in shamt in
  let sr_res = mux2 f7_sub (srl sh_in shamt) (sra sh_in shamt) in
  let slt_res = zero_extend (slt op_a op_b) 32 in
  let sltu_res = zero_extend (op_a <: op_b) 32 in
  let alu_out =
    mux f3
      [ sum; sll_res; slt_res; sltu_res; op_a ^: op_b; sr_res; op_a |: op_b;
        op_a &: op_b ]
  in

  (* ------------------------------------------------------------------ *)
  (* Branches and jumps                                                   *)
  (* ------------------------------------------------------------------ *)
  let br_en = valid &: dec.Rv_util.is_branch in
  let br_a = gate br_en rs1_val in
  let br_b = gate br_en rs2_val in
  let br_eq = br_a ==: br_b in
  let br_lt = slt br_a br_b in
  let br_ltu = br_a <: br_b in
  let br_take =
    br_en
    &: mux f3
         [ br_eq; ~:br_eq; br_eq (* unused 010 *); br_eq (* unused 011 *);
           br_lt; ~:br_lt; br_ltu; ~:br_ltu ]
  in
  let br_target = id_pc +: Rv_util.imm_b instr in
  let jal_target = id_pc +: Rv_util.imm_j instr in

  (* ------------------------------------------------------------------ *)
  (* Load/store unit (and JALR target, sharing the address adder)         *)
  (* ------------------------------------------------------------------ *)
  let is_mem = dec.Rv_util.is_load |: dec.Rv_util.is_store in
  let agen_en = valid &: (is_mem |: dec.Rv_util.is_jalr) in
  let agen_base = gate agen_en rs1_val in
  let agen_off =
    gate agen_en
      (mux2 dec.Rv_util.is_store (Rv_util.imm_i instr) (Rv_util.imm_s instr))
  in
  let agen = agen_base +: agen_off in
  let jalr_target = concat [ bits agen ~hi:31 ~lo:1; zero c 1 ] in
  let addr_lo = bits agen ~hi:1 ~lo:0 in
  let byte_shift = mux addr_lo [ const c ~width:5 0; const c ~width:5 8;
                                 const c ~width:5 16; const c ~width:5 24 ] in
  let load_shifted = srl data_rdata byte_shift in
  let load_data =
    mux f3
      [ sign_extend (bits load_shifted ~hi:7 ~lo:0) 32;       (* lb *)
        sign_extend (bits load_shifted ~hi:15 ~lo:0) 32;      (* lh *)
        load_shifted;                                         (* lw *)
        load_shifted;                                         (* 011: n/a *)
        zero_extend (bits load_shifted ~hi:7 ~lo:0) 32;       (* lbu *)
        zero_extend (bits load_shifted ~hi:15 ~lo:0) 32 ]     (* lhu *)
  in
  let store_data = sll (gate (valid &: dec.Rv_util.is_store) rs2_val) byte_shift in
  let be_base =
    mux (bits f3 ~hi:1 ~lo:0)
      [ const c ~width:4 0b0001; const c ~width:4 0b0011; const c ~width:4 0b1111 ]
  in
  let be = sll (zero_extend be_base 4) (zero_extend addr_lo 2) in

  (* ------------------------------------------------------------------ *)
  (* CSR file                                                             *)
  (* ------------------------------------------------------------------ *)
  let csr_en = valid &: dec.Rv_util.is_csr in
  let csr_addr = bits instr ~hi:31 ~lo:20 in
  let is_csr_addr a = eq_const csr_addr a in
  let mstatus = Reg.create c ~init:0x1800 ~width:32 "csr_mstatus" in
  let mtvec = Reg.create c ~init:0 ~width:32 "csr_mtvec" in
  let mscratch = Reg.create c ~init:0 ~width:32 "csr_mscratch" in
  let mepc = Reg.create c ~init:0 ~width:32 "csr_mepc" in
  let mcause = Reg.create c ~init:0 ~width:32 "csr_mcause" in
  let mcycle = Reg.create c ~init:0 ~width:32 "csr_mcycle" in
  let minstret = Reg.create c ~init:0 ~width:32 "csr_minstret" in
  let known_rw =
    is_csr_addr csr_mstatus |: is_csr_addr csr_mtvec |: is_csr_addr csr_mscratch
    |: is_csr_addr csr_mepc |: is_csr_addr csr_mcause
  in
  let known_ro =
    is_csr_addr csr_cycle |: is_csr_addr csr_instret |: is_csr_addr csr_mhartid
    |: is_csr_addr csr_misa
  in
  let csr_rdata =
    one_hot_mux
      [ (is_csr_addr csr_mstatus, Reg.q mstatus);
        (is_csr_addr csr_mtvec, Reg.q mtvec);
        (is_csr_addr csr_mscratch, Reg.q mscratch);
        (is_csr_addr csr_mepc, Reg.q mepc);
        (is_csr_addr csr_mcause, Reg.q mcause);
        (is_csr_addr csr_cycle, Reg.q mcycle);
        (is_csr_addr csr_instret, Reg.q minstret);
        (is_csr_addr csr_misa, const c ~width:32 0x40001104);
        (is_csr_addr csr_mhartid, zero c 32) ]
  in
  let csr_operand =
    gate csr_en (mux2 (bit f3 2) rs1_val (zero_extend rs1_idx 32))
  in
  let csr_op = bits f3 ~hi:1 ~lo:0 in
  let csr_wants_write = eq_const csr_op 0b01 |: (rs1_idx <>: const c ~width:5 0) in
  let csr_illegal =
    dec.Rv_util.is_csr
    &: (~:(known_rw |: known_ro) |: (known_ro &: csr_wants_write))
  in
  let csr_wdata =
    mux csr_op
      [ csr_operand;                        (* 00: unused *)
        csr_operand;                        (* 01: csrrw *)
        csr_rdata |: csr_operand;           (* 10: csrrs *)
        csr_rdata &: ~:csr_operand ]        (* 11: csrrc *)
  in
  let csr_we = csr_en &: csr_wants_write &: known_rw &: ~:csr_illegal in

  (* ------------------------------------------------------------------ *)
  (* Exceptions                                                           *)
  (* ------------------------------------------------------------------ *)
  let illegal_any =
    dec.Rv_util.illegal |: exp.Rv_util.c_illegal |: csr_illegal
  in
  let exc = valid &: (illegal_any |: dec.Rv_util.is_ecall |: dec.Rv_util.is_ebreak) in
  let exc_cause =
    (* 2 illegal, 3 breakpoint, 11 ecall from M *)
    mux2 illegal_any
      (mux2 dec.Rv_util.is_ebreak (const c ~width:32 11) (const c ~width:32 3))
      (const c ~width:32 2)
  in

  (* ------------------------------------------------------------------ *)
  (* Control flow and retirement                                          *)
  (* ------------------------------------------------------------------ *)
  let jump =
    valid &: (dec.Rv_util.is_jal |: dec.Rv_util.is_jalr) in
  let cf = (jump |: br_take |: exc) &: ~:stall in
  let cf_target =
    mux2 exc
      (one_hot_mux
         [ (dec.Rv_util.is_jal, jal_target);
           (dec.Rv_util.is_jalr, jalr_target);
           (br_take, br_target) ])
      (Reg.q mtvec)
  in
  let instr_len = mux2 exp.Rv_util.was_compressed (const c ~width:32 4) (const c ~width:32 2) in
  let fetch_word = instr_rdata in
  let fetch_compressed = ~:(eq_const (bits fetch_word ~hi:1 ~lo:0) 0b11) in
  let fetch_len = mux2 fetch_compressed (const c ~width:32 4) (const c ~width:32 2) in
  let next_pc =
    mux2 stall (mux2 cf (Reg.q pc +: fetch_len) cf_target) (Reg.q pc)
  in
  Reg.connect pc next_pc;
  let if_id_instr_next =
    name "if_id_instr_next" (mux2 stall fetch_word (Reg.q if_id_instr))
  in
  Reg.connect if_id_instr if_id_instr_next;
  Reg.connect if_id_pc (mux2 stall (Reg.q pc) (Reg.q if_id_pc));
  Reg.connect if_id_valid (mux2 stall (~:cf) valid);

  let retire = valid &: ~:exc &: ~:stall in

  (* register file write *)
  let rf_we =
    valid &: ~:exc &: (rd_idx <>: const c ~width:5 0)
    &: (dec.Rv_util.is_lui |: dec.Rv_util.is_auipc |: dec.Rv_util.is_jal
        |: dec.Rv_util.is_jalr |: dec.Rv_util.is_load |: is_alu
        |: (dec.Rv_util.is_csr &: ~:csr_illegal)
        |: (is_muldiv &: md_done))
  in
  let link = id_pc +: instr_len in
  let rf_wdata =
    one_hot_mux
      [ (dec.Rv_util.is_lui, Rv_util.imm_u instr);
        (dec.Rv_util.is_auipc, id_pc +: Rv_util.imm_u instr);
        (dec.Rv_util.is_jal |: dec.Rv_util.is_jalr, link);
        (dec.Rv_util.is_load, load_data);
        (is_alu, alu_out);
        (dec.Rv_util.is_csr, csr_rdata);
        (is_muldiv, md_result) ]
  in
  Mem.write rf ~en:rf_we ~addr:rd_idx ~data:rf_wdata;

  (* CSR state updates: explicit writes, exception side effects,
     free-running counters *)
  let wr a = csr_we &: is_csr_addr a in
  Reg.connect_en mstatus ~en:(wr csr_mstatus) csr_wdata;
  Reg.connect_en mtvec ~en:(wr csr_mtvec) csr_wdata;
  Reg.connect_en mscratch ~en:(wr csr_mscratch) csr_wdata;
  Reg.connect mepc
    (mux2 exc (mux2 (wr csr_mepc) (Reg.q mepc) csr_wdata) id_pc);
  Reg.connect mcause
    (mux2 exc (mux2 (wr csr_mcause) (Reg.q mcause) csr_wdata) exc_cause);
  Reg.connect mcycle (Reg.q mcycle +: const c ~width:32 1);
  Reg.connect minstret
    (Reg.q minstret +: zero_extend retire 32);

  (* ------------------------------------------------------------------ *)
  (* Ports                                                                *)
  (* ------------------------------------------------------------------ *)
  Ctx.output c "instr_addr" (Reg.q pc);
  Ctx.output c "data_addr" agen;
  Ctx.output c "data_wdata" store_data;
  Ctx.output c "data_we" (valid &: dec.Rv_util.is_store &: ~:exc);
  Ctx.output c "data_be" be;
  Ctx.output c "data_req" (valid &: is_mem &: ~:exc);
  Ctx.output c "retire" retire;
  {
    design = Ctx.finish c;
    instr_port = "instr_rdata";
    cutpoint_bus = "if_id_instr_next";
  }

let resolve_bus design base width =
  Array.init width (fun i ->
      let nm = Printf.sprintf "%s[%d]" base i in
      let found = ref (-1) in
      for n = 0 to Netlist.Design.num_nets design - 1 do
        if !found < 0 && Netlist.Design.net_name design n = nm then found := n
      done;
      if !found < 0 then failwith ("Ibex_like: no net named " ^ nm);
      !found)

let cutpoint_nets t = resolve_bus t.design t.cutpoint_bus 32

let peek_reg_nets t k =
  if k = 0 then Array.make 32 Netlist.Design.net_false
  else resolve_bus t.design (Printf.sprintf "rf_%d" k) 32
