(** Execution harness for the RISC-V cores: plays the role of the
    instruction and data memories against the cores' ideal
    (combinational, single-cycle) memory ports.

    The instruction memory is an array of 16-bit halfwords (as produced
    by {!Isa.Asm.assemble}); the data memory is a flat byte array.
    Loads return the 32-bit word at the word-aligned address; stores
    honour the byte-enable mask — both matching the cores' LSU
    contract. *)

type t

val create : Netlist.Design.t -> program:int array -> ?dmem_bytes:int -> unit -> t

val sim : t -> Netlist.Sim64.t

val cycle : t -> unit
(** One clock: serve fetch and data, commit stores, advance. *)

val run : t -> cycles:int -> unit

val retired : t -> int
(** Number of cycles in which the core's [retire] output was high. *)

val read_mem32 : t -> int -> int
val write_mem32 : t -> int -> int -> unit

val read_bus : t -> Netlist.Design.net array -> int
(** Architectural peeks via internal nets (lane 0). *)
