open Hdl.Ops
module Ctx = Hdl.Ctx
module Reg = Hdl.Reg
module Mem = Hdl.Mem

type t = {
  design : Netlist.Design.t;
  instr_port : string;
}

let exception_vector = 8

let build () =
  let c = Ctx.create "cm0_like" in
  let instr_rdata = Ctx.input c "instr_rdata" 16 in
  let data_rdata = Ctx.input c "data_rdata" 32 in
  let k w v = const c ~width:w v in

  (* ------------------------------------------------------------------ *)
  (* Fetch state                                                          *)
  (* ------------------------------------------------------------------ *)
  let pc = Reg.create c ~init:0 ~width:32 "pc" in
  let if_id_hw = Reg.create c ~width:16 "if_id_hw" in
  let if_id_pc = Reg.create c ~width:32 "if_id_pc" in
  let if_id_valid = Reg.create c ~init:0 ~width:1 "if_id_valid" in
  (* second-half tracking for 32-bit encodings *)
  let wide_pending = Reg.create c ~init:0 ~width:1 "wide_pending" in
  let wide_first = Reg.create c ~width:16 "wide_first" in

  let hw = Reg.q if_id_hw in
  let id_pc = Reg.q if_id_pc in
  let valid = Reg.q if_id_valid in

  (* ------------------------------------------------------------------ *)
  (* Register file (r0-r14; r15 is the program counter)                   *)
  (* ------------------------------------------------------------------ *)
  let rf = Mem.create c ~words:16 ~width:32 "rf" in
  let pc_read = id_pc +: k 32 4 in
  let read_reg idx =
    mux2 (eq_const idx 15) (Mem.read rf idx) pc_read
  in
  let flag_n = Reg.create c ~init:0 ~width:1 "flag_n" in
  let flag_z = Reg.create c ~init:0 ~width:1 "flag_z" in
  let flag_c = Reg.create c ~init:0 ~width:1 "flag_c" in
  let flag_v = Reg.create c ~init:0 ~width:1 "flag_v" in

  (* ------------------------------------------------------------------ *)
  (* Decode                                                               *)
  (* ------------------------------------------------------------------ *)
  let top5 = bits hw ~hi:15 ~lo:11 in
  let top4 = bits hw ~hi:15 ~lo:12 in
  let is_wide_first =
    eq_const top5 0b11101 |: eq_const top5 0b11110 |: eq_const top5 0b11111
  in
  let second_half = valid &: Reg.q wide_pending in
  let first_half = valid &: is_wide_first &: ~:(Reg.q wide_pending) in

  (* group predicates for the 16-bit space *)
  let g_shift_imm = eq_const (bits hw ~hi:15 ~lo:13) 0b000
                    &: ~:(eq_const (bits hw ~hi:12 ~lo:11) 0b11) in
  let g_addsub = eq_const (bits hw ~hi:15 ~lo:11) 0b00011 in
  let g_imm8 = eq_const (bits hw ~hi:15 ~lo:13) 0b001 in
  let g_dp = eq_const (bits hw ~hi:15 ~lo:10) 0b010000 in
  let g_special = eq_const (bits hw ~hi:15 ~lo:10) 0b010001 in
  let g_ldr_lit = eq_const top5 0b01001 in
  let g_ls_reg = eq_const top4 0b0101 in
  let g_ls_imm = eq_const (bits hw ~hi:15 ~lo:13) 0b011 in
  let g_ls_h = eq_const top4 0b1000 in
  let g_ls_sp = eq_const top4 0b1001 in
  let g_adr = eq_const top5 0b10100 in
  let g_add_sp = eq_const top5 0b10101 in
  let g_misc = eq_const top4 0b1011 in
  let g_stm = eq_const top5 0b11000 in
  let g_ldm = eq_const top5 0b11001 in
  let g_bcond = eq_const top4 0b1101 in
  let g_b = eq_const top5 0b11100 in

  let misc_op = bits hw ~hi:11 ~lo:8 in
  let g_sp_adj = g_misc &: eq_const misc_op 0b0000 in
  let g_extend = g_misc &: eq_const misc_op 0b0010 in
  let g_push = g_misc &: eq_const (bits hw ~hi:11 ~lo:9) 0b010 in
  let g_pop = g_misc &: eq_const (bits hw ~hi:11 ~lo:9) 0b110 in
  let g_rev = g_misc &: eq_const misc_op 0b1010 in
  let g_bkpt = g_misc &: eq_const misc_op 0b1110 in
  let g_hint = g_misc &: eq_const misc_op 0b1111 in
  let g_cps = g_misc &: eq_const misc_op 0b0110 in
  let cond = bits hw ~hi:11 ~lo:8 in
  let g_udf16 = g_bcond &: eq_const cond 0b1110 in
  let g_svc = g_bcond &: eq_const cond 0b1111 in
  let g_bcond_real = g_bcond &: ~:g_udf16 &: ~:g_svc in

  let known16 =
    g_shift_imm |: g_addsub |: g_imm8 |: g_dp |: g_special |: g_ldr_lit
    |: g_ls_reg |: g_ls_imm |: g_ls_h |: g_ls_sp |: g_adr |: g_add_sp
    |: g_sp_adj |: g_extend |: g_push |: g_pop |: g_rev |: g_bkpt |: g_hint
    |: g_cps |: g_stm |: g_ldm |: g_bcond |: g_b |: is_wide_first
  in
  let illegal16 = ~:known16 in

  (* wide instruction classification from the stored first half *)
  let wf = Reg.q wide_first in
  let w_is_bl =
    eq_const (bits wf ~hi:15 ~lo:11) 0b11110 &: eq_const (bits hw ~hi:15 ~lo:14) 0b11
    &: bit hw 12
  in
  (* MSR/MRS/barriers are architecturally significant but micro-
     architecturally a nop in this single-hart core: any wide encoding
     that is neither BL nor UDF.W falls through as a two-halfword nop *)
  let w_is_udf = eq_const (bits wf ~hi:15 ~lo:11) 0b11110
                 &: eq_const (bits wf ~hi:10 ~lo:4) 0b1111111 in

  (* ------------------------------------------------------------------ *)
  (* Operand fetch                                                        *)
  (* ------------------------------------------------------------------ *)
  let rd_lo = bits hw ~hi:2 ~lo:0 in
  let rn_lo = bits hw ~hi:5 ~lo:3 in
  let rm_lo = bits hw ~hi:8 ~lo:6 in
  let rd3 = zero_extend rd_lo 4 in
  let rn3 = zero_extend rn_lo 4 in
  let rm3 = zero_extend rm_lo 4 in
  let rm4 = bits hw ~hi:6 ~lo:3 in
  let imm5 = bits hw ~hi:10 ~lo:6 in
  let imm8 = bits hw ~hi:7 ~lo:0 in
  let rd_imm8 = bits hw ~hi:10 ~lo:8 in

  let sp_idx = k 4 13 in
  let lr_idx = k 4 14 in
  let sp_val = Mem.read rf sp_idx in

  (* ------------------------------------------------------------------ *)
  (* Shifter with full carry semantics                                    *)
  (* ------------------------------------------------------------------ *)
  let shift_unit rm_v amount8 =
    (* amount clamped to 33 keeps the barrel small while preserving
       result and carry for any amount *)
    let big = amount8 >=: k 8 33 in
    let amt = mux2 big (bits amount8 ~hi:5 ~lo:0) (k 6 33) in
    let lsl_ext = sll (zero_extend rm_v 34) amt in
    let lsl_res = bits lsl_ext ~hi:31 ~lo:0 in
    let lsl_c = bit lsl_ext 32 in
    let t = concat [ rm_v; zero c 1 ] in      (* 33 bits, rm in [32:1] *)
    let lsr_t = srl t amt in
    let lsr_res = bits lsr_t ~hi:32 ~lo:1 in
    let lsr_c = bit lsr_t 0 in
    let asr_t = sra t amt in
    let asr_res = bits asr_t ~hi:32 ~lo:1 in
    let asr_c = bit asr_t 0 in
    let rork = bits amount8 ~hi:4 ~lo:0 in
    let ror_res = srl rm_v (zero_extend rork 5) |: sll rm_v (negate (zero_extend rork 5)) in
    let ror_c = msb ror_res in
    ((lsl_res, lsl_c), (lsr_res, lsr_c), (asr_res, asr_c), (ror_res, ror_c))
  in

  (* ------------------------------------------------------------------ *)
  (* Main ALU                                                             *)
  (* ------------------------------------------------------------------ *)
  (* operand selection happens per-group below; the adder is shared *)
  let adder a b cin =
    let sum, cout = add_carry a b ~cin in
    let v = msb a ==: msb b &: (msb sum <>: msb a) in
    (sum, cout, v)
  in

  (* ------------------------------------------------------------------ *)
  (* load/store multiple FSM (PUSH, POP, STM, LDM)                        *)
  (* ------------------------------------------------------------------ *)
  let ls_active = Reg.create c ~init:0 ~width:1 "lsm_active" in
  let ls_list = Reg.create c ~init:0 ~width:9 "lsm_list" in
  let ls_addr = Reg.create c ~init:0 ~width:32 "lsm_addr" in
  let ls_load = Reg.create c ~init:0 ~width:1 "lsm_load" in
  let ls_pc_bit = Reg.create c ~init:0 ~width:1 "lsm_pc" in
  let ls_wb_reg = Reg.create c ~init:0 ~width:4 "lsm_wb_reg" in
  let ls_final = Reg.create c ~init:0 ~width:32 "lsm_final" in

  let g_lsm = g_push |: g_pop |: g_stm |: g_ldm in
  let lsm_start = valid &: g_lsm &: ~:(Reg.q ls_active) in
  let reg_list9 =
    (* bit 8: LR for push, PC for pop; absent for stm/ldm *)
    concat [ bit hw 8 &: (g_push |: g_pop); imm8 ]
  in
  let list_count = zero_extend (popcount reg_list9) 32 in
  let bytes = sll_const list_count 2 in
  let lsm_base =
    mux2 (g_stm |: g_ldm) (mux2 g_push sp_val (sp_val -: bytes))
      (Mem.read rf (zero_extend rd_imm8 4))
  in
  let lsm_final_v =
    one_hot_mux
      [ (g_push, sp_val -: bytes);
        (g_pop, sp_val +: bytes);
        (g_stm |: g_ldm, lsm_base +: bytes) ]
  in
  (* lowest set bit of the remaining list *)
  let cur_list = mux2 lsm_start (Reg.q ls_list) reg_list9 in
  let rec lowest i =
    if i = 8 then k 4 8
    else mux2 (bit cur_list i) (lowest (i + 1)) (k 4 i)
  in
  let low_idx = lowest 0 in
  let clear_mask =
    (* one-hot of low_idx, 9 bits *)
    sll (zero_extend (vdd c) 9) (zero_extend low_idx 4)
  in
  let next_list = cur_list &: ~:clear_mask in
  let lsm_running = Reg.q ls_active |: lsm_start in
  let lsm_done = lsm_running &: eq_const next_list 0 in
  let cur_addr = mux2 lsm_start (Reg.q ls_addr) lsm_base in
  let cur_load = mux2 lsm_start (Reg.q ls_load) (g_pop |: g_ldm) in
  let transfer_reg =
    (* bit 8 means LR (store side, push) or PC (load side, pop) *)
    mux2 (eq_const low_idx 8) (zero_extend low_idx 4)
      (mux2 cur_load lr_idx (k 4 15))
  in
  Reg.connect ls_active
    (mux2 lsm_running (Reg.q ls_active) (~:lsm_done));
  Reg.connect ls_list (mux2 lsm_running (Reg.q ls_list) next_list);
  Reg.connect ls_addr (mux2 lsm_running (Reg.q ls_addr) (cur_addr +: k 32 4));
  Reg.connect_en ls_load ~en:lsm_start (g_pop |: g_ldm);
  Reg.connect_en ls_pc_bit ~en:lsm_start (g_pop &: bit hw 8);
  Reg.connect_en ls_wb_reg ~en:lsm_start
    (mux2 (g_stm |: g_ldm) sp_idx (zero_extend rd_imm8 4));
  Reg.connect_en ls_final ~en:lsm_start lsm_final_v;

  (* ------------------------------------------------------------------ *)
  (* Iterative multiplier (MULS)                                          *)
  (* ------------------------------------------------------------------ *)
  let mul_busy = Reg.create c ~init:0 ~width:1 "mul_busy" in
  let mul_count = Reg.create c ~init:0 ~width:6 "mul_count" in
  let mul_acc = Reg.create c ~init:0 ~width:32 "mul_acc" in
  let mul_a = Reg.create c ~init:0 ~width:32 "mul_a" in
  let mul_b = Reg.create c ~init:0 ~width:32 "mul_b" in
  let is_muls = g_dp &: eq_const (bits hw ~hi:9 ~lo:6) 0b1101 in
  let mul_start = valid &: is_muls &: ~:(Reg.q mul_busy) in
  let mul_done = Reg.q mul_busy &: eq_const (Reg.q mul_count) 0 in
  let mul_iter = Reg.q mul_busy &: ~:mul_done in
  Reg.connect mul_busy (mux2 mul_start (Reg.q mul_busy &: ~:mul_done) (vdd c));
  Reg.connect mul_count
    (mux2 mul_start
       (mux2 (Reg.q mul_busy) (Reg.q mul_count) (Reg.q mul_count -: k 6 1))
       (k 6 32));
  let rdn_v = read_reg rd3 in
  let rm_v3 = read_reg rn3 in
  Reg.connect mul_a
    (mux2 mul_start (mux2 mul_iter (Reg.q mul_a) (sll_const (Reg.q mul_a) 1)) rdn_v);
  Reg.connect mul_b
    (mux2 mul_start (mux2 mul_iter (Reg.q mul_b) (srl_const (Reg.q mul_b) 1)) rm_v3);
  Reg.connect mul_acc
    (mux2 mul_start
       (mux2 mul_iter (Reg.q mul_acc)
          (Reg.q mul_acc +: (Reg.q mul_a &: repeat (lsb (Reg.q mul_b)) 32)))
       (zero c 32));

  let stall = (lsm_running &: ~:lsm_done) |: mul_start |: mul_iter in

  (* ------------------------------------------------------------------ *)
  (* Per-group execution                                                  *)
  (* ------------------------------------------------------------------ *)
  let rn_v = read_reg rn3 in
  let rm_v = read_reg rm3 in
  let rd_v = read_reg rd3 in
  let rm4_v = read_reg rm4 in
  let imm8_32 = zero_extend imm8 32 in
  let imm5_32 = zero_extend imm5 32 in

  (* shift-immediate group (LSL/LSR/ASR imm; covers MOVS reg as LSL #0) *)
  let sop = bits hw ~hi:12 ~lo:11 in
  let shift_amt_imm =
    (* LSR/ASR with imm5 = 0 mean 32 *)
    mux2 (eq_const imm5 0 &: ~:(eq_const sop 0b00)) (zero_extend imm5 8) (k 8 32)
  in
  let (sl, slc), (srr, src), (sa, sac), (_, _) = shift_unit rn_v shift_amt_imm in
  let shift_imm_res = mux sop [ sl; srr; sa ] in
  let shift_imm_c =
    (* LSL #0 leaves C unchanged *)
    mux2 (eq_const sop 0b00 &: eq_const imm5 0)
      (mux sop [ slc; src; sac ])
      (Reg.q flag_c)
  in

  (* add/sub register & 3-bit immediate *)
  let as_b = mux2 (bit hw 10) rm_v (zero_extend rm_lo 32) in
  let as_sub = bit hw 9 in
  let as_sum, as_c, as_v =
    adder rn_v (mux2 as_sub as_b (~:as_b)) (mux2 as_sub (gnd c) (vdd c))
  in

  (* imm8 group: MOVS/CMP/ADDS/SUBS *)
  let i8op = bits hw ~hi:12 ~lo:11 in
  let i8_rd_v = read_reg (zero_extend rd_imm8 4) in
  let i8_sub = eq_const i8op 0b01 |: eq_const i8op 0b11 in
  let i8_sum, i8_c, i8_v =
    adder i8_rd_v
      (mux2 i8_sub imm8_32 (~:imm8_32))
      (mux2 i8_sub (gnd c) (vdd c))
  in

  (* data-processing group *)
  let dpop = bits hw ~hi:9 ~lo:6 in
  let (dl, dlc), (dr, drc), (da, dac), (dro, droc) =
    shift_unit rd_v (bits rm_v3 ~hi:7 ~lo:0)
  in
  let dp_and = rd_v &: rm_v3 in
  let dp_eor = rd_v ^: rm_v3 in
  let dp_orr = rd_v |: rm_v3 in
  let dp_bic = rd_v &: ~:rm_v3 in
  let dp_mvn = ~:rm_v3 in
  let adc_sum, adc_c, adc_v = adder rd_v rm_v3 (Reg.q flag_c) in
  let sbc_sum, sbc_c, sbc_v = adder rd_v (~:rm_v3) (Reg.q flag_c) in
  let sub_sum, sub_c, sub_v = adder rd_v (~:rm_v3) (vdd c) in
  let add_sum, add_c, add_v = adder rd_v rm_v3 (gnd c) in
  (* RSBS rd, rm, #0 negates the [5:3] operand *)
  let rsb_sum, rsb_c, rsb_v = adder (~:rm_v3) (zero c 32) (vdd c) in
  let dp_res =
    mux dpop
      [ dp_and; dp_eor; dl; dr; da; adc_sum; sbc_sum; dro;
        dp_and; rsb_sum; sub_sum; add_sum; dp_orr; Reg.q mul_acc; dp_bic;
        dp_mvn ]
  in
  let dp_c =
    mux dpop
      [ Reg.q flag_c; Reg.q flag_c; dlc; drc; dac; adc_c; sbc_c; droc;
        Reg.q flag_c; rsb_c; sub_c; add_c; Reg.q flag_c; Reg.q flag_c;
        Reg.q flag_c; Reg.q flag_c ]
  in
  let dp_v =
    mux dpop
      [ Reg.q flag_v; Reg.q flag_v; Reg.q flag_v; Reg.q flag_v; Reg.q flag_v;
        adc_v; sbc_v; Reg.q flag_v; Reg.q flag_v; rsb_v; sub_v; add_v;
        Reg.q flag_v; Reg.q flag_v; Reg.q flag_v; Reg.q flag_v ]
  in
  let dp_no_wb = eq_const dpop 0b1000 |: eq_const dpop 0b1010 |: eq_const dpop 0b1011 in
  (* TST/CMP/CMN set flags from a different value than the result mux *)
  let dp_flag_val =
    mux2 (eq_const dpop 0b1010)
      (mux2 (eq_const dpop 0b1011) dp_res add_sum)
      sub_sum
  in

  (* special data: ADD/CMP/MOV hi, BX/BLX *)
  let sd_rd = concat [ bit hw 7; rd_lo ] in
  let sd_rd_v = read_reg sd_rd in
  let sd_op = bits hw ~hi:9 ~lo:8 in
  let sd_add = sd_rd_v +: rm4_v in
  let sd_cmp_sum, sd_cmp_c, sd_cmp_v = adder sd_rd_v (~:rm4_v) (vdd c) in
  let is_bx = g_special &: eq_const sd_op 0b11 &: ~:(bit hw 7) in
  let is_blx = g_special &: eq_const sd_op 0b11 &: bit hw 7 in
  let is_add_hi = g_special &: eq_const sd_op 0b00 in
  let is_cmp_hi = g_special &: eq_const sd_op 0b01 in
  let is_mov_hi = g_special &: eq_const sd_op 0b10 in

  (* loads/stores *)
  let ls_reg_op = bits hw ~hi:11 ~lo:9 in
  let addr_reg = rn_v +: rm_v in
  let ls_imm_word = ~:(bit hw 12) in  (* 0110x word, 0111x byte *)
  let addr_imm =
    mux2 ls_imm_word (rn_v +: imm5_32) (rn_v +: sll_const imm5_32 2)
  in
  let addr_h = rn_v +: sll_const imm5_32 1 in
  let addr_sp = sp_val +: sll_const imm8_32 2 in
  let lit_base = concat [ bits pc_read ~hi:31 ~lo:2; zero c 2 ] in
  let addr_lit = lit_base +: sll_const imm8_32 2 in
  let is_load16 =
    (g_ls_reg &: (bit hw 11 |: eq_const ls_reg_op 0b011))
    |: (g_ls_imm &: bit hw 11) |: (g_ls_h &: bit hw 11)
    |: (g_ls_sp &: bit hw 11) |: g_ldr_lit
  in
  let is_store16 =
    (g_ls_reg &: ~:(bit hw 11) &: ~:(eq_const ls_reg_op 0b011))
    |: (g_ls_imm &: ~:(bit hw 11)) |: (g_ls_h &: ~:(bit hw 11))
    |: (g_ls_sp &: ~:(bit hw 11))
  in
  let mem_addr16 =
    one_hot_mux
      [ (g_ls_reg, addr_reg); (g_ls_imm, addr_imm); (g_ls_h, addr_h);
        (g_ls_sp, addr_sp); (g_ldr_lit, addr_lit) ]
  in
  (* transfer size: 0=byte,1=half,2=word *)
  let size16 =
    one_hot_mux
      [ (g_ls_reg,
         mux ls_reg_op
           [ k 2 2; k 2 1; k 2 0; k 2 0; k 2 2; k 2 1; k 2 0; k 2 1 ]);
        (g_ls_imm, mux2 ls_imm_word (k 2 0) (k 2 2));
        (g_ls_h, k 2 1); (g_ls_sp, k 2 2); (g_ldr_lit, k 2 2) ]
  in
  let sign_ld =
    g_ls_reg &: (eq_const ls_reg_op 0b011 |: eq_const ls_reg_op 0b111)
  in
  (* fold in the LSM transfers *)
  let mem_addr = mux2 lsm_running mem_addr16 cur_addr in
  let mem_size = mux2 lsm_running size16 (k 2 2) in
  let mem_load = mux2 lsm_running is_load16 cur_load in
  let mem_store = mux2 lsm_running is_store16 (~:cur_load) in
  let addr_lo2 = bits mem_addr ~hi:1 ~lo:0 in
  let byte_shift = mux addr_lo2 [ k 5 0; k 5 8; k 5 16; k 5 24 ] in
  let load_shifted = srl data_rdata byte_shift in
  let load_val =
    mux mem_size
      [ mux2 sign_ld (zero_extend (bits load_shifted ~hi:7 ~lo:0) 32)
          (sign_extend (bits load_shifted ~hi:7 ~lo:0) 32);
        mux2 sign_ld (zero_extend (bits load_shifted ~hi:15 ~lo:0) 32)
          (sign_extend (bits load_shifted ~hi:15 ~lo:0) 32);
        load_shifted ]
  in
  let store_reg16 =
    one_hot_mux
      [ (g_ls_reg |: g_ls_imm |: g_ls_h, rd3);
        (g_ls_sp, zero_extend rd_imm8 4) ]
  in
  let store_src = mux2 lsm_running (read_reg store_reg16) (read_reg transfer_reg) in
  let store_val = sll store_src byte_shift in
  let be_base = mux mem_size [ k 4 0b0001; k 4 0b0011; k 4 0b1111 ] in
  let be = sll be_base (zero_extend addr_lo2 2) in

  (* adr / add-sp / sp adjust *)
  let adr_res = lit_base +: sll_const imm8_32 2 in
  let add_sp_res = sp_val +: sll_const imm8_32 2 in
  let imm7_32 = zero_extend (bits hw ~hi:6 ~lo:0) 32 in
  let sp_adj_res =
    mux2 (bit hw 7) (sp_val +: sll_const imm7_32 2) (sp_val -: sll_const imm7_32 2)
  in

  (* extend / reverse *)
  let ext_op = bits hw ~hi:7 ~lo:6 in
  let ext_res =
    mux ext_op
      [ sign_extend (bits rn_v ~hi:15 ~lo:0) 32;  (* sxth *)
        sign_extend (bits rn_v ~hi:7 ~lo:0) 32;   (* sxtb *)
        zero_extend (bits rn_v ~hi:15 ~lo:0) 32;  (* uxth *)
        zero_extend (bits rn_v ~hi:7 ~lo:0) 32 ]  (* uxtb *)
  in
  let byte0 = bits rn_v ~hi:7 ~lo:0 in
  let byte1 = bits rn_v ~hi:15 ~lo:8 in
  let byte2 = bits rn_v ~hi:23 ~lo:16 in
  let byte3 = bits rn_v ~hi:31 ~lo:24 in
  let rev_op = bits hw ~hi:7 ~lo:6 in
  let rev_res =
    mux rev_op
      [ concat [ byte0; byte1; byte2; byte3 ];              (* rev *)
        concat [ byte2; byte3; byte0; byte1 ];              (* rev16 *)
        concat [ byte2; byte3; byte0; byte1 ];              (* 10: n/a *)
        sign_extend (concat [ byte0; byte1 ]) 32 ]          (* revsh *)
  in

  (* condition evaluation for b_cond *)
  let n = Reg.q flag_n and z = Reg.q flag_z
  and cf = Reg.q flag_c and v = Reg.q flag_v in
  let cond_hold =
    mux cond
      [ z; ~:z; cf; ~:cf; n; ~:n; v; ~:v;
        cf &: ~:z; ~:cf |: z; n ==: v; n <>: v;
        ~:z &: (n ==: v); z |: (n <>: v); vdd c; vdd c ]
  in
  let bcond_target = pc_read +: sign_extend (sll_const (zero_extend imm8 9) 1) 32 in
  let b_target =
    pc_read +: sign_extend (sll_const (zero_extend (bits hw ~hi:10 ~lo:0) 12) 1) 32
  in
  (* BL offset from both halves *)
  let s_bit = bit wf 10 in
  let j1 = bit hw 13 and j2 = bit hw 11 in
  let i1 = ~:(j1 ^: s_bit) and i2 = ~:(j2 ^: s_bit) in
  let bl_off =
    sign_extend
      (concat
         [ s_bit; i1; i2; bits wf ~hi:9 ~lo:0; bits hw ~hi:10 ~lo:0; zero c 1 ])
      32
  in
  let bl_target = id_pc +: k 32 2 +: bl_off in

  (* ------------------------------------------------------------------ *)
  (* Exceptions                                                           *)
  (* ------------------------------------------------------------------ *)
  let exc16 = valid &: ~:second_half &: ~:first_half
              &: (illegal16 |: g_udf16 |: g_svc |: g_bkpt) in
  let exc_wide = second_half &: w_is_udf in
  let exc = exc16 |: exc_wide in

  (* ------------------------------------------------------------------ *)
  (* Control flow                                                         *)
  (* ------------------------------------------------------------------ *)
  let pop_pc_now = lsm_done &: Reg.q ls_pc_bit &: Reg.q ls_load in
  let mov_pc = is_mov_hi &: eq_const sd_rd 15 in
  let add_pc = is_add_hi &: eq_const sd_rd 15 in
  let exec16 = valid &: ~:second_half &: ~:first_half &: ~:lsm_running
               &: ~:(mul_start |: mul_iter |: mul_done) in
  let branch =
    (exec16
     &: ((g_bcond_real &: cond_hold) |: g_b |: is_bx |: is_blx |: mov_pc
         |: add_pc))
    |: (second_half &: w_is_bl) |: pop_pc_now |: exc
  in
  let clr_lsb v32 = concat [ bits v32 ~hi:31 ~lo:1; zero c 1 ] in
  let branch_target =
    mux2 exc
      (one_hot_mux
         [ (g_bcond_real, bcond_target); (g_b, b_target);
           (is_bx |: is_blx, clr_lsb rm4_v);
           (mov_pc |: add_pc, clr_lsb (mux2 add_pc rm4_v sd_add));
           (second_half &: w_is_bl, bl_target);
           (pop_pc_now, clr_lsb load_val) ])
      (k 32 exception_vector)
  in

  (* ------------------------------------------------------------------ *)
  (* Writeback                                                            *)
  (* ------------------------------------------------------------------ *)
  let wb_en16 =
    exec16 &: ~:exc
    &: (g_shift_imm |: g_addsub
        |: (g_imm8 &: ~:(eq_const i8op 0b01))
        |: (g_dp &: ~:dp_no_wb &: ~:is_muls)
        |: (is_add_hi &: ~:add_pc) |: (is_mov_hi &: ~:mov_pc)
        |: is_load16 |: g_adr |: g_add_sp |: g_sp_adj |: g_extend |: g_rev
        |: g_ldr_lit)
  in
  let wb_reg16 =
    one_hot_mux
      [ (g_shift_imm |: g_addsub, rd3);
        (g_imm8, zero_extend rd_imm8 4);
        (g_dp, rd3);
        (is_add_hi |: is_mov_hi, sd_rd);
        (g_ls_reg |: g_ls_imm |: g_ls_h, rd3);
        (g_ls_sp |: g_ldr_lit |: g_adr |: g_add_sp, zero_extend rd_imm8 4);
        (g_sp_adj, sp_idx);
        (g_extend |: g_rev, rd3) ]
  in
  let wb_val16 =
    one_hot_mux
      [ (g_shift_imm, shift_imm_res);
        (g_addsub, as_sum);
        (g_imm8, mux2 (eq_const i8op 0b00) i8_sum imm8_32);
        (g_dp, dp_res);
        (is_add_hi, sd_add);
        (is_mov_hi, rm4_v);
        (is_load16 |: g_ldr_lit, load_val);
        (g_adr, adr_res);
        (g_add_sp, add_sp_res);
        (g_sp_adj, sp_adj_res);
        (g_extend, ext_res);
        (g_rev, rev_res) ]
  in
  (* LSM transfers write through the same port; BL/BLX write LR;
     LSM completion writes the base register back *)
  let lsm_load_wb = lsm_running &: cur_load &: ~:(eq_const transfer_reg 15) in
  let bl_lr = second_half &: w_is_bl in
  let blx_lr = exec16 &: is_blx in
  let exc_lr = exc in
  let wb_en =
    wb_en16 |: lsm_load_wb |: bl_lr |: blx_lr |: exc_lr
    |: (valid &: mul_done &: is_muls)
  in
  let ret_addr = id_pc +: k 32 2 in
  let wb_reg =
    one_hot_mux
      [ (wb_en16, wb_reg16);
        (lsm_load_wb, transfer_reg);
        (bl_lr |: blx_lr |: exc_lr, lr_idx);
        (valid &: mul_done &: is_muls, rd3) ]
  in
  let wb_val =
    one_hot_mux
      [ (wb_en16, wb_val16);
        (lsm_load_wb, load_val);
        (bl_lr, ret_addr |: k 32 1);
        (blx_lr, ret_addr |: k 32 1);
        (exc_lr, ret_addr |: k 32 1);
        (valid &: mul_done &: is_muls, Reg.q mul_acc) ]
  in
  (* base writeback at LSM completion uses the second port *)
  Mem.write2 rf ~en0:wb_en ~addr0:wb_reg ~data0:wb_val ~en1:lsm_done
    ~addr1:(Reg.q ls_wb_reg) ~data1:(Reg.q ls_final);

  (* ------------------------------------------------------------------ *)
  (* Flags update                                                         *)
  (* ------------------------------------------------------------------ *)
  let flag_sources =
    [ (exec16 &: g_shift_imm, shift_imm_res, shift_imm_c, Reg.q flag_v);
      (exec16 &: g_addsub, as_sum, as_c, as_v);
      (exec16 &: g_imm8 &: eq_const i8op 0b00, imm8_32, Reg.q flag_c, Reg.q flag_v);
      (exec16 &: g_imm8 &: ~:(eq_const i8op 0b00), i8_sum, i8_c, i8_v);
      (exec16 &: g_dp &: ~:is_muls, dp_flag_val, dp_c, dp_v);
      (exec16 &: is_cmp_hi, sd_cmp_sum, sd_cmp_c, sd_cmp_v);
      (valid &: mul_done &: is_muls, Reg.q mul_acc, Reg.q flag_c, Reg.q flag_v) ]
  in
  let upd_en =
    List.fold_left (fun acc (en, _, _, _) -> acc |: en) (gnd c) flag_sources
  in
  let sel_val = one_hot_mux (List.map (fun (en, r, _, _) -> (en, r)) flag_sources) in
  let sel_c =
    one_hot_mux
      (List.map (fun (en, _, cf', _) -> (en, cf')) flag_sources)
  in
  let sel_v =
    one_hot_mux (List.map (fun (en, _, _, vf) -> (en, vf)) flag_sources)
  in
  Reg.connect_en flag_n ~en:(upd_en &: ~:exc) (msb sel_val);
  Reg.connect_en flag_z ~en:(upd_en &: ~:exc) (eq_const sel_val 0);
  Reg.connect_en flag_c ~en:(upd_en &: ~:exc) sel_c;
  Reg.connect_en flag_v ~en:(upd_en &: ~:exc) sel_v;

  (* ------------------------------------------------------------------ *)
  (* Fetch advance                                                        *)
  (* ------------------------------------------------------------------ *)
  let next_pc =
    mux2 stall (mux2 branch (Reg.q pc +: k 32 2) branch_target) (Reg.q pc)
  in
  Reg.connect pc next_pc;
  Reg.connect if_id_hw (mux2 stall instr_rdata (Reg.q if_id_hw));
  Reg.connect if_id_pc (mux2 stall (Reg.q pc) (Reg.q if_id_pc));
  Reg.connect if_id_valid (mux2 stall (~:branch) valid);
  Reg.connect wide_pending
    (mux2 stall (first_half &: ~:branch) (Reg.q wide_pending));
  Reg.connect_en wide_first ~en:first_half hw;

  let retire =
    (valid &: ~:stall &: ~:first_half &: ~:exc)
  in

  Ctx.output c "instr_addr" (Reg.q pc);
  Ctx.output c "data_addr" mem_addr;
  Ctx.output c "data_wdata" store_val;
  Ctx.output c "data_we"
    ((exec16 &: mem_store &: ~:exc) |: (lsm_running &: mem_store));
  Ctx.output c "data_be" be;
  Ctx.output c "data_req"
    ((exec16 &: (mem_load |: mem_store)) |: lsm_running);
  Ctx.output c "retire" retire;
  { design = Ctx.finish c; instr_port = "instr_rdata" }

let resolve_net design nm =
  let found = ref (-1) in
  for n = 0 to Netlist.Design.num_nets design - 1 do
    if !found < 0 && Netlist.Design.net_name design n = nm then found := n
  done;
  if !found < 0 then failwith ("Cm0_like: no net named " ^ nm);
  !found

let resolve_bus design base width =
  Array.init width (fun i -> resolve_net design (Printf.sprintf "%s[%d]" base i))

let peek_reg_nets t k =
  if k < 0 || k > 14 then invalid_arg "Cm0_like.peek_reg_nets";
  resolve_bus t.design (Printf.sprintf "rf_%d" k) 32

let peek_flags_nets t =
  Array.of_list
    (List.map (resolve_net t.design) [ "flag_n"; "flag_z"; "flag_c"; "flag_v" ])
