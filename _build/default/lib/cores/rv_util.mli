(** Shared RISC-V decode hardware: instruction field extraction,
    immediate formation, the RVC (compressed) expander and the RV32IMC
    legality decoder.  Used by both the Ibex-like and RIDECORE-like
    cores. *)

type signal = Hdl.Ctx.signal

(* field extraction from a 32-bit instruction *)

val opcode : signal -> signal  (* 7 bits *)
val rd : signal -> signal      (* 5 bits *)
val funct3 : signal -> signal  (* 3 bits *)
val rs1 : signal -> signal
val rs2 : signal -> signal
val funct7 : signal -> signal

(* immediates, all sign-extended to 32 bits *)

val imm_i : signal -> signal
val imm_s : signal -> signal
val imm_b : signal -> signal
val imm_u : signal -> signal
val imm_j : signal -> signal

type decoded = {
  is_lui : signal;
  is_auipc : signal;
  is_jal : signal;
  is_jalr : signal;
  is_branch : signal;
  is_load : signal;
  is_store : signal;
  is_alu_imm : signal;
  is_alu_reg : signal;  (** RV32I register-register, not M *)
  is_mul : signal;      (** mul/mulh/mulhsu/mulhu *)
  is_div : signal;      (** div/divu/rem/remu *)
  is_fence : signal;    (** fence and fence.i *)
  is_ecall : signal;
  is_ebreak : signal;
  is_csr : signal;
  illegal : signal;     (** no legal RV32IM(+Zicsr/Zifencei) decoding *)
}

val decode : signal -> decoded
(** Full legality decode of an (expanded) 32-bit instruction, including
    funct3/funct7 validity — anything outside the implemented set
    raises [illegal], which is what feeds the exception logic that the
    full-ISA environment restriction later proves unreachable. *)

type expanded = {
  instr32 : signal;       (** the expanded 32-bit instruction *)
  c_illegal : signal;     (** 16-bit word with no RVC decoding *)
  was_compressed : signal;(** low 2 bits of the fetch word /= 11 *)
}

val expand_compressed : signal -> expanded
(** [expand_compressed fetch_word] implements the RVC expander over the
    32-bit fetch word: when the word is compressed the low 16 bits are
    expanded, otherwise the word passes through. *)
