lib/cores/rv_util.mli: Hdl
