lib/cores/testbench.ml: Array Bytes Char Netlist
