lib/cores/cm0_like.ml: Array Hdl List Netlist Printf
