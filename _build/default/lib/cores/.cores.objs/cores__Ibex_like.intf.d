lib/cores/ibex_like.mli: Netlist
