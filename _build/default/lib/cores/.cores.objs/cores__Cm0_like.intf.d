lib/cores/cm0_like.mli: Netlist
