lib/cores/testbench.mli: Netlist
