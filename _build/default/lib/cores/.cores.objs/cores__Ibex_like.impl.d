lib/cores/ibex_like.ml: Array Hdl Netlist Printf Rv_util
