lib/cores/ridecore_like.ml: Array Hdl List Netlist Printf Rv_util
