lib/cores/rv_util.ml: Hdl List
