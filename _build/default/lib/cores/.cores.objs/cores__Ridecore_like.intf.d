lib/cores/ridecore_like.mli: Netlist
