(** The Ibex-class core: a 2-stage, in-order, scalar RV32IMC core with
    the Zicsr/Zifencei extensions (paper Table II, first row).

    Deliberately faithful to what makes Ibex interesting for PDAT:

    - the extensions are {e not} modular in the implementation — the
      compressed expander, multiplier/divider FSM and CSR file share
      decode, stall and writeback logic with the base ISA, so no
      elaboration parameter can strip, say, division alone;
    - illegal encodings raise an exception through mtvec/mepc/mcause,
      logic that only a full-ISA environment restriction can prove
      unreachable (the paper's "Ibex ISA" effect);
    - datapath operands are enable-gated, so a unit whose enable is
      proved constant-0 freezes and folds away in resynthesis.

    Memory interfaces are ideal (combinational) single-cycle ports; the
    testbench or the PDAT environment plays the memory. *)

type t = {
  design : Netlist.Design.t;
  instr_port : string;
      (** input bus: the 32-bit fetch word at [instr_addr] *)
  cutpoint_bus : string;
      (** internal bus (named nets): next value of the IF/ID
          instruction register — the paper's Figure-4 cutpoint *)
}

val build : unit -> t

val cutpoint_nets : t -> Netlist.Design.net array
(** Resolves {!cutpoint_bus} to nets by their debug names. *)

(* Port names, also part of the public contract:
   inputs  [instr_rdata[31:0]], [data_rdata[31:0]]
   outputs [instr_addr], [data_addr], [data_wdata], [data_we],
           [data_be[3:0]], [data_req], [retire] *)

val peek_reg_nets : t -> int -> Netlist.Design.net array
(** Architectural register file word [1..31] as nets (for testbench
    inspection; x0 returns the constant-0 rail replicated). *)
