(** The Cortex-M0-class core: an ARMv6-M (Thumb-1) microcontroller
    core (paper Table II, third row).

    ARMv6-M is not modular — there are no extensions to strip — so the
    only way to reduce this core is PDAT.  In the paper's evaluation
    the netlist arrives {e obfuscated}; pass {!build}'s result through
    {!Netlist.Obfuscate.run} to reproduce that flow (port names
    survive, internal structure does not, hence port-based constraints
    only).

    Microarchitecture: halfword fetch port, a fetch/decode/execute
    organization folded into two hardware stages plus a wide-encoding
    (BL etc.) second-half fetch state and iterative state machines for
    the multiplier and the load/store-multiple family (PUSH, POP, STM,
    LDM).  Exceptions (SVC, BKPT, UDF, illegal encodings) redirect to
    the fixed vector {!exception_vector} with the return address in LR.
    16 architectural registers; R15 reads as the current instruction
    address + 4, writes redirect control flow. *)

type t = {
  design : Netlist.Design.t;
  instr_port : string;  (** ["instr_rdata"], 16 bits *)
}

val build : unit -> t

val exception_vector : int

val peek_reg_nets : t -> int -> Netlist.Design.net array
(** Architectural register r0..r14 as nets; r15 raises. *)

val peek_flags_nets : t -> Netlist.Design.net array
(** [| n; z; c; v |]. *)

(* Port contract (same memory semantics as the RISC-V cores):
   inputs  [instr_rdata[15:0]], [data_rdata[31:0]]
   outputs [instr_addr], [data_addr], [data_wdata], [data_we],
           [data_be[3:0]], [data_req], [retire] *)
