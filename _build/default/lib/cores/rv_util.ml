open Hdl.Ops

type signal = Hdl.Ctx.signal

let ctx (s : signal) = s.Hdl.Ctx.ctx

let opcode i = bits i ~hi:6 ~lo:0
let rd i = bits i ~hi:11 ~lo:7
let funct3 i = bits i ~hi:14 ~lo:12
let rs1 i = bits i ~hi:19 ~lo:15
let rs2 i = bits i ~hi:24 ~lo:20
let funct7 i = bits i ~hi:31 ~lo:25

let imm_i i = sign_extend (bits i ~hi:31 ~lo:20) 32
let imm_s i = sign_extend (concat [ bits i ~hi:31 ~lo:25; bits i ~hi:11 ~lo:7 ]) 32

let imm_b i =
  sign_extend
    (concat
       [ bit i 31; bit i 7; bits i ~hi:30 ~lo:25; bits i ~hi:11 ~lo:8;
         zero (ctx i) 1 ])
    32

let imm_u i = concat [ bits i ~hi:31 ~lo:12; zero (ctx i) 12 ]

let imm_j i =
  sign_extend
    (concat
       [ bit i 31; bits i ~hi:19 ~lo:12; bit i 20; bits i ~hi:30 ~lo:21;
         zero (ctx i) 1 ])
    32

type decoded = {
  is_lui : signal;
  is_auipc : signal;
  is_jal : signal;
  is_jalr : signal;
  is_branch : signal;
  is_load : signal;
  is_store : signal;
  is_alu_imm : signal;
  is_alu_reg : signal;
  is_mul : signal;
  is_div : signal;
  is_fence : signal;
  is_ecall : signal;
  is_ebreak : signal;
  is_csr : signal;
  illegal : signal;
}

let decode i =
  let c = ctx i in
  let op v = eq_const (opcode i) v in
  let f3 = funct3 i in
  let f7 = funct7 i in
  let f7_zero = eq_const f7 0 in
  let f7_sub = eq_const f7 0b0100000 in
  let f7_muldiv = eq_const f7 0b0000001 in
  let is_lui = op 0b0110111 in
  let is_auipc = op 0b0010111 in
  let is_jal = op 0b1101111 in
  let is_jalr = op 0b1100111 &: eq_const f3 0 in
  let branch_f3_ok =
    ~:(eq_const f3 0b010) &: ~:(eq_const f3 0b011)
  in
  let is_branch = op 0b1100011 &: branch_f3_ok in
  let load_f3_ok =
    eq_const f3 0b000 |: eq_const f3 0b001 |: eq_const f3 0b010
    |: eq_const f3 0b100 |: eq_const f3 0b101
  in
  let is_load = op 0b0000011 &: load_f3_ok in
  let store_f3_ok = eq_const f3 0b000 |: eq_const f3 0b001 |: eq_const f3 0b010 in
  let is_store = op 0b0100011 &: store_f3_ok in
  let shift_f3 = eq_const f3 0b001 |: eq_const f3 0b101 in
  let alu_imm_shift_ok =
    (* slli needs f7=0; srli f7=0; srai f7=0100000 *)
    mux2 shift_f3
      (vdd c)
      (mux2 (eq_const f3 0b001) (f7_zero |: (eq_const f3 0b101 &: f7_sub)) f7_zero)
  in
  let is_alu_imm = op 0b0010011 &: alu_imm_shift_ok in
  let alu_reg_f7_ok =
    f7_zero |: (f7_sub &: (eq_const f3 0b000 |: eq_const f3 0b101))
  in
  let is_alu_reg = op 0b0110011 &: alu_reg_f7_ok in
  let is_mul = op 0b0110011 &: f7_muldiv &: ~:(bit f3 2) in
  let is_div = op 0b0110011 &: f7_muldiv &: bit f3 2 in
  let fence_f3_ok = eq_const f3 0b000 |: eq_const f3 0b001 in
  let is_fence = op 0b0001111 &: fence_f3_ok in
  let sys = op 0b1110011 in
  let sys_f3_zero = eq_const f3 0b000 in
  let upper25_zero = eq_const (bits i ~hi:31 ~lo:7) 0 in
  let is_ecall = sys &: sys_f3_zero &: upper25_zero in
  let is_ebreak =
    sys &: sys_f3_zero
    &: (bits i ~hi:31 ~lo:7 ==: const c ~width:25 (1 lsl 13))
  in
  let csr_f3_ok = ~:sys_f3_zero &: ~:(eq_const f3 0b100) in
  let is_csr = sys &: csr_f3_ok in
  let any_valid =
    is_lui |: is_auipc |: is_jal |: is_jalr |: is_branch |: is_load |: is_store
    |: is_alu_imm |: is_alu_reg |: is_mul |: is_div |: is_fence |: is_ecall
    |: is_ebreak |: is_csr
  in
  {
    is_lui; is_auipc; is_jal; is_jalr; is_branch; is_load; is_store;
    is_alu_imm; is_alu_reg; is_mul; is_div; is_fence; is_ecall; is_ebreak;
    is_csr; illegal = ~:any_valid;
  }

type expanded = {
  instr32 : signal;
  c_illegal : signal;
  was_compressed : signal;
}

(* RVC expander.  Each case builds the canonical 32-bit form; the
   priority order mirrors Isa.Rv32.decode16. *)
let expand_compressed w =
  let c = ctx w in
  let cw = bits w ~hi:15 ~lo:0 in
  let k width v = const c ~width v in
  let quadrant = bits cw ~hi:1 ~lo:0 in
  let f3 = bits cw ~hi:15 ~lo:13 in
  let bit12 = bit cw 12 in
  let rd_full = bits cw ~hi:11 ~lo:7 in
  let rs2_full = bits cw ~hi:6 ~lo:2 in
  let rdp = concat [ k 2 0b01; bits cw ~hi:4 ~lo:2 ] in   (* rd'/rs2' *)
  let rs1p = concat [ k 2 0b01; bits cw ~hi:9 ~lo:7 ] in  (* rs1'/rd' *)
  let imm6 = concat [ bit12; bits cw ~hi:6 ~lo:2 ] in     (* CI imm *)
  let x0 = k 5 0 in
  let x1 = k 5 1 in
  let x2 = k 5 2 in
  let op_imm = k 7 0b0010011 in
  let op_lui = k 7 0b0110111 in
  let op_load = k 7 0b0000011 in
  let op_store = k 7 0b0100011 in
  let op_reg = k 7 0b0110011 in
  let op_jal = k 7 0b1101111 in
  let op_jalr = k 7 0b1100111 in
  let op_branch = k 7 0b1100011 in
  let addi ~rd ~rs1 ~imm12 = concat [ imm12; rs1; k 3 0; rd; op_imm ] in
  (* Q0 *)
  let addi4spn_imm =
    (* nzuimm[9:2] = {cw[10:7], cw[12:11], cw[5], cw[6]} *)
    concat
      [ k 2 0; bits cw ~hi:10 ~lo:7; bits cw ~hi:12 ~lo:11; bit cw 5; bit cw 6;
        k 2 0 ]
  in
  let e_addi4spn = addi ~rd:rdp ~rs1:x2 ~imm12:addi4spn_imm in
  let lw_off =
    (* offset[6|5:3|2] = cw[5] cw[12:10] cw[6] *)
    concat [ k 5 0; bit cw 5; bits cw ~hi:12 ~lo:10; bit cw 6; k 2 0 ]
  in
  let e_clw = concat [ lw_off; rs1p; k 3 0b010; rdp; op_load ] in
  let e_csw =
    concat
      [ bits lw_off ~hi:11 ~lo:5; rdp; rs1p; k 3 0b010; bits lw_off ~hi:4 ~lo:0;
        op_store ]
  in
  (* Q1 *)
  let imm6_sext = sign_extend imm6 12 in
  let e_caddi = addi ~rd:rd_full ~rs1:rd_full ~imm12:imm6_sext in
  let cj_off =
    (* offset[11|10|9:8|7|6|5|4|3:1] = cw[12|8|10:9|6|7|2|11|5:3] *)
    concat
      [ bit cw 12; bit cw 8; bits cw ~hi:10 ~lo:9; bit cw 6; bit cw 7; bit cw 2;
        bit cw 11; bits cw ~hi:5 ~lo:3; zero c 1 ]
  in
  let jal_imm_fields rd target_off =
    (* imm[20|10:1|11|19:12] from a sign-extended 21-bit offset *)
    let t = sign_extend target_off 21 in
    concat
      [ bit t 20; bits t ~hi:10 ~lo:1; bit t 11; bits t ~hi:19 ~lo:12; rd; op_jal ]
  in
  let e_cjal = jal_imm_fields x1 cj_off in
  let e_cj = jal_imm_fields x0 cj_off in
  let e_cli = addi ~rd:rd_full ~rs1:x0 ~imm12:imm6_sext in
  let addi16sp_imm =
    (* imm[9|8:7|6|5|4] = cw[12|4:3|5|2|6], scaled by 16 *)
    sign_extend
      (concat [ bit cw 12; bits cw ~hi:4 ~lo:3; bit cw 5; bit cw 2; bit cw 6; k 4 0 ])
      12
  in
  let e_caddi16sp = addi ~rd:x2 ~rs1:x2 ~imm12:addi16sp_imm in
  let e_clui = concat [ sign_extend imm6 20; rd_full; op_lui ] in
  let shamt = rs2_full in
  let e_csrli = concat [ k 7 0; shamt; rs1p; k 3 0b101; rs1p; op_imm ] in
  let e_csrai = concat [ k 7 0b0100000; shamt; rs1p; k 3 0b101; rs1p; op_imm ] in
  let e_candi = concat [ imm6_sext; rs1p; k 3 0b111; rs1p; op_imm ] in
  let ca_op funct7 f3v = concat [ k 7 funct7; rdp; rs1p; k 3 f3v; rs1p; op_reg ] in
  let e_csub = ca_op 0b0100000 0b000 in
  let e_cxor = ca_op 0 0b100 in
  let e_cor = ca_op 0 0b110 in
  let e_cand = ca_op 0 0b111 in
  let cb_off =
    (* offset[8|7:6|5|4:3|2:1] = cw[12|6:5|2|11:10|4:3] *)
    sign_extend
      (concat
         [ bit cw 12; bits cw ~hi:6 ~lo:5; bit cw 2; bits cw ~hi:11 ~lo:10;
           bits cw ~hi:4 ~lo:3; zero c 1 ])
      13
  in
  let branch f3v =
    concat
      [ bit cb_off 12; bits cb_off ~hi:10 ~lo:5; x0; rs1p; k 3 f3v;
        bits cb_off ~hi:4 ~lo:1; bit cb_off 11; op_branch ]
  in
  let e_cbeqz = branch 0b000 in
  let e_cbnez = branch 0b001 in
  (* Q2 *)
  let e_cslli = concat [ k 7 0; shamt; rd_full; k 3 0b001; rd_full; op_imm ] in
  let lwsp_off =
    (* offset[7:6|5|4:2] = cw[3:2|12|6:4] *)
    concat [ k 4 0; bits cw ~hi:3 ~lo:2; bit12; bits cw ~hi:6 ~lo:4; k 2 0 ]
  in
  let e_clwsp = concat [ lwsp_off; x2; k 3 0b010; rd_full; op_load ] in
  let e_cjr = concat [ k 12 0; rd_full; k 3 0; x0; op_jalr ] in
  let e_cjalr = concat [ k 12 0; rd_full; k 3 0; x1; op_jalr ] in
  let e_cmv = concat [ k 7 0; rs2_full; x0; k 3 0; rd_full; op_reg ] in
  let e_cadd = concat [ k 7 0; rs2_full; rd_full; k 3 0; rd_full; op_reg ] in
  let e_cebreak = const c ~width:32 0x00100073 in
  let swsp_off =
    (* offset[7:6|5:2] = cw[8:7|12:9] *)
    concat [ k 4 0; bits cw ~hi:8 ~lo:7; bits cw ~hi:12 ~lo:9; k 2 0 ]
  in
  let e_cswsp =
    concat
      [ bits swsp_off ~hi:11 ~lo:5; rs2_full; x2; k 3 0b010;
        bits swsp_off ~hi:4 ~lo:0; op_store ]
  in
  (* case selection *)
  let q0 = eq_const quadrant 0b00 in
  let q1 = eq_const quadrant 0b01 in
  let q2 = eq_const quadrant 0b10 in
  let f3_is v = eq_const f3 v in
  let rd_nz = rd_full <>: x0 in
  let rs2_nz = rs2_full <>: x0 in
  let cases =
    [
      (q0 &: f3_is 0b000 &: (bits cw ~hi:12 ~lo:5 <>: k 8 0), e_addi4spn);
      (q0 &: f3_is 0b010, e_clw);
      (q0 &: f3_is 0b110, e_csw);
      (q1 &: f3_is 0b000, e_caddi);
      (q1 &: f3_is 0b001, e_cjal);
      (q1 &: f3_is 0b010, e_cli);
      (q1 &: f3_is 0b011 &: eq_const rd_full 2, e_caddi16sp);
      (q1 &: f3_is 0b011 &: ~:(eq_const rd_full 2), e_clui);
      (q1 &: f3_is 0b100 &: ~:bit12 &: eq_const (bits cw ~hi:11 ~lo:10) 0b00, e_csrli);
      (q1 &: f3_is 0b100 &: ~:bit12 &: eq_const (bits cw ~hi:11 ~lo:10) 0b01, e_csrai);
      (q1 &: f3_is 0b100 &: eq_const (bits cw ~hi:11 ~lo:10) 0b10, e_candi);
      (q1 &: f3_is 0b100 &: ~:bit12 &: eq_const (bits cw ~hi:11 ~lo:10) 0b11
       &: eq_const (bits cw ~hi:6 ~lo:5) 0b00, e_csub);
      (q1 &: f3_is 0b100 &: ~:bit12 &: eq_const (bits cw ~hi:11 ~lo:10) 0b11
       &: eq_const (bits cw ~hi:6 ~lo:5) 0b01, e_cxor);
      (q1 &: f3_is 0b100 &: ~:bit12 &: eq_const (bits cw ~hi:11 ~lo:10) 0b11
       &: eq_const (bits cw ~hi:6 ~lo:5) 0b10, e_cor);
      (q1 &: f3_is 0b100 &: ~:bit12 &: eq_const (bits cw ~hi:11 ~lo:10) 0b11
       &: eq_const (bits cw ~hi:6 ~lo:5) 0b11, e_cand);
      (q1 &: f3_is 0b101, e_cj);
      (q1 &: f3_is 0b110, e_cbeqz);
      (q1 &: f3_is 0b111, e_cbnez);
      (q2 &: f3_is 0b000 &: ~:bit12, e_cslli);
      (q2 &: f3_is 0b010 &: rd_nz, e_clwsp);
      (q2 &: f3_is 0b100 &: ~:bit12 &: ~:rs2_nz &: rd_nz, e_cjr);
      (q2 &: f3_is 0b100 &: ~:bit12 &: rs2_nz, e_cmv);
      (q2 &: f3_is 0b100 &: bit12 &: ~:rs2_nz &: ~:rd_nz, e_cebreak);
      (q2 &: f3_is 0b100 &: bit12 &: ~:rs2_nz &: rd_nz, e_cjalr);
      (q2 &: f3_is 0b100 &: bit12 &: rs2_nz, e_cadd);
      (q2 &: f3_is 0b110, e_cswsp);
    ]
  in
  let was_compressed = ~:(eq_const quadrant 0b11) in
  let any_case = List.fold_left (fun acc (g, _) -> acc |: g) (gnd c) cases in
  let expanded = priority_select cases ~default:(zero c 32) in
  {
    instr32 = mux2 was_compressed w expanded;
    c_illegal = was_compressed &: ~:any_case;
    was_compressed;
  }
