open Hdl.Ops
module Ctx = Hdl.Ctx
module Reg = Hdl.Reg
module Mem = Hdl.Mem

type config = {
  rob_entries : int;
  phys_regs : int;
  iq_entries : int;
  pht_entries : int;
  btb_entries : int;
}

let default_config =
  { rob_entries = 64; phys_regs = 96; iq_entries = 16; pht_entries = 256;
    btb_entries = 8 }

type t = {
  design : Netlist.Design.t;
  instr_port : string;
  config : config;
}

let bits_for n =
  let rec go b = if 1 lsl b >= n then b else go (b + 1) in
  go 1

let is_pow2 n = n land (n - 1) = 0

(* read a register-array (our flush-restorable tables) at a dynamic index *)
let read_array regs idx =
  Hdl.Ops.mux idx (Array.to_list (Array.map Reg.q regs))

(* first set bit as (found, one-hot array); [mask_out] removes bits *)
let first_onehot c sigs =
  let n = Array.length sigs in
  let taken = ref (gnd c) in
  let oh =
    Array.init n (fun i ->
        let mine = sigs.(i) &: ~:(!taken) in
        taken := !taken |: sigs.(i);
        mine)
  in
  (!taken, oh)

let onehot_index c oh idx_bits =
  let cases =
    Array.to_list (Array.mapi (fun i s -> (s, const c ~width:idx_bits i)) oh)
  in
  one_hot_mux cases

let build ?(config = default_config) () =
  if not (is_pow2 config.rob_entries && is_pow2 config.pht_entries
          && is_pow2 config.btb_entries) then
    invalid_arg "Ridecore_like: rob/pht/btb sizes must be powers of two";
  let c = Ctx.create "ridecore_like" in
  let k w v = const c ~width:w v in
  let instr_rdata = Ctx.input c "instr_rdata" 64 in
  let data_rdata = Ctx.input c "data_rdata" 32 in

  let pbits = bits_for config.phys_regs in
  let rbits = bits_for config.rob_entries in
  let phtbits = bits_for config.pht_entries in
  let btbbits = bits_for config.btb_entries in

  (* ================== committed / speculative rename state ========== *)
  let crat = Array.init 32 (fun i -> Reg.create c ~init:i ~width:pbits (Printf.sprintf "crat_%d" i)) in
  let srat = Array.init 32 (fun i -> Reg.create c ~init:i ~width:pbits (Printf.sprintf "srat_%d" i)) in
  let cfree =
    Array.init config.phys_regs (fun i ->
        Reg.create c ~init:(if i >= 32 then 1 else 0) ~width:1
          (Printf.sprintf "cfree_%d" i))
  in
  let sfree =
    Array.init config.phys_regs (fun i ->
        Reg.create c ~init:(if i >= 32 then 1 else 0) ~width:1
          (Printf.sprintf "sfree_%d" i))
  in
  let busy =
    Array.init config.phys_regs (fun i ->
        Reg.create c ~init:0 ~width:1 (Printf.sprintf "busy_%d" i))
  in
  let prf = Mem.create c ~words:config.phys_regs ~width:32 "prf" in

  (* ================== ROB ============================================ *)
  let ne = config.rob_entries in
  let mkr ?(w = 1) nm = Array.init ne (fun i -> Reg.create c ~init:0 ~width:w (Printf.sprintf "rob_%s_%d" nm i)) in
  let rob_valid = mkr "valid" in
  let rob_done = mkr "done" in
  let rob_rd = mkr ~w:5 "rd" in
  let rob_prd = mkr ~w:pbits "prd" in
  let rob_oldprd = mkr ~w:pbits "oldprd" in
  let rob_isstore = mkr "isstore" in
  let rob_staddr = mkr ~w:32 "staddr" in
  let rob_stdata = mkr ~w:32 "stdata" in
  let rob_stbe = mkr ~w:4 "stbe" in
  let rob_isbranch = mkr "isbranch" in
  let rob_taken = mkr "taken" in
  let rob_mispred = mkr "mispred" in
  let rob_target = mkr ~w:32 "target" in
  let rob_pc = mkr ~w:32 "pc" in
  let head = Reg.create c ~init:0 ~width:rbits "rob_head" in
  let tail = Reg.create c ~init:0 ~width:rbits "rob_tail" in
  let count = Reg.create c ~init:0 ~width:(rbits + 1) "rob_count" in

  let rob_at regs idx = read_array regs idx in

  (* ================== commit ========================================= *)
  let h0 = Reg.q head in
  let h1 = Reg.q head +: k rbits 1 in
  let c0_valid = rob_at rob_valid h0 in
  let c0_done = rob_at rob_done h0 in
  let c0_commit = c0_valid &: c0_done in
  let c0_rd = rob_at rob_rd h0 in
  let c0_prd = rob_at rob_prd h0 in
  let c0_oldprd = rob_at rob_oldprd h0 in
  let c0_isstore = rob_at rob_isstore h0 in
  let c0_mispred = rob_at rob_mispred h0 in
  let c0_isbranch = rob_at rob_isbranch h0 in
  let c0_taken = rob_at rob_taken h0 in
  let c0_target = rob_at rob_target h0 in
  let c0_pc = rob_at rob_pc h0 in

  let c1_valid = rob_at rob_valid h1 in
  let c1_done = rob_at rob_done h1 in
  let c1_rd = rob_at rob_rd h1 in
  let c1_prd = rob_at rob_prd h1 in
  let c1_oldprd = rob_at rob_oldprd h1 in
  let c1_isstore = rob_at rob_isstore h1 in
  let c1_mispred = rob_at rob_mispred h1 in
  let c1_isbranch = rob_at rob_isbranch h1 in
  let c1_taken = rob_at rob_taken h1 in
  let c1_pc = rob_at rob_pc h1 in

  let commit0 = c0_commit in
  let flush = commit0 &: c0_mispred in
  let commit1 =
    commit0 &: ~:flush &: c1_valid &: c1_done &: ~:c1_mispred
    &: ~:(c0_isstore &: c1_isstore)
  in
  (* a mispredicted c1 commits alone next cycle *)
  let n_commit =
    zero_extend commit0 2 +: zero_extend commit1 2
  in
  let store_commit0 = commit0 &: c0_isstore in
  let store_commit1 = commit1 &: c1_isstore in
  let store_commit = store_commit0 |: store_commit1 in

  (* ================== fetch / branch prediction ====================== *)
  let pc = Reg.create c ~init:0 ~width:32 "pc" in
  let ghr = Reg.create c ~init:0 ~width:8 "ghr" in
  let pht =
    Array.init config.pht_entries (fun i ->
        Reg.create c ~init:1 ~width:2 (Printf.sprintf "pht_%d" i))
  in
  let btb_valid = Array.init config.btb_entries (fun i -> Reg.create c ~init:0 ~width:1 (Printf.sprintf "btbv_%d" i)) in
  let btb_tag = Array.init config.btb_entries (fun i -> Reg.create c ~init:0 ~width:27 (Printf.sprintf "btbt_%d" i)) in
  let btb_target = Array.init config.btb_entries (fun i -> Reg.create c ~init:0 ~width:32 (Printf.sprintf "btbx_%d" i)) in

  let pc0 = Reg.q pc in
  let pc1 = pc0 +: k 32 4 in
  let btb_idx p = bits p ~hi:(2 + btbbits - 1) ~lo:2 in
  let btb_tag_of p = bits p ~hi:31 ~lo:5 in
  let btb_lookup p =
    let idx = btb_idx p in
    let v = lsb (read_array btb_valid idx) in
    let tag = read_array btb_tag idx in
    let tgt = read_array btb_target idx in
    (v &: (tag ==: btb_tag_of p), tgt)
  in
  let pht_index p = bits p ~hi:(2 + phtbits - 1) ~lo:2 ^: uresize (Reg.q ghr) phtbits in
  let pht_taken p = msb (read_array pht (pht_index p)) in
  let hit0, tgt0 = btb_lookup pc0 in
  let hit1, tgt1 = btb_lookup pc1 in
  let pred0 = hit0 &: pht_taken pc0 in
  let pred1 = hit1 &: pht_taken pc1 in
  let fetch_next =
    mux2 pred0 (mux2 pred1 (pc0 +: k 32 8) tgt1) tgt0
  in
  let prednext0 = mux2 pred0 pc1 tgt0 in
  let prednext1 = mux2 pred1 (pc0 +: k 32 8) tgt1 in

  (* fetch/dispatch pipeline registers *)
  let fd_valid0 = Reg.create c ~init:0 ~width:1 "fd_valid0" in
  let fd_valid1 = Reg.create c ~init:0 ~width:1 "fd_valid1" in
  let fd_pc = Reg.create c ~width:32 "fd_pc" in
  let fd_instr0 = Reg.create c ~width:32 "fd_instr0" in
  let fd_instr1 = Reg.create c ~width:32 "fd_instr1" in
  let fd_prednext0 = Reg.create c ~width:32 "fd_prednext0" in
  let fd_prednext1 = Reg.create c ~width:32 "fd_prednext1" in

  (* ================== decode ========================================= *)
  let i0 = Reg.q fd_instr0 in
  let i1 = Reg.q fd_instr1 in
  let d0 = Rv_util.decode i0 in
  let d1 = Rv_util.decode i1 in
  let dec_alu (d : Rv_util.decoded) =
    d.Rv_util.is_alu_imm |: d.Rv_util.is_alu_reg |: d.Rv_util.is_lui
    |: d.Rv_util.is_auipc
  in
  let dec_br (d : Rv_util.decoded) =
    d.Rv_util.is_branch |: d.Rv_util.is_jal |: d.Rv_util.is_jalr
  in
  let dec_nop (d : Rv_util.decoded) =
    d.Rv_util.is_div |: d.Rv_util.is_fence |: d.Rv_util.is_ecall
    |: d.Rv_util.is_ebreak |: d.Rv_util.is_csr |: d.Rv_util.illegal
  in
  let is_nop0 = dec_nop d0 in
  let is_nop1 = dec_nop d1 in
  let needs_iq0 = Reg.q fd_valid0 &: ~:is_nop0 in
  let needs_iq1 = Reg.q fd_valid1 &: ~:is_nop1 in
  let writes_rd (d : Rv_util.decoded) instr =
    (d.Rv_util.is_alu_imm |: d.Rv_util.is_alu_reg |: d.Rv_util.is_lui
     |: d.Rv_util.is_auipc |: d.Rv_util.is_load |: d.Rv_util.is_mul
     |: d.Rv_util.is_jal |: d.Rv_util.is_jalr)
    &: (Rv_util.rd instr <>: k 5 0)
  in
  let wr0 = Reg.q fd_valid0 &: writes_rd d0 i0 in
  let wr1 = Reg.q fd_valid1 &: writes_rd d1 i1 in

  (* ================== rename ========================================= *)
  let sfree_bits = Array.map Reg.q sfree in
  let free_found0, free_oh0 = first_onehot c (Array.map lsb sfree_bits) in
  let masked = Array.mapi (fun i s -> lsb s &: ~:(free_oh0.(i))) sfree_bits in
  let free_found1, free_oh1 = first_onehot c masked in
  let newp0 = onehot_index c free_oh0 pbits in
  let newp1 = onehot_index c free_oh1 pbits in

  let rat_read idx = read_array srat idx in
  let rs1_0 = Rv_util.rs1 i0 and rs2_0 = Rv_util.rs2 i0 and rd_0 = Rv_util.rd i0 in
  let rs1_1 = Rv_util.rs1 i1 and rs2_1 = Rv_util.rs2 i1 and rd_1 = Rv_util.rd i1 in
  let prs1_0 = rat_read rs1_0 in
  let prs2_0 = rat_read rs2_0 in
  let oldp0 = rat_read rd_0 in
  (* slot1 sees slot0's rename *)
  let fwd rs v = mux2 (wr0 &: (rs ==: rd_0)) v newp0 in
  let prs1_1 = fwd rs1_1 (rat_read rs1_1) in
  let prs2_1 = fwd rs2_1 (rat_read rs2_1) in
  let oldp1 = fwd rd_1 (rat_read rd_1) in

  (* resource check (all-or-nothing dispatch of the valid slots) *)
  let iq_valid = Array.init config.iq_entries (fun i -> Reg.create c ~init:0 ~width:1 (Printf.sprintf "iq_valid_%d" i)) in
  let iq_free = Array.map (fun r -> ~:(Reg.q r)) iq_valid in
  let iqf_found0, iqf_oh0 = first_onehot c iq_free in
  let iq_free2 = Array.mapi (fun i s -> s &: ~:(iqf_oh0.(i))) iq_free in
  let iqf_found1, iqf_oh1 = first_onehot c iq_free2 in

  let need_regs = zero_extend wr0 2 +: zero_extend wr1 2 in
  let regs_ok =
    mux2 (eq_const need_regs 2) (mux2 (eq_const need_regs 1) (vdd c) free_found0)
      (free_found0 &: free_found1)
  in
  let need_iq = zero_extend needs_iq0 2 +: zero_extend needs_iq1 2 in
  let iq_ok =
    mux2 (eq_const need_iq 2) (mux2 (eq_const need_iq 1) (vdd c) iqf_found0)
      (iqf_found0 &: iqf_found1)
  in
  let n_disp = zero_extend (Reg.q fd_valid0) 2 +: zero_extend (Reg.q fd_valid1) 2 in
  let rob_room =
    (zero_extend (Reg.q count) (rbits + 2) +: zero_extend n_disp (rbits + 2))
    <=: k (rbits + 2) ne
  in
  let have_work = Reg.q fd_valid0 |: Reg.q fd_valid1 in
  let dispatch = have_work &: regs_ok &: iq_ok &: rob_room &: ~:flush in
  let disp0 = dispatch &: Reg.q fd_valid0 in
  let disp1 = dispatch &: Reg.q fd_valid1 in

  (* ================== issue queue ==================================== *)
  let nq = config.iq_entries in
  let mkq ?(w = 1) nm = Array.init nq (fun i -> Reg.create c ~init:0 ~width:w (Printf.sprintf "iq_%s_%d" nm i)) in
  (* class bits are stored one-hot: the "never inserted" invariant of
     each bit is then 1-step inductive under an ISA restriction, which
     is what lets PDAT freeze a whole functional unit *)
  let iq_isalu = mkq "isalu" in
  let iq_isbr = mkq "isbr" in
  let iq_isload = mkq "isload" in
  let iq_isstore = mkq "isstore" in
  let iq_ismul = mkq "ismul" in
  let iq_f3 = mkq ~w:3 "f3" in
  let iq_alt = mkq "alt" in
  let iq_jal = mkq "jal" in
  let iq_jalr = mkq "jalr" in
  let iq_lui = mkq "lui" in
  let iq_auipc = mkq "auipc" in
  let iq_useimm = mkq "useimm" in
  let iq_imm = mkq ~w:32 "imm" in
  let iq_pc = mkq ~w:32 "pc" in
  let iq_prednext = mkq ~w:32 "prednext" in
  let iq_prs1 = mkq ~w:pbits "prs1" in
  let iq_prs2 = mkq ~w:pbits "prs2" in
  let iq_r1rdy = mkq "r1rdy" in
  let iq_r2rdy = mkq "r2rdy" in
  let iq_prd = mkq ~w:pbits "prd" in
  let iq_wr = mkq "wr" in
  let iq_rob = mkq ~w:rbits "rob" in

  (* immediate and control extraction per slot *)
  let imm_of instr (d : Rv_util.decoded) =
    one_hot_mux
      [ (d.Rv_util.is_alu_imm |: d.Rv_util.is_load |: d.Rv_util.is_jalr,
         Rv_util.imm_i instr);
        (d.Rv_util.is_store, Rv_util.imm_s instr);
        (d.Rv_util.is_branch, Rv_util.imm_b instr);
        (d.Rv_util.is_lui |: d.Rv_util.is_auipc, Rv_util.imm_u instr);
        (d.Rv_util.is_jal, Rv_util.imm_j instr) ]
  in
  let useimm_of (d : Rv_util.decoded) =
    d.Rv_util.is_alu_imm |: d.Rv_util.is_load |: d.Rv_util.is_store
    |: d.Rv_util.is_jalr |: d.Rv_util.is_lui |: d.Rv_util.is_auipc
  in

  (* ================== execute (issue + ALU + CDB) ===================== *)
  (* multiplier state *)
  let mul_busy = Reg.create c ~init:0 ~width:1 "mul_busy" in
  let mul_count = Reg.create c ~init:0 ~width:6 "mul_count" in
  let mul_areg = Reg.create c ~init:0 ~width:64 "mul_areg" in
  let mul_breg = Reg.create c ~init:0 ~width:32 "mul_breg" in
  let mul_acc = Reg.create c ~init:0 ~width:64 "mul_acc" in
  let mul_signdiff = Reg.create c ~init:0 ~width:1 "mul_signdiff" in
  let mul_f3 = Reg.create c ~init:0 ~width:3 "mul_f3" in
  let mul_prd = Reg.create c ~init:0 ~width:pbits "mul_prd" in
  let mul_rob = Reg.create c ~init:0 ~width:rbits "mul_rob" in
  let mul_done = Reg.q mul_busy &: eq_const (Reg.q mul_count) 0 in
  let mul_iter = Reg.q mul_busy &: ~:mul_done in

  (* ready vector; loads are held while an *older* store is still in
     the ROB (its memory write only happens at commit), using
     head-relative ages so the circular indices compare correctly *)
  let store_flag =
    Array.mapi (fun j v -> Reg.q v &: Reg.q rob_isstore.(j)) rob_valid
  in
  let rob_age = Array.init ne (fun j -> k rbits j -: Reg.q head) in
  let ready =
    Array.init nq (fun i ->
        let my_age = Reg.q iq_rob.(i) -: Reg.q head in
        let older_store =
          Array.to_list store_flag
          |> List.mapi (fun j s -> s &: (rob_age.(j) <: my_age))
          |> List.fold_left ( |: ) (gnd c)
        in
        Reg.q iq_valid.(i) &: Reg.q iq_r1rdy.(i) &: Reg.q iq_r2rdy.(i)
        &: ~:(Reg.q iq_isload.(i) &: (older_store |: store_commit))
        &: ~:(Reg.q iq_ismul.(i) &: (Reg.q mul_busy |: mul_done))
        (* CDB is taken by the multiplier on its completion cycle *)
        &: ~:mul_done)
  in
  let issue_any, issue_oh = first_onehot c ready in
  let sel regs = one_hot_mux (Array.to_list (Array.mapi (fun i r -> (issue_oh.(i), Reg.q r)) regs)) in
  let x_isalu = lsb (sel iq_isalu) in
  let x_isbr = lsb (sel iq_isbr) in
  let x_isload = lsb (sel iq_isload) in
  let x_isstore = lsb (sel iq_isstore) in
  let x_ismul = lsb (sel iq_ismul) in
  let x_f3 = sel iq_f3 in
  let x_alt = lsb (sel iq_alt) in
  let x_jal = lsb (sel iq_jal) in
  let x_jalr = lsb (sel iq_jalr) in
  let x_lui = lsb (sel iq_lui) in
  let x_auipc = lsb (sel iq_auipc) in
  let x_useimm = lsb (sel iq_useimm) in
  let x_imm = sel iq_imm in
  let x_pc = sel iq_pc in
  let x_prednext = sel iq_prednext in
  let x_prs1 = sel iq_prs1 in
  let x_prs2 = sel iq_prs2 in
  let x_prd = sel iq_prd in
  let x_wr = lsb (sel iq_wr) in
  let x_rob = sel iq_rob in

  let issue = issue_any in
  let rv1 = Mem.read prf x_prs1 in
  let rv2 = Mem.read prf x_prs2 in
  let op_a = rv1 in
  let op_b = mux2 x_useimm rv2 x_imm in

  (* shared ALU *)
  let sum = mux2 x_alt (op_a +: op_b) (op_a -: op_b) in
  let shamt = bits op_b ~hi:4 ~lo:0 in
  let alu_out =
    mux x_f3
      [ sum; sll op_a shamt; zero_extend (slt op_a op_b) 32;
        zero_extend (op_a <: op_b) 32; op_a ^: op_b;
        mux2 x_alt (srl op_a shamt) (sra op_a shamt); op_a |: op_b;
        op_a &: op_b ]
  in
  let alu_result =
    one_hot_mux
      [ (x_lui, x_imm); (x_auipc, x_pc +: x_imm);
        (~:x_lui &: ~:x_auipc, alu_out) ]
  in

  (* branches *)
  let br_eq = rv1 ==: rv2 in
  let br_lt = slt rv1 rv2 in
  let br_ltu = rv1 <: rv2 in
  let br_cond =
    mux x_f3 [ br_eq; ~:br_eq; br_eq; br_eq; br_lt; ~:br_lt; br_ltu; ~:br_ltu ]
  in
  let br_taken = x_jal |: x_jalr |: br_cond in
  let br_target =
    mux2 x_jalr (x_pc +: x_imm)
      (concat [ bits (rv1 +: x_imm) ~hi:31 ~lo:2; zero c 2 ])
  in
  let actual_next = mux2 br_taken (x_pc +: k 32 4) br_target in
  let mispredict = x_isbr &: (actual_next <>: x_prednext) in
  let link = x_pc +: k 32 4 in

  (* memory *)
  let mem_addr_x = rv1 +: x_imm in
  let addr_lo = bits mem_addr_x ~hi:1 ~lo:0 in
  let byte_shift = mux addr_lo [ k 5 0; k 5 8; k 5 16; k 5 24 ] in
  let load_shifted = srl data_rdata byte_shift in
  let load_val =
    mux x_f3
      [ sign_extend (bits load_shifted ~hi:7 ~lo:0) 32;
        sign_extend (bits load_shifted ~hi:15 ~lo:0) 32;
        load_shifted; load_shifted;
        zero_extend (bits load_shifted ~hi:7 ~lo:0) 32;
        zero_extend (bits load_shifted ~hi:15 ~lo:0) 32 ]
  in
  let store_data_sh = sll rv2 byte_shift in
  let store_be =
    sll
      (mux (bits x_f3 ~hi:1 ~lo:0) [ k 4 1; k 4 3; k 4 15 ])
      (zero_extend addr_lo 2)
  in

  let is_load_x = x_isload in
  let is_store_x = x_isstore in
  let is_mul_x = x_ismul in
  let issue_mul = issue &: is_mul_x in

  (* multiplier operand capture (same scheme as the Ibex-like core) *)
  let m_asigned = eq_const x_f3 0b001 |: eq_const x_f3 0b010 in
  let m_bsigned = eq_const x_f3 0b001 in
  let a_neg = (m_asigned &: msb rv1) &: issue_mul in
  let b_neg = (m_bsigned &: msb rv2) &: issue_mul in
  let a_mag = mux2 a_neg rv1 (negate rv1) in
  let b_mag = mux2 b_neg rv2 (negate rv2) in
  Reg.connect mul_busy (mux2 issue_mul (Reg.q mul_busy &: ~:mul_done) (vdd c));
  Reg.connect mul_count
    (mux2 issue_mul
       (mux2 (Reg.q mul_busy) (Reg.q mul_count) (Reg.q mul_count -: k 6 1))
       (k 6 32));
  Reg.connect mul_areg
    (mux2 issue_mul
       (mux2 mul_iter (Reg.q mul_areg) (sll_const (Reg.q mul_areg) 1))
       (zero_extend a_mag 64));
  Reg.connect mul_breg
    (mux2 issue_mul
       (mux2 mul_iter (Reg.q mul_breg) (srl_const (Reg.q mul_breg) 1))
       b_mag);
  Reg.connect mul_acc
    (mux2 issue_mul
       (mux2 mul_iter (Reg.q mul_acc)
          (Reg.q mul_acc +: (Reg.q mul_areg &: repeat (lsb (Reg.q mul_breg)) 64)))
       (zero c 64));
  Reg.connect_en mul_signdiff ~en:issue_mul (a_neg ^: b_neg);
  Reg.connect_en mul_f3 ~en:issue_mul x_f3;
  Reg.connect_en mul_prd ~en:issue_mul x_prd;
  Reg.connect_en mul_rob ~en:issue_mul x_rob;
  let mul_product =
    mux2 (Reg.q mul_signdiff) (Reg.q mul_acc) (negate (Reg.q mul_acc))
  in
  let mul_result =
    mux2 (eq_const (Reg.q mul_f3) 0)
      (bits mul_product ~hi:63 ~lo:32)
      (bits mul_product ~hi:31 ~lo:0)
  in

  (* CDB: a mul broadcasts when its unit completes, not at issue *)
  let issue_writes = issue &: x_wr &: ~:is_mul_x in
  let cdb_valid = mul_done |: issue_writes in
  let cdb_prd = mux2 mul_done x_prd (Reg.q mul_prd) in
  let cdb_value =
    mux2 mul_done
      (one_hot_mux
         [ (x_isalu, alu_result); (is_load_x, load_val); (x_isbr, link) ])
      mul_result
  in
  Mem.write prf ~en:cdb_valid ~addr:cdb_prd ~data:cdb_value;

  (* ================== ROB updates ===================================== *)
  let t0 = Reg.q tail in
  let t1 = Reg.q tail +: k rbits 1 in
  (* a mul completes when its unit finishes, not when it issues *)
  let exec_rob = mux2 mul_done x_rob (Reg.q mul_rob) in
  let exec_done = (issue &: ~:is_mul_x) |: mul_done in
  (* per-entry next-state: dispatch fills, execution completes, commit
     and flush clear *)
  for i = 0 to ne - 1 do
    let is_d0 = disp0 &: (t0 ==: k rbits i) in
    let is_d1 = disp1 &: (t1 ==: k rbits i) in
    let is_exec = exec_done &: (exec_rob ==: k rbits i) in
    let is_c0 = commit0 &: (h0 ==: k rbits i) in
    let is_c1 = commit1 &: (h1 ==: k rbits i) in
    let dsp = is_d0 |: is_d1 in
    let pick a b = mux2 is_d1 a b in
    Reg.connect rob_valid.(i)
      (mux2 flush
         (mux2 dsp (mux2 (is_c0 |: is_c1) (Reg.q rob_valid.(i)) (gnd c)) (vdd c))
         (gnd c));
    let d_instr = pick i0 i1 in
    let d_dec_nop = pick is_nop0 is_nop1 in
    let d_isstore = pick d0.Rv_util.is_store d1.Rv_util.is_store in
    let d_isbranch = pick (dec_br d0) (dec_br d1) in
    let d_wr = pick wr0 wr1 in
    let d_prd = pick newp0 newp1 in
    let d_oldp = pick oldp0 oldp1 in
    let d_pc = pick (Reg.q fd_pc) (Reg.q fd_pc +: k 32 4) in
    (* nops retire immediately; everything else completes at execute *)
    Reg.connect_en rob_done.(i) ~en:(dsp |: is_exec) (mux2 dsp (vdd c) d_dec_nop);
    Reg.connect_en rob_rd.(i) ~en:dsp (mux2 d_wr (k 5 0) (Rv_util.rd d_instr));
    Reg.connect_en rob_prd.(i) ~en:dsp d_prd;
    Reg.connect_en rob_oldprd.(i) ~en:dsp d_oldp;
    Reg.connect_en rob_isstore.(i) ~en:dsp d_isstore;
    Reg.connect_en rob_isbranch.(i) ~en:dsp d_isbranch;
    Reg.connect_en rob_pc.(i) ~en:dsp d_pc;
    let exec_here = issue &: (x_rob ==: k rbits i) in
    let exec_br = exec_here &: x_isbr in
    Reg.connect_en rob_staddr.(i) ~en:(exec_here &: is_store_x) mem_addr_x;
    Reg.connect_en rob_stdata.(i) ~en:(exec_here &: is_store_x) store_data_sh;
    Reg.connect_en rob_stbe.(i) ~en:(exec_here &: is_store_x) store_be;
    Reg.connect_en rob_taken.(i) ~en:(dsp |: exec_br) (mux2 dsp br_taken (gnd c));
    (* stale speculation state must be cleared when the slot is refilled *)
    Reg.connect_en rob_mispred.(i) ~en:(dsp |: exec_br) (mux2 dsp mispredict (gnd c));
    Reg.connect_en rob_target.(i) ~en:(dsp |: exec_br) (mux2 dsp actual_next d_pc)
  done;
  Reg.connect head
    (mux2 flush (Reg.q head +: uresize n_commit rbits) (Reg.q head +: k rbits 1));
  Reg.connect tail
    (mux2 flush
       (mux2 dispatch (Reg.q tail) (Reg.q tail +: uresize n_disp rbits))
       (Reg.q head +: k rbits 1));
  Reg.connect count
    (mux2 flush
       (Reg.q count
        +: uresize (mux2 dispatch (zero c 2) n_disp) (rbits + 1)
        -: uresize n_commit (rbits + 1))
       (zero c (rbits + 1)));

  (* ================== IQ updates ====================================== *)
  let cdb_wake p = cdb_valid &: (cdb_prd ==: p) in
  let src_ready p =
    (* ready if not busy, or being broadcast right now *)
    ~:(lsb (read_array busy p)) |: cdb_wake p
  in
  for i = 0 to nq - 1 do
    let ins0 = disp0 &: needs_iq0 &: iqf_oh0.(i) in
    let ins1 = disp1 &: needs_iq1 &: (mux2 needs_iq0 iqf_oh0.(i) iqf_oh1.(i)) in
    let ins = ins0 |: ins1 in
    let issue_here = issue &: issue_oh.(i) in
    Reg.connect iq_valid.(i)
      (mux2 flush
         (mux2 ins (mux2 issue_here (Reg.q iq_valid.(i)) (gnd c)) (vdd c))
         (gnd c));
    let pick a b = mux2 ins1 a b in
    let instr = pick i0 i1 in
    Reg.connect_en iq_isalu.(i) ~en:ins (pick (dec_alu d0) (dec_alu d1));
    Reg.connect_en iq_isbr.(i) ~en:ins (pick (dec_br d0) (dec_br d1));
    Reg.connect_en iq_isload.(i) ~en:ins
      (pick d0.Rv_util.is_load d1.Rv_util.is_load);
    Reg.connect_en iq_isstore.(i) ~en:ins
      (pick d0.Rv_util.is_store d1.Rv_util.is_store);
    Reg.connect_en iq_ismul.(i) ~en:ins (pick d0.Rv_util.is_mul d1.Rv_util.is_mul);
    Reg.connect_en iq_f3.(i) ~en:ins (Rv_util.funct3 instr);
    Reg.connect_en iq_alt.(i) ~en:ins
      (pick
         (lsb ((d0.Rv_util.is_alu_reg &: eq_const (Rv_util.funct7 i0) 0b0100000)
               |: (d0.Rv_util.is_alu_imm &: eq_const (Rv_util.funct3 i0) 0b101
                   &: bit i0 30)))
         (lsb ((d1.Rv_util.is_alu_reg &: eq_const (Rv_util.funct7 i1) 0b0100000)
               |: (d1.Rv_util.is_alu_imm &: eq_const (Rv_util.funct3 i1) 0b101
                   &: bit i1 30))));
    Reg.connect_en iq_jal.(i) ~en:ins (pick d0.Rv_util.is_jal d1.Rv_util.is_jal);
    Reg.connect_en iq_jalr.(i) ~en:ins (pick d0.Rv_util.is_jalr d1.Rv_util.is_jalr);
    Reg.connect_en iq_lui.(i) ~en:ins (pick d0.Rv_util.is_lui d1.Rv_util.is_lui);
    Reg.connect_en iq_auipc.(i) ~en:ins (pick d0.Rv_util.is_auipc d1.Rv_util.is_auipc);
    Reg.connect_en iq_useimm.(i) ~en:ins (pick (useimm_of d0) (useimm_of d1));
    Reg.connect_en iq_imm.(i) ~en:ins (pick (imm_of i0 d0) (imm_of i1 d1));
    Reg.connect_en iq_pc.(i) ~en:ins
      (pick (Reg.q fd_pc) (Reg.q fd_pc +: k 32 4));
    Reg.connect_en iq_prednext.(i) ~en:ins
      (pick (Reg.q fd_prednext0) (Reg.q fd_prednext1));
    let prs1_sel = pick prs1_0 prs1_1 in
    let prs2_sel = pick prs2_0 prs2_1 in
    Reg.connect_en iq_prs1.(i) ~en:ins prs1_sel;
    Reg.connect_en iq_prs2.(i) ~en:ins prs2_sel;
    (* operands that the instruction does not actually read are born
       ready; slot1 sources produced by slot0 this cycle are busy *)
    let uses_rs1 (d : Rv_util.decoded) =
      d.Rv_util.is_alu_imm |: d.Rv_util.is_alu_reg |: d.Rv_util.is_load
      |: d.Rv_util.is_store |: d.Rv_util.is_branch |: d.Rv_util.is_jalr
      |: d.Rv_util.is_mul
    in
    let uses_rs2 (d : Rv_util.decoded) =
      d.Rv_util.is_alu_reg |: d.Rv_util.is_store |: d.Rv_util.is_branch
      |: d.Rv_util.is_mul
    in
    let src_at_insert ~used ~dep_on_slot0 prs =
      ~:used |: (used &: ~:dep_on_slot0 &: src_ready prs)
    in
    let r1_at_insert =
      mux2 ins1
        (src_at_insert ~used:(uses_rs1 d0) ~dep_on_slot0:(gnd c) prs1_0)
        (src_at_insert ~used:(uses_rs1 d1)
           ~dep_on_slot0:(wr0 &: (rs1_1 ==: rd_0)) prs1_1)
    in
    let r2_at_insert =
      mux2 ins1
        (src_at_insert ~used:(uses_rs2 d0) ~dep_on_slot0:(gnd c) prs2_0)
        (src_at_insert ~used:(uses_rs2 d1)
           ~dep_on_slot0:(wr0 &: (rs2_1 ==: rd_0)) prs2_1)
    in
    Reg.connect iq_r1rdy.(i)
      (mux2 ins
         (Reg.q iq_r1rdy.(i) |: cdb_wake (Reg.q iq_prs1.(i)))
         r1_at_insert);
    Reg.connect iq_r2rdy.(i)
      (mux2 ins
         (Reg.q iq_r2rdy.(i) |: cdb_wake (Reg.q iq_prs2.(i)))
         r2_at_insert);
    Reg.connect_en iq_prd.(i) ~en:ins (pick newp0 newp1);
    Reg.connect_en iq_wr.(i) ~en:ins (pick wr0 wr1);
    Reg.connect_en iq_rob.(i) ~en:ins (pick t0 t1)
  done;

  (* ================== rename state updates ============================ *)
  for r = 0 to 31 do
    let ri = k 5 r in
    let w0 = disp0 &: wr0 &: (rd_0 ==: ri) in
    let w1 = disp1 &: wr1 &: (rd_1 ==: ri) in
    let srat_next =
      mux2 w1 (mux2 w0 (Reg.q srat.(r)) newp0) newp1
    in
    (* on flush, restore from the committed map including this cycle's
       commits *)
    let cw0 = commit0 &: (c0_rd ==: ri) &: (c0_rd <>: k 5 0) in
    let cw1 = commit1 &: (c1_rd ==: ri) &: (c1_rd <>: k 5 0) in
    let crat_next =
      mux2 cw1 (mux2 cw0 (Reg.q crat.(r)) c0_prd) c1_prd
    in
    Reg.connect crat.(r) crat_next;
    Reg.connect srat.(r) (mux2 flush srat_next crat_next)
  done;
  for p = 0 to config.phys_regs - 1 do
    let pi = k pbits p in
    let alloc0 = disp0 &: wr0 &: (newp0 ==: pi) in
    let alloc1 = disp1 &: wr1 &: (newp1 ==: pi) in
    let freed0 = commit0 &: (c0_rd <>: k 5 0) &: (c0_oldprd ==: pi) in
    let freed1 = commit1 &: (c1_rd <>: k 5 0) &: (c1_oldprd ==: pi) in
    let cheld0 = commit0 &: (c0_rd <>: k 5 0) &: (c0_prd ==: pi) in
    let cheld1 = commit1 &: (c1_rd <>: k 5 0) &: (c1_prd ==: pi) in
    let cfree_next =
      mux2 (cheld0 |: cheld1) (mux2 (freed0 |: freed1) (Reg.q cfree.(p)) (vdd c))
        (gnd c)
    in
    Reg.connect cfree.(p) cfree_next;
    let sfree_next =
      mux2 (alloc0 |: alloc1)
        (mux2 (freed0 |: freed1) (Reg.q sfree.(p)) (vdd c))
        (gnd c)
    in
    Reg.connect sfree.(p) (mux2 flush sfree_next cfree_next);
    let set_busy = alloc0 |: alloc1 in
    let clr_busy = cdb_valid &: (cdb_prd ==: pi) in
    Reg.connect busy.(p)
      (mux2 flush
         (mux2 set_busy (mux2 clr_busy (Reg.q busy.(p)) (gnd c)) (vdd c))
         (gnd c))
  done;

  (* ================== predictor updates =============================== *)
  let upd_br0 = commit0 &: c0_isbranch in
  let upd_br1 = commit1 &: c1_isbranch in
  (* one predictor update per cycle: the first committing branch *)
  let upd_en = upd_br0 |: upd_br1 in
  let upd_pc = mux2 upd_br0 c1_pc c0_pc in
  let upd_taken = lsb (mux2 upd_br0 c1_taken c0_taken) in
  let upd_target = mux2 upd_br0 (rob_at rob_target h1) c0_target in
  Reg.connect_en ghr ~en:upd_en
    (concat [ bits (Reg.q ghr) ~hi:6 ~lo:0; upd_taken ]);
  let upd_pht_idx =
    bits upd_pc ~hi:(2 + phtbits - 1) ~lo:2 ^: uresize (Reg.q ghr) phtbits
  in
  Array.iteri
    (fun i r ->
      let here = upd_en &: (upd_pht_idx ==: k phtbits i) in
      let cur = Reg.q r in
      let inc = mux2 (cur ==: k 2 3) (cur +: k 2 1) cur in
      let dec = mux2 (cur ==: k 2 0) (cur -: k 2 1) cur in
      Reg.connect_en r ~en:here (mux2 upd_taken dec inc))
    pht;
  Array.iteri
    (fun i _ ->
      let here = upd_en &: (btb_idx upd_pc ==: k btbbits i) in
      Reg.connect_en btb_valid.(i) ~en:here upd_taken;
      Reg.connect_en btb_tag.(i) ~en:(here &: upd_taken) (btb_tag_of upd_pc);
      Reg.connect_en btb_target.(i) ~en:(here &: upd_taken) upd_target)
    btb_valid;

  (* ================== fetch advance ==================================== *)
  let fetch_stall = have_work &: ~:dispatch in
  Reg.connect pc
    (mux2 flush (mux2 fetch_stall fetch_next (Reg.q pc)) c0_target);
  Reg.connect fd_valid0
    (mux2 flush (mux2 fetch_stall (vdd c) (Reg.q fd_valid0)) (gnd c));
  Reg.connect fd_valid1
    (mux2 flush (mux2 fetch_stall (~:pred0) (Reg.q fd_valid1)) (gnd c));
  Reg.connect fd_pc (mux2 fetch_stall pc0 (Reg.q fd_pc));
  Reg.connect fd_instr0
    (mux2 fetch_stall (bits instr_rdata ~hi:31 ~lo:0) (Reg.q fd_instr0));
  Reg.connect fd_instr1
    (mux2 fetch_stall (bits instr_rdata ~hi:63 ~lo:32) (Reg.q fd_instr1));
  Reg.connect fd_prednext0 (mux2 fetch_stall prednext0 (Reg.q fd_prednext0));
  Reg.connect fd_prednext1 (mux2 fetch_stall prednext1 (Reg.q fd_prednext1));

  (* ================== memory port ====================================== *)
  let st_addr = mux2 store_commit1 (rob_at rob_staddr h0) (rob_at rob_staddr h1) in
  let st_data = mux2 store_commit1 (rob_at rob_stdata h0) (rob_at rob_stdata h1) in
  let st_be = mux2 store_commit1 (rob_at rob_stbe h0) (rob_at rob_stbe h1) in
  let load_issuing = issue &: is_load_x in
  Ctx.output c "instr_addr" (concat [ bits (Reg.q pc) ~hi:31 ~lo:2; zero c 2 ]);
  Ctx.output c "data_addr" (mux2 store_commit mem_addr_x st_addr);
  Ctx.output c "data_wdata" st_data;
  Ctx.output c "data_we" store_commit;
  Ctx.output c "data_be" st_be;
  Ctx.output c "data_req" (store_commit |: load_issuing);
  Ctx.output c "retire" (lsb commit0);
  Ctx.output c "retire2" (lsb commit1);

  { design = Ctx.finish c; instr_port = "instr_rdata"; config }

let resolve_bus design base width =
  Array.init width (fun i ->
      let nm = Printf.sprintf "%s[%d]" base i in
      let found = ref (-1) in
      for n = 0 to Netlist.Design.num_nets design - 1 do
        if !found < 0 && Netlist.Design.net_name design n = nm then found := n
      done;
      if !found < 0 then failwith ("Ridecore_like: no net named " ^ nm);
      !found)

let peek_crat_nets t k =
  if k < 0 || k > 31 then invalid_arg "Ridecore_like.peek_crat_nets";
  resolve_bus t.design (Printf.sprintf "crat_%d" k) (bits_for t.config.phys_regs)

let peek_prf_nets t p =
  if p < 0 || p >= t.config.phys_regs then
    invalid_arg "Ridecore_like.peek_prf_nets";
  resolve_bus t.design (Printf.sprintf "prf_%d" p) 32
