module D = Netlist.Design
module S = Netlist.Sim64

type t = {
  sim : S.t;
  program : int array;
  dmem : Bytes.t;
  instr_addr : D.net array;
  instr_rdata : D.net array;
  data_addr : D.net array;
  data_rdata : D.net array;
  data_wdata : D.net array;
  data_be : D.net array;
  data_we : D.net;
  retire : D.net;
  mutable retired : int;
}

let out_bus d nm =
  try D.output_bus d nm
  with Not_found -> (
    match D.find_output d nm with
    | Some n -> [| n |]
    | None -> failwith ("Testbench: no output " ^ nm))

let create design ~program ?(dmem_bytes = 65536) () =
  let sim = S.create design in
  {
    sim;
    program;
    dmem = Bytes.make dmem_bytes '\000';
    instr_addr = out_bus design "instr_addr";
    instr_rdata = D.input_bus design "instr_rdata";
    data_addr = out_bus design "data_addr";
    data_rdata = D.input_bus design "data_rdata";
    data_wdata = out_bus design "data_wdata";
    data_be = out_bus design "data_be";
    data_we = (out_bus design "data_we").(0);
    retire = (out_bus design "retire").(0);
    retired = 0;
  }

let sim t = t.sim

let fetch t byte_addr =
  let hw i =
    if i >= 0 && i < Array.length t.program then t.program.(i) else 0
  in
  let idx = byte_addr / 2 in
  hw idx lor (hw (idx + 1) lsl 16)

let mem_word t byte_addr =
  let base = byte_addr land lnot 3 in
  let byte i =
    if base + i < Bytes.length t.dmem then Char.code (Bytes.get t.dmem (base + i))
    else 0
  in
  byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)

let read_mem32 t addr = mem_word t addr

let write_mem32 t addr v =
  let base = addr land lnot 3 in
  for i = 0 to 3 do
    if base + i < Bytes.length t.dmem then
      Bytes.set t.dmem (base + i) (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let read_bus t nets = S.read_bus t.sim nets

let cycle t =
  (* Addresses depend only on register state, so one settle exposes
     them; then memories respond and a second settle finalizes the
     cycle before the clock edge.  Wide fetch ports (the 2-wide core)
     are served in 32-bit chunks. *)
  S.eval t.sim;
  let ia = read_bus t t.instr_addr in
  let width = Array.length t.instr_rdata in
  for chunk = 0 to (width / 32) - 1 do
    let sub = Array.sub t.instr_rdata (chunk * 32) 32 in
    S.set_bus t.sim sub (fetch t (ia + (4 * chunk)))
  done;
  if width mod 32 <> 0 then
    S.set_bus t.sim
      (Array.sub t.instr_rdata (width / 32 * 32) (width mod 32))
      (fetch t (ia + (4 * (width / 32))));
  let da = read_bus t t.data_addr in
  S.set_bus t.sim t.data_rdata (mem_word t da);
  S.eval t.sim;
  if S.read t.sim t.retire = -1L then t.retired <- t.retired + 1;
  if S.read t.sim t.data_we = -1L then begin
    let base = da land lnot 3 in
    let be = read_bus t t.data_be in
    let wdata = read_bus t t.data_wdata in
    for i = 0 to 3 do
      if be land (1 lsl i) <> 0 && base + i < Bytes.length t.dmem then
        Bytes.set t.dmem (base + i) (Char.chr ((wdata lsr (8 * i)) land 0xFF))
    done
  end;
  S.step t.sim

let run t ~cycles =
  for _ = 1 to cycles do
    cycle t
  done

let retired t = t.retired
