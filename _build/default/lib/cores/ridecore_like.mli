(** The RIDECORE-class core: a 2-way out-of-order RV32IM core with
    register renaming (paper Table II, second row).

    Built to reproduce the paper's scalability experiment: an
    order-of-magnitude more gates than the in-order cores, dominated by
    out-of-order bookkeeping structures — a 96-entry physical register
    file, a 64-entry reorder buffer, a unified issue queue, G-share
    branch prediction with an 8-entry BTB, speculative and committed
    rename tables — none of which shrink when the supported ISA does,
    which is exactly why PDAT's relative savings are muted here while
    the absolute savings remain comparable to Ibex (paper section
    VII-C).

    Microarchitectural simplifications versus RIDECORE proper (all
    documented in DESIGN.md): single-issue execute with a single
    common data bus, loads held until the store queue (the ROB's store
    slots) drains, and mispredict recovery at commit via the committed
    rename state.  Division is not implemented (RIDECORE does not
    implement it either); div/rem, system and fence instructions retire
    as nops.

    Fetch is 2 instructions per cycle through a 64-bit port
    [instr_rdata[63:0]] at the word-aligned [instr_addr]. *)

type config = {
  rob_entries : int;   (** default 64 *)
  phys_regs : int;     (** default 96 *)
  iq_entries : int;    (** default 16 *)
  pht_entries : int;   (** default 256 (G-share) *)
  btb_entries : int;   (** default 8 *)
}

val default_config : config

type t = {
  design : Netlist.Design.t;
  instr_port : string;
  config : config;
}

val build : ?config:config -> unit -> t

val peek_crat_nets : t -> int -> Netlist.Design.net array
(** Committed rename-table entry for architectural register [k]: the
    physical register index currently holding its committed value. *)

val peek_prf_nets : t -> int -> Netlist.Design.net array
(** Physical register [p] as 32 nets.  Reading architectural state from
    a testbench is a two-step indirection: {!peek_crat_nets} then this. *)
