(** The PDAT pipeline (paper Figure 2): Property Checking, Netlist
    Rewiring, Logic Resynthesis.

    [run] takes the design to be reduced and an {!Environment} built
    over it, mines property-library candidates on the environment's
    model, proves them by mutual k-induction, rewires the original
    netlist with the survivors, and resynthesizes.  The baseline
    against which the paper reports area/gate deltas is the original
    design pushed through the same resynthesis flow with no PDAT
    transformation ({!baseline}). *)

type report = {
  variant : string;
  mined : int;
  proved : int;
  induction : Engine.Induction.stats;
  before : Netlist.Stats.t;   (** baseline-optimized original *)
  after : Netlist.Stats.t;    (** PDAT-reduced, resynthesized *)
  seconds : float;
}

type result = {
  reduced : Netlist.Design.t;
  report : report;
}

val baseline : Netlist.Design.t -> Netlist.Design.t * Netlist.Stats.t
(** Plain synthesis of the input, the paper's "Full" variant. *)

val run :
  ?rsim:Engine.Rsim.config ->
  ?refine:Engine.Rsim.config ->
  ?induction:Engine.Induction.options ->
  design:Netlist.Design.t ->
  env:Environment.t ->
  unit ->
  result
(** [rsim] controls candidate mining, [refine] the long candidate-only
    simulation pass that weeds out false candidates before the prover
    (default: 4 runs of 2048 cycles). *)

val pp_report : Format.formatter -> report -> unit

val area_delta_pct : report -> float
(** Percent area reduction of [after] versus [before]. *)

val gate_delta_pct : report -> float
