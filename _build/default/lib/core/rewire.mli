(** The Netlist Rewiring Stage (paper section IV-B).

    Applies proved property instances to the original netlist: nets
    proved constant are detached from their drivers and tied to the
    matching rail; a proved input implication collapses its gate's
    output onto the dominating/dominated input (through an inverter
    for the inverting gates).  No cell is removed here — the dead
    drivers are left for the resynthesis stage, exactly as in the
    paper. *)

val apply : Netlist.Design.t -> Engine.Candidate.t list -> Netlist.Design.t
(** Candidates must have been proved on (a model of) this design;
    instances referring to unknown cells raise [Invalid_argument]. *)
