type report = {
  variant : string;
  mined : int;
  proved : int;
  induction : Engine.Induction.stats;
  before : Netlist.Stats.t;
  after : Netlist.Stats.t;
  seconds : float;
}

type result = {
  reduced : Netlist.Design.t;
  report : report;
}

let baseline d =
  let d', _ = Synthkit.Optimize.run d in
  (d', Netlist.Stats.of_design d')

let default_refine =
  { Engine.Rsim.default with Engine.Rsim.cycles = 2048; runs = 4 }

let run ?rsim ?(refine = default_refine) ?induction ~design ~env () =
  let t0 = Unix.gettimeofday () in
  let candidates =
    Property_library.mine ?config:rsim ~model:env.Environment.model
      ~assume:env.Environment.assume ~stimulus:env.Environment.stimulus ()
    |> Property_library.restrict_to_original ~original:design
  in
  (* a long, candidate-focused simulation pass kills most false
     candidates far more cheaply than SAT counterexamples would *)
  let candidates =
    Engine.Rsim.refine ~config:refine ~assume:env.Environment.assume
      env.Environment.model env.Environment.stimulus candidates
  in
  let proved, istats =
    Engine.Induction.prove ?options:induction
      ~cex:(env.Environment.stimulus, 24)
      ~assume:env.Environment.assume env.Environment.model candidates
  in
  let rewired = Rewire.apply design proved in
  let reduced, _ = Synthkit.Optimize.run rewired in
  let _, before = baseline design in
  let after = Netlist.Stats.of_design reduced in
  {
    reduced;
    report =
      {
        variant = env.Environment.description;
        mined = List.length candidates;
        proved = List.length proved;
        induction = istats;
        before;
        after;
        seconds = Unix.gettimeofday () -. t0;
      };
  }

let area_delta_pct r =
  Netlist.Stats.delta_pct ~baseline:r.before.Netlist.Stats.area
    r.after.Netlist.Stats.area

let gate_delta_pct r =
  Netlist.Stats.delta_pct
    ~baseline:(float_of_int (Netlist.Stats.gate_count r.before))
    (float_of_int (Netlist.Stats.gate_count r.after))

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>%s: mined=%d proved=%d (%a)@,area %.1f -> %.1f um^2 (%.1f%%), gates %d -> %d (%.1f%%), %.1fs@]"
    r.variant r.mined r.proved Engine.Induction.pp_stats r.induction
    r.before.Netlist.Stats.area r.after.Netlist.Stats.area (area_delta_pct r)
    (Netlist.Stats.gate_count r.before)
    (Netlist.Stats.gate_count r.after)
    (gate_delta_pct r) r.seconds
