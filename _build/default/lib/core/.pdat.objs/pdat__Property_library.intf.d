lib/core/property_library.mli: Engine Netlist
