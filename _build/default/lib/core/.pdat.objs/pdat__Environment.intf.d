lib/core/environment.mli: Engine Isa Netlist
