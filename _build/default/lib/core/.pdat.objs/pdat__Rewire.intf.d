lib/core/rewire.mli: Engine Netlist
