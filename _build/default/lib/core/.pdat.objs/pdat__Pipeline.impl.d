lib/core/pipeline.ml: Engine Environment Format List Netlist Property_library Rewire Synthkit Unix
