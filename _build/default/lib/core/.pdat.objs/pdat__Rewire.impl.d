lib/core/rewire.ml: Engine Hashtbl List Netlist
