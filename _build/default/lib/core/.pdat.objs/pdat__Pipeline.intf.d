lib/core/pipeline.mli: Engine Environment Format Netlist
