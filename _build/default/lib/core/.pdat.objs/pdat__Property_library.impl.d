lib/core/property_library.ml: Engine List Netlist
