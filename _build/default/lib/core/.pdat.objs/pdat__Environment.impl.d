lib/core/environment.ml: Array Engine Hashtbl Hdl Isa List Netlist Printf Random
