module D = Netlist.Design
module C = Netlist.Cell

(* Substitutions can chain (an implication redirects a gate output to
   an input that is itself proved constant), so resolve the map
   transitively before substituting. *)
let apply d cands =
  let d = D.copy d in
  let target = Hashtbl.create 64 in
  (* constants win over implications on the same net *)
  List.iter
    (fun cand ->
      match cand with
      | Engine.Candidate.Const (n, b) ->
          Hashtbl.replace target n (if b then D.net_true else D.net_false)
      | Engine.Candidate.Implies _ -> ())
    cands;
  List.iter
    (fun cand ->
      match cand with
      | Engine.Candidate.Const _ -> ()
      | Engine.Candidate.Implies { cell; a; b } ->
          if cell < 0 || cell >= D.num_cells d then
            invalid_arg "Rewire.apply: unknown cell";
          let c = D.cell d cell in
          if not (Hashtbl.mem target c.D.out) then begin
            (* a -> b on this gate *)
            let redirect =
              match c.D.kind with
              | C.And2 -> Some a               (* a & b = a *)
              | C.Or2 -> Some b                (* a | b = b *)
              | C.Nand2 -> Some (D.add_cell d C.Inv [| a |])
              | C.Nor2 -> Some (D.add_cell d C.Inv [| b |])
              | C.Const0 | C.Const1 | C.Buf | C.Inv | C.Xor2 | C.Xnor2
              | C.And3 | C.Or3 | C.Nand3 | C.Nor3 | C.And4 | C.Or4 | C.Mux2
              | C.Aoi21 | C.Oai21 | C.Dff ->
                  None
            in
            match redirect with
            | Some n -> Hashtbl.replace target c.D.out n
            | None -> ()
          end)
    cands;
  let rec resolve seen n =
    match Hashtbl.find_opt target n with
    | Some n' when not (List.mem n' seen) -> resolve (n :: seen) n'
    | Some _ | None -> n
  in
  D.substitute d (fun n -> resolve [] n)
