type t = {
  drive : Random.State.t -> (Netlist.Design.net * int64) list;
}

let unconstrained = { drive = (fun _ -> []) }

let pack_lanes gen ~width =
  let words = Array.init 64 gen in
  Array.init width (fun i ->
      let acc = ref 0L in
      for lane = 0 to 63 do
        if (words.(lane) lsr i) land 1 = 1 then
          acc := Int64.logor !acc (Int64.shift_left 1L lane)
      done;
      !acc)

let bus_driver nets gen rng =
  let lanes = pack_lanes (fun _ -> gen rng) ~width:(Array.length nets) in
  Array.to_list (Array.mapi (fun i n -> (n, lanes.(i))) nets)
