type t =
  | Const of Netlist.Design.net * bool
  | Implies of { cell : int; a : Netlist.Design.net; b : Netlist.Design.net }

let compare = Stdlib.compare
let equal a b = compare a b = 0

let holds_in_values value = function
  | Const (n, true) -> value n = -1L
  | Const (n, false) -> value n = 0L
  | Implies { a; b; _ } -> Int64.logand (value a) (Int64.lognot (value b)) = 0L

let pp d fmt = function
  | Const (n, b) ->
      Format.fprintf fmt "%s == %d" (Netlist.Design.net_name d n) (Bool.to_int b)
  | Implies { a; b; cell } ->
      Format.fprintf fmt "%s -> %s (cell %d)" (Netlist.Design.net_name d a)
        (Netlist.Design.net_name d b) cell
