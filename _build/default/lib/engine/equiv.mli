(** Bounded sequential equivalence checking by SAT miter.

    Both designs are unrolled from reset into one solver with shared
    primary inputs (matched by port name), optionally under a per-frame
    assumption on the first design (PDAT's environment monitor).  The
    check asserts that some output (matched by name) differs in some
    frame; UNSAT proves the designs produce identical outputs for
    [frames] cycles on every allowed stimulus.

    This is how the repository *formally* validates PDAT reductions,
    complementing the simulation-based equivalence tests: the reduced
    netlist must be indistinguishable from the original for every
    input sequence the environment admits. *)

type result =
  | Equivalent
  | Counterexample of { frame : int; output : string }
  | Unknown  (** conflict budget exhausted *)

val bounded :
  ?assume:Netlist.Design.net ->
  ?conflict_budget:int ->
  frames:int ->
  Netlist.Design.t ->
  Netlist.Design.t ->
  result
(** [bounded ?assume ~frames d1 d2].  [assume] is a net of [d1], forced
    to 1 in every frame.  Inputs of [d2] must be a subset of [d1]'s
    (matched by name); outputs are compared on the intersection of the
    two output name sets.
    @raise Invalid_argument if the designs share no outputs. *)
