module D = Netlist.Design
module S = Sat.Solver
module L = Sat.Lit

type result =
  | Equivalent
  | Counterexample of { frame : int; output : string }
  | Unknown

let bounded ?(assume = D.net_true) ?(conflict_budget = -1) ~frames d1 d2 =
  let solver = S.create () in
  let shared : (int * string, L.t) Hashtbl.t = Hashtbl.create 256 in
  let pi_lit ~frame nm =
    match Hashtbl.find_opt shared (frame, nm) with
    | Some l -> Some l
    | None ->
        let l = L.pos (S.new_var solver) in
        Hashtbl.replace shared (frame, nm) l;
        Some l
  in
  let u1 = Unroll.create ~pi_lit solver d1 ~init:`Reset in
  let u2 = Unroll.create ~pi_lit solver d2 ~init:`Reset in
  for _ = 1 to frames do
    Unroll.add_frame u1;
    Unroll.add_frame u2
  done;
  if assume <> D.net_true then
    for f = 0 to frames - 1 do
      S.add_clause solver [ Unroll.lit u1 ~frame:f assume ]
    done;
  (* outputs compared on the name intersection *)
  let outs2 = D.outputs d2 in
  let pairs =
    List.filter_map
      (fun (nm, n1) ->
        match List.assoc_opt nm outs2 with
        | Some n2 -> Some (nm, n1, n2)
        | None -> None)
      (D.outputs d1)
  in
  if pairs = [] then invalid_arg "Equiv.bounded: no shared outputs";
  (* mismatch literal per (frame, output) *)
  let mismatches =
    List.concat_map
      (fun (nm, n1, n2) ->
        List.init frames (fun f ->
            let a = Unroll.lit u1 ~frame:f n1 in
            let b = Unroll.lit u2 ~frame:f n2 in
            let m = L.pos (S.new_var solver) in
            Sat.Tseitin.xor2 solver ~out:m a b;
            ((f, nm), m)))
      pairs
  in
  S.add_clause solver (List.map snd mismatches);
  match S.solve ~conflict_budget solver with
  | S.Unsat -> Equivalent
  | S.Unknown -> Unknown
  | S.Sat ->
      let frame, output =
        match
          List.find_opt (fun (_, m) -> S.lit_value solver m) mismatches
        with
        | Some ((f, nm), _) -> (f, nm)
        | None -> (-1, "?")
      in
      Counterexample { frame; output }
