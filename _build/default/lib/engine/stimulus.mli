(** Constrained stimulus for the simulation stage.

    A stimulus produces, each cycle, 64 lanes of values for the primary
    inputs such that the environment restriction holds on every lane —
    the simulation counterpart of the [assume property] in the paper's
    Listing 3.  PDAT builds these constructively (sample an instruction
    from the subset, randomize its free fields). *)

type t = {
  drive : Random.State.t -> (Netlist.Design.net * int64) list;
      (** Values per cycle; inputs not mentioned get fresh random lanes. *)
}

val unconstrained : t
(** Every input fully random. *)

val pack_lanes : (int -> int) -> width:int -> int64 array
(** [pack_lanes gen ~width] builds per-bit lane words from 64 sampled
    values: bit position [lane] of result word [i] is bit [i] of
    [gen lane]. *)

val bus_driver :
  Netlist.Design.net array -> (Random.State.t -> int) -> Random.State.t ->
  (Netlist.Design.net * int64) list
(** Drives a bus from a per-lane word generator. *)
