lib/engine/unroll.ml: Array List Netlist Sat
