lib/engine/equiv.mli: Netlist
