lib/engine/stimulus.ml: Array Int64 Netlist Random
