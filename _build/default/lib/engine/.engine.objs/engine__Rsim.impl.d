lib/engine/rsim.ml: Array Candidate Int64 List Netlist Random Stimulus
