lib/engine/stimulus.mli: Netlist Random
