lib/engine/equiv.ml: Hashtbl List Netlist Sat Unroll
