lib/engine/rsim.mli: Candidate Netlist Stimulus
