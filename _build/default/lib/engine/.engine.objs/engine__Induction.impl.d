lib/engine/induction.ml: Array Candidate Format Int64 List Netlist Random Sat Stimulus Unroll
