lib/engine/candidate.ml: Bool Format Int64 Netlist Stdlib
