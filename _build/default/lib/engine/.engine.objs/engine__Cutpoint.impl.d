lib/engine/cutpoint.ml: Array Hashtbl List Netlist Printf
