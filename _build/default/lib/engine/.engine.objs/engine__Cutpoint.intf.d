lib/engine/cutpoint.mli: Netlist
