lib/engine/induction.mli: Candidate Format Netlist Stimulus
