lib/engine/candidate.mli: Format Netlist
