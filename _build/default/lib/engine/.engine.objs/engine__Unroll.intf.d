lib/engine/unroll.mli: Netlist Sat
