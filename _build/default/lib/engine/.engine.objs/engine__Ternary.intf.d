lib/engine/ternary.mli: Candidate Netlist
