lib/engine/ternary.ml: Array Bool Candidate List Netlist
