(** Time-frame expansion of a synchronous design into CNF.

    Each frame maps every net to a literal.  Frame 0 flip-flop outputs
    are either the reset constants ([`Reset]) or fresh variables
    ([`Free], for induction steps); in later frames each flip-flop
    output aliases the previous frame's literal of its D net.  Buffers
    and inverters alias literals, so only real gates cost variables. *)

type t

val create :
  ?pi_lit:(frame:int -> string -> Sat.Lit.t option) ->
  Sat.Solver.t -> Netlist.Design.t -> init:[ `Reset | `Free ] -> t
(** [pi_lit] lets the caller supply the literal for a primary input by
    name — how two designs unrolled into one solver share their
    stimulus (miter construction). *)

val add_frame : t -> unit
(** Appends one frame (frame 0 on the first call). *)

val frames : t -> int

val lit : t -> frame:int -> Netlist.Design.net -> Sat.Lit.t
(** Literal of a net in a frame.  @raise Invalid_argument on an
    unknown frame. *)

val lit_true : t -> Sat.Lit.t
(** The always-true literal of this instance. *)

val solver : t -> Sat.Solver.t
