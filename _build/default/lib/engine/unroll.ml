module D = Netlist.Design
module C = Netlist.Cell
module S = Sat.Solver
module L = Sat.Lit
module T = Sat.Tseitin

type t = {
  solver : S.t;
  d : D.t;
  sched : Netlist.Topo.schedule;
  init : [ `Reset | `Free ];
  pi_lit : (frame:int -> string -> L.t option) option;
  mutable frames_rev : L.t array list;
  mutable n_frames : int;
  lit_true : L.t;
}

let create ?pi_lit solver d ~init =
  let v = S.new_var solver in
  let lit_true = L.pos v in
  S.add_clause solver [ lit_true ];
  {
    solver;
    d;
    sched = Netlist.Topo.schedule d;
    init;
    pi_lit;
    frames_rev = [];
    n_frames = 0;
    lit_true;
  }

let fresh t = L.pos (S.new_var t.solver)

let encode_cell t lits (c : D.cell) =
  let l n = lits.(n) in
  let out v = lits.(c.D.out) <- v in
  let s = t.solver in
  let i k = l c.D.ins.(k) in
  let new_and a b =
    let v = fresh t in
    T.and2 s ~out:v a b;
    v
  in
  let new_or a b =
    let v = fresh t in
    T.or2 s ~out:v a b;
    v
  in
  match c.D.kind with
  | C.Const0 | C.Const1 -> ()  (* rails pre-seeded *)
  | C.Buf -> out (i 0)
  | C.Inv -> out (L.negate (i 0))
  | C.And2 -> out (new_and (i 0) (i 1))
  | C.Nand2 -> out (L.negate (new_and (i 0) (i 1)))
  | C.Or2 -> out (new_or (i 0) (i 1))
  | C.Nor2 -> out (L.negate (new_or (i 0) (i 1)))
  | C.Xor2 ->
      let v = fresh t in
      T.xor2 s ~out:v (i 0) (i 1);
      out v
  | C.Xnor2 ->
      let v = fresh t in
      T.xor2 s ~out:v (i 0) (i 1);
      out (L.negate v)
  | C.And3 ->
      let v = fresh t in
      T.andn s ~out:v [ i 0; i 1; i 2 ];
      out v
  | C.Nand3 ->
      let v = fresh t in
      T.andn s ~out:v [ i 0; i 1; i 2 ];
      out (L.negate v)
  | C.Or3 ->
      let v = fresh t in
      T.orn s ~out:v [ i 0; i 1; i 2 ];
      out v
  | C.Nor3 ->
      let v = fresh t in
      T.orn s ~out:v [ i 0; i 1; i 2 ];
      out (L.negate v)
  | C.And4 ->
      let v = fresh t in
      T.andn s ~out:v [ i 0; i 1; i 2; i 3 ];
      out v
  | C.Or4 ->
      let v = fresh t in
      T.orn s ~out:v [ i 0; i 1; i 2; i 3 ];
      out v
  | C.Mux2 ->
      let v = fresh t in
      T.mux s ~out:v ~sel:(i 0) ~a:(i 1) ~b:(i 2);
      out v
  | C.Aoi21 -> out (L.negate (new_or (new_and (i 0) (i 1)) (i 2)))
  | C.Oai21 -> out (L.negate (new_and (new_or (i 0) (i 1)) (i 2)))
  | C.Dff -> ()  (* handled by frame linking *)

let add_frame t =
  let n_nets = D.num_nets t.d in
  let lits = Array.make n_nets t.lit_true in
  lits.(D.net_false) <- L.negate t.lit_true;
  lits.(D.net_true) <- t.lit_true;
  List.iter
    (fun (nm, n) ->
      lits.(n) <-
        (match t.pi_lit with
        | Some f -> (
            match f ~frame:t.n_frames nm with Some l -> l | None -> fresh t)
        | None -> fresh t))
    (D.inputs t.d);
  let prev = match t.frames_rev with [] -> None | f :: _ -> Some f in
  Array.iter
    (fun ci ->
      let c = D.cell t.d ci in
      lits.(c.D.out) <-
        (match prev with
        | Some prev_lits -> prev_lits.(c.D.ins.(0))
        | None -> (
            match t.init with
            | `Reset -> if c.D.init then t.lit_true else L.negate t.lit_true
            | `Free -> fresh t)))
    t.sched.Netlist.Topo.flops;
  Array.iter (fun ci -> encode_cell t lits (D.cell t.d ci)) t.sched.Netlist.Topo.order;
  t.frames_rev <- lits :: t.frames_rev;
  t.n_frames <- t.n_frames + 1

let frames t = t.n_frames

let lit t ~frame n =
  if frame < 0 || frame >= t.n_frames then invalid_arg "Unroll.lit: no such frame";
  let lits = List.nth t.frames_rev (t.n_frames - 1 - frame) in
  lits.(n)

let lit_true t = t.lit_true
let solver t = t.solver
