module D = Netlist.Design

let apply d ~name nets =
  let inputs = List.map snd (D.inputs d) in
  Array.iter
    (fun n ->
      if List.mem n inputs then
        invalid_arg "Cutpoint.apply: net is already a primary input")
    nets;
  let d = D.copy d in
  let fresh =
    Array.mapi
      (fun i _ ->
        D.add_input d
          (if Array.length nets = 1 then name else Printf.sprintf "%s[%d]" name i))
      nets
  in
  let subst =
    let map = Hashtbl.create 16 in
    Array.iteri (fun i n -> Hashtbl.replace map n fresh.(i)) nets;
    fun n -> match Hashtbl.find_opt map n with Some n' -> n' | None -> n
  in
  (D.substitute d subst, fresh)
