(** Cutpoint insertion (paper section V, Figure 4).

    A cutpoint detaches a net from its driver and hands control of its
    value to the property checker, by turning it into a fresh primary
    input.  PDAT uses cutpoints to constrain *decoded* instructions on
    cores where the fetch path may deliver unaligned or partial words
    (Ibex with the C extension), placing the environment restriction on
    an internal pipeline register instead of the instruction port. *)

val apply :
  Netlist.Design.t ->
  name:string ->
  Netlist.Design.net array ->
  Netlist.Design.t * Netlist.Design.net array
(** [apply d ~name nets] returns a new design in which every reader of
    [nets.(i)] reads the fresh primary input [name[i]] instead, plus
    the new input nets.  The old drivers become dead logic.
    @raise Invalid_argument if a net is already a primary input. *)
