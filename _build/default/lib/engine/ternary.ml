module D = Netlist.Design
module C = Netlist.Cell

type input_class = Zero | One | Free

(* values: 0, 1, 2 = X *)
let x = 2

let join a b = if a = b then a else x

let eval_cell kind (ins : int array) =
  let all v = Array.for_all (( = ) v) ins in
  let any v = Array.exists (( = ) v) ins in
  let and_n () = if any 0 then 0 else if all 1 then 1 else x in
  let or_n () = if any 1 then 1 else if all 0 then 0 else x in
  let inv = function 0 -> 1 | 1 -> 0 | _ -> x in
  match kind with
  | C.Const0 -> 0
  | C.Const1 -> 1
  | C.Buf -> ins.(0)
  | C.Inv -> inv ins.(0)
  | C.And2 | C.And3 | C.And4 -> and_n ()
  | C.Or2 | C.Or3 | C.Or4 -> or_n ()
  | C.Nand2 | C.Nand3 -> inv (and_n ())
  | C.Nor2 | C.Nor3 -> inv (or_n ())
  | C.Xor2 ->
      if ins.(0) = x || ins.(1) = x then x else ins.(0) lxor ins.(1)
  | C.Xnor2 ->
      if ins.(0) = x || ins.(1) = x then x else inv (ins.(0) lxor ins.(1))
  | C.Mux2 -> (
      match ins.(0) with
      | 0 -> ins.(1)
      | 1 -> ins.(2)
      | _ -> join ins.(1) ins.(2))
  | C.Aoi21 ->
      let a = if ins.(0) = 0 || ins.(1) = 0 then 0
              else if ins.(0) = 1 && ins.(1) = 1 then 1 else x in
      if a = 1 || ins.(2) = 1 then 0
      else if a = 0 && ins.(2) = 0 then 1 else x
  | C.Oai21 ->
      let o = if ins.(0) = 1 || ins.(1) = 1 then 1
              else if ins.(0) = 0 && ins.(1) = 0 then 0 else x in
      if o = 0 || ins.(2) = 0 then 1
      else if o = 1 && ins.(2) = 1 then 0 else x
  | C.Dff -> invalid_arg "Ternary: sequential"

let constants ?max_iterations d ~classify =
  let sched = Netlist.Topo.schedule d in
  let n_nets = D.num_nets d in
  let values = Array.make n_nets x in
  values.(D.net_false) <- 0;
  values.(D.net_true) <- 1;
  List.iter
    (fun (_, n) ->
      values.(n) <- (match classify n with Zero -> 0 | One -> 1 | Free -> x))
    (D.inputs d);
  (* flop state lattice, initialised to the reset values *)
  Array.iter
    (fun ci ->
      let c = D.cell d ci in
      values.(c.D.out) <- Bool.to_int c.D.init)
    sched.Netlist.Topo.flops;
  let eval_comb () =
    Array.iter
      (fun ci ->
        let c = D.cell d ci in
        values.(c.D.out) <- eval_cell c.D.kind (Array.map (fun n -> values.(n)) c.D.ins))
      sched.Netlist.Topo.order
  in
  let limit =
    match max_iterations with
    | Some m -> m
    | None -> (2 * Array.length sched.Netlist.Topo.flops) + 4
  in
  let rec fixpoint i =
    if i > limit then failwith "Ternary.constants: no convergence";
    eval_comb ();
    let changed = ref false in
    Array.iter
      (fun ci ->
        let c = D.cell d ci in
        let next = join values.(c.D.out) values.(c.D.ins.(0)) in
        if next <> values.(c.D.out) then begin
          values.(c.D.out) <- next;
          changed := true
        end)
      sched.Netlist.Topo.flops;
    if !changed then fixpoint (i + 1)
  in
  fixpoint 0;
  eval_comb ();
  let is_input = Array.make n_nets false in
  List.iter (fun (_, n) -> is_input.(n) <- true) (D.inputs d);
  let out = ref [] in
  for n = n_nets - 1 downto 2 do
    if (not is_input.(n)) && values.(n) <> x then
      out := Candidate.Const (n, values.(n) = 1) :: !out
  done;
  !out
