(** Candidate gate invariants — the Property Library instances of the
    paper, section IV.1.

    A candidate is an invariant over one net or one gate's pins that
    has survived constrained random simulation and awaits proof:

    - [Const (n, b)]: net [n] always carries [b] (the paper's
      [and_out_ZN_0] / [and_out_ZN_1] properties, generalized to any
      net).
    - [Implies (a, b)]: whenever [a] is 1 so is [b]
      (the paper's [and_in_A2_A1] property); attached to a specific
      cell so the rewiring stage knows which gate collapses. *)

type t =
  | Const of Netlist.Design.net * bool
  | Implies of { cell : int; a : Netlist.Design.net; b : Netlist.Design.net }

val compare : t -> t -> int
val equal : t -> t -> bool

val holds_in_values : (Netlist.Design.net -> int64) -> t -> bool
(** Does the candidate hold on all 64 lanes of a simulation snapshot? *)

val pp : Netlist.Design.t -> Format.formatter -> t -> unit
