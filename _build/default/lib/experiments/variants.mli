(** The experiment catalog: every core variant evaluated in the paper's
    Figures 5, 6 and 7, expressed as (core, environment) pairs ready to
    feed {!Pdat.Pipeline.run}.

    Variant ids are stable strings used by the CLI, the benches and
    EXPERIMENTS.md. *)

type core_kind = Ibex | Cm0 | Ridecore

type constraint_style = Port | Cut

type t = {
  id : string;
  figure : string;       (** "fig5-isa" / "fig5-mibench" / "fig5-special"
                             / "fig6" / "fig7" *)
  label : string;        (** as printed in the paper's figure *)
  core : core_kind;
  style : constraint_style;
  make_env : Netlist.Design.t -> cut_nets:Netlist.Design.net array option ->
             Pdat.Environment.t option;
      (** [None] marks the no-PDAT baseline ("Full") variant. *)
}

val all : t list
val by_figure : string -> t list
val find : string -> t
(** @raise Not_found *)

val figures : string list
