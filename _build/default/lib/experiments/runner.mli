(** Executes catalog variants through the PDAT pipeline and formats
    paper-style result rows.

    Core netlists are built once and shared across the variants that
    use them; the Cortex-M0 is obfuscated before it enters any flow,
    matching the paper's firm-IP setting.  [fast] shrinks the RIDECORE
    configuration and the simulation budget — used by the test suite;
    benches run full size. *)

type row = {
  variant : Variants.t;
  area : float;
  gates : int;
  baseline_area : float;  (** the figure's "Full" variant, synthesized *)
  baseline_gates : int;
  proved : int;           (** 0 for the baseline row *)
  seconds : float;
}

val area_delta : row -> float
(** Percent area reduction versus the baseline row. *)

val gate_delta : row -> float

val run : ?fast:bool -> Variants.t -> row

val run_figure : ?fast:bool -> string -> row list

val pp_row : Format.formatter -> row -> unit

val pp_rows : title:string -> Format.formatter -> row list -> unit

val reduced_design : ?fast:bool -> Variants.t -> Netlist.Design.t
(** The transformed netlist itself (for equivalence checks and
    export). *)
