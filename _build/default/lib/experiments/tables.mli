(** Paper Table I and Table II reproductions. *)

val pp_table1 : Format.formatter -> unit -> unit
(** Instructions used per MiBench group (Ibex and Cortex-M0 halves). *)

val pp_table2 : Format.formatter -> unit -> unit
(** Core features and gate counts.  Builds all three cores. *)
