let pp_table1 fmt () =
  Format.fprintf fmt "@[<v>== Table I: instructions used by MiBench groups ==@,";
  Format.fprintf fmt "%-18s %11s %9s %11s %6s@," "Ibex (RV32IMC+Z)" "Networking"
    "Security" "Automotive" "All";
  let supported ext = List.length (Isa.Rv32.by_ext ext) in
  let exts = [ Isa.Rv32.I; Isa.Rv32.M; Isa.Rv32.C; Isa.Rv32.Zicsr ] in
  List.iter2
    (fun (name, n1, n2, n3, n4) ext ->
      Format.fprintf fmt "%-15s %2d %11d %9d %11d %6d@," name (supported ext)
        n1 n2 n3 n4)
    Isa.Workloads.table1_riscv exts;
  let total g = Isa.Subset.size (Isa.Workloads.riscv g) in
  Format.fprintf fmt "%-15s %2d %11d %9d %11d %6d@," "Total"
    (List.length Isa.Rv32.all)
    (total Isa.Workloads.Networking)
    (total Isa.Workloads.Security)
    (total Isa.Workloads.Automotive)
    (Isa.Subset.size Isa.Workloads.riscv_all);
  let an, asec, aauto, atot = Isa.Workloads.table1_arm in
  Format.fprintf fmt "%-15s %2d %11d %9d %11d %6d@," "ARMv6-M"
    (List.length Isa.Armv6m.all) an asec aauto atot;
  Format.fprintf fmt "@]"

let pp_table2 fmt () =
  let ibex = Cores.Ibex_like.build () in
  let ride = Cores.Ridecore_like.build () in
  let cm0 = Cores.Cm0_like.build () in
  (* gate counts after synthesis, as Design Compiler would report them *)
  let gates d = Netlist.Stats.gate_count (snd (Pdat.Pipeline.baseline d)) in
  Format.fprintf fmt "@[<v>== Table II: core features ==@,";
  Format.fprintf fmt
    "%-10s %-10s %-7s %-3s %-5s %-8s %-5s %-9s %-10s@," "Core" "ISA" "Stages"
    "IW" "ROB" "BP" "BTB" "PhysRegs" "GateCount";
  Format.fprintf fmt "%-10s %-10s %-7s %-3s %-5s %-8s %-5s %-9s %-10d@,"
    "Ibex" "RV32imcz" "2" "1" "N/A" "SNT" "N/A" "32"
    (gates ibex.Cores.Ibex_like.design);
  Format.fprintf fmt "%-10s %-10s %-7s %-3s %-5d %-8s %-5d %-9d %-10d@,"
    "RIDECORE" "RV32im" "6" "2"
    ride.Cores.Ridecore_like.config.Cores.Ridecore_like.rob_entries "G-Share"
    ride.Cores.Ridecore_like.config.Cores.Ridecore_like.btb_entries
    ride.Cores.Ridecore_like.config.Cores.Ridecore_like.phys_regs
    (gates ride.Cores.Ridecore_like.design);
  Format.fprintf fmt "%-10s %-10s %-7s %-3s %-5s %-8s %-5s %-9s %-10d@,"
    "Cortex M0" "ARMv6-m" "3" "1" "N/A" "SNT" "N/A" "16"
    (gates cm0.Cores.Cm0_like.design);
  Format.fprintf fmt "@]"
