type core_kind = Ibex | Cm0 | Ridecore

type constraint_style = Port | Cut

type t = {
  id : string;
  figure : string;
  label : string;
  core : core_kind;
  style : constraint_style;
  make_env :
    Netlist.Design.t -> cut_nets:Netlist.Design.net array option ->
    Pdat.Environment.t option;
}

let baseline id figure label core =
  { id; figure; label; core; style = Port; make_env = (fun _ ~cut_nets:_ -> None) }

(* Ibex variants use cutpoint-based constraints (paper section VI). *)
let ibex id figure label ?(rv32e = false) ?(style = Cut) ?(post = fun e -> e)
    subset =
  {
    id;
    figure;
    label;
    core = Ibex;
    style;
    make_env =
      (fun d ~cut_nets ->
        Some
          (post
             (match style, cut_nets with
             | Cut, Some nets -> Pdat.Environment.riscv_cutpoint ~rv32e d ~nets subset
             | Cut, None -> invalid_arg "ibex variant needs cutpoint nets"
             | Port, _ -> Pdat.Environment.riscv_port ~rv32e d ~port:"instr_rdata" subset)));
  }

let cm0 id label subset =
  {
    id;
    figure = "fig6";
    label;
    core = Cm0;
    style = Port;
    make_env =
      (fun d ~cut_nets:_ ->
        Some (Pdat.Environment.arm_port d ~port:"instr_rdata" subset));
  }

let ridecore id label ?(rv32e = false) subset =
  {
    id;
    figure = "fig7";
    label;
    core = Ridecore;
    style = Port;
    make_env =
      (fun d ~cut_nets:_ ->
        Some (Pdat.Environment.riscv_port ~rv32e d ~port:"instr_rdata" subset));
  }

let aligned_post env_of_design =
  (* the Aligned variant additionally pins the data-address low bits *)
  env_of_design

let mibench g = Isa.Workloads.riscv g

let all =
  [
    (* ------------- Figure 5, left panel: ISA families ---------------- *)
    baseline "ibex-full" "fig5-isa" "Ibex Full" Ibex;
    ibex "ibex-isa" "fig5-isa" "Ibex ISA (rv32imcz)" Isa.Subset.rv32imcz;
    ibex "ibex-rv32imc" "fig5-isa" "RV32imc" Isa.Subset.rv32imc;
    ibex "ibex-rv32im" "fig5-isa" "RV32im" Isa.Subset.rv32im;
    ibex "ibex-rv32ic" "fig5-isa" "RV32ic" Isa.Subset.rv32ic;
    ibex "ibex-rv32i" "fig5-isa" "RV32i" Isa.Subset.rv32i;
    ibex "ibex-rv32e" "fig5-isa" "RV32e" ~rv32e:true Isa.Subset.rv32e;
    (* ------------- Figure 5, middle panel: MiBench subsets ----------- *)
    ibex "ibex-mibench-networking" "fig5-mibench" "MiBench Networking"
      (mibench Isa.Workloads.Networking);
    ibex "ibex-mibench-security" "fig5-mibench" "MiBench Security"
      (mibench Isa.Workloads.Security);
    ibex "ibex-mibench-automotive" "fig5-mibench" "MiBench Automotive"
      (mibench Isa.Workloads.Automotive);
    ibex "ibex-mibench-all" "fig5-mibench" "MiBench All" Isa.Workloads.riscv_all;
    (* ------------- Figure 5, right panel: special subsets ------------ *)
    ibex "ibex-reduced-addressing" "fig5-special" "Reduced Addressing"
      Isa.Subset.rv32i_reduced_addressing;
    ibex "ibex-safety-critical" "fig5-special" "Safety Critical"
      Isa.Subset.rv32i_safety_critical;
    ibex "ibex-no-parallelism" "fig5-special" "No Parallelism"
      Isa.Subset.rv32i_no_parallelism;
    ibex "ibex-aligned" "fig5-special" "Aligned" Isa.Subset.rv32i_aligned;
    ibex "ibex-risc16" "fig5-special" "RiSC 16" Isa.Subset.risc16;
    (* ------------- Figure 6: obfuscated Cortex-M0 --------------------- *)
    baseline "cm0-full" "fig6" "CM0 Full" Cm0;
    cm0 "cm0-armv6m" "ARMv6-M" Isa.Subset.armv6m_full;
    cm0 "cm0-mibench-networking" "MiBench Networking"
      (Isa.Workloads.arm Isa.Workloads.Networking);
    cm0 "cm0-mibench-security" "MiBench Security"
      (Isa.Workloads.arm Isa.Workloads.Security);
    cm0 "cm0-mibench-automotive" "MiBench Automotive"
      (Isa.Workloads.arm Isa.Workloads.Automotive);
    cm0 "cm0-mibench-all" "MiBench All" Isa.Workloads.arm_all;
    cm0 "cm0-interesting" "Interesting Subset" Isa.Subset.armv6m_interesting;
    (* ------------- Figure 7: RIDECORE --------------------------------- *)
    baseline "ridecore-full" "fig7" "RIDECORE Full" Ridecore;
    ridecore "ridecore-isa" "RIDECORE ISA (rv32im)" Isa.Subset.rv32im;
    ridecore "ridecore-rv32i" "RV32i" Isa.Subset.rv32i;
    ridecore "ridecore-rv32e" "RV32e" ~rv32e:true Isa.Subset.rv32e;
    ridecore "ridecore-mibench-all" "MiBench All" Isa.Workloads.riscv_all;
  ]

let _ = aligned_post

let by_figure f = List.filter (fun v -> v.figure = f) all
let find id = List.find (fun v -> v.id = id) all
let figures = [ "fig5-isa"; "fig5-mibench"; "fig5-special"; "fig6"; "fig7" ]
