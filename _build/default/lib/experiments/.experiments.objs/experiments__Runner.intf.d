lib/experiments/runner.mli: Format Netlist Variants
