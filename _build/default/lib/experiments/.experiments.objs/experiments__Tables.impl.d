lib/experiments/tables.ml: Cores Format Isa List Netlist Pdat
