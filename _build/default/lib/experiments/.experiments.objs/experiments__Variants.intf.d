lib/experiments/variants.mli: Netlist Pdat
