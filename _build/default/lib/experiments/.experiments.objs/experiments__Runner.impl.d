lib/experiments/runner.ml: Cores Engine Format Hashtbl Lazy List Netlist Pdat Printf Unix Variants
