lib/experiments/variants.ml: Isa List Netlist Pdat
