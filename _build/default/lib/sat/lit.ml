type t = int

let make v positive = (v lsl 1) lor (if positive then 0 else 1)
let pos v = v lsl 1
let neg v = (v lsl 1) lor 1
let var l = l lsr 1
let sign l = l land 1 = 0
let negate l = l lxor 1
let to_int l = if sign l then var l + 1 else -(var l + 1)

let of_int i =
  if i = 0 then invalid_arg "Lit.of_int 0"
  else if i > 0 then pos (i - 1)
  else neg (-i - 1)

let pp fmt l = Format.pp_print_int fmt (to_int l)
