(** DIMACS CNF parsing and printing, used by the solver's test suite. *)

val parse : string -> int * Lit.t list list
(** [parse src] is [(n_vars, clauses)].
    @raise Failure on malformed input. *)

val load : Solver.t -> string -> unit
(** Parses and loads into a solver, declaring variables as needed. *)

val to_string : int * Lit.t list list -> string
