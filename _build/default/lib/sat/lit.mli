(** Literal encoding: literal [2*v] is variable [v] positive,
    [2*v + 1] is its negation.  Variables are dense non-negative ints. *)

type t = int

val make : int -> bool -> t
(** [make v positive]. *)

val pos : int -> t
val neg : int -> t
val var : t -> int
val sign : t -> bool
(** [true] when the literal is positive. *)

val negate : t -> t
val to_int : t -> int
(** DIMACS convention: positive literal of var [v] is [v+1]. *)

val of_int : int -> t
(** Inverse of {!to_int}.  @raise Invalid_argument on 0. *)

val pp : Format.formatter -> t -> unit
