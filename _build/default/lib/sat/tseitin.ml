let equal s a b =
  Solver.add_clause s [ Lit.negate a; b ];
  Solver.add_clause s [ a; Lit.negate b ]

let and2 s ~out a b =
  Solver.add_clause s [ Lit.negate out; a ];
  Solver.add_clause s [ Lit.negate out; b ];
  Solver.add_clause s [ out; Lit.negate a; Lit.negate b ]

let or2 s ~out a b = and2 s ~out:(Lit.negate out) (Lit.negate a) (Lit.negate b)

let xor2 s ~out a b =
  Solver.add_clause s [ Lit.negate out; a; b ];
  Solver.add_clause s [ Lit.negate out; Lit.negate a; Lit.negate b ];
  Solver.add_clause s [ out; Lit.negate a; b ];
  Solver.add_clause s [ out; a; Lit.negate b ]

let andn s ~out ins =
  List.iter (fun a -> Solver.add_clause s [ Lit.negate out; a ]) ins;
  Solver.add_clause s (out :: List.map Lit.negate ins)

let orn s ~out ins = andn s ~out:(Lit.negate out) (List.map Lit.negate ins)

let mux s ~out ~sel ~a ~b =
  (* sel=0 -> out=a ; sel=1 -> out=b, plus the redundant a=b clause
     that helps propagation. *)
  Solver.add_clause s [ sel; Lit.negate a; out ];
  Solver.add_clause s [ sel; a; Lit.negate out ];
  Solver.add_clause s [ Lit.negate sel; Lit.negate b; out ];
  Solver.add_clause s [ Lit.negate sel; b; Lit.negate out ];
  Solver.add_clause s [ Lit.negate a; Lit.negate b; out ];
  Solver.add_clause s [ a; b; Lit.negate out ]

let const s l v = Solver.add_clause s [ (if v then l else Lit.negate l) ]
