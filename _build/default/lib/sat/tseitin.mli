(** Tseitin constraint builders: each function adds clauses forcing the
    output literal to equal a boolean function of the input literals.
    Inputs and outputs are literals, so inversions are free (pass the
    negated literal). *)

val equal : Solver.t -> Lit.t -> Lit.t -> unit
(** [equal s a b] forces a = b. *)

val and2 : Solver.t -> out:Lit.t -> Lit.t -> Lit.t -> unit
val or2 : Solver.t -> out:Lit.t -> Lit.t -> Lit.t -> unit
val xor2 : Solver.t -> out:Lit.t -> Lit.t -> Lit.t -> unit

val andn : Solver.t -> out:Lit.t -> Lit.t list -> unit
val orn : Solver.t -> out:Lit.t -> Lit.t list -> unit

val mux : Solver.t -> out:Lit.t -> sel:Lit.t -> a:Lit.t -> b:Lit.t -> unit
(** out = sel ? b : a. *)

val const : Solver.t -> Lit.t -> bool -> unit
(** Pins a literal to a constant. *)
