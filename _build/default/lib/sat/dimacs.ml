let parse src =
  let n_vars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let lines = String.split_on_char '\n' src in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; nv; _nc ] -> n_vars := int_of_string nv
        | _ -> failwith ("bad problem line: " ^ line)
      end
      else
        String.split_on_char ' ' line
        |> List.filter (( <> ) "")
        |> List.iter (fun tok ->
               let i = int_of_string tok in
               if i = 0 then begin
                 clauses := List.rev !current :: !clauses;
                 current := []
               end
               else current := Lit.of_int i :: !current))
    lines;
  if !current <> [] then clauses := List.rev !current :: !clauses;
  (!n_vars, List.rev !clauses)

let load solver src =
  let n_vars, clauses = parse src in
  for _ = 1 to n_vars do
    ignore (Solver.new_var solver)
  done;
  List.iter (Solver.add_clause solver) clauses

let to_string (n_vars, clauses) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" n_vars (List.length clauses));
  List.iter
    (fun c ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int (Lit.to_int l) ^ " ")) c;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf
