lib/sat/tseitin.ml: List Lit Solver
