lib/sat/tseitin.mli: Lit Solver
