module D = Netlist.Design

type t = {
  ctx : Ctx.t;
  name : string;
  init : int;
  outs : D.net array;
  mutable connected : bool;
}

let create c ?(init = 0) ~width name =
  if width <= 0 then invalid_arg "Reg.create: width must be positive";
  let d = Ctx.design c in
  let outs = Array.init width (fun _ -> D.new_net d) in
  Array.iteri
    (fun i n ->
      D.set_net_name d n
        (if width = 1 then name else Printf.sprintf "%s[%d]" name i))
    outs;
  let r = { ctx = c; name; init; outs; connected = false } in
  Ctx.register_pending c name (fun () -> r.connected);
  r

let q r = Ctx.signal r.ctx r.outs

let connect r next =
  if r.connected then
    invalid_arg (Printf.sprintf "Reg.connect %s: already connected" r.name);
  if Ctx.width next <> Array.length r.outs then
    invalid_arg
      (Printf.sprintf "Reg.connect %s: width mismatch (%d vs %d)" r.name
         (Ctx.width next) (Array.length r.outs));
  ignore (Ctx.same_ctx (q r) next);
  let d = Ctx.design r.ctx in
  Array.iteri
    (fun i out ->
      let init = (r.init lsr i) land 1 = 1 in
      D.add_cell_out d ~init Netlist.Cell.Dff [| next.Ctx.nets.(i) |] ~out)
    r.outs;
  r.connected <- true

let connect_en r ~en next = connect r (Ops.mux2 en (q r) next)

let connect_en_clr r ~en ~clr next =
  let w = Array.length r.outs in
  let reset_value = Ops.const r.ctx ~width:w r.init in
  connect r (Ops.mux2 clr (Ops.mux2 en (q r) next) reset_value)

let reg_next c ?init name next =
  let r = create c ?init ~width:(Ctx.width next) name in
  connect r next;
  q r

let reg_en c ?init name ~en next =
  let r = create c ?init ~width:(Ctx.width next) name in
  connect_en r ~en next;
  q r
