lib/hdl/ctx.mli: Netlist
