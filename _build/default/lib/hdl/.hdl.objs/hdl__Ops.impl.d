lib/hdl/ops.ml: Array Ctx List Netlist Printf
