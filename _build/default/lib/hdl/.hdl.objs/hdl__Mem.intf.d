lib/hdl/mem.mli: Ctx
