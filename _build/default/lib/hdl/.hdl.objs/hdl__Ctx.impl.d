lib/hdl/ctx.ml: Array List Netlist Printf String
