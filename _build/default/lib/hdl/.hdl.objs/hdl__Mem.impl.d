lib/hdl/mem.ml: Array Ctx Ops Printf Reg
