lib/hdl/reg.mli: Ctx
