lib/hdl/ops.mli: Ctx
