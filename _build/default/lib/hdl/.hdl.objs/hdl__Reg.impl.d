lib/hdl/reg.ml: Array Ctx Netlist Ops Printf
