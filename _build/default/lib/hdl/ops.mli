(** Combinational operators of the construction DSL.

    All operators elaborate directly to standard cells.  Signals are
    little-endian bit vectors; binary bitwise and arithmetic operators
    require equal widths (checked), comparisons return 1-bit signals.
    Nothing here creates state — see {!Reg} and {!Mem}. *)

type signal = Ctx.signal

(* constants *)

val const : Ctx.t -> width:int -> int -> signal
(** Two's-complement truncation of the int to [width] bits;
    [width <= 62]. *)

val zero : Ctx.t -> int -> signal
val ones : Ctx.t -> int -> signal
val vdd : Ctx.t -> signal
val gnd : Ctx.t -> signal

(* structure *)

val bit : signal -> int -> signal
val bits : signal -> hi:int -> lo:int -> signal
val msb : signal -> signal
val lsb : signal -> signal

val concat : signal list -> signal
(** MSB-first, Verilog [{a, b, c}] order. *)

val repeat : signal -> int -> signal
val zero_extend : signal -> int -> signal
val sign_extend : signal -> int -> signal
val uresize : signal -> int -> signal
(** Zero-extend or truncate to the requested width. *)

(* bitwise *)

val ( ~: ) : signal -> signal
val ( &: ) : signal -> signal -> signal
val ( |: ) : signal -> signal -> signal
val ( ^: ) : signal -> signal -> signal

val reduce_and : signal -> signal
val reduce_or : signal -> signal
val reduce_xor : signal -> signal

(* arithmetic *)

val ( +: ) : signal -> signal -> signal
(** Modular addition; result has the operand width. *)

val ( -: ) : signal -> signal -> signal

val add_carry : signal -> signal -> cin:signal -> signal * signal
(** [(sum, carry_out)]. *)

val negate : signal -> signal

val umul : signal -> signal -> signal
(** Combinational array multiplier; result width is the sum of the
    operand widths.  Large: prefer sequential multipliers in cores. *)

(* comparison: 1-bit results *)

val ( ==: ) : signal -> signal -> signal
val ( <>: ) : signal -> signal -> signal

val ( <: ) : signal -> signal -> signal
(** Unsigned less-than. *)

val ( <=: ) : signal -> signal -> signal
val ( >=: ) : signal -> signal -> signal
val ( >: ) : signal -> signal -> signal

val slt : signal -> signal -> signal
(** Signed less-than. *)

val sge : signal -> signal -> signal

val eq_const : signal -> int -> signal

(* selection *)

val mux2 : signal -> signal -> signal -> signal
(** [mux2 sel a b] is [b] when [sel] (1-bit) is 1, else [a]. *)

val mux : signal -> signal list -> signal
(** Indexed selection: [mux idx cases] picks [List.nth cases idx];
    the last case is replicated to cover the index range. *)

val one_hot_mux : (signal * signal) list -> signal
(** [(select, value)] pairs; selects are expected mutually exclusive,
    result is the OR of masked values (0 when nothing selected). *)

(* shifts *)

val sll_const : signal -> int -> signal
val srl_const : signal -> int -> signal
val sra_const : signal -> int -> signal

val sll : signal -> signal -> signal
(** Barrel shifter; shift amount is an unsigned signal. *)

val srl : signal -> signal -> signal
val sra : signal -> signal -> signal

(* misc *)

val priority_select : (signal * signal) list -> default:signal -> signal
(** First pair whose 1-bit guard is set wins. *)

val popcount : signal -> signal

val name : string -> signal -> signal
(** Attaches a debug name to the signal's nets (bit-indexed). *)
