(** Registers: state elements with deferred next-value connection.

    A register's Q output is available immediately after {!create} so
    feedback logic can read it; the D input is supplied exactly once
    with {!connect} (or the {!next}-style helpers).  {!Ctx.finish}
    fails if any register was never connected. *)

type t

val create : Ctx.t -> ?init:int -> width:int -> string -> t
(** [init] is the reset value (two's-complement truncated). *)

val q : t -> Ctx.signal
(** The register output. *)

val connect : t -> Ctx.signal -> unit
(** Sets the next-state function.  @raise Invalid_argument on width
    mismatch or double connection. *)

val connect_en : t -> en:Ctx.signal -> Ctx.signal -> unit
(** Holds the current value when [en] is 0. *)

val connect_en_clr : t -> en:Ctx.signal -> clr:Ctx.signal -> Ctx.signal -> unit
(** Synchronous clear (to the reset value) dominating enable. *)

val reg_next : Ctx.t -> ?init:int -> string -> Ctx.signal -> Ctx.signal
(** One-shot pipeline register: no feedback, connected immediately. *)

val reg_en : Ctx.t -> ?init:int -> string -> en:Ctx.signal -> Ctx.signal -> Ctx.signal
(** Feedback-free enabled register (holds when disabled). *)
