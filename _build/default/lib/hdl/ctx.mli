(** Elaboration context of the hardware-construction DSL.

    A context wraps a {!Netlist.Design.t} under construction plus the
    bookkeeping needed for register feedback: registers allocate their
    Q nets immediately (so logic can read them) and connect their D
    inputs later; {!finish} verifies nothing was left dangling.

    A signal is a little-endian vector of nets tagged with its context,
    so operators can build gates without threading the context
    explicitly and mixing two designs is a checked error. *)

type t

type signal = {
  ctx : t;
  nets : Netlist.Design.net array;  (** LSB first, never empty *)
}

val create : string -> t

val wrap : Netlist.Design.t -> t
(** Continue building logic onto an existing design — how PDAT grafts
    environment monitors onto an elaborated (or imported) netlist. *)

val design : t -> Netlist.Design.t
(** The underlying design; useful for advanced surgery.  Most code
    should stay within the DSL. *)

val finish : t -> Netlist.Design.t
(** Validates (all registers driven, netlist well-formed) and returns
    the design.  @raise Failure with a diagnostic otherwise. *)

val signal : t -> Netlist.Design.net array -> signal
(** Wraps raw nets; the nets must belong to this context's design. *)

val width : signal -> int

val same_ctx : signal -> signal -> t
(** @raise Invalid_argument when the two signals belong to different
    contexts. *)

val input : t -> string -> int -> signal
(** [input c name w] declares a [w]-bit primary input; bit [i] is the
    port ["name[i]"] (or just ["name"] when [w = 1]). *)

val output : t -> string -> signal -> unit

val unconnected_registers : t -> string list

val register_pending : t -> string -> (unit -> bool) -> unit
(** Internal hook used by {!Reg}: registers a completion check under a
    diagnostic label. *)
