type t = {
  d : Netlist.Design.t;
  mutable pending : (string * (unit -> bool)) list;
}

type signal = {
  ctx : t;
  nets : Netlist.Design.net array;
}

let create name = { d = Netlist.Design.create name; pending = [] }
let wrap d = { d; pending = [] }
let design c = c.d

let signal c nets =
  if Array.length nets = 0 then invalid_arg "Ctx.signal: empty vector";
  { ctx = c; nets }

let width s = Array.length s.nets

let same_ctx a b =
  if a.ctx != b.ctx then
    invalid_arg "Hdl: combining signals from different contexts";
  a.ctx

let input c name w =
  if w <= 0 then invalid_arg "Ctx.input: width must be positive";
  let nets =
    if w = 1 then [| Netlist.Design.add_input c.d name |]
    else
      Array.init w (fun i ->
          Netlist.Design.add_input c.d (Printf.sprintf "%s[%d]" name i))
  in
  { ctx = c; nets }

let output c name s =
  if s.ctx != c then invalid_arg "Ctx.output: signal from another context";
  if width s = 1 then Netlist.Design.add_output c.d name s.nets.(0)
  else
    Array.iteri
      (fun i n -> Netlist.Design.add_output c.d (Printf.sprintf "%s[%d]" name i) n)
      s.nets

let register_pending c label chk = c.pending <- (label, chk) :: c.pending

let unconnected_registers c =
  List.filter_map (fun (label, chk) -> if chk () then None else Some label) c.pending

let finish c =
  (match unconnected_registers c with
  | [] -> ()
  | missing ->
      failwith
        (Printf.sprintf "Hdl.finish %s: unconnected registers: %s"
           (Netlist.Design.name c.d)
           (String.concat ", " missing)));
  (match Netlist.Design.validate c.d with
  | Ok () -> ()
  | Error msg -> failwith ("Hdl.finish: invalid netlist: " ^ msg));
  c.d
