(** Register-file style memories built from flip-flops and mux trees.

    Writes are synchronous (visible next cycle); reads are
    combinational.  This matches how small register files are
    synthesized into standard cells when no SRAM macro is used — and it
    is why large storage structures dominate core area in the paper's
    RIDECORE experiment. *)

type t

val create : Ctx.t -> words:int -> width:int -> string -> t

val read : t -> Ctx.signal -> Ctx.signal
(** Combinational read port; address truncates/extends to fit. *)

val read_const : t -> int -> Ctx.signal
(** Direct view of one word. *)

val write : t -> en:Ctx.signal -> addr:Ctx.signal -> data:Ctx.signal -> unit
(** Adds a write port.  Call at most once per memory unless ports are
    guaranteed mutually exclusive; the last-added port wins on
    simultaneous writes.  Must be called before {!Ctx.finish}
    (memories with no write port fail elaboration). *)

val write2 :
  t ->
  en0:Ctx.signal -> addr0:Ctx.signal -> data0:Ctx.signal ->
  en1:Ctx.signal -> addr1:Ctx.signal -> data1:Ctx.signal ->
  unit
(** Dual write port; port 1 wins on an address collision. *)
