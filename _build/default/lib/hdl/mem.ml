type t = {
  ctx : Ctx.t;
  words : Reg.t array;
  addr_bits : int;
}

let bits_for words =
  let rec go b = if 1 lsl b >= words then b else go (b + 1) in
  max 1 (go 1)

let create c ~words ~width name =
  if words <= 0 then invalid_arg "Mem.create: need at least one word";
  {
    ctx = c;
    words =
      Array.init words (fun i ->
          Reg.create c ~width (Printf.sprintf "%s_%d" name i));
    addr_bits = bits_for words;
  }

let read m addr =
  let addr = Ops.uresize addr m.addr_bits in
  Ops.mux addr (Array.to_list (Array.map Reg.q m.words))

let read_const m i = Reg.q m.words.(i)

let word_select m ~en ~addr i =
  let addr = Ops.uresize addr m.addr_bits in
  Ops.( &: ) en (Ops.eq_const addr i)

let write m ~en ~addr ~data =
  Array.iteri
    (fun i r ->
      let sel = word_select m ~en ~addr i in
      Reg.connect_en r ~en:sel data)
    m.words

let write2 m ~en0 ~addr0 ~data0 ~en1 ~addr1 ~data1 =
  Array.iteri
    (fun i r ->
      let sel0 = word_select m ~en:en0 ~addr:addr0 i in
      let sel1 = word_select m ~en:en1 ~addr:addr1 i in
      let next = Ops.mux2 sel1 (Ops.mux2 sel0 (Reg.q r) data0) data1 in
      Reg.connect r next)
    m.words
