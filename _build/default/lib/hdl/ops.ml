module D = Netlist.Design
module C = Netlist.Cell

type signal = Ctx.signal

let width = Ctx.width

let check_same_width op a b =
  if width a <> width b then
    invalid_arg
      (Printf.sprintf "Hdl.%s: width mismatch (%d vs %d)" op (width a) (width b))

let gate1 c kind a = D.add_cell (Ctx.design c) kind [| a |]
let gate2 c kind a b = D.add_cell (Ctx.design c) kind [| a; b |]

let map1 kind a =
  let c = a.Ctx.ctx in
  Ctx.signal c (Array.map (fun n -> gate1 c kind n) a.Ctx.nets)

let map2 op kind a b =
  check_same_width op a b;
  let c = Ctx.same_ctx a b in
  Ctx.signal c (Array.map2 (fun x y -> gate2 c kind x y) a.Ctx.nets b.Ctx.nets)

(* --- constants ------------------------------------------------------- *)

let const c ~width:w v =
  if w <= 0 || w > 62 then invalid_arg "Hdl.const: width out of range";
  Ctx.signal c
    (Array.init w (fun i ->
         if (v lsr i) land 1 = 1 then D.net_true else D.net_false))

let zero c w =
  if w <= 0 then invalid_arg "Hdl.zero: width must be positive";
  Ctx.signal c (Array.make w D.net_false)
let ones c w = Ctx.signal c (Array.make w D.net_true)
let vdd c = ones c 1
let gnd c = zero c 1

(* --- structure ------------------------------------------------------- *)

let bit s i =
  if i < 0 || i >= width s then invalid_arg "Hdl.bit: index out of range";
  Ctx.signal s.Ctx.ctx [| s.Ctx.nets.(i) |]

let bits s ~hi ~lo =
  if lo < 0 || hi < lo || hi >= width s then
    invalid_arg
      (Printf.sprintf "Hdl.bits: [%d:%d] out of range for width %d" hi lo (width s));
  Ctx.signal s.Ctx.ctx (Array.sub s.Ctx.nets lo (hi - lo + 1))

let msb s = bit s (width s - 1)
let lsb s = bit s 0

let concat parts =
  match parts with
  | [] -> invalid_arg "Hdl.concat: empty"
  | first :: _ ->
      let c = first.Ctx.ctx in
      List.iter (fun p -> ignore (Ctx.same_ctx first p)) parts;
      (* MSB-first argument order, LSB-first storage. *)
      let nets = List.concat_map (fun p -> Array.to_list p.Ctx.nets) (List.rev parts) in
      Ctx.signal c (Array.of_list nets)

let repeat s n =
  if n <= 0 then invalid_arg "Hdl.repeat: count must be positive";
  concat (List.init n (fun _ -> s))

let zero_extend s w =
  if w < width s then invalid_arg "Hdl.zero_extend: narrower target"
  else if w = width s then s
  else concat [ zero s.Ctx.ctx (w - width s); s ]

let sign_extend s w =
  if w < width s then invalid_arg "Hdl.sign_extend: narrower target"
  else if w = width s then s
  else concat [ repeat (msb s) (w - width s); s ]

let uresize s w =
  if w = width s then s
  else if w < width s then bits s ~hi:(w - 1) ~lo:0
  else zero_extend s w

(* --- bitwise --------------------------------------------------------- *)

let ( ~: ) a = map1 C.Inv a
let ( &: ) a b = map2 "&:" C.And2 a b
let ( |: ) a b = map2 "|:" C.Or2 a b
let ( ^: ) a b = map2 "^:" C.Xor2 a b

let reduce kind s =
  let c = s.Ctx.ctx in
  (* Balanced tree keeps levels logarithmic. *)
  let rec go nets =
    match Array.length nets with
    | 1 -> nets.(0)
    | n ->
        let half = n / 2 in
        let pairs =
          Array.init half (fun i -> gate2 c kind nets.(2 * i) nets.((2 * i) + 1))
        in
        let rest = if n land 1 = 1 then Array.append pairs [| nets.(n - 1) |] else pairs in
        go rest
  in
  Ctx.signal c [| go s.Ctx.nets |]

let reduce_and s = reduce C.And2 s
let reduce_or s = reduce C.Or2 s
let reduce_xor s = reduce C.Xor2 s

(* --- arithmetic ------------------------------------------------------ *)

let add_carry a b ~cin =
  check_same_width "+:" a b;
  if width cin <> 1 then invalid_arg "Hdl.add_carry: carry must be 1 bit";
  let c = Ctx.same_ctx a b in
  let carry = ref cin.Ctx.nets.(0) in
  let sum =
    Array.init (width a) (fun i ->
        let x = a.Ctx.nets.(i) and y = b.Ctx.nets.(i) in
        let xy = gate2 c C.Xor2 x y in
        let s = gate2 c C.Xor2 xy !carry in
        let c1 = gate2 c C.And2 x y in
        let c2 = gate2 c C.And2 xy !carry in
        carry := gate2 c C.Or2 c1 c2;
        s)
  in
  (Ctx.signal c sum, Ctx.signal c [| !carry |])

let ( +: ) a b = fst (add_carry a b ~cin:(gnd a.Ctx.ctx))
let ( -: ) a b = fst (add_carry a (~:b) ~cin:(vdd a.Ctx.ctx))
let negate a = zero a.Ctx.ctx (width a) -: a

let umul a b =
  let c = Ctx.same_ctx a b in
  let wa = width a and wb = width b in
  let out_w = wa + wb in
  let acc = ref (zero c out_w) in
  for i = 0 to wb - 1 do
    (* partial product: a AND b.(i), shifted left by i *)
    let bi = Ctx.signal c (Array.make wa b.Ctx.nets.(i)) in
    let pp = a &: bi in
    let shifted =
      if i = 0 then zero_extend pp out_w
      else concat [ uresize pp (out_w - i); zero c i ]
    in
    acc := !acc +: shifted
  done;
  !acc

(* --- comparison ------------------------------------------------------ *)

let ( ==: ) a b =
  check_same_width "==:" a b;
  reduce_and (~:(a ^: b))

let ( <>: ) a b = ~:(a ==: b)

let ( <: ) a b =
  check_same_width "<:" a b;
  (* a < b unsigned iff subtraction a - b borrows, i.e. carry-out = 0 *)
  let _, cout = add_carry a (~:b) ~cin:(vdd a.Ctx.ctx) in
  ~:cout

let ( >=: ) a b = ~:(a <: b)
let ( >: ) a b = b <: a
let ( <=: ) a b = ~:(b <: a)

let slt a b =
  check_same_width "slt" a b;
  (* signed comparison: flip sign bits and compare unsigned *)
  let flip s =
    let m = msb s in
    if width s = 1 then ~:m else concat [ ~:m; bits s ~hi:(width s - 2) ~lo:0 ]
  in
  flip a <: flip b

let sge a b = ~:(slt a b)

let eq_const s v = s ==: const s.Ctx.ctx ~width:(width s) v

(* --- selection ------------------------------------------------------- *)

let mux2 sel a b =
  if width sel <> 1 then invalid_arg "Hdl.mux2: selector must be 1 bit";
  check_same_width "mux2" a b;
  let c = Ctx.same_ctx a b in
  ignore (Ctx.same_ctx sel a);
  let s = sel.Ctx.nets.(0) in
  Ctx.signal c
    (Array.init (width a) (fun i ->
         D.add_cell (Ctx.design c) C.Mux2 [| s; a.Ctx.nets.(i); b.Ctx.nets.(i) |]))

let mux idx cases =
  let cases = Array.of_list cases in
  let l = Array.length cases in
  if l = 0 then invalid_arg "Hdl.mux: no cases";
  let case i = cases.(min i (l - 1)) in
  (* Binary mux tree over the index bits; subtrees that lie entirely in
     the replicated tail collapse to the last case. *)
  let rec build bit_i lo =
    if lo >= l - 1 then case (l - 1)
    else if bit_i < 0 then case lo
    else
      mux2 (bit idx bit_i)
        (build (bit_i - 1) lo)
        (build (bit_i - 1) (lo + (1 lsl bit_i)))
  in
  build (width idx - 1) 0

let one_hot_mux pairs =
  match pairs with
  | [] -> invalid_arg "Hdl.one_hot_mux: empty"
  | (s0, v0) :: _ ->
      let c = Ctx.same_ctx s0 v0 in
      let w = width v0 in
      let masked =
        List.map
          (fun (sel, v) ->
            if width sel <> 1 then invalid_arg "Hdl.one_hot_mux: 1-bit selects";
            check_same_width "one_hot_mux" v0 v;
            v &: Ctx.signal c (Array.make w sel.Ctx.nets.(0)))
          pairs
      in
      List.fold_left ( |: ) (zero c w) masked

(* --- shifts ----------------------------------------------------------- *)

let sll_const s n =
  if n = 0 then s
  else if n >= width s then zero s.Ctx.ctx (width s)
  else concat [ bits s ~hi:(width s - 1 - n) ~lo:0; zero s.Ctx.ctx n ]

let srl_const s n =
  if n = 0 then s
  else if n >= width s then zero s.Ctx.ctx (width s)
  else concat [ zero s.Ctx.ctx n; bits s ~hi:(width s - 1) ~lo:n ]

let sra_const s n =
  if n = 0 then s
  else
    let n = min n (width s - 1) in
    concat [ repeat (msb s) n; bits s ~hi:(width s - 1) ~lo:n ]

let barrel shift_stage s amount =
  (* log-depth mux stages; amount bits beyond the width are ORed into a
     separate "overshift" control by the callers that care *)
  let rec go s i =
    if i >= width amount then s
    else
      let stage = shift_stage s (1 lsl i) in
      go (mux2 (bit amount i) s stage) (i + 1)
  in
  go s 0

let sll s amount = barrel sll_const s amount
let srl s amount = barrel srl_const s amount
let sra s amount = barrel sra_const s amount

(* --- misc -------------------------------------------------------------- *)

let priority_select guarded ~default =
  List.fold_right (fun (g, v) acc -> mux2 g acc v) guarded default

let popcount s =
  let c = s.Ctx.ctx in
  let w = width s in
  let out_w =
    let rec bits_needed n acc = if 1 lsl acc > n then acc else bits_needed n (acc + 1) in
    bits_needed w 1
  in
  Array.fold_left
    (fun acc n -> acc +: zero_extend (Ctx.signal c [| n |]) out_w)
    (zero c out_w) s.Ctx.nets

let name nm s =
  let d = Ctx.design s.Ctx.ctx in
  if width s = 1 then D.set_net_name d s.Ctx.nets.(0) nm
  else
    Array.iteri (fun i n -> D.set_net_name d n (Printf.sprintf "%s[%d]" nm i)) s.Ctx.nets;
  s
