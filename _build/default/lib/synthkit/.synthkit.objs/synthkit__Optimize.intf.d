lib/synthkit/optimize.mli: Format Netlist
