lib/synthkit/simplify.ml: Array Hashtbl List Netlist
