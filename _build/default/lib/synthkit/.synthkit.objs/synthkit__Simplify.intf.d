lib/synthkit/simplify.mli: Netlist
