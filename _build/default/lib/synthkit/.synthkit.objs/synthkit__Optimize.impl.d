lib/synthkit/optimize.ml: Format Netlist Simplify
