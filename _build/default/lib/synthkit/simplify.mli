(** One structural simplification pass: constant propagation, algebraic
    identities, double-inverter and buffer collapsing, structural
    hashing (common-subexpression merging), and sequential constant
    detection (a flip-flop whose D pin is tied to its own reset value,
    or fed back from itself, is a constant).

    The pass preserves primary inputs and outputs and sequential
    behaviour; it is the workhorse {!Optimize.run} iterates. *)

val run : Netlist.Design.t -> Netlist.Design.t
(** The result is *not* compacted; dead cells remain until
    {!Netlist.Design.compact}. *)
